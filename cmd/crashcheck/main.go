// Command crashcheck validates durable linearizability of every
// construction by systematic crash-point exploration: it re-runs a
// deterministic insert workload, injecting a simulated power failure at
// successive persistent-memory instruction boundaries, and after each crash
// verifies that recovery yields a consistent state containing every
// completed transaction. Both the conservative model (unflushed lines are
// lost) and the adversarial model (unflushed dirty lines may spuriously
// persist with word-granularity tearing, as with cache evictions) are
// exercised.
//
// Beyond the single-crash sweep, -nested explores *pairs* of crash points —
// crash the workload, then crash recovery itself at every instruction
// boundary, recover fully, verify — and -corrupt flips bits in the spans
// each engine declares unreachable from committed state, asserting recovery
// either succeeds with a correct answer or fails with a typed corruption
// error, never a panic or a silent wrong answer.
//
//	crashcheck                        # all engines, single-crash sweep
//	crashcheck -engine CX-PTM -ops 40 -stride 3
//	crashcheck -nested                # crash-during-recovery pairs
//	crashcheck -corrupt -seed 7       # bit flips in stale spans
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/chaos"
)

func main() {
	var (
		engine  = flag.String("engine", "all", "engine name(s, comma-separated) or 'all'")
		ops     = flag.Int("ops", 25, "insert transactions per crash run")
		stride  = flag.Int64("stride", 0, "crash-point stride in PM instructions (0 = auto)")
		stride2 = flag.Int64("stride2", 1, "recovery crash-point stride for -nested")
		nested  = flag.Bool("nested", false, "sweep (first, second) crash-point pairs: crash during recovery")
		corrupt = flag.Bool("corrupt", false, "flip bits in stale spans after each crash")
		seed    = flag.Int64("seed", 2020, "RNG seed for adversarial tearing and bit-flip placement")
	)
	flag.Parse()

	names := chaos.Engines()
	if *engine != "all" {
		names = strings.Split(*engine, ",")
	}
	failed := false
	for _, name := range names {
		for _, adversarial := range []bool{false, true} {
			label := "conservative"
			if adversarial {
				label = "adversarial"
			}
			opts := chaos.Options{
				Ops:         *ops,
				Stride:      *stride,
				Stride2:     *stride2,
				Adversarial: adversarial,
				Seed:        *seed,
			}
			switch {
			case *nested:
				pairs, err := chaos.NestedSweep(name, opts)
				if err != nil {
					fmt.Printf("%-14s %-13s FAIL: %v\n", name, label, err)
					failed = true
					continue
				}
				fmt.Printf("%-14s %-13s OK (%d nested crash pairs, all recovered consistently)\n",
					name, label, pairs)
			case *corrupt:
				flips, err := chaos.CorruptionSweep(name, opts)
				if err != nil {
					fmt.Printf("%-14s %-13s FAIL: %v\n", name, label, err)
					failed = true
					continue
				}
				fmt.Printf("%-14s %-13s OK (%d bit flips, none panicked or corrupted an answer)\n",
					name, label, flips)
			default:
				crashes, err := chaos.Sweep(name, opts)
				if err != nil {
					fmt.Printf("%-14s %-13s FAIL: %v\n", name, label, err)
					failed = true
					continue
				}
				fmt.Printf("%-14s %-13s OK (%d crash points, all recovered consistently)\n",
					name, label, crashes)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
