// Command crashcheck validates durable linearizability of every
// construction by systematic crash-point exploration: it re-runs a
// deterministic insert workload, injecting a simulated power failure at
// successive persistent-memory instruction boundaries, and after each crash
// verifies that recovery yields a consistent state containing every
// completed transaction. Both the conservative model (unflushed lines are
// lost) and the adversarial model (unflushed dirty lines may spuriously
// persist, as with cache evictions) are exercised.
//
//	crashcheck                  # all engines, default stride
//	crashcheck -engine CX-PTM -ops 40 -stride 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/onll"
	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/redodb"
	"repro/internal/rockssim"
	"repro/internal/seqds"
)

func main() {
	var (
		engine = flag.String("engine", "all", "engine name, 'redodb', 'rockssim' or 'all'")
		ops    = flag.Int("ops", 25, "insert transactions per crash run")
		stride = flag.Int64("stride", 7, "crash-point stride in PM instructions")
	)
	flag.Parse()

	names := []string{
		"RedoOpt-PTM", "RedoTimed-PTM", "Redo-PTM",
		"CX-PTM", "CX-PUC", "OneFile", "RomulusLR", "PSim-CoW", "PMDK",
		"ONLL", "redodb", "rockssim",
	}
	if *engine != "all" {
		names = strings.Split(*engine, ",")
	}
	failed := false
	for _, name := range names {
		for _, adversarial := range []bool{false, true} {
			label := "conservative"
			if adversarial {
				label = "adversarial"
			}
			crashes, err := sweep(name, *ops, *stride, adversarial)
			if err != nil {
				fmt.Printf("%-14s %-13s FAIL: %v\n", name, label, err)
				failed = true
				continue
			}
			fmt.Printf("%-14s %-13s OK (%d crash points, all recovered consistently)\n",
				name, label, crashes)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// kvRunner abstracts "insert key i, then verify after recovery" over the
// PTMs (via a list set) and the two KV stores.
type kvRunner struct {
	fresh  func(pool *pmem.Pool) // construct engine over pool
	insert func(i int)           // one durable insert transaction
	verify func(completed, n int) error
}

func newRunner(name string, pool *pmem.Pool) (*kvRunner, error) {
	switch name {
	case "redodb":
		var s *redodb.Session
		return &kvRunner{
			fresh: func(p *pmem.Pool) {
				s = redodb.Open(p, redodb.Options{Threads: 1}).Session(0)
			},
			insert: func(i int) {
				s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte{byte(i)})
			},
			verify: func(completed, n int) error {
				for i := 0; i < completed; i++ {
					v, ok := s.Get([]byte(fmt.Sprintf("k%03d", i)))
					if !ok || v[0] != byte(i) {
						return fmt.Errorf("completed put %d lost", i)
					}
				}
				return nil
			},
		}, nil
	case "ONLL":
		var o *onll.ONLL
		set := seqds.ListSet{RootSlot: 0}
		ops := map[uint16]onll.OpFunc{
			1: func(m ptm.Mem, args []uint64) uint64 {
				if set.Add(m, args[0]) {
					return 1
				}
				return 0
			},
		}
		return &kvRunner{
			fresh: func(p *pmem.Pool) {
				o = onll.New(p, onll.Config{
					Threads: 1,
					Ops:     ops,
					Init: func(m ptm.Mem, args []uint64) uint64 {
						set.Init(m)
						return 0
					},
				})
			},
			insert: func(i int) { o.Update(0, 1, uint64(i)+1) },
			verify: func(completed, n int) error {
				keys := seqds.ReadSlice(o, 0, set.Keys)
				if len(keys) < completed || len(keys) > n {
					return fmt.Errorf("recovered %d keys, completed %d of %d", len(keys), completed, n)
				}
				for i, k := range keys {
					if k != uint64(i)+1 {
						return fmt.Errorf("recovered state not a prefix at %d", i)
					}
				}
				return nil
			},
		}, nil
	case "rockssim":
		var db *rockssim.DB
		return &kvRunner{
			fresh: func(p *pmem.Pool) { db = rockssim.Open(p, rockssim.Options{}) },
			insert: func(i int) {
				db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte{byte(i)})
			},
			verify: func(completed, n int) error {
				for i := 0; i < completed; i++ {
					v, ok := db.Get([]byte(fmt.Sprintf("k%03d", i)))
					if !ok || v[0] != byte(i) {
						return fmt.Errorf("completed put %d lost", i)
					}
				}
				return nil
			},
		}, nil
	default:
		eng, err := bench.EngineByName(name)
		if err != nil {
			return nil, err
		}
		var p ptm.PTM
		set := seqds.ListSet{RootSlot: 0}
		return &kvRunner{
			fresh: func(pool *pmem.Pool) {
				p = rebuild(eng, pool)
				p.Update(0, func(m ptm.Mem) uint64 {
					if m.Load(ptm.RootAddr(0)) == 0 {
						set.Init(m)
					}
					return 0
				})
			},
			insert: func(i int) {
				p.Update(0, func(m ptm.Mem) uint64 {
					set.Add(m, uint64(i)+1)
					return 0
				})
			},
			verify: func(completed, n int) error {
				keys := seqds.ReadSlice(p, 0, set.Keys)
				if len(keys) < completed || len(keys) > n {
					return fmt.Errorf("recovered %d keys, completed %d of %d", len(keys), completed, n)
				}
				for i, k := range keys {
					if k != uint64(i)+1 {
						return fmt.Errorf("recovered state not a prefix at %d", i)
					}
				}
				return nil
			},
		}, nil
	}
}

// engineRegions mirrors the factories' replica counts for a strict pool.
func poolFor(name string) *pmem.Pool {
	regions := 2
	switch name {
	case "rockssim":
		regions = 3
	case "ONLL":
		regions = 1
	}
	return pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: regions})
}

// rebuild instantiates a bench engine over an existing strict pool. The
// bench factories create their own pools, so crashcheck goes through the
// engine-specific constructors indirectly: it relies on each construction's
// New adopting a recovered pool.
func rebuild(eng bench.Engine, pool *pmem.Pool) ptm.PTM {
	return eng.NewOnPool(1, pool)
}

func sweep(name string, n int, stride int64, adversarial bool) (int, error) {
	rng := rand.New(rand.NewSource(2020))
	crashes := 0
	for fail := int64(1); ; fail += stride {
		pool := poolFor(name)
		r, err := newRunner(name, pool)
		if err != nil {
			return crashes, err
		}
		completed := 0
		crashed := false
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					if rec != pmem.ErrSimulatedPowerFailure {
						panic(rec)
					}
					crashed = true
				}
				pool.InjectFailure(-1)
			}()
			r.fresh(pool)
			pool.InjectFailure(fail)
			for i := 0; i < n; i++ {
				r.insert(i)
				completed++
			}
		}()
		if !crashed {
			if completed != n {
				return crashes, fmt.Errorf("no crash but only %d/%d completed", completed, n)
			}
			return crashes, nil
		}
		crashes++
		if adversarial {
			pool.Crash(pmem.CrashAdversarial, rng)
		} else {
			pool.Crash(pmem.CrashConservative, nil)
		}
		r2, _ := newRunner(name, pool)
		r2.fresh(pool)
		if err := r2.verify(completed, n); err != nil {
			return crashes, fmt.Errorf("crash point %d: %w", fail, err)
		}
	}
}
