// Command crashcheck validates durable linearizability of every
// construction by systematic crash-point exploration: it re-runs a
// deterministic insert workload, injecting a simulated power failure at
// successive persistent-memory instruction boundaries, and after each crash
// verifies that recovery yields a consistent state containing every
// completed transaction. Both the conservative model (unflushed lines are
// lost) and the adversarial model (unflushed dirty lines may spuriously
// persist with word-granularity tearing, as with cache evictions) are
// exercised.
//
// Beyond the single-crash sweep, -nested explores *pairs* of crash points —
// crash the workload, then crash recovery itself at every instruction
// boundary, recover fully, verify — and -corrupt flips bits in the spans
// each engine declares unreachable from committed state, asserting recovery
// either succeeds with a correct answer or fails with a typed corruption
// error, never a panic or a silent wrong answer. -retrystorm sweeps the
// detectable-operation engines: after every crash the client probes
// WasApplied and retries every request, and the sweep asserts each acked
// request survived exactly once and each unacked one is absent or detectably
// applied — never duplicated.
//
// Every sweep is deterministic in (engine, seed, ops, stride): on failure
// crashcheck prints the failing (seed, engine, crash-point) triple and a
// single command that reproduces it.
//
//	crashcheck                        # all engines, single-crash sweep
//	crashcheck -engine CX-PTM -ops 40 -stride 3
//	crashcheck -nested                # crash-during-recovery pairs
//	crashcheck -corrupt -seed 7       # bit flips in stale spans
//	crashcheck -retrystorm            # exactly-once retry sweeps
//	crashcheck -retrystorm -engine detect-shardeddb-8 -point 137
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/chaos"
)

func main() {
	var (
		engine     = flag.String("engine", "all", "engine name(s, comma-separated) or 'all'")
		ops        = flag.Int("ops", 25, "insert transactions per crash run")
		stride     = flag.Int64("stride", 0, "crash-point stride in PM instructions (0 = auto)")
		stride2    = flag.Int64("stride2", 1, "recovery crash-point stride for -nested")
		nested     = flag.Bool("nested", false, "sweep (first, second) crash-point pairs: crash during recovery")
		corrupt    = flag.Bool("corrupt", false, "flip bits in stale spans after each crash")
		retrystorm = flag.Bool("retrystorm", false, "sweep detectable engines: crash, probe WasApplied, retry, assert exactly-once")
		seed       = flag.Int64("seed", 2020, "RNG seed for adversarial tearing and bit-flip placement")
		point      = flag.Int64("point", 0, "reproduce a single -retrystorm crash point instead of sweeping")
	)
	flag.Parse()

	mode := ""
	names := chaos.Engines()
	switch {
	case *nested:
		mode = "-nested"
	case *corrupt:
		mode = "-corrupt"
	case *retrystorm:
		mode = "-retrystorm"
		names = chaos.StormEngines()
	}
	if *engine != "all" {
		names = strings.Split(*engine, ",")
	}
	failed := false
	report := func(name, label string, err error) {
		fmt.Printf("%-20s %-13s FAIL: %v\n", name, label, err)
		var pe *chaos.PointError
		if errors.As(err, &pe) {
			pair := fmt.Sprintf("%d", pe.First)
			if pe.Second != 0 {
				pair = fmt.Sprintf("(%d,%d)", pe.First, pe.Second)
			}
			fmt.Printf("  failing triple: seed=%d engine=%s crash-point=%s\n", pe.Seed, pe.Engine, pair)
			cmd := fmt.Sprintf("go run ./cmd/crashcheck %s -engine %s -ops %d -stride %d -seed %d",
				mode, pe.Engine, *ops, *stride, pe.Seed)
			if mode == "-nested" {
				cmd += fmt.Sprintf(" -stride2 %d", *stride2)
			}
			if mode == "-retrystorm" {
				cmd += fmt.Sprintf(" -point %d", pe.First)
			}
			fmt.Printf("  re-run: %s\n", cmd)
		}
		failed = true
	}
	for _, name := range names {
		for _, adversarial := range []bool{false, true} {
			label := "conservative"
			if adversarial {
				label = "adversarial"
			}
			opts := chaos.Options{
				Ops:         *ops,
				Stride:      *stride,
				Stride2:     *stride2,
				Adversarial: adversarial,
				Seed:        *seed,
			}
			switch {
			case *retrystorm && *point > 0:
				if err := chaos.CheckStormPoint(name, opts, *point); err != nil {
					report(name, label, err)
					continue
				}
				fmt.Printf("%-20s %-13s OK (crash point %d recovered exactly-once)\n",
					name, label, *point)
			case *retrystorm:
				crashes, err := chaos.RetryStorm(name, opts)
				if err != nil {
					report(name, label, err)
					continue
				}
				fmt.Printf("%-20s %-13s OK (%d crash points, every request exactly once)\n",
					name, label, crashes)
			case *nested:
				pairs, err := chaos.NestedSweep(name, opts)
				if err != nil {
					report(name, label, err)
					continue
				}
				fmt.Printf("%-20s %-13s OK (%d nested crash pairs, all recovered consistently)\n",
					name, label, pairs)
			case *corrupt:
				flips, err := chaos.CorruptionSweep(name, opts)
				if err != nil {
					report(name, label, err)
					continue
				}
				fmt.Printf("%-20s %-13s OK (%d bit flips, none panicked or corrupted an answer)\n",
					name, label, flips)
			default:
				crashes, err := chaos.Sweep(name, opts)
				if err != nil {
					report(name, label, err)
					continue
				}
				fmt.Printf("%-20s %-13s OK (%d crash points, all recovered consistently)\n",
					name, label, crashes)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
