// Command obsdump inspects a persistence-event trace captured by the
// runtime observability layer (internal/obs) and written as JSON, e.g. by
// `dbbench -trace` or a test's Trace.WriteFile. It prints the per-kind
// event tally and the instruction counters reconstructed from the trace,
// replays the trace through the dynamic ordering checker, and — with -v —
// dumps every event as one line.
//
//	obsdump trace.json
//	obsdump -v trace.json
//	obsdump -relaxed trace.json   # concurrent trace: relaxed header rule
//	obsdump -nocheck trace.json   # summary only
//
// Exit status is 1 when the checker reports ordering violations (or the
// trace is malformed), so obsdump can gate scripts.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	var (
		verbose = flag.Bool("v", false, "dump every event")
		relaxed = flag.Bool("relaxed", false, "relaxed header rule for concurrent traces")
		nocheck = flag.Bool("nocheck", false, "skip the ordering checker")
		maxViol = flag.Int("max", 0, "cap reported violations (0 = default)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: obsdump [-v] [-relaxed] [-nocheck] trace.json")
		os.Exit(2)
	}
	tr, err := obs.ReadTraceFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "obsdump: %v\n", err)
		os.Exit(1)
	}
	tr.Summary(os.Stdout)
	if *verbose {
		fmt.Println()
		for _, e := range tr.Events {
			fmt.Println(e.String())
		}
	}
	if *nocheck {
		return
	}
	viol, err := obs.CheckOrdering(tr, obs.CheckOptions{
		RelaxedHeaders: *relaxed,
		MaxViolations:  *maxViol,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "obsdump: %v\n", err)
		os.Exit(1)
	}
	if len(viol) > 0 {
		fmt.Printf("\nordering violations: %d\n", len(viol))
		for _, v := range viol {
			fmt.Println("  " + v.String())
		}
		os.Exit(1)
	}
	fmt.Println("ordering check: clean")
}
