// Command kvserver serves the wire protocol (internal/wire) over TCP
// against a sharded RedoDB on emulated persistent memory — the network
// front-end for cmd/kvload and any other client speaking the v1 framing.
//
//	kvserver -addr 127.0.0.1:7070 -shards 8 -threads 16
//	kvserver -addr 127.0.0.1:0 -addrfile /tmp/kv.addr -buffered
//
// -addrfile writes the actually-bound address (useful with port 0) so
// scripts can start the server in the background and wait for readiness by
// polling the file; ci.sh's loopback smoke does exactly that.
//
// The store lives on the simulated pmem heap, so its contents do not
// survive the process; kvserver exists to serve real sockets — pipelining,
// batching, backpressure, durability flags — not to be a durable daemon.
// In -buffered mode writes commit into the in-flight epoch and a
// background persister seals it every -persist-every; clients order
// themselves against the watermark with SYNC or FlagDurable.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/pmem"
	"repro/internal/server"
	"repro/internal/shardeddb"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7070", "listen address (port 0 picks a free port)")
		addrFile     = flag.String("addrfile", "", "write the bound address to this file once listening")
		shards       = flag.Int("shards", 8, "shard count")
		threads      = flag.Int("threads", 16, "concurrent connections served (thread-id pool)")
		buffered     = flag.Bool("buffered", false, "relaxed durability: group commit with epoch watermarks")
		persistEvery = flag.Duration("persist-every", 200*time.Microsecond, "buffered-mode persister cadence")
		shardWords   = flag.Uint64("shard-words", 1<<18, "words of emulated pmem per shard")
		maxBatch     = flag.Int("max-batch", 64, "per-connection write-batch flush threshold")
	)
	flag.Parse()

	g := shardeddb.NewGroup(shardeddb.GroupConfig{
		Shards:     *shards,
		Threads:    *threads,
		ShardWords: *shardWords,
		Mode:       pmem.Direct,
		Buffered:   *buffered,
	})
	db := shardeddb.Open(g, shardeddb.Options{
		Threads:      *threads,
		Buffered:     *buffered,
		PersistEvery: *persistEvery,
	})
	defer db.Close()

	srv := server.New(db, server.Options{Threads: *threads, MaxBatch: *maxBatch})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: listen %s: %v\n", *addr, err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "kvserver: addrfile: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("kvserver: serving %d shards on %s (buffered=%v threads=%d)\n",
		*shards, bound, *buffered, *threads)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		srv.Stop()
	}()

	if err := srv.Serve(ln); err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: %v\n", err)
		os.Exit(1)
	}
	srv.Wait()
}
