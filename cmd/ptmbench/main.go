// Command ptmbench regenerates the PTM figures and tables of the paper's
// evaluation (§6) on the emulated persistent memory:
//
//	ptmbench -fig fig4                 # SPS microbenchmark (Figure 4)
//	ptmbench -fig fig5                 # persistent queue (Figure 5)
//	ptmbench -fig fig6 -ds tree        # set benchmarks (Figure 6)
//	ptmbench -fig table1               # update-cost breakdown (Table 1)
//	ptmbench -fig props                # §2 PTM comparison table
//	ptmbench -fig all -scale 100       # everything, scaled down 100×
//
// -scale divides the paper's key counts (10^6 keys for tree/hash, 10^4 for
// the list, 10^6 SPS entries) so the suite completes on a laptop; the paper
// ran 20-second data points on a 40-thread Optane machine, which -secs and
// -threads restore.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/pmem"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "fig4 | fig5 | fig6 | table1 | ablation | props | all")
		ds      = flag.String("ds", "all", "fig6 data structure: list | tree | hash | all")
		threads = flag.String("threads", "1,2,4,8", "comma-separated thread counts")
		secs    = flag.Float64("secs", 1.0, "seconds per data point (paper: 20)")
		scale   = flag.Uint64("scale", 100, "divide the paper's sizes by this factor")
		engines = flag.String("engines", "all", "comma-separated engine names or 'all'")
		optane  = flag.Bool("optane", true, "inject Optane-like pwb/fence latencies")
	)
	flag.Parse()

	cfg := bench.FigConfig{
		Threads: parseThreads(*threads),
		Dur:     time.Duration(*secs * float64(time.Second)),
		Out:     os.Stdout,
	}
	if *optane {
		cfg.Lat = pmem.DefaultOptane
	}
	if *engines == "all" {
		cfg.Engines = bench.AllEngines()
	} else {
		for _, name := range strings.Split(*engines, ",") {
			e, err := bench.EngineByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			cfg.Engines = append(cfg.Engines, e)
		}
	}

	spsSize := max64(1_000_000 / *scale, 4096)
	bigKeys := max64(1_000_000 / *scale, 2048)
	listKeys := max64(10_000 / *scale, 512)

	run := func(name string) {
		switch name {
		case "props":
			bench.PropsTable(cfg.Out)
		case "fig4":
			bench.Fig4SPS(cfg, spsSize, []int{1, 8, 64})
		case "fig5":
			bench.Fig5Queue(cfg, 1000)
		case "fig6":
			structures := []string{"list", "tree", "hash"}
			if *ds != "all" {
				structures = []string{*ds}
			}
			for _, s := range structures {
				keys := bigKeys
				if s == "list" {
					keys = listKeys
				}
				bench.Fig6Set(cfg, s, keys, []int{100, 10, 1})
			}
		case "table1":
			bench.Table1(cfg.Out, bigKeys, clampThreads(cfg.Threads, []int{4, 16}), cfg.Dur, cfg)
		case "ablation":
			bench.Ablation(cfg)
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", name)
			os.Exit(2)
		}
	}

	if *fig == "all" {
		for _, f := range []string{"props", "fig4", "fig5", "fig6", "table1", "ablation"} {
			run(f)
		}
		return
	}
	run(*fig)
}

func parseThreads(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad thread count %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

// clampThreads keeps the paper's Table 1 thread counts that do not exceed
// what the user asked for.
func clampThreads(allowed, want []int) []int {
	maxA := 0
	for _, t := range allowed {
		if t > maxA {
			maxA = t
		}
	}
	var out []int
	for _, t := range want {
		if t <= maxA {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		out = []int{maxA}
	}
	return out
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
