// Command dbbench regenerates the RedoDB vs RocksDB figures (7–9) with
// db_bench-style workloads on the emulated persistent memory: readrandom,
// readwhilewriting, overwrite, fillrandom, plus the memory-usage and
// recovery-time measurements.
//
//	dbbench -fig fig7 -keys 100000
//	dbbench -fig fig8
//	dbbench -fig fig9 -threads 1,2,4,8
//	dbbench -fig sharding -shards 1,2,4,8
//	dbbench -json BENCH_pr4.json -shards 1,8 -keys 10000 -secs 0.25
//	dbbench -json BENCH_pr5.json -valuesize 64,256,1024 -keys 5000 -secs 0.25
//	dbbench -json BENCH_pr7.json -detect -keys 10000 -secs 0.25
//	dbbench -json BENCH_pr8.json -sync buffered -depth 1,8,64 -keys 10000 -secs 0.25
//	dbbench -json BENCH_pr10.json -space 100,1024,8192 -keys 2000
//	dbbench -trace trace.json -engine Redo-PTM -ops 64
//
// -trace runs a bounded single-threaded workload on one PTM engine with
// event tracing attached (including a traced recovery pass), writes the
// captured trace as JSON for cmd/obsdump, verifies it with the dynamic
// ordering checker, and prints the op/commit/recovery latency histograms.
//
// The paper ran 10^6 and 10^7 keys (16-byte keys, 100-byte values) on real
// Optane; -keys scales the database so the suite completes on a laptop.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/pmem"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "fig7 | fig8 | fig9 | sharding | all")
		keys     = flag.Uint64("keys", 100_000, "distinct keys (paper: 1e6 and 1e7)")
		threads  = flag.String("threads", "1,2,4,8", "comma-separated thread counts")
		secs     = flag.Float64("secs", 1.0, "seconds per data point (paper: 20)")
		optane   = flag.Bool("optane", true, "inject Optane-like pwb/fence latencies")
		shards   = flag.String("shards", "1,2,4,8", "comma-separated shard counts for the sharding figure")
		vsizes   = flag.String("valuesize", "", "comma-separated value sizes in bytes: run the bulk-vs-word fillrandom sweep instead of the sharding cells (with -json)")
		space    = flag.String("space", "", "comma-separated value sizes in bytes: run the arena-vs-legacy allocator space figure instead of the sharding cells (with -json)")
		detect   = flag.Bool("detect", false, "run the plain-vs-detectable Put overhead cells instead of the sharding cells (with -json)")
		syncMode = flag.String("sync", "", "\"buffered\": run the group-commit fillrandom sweep (sync baseline + one cell per -depth) instead of the sharding cells (with -json)")
		depths   = flag.String("depth", "1,8,64", "comma-separated Sync batch depths for -sync=buffered")
		jsonPath = flag.String("json", "", "write tracked sharded-bench entries to this file and exit")
		trace    = flag.String("trace", "", "write a traced engine run to this file and exit")
		engine   = flag.String("engine", "Redo-PTM", "PTM engine for -trace (see ptmbench for names)")
		ops      = flag.Int("ops", 64, "update transactions for -trace")
	)
	flag.Parse()

	if *trace != "" {
		res, err := bench.TraceRun(*engine, *ops)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace run: %v\n", err)
			os.Exit(1)
		}
		if err := res.Trace.WriteFile(*trace); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *trace, err)
			os.Exit(1)
		}
		fmt.Printf("# %s — %d ops, trace written to %s\n", res.Engine, res.Ops, *trace)
		res.Trace.Summary(os.Stdout)
		snaps := res.Lat.Snapshot()
		for _, phase := range []string{"op", "commit", "recovery"} {
			fmt.Println(snaps[phase].Fprint(phase))
		}
		if len(res.Violations) > 0 {
			fmt.Printf("ordering violations: %d\n", len(res.Violations))
			for _, v := range res.Violations {
				fmt.Println("  " + v.String())
			}
			os.Exit(1)
		}
		fmt.Println("ordering check: clean")
		return
	}

	parseInts := func(s, what string) []int {
		var out []int
		for _, part := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "bad %s %q\n", what, part)
				os.Exit(2)
			}
			out = append(out, n)
		}
		return out
	}
	ts := parseInts(*threads, "thread count")
	sh := parseInts(*shards, "shard count")
	// Size regions for ~40 words per pair plus headroom; WAL/journal and
	// checkpoint regions use the same size. The value-size sweep needs
	// room for its largest payload (power-of-two size classes double the
	// worst case) instead of the default 100-byte values.
	perKey := uint64(64)
	if *vsizes != "" {
		for _, v := range parseInts(*vsizes, "value size") {
			if need := uint64(v)/8*4 + 64; need > perKey {
				perKey = need
			}
		}
	}
	if *space != "" {
		for _, v := range parseInts(*space, "value size") {
			if need := uint64(v)/8*4 + 64; need > perKey {
				perKey = need
			}
		}
	}
	words := uint64(1) << 16
	for words < *keys*perKey+(1<<16) {
		words *= 2
	}
	cfg := bench.DBConfig{
		Keys:    *keys,
		Threads: ts,
		Dur:     time.Duration(*secs * float64(time.Second)),
		Words:   words,
		Out:     os.Stdout,
	}
	if *optane {
		cfg.Lat = pmem.DefaultOptane
	}
	if *jsonPath != "" {
		// Tracked-benchmark mode: persist a trajectory file. With
		// -valuesize, the cells are the bulk-vs-word payload sweep;
		// otherwise the sharded front-end at each shard count. threads is
		// the max of -threads so CI runs stay one bounded cell per
		// workload.
		var entries []bench.BenchEntry
		if *syncMode != "" {
			if *syncMode != "buffered" {
				fmt.Fprintf(os.Stderr, "unknown -sync mode %q (only \"buffered\")\n", *syncMode)
				os.Exit(2)
			}
			entries = bench.BufferedEntries(cfg, ts[len(ts)-1], parseInts(*depths, "batch depth"))
		} else if *detect {
			entries = bench.DetectEntries(cfg, ts[len(ts)-1])
		} else if *vsizes != "" {
			entries = bench.ValueSizeEntries(cfg, parseInts(*vsizes, "value size"), ts[len(ts)-1])
		} else if *space != "" {
			entries = bench.SpaceEntries(cfg, parseInts(*space, "value size"), ts[len(ts)-1])
		} else {
			entries = bench.ShardingEntries(cfg, sh, ts[len(ts)-1])
		}
		if err := bench.WriteBenchJSON(*jsonPath, entries); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d entries to %s\n", len(entries), *jsonPath)
		return
	}
	switch *fig {
	case "fig7":
		bench.Fig7(cfg)
	case "fig8":
		bench.Fig8(cfg)
	case "fig9":
		bench.Fig9(cfg)
	case "sharding":
		bench.FigSharding(cfg, sh)
	case "all":
		bench.Fig7(cfg)
		bench.Fig8(cfg)
		bench.Fig9(cfg)
		bench.FigSharding(cfg, sh)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
