// Command pmemvet runs the repro static-analysis suite (internal/analysis)
// over the module: determinism and purity of transaction closures (puredet),
// the read-only contract of Read closures (readonly), flush-before-fence
// ordering on pmem call sites (fenceorder), and literal thread ids against
// configured thread counts (tidrange).
//
// Usage:
//
//	go run ./cmd/pmemvet ./...          # whole module
//	go run ./cmd/pmemvet ./internal/core/redo ./examples/bank
//
// Diagnostics print as file:line:col: analyzer: message, one per line, and a
// non-empty run exits 1. A violation can be silenced — with a mandatory
// justification — by the directive
//
//	//pmemvet:allow <analyzer> -- <reason>
//
// on the flagged line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pmemvet [packages]\n\npackages are ./dir or ./... patterns; default ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmemvet:", err)
		os.Exit(2)
	}

	var pkgs []*analysis.Pkg
	seen := make(map[string]bool)
	add := func(units []*analysis.Pkg) {
		for _, u := range units {
			key := u.Path + "/" + u.Unit
			if !seen[key] {
				seen[key] = true
				pkgs = append(pkgs, u)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			units, err := loader.LoadAll()
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmemvet:", err)
				os.Exit(2)
			}
			add(units)
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			subs, err := goDirsUnder(root)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmemvet:", err)
				os.Exit(2)
			}
			for _, dir := range subs {
				units, err := loader.LoadDir(dir)
				if err != nil {
					fmt.Fprintln(os.Stderr, "pmemvet:", err)
					os.Exit(2)
				}
				add(units)
			}
		default:
			units, err := loader.LoadDir(pat)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmemvet:", err)
				os.Exit(2)
			}
			add(units)
		}
	}
	if errs := loader.Errors(); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "pmemvet: type error:", e)
		}
		os.Exit(2)
	}

	diags := analysis.Run(pkgs, loader.Fset, analysis.All())
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(".", pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pmemvet: %d problem(s)\n", len(diags))
		os.Exit(1)
	}
}

// goDirsUnder lists directories under root (inclusive) containing Go files,
// skipping testdata, hidden and underscore-prefixed directories.
func goDirsUnder(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}
