// Command pmemvet runs the repro static-analysis suite (internal/analysis)
// over the module: determinism and purity of transaction closures (puredet),
// the read-only contract of Read closures (readonly), interprocedural
// flush-before-fence ordering on pmem call sites (fenceorder), record
// commit-word publication (commitpoint), DRAM-address taint into persistent
// stores (transientref), and literal thread ids against configured thread
// counts (tidrange).
//
// Usage:
//
//	go run ./cmd/pmemvet ./...          # whole module
//	go run ./cmd/pmemvet -json ./internal/core/redo ./examples/bank
//
// Diagnostics print as file:line:col: analyzer: message, one per line —
// deduplicated and deterministically sorted, so CI output is diffable —
// and a non-empty run exits 1. With -json, diagnostics print instead as a
// single JSON array of objects with file, line, col, analyzer, message and
// a ready-to-paste allow directive. A violation can be silenced — with a
// mandatory justification — by the directive
//
//	//pmemvet:allow <analyzer> -- <reason>
//
// on the flagged line or the line above it, or for a whole function by
//
//	//pmemvet:allow:<analyzer> -- <reason>
//
// in the function's doc comment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// jsonDiag is the machine-readable form of one diagnostic. Allow holds a
// ready-to-paste per-line suppression directive (reason to be filled in).
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Allow    string `json:"allow"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array instead of text lines")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pmemvet [-json] [packages]\n\npackages are ./dir or ./... patterns; default ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmemvet:", err)
		os.Exit(2)
	}

	var pkgs []*analysis.Pkg
	seen := make(map[string]bool)
	add := func(units []*analysis.Pkg) {
		for _, u := range units {
			key := u.Path + "/" + u.Unit
			if !seen[key] {
				seen[key] = true
				pkgs = append(pkgs, u)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			units, err := loader.LoadAll()
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmemvet:", err)
				os.Exit(2)
			}
			add(units)
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			subs, err := goDirsUnder(root)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmemvet:", err)
				os.Exit(2)
			}
			for _, dir := range subs {
				units, err := loader.LoadDir(dir)
				if err != nil {
					fmt.Fprintln(os.Stderr, "pmemvet:", err)
					os.Exit(2)
				}
				add(units)
			}
		default:
			units, err := loader.LoadDir(pat)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmemvet:", err)
				os.Exit(2)
			}
			add(units)
		}
	}
	if errs := loader.Errors(); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "pmemvet: type error:", e)
		}
		os.Exit(2)
	}

	diags := analysis.Run(pkgs, loader.Fset, analysis.All())
	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     relPath(d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Allow:    fmt.Sprintf("//pmemvet:allow %s -- <reason>", d.Analyzer),
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "pmemvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			pos := d.Pos
			pos.Filename = relPath(pos.Filename)
			fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pmemvet: %d problem(s)\n", len(diags))
		os.Exit(1)
	}
}

// relPath rewrites an absolute filename relative to the working directory
// when it is inside it, keeping output stable across checkouts.
func relPath(name string) string {
	if rel, err := filepath.Rel(".", name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

// goDirsUnder lists directories under root (inclusive) containing Go files,
// skipping testdata, hidden and underscore-prefixed directories.
func goDirsUnder(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}
