// Command redodb is an interactive shell (and one-shot CLI) for RedoDB, the
// wait-free durable key-value store, over a file-backed emulated-NVMM pool:
//
//	redodb -db /tmp/shop.pmem put user:1 alice
//	redodb -db /tmp/shop.pmem get user:1
//	redodb -db /tmp/shop.pmem scan user:
//	redodb -db /tmp/shop.pmem            # interactive shell
//
// Every mutation is a durable linearizable transaction; the pool snapshot is
// rewritten on exit (and after every one-shot command), so state survives
// across invocations like a real persistent-memory application.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/pmem"
	"repro/internal/redodb"
)

func main() {
	var (
		dbPath = flag.String("db", "redodb.pmem", "pool snapshot file")
		words  = flag.Uint64("words", 1<<20, "region size in 64-bit words for a fresh pool")
	)
	flag.Parse()

	pool, fresh, err := openPool(*dbPath, *words)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	db := redodb.Open(pool, redodb.Options{Threads: 1})
	s := db.Session(0)
	if fresh {
		fmt.Fprintf(os.Stderr, "created new pool (%d×%d words)\n", pool.Regions(), pool.RegionWords())
	} else {
		fmt.Fprintf(os.Stderr, "opened %s: %d keys\n", *dbPath, s.Len())
	}

	save := func() {
		if err := pool.WriteFile(*dbPath); err != nil {
			fmt.Fprintln(os.Stderr, "snapshot failed:", err)
			os.Exit(1)
		}
	}

	if args := flag.Args(); len(args) > 0 {
		if code := run(s, db, args); code != 0 {
			os.Exit(code)
		}
		save()
		return
	}

	// Interactive shell.
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("redodb> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) > 0 {
			if fields[0] == "quit" || fields[0] == "exit" {
				break
			}
			run(s, db, fields)
		}
		fmt.Print("redodb> ")
	}
	save()
	fmt.Fprintln(os.Stderr, "snapshot saved to", *dbPath)
}

func openPool(path string, words uint64) (*pmem.Pool, bool, error) {
	pool, err := pmem.ReadFile(path)
	if err == nil {
		return pool, false, nil
	}
	if !errors.Is(err, os.ErrNotExist) {
		return nil, false, err
	}
	return pmem.New(pmem.Config{
		Mode:        pmem.Strict,
		RegionWords: words,
		Regions:     2, // one thread → N+1 replicas
	}), true, nil
}

func run(s *redodb.Session, db *redodb.DB, args []string) int {
	switch args[0] {
	case "put":
		if len(args) != 3 {
			return usage("put <key> <value>")
		}
		s.Put([]byte(args[1]), []byte(args[2]))
		fmt.Println("OK")
	case "get":
		if len(args) != 2 {
			return usage("get <key>")
		}
		v, ok := s.Get([]byte(args[1]))
		if !ok {
			fmt.Println("(not found)")
			return 1
		}
		fmt.Println(string(v))
	case "del":
		if len(args) != 2 {
			return usage("del <key>")
		}
		if s.Delete([]byte(args[1])) {
			fmt.Println("OK")
		} else {
			fmt.Println("(not found)")
			return 1
		}
	case "scan":
		prefix := ""
		if len(args) > 1 {
			prefix = args[1]
		}
		it := s.NewIterator()
		if prefix != "" {
			it.Seek([]byte(prefix))
			for it.Valid() && strings.HasPrefix(string(it.Key()), prefix) {
				fmt.Printf("%s = %s\n", it.Key(), it.Value())
				if !it.Next() {
					break
				}
			}
		} else {
			for it.Next() {
				fmt.Printf("%s = %s\n", it.Key(), it.Value())
			}
		}
	case "len":
		fmt.Println(s.Len())
	case "stats":
		fmt.Printf("keys=%d nvmm_used=%dB engine=%s\n",
			s.Len(), db.NVMUsedBytes(), db.Engine().Name())
	case "batch":
		// batch put k1 v1 put k2 v2 del k3 … — applied atomically.
		b := &redodb.WriteBatch{}
		i := 1
		for i < len(args) {
			switch args[i] {
			case "put":
				if i+2 >= len(args) {
					return usage("batch … put <key> <value> …")
				}
				b.Put([]byte(args[i+1]), []byte(args[i+2]))
				i += 3
			case "del":
				if i+1 >= len(args) {
					return usage("batch … del <key> …")
				}
				b.Delete([]byte(args[i+1]))
				i += 2
			default:
				return usage("batch [put <k> <v> | del <k>]…")
			}
		}
		s.Write(b)
		fmt.Printf("OK (%d ops, atomic)\n", b.Len())
	case "help":
		fmt.Println("commands: put get del scan len stats batch quit")
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q (try help)\n", args[0])
		return 2
	}
	return 0
}

func usage(u string) int {
	fmt.Fprintln(os.Stderr, "usage:", u)
	return 2
}
