// Command kvload drives YCSB-style traffic at a running kvserver over the
// wire protocol: zipfian hot keys, pipelined connections, open-loop Poisson
// arrivals at an offered rate, and client- plus server-side latency
// percentiles per cell.
//
//	kvload -addr 127.0.0.1:7070 -workloads ycsb-b -rates 8000 -secs 2
//	kvload -addr $(cat /tmp/kv.addr) -workloads ycsb-a,ycsb-b,ycsb-c,ycsb-f \
//	       -rates 4000,16000 -conns 4 -secs 0.4 -json BENCH_pr9.json
//
// Cells are the cross product of -workloads and -rates (rate 0 = closed
// loop). The key space is preloaded once, then each cell resets the
// server's stats so its reported server-side p50/p99 cover exactly that
// cell. YCSB-F's read-modify-writes go through the detectable exactly-once
// path; every cell verifies its receipts afterwards (sequence range,
// applied count, dedup on a re-sent request) and any mismatch counts as a
// cell error — a run exits nonzero if any cell saw errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/load"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "kvserver address")
		workloads = flag.String("workloads", "ycsb-b", "comma-separated mixes: ycsb-a, ycsb-b, ycsb-c, ycsb-f")
		rates     = flag.String("rates", "0", "comma-separated offered loads in ops/s (0 = closed loop)")
		conns     = flag.Int("conns", 4, "pipelined connections per cell")
		secs      = flag.Float64("secs", 2.0, "seconds per cell")
		keys      = flag.Int("keys", 10_000, "preloaded key-space size")
		valueSize = flag.Int("valuesize", 100, "value payload bytes")
		theta     = flag.Float64("theta", 0.99, "zipfian skew")
		window    = flag.Int("window", 64, "max in-flight ops per connection")
		seed      = flag.Int64("seed", 1, "workload rng seed")
		jsonPath  = flag.String("json", "", "write bench entries to this file")
	)
	flag.Parse()

	var rateList []float64
	for _, r := range strings.Split(*rates, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(r), 64)
		if err != nil {
			fatalf("bad -rates entry %q: %v", r, err)
		}
		rateList = append(rateList, v)
	}
	var mixes []load.Mix
	for _, w := range strings.Split(*workloads, ",") {
		m, err := load.MixByName(strings.TrimSpace(w))
		if err != nil {
			fatalf("%v", err)
		}
		mixes = append(mixes, m)
	}

	fmt.Printf("kvload: preloading %d keys (%d B values) at %s\n", *keys, *valueSize, *addr)
	if err := load.Preload(*addr, *keys, *valueSize); err != nil {
		fatalf("preload: %v", err)
	}

	var entries []bench.BenchEntry
	var totalErrs uint64
	clientBase := uint64(0)
	for _, mix := range mixes {
		for _, rate := range rateList {
			res, err := load.Run(load.RunConfig{
				Addr:       *addr,
				Mix:        mix,
				Conns:      *conns,
				Duration:   time.Duration(*secs * float64(time.Second)),
				Rate:       rate,
				Keys:       *keys,
				ValueSize:  *valueSize,
				Theta:      *theta,
				Window:     *window,
				ClientBase: clientBase,
				Seed:       *seed,
			})
			// Fresh detectable client ids per cell so receipt verification
			// sees exactly one cell's sequence range.
			clientBase += uint64(*conns)
			if err != nil {
				fatalf("cell (%s, %.0f/s): %v", mix.Name, rate, err)
			}
			fmt.Printf("%-7s offered %7.0f/s achieved %8.0f/s  client p50 %8v p99 %8v  server p50 %8v p99 %8v  errors %d\n",
				res.Workload, res.Offered, res.Achieved,
				res.ClientP50, res.ClientP99, res.ServerP50, res.ServerP99, res.Errors)
			totalErrs += res.Errors
			entries = append(entries, bench.BenchEntry{
				Workload:      res.Workload,
				Engine:        "shardeddb-net",
				Threads:       *conns,
				Conns:         *conns,
				ValueSize:     *valueSize,
				OpsPerSec:     res.Achieved,
				OfferedPerSec: res.Offered,
				P50Ns:         int64(res.ClientP50),
				P99Ns:         int64(res.ClientP99),
				ServerP50Ns:   int64(res.ServerP50),
				ServerP99Ns:   int64(res.ServerP99),
				Errors:        res.Errors,
			})
		}
	}

	if *jsonPath != "" {
		out, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			fatalf("marshal: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			fatalf("write %s: %v", *jsonPath, err)
		}
		fmt.Printf("kvload: wrote %d entries to %s\n", len(entries), *jsonPath)
	}
	if totalErrs > 0 {
		fatalf("%d errors across cells", totalErrs)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kvload: "+format+"\n", args...)
	os.Exit(1)
}
