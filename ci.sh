#!/bin/sh
# ci.sh — the tier-1 gate. Everything here must pass on every change:
# compile, go vet, pmemvet (the repo's own static checks for transaction
# closures and persistence ordering — see DESIGN.md "Static checks"), the
# full test suite, and the race detector over the concurrency-heavy
# packages.
set -eux

go build ./...
go vet ./...
go run ./cmd/pmemvet ./...
go test ./...
go test -race ./internal/core/... ./internal/ptm/... ./internal/psim/... ./internal/handmade/...

# Bounded crash-consistency smoke: a coarse-stride sweep over every engine
# under both crash models. The full sweeps (default stride, -nested,
# -corrupt) are the acceptance run, not the per-commit gate.
go run ./cmd/crashcheck -ops 8 -stride 11
