#!/bin/sh
# ci.sh — the tier-1 gate. Everything here must pass on every change:
# compile, go vet, pmemvet (the repo's own static checks for transaction
# closures and persistence ordering — see DESIGN.md "Static checks"), the
# full test suite, and the race detector over the concurrency-heavy
# packages.
set -eux

go build ./...
go vet ./...
go run ./cmd/pmemvet ./...
go test ./...
go test -race ./internal/core/... ./internal/ptm/... ./internal/psim/... ./internal/handmade/...

# Bounded crash-consistency smoke: a coarse-stride sweep over every engine
# under both crash models. The full sweeps (default stride, -nested,
# -corrupt) are the acceptance run, not the per-commit gate.
go run ./cmd/crashcheck -ops 8 -stride 11

# Tracked bench trajectory: sharded RedoDB ops/s and persistence
# instructions per tx at 1 and 8 shards (fillrandom + readrandom). The
# four 0.25 s cells keep the whole emission well under 30 s; the output
# file is checked in so reviewers can diff the trajectory across PRs.
go run ./cmd/dbbench -json BENCH_pr3.json -shards 1,8 -keys 10000 -secs 0.25 -threads 4
