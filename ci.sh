#!/bin/sh
# ci.sh — the tier-1 gate. Everything here must pass on every change:
# compile, go vet, pmemvet (the repo's own static checks for transaction
# closures and persistence ordering — see DESIGN.md "Static checks"), the
# full test suite, and the race detector over the concurrency-heavy
# packages.
set -eux

go build ./...
go vet ./...
go run ./cmd/pmemvet ./...
go test ./...
go test -race ./internal/core/... ./internal/ptm/... ./internal/psim/... ./internal/handmade/...
# Bounded race smokes for the sharded DB (batch coordinator + per-shard
# engines) and the observability layer (tracer ring, histograms); the full
# packages under -race take >30 s, the smokes take ~2 s.
go test -race -run TestRaceSmoke ./internal/shardeddb ./internal/obs

# Bounded crash-consistency smoke: a coarse-stride sweep over every engine
# under both crash models. The full sweeps (default stride, -nested,
# -corrupt) are the acceptance run, not the per-commit gate.
go run ./cmd/crashcheck -ops 8 -stride 11

# Buffered-durability epoch-boundary smoke (PR 8): crash the group-commit
# engines at every PM instruction boundary around their epoch seals and
# watermark advances. The full stride-1 matrix over all four buffered
# engines runs as TestBufferedEpochBoundarySweep in `go test ./...`; this
# pins the two acceptance shapes (unsharded depth-2, 8-shard) per commit.
go run ./cmd/crashcheck -engine redodb-buffered-d2,shardeddb-buffered-8 -ops 6 -stride 1

# Background-persister smoke under the race detector (PR 8): the persister
# goroutine sealing epochs concurrently with writers, Watch registrations
# and Sync waiters, on both the unsharded and the sharded engine.
go test -race -run 'TestBufferedPersisterGoroutine|TestBufferedShardedPersisterGoroutine' ./internal/redodb ./internal/shardeddb

# Bounded retry-storm smoke under the race detector (PR 7): the dedup-table
# unit tests plus one non-adversarial exactly-once storm on the unsharded
# engine, together ~3 s. The full storm matrix (all engines, both crash
# models, every injection point) runs in the regular `go test ./...` above
# and via `crashcheck -retrystorm` in the acceptance run.
go test -race ./internal/detect
go test -race -run 'TestRetryStormSmoke/detect-redodb$' ./internal/chaos

# Trace/stats parity smoke under the race detector: one engine's traced
# workload must reproduce its StatsSnapshot counters event-for-event and
# pass the dynamic ordering checker (the full per-engine matrix runs in the
# regular `go test ./...` above; this pins the concurrency of the tracer).
go test -race -run 'TestTraceStatsParity/redodb$' ./internal/chaos

# Tracked bench trajectory: sharded RedoDB ops/s, persistence instructions
# per tx, and p50/p99 op latency at 1 and 8 shards (fillrandom +
# readrandom). The four 0.25 s cells keep the whole emission well under
# 30 s; the output file is checked in so reviewers can diff the trajectory
# across PRs (BENCH_pr3.json holds the pre-latency trajectory).
go run ./cmd/dbbench -json BENCH_pr4.json -shards 1,8 -keys 10000 -secs 0.25 -threads 4

# Value-size sweep (PR 5): fillrandom pwbs/tx and allocs/op on the bulk-store
# path vs the per-word ablation at 64 B / 256 B / 1 KiB values, plus the
# zero-allocation GetAppend readrandom cells. TestBenchPR5Trajectory asserts
# the checked-in file's invariants (bulk pwbs/tx at 1 KiB >= 2x lower than
# word, GetAppend allocation-free).
go run ./cmd/dbbench -json BENCH_pr5.json -valuesize 64,256,1024 -keys 5000 -secs 0.25 -threads 4

# Detectable-operation overhead (PR 7): plain vs detectable fillrandom on
# the unsharded engine. TestBenchPR7Trajectory asserts the checked-in file's
# invariant: the in-transaction dedup receipt costs <= 2 extra pwbs/tx.
go run ./cmd/dbbench -json BENCH_pr7.json -detect -keys 10000 -secs 0.25 -threads 4

# Buffered group-commit sweep (PR 8): synchronous baseline vs WriteBatch
# group commit at depths 1/8/64, single-threaded so the cell isolates the
# commit path instead of scheduler noise on small CI machines.
# TestBenchPR8Trajectory asserts the checked-in file's invariants: >= 5x
# fence amortization at depth 64, lower pwbs/tx, bounded p99.
go run ./cmd/dbbench -json BENCH_pr8.json -sync buffered -depth 1,8,64 -keys 10000 -secs 0.5 -threads 1

# Allocator space figure (PR 10): fillrandom bytes-of-NVMM-per-key at
# 100 B / 1 KiB / 8 KiB values under the arena allocator vs the legacy
# power-of-two baseline (the Fig-8-style space trajectory). The fills are
# untimed and deterministic, so the file is stable across runs.
# TestBenchPR10Trajectory asserts the checked-in file's invariants (arena
# <= 0.75x legacy bytes/key at 1 KiB, bounded arena fragmentation).
go run ./cmd/dbbench -json BENCH_pr10.json -space 100,1024,8192 -keys 2000 -threads 1

# Wire-protocol race smokes (PR 9): pipelined connections hammering the
# per-connection arena batch through real sockets, and the connection-level
# batch-reuse pin (TestRaceSmokeConnBatches) already runs in the shardeddb
# smoke above.
go test -race -run 'TestRaceSmokeServerPipelined' ./internal/server

# Bounded decode-hardening fuzz smoke (PR 9): malformed frames must produce
# typed errors, never panics or over-reads (the seed corpus also runs inside
# `go test ./...` above; this adds a short live-mutation burst per commit).
go test -fuzz FuzzDecodeFrame -fuzztime 10s ./internal/wire

# Loopback serving-path smoke + tracked trajectory (PR 9): boot kvserver on
# an ephemeral port, preload, and sweep the four YCSB mixes at two offered
# loads through real TCP. kvload exits nonzero if any cell sees an error or
# a failed exactly-once receipt verification, so a passing run IS the
# end-to-end acceptance check. TestBenchPR9Trajectory asserts the checked-in
# file's invariants (all cells present, zero errors, coherent tails).
rm -f /tmp/kvserver.$$.addr
go build -o /tmp/kvserver.$$ ./cmd/kvserver
go build -o /tmp/kvload.$$ ./cmd/kvload
/tmp/kvserver.$$ -addr 127.0.0.1:0 -addrfile /tmp/kvserver.$$.addr \
    -shards 8 -threads 16 &
KVSERVER_PID=$!
for _ in $(seq 1 100); do
    [ -s /tmp/kvserver.$$.addr ] && break
    sleep 0.1
done
[ -s /tmp/kvserver.$$.addr ]
LOAD_RC=0
/tmp/kvload.$$ -addr "$(cat /tmp/kvserver.$$.addr)" \
    -workloads ycsb-a,ycsb-b,ycsb-c,ycsb-f -rates 4000,16000 \
    -conns 4 -secs 0.5 -keys 10000 -json BENCH_pr9.json || LOAD_RC=$?
kill $KVSERVER_PID
wait $KVSERVER_PID || true
rm -f /tmp/kvserver.$$ /tmp/kvload.$$ /tmp/kvserver.$$.addr
[ "$LOAD_RC" -eq 0 ]
