// Quickstart: turn a sequential data structure into a concurrent, durable,
// wait-free one with a persistent universal construction.
//
// This is the paper's core promise — "using a UC becomes as simple as
// wrapping each method in a lambda": the red-black tree in internal/seqds is
// plain sequential code against the word-memory interface; RedoOpt-PTM makes
// every closure a durable linearizable wait-free transaction.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"repro/internal/core/redo"
	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

func main() {
	const threads = 4

	// An emulated NVMM pool: N+1 replica regions of 1 MiB (Redo-PTM's
	// replica bound for wait freedom).
	pool := pmem.New(pmem.Config{
		Mode:        pmem.Direct,
		RegionWords: 1 << 17,
		Regions:     threads + 1,
	})
	ptmEngine := redo.New(pool, redo.Config{Threads: threads, Variant: redo.Opt})

	// A plain sequential red-black tree, rooted at persistent slot 0.
	tree := seqds.RBTree{RootSlot: 0}
	ptmEngine.Update(0, func(m ptm.Mem) uint64 {
		tree.Init(m)
		return 0
	})

	// Four goroutines insert disjoint key ranges concurrently. Each
	// closure is one wait-free durable transaction.
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for k := uint64(tid); k < 1000; k += threads {
				ptmEngine.Update(tid, func(m ptm.Mem) uint64 {
					tree.Add(m, k)
					return 0
				})
			}
		}(tid)
	}
	wg.Wait()

	// Read transactions run on a consistent durable snapshot.
	size := ptmEngine.Read(0, func(m ptm.Mem) uint64 { return tree.Len(m) })
	has42 := ptmEngine.Read(0, func(m ptm.Mem) uint64 {
		if tree.Contains(m, 42) {
			return 1
		}
		return 0
	})
	fmt.Printf("tree size after concurrent inserts: %d (want 1000)\n", size)
	fmt.Printf("contains(42): %v\n", has42 == 1)

	stats := pool.Stats()
	fmt.Printf("persistence cost: %d pwbs, %d fences for %d transactions\n",
		stats.PWBs, stats.Fences(), 1001+2)
	fmt.Printf("engine: %s, %s progress, %s fences/tx, %s replicas\n",
		ptmEngine.Name(), ptmEngine.Properties().Progress,
		ptmEngine.Properties().FencesPerTx, ptmEngine.Properties().Replicas)
}
