// Bank: multi-object ACID transactions and crash recovery.
//
// Both CX-PTM and Redo-PTM support "multi-step ACID transactions between
// several data structures or objects" (§1). Here a hash set holds the open
// account ids and a separate SPS array holds the balances; transfers touch
// both structures in one durable transaction, and a simulated power failure
// in the middle of a storm of transfers never breaks the invariant that
// money is conserved.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"sync"

	"repro/internal/core/redo"
	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

const (
	accounts       = 64
	initialBalance = 1000
	threads        = 4
)

func main() {
	// Strict mode models volatile caches faithfully so Crash() behaves
	// like pulling the plug.
	pool := pmem.New(pmem.Config{
		Mode:        pmem.Strict,
		RegionWords: 1 << 16,
		Regions:     threads + 1,
	})
	eng := redo.New(pool, redo.Config{Threads: threads, Variant: redo.Opt})
	open := seqds.HashSet{RootSlot: 0}
	balances := seqds.SPS{RootSlot: 1}

	eng.Update(0, func(m ptm.Mem) uint64 {
		open.Init(m)
		balances.InitEmpty(m, accounts)
		blk := m.Load(ptm.RootAddr(1))
		for a := uint64(0); a < accounts; a++ {
			open.Add(m, a)
			m.Store(blk+1+a, initialBalance)
		}
		return 0
	})
	total := eng.Read(0, func(m ptm.Mem) uint64 { return balances.Sum(m) })
	fmt.Printf("bank opened: %d accounts, total balance %d\n", accounts, total)

	// A storm of concurrent transfers: each moves 1 unit from account a
	// to account b, checking that both accounts are open — two structures
	// in one atomic durable transaction.
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a := uint64((tid*7 + i) % accounts)
				b := uint64((tid*13 + i*3 + 1) % accounts)
				if a == b {
					continue
				}
				eng.Update(tid, func(m ptm.Mem) uint64 {
					if !open.Contains(m, a) || !open.Contains(m, b) {
						return 0
					}
					blk := m.Load(ptm.RootAddr(1))
					if m.Load(blk+1+a) == 0 {
						return 0 // insufficient funds
					}
					m.Store(blk+1+a, m.Load(blk+1+a)-1)
					m.Store(blk+1+b, m.Load(blk+1+b)+1)
					return 1
				})
			}
		}(tid)
	}
	wg.Wait()

	// Power failure. Everything in the CPU caches is lost; only flushed
	// and fenced state survives.
	pool.Crash(pmem.CrashConservative, nil)
	fmt.Println("simulated power failure...")

	// Null recovery: reconstruct the engine and keep going immediately.
	eng = redo.New(pool, redo.Config{Threads: threads, Variant: redo.Opt})
	got := eng.Read(0, func(m ptm.Mem) uint64 { return balances.Sum(m) })
	openCount := eng.Read(0, func(m ptm.Mem) uint64 { return open.Len(m) })
	fmt.Printf("recovered: %d accounts open, total balance %d\n", openCount, got)
	if got != accounts*initialBalance {
		fmt.Println("INVARIANT BROKEN: money was created or destroyed!")
		return
	}
	fmt.Println("invariant holds: every completed transfer was atomic and durable")
}
