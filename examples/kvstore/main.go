// KVStore: RedoDB, the wait-free durable key-value store, through its
// LevelDB/RocksDB-style API — puts, gets, atomic write batches, sorted
// snapshot iterators, and crash recovery.
//
// With -db the pool is file-backed: run it twice and the second run finds
// the first run's data, like a real PM application re-mapping its device.
//
//	go run ./examples/kvstore
//	go run ./examples/kvstore -db /tmp/redodb.pmem
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/pmem"
	"repro/internal/redodb"
)

func main() {
	dbPath := flag.String("db", "", "optional snapshot file backing the pool")
	flag.Parse()

	const threads = 2
	var pool *pmem.Pool
	if *dbPath != "" {
		if loaded, err := pmem.ReadFile(*dbPath); err == nil {
			pool = loaded
			fmt.Printf("loaded existing pool from %s\n", *dbPath)
		} else if !errors.Is(err, os.ErrNotExist) {
			fmt.Println("note:", err)
		}
	}
	if pool == nil {
		pool = pmem.New(pmem.Config{
			Mode:        pmem.Strict,
			RegionWords: 1 << 17,
			Regions:     threads + 1,
		})
	}
	db := redodb.Open(pool, redodb.Options{Threads: threads})
	s := db.Session(0)

	// Point operations.
	s.Put([]byte("city:zurich"), []byte("428k"))
	s.Put([]byte("city:geneva"), []byte("204k"))
	s.Put([]byte("city:basel"), []byte("178k"))
	if v, ok := s.Get([]byte("city:zurich")); ok {
		fmt.Printf("zurich -> %s\n", v)
	}

	// An atomic write batch: both changes or neither, durably.
	batch := &redodb.WriteBatch{}
	batch.Put([]byte("city:bern"), []byte("134k"))
	batch.Delete([]byte("city:basel"))
	s.Write(batch)
	fmt.Printf("after batch: %d keys\n", s.Len())

	// A sorted snapshot iterator (later writes don't disturb it).
	it := s.NewIterator()
	s.Put([]byte("city:lausanne"), []byte("140k"))
	fmt.Println("snapshot scan:")
	for it.Next() {
		fmt.Printf("  %s = %s\n", it.Key(), it.Value())
	}
	if it.Seek([]byte("city:g")) {
		fmt.Printf("seek(city:g) -> %s\n", it.Key())
	}

	// Pull the plug and reopen: every completed operation survives
	// (durable linearizability), and recovery is immediate.
	pool.Crash(pmem.CrashConservative, nil)
	fmt.Println("simulated power failure...")
	db = redodb.Open(pool, redodb.Options{Threads: threads})
	s = db.Session(0)
	fmt.Printf("recovered %d keys:\n", s.Len())
	it = s.NewIterator()
	for it.Next() {
		fmt.Printf("  %s = %s\n", it.Key(), it.Value())
	}
	fmt.Printf("NVMM in use: %.1f KiB\n", float64(db.NVMUsedBytes())/1024)

	if *dbPath != "" {
		if err := pool.WriteFile(*dbPath); err != nil {
			fmt.Println("snapshot failed:", err)
			return
		}
		fmt.Printf("pool snapshot written to %s — rerun to pick it up\n", *dbPath)
	}
}
