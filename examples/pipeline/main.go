// Pipeline: a durable work queue under CX-PTM that survives power failures.
//
// Producers enqueue jobs, consumers dequeue and "process" them, and a crash
// in the middle loses no accepted job and duplicates none of the completed
// ones — because enqueue, dequeue and the processed-set update are durable
// linearizable transactions (the dequeue and the completion mark happen in
// ONE transaction, giving exactly-once processing across crashes).
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"sync"

	"repro/internal/core/cx"
	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

const (
	producers = 2
	consumers = 2
	jobs      = 400
)

func main() {
	threads := producers + consumers
	pool := pmem.New(pmem.Config{
		Mode:        pmem.Strict,
		RegionWords: 1 << 16,
		Regions:     2 * threads, // CX needs 2N replicas for wait freedom
	})
	eng := cx.New(pool, cx.Config{Threads: threads, Interpose: true})
	queue := seqds.Queue{RootSlot: 0}
	done := seqds.HashSet{RootSlot: 1}
	eng.Update(0, func(m ptm.Mem) uint64 {
		queue.Init(m)
		done.Init(m)
		return 0
	})

	// Phase 1: produce everything, consume about half, then crash.
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for j := tid; j < jobs; j += producers {
				job := uint64(j) + 1
				eng.Update(tid, func(m ptm.Mem) uint64 {
					queue.Enqueue(m, job)
					return 0
				})
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < jobs/4; i++ {
				eng.Update(tid, func(m ptm.Mem) uint64 {
					// Dequeue + mark processed, atomically.
					if job, ok := queue.Dequeue(m); ok {
						done.Add(m, job)
						return job
					}
					return 0
				})
			}
		}(producers + c)
	}
	wg.Wait()

	before := eng.Read(0, func(m ptm.Mem) uint64 { return done.Len(m) })
	fmt.Printf("before crash: %d jobs processed, %d queued\n",
		before, eng.Read(0, func(m ptm.Mem) uint64 { return queue.Len(m) }))

	pool.Crash(pmem.CrashConservative, nil)
	fmt.Println("simulated power failure...")

	// Phase 2: recover and drain. Null recovery — the queue and the
	// processed set are exactly where the completed transactions left
	// them.
	eng = cx.New(pool, cx.Config{Threads: threads, Interpose: true})
	for {
		job := eng.Update(0, func(m ptm.Mem) uint64 {
			if j, ok := queue.Dequeue(m); ok {
				done.Add(m, j)
				return j
			}
			return 0
		})
		if job == 0 {
			break
		}
	}
	total := eng.Read(0, func(m ptm.Mem) uint64 { return done.Len(m) })
	fmt.Printf("after recovery and drain: %d distinct jobs processed (want %d)\n", total, jobs)
	if total == jobs {
		fmt.Println("exactly-once processing held across the crash")
	} else {
		fmt.Println("JOBS LOST OR DUPLICATED!")
	}
}
