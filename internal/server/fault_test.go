package server_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lincheck"
	"repro/internal/load"
	"repro/internal/pmem"
	"repro/internal/wire"
)

// The server fault battery: connections that die mid-request, half-written
// frames, slow readers exercising per-connection backpressure, and a full
// server power-failure/restart cycle with clients driving detectable
// retries — exactly-once asserted from real socket traffic via DetectStats
// and a lincheck.CheckDurable DupID history.

// TestConnDropMidRequest pins two contracts of an abruptly dying
// connection: operations already decoded commit (the deferred batch flushes
// on the decode error), and the server survives to serve new connections.
func TestConnDropMidRequest(t *testing.T) {
	h := newHarness(t, harnessConfig{shards: 4, threads: 2})

	full := wire.AppendFrame(nil, &wire.Frame{
		Op: wire.OpPut, ReqID: 2,
		Key: []byte("drop-throwaway"), Val: []byte("x"),
	})
	// Cut the trailing frame inside its header, after its header, and
	// mid-payload; prefix each attempt with a complete PUT that must
	// survive the drop.
	for _, cut := range []int{1, wire.HeaderSize - 1, wire.HeaderSize, len(full) - 1} {
		c, err := net.Dial("tcp", h.addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		key := []byte(fmt.Sprintf("drop-%03d", cut))
		buf := wire.AppendFrame(nil, &wire.Frame{Op: wire.OpPut, ReqID: 1, Key: key, Val: []byte("kept")})
		buf = append(buf, full[:cut]...)
		if _, err := c.Write(buf); err != nil {
			t.Fatalf("cut %d: write: %v", cut, err)
		}
		// Drop the connection without reading a single response byte.
		c.Close()
	}

	cl := h.dial(0)
	defer cl.Close()
	for _, cut := range []int{1, wire.HeaderSize - 1, wire.HeaderSize, len(full) - 1} {
		key := []byte(fmt.Sprintf("drop-%03d", cut))
		// The dropped connection's handler flushes its batch when the EOF
		// reaches it, asynchronously to our close — poll briefly.
		deadline := time.Now().Add(10 * time.Second)
		for {
			v, ok, err := cl.Get(key)
			if err != nil {
				t.Fatalf("cut %d: get: %v", cut, err)
			}
			if ok && bytes.Equal(v, []byte("kept")) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("cut %d: completed put did not survive the drop: %q %v", cut, v, ok)
			}
			time.Sleep(time.Millisecond)
		}
		if _, ok, _ := cl.Get([]byte("drop-throwaway")); ok {
			t.Fatalf("cut %d: truncated frame's put took effect", cut)
		}
	}
}

// TestDesyncStreamDropsConnOnly feeds the server garbage and
// wrong-CRC/wrong-magic headers: each poisoned connection must be dropped
// (the stream is untrustworthy past a malformed frame) without taking the
// server or other connections with it.
func TestDesyncStreamDropsConnOnly(t *testing.T) {
	h := newHarness(t, harnessConfig{shards: 2, threads: 2})
	good := wire.AppendFrame(nil, &wire.Frame{Op: wire.OpGet, ReqID: 1, Key: []byte("k")})
	poisons := [][]byte{
		bytes.Repeat([]byte{0xff}, 200),          // noise
		append([]byte("XX"), good[2:]...),        // bad magic
		append([]byte{'k', 'v', 9}, good[3:]...), // bad version
		func() []byte { // flipped byte under the CRC
			b := append([]byte(nil), good...)
			b[9] ^= 0x40
			return b
		}(),
	}
	for i, p := range poisons {
		c, err := net.Dial("tcp", h.addr)
		if err != nil {
			t.Fatalf("poison %d: dial: %v", i, err)
		}
		if _, err := c.Write(p); err != nil {
			t.Fatalf("poison %d: write: %v", i, err)
		}
		// The server must close on us (EOF on read), not answer garbage.
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		var one [1]byte
		if n, err := c.Read(one[:]); err == nil || n > 0 {
			t.Fatalf("poison %d: server answered a desynchronized stream (n=%d err=%v)", i, n, err)
		}
		c.Close()
	}
	cl := h.dial(0)
	defer cl.Close()
	if _, err := cl.Put([]byte("after-poison"), []byte("ok")); err != nil {
		t.Fatalf("server did not survive poisoned connections: %v", err)
	}
}

// TestSlowReaderBackpressure wedges one connection by pipelining large-value
// GETs without reading any response: the server's write buffer and the
// socket fill, its handler blocks on that connection alone, and a second
// connection must stay fully responsive. Draining the stalled connection
// afterwards must yield every response intact, in order.
func TestSlowReaderBackpressure(t *testing.T) {
	h := newHarness(t, harnessConfig{shards: 2, threads: 2})

	big := bytes.Repeat([]byte("v"), 1<<15) // 32 KiB values
	cl := h.dial(0)
	defer cl.Close()
	if _, err := cl.Put([]byte("big"), big); err != nil {
		t.Fatalf("seed put: %v", err)
	}

	// The slow reader: request far more response bytes than the server-side
	// write buffer plus both socket buffers can hold, and do not read.
	const slowGets = 512 // ~16 MiB of responses
	slow, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatalf("dial slow: %v", err)
	}
	defer slow.Close()
	var burst []byte
	for i := 0; i < slowGets; i++ {
		burst = wire.AppendFrame(burst, &wire.Frame{Op: wire.OpGet, ReqID: uint64(i + 1), Key: []byte("big")})
	}
	if _, err := slow.Write(burst); err != nil {
		t.Fatalf("slow burst: %v", err)
	}

	// While the slow connection is stalled, the other connection does real
	// work with bounded latency.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			key := []byte(fmt.Sprintf("live-%03d", i))
			if _, err := cl.Put(key, []byte("live")); err != nil {
				t.Errorf("live put %d: %v", i, err)
				return
			}
			if v, ok, err := cl.Get(key); err != nil || !ok || !bytes.Equal(v, []byte("live")) {
				t.Errorf("live get %d: %q %v %v", i, v, ok, err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("live connection starved behind a slow reader")
	}

	// Drain the stalled connection: all responses arrive, in order, intact.
	slow.SetReadDeadline(time.Now().Add(60 * time.Second))
	dec := wire.NewDecoder(slow, wire.Limits{})
	var resp wire.Frame
	for i := 0; i < slowGets; i++ {
		if err := dec.ReadFrame(&resp); err != nil {
			t.Fatalf("draining response %d: %v", i, err)
		}
		if resp.ReqID != uint64(i+1) || !bytes.Equal(resp.Val, big) {
			t.Fatalf("response %d: req %d, %d-byte value", i, resp.ReqID, len(resp.Val))
		}
	}
}

// Socket-history helpers for the lincheck rounds below.

const netKeys = 5

func netKey(k uint64) []byte { return []byte(fmt.Sprintf("net-key-%d", k)) }

func netVal(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

func decodeNetVal(t *testing.T, b []byte, ok bool) uint64 {
	if !ok {
		return 0
	}
	if len(b) != 8 {
		t.Fatalf("torn value over the wire: %x", b)
	}
	return binary.LittleEndian.Uint64(b)
}

// TestServerCrashRestartDetectableRetries is the end-to-end exactly-once
// scenario from the issue: remote clients hammer detectable puts over real
// sockets until a simulated power failure kills the server mid-traffic; the
// store crashes and recovers, a fresh server incarnation comes up, and each
// client probes WasApplied and retries its in-flight request. The whole
// socket-level history — completed ops, in-flight ops as pending, original
// attempt and retry sharing a DupID, observer reads between — must pass
// lincheck.CheckDurable, and the receipt table must witness every sequence
// exactly once.
func TestServerCrashRestartDetectableRetries(t *testing.T) {
	for fail := int64(60); fail <= 400; fail += 85 {
		t.Run(fmt.Sprintf("fail-%d", fail), func(t *testing.T) {
			runCrashRetryRound(t, fail)
		})
	}
}

type netPending struct {
	client, seq uint64
	key, val    uint64
	dup         uint64
}

func runCrashRetryRound(t *testing.T, fail int64) {
	const workers = 2
	const opsPerWorker = 40
	h := newHarness(t, harnessConfig{shards: 4, threads: workers + 1, mode: pmem.Strict})

	var clock atomic.Int64
	histories := make([][]lincheck.DurableOp, workers)
	retries := make([]*netPending, workers)
	h.g.InjectFailure(fail)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			client := uint64(tid + 1)
			cl, err := load.Dial(h.addr, client)
			if err != nil {
				t.Errorf("worker %d: dial: %v", tid, err)
				return
			}
			defer cl.Close()
			seq := uint64(0)
			for i := 0; i < opsPerWorker; i++ {
				key := uint64(tid*opsPerWorker+i)%netKeys + 1
				val := uint64(tid*opsPerWorker+i) + 1
				isPut := i%4 != 3
				op := lincheck.Op{Thread: tid, Kind: "get", Arg: key}
				var dupID uint64
				op.Call = clock.Add(1)
				var opErr error
				if isPut {
					seq++
					op.Kind, op.Arg2 = "put", val
					dupID = client<<32 | seq
					_, _, opErr = cl.PutDetectable(seq, netKey(key), netVal(val))
				} else {
					var v []byte
					var ok bool
					v, ok, opErr = cl.Get(netKey(key))
					if opErr == nil {
						op.Result = decodeNetVal(t, v, ok)
					}
				}
				if opErr != nil {
					// The connection died under us: the op is in flight at
					// the crash. Its Return is stamped below.
					histories[tid] = append(histories[tid],
						lincheck.DurableOp{Op: op, Pending: true, DupID: dupID})
					if isPut {
						retries[tid] = &netPending{client: client, seq: seq, key: key, val: val, dup: dupID}
					}
					return
				}
				op.Return = clock.Add(1)
				histories[tid] = append(histories[tid], lincheck.DurableOp{Op: op, DupID: dupID})
			}
		}(w)
	}
	wg.Wait()

	crashStamp := clock.Add(1)
	var history []lincheck.DurableOp
	anyPending := false
	for _, hops := range histories {
		for _, op := range hops {
			if op.Pending {
				op.Return = crashStamp
				anyPending = true
			}
			history = append(history, op)
		}
	}
	if !anyPending {
		// The workload finished before the armed failure fired; nothing to
		// crash-test at this threshold.
		t.Logf("fail=%d: workload completed before the failure armed", fail)
		h.g.InjectFailure(-1)
		return
	}

	// The power failure tripped the server; crash the persistent state and
	// bring up a fresh incarnation on a new port.
	h.awaitFailure()
	h.restartAfterCrash(pmem.CrashConservative)

	observe := func(cl *load.Client) {
		for k := uint64(1); k <= netKeys; k++ {
			op := lincheck.Op{Thread: workers, Kind: "get", Arg: k}
			op.Call = clock.Add(1)
			v, ok, err := cl.Get(netKey(k))
			if err != nil {
				t.Fatalf("observer get: %v", err)
			}
			op.Result = decodeNetVal(t, v, ok)
			op.Return = clock.Add(1)
			history = append(history, lincheck.DurableOp{Op: op})
		}
	}

	// Observer reads pin each in-flight attempt's fate BEFORE the retries,
	// then every crashed client reconnects and retries its request.
	obs := h.dial(0)
	defer obs.Close()
	observe(obs)
	for _, r := range retries {
		if r == nil {
			continue
		}
		cl := h.dial(r.client)
		probe, err := cl.WasApplied(r.seq)
		if err != nil {
			t.Fatalf("WasApplied probe: %v", err)
		}
		op := lincheck.Op{Thread: workers, Kind: "put", Arg: r.key, Arg2: r.val}
		op.Call = clock.Add(1)
		applied, _, err := cl.PutDetectable(r.seq, netKey(r.key), netVal(r.val))
		op.Return = clock.Add(1)
		if err != nil {
			t.Fatalf("retry: %v", err)
		}
		if applied == probe {
			t.Fatalf("fail=%d: retry of (%d,%d) applied=%v with prior receipt=%v",
				fail, r.client, r.seq, applied, probe)
		}
		if applied {
			history = append(history, lincheck.DurableOp{Op: op, DupID: r.dup})
		}

		// Exactly-once witnessed by the receipt table over the wire: every
		// sequence this client ever issued is now applied exactly once, and
		// an immediate duplicate retry must dedup.
		receipts, maxSeq, acked, err := cl.DetectStats()
		if err != nil {
			t.Fatalf("detect stats: %v", err)
		}
		if maxSeq != r.seq || receipts != r.seq-acked {
			t.Fatalf("fail=%d client %d: DetectStats (receipts %d, maxSeq %d, acked %d) after retrying seq %d",
				fail, r.client, receipts, maxSeq, acked, r.seq)
		}
		if dup, _, _ := cl.PutDetectable(r.seq, netKey(r.key), netVal(r.val)); dup {
			t.Fatalf("fail=%d client %d: duplicate retry of seq %d re-applied", fail, r.client, r.seq)
		}
		cl.Close()
	}
	observe(obs)

	if !lincheck.CheckDurable(lincheck.KVModel{}, history) {
		for _, op := range history {
			t.Logf("t%d [%d,%d] %s(%d,%d) = %d pending=%v dup=%d",
				op.Thread, op.Call, op.Return, op.Kind, op.Arg, op.Arg2, op.Result, op.Pending, op.DupID)
		}
		t.Fatalf("fail=%d: socket-level history is not durably linearizable", fail)
	}
}
