// Package server is the network front-end: it serves the wire protocol
// (internal/wire) over any net.Listener against a sharded RedoDB
// (internal/shardeddb), exposing the store's full semantic surface to remote
// clients — plain and detectable operations, durable-vs-buffered write
// flags, cross-shard batches, snapshot scans, and the Sync barrier.
//
// Concurrency model: each accepted connection is handled by one goroutine
// bound to a thread id drawn from a fixed pool of Options.Threads ids (the
// store's session bound). The handler decodes frames in arrival order and
// answers strictly in order, but it pipelines against the store: consecutive
// plain PUTs accumulate into a reused cross-shard WriteBatch whose flush is
// deferred until a non-batchable request arrives, the batch fills, or the
// decoder's read buffer drains (the client is about to block on us). A
// pipelined client therefore pays one store transaction per burst, not per
// frame — the group-commit shape from the paper's serving path, built on the
// arena WriteBatch ownership contract (see shardeddb/batch.go).
//
// Simulated power failures propagate as panics from the pmem layer; the
// server catches pmem.ErrSimulatedPowerFailure on every connection handler,
// trips into a failed state, and closes the listener and every connection.
// The crash harness then crashes the group, reopens the store, and starts a
// fresh server — clients see ECONNRESET mid-flight and drive recovery with
// detectable retries.
package server

import (
	"errors"
	"net"
	"sync"

	"repro/internal/pmem"
	"repro/internal/shardeddb"
	"repro/internal/wire"
)

// Options parameterizes New.
type Options struct {
	// Threads is the number of concurrent connections served (the size of
	// the thread-id pool; must not exceed the store's Options.Threads).
	Threads int
	// Limits bounds accepted frames (DefaultLimits when zero).
	Limits wire.Limits
	// MaxBatch flushes the per-connection write batch when it holds this
	// many operations (default 64).
	MaxBatch int
}

// Server serves the wire protocol against one sharded DB.
type Server struct {
	db   *shardeddb.DB
	opts Options
	tids chan int

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	stopped  bool
	failed   bool

	wg    sync.WaitGroup
	stats Stats
}

// New wraps an already-open store. The caller keeps ownership of the DB and
// its pmem group — crash harnesses inject failures and reopen through their
// own handles.
func New(db *shardeddb.DB, opts Options) *Server {
	if opts.Threads <= 0 {
		opts.Threads = 1
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 64
	}
	s := &Server{
		db:    db,
		opts:  opts,
		tids:  make(chan int, opts.Threads),
		conns: make(map[net.Conn]struct{}),
	}
	for i := 0; i < opts.Threads; i++ {
		s.tids <- i
	}
	return s
}

// Serve accepts connections on l until Stop, a listener error, or a
// simulated power failure. It returns nil on Stop and ErrServerFailed after
// a power failure; connection handlers may still be draining when it
// returns — use Wait for full quiescence.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		l.Close()
		return nil
	}
	s.listener = l
	s.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			failed, stopped := s.failed, s.stopped
			s.mu.Unlock()
			if failed {
				return ErrServerFailed
			}
			if stopped {
				return nil
			}
			return err
		}
		// A connection holds its tid for its whole lifetime; when the pool
		// is dry, admission waits — backpressure on accept rather than
		// oversubscribing the store's session bound.
		tid := <-s.tids
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			c.Close()
			s.tids <- tid
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.stats.Conns.Add(1)
		s.wg.Add(1)
		go s.serveConn(c, tid)
	}
}

// ErrServerFailed is returned by Serve after a simulated power failure
// tripped the server.
var ErrServerFailed = errors.New("server: stopped by simulated power failure")

// Failed reports whether a simulated power failure tripped the server.
func (s *Server) Failed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// Stop closes the listener and every live connection. Safe to call more
// than once and before Serve.
func (s *Server) Stop() {
	s.shutdown(false)
}

// fail is Stop for the power-failure path: it marks the server failed so
// Serve's caller can distinguish a crash from a clean shutdown.
func (s *Server) fail() {
	s.shutdown(true)
}

func (s *Server) shutdown(failed bool) {
	s.mu.Lock()
	if failed {
		s.failed = true
	}
	already := s.stopped
	s.stopped = true
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if already && !failed {
		return
	}
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

// Wait blocks until every connection handler has exited.
func (s *Server) Wait() { s.wg.Wait() }

// serveConn runs one connection to completion, returning its tid to the
// pool. A simulated power failure surfacing from any store call trips the
// whole server; every other panic is a real bug and propagates.
func (s *Server) serveConn(c net.Conn, tid int) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
		s.tids <- tid
		s.stats.Conns.Add(-1)
		if r := recover(); r != nil {
			if r == pmem.ErrSimulatedPowerFailure {
				s.fail()
				return
			}
			panic(r)
		}
	}()
	newConn(s, c, s.db.Session(tid)).run()
}
