package server_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/lincheck"
	"repro/internal/load"
	"repro/internal/pmem"
)

// Buffered durability through the serving path: the remote SYNC barrier must
// not return before the durable watermark covers the caller's writes, and a
// crash before persistence loses at most a commit-order suffix — checked
// against lincheck.CheckBufferedDurable from real socket traffic.

// TestSyncCoversWritesOverWire drives plain (relaxed) PUTs at a buffered
// server whose background persister is disabled, so the durable watermark
// moves only when a client demands it: the writes must be observably
// buffered first, and SYNC must not return until every shard's watermark
// covers the epochs those writes committed at.
func TestSyncCoversWritesOverWire(t *testing.T) {
	h := newHarness(t, harnessConfig{shards: 4, threads: 2, buffered: true})
	cl := h.dial(0)
	defer cl.Close()
	if !cl.Buffered() {
		t.Fatal("buffered server did not declare ModeBuffered at HELLO")
	}

	// A borrowed session handle purely for the key->shard hash (ShardOf is a
	// pure function; the handle's state is never touched).
	shardOf := h.db.Session(0).ShardOf

	epochs := make(map[int]uint64) // shard -> highest commit epoch of our writes
	for i := 0; i < 32; i++ {
		key := []byte(fmt.Sprintf("sync-%02d", i))
		ep, err := cl.Put(key, []byte("v"))
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		sh := shardOf(key)
		if ep <= epochs[sh] {
			t.Fatalf("put %d: shard %d epoch %d did not advance past %d", i, sh, ep, epochs[sh])
		}
		epochs[sh] = ep
	}

	// With the persister disabled, relaxed writes must actually be buffered:
	// at least one shard's watermark trails its committed tail.
	lag := 0
	for sh, ep := range epochs {
		if h.db.DurableEpoch(sh) < ep {
			lag++
		}
	}
	if lag == 0 {
		t.Fatal("no shard watermark trails a committed write — buffering is not live through the wire")
	}

	w, err := cl.Sync()
	if err != nil {
		t.Fatalf("sync: %v", err)
	}
	for sh, ep := range epochs {
		if got := h.db.DurableEpoch(sh); got < ep {
			t.Fatalf("SYNC returned with shard %d watermark %d below committed epoch %d", sh, got, ep)
		}
	}
	// The response watermark is the min across shards; every shard we wrote
	// is now durable at least to our epochs, so it covers the smallest.
	min := epochs[0]
	for _, ep := range epochs {
		if ep < min {
			min = ep
		}
	}
	if w < min {
		t.Fatalf("SYNC watermark %d below the smallest covered epoch %d", w, min)
	}

	// FlagDurable is the per-request barrier: on return, the write's shard
	// watermark covers its epoch with no explicit SYNC.
	key := []byte("durable-now")
	ep, err := cl.PutDurable(key, []byte("v"))
	if err != nil {
		t.Fatalf("durable put: %v", err)
	}
	if got := h.db.DurableEpoch(shardOf(key)); got < ep {
		t.Fatalf("PutDurable returned with watermark %d below its epoch %d", got, ep)
	}
}

// TestBufferedCrashLosesSuffixOverWire is the buffered mirror of the crash
// test: clients stream relaxed PUTs (epochs from the response aux) with
// occasional SYNCs pinning their prefix, the store crashes before the tail
// persists, and the recovered state — read back over the wire by a fresh
// client — must be a commit-order prefix no lower than the synced floor.
// The full socket-level history is checked with CheckBufferedDurable.
func TestBufferedCrashLosesSuffixOverWire(t *testing.T) {
	// Single shard: the commit epoch stream the responses expose is the one
	// total commit order the checker cuts.
	h := newHarness(t, harnessConfig{shards: 1, threads: 3, buffered: true, mode: pmem.Strict})

	const workers = 2
	const opsPerWorker = 30
	const bufKeys = 6
	var clock atomic.Int64
	histories := make([][]lincheck.BufferedOp, workers)

	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			cl, err := load.Dial(h.addr, 0)
			if err != nil {
				t.Errorf("worker %d: dial: %v", tid, err)
				return
			}
			defer cl.Close()
			for i := 0; i < opsPerWorker; i++ {
				key := uint64(tid*opsPerWorker+i)%bufKeys + 1
				val := uint64(tid*opsPerWorker+i) + 1
				op := lincheck.Op{Thread: tid, Kind: "put", Arg: key, Arg2: val}
				op.Call = clock.Add(1)
				ep, err := cl.Put(netKey(key), netVal(val))
				op.Return = clock.Add(1)
				if err != nil {
					t.Errorf("worker %d put %d: %v", tid, i, err)
					return
				}
				histories[tid] = append(histories[tid],
					lincheck.BufferedOp{DurableOp: lincheck.DurableOp{Op: op}, Epoch: ep})
				// A mid-stream SYNC pins everything this worker has written so
				// far; the tail after the last sync is fair game for the crash.
				if i == opsPerWorker/2 {
					w, err := cl.Sync()
					if err != nil {
						t.Errorf("worker %d sync: %v", tid, err)
						return
					}
					clock.Add(1)
					for j := range histories[tid] {
						if histories[tid][j].Epoch <= w {
							histories[tid][j].Synced = true
						}
					}
				}
			}
		}(wkr)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var history []lincheck.BufferedOp
	syncFloor := uint64(0)
	for _, hops := range histories {
		for _, op := range hops {
			if op.Synced && op.Epoch > syncFloor {
				syncFloor = op.Epoch
			}
		}
		history = append(history, hops...)
	}

	// Crash before the unsynced tail persists: stop the incarnation cleanly
	// (a clean server stop does NOT flush the store), discard everything the
	// pmem layer never persisted, recover, and serve again.
	crashStamp := clock.Add(1)
	if err := h.stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	h.restartAfterCrash(pmem.CrashConservative)

	cl := h.dial(0)
	defer cl.Close()
	lost := 0
	maxEpoch := uint64(0)
	for _, op := range history {
		if op.Epoch > maxEpoch {
			maxEpoch = op.Epoch
		}
	}
	for k := uint64(1); k <= bufKeys; k++ {
		op := lincheck.Op{Thread: workers, Kind: "get", Arg: k}
		op.Call = clock.Add(1)
		v, ok, err := cl.Get(netKey(k))
		if err != nil {
			t.Fatalf("recovered get: %v", err)
		}
		op.Result = decodeNetVal(t, v, ok)
		op.Return = clock.Add(1)
		// Epochs on final-segment reads are irrelevant — no crash follows.
		history = append(history, lincheck.BufferedOp{DurableOp: lincheck.DurableOp{Op: op}})

		// Direct pin alongside the checker: a key with any synced write must
		// still be present after recovery (whatever surviving value it holds —
		// later unsynced overwrites may or may not have made the cut).
		var synced bool
		var lastEpoch, lastVal uint64
		for _, bo := range history {
			if bo.Kind == "put" && bo.Arg == k {
				synced = synced || bo.Synced
				if bo.Epoch > lastEpoch {
					lastEpoch, lastVal = bo.Epoch, bo.Arg2
				}
			}
		}
		if synced && !ok {
			t.Fatalf("key %d: synced write lost at the crash", k)
		}
		if op.Result != lastVal {
			lost++
		}
	}
	t.Logf("crash truncated %d/%d keys past their final write (sync floor %d, tail epoch %d)",
		lost, bufKeys, syncFloor, maxEpoch)

	if !lincheck.CheckBufferedDurable(lincheck.KVModel{}, history, []int64{crashStamp}) {
		for _, op := range history {
			t.Logf("t%d [%d,%d] %s(%d,%d) = %d epoch=%d synced=%v",
				op.Thread, op.Call, op.Return, op.Kind, op.Arg, op.Arg2, op.Result, op.Epoch, op.Synced)
		}
		t.Fatal("socket-level buffered history is not buffered durably linearizable")
	}
}
