package server

import (
	"encoding/json"
	"sync/atomic"

	"repro/internal/obs"
)

// Stats aggregates the server's observable behavior: live connection count,
// operation and error totals, and service-time histograms split by read and
// write classes. Service time is measured from the moment a request is
// decoded to the moment its response bytes are handed to the connection's
// write buffer — for a batched PUT that includes the time it spent queued
// behind its flush, which is exactly the latency a pipelined client's
// request experiences inside the server.
type Stats struct {
	Conns  atomic.Int64
	Ops    atomic.Uint64
	Errors atomic.Uint64
	Read   obs.Histogram
	Write  obs.Histogram
	All    obs.Histogram
}

// StatsSnapshot is the JSON form served by the STATS opcode.
type StatsSnapshot struct {
	Conns  int64            `json:"conns"`
	Ops    uint64           `json:"ops"`
	Errors uint64           `json:"errors"`
	Read   obs.HistSnapshot `json:"read"`
	Write  obs.HistSnapshot `json:"write"`
	All    obs.HistSnapshot `json:"all"`
}

// Reset zeroes the op/error counters and the service-time histograms (live
// connection count excluded — it is a gauge, not an interval counter). The
// STATS opcode's reset bit calls this at load-cell boundaries; see
// obs.Histogram.Reset for the concurrency caveat.
func (s *Stats) Reset() {
	s.Ops.Store(0)
	s.Errors.Store(0)
	s.Read.Reset()
	s.Write.Reset()
	s.All.Reset()
}

// Stats snapshots the server's counters and histograms.
func (s *Server) Stats() StatsSnapshot {
	return StatsSnapshot{
		Conns:  s.stats.Conns.Load(),
		Ops:    s.stats.Ops.Load(),
		Errors: s.stats.Errors.Load(),
		Read:   s.stats.Read.Snapshot(),
		Write:  s.stats.Write.Snapshot(),
		All:    s.stats.All.Snapshot(),
	}
}

// statsJSON renders the snapshot for the STATS response payload.
func (s *Server) statsJSON() []byte {
	b, err := json.Marshal(s.Stats())
	if err != nil {
		return []byte("{}")
	}
	return b
}
