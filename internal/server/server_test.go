package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/load"
	"repro/internal/pmem"
	"repro/internal/server"
	"repro/internal/shardeddb"
	"repro/internal/wire"
)

// harness owns one server incarnation over a loopback listener plus the
// pmem group that outlives it — crash tests trip the server, crash the
// group, and start a fresh incarnation on a new port against the same
// persistent state.
type harness struct {
	t        *testing.T
	g        *pmem.Group
	shards   int
	threads  int
	buffered bool

	db       *shardeddb.DB
	srv      *server.Server
	addr     string
	serveErr chan error
}

type harnessConfig struct {
	shards, threads int
	buffered        bool
	mode            pmem.Mode
	shardWords      uint64
}

func newHarness(t *testing.T, cfg harnessConfig) *harness {
	if cfg.shards == 0 {
		cfg.shards = 4
	}
	if cfg.threads == 0 {
		cfg.threads = 2
	}
	h := &harness{
		t:       t,
		shards:  cfg.shards,
		threads: cfg.threads, buffered: cfg.buffered,
		g: shardeddb.NewGroup(shardeddb.GroupConfig{
			Shards:     cfg.shards,
			Threads:    cfg.threads,
			Mode:       cfg.mode,
			Buffered:   cfg.buffered,
			ShardWords: cfg.shardWords,
		}),
	}
	h.start()
	t.Cleanup(h.stopQuiet)
	return h
}

// start opens the store and serves a fresh listener; used both at setup and
// after a crash/reopen cycle.
func (h *harness) start() {
	h.db = shardeddb.Open(h.g, shardeddb.Options{
		Threads: h.threads, Buffered: h.buffered, PersistEvery: -1,
	})
	h.srv = server.New(h.db, server.Options{Threads: h.threads})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		h.t.Fatalf("listen: %v", err)
	}
	h.addr = ln.Addr().String()
	h.serveErr = make(chan error, 1)
	go func() { h.serveErr <- h.srv.Serve(ln) }()
}

// stop shuts the incarnation down cleanly and returns Serve's error.
func (h *harness) stop() error {
	h.srv.Stop()
	err := <-h.serveErr
	h.srv.Wait()
	return err
}

func (h *harness) stopQuiet() { h.srv.Stop(); h.srv.Wait() }

// awaitFailure blocks until a simulated power failure tripped the server.
func (h *harness) awaitFailure() {
	if err := <-h.serveErr; err != server.ErrServerFailed {
		h.t.Fatalf("Serve returned %v, want ErrServerFailed", err)
	}
	h.srv.Wait()
	if !h.srv.Failed() {
		h.t.Fatal("server not marked failed after power failure")
	}
}

// restartAfterCrash crashes the group and brings up a fresh incarnation.
func (h *harness) restartAfterCrash(policy pmem.CrashPolicy) {
	h.g.InjectFailure(-1)
	h.g.Crash(policy, nil)
	h.start()
}

func (h *harness) dial(clientID uint64) *load.Client {
	cl, err := load.Dial(h.addr, clientID)
	if err != nil {
		h.t.Fatalf("dial %s: %v", h.addr, err)
	}
	return cl
}

// TestServerConformance walks the full request surface over a real socket.
func TestServerConformance(t *testing.T) {
	h := newHarness(t, harnessConfig{shards: 4, threads: 2})
	cl := h.dial(7)
	defer cl.Close()

	if cl.Buffered() {
		t.Fatal("synchronous server declared ModeBuffered")
	}

	// PUT / GET / DELETE.
	if _, err := cl.Put([]byte("alpha"), []byte("one")); err != nil {
		t.Fatalf("put: %v", err)
	}
	v, ok, err := cl.Get([]byte("alpha"))
	if err != nil || !ok || !bytes.Equal(v, []byte("one")) {
		t.Fatalf("get alpha = %q %v %v", v, ok, err)
	}
	if _, ok, _ := cl.Get([]byte("missing")); ok {
		t.Fatal("get of absent key reported present")
	}
	if present, _ := cl.Delete([]byte("alpha")); !present {
		t.Fatal("delete of live key reported absent")
	}
	if present, _ := cl.Delete([]byte("alpha")); present {
		t.Fatal("delete of dead key reported present")
	}

	// Cross-shard WRITEBATCH, then SCAN sees it all-or-nothing and sorted.
	var ops []load.BatchOp
	for i := 0; i < 10; i++ {
		ops = append(ops, load.BatchOp{
			Key: []byte(fmt.Sprintf("batch-%02d", i)),
			Val: []byte(fmt.Sprintf("bv-%02d", i)),
		})
	}
	if _, err := cl.Write(ops); err != nil {
		t.Fatalf("writebatch: %v", err)
	}
	pairs, err := cl.Scan([]byte("batch-"), 0)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(pairs) != 10 {
		t.Fatalf("scan returned %d pairs, want 10", len(pairs))
	}
	for i, p := range pairs {
		if want := fmt.Sprintf("batch-%02d", i); string(p.Key) != want {
			t.Fatalf("scan pair %d key %q, want %q (sorted order)", i, p.Key, want)
		}
	}
	if pairs, _ = cl.Scan([]byte("batch-05"), 3); len(pairs) != 3 || string(pairs[0].Key) != "batch-05" {
		t.Fatalf("bounded scan from batch-05: %d pairs, first %q", len(pairs), pairs[0].Key)
	}

	// Detectable writes: exactly-once with dedup on re-send, witnessed by
	// WASAPPLIED and DETECTSTATS, pruned by ACK.
	applied, _, err := cl.PutDetectable(1, []byte("det"), []byte("d1"))
	if err != nil || !applied {
		t.Fatalf("detectable put #1: applied=%v err=%v", applied, err)
	}
	if applied, _, _ = cl.PutDetectable(1, []byte("det"), []byte("d1")); applied {
		t.Fatal("re-sent detectable put not deduplicated")
	}
	if ok, _ := cl.WasApplied(1); !ok {
		t.Fatal("WASAPPLIED(1) = false after apply")
	}
	if ok, _ := cl.WasApplied(99); ok {
		t.Fatal("WASAPPLIED(99) = true for never-sent seq")
	}
	if applied, _, _ = cl.WriteDetectable(2, ops[:4]); !applied {
		t.Fatal("detectable writebatch not applied")
	}
	if applied, _, _ = cl.WriteDetectable(2, ops[:4]); applied {
		t.Fatal("re-sent detectable writebatch not deduplicated")
	}
	receipts, maxSeq, acked := mustDetectStats(t, cl)
	if receipts != 2 || maxSeq != 2 || acked != 0 {
		t.Fatalf("detect stats = (%d,%d,%d), want (2,2,0)", receipts, maxSeq, acked)
	}
	if err := cl.Ack(2); err != nil {
		t.Fatalf("ack: %v", err)
	}
	if _, _, acked = mustDetectStats(t, cl); acked != 2 {
		t.Fatalf("acked watermark = %d after Ack(2)", acked)
	}

	// SYNC on a synchronous server: legal, trivially satisfied.
	if _, err := cl.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}

	// STATS is well-formed JSON with plausible counters.
	raw, err := cl.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var st server.StatsSnapshot
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("stats JSON: %v\n%s", err, raw)
	}
	if st.Ops == 0 || st.Conns != 1 || st.All.Count == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}

	// A detectable op on an anonymous connection is a client error that the
	// connection survives.
	anon := h.dial(0)
	defer anon.Close()
	if _, _, err := anon.PutDetectable(1, []byte("x"), []byte("y")); err == nil {
		t.Fatal("detectable put without client id did not error")
	}
	if _, err := anon.Put([]byte("x"), []byte("y")); err != nil {
		t.Fatalf("connection did not survive the client error: %v", err)
	}
}

func mustDetectStats(t *testing.T, cl *load.Client) (receipts, maxSeq, acked uint64) {
	t.Helper()
	receipts, maxSeq, acked, err := cl.DetectStats()
	if err != nil {
		t.Fatalf("detect stats: %v", err)
	}
	return receipts, maxSeq, acked
}

// TestServerPipelinedPuts writes a burst of PUT frames in one socket write
// and asserts the responses come back strictly in request order, each with a
// commit epoch, and that every value landed — the server-side batching path.
func TestServerPipelinedPuts(t *testing.T) {
	h := newHarness(t, harnessConfig{shards: 4, threads: 1})
	c, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	const n = 200
	var buf []byte
	for i := 0; i < n; i++ {
		buf = wire.AppendFrame(buf, &wire.Frame{
			Op:    wire.OpPut,
			ReqID: uint64(i + 1),
			Key:   []byte(fmt.Sprintf("pipe-%03d", i)),
			Val:   []byte(fmt.Sprintf("pv-%03d", i)),
		})
	}
	// Interleave a GET at the end so the burst has a read barrier to answer
	// after the deferred PUT responses.
	buf = wire.AppendFrame(buf, &wire.Frame{Op: wire.OpGet, ReqID: n + 1, Key: []byte("pipe-000")})
	if _, err := c.Write(buf); err != nil {
		t.Fatalf("write burst: %v", err)
	}

	dec := wire.NewDecoder(c, wire.Limits{})
	var resp wire.Frame
	for i := 0; i < n; i++ {
		if err := dec.ReadFrame(&resp); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if resp.Op != wire.OpPut|wire.RespBit || resp.ReqID != uint64(i+1) {
			t.Fatalf("response %d out of order: op %v req %d", i, resp.Op, resp.ReqID)
		}
		if resp.Status() != wire.StatusOK || resp.Aux == 0 {
			t.Fatalf("response %d: status %d epoch %d", i, resp.Status(), resp.Aux)
		}
	}
	if err := dec.ReadFrame(&resp); err != nil || resp.Op != wire.OpGet|wire.RespBit {
		t.Fatalf("trailing get response: %v %v", resp.Op, err)
	}
	if !bytes.Equal(resp.Val, []byte("pv-000")) {
		t.Fatalf("trailing get = %q", resp.Val)
	}

	// Release the single thread id before dialing the verification client:
	// admission waits on the tid pool, so on a Threads=1 server the next
	// connection is not served until this one closes.
	c.Close()

	cl := h.dial(0)
	defer cl.Close()
	for i := 0; i < n; i++ {
		v, ok, err := cl.Get([]byte(fmt.Sprintf("pipe-%03d", i)))
		if err != nil || !ok || !bytes.Equal(v, []byte(fmt.Sprintf("pv-%03d", i))) {
			t.Fatalf("pipelined put %d lost or corrupted: %q %v %v", i, v, ok, err)
		}
	}
}

// TestRaceSmokeServerPipelined is the -race pin for the per-connection
// arena-batch reuse under real concurrency (run by ci.sh): N pipelined
// connections hammer overlapping keys through the batching path while
// another connection scans, and every connection's final write must win or
// lose whole — never interleave bytes.
func TestRaceSmokeServerPipelined(t *testing.T) {
	const conns = 4
	h := newHarness(t, harnessConfig{shards: 4, threads: conns + 1})
	var wg sync.WaitGroup
	for cid := 0; cid < conns; cid++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			c, err := net.Dial("tcp", h.addr)
			if err != nil {
				t.Errorf("conn %d: %v", cid, err)
				return
			}
			defer c.Close()
			dec := wire.NewDecoder(c, wire.Limits{})
			var buf []byte
			var resp wire.Frame
			for round := 0; round < 20; round++ {
				buf = buf[:0]
				const per = 16
				for i := 0; i < per; i++ {
					buf = wire.AppendFrame(buf, &wire.Frame{
						Op:    wire.OpPut,
						ReqID: uint64(round*per + i + 1),
						Key:   []byte(fmt.Sprintf("hot-%02d", (round+i*3)%16)),
						Val:   []byte(fmt.Sprintf("conn%d-round%02d-val", cid, round)),
					})
				}
				if _, err := c.Write(buf); err != nil {
					t.Errorf("conn %d write: %v", cid, err)
					return
				}
				for i := 0; i < per; i++ {
					if err := dec.ReadFrame(&resp); err != nil || resp.Status() != wire.StatusOK {
						t.Errorf("conn %d resp: %v status %d", cid, err, resp.Status())
						return
					}
				}
			}
		}(cid)
	}
	wg.Wait()

	cl := h.dial(0)
	defer cl.Close()
	pairs, err := cl.Scan(nil, 0)
	if err != nil {
		t.Fatalf("final scan: %v", err)
	}
	for _, p := range pairs {
		var cid, round int
		if _, err := fmt.Sscanf(string(p.Val), "conn%d-round%02d-val", &cid, &round); err != nil {
			t.Fatalf("key %q holds torn value %q", p.Key, p.Val)
		}
	}
}
