package server

import (
	"bufio"
	"net"
	"time"

	"repro/internal/shardeddb"
	"repro/internal/wire"
)

// conn is one connection's state: a frame decoder whose scratch buffers the
// handlers borrow, a buffered writer (slow readers block here — per-connection
// backpressure that never touches other connections), the HELLO-declared
// client identity, and the reused arena WriteBatch that consecutive plain
// PUTs accumulate into.
type conn struct {
	srv  *Server
	c    net.Conn
	sess *shardeddb.Session
	dec  *wire.Decoder
	bw   *bufio.Writer

	client uint64 // HELLO aux; zero until declared

	batch       shardeddb.WriteBatch
	pending     []pendingPut
	needDurable bool

	payload []byte // response payload scratch (scan, stats)
}

// pendingPut is a batched PUT awaiting its deferred in-order response.
type pendingPut struct {
	reqID uint64
	shard int
	start time.Time
}

func newConn(s *Server, c net.Conn, sess *shardeddb.Session) *conn {
	return &conn{
		srv:  s,
		c:    c,
		sess: sess,
		dec:  wire.NewDecoder(c, s.opts.Limits),
		bw:   bufio.NewWriterSize(c, 1<<16),
	}
}

// run is the connection loop: decode a frame, handle it, and flush the write
// batch and the response buffer whenever the decoder drains (the client is
// about to block on our responses — the pipelining cue). Any decode error —
// typed malformation, mid-frame EOF, a closed socket — ends the connection;
// the stream cannot be trusted past a desynchronized frame.
func (cn *conn) run() {
	var req wire.Frame
	for {
		if err := cn.dec.ReadFrame(&req); err != nil {
			cn.flushWrites()
			cn.bw.Flush()
			return
		}
		if err := cn.handle(&req); err != nil {
			return
		}
		if cn.batch.Len() >= cn.srv.opts.MaxBatch || (cn.batch.Len() > 0 && cn.dec.Buffered() == 0) {
			if err := cn.flushWrites(); err != nil {
				return
			}
		}
		if cn.dec.Buffered() == 0 {
			if err := cn.bw.Flush(); err != nil {
				return
			}
		}
	}
}

// handle dispatches one request. Non-batchable requests flush the pending
// batch first so responses stay strictly in request order.
func (cn *conn) handle(req *wire.Frame) error {
	start := time.Now()
	if req.Op == wire.OpPut && req.Flags&wire.FlagDetectable == 0 {
		// The batchable fast path: enqueue into the arena batch (which
		// snapshots the decoder's scratch) and defer the response until the
		// flush supplies its commit epoch.
		cn.pending = append(cn.pending, pendingPut{
			reqID: req.ReqID,
			shard: cn.sess.ShardOf(req.Key),
			start: start,
		})
		cn.batch.Put(req.Key, req.Val)
		cn.needDurable = cn.needDurable || req.Flags&wire.FlagDurable != 0
		return nil
	}
	if err := cn.flushWrites(); err != nil {
		return err
	}

	resp := wire.Frame{Op: req.Op | wire.RespBit, ReqID: req.ReqID}
	write := false
	switch req.Op {
	case wire.OpHello:
		cn.client = req.Aux
		if cn.srv.db.Buffered() {
			resp.Aux |= wire.ModeBuffered
		}

	case wire.OpGet:
		if v, ok := cn.sess.Get(req.Key); ok {
			resp.Val = v
		} else {
			resp.Flags |= uint32(wire.StatusNotFound)
		}

	case wire.OpPut: // detectable (plain puts batched above)
		write = true
		if cn.client == 0 || req.ReqID == 0 {
			return cn.respondErr(&resp, start, "detectable PUT needs a HELLO client id and nonzero seq")
		}
		applied := cn.sess.PutDetectable(cn.client, req.ReqID, req.Key, req.Val)
		if !applied {
			resp.Flags |= uint32(wire.StatusDup)
		}
		if req.Flags&wire.FlagDurable != 0 {
			cn.sess.Sync()
		}
		resp.Aux = cn.sess.LastEpoch(cn.sess.ShardOf(req.Key))

	case wire.OpDelete:
		write = true
		var present bool
		if req.Flags&wire.FlagDetectable != 0 {
			if cn.client == 0 || req.ReqID == 0 {
				return cn.respondErr(&resp, start, "detectable DELETE needs a HELLO client id and nonzero seq")
			}
			applied := cn.sess.DeleteDetectable(cn.client, req.ReqID, req.Key)
			present = true
			if !applied {
				resp.Flags |= uint32(wire.StatusDup)
			}
		} else {
			present = cn.sess.Delete(req.Key)
		}
		if req.Flags&wire.FlagDurable != 0 {
			cn.sess.Sync()
		}
		if !present {
			resp.Flags |= uint32(wire.StatusNotFound)
		}
		resp.Aux = cn.sess.LastEpoch(cn.sess.ShardOf(req.Key))

	case wire.OpWrite:
		write = true
		cn.batch.Clear()
		touched := make(map[int]struct{}, 4)
		err := wire.DecodeBatch(req.Val, cn.limits(), func(del bool, key, val []byte) {
			touched[cn.sess.ShardOf(key)] = struct{}{}
			if del {
				cn.batch.Delete(key)
			} else {
				cn.batch.Put(key, val)
			}
		})
		if err != nil {
			cn.batch.Clear()
			return cn.respondErr(&resp, start, err.Error())
		}
		if req.Flags&wire.FlagDetectable != 0 {
			if cn.client == 0 || req.ReqID == 0 {
				cn.batch.Clear()
				return cn.respondErr(&resp, start, "detectable WRITEBATCH needs a HELLO client id and nonzero seq")
			}
			if !cn.sess.WriteDetectable(&cn.batch, cn.client, req.ReqID) {
				resp.Flags |= uint32(wire.StatusDup)
			}
			if req.Flags&wire.FlagDurable != 0 {
				cn.sess.Sync()
			}
		} else if req.Flags&wire.FlagDurable != 0 {
			cn.sess.WriteDurable(&cn.batch)
		} else {
			cn.sess.Write(&cn.batch)
		}
		// Aux is the max per-shard commit epoch of the touched shards —
		// exact on a single-shard store (the buffered lincheck harness),
		// a covering watermark otherwise.
		for sh := range touched {
			if e := cn.sess.LastEpoch(sh); e > resp.Aux {
				resp.Aux = e
			}
		}
		cn.batch.Clear()

	case wire.OpScan:
		it := cn.sess.NewIterator()
		limit := int(req.Aux)
		if limit <= 0 || limit > it.Len() {
			limit = it.Len()
		}
		cn.payload = cn.payload[:0]
		n := 0
		for ok := it.Seek(req.Key); ok && n < limit; ok = it.Next() {
			cn.payload = wire.AppendScanPair(cn.payload, it.Key(), it.Value())
			n++
		}
		resp.Aux = uint64(n)
		resp.Val = cn.payload

	case wire.OpSync:
		write = true
		cn.sess.Sync()
		resp.Aux = cn.durableWatermark()

	case wire.OpWasApplied:
		if cn.client == 0 {
			return cn.respondErr(&resp, start, "WASAPPLIED without HELLO client id")
		}
		if !cn.sess.WasApplied(cn.client, req.ReqID) {
			resp.Flags |= uint32(wire.StatusNotFound)
		}

	case wire.OpAck:
		if cn.client == 0 {
			return cn.respondErr(&resp, start, "ACK without HELLO client id")
		}
		cn.sess.AckApplied(cn.client, req.Aux)
		resp.Aux = req.Aux

	case wire.OpStats:
		resp.Val = cn.srv.statsJSON()
		if req.Aux&wire.StatsReset != 0 {
			cn.srv.stats.Reset()
		}

	case wire.OpDetectStats:
		if cn.client == 0 {
			return cn.respondErr(&resp, start, "DETECTSTATS without HELLO client id")
		}
		receipts, maxSeq, acked := cn.sess.DetectStats(cn.client)
		cn.payload = wire.AppendDetectStats(cn.payload[:0], receipts, maxSeq, acked)
		resp.Val = cn.payload

	default:
		// Unreachable: the decoder rejects out-of-range opcodes, and every
		// in-range request opcode has a case above.
		return cn.respondErr(&resp, start, "unhandled opcode")
	}
	return cn.respond(&resp, start, write)
}

// limits returns the connection's effective frame limits.
func (cn *conn) limits() wire.Limits {
	lim := cn.srv.opts.Limits
	if lim.MaxKey == 0 {
		lim.MaxKey = wire.DefaultLimits.MaxKey
	}
	if lim.MaxVal == 0 {
		lim.MaxVal = wire.DefaultLimits.MaxVal
	}
	return lim
}

// durableWatermark is the SYNC response aux: the minimum durable epoch
// across shards, below which every commit is persistent.
func (cn *conn) durableWatermark() uint64 {
	db := cn.srv.db
	if !db.Buffered() {
		return 0
	}
	min := db.DurableEpoch(0)
	for sh := 1; sh < db.Shards(); sh++ {
		if e := db.DurableEpoch(sh); e < min {
			min = e
		}
	}
	return min
}

// flushWrites applies the pending batch as one store transaction and emits
// the deferred PUT responses in order, each carrying its shard's commit
// epoch. All ops of one flush share a transaction per shard, so
// LastEpoch(shard) is exactly each op's commit epoch.
func (cn *conn) flushWrites() error {
	if cn.batch.Len() == 0 {
		return nil
	}
	if cn.needDurable {
		cn.sess.WriteDurable(&cn.batch)
	} else {
		cn.sess.Write(&cn.batch)
	}
	cn.batch.Clear()
	cn.needDurable = false
	var resp wire.Frame
	for _, p := range cn.pending {
		resp = wire.Frame{Op: wire.OpPut | wire.RespBit, ReqID: p.reqID, Aux: cn.sess.LastEpoch(p.shard)}
		if err := cn.respond(&resp, p.start, true); err != nil {
			cn.pending = cn.pending[:0]
			return err
		}
	}
	cn.pending = cn.pending[:0]
	return nil
}

// respond writes one response frame and records its service time.
func (cn *conn) respond(resp *wire.Frame, start time.Time, write bool) error {
	err := wire.WriteFrame(cn.bw, resp)
	d := time.Since(start)
	st := &cn.srv.stats
	st.Ops.Add(1)
	st.All.Observe(d)
	if write {
		st.Write.Observe(d)
	} else {
		st.Read.Observe(d)
	}
	if resp.Status() == wire.StatusErr {
		st.Errors.Add(1)
	}
	return err
}

// respondErr answers with StatusErr and the message as the value. The
// connection survives: payload-level errors are the client's bug, not a
// stream desynchronization.
func (cn *conn) respondErr(resp *wire.Frame, start time.Time, msg string) error {
	resp.Flags = resp.Flags&^0xff | uint32(wire.StatusErr)
	resp.Val = []byte(msg)
	return cn.respond(resp, start, false)
}
