package rwlock

import "sync/atomic"

// paddedCounter is a per-thread read indicator padded to its own cache line
// so that reader arrivals on different threads do not false-share.
type paddedCounter struct {
	v atomic.Int64
	_ [56]byte
}

// atomicInt64 is padded on both sides so the writer word does not share a
// line with the reader counters slice header.
type atomicInt64 struct {
	_ [64]byte
	atomic.Int64
	_ [56]byte
}
