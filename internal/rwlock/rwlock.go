// Package rwlock implements the strong try reader-writer lock used by the CX
// universal construction and by Redo-PTM (Correia & Ramalhete, "Strong
// trylocks for reader-writer locks", PPoPP 2018).
//
// The lock has two uncommon properties that the constructions depend on for
// wait-free progress:
//
//   - every method completes in a finite number of steps (there is no
//     blocking acquire at all — only try variants), and
//   - it is deadlock-free by construction.
//
// An exclusive holder may downgrade to a shared-compatible state: readers can
// then acquire the lock, but writers cannot, until DowngradeUnlock. This is
// how a freshly updated replica is opened for readers while still being
// protected from the next writer.
package rwlock

// StrongTryRWLock is a reader-writer lock whose acquisition methods complete
// in a finite number of steps and never block.
type StrongTryRWLock struct {
	// writer holds the lock mode: free, downgraded, or tid+1 of the
	// exclusive owner.
	writer  atomicInt64
	readers []paddedCounter
}

const downgraded = -1

// New creates a lock usable by thread ids 0..maxThreads-1.
func New(maxThreads int) *StrongTryRWLock {
	if maxThreads <= 0 {
		panic("rwlock: maxThreads must be positive")
	}
	return &StrongTryRWLock{readers: make([]paddedCounter, maxThreads)}
}

// SharedTryLock attempts to acquire the lock in shared mode on behalf of
// thread tid. It returns immediately with false if an exclusive holder is
// present. It succeeds when the lock is free, held shared, or downgraded.
func (l *StrongTryRWLock) SharedTryLock(tid int) bool {
	l.readers[tid].v.Add(1)
	if l.writer.Load() > 0 {
		l.readers[tid].v.Add(-1)
		return false
	}
	return true
}

// SharedUnlock releases a shared acquisition by thread tid.
func (l *StrongTryRWLock) SharedUnlock(tid int) {
	if l.readers[tid].v.Add(-1) < 0 {
		panic("rwlock: SharedUnlock without matching SharedTryLock")
	}
}

// ExclusiveTryLock attempts to acquire the lock in exclusive mode on behalf
// of thread tid. It fails immediately if any reader or writer is present,
// including a downgraded holder.
func (l *StrongTryRWLock) ExclusiveTryLock(tid int) bool {
	if !l.writer.CompareAndSwap(0, int64(tid)+1) {
		return false
	}
	// A reader that incremented its counter before our CAS may have
	// validated against a free lock and therefore holds shared access:
	// back off. A reader that increments after our CAS will observe the
	// writer flag and depart, so a clean scan here is decisive.
	for i := range l.readers {
		if l.readers[i].v.Load() != 0 {
			l.writer.Store(0)
			return false
		}
	}
	return true
}

// ExclusiveUnlock releases an exclusive acquisition.
func (l *StrongTryRWLock) ExclusiveUnlock() {
	if l.writer.Load() <= 0 {
		panic("rwlock: ExclusiveUnlock without exclusive hold")
	}
	l.writer.Store(0)
}

// Downgrade converts an exclusive hold into a downgraded hold: readers may
// acquire shared access, writers are still excluded. The holder must no
// longer mutate the protected data after downgrading.
func (l *StrongTryRWLock) Downgrade() {
	if l.writer.Load() <= 0 {
		panic("rwlock: Downgrade without exclusive hold")
	}
	l.writer.Store(downgraded)
}

// TryUpgrade converts a downgraded hold back into an exclusive one on
// behalf of thread tid. It fails if a reader is present (a stale reader may
// transiently hold a downgraded lock while it re-validates curComb), in
// which case the caller should retry; the stale reader departs in a finite
// number of steps, so the retry loop is bounded.
func (l *StrongTryRWLock) TryUpgrade(tid int) bool {
	if !l.writer.CompareAndSwap(downgraded, int64(tid)+1) {
		return false
	}
	for i := range l.readers {
		if l.readers[i].v.Load() != 0 {
			l.writer.Store(downgraded)
			return false
		}
	}
	return true
}

// DowngradeUnlock releases a downgraded hold.
func (l *StrongTryRWLock) DowngradeUnlock() {
	if l.writer.Load() != downgraded {
		panic("rwlock: DowngradeUnlock without downgraded hold")
	}
	l.writer.Store(0)
}

// IsExclusive reports whether an exclusive (non-downgraded) holder exists.
func (l *StrongTryRWLock) IsExclusive() bool { return l.writer.Load() > 0 }

// IsDowngraded reports whether the lock is in the downgraded state.
func (l *StrongTryRWLock) IsDowngraded() bool { return l.writer.Load() == downgraded }

// Readers reports the current number of shared holders (approximate under
// concurrency; exact when quiescent). Intended for tests and debugging.
func (l *StrongTryRWLock) Readers() int64 {
	var n int64
	for i := range l.readers {
		n += l.readers[i].v.Load()
	}
	return n
}
