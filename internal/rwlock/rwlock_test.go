package rwlock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewPanicsOnBadMax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestSharedThenExclusiveFails(t *testing.T) {
	l := New(4)
	if !l.SharedTryLock(0) {
		t.Fatal("SharedTryLock on free lock failed")
	}
	if l.ExclusiveTryLock(1) {
		t.Fatal("ExclusiveTryLock succeeded with a reader present")
	}
	l.SharedUnlock(0)
	if !l.ExclusiveTryLock(1) {
		t.Fatal("ExclusiveTryLock on free lock failed")
	}
	l.ExclusiveUnlock()
}

func TestExclusiveThenSharedFails(t *testing.T) {
	l := New(4)
	if !l.ExclusiveTryLock(0) {
		t.Fatal("ExclusiveTryLock on free lock failed")
	}
	if l.SharedTryLock(1) {
		t.Fatal("SharedTryLock succeeded with an exclusive holder")
	}
	if l.ExclusiveTryLock(2) {
		t.Fatal("second ExclusiveTryLock succeeded")
	}
	l.ExclusiveUnlock()
	if !l.SharedTryLock(1) {
		t.Fatal("SharedTryLock after unlock failed")
	}
	l.SharedUnlock(1)
}

func TestMultipleSharedHolders(t *testing.T) {
	l := New(4)
	for tid := 0; tid < 4; tid++ {
		if !l.SharedTryLock(tid) {
			t.Fatalf("SharedTryLock(%d) failed", tid)
		}
	}
	if got := l.Readers(); got != 4 {
		t.Fatalf("Readers() = %d, want 4", got)
	}
	for tid := 0; tid < 4; tid++ {
		l.SharedUnlock(tid)
	}
	if got := l.Readers(); got != 0 {
		t.Fatalf("Readers() after unlocks = %d, want 0", got)
	}
}

func TestDowngradeAdmitsReadersBlocksWriters(t *testing.T) {
	l := New(4)
	if !l.ExclusiveTryLock(0) {
		t.Fatal("ExclusiveTryLock failed")
	}
	l.Downgrade()
	if !l.IsDowngraded() {
		t.Fatal("IsDowngraded() = false after Downgrade")
	}
	if !l.SharedTryLock(1) {
		t.Fatal("SharedTryLock failed on downgraded lock")
	}
	if l.ExclusiveTryLock(2) {
		t.Fatal("ExclusiveTryLock succeeded on downgraded lock")
	}
	l.DowngradeUnlock()
	if l.ExclusiveTryLock(2) {
		t.Fatal("ExclusiveTryLock succeeded with reader still present")
	}
	l.SharedUnlock(1)
	if !l.ExclusiveTryLock(2) {
		t.Fatal("ExclusiveTryLock failed on free lock")
	}
	l.ExclusiveUnlock()
}

func TestUnlockWithoutHoldPanics(t *testing.T) {
	for name, f := range map[string]func(*StrongTryRWLock){
		"ExclusiveUnlock": func(l *StrongTryRWLock) { l.ExclusiveUnlock() },
		"SharedUnlock":    func(l *StrongTryRWLock) { l.SharedUnlock(0) },
		"Downgrade":       func(l *StrongTryRWLock) { l.Downgrade() },
		"DowngradeUnlock": func(l *StrongTryRWLock) { l.DowngradeUnlock() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s without hold did not panic", name)
				}
			}()
			f(New(2))
		}()
	}
}

func TestIsExclusive(t *testing.T) {
	l := New(2)
	if l.IsExclusive() {
		t.Fatal("free lock reports exclusive")
	}
	l.ExclusiveTryLock(0)
	if !l.IsExclusive() {
		t.Fatal("held lock does not report exclusive")
	}
	l.Downgrade()
	if l.IsExclusive() {
		t.Fatal("downgraded lock reports exclusive")
	}
	l.DowngradeUnlock()
}

// TestMutualExclusionStress verifies under the race detector that exclusive
// and shared holders never coexist and that two writers never coexist.
func TestMutualExclusionStress(t *testing.T) {
	const threads = 8
	l := New(threads)
	var exclusive atomic.Int64
	var shared atomic.Int64
	var violations atomic.Int64
	deadline := time.Now().Add(200 * time.Millisecond)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if tid%2 == 0 {
					if l.ExclusiveTryLock(tid) {
						if exclusive.Add(1) != 1 || shared.Load() != 0 {
							violations.Add(1)
						}
						exclusive.Add(-1)
						l.ExclusiveUnlock()
					}
				} else {
					if l.SharedTryLock(tid) {
						shared.Add(1)
						if exclusive.Load() != 0 {
							violations.Add(1)
						}
						shared.Add(-1)
						l.SharedUnlock(tid)
					}
				}
			}
		}(tid)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d mutual-exclusion violations", v)
	}
}

// TestDowngradeStress exercises the downgrade path under concurrency: a
// writer repeatedly acquires, writes, downgrades; readers validate they never
// observe a torn value.
func TestDowngradeStress(t *testing.T) {
	const threads = 4
	l := New(threads + 1)
	var word [2]int64 // both halves must always match
	deadline := time.Now().Add(200 * time.Millisecond)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer, tid = threads
		defer wg.Done()
		for i := int64(1); time.Now().Before(deadline); i++ {
			if !l.ExclusiveTryLock(threads) {
				continue
			}
			word[0] = i
			word[1] = i
			l.Downgrade()
			l.DowngradeUnlock()
		}
	}()
	var torn atomic.Int64
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if !l.SharedTryLock(tid) {
					continue
				}
				if word[0] != word[1] {
					torn.Add(1)
				}
				l.SharedUnlock(tid)
			}
		}(tid)
	}
	wg.Wait()
	if v := torn.Load(); v != 0 {
		t.Fatalf("readers observed %d torn writes", v)
	}
}

// TestFiniteSteps checks the strong-try property: trylock calls return even
// while the lock is continuously held by someone else.
func TestFiniteSteps(t *testing.T) {
	l := New(2)
	l.ExclusiveTryLock(0)
	done := make(chan bool)
	go func() {
		ok1 := l.SharedTryLock(1)
		ok2 := l.ExclusiveTryLock(1)
		done <- ok1 || ok2
	}()
	select {
	case got := <-done:
		if got {
			t.Fatal("trylock succeeded against an exclusive holder")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("trylock blocked: strong-try property violated")
	}
	l.ExclusiveUnlock()
}

func BenchmarkSharedLockUnlock(b *testing.B) {
	l := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.SharedTryLock(0)
		l.SharedUnlock(0)
	}
}

func BenchmarkExclusiveLockUnlock(b *testing.B) {
	l := New(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.ExclusiveTryLock(0)
		l.ExclusiveUnlock()
	}
}
