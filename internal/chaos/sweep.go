package chaos

import (
	"fmt"
	"math/rand"

	"repro/internal/pmem"
)

// Options parameterizes a sweep.
type Options struct {
	// Ops is the number of insert transactions per crash run (default 25).
	Ops int
	// Stride is the spacing, in persistent-memory instructions, between
	// successive first crash points. Zero or negative selects the default:
	// 7 for the single-crash and corruption sweeps; for the nested sweep
	// the workload's event count is measured and the stride chosen so that
	// about 256 first points are explored.
	Stride int64
	// Stride2 is the spacing between second (mid-recovery) crash points in
	// the nested sweep (default 1: every recovery instruction boundary).
	Stride2 int64
	// Adversarial selects the crash model: false loses every unflushed
	// line (conservative), true additionally lets unflushed dirty lines
	// spuriously persist with word-granularity tearing (cache evictions).
	Adversarial bool
	// Seed seeds the deterministic RNG driving adversarial tearing and
	// bit-flip placement (default 2020).
	Seed int64
	// Flips is the number of bit flips tried per crash point in the
	// corruption sweep (default 4).
	Flips int
}

func (o Options) withDefaults() Options {
	if o.Ops <= 0 {
		o.Ops = 25
	}
	if o.Seed == 0 {
		o.Seed = 2020
	}
	if o.Flips <= 0 {
		o.Flips = 4
	}
	return o
}

// nestedFirstPoints is the target number of first crash points the nested
// sweep explores when no stride is given.
const nestedFirstPoints = 256

func crash(g *pmem.Group, adversarial bool, rng *rand.Rand) {
	if adversarial {
		g.Crash(pmem.CrashAdversarial, rng)
	} else {
		g.Crash(pmem.CrashConservative, nil)
	}
}

// run executes fn, translating the two expected panics: a simulated power
// failure sets crashed, a typed corruption report is returned as cerr.
// Anything else propagates — a sweep must never swallow a real bug.
func run(fn func()) (crashed bool, cerr *pmem.CorruptionError) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == pmem.ErrSimulatedPowerFailure {
			crashed = true
			return
		}
		if ce, ok := pmem.AsCorruption(rec); ok {
			cerr = ce
			return
		}
		panic(rec)
	}()
	fn()
	return
}

// workload recovers (or formats) the engine on pool, arms a failure point
// fail instructions later, and runs the insert workload.
func workload(g *pmem.Group, r *Runner, n int, fail int64) (completed int, crashed bool, err error) {
	crashed, cerr := run(func() {
		r.Fresh(g)
		if fail > 0 {
			g.InjectFailure(fail)
		}
		for i := 0; i < n; i++ {
			r.Insert(i)
			completed++
		}
	})
	if cerr != nil {
		return completed, crashed, fmt.Errorf("unexpected corruption report: %w", cerr)
	}
	return completed, crashed, nil
}

// MeasureEvents counts the persistent-memory events one full un-crashed
// workload issues, including initial formatting: it arms a failure counter
// too large to fire and reads back what remains.
func MeasureEvents(name string, ops int) (int64, error) {
	g := GroupFor(name)
	r, err := NewRunner(name)
	if err != nil {
		return 0, err
	}
	const huge = int64(1) << 60
	r.Fresh(g)
	g.InjectFailure(huge)
	for i := 0; i < ops; i++ {
		r.Insert(i)
	}
	n := huge - g.InjectRemaining()
	g.InjectFailure(-1)
	return n, nil
}

// Sweep is the classic single-crash sweep: run the workload with a failure
// injected at successive instruction boundaries, crash, recover once, and
// verify that every completed transaction survived. Returns the number of
// crash points explored; the sweep ends when the workload outruns the
// failure point.
func Sweep(name string, o Options) (int, error) {
	o = o.withDefaults()
	stride := o.Stride
	if stride <= 0 {
		stride = 7
	}
	rng := rand.New(rand.NewSource(o.Seed))
	crashes := 0
	for fail := int64(1); ; fail += stride {
		g := GroupFor(name)
		r, err := NewRunner(name)
		if err != nil {
			return crashes, err
		}
		completed, crashed, err := workload(g, r, o.Ops, fail)
		if err != nil {
			return crashes, pointErr(name, o, fail, 0, err)
		}
		if !crashed {
			if completed != o.Ops {
				return crashes, fmt.Errorf("no crash but only %d/%d completed", completed, o.Ops)
			}
			return crashes, nil
		}
		crashes++
		crash(g, o.Adversarial, rng)
		g.InjectFailure(-1)
		r2, err := NewRunner(name)
		if err != nil {
			return crashes, err
		}
		if _, cerr := run(func() { r2.Fresh(g) }); cerr != nil {
			return crashes, pointErr(name, o, fail, 0, fmt.Errorf("recovery reported corruption: %w", cerr))
		}
		if err := r2.Verify(completed, o.Ops); err != nil {
			return crashes, pointErr(name, o, fail, 0, err)
		}
	}
}

// NestedSweep explores pairs of crash points in the nested-failure model:
// crash the workload at the first point, then crash *recovery itself* at
// every Stride2-th instruction boundary, recover fully, and verify. The
// final probe of each inner loop — recovery completing with the failure
// point still armed — counts as a pair too: it certifies the recovery path
// was executed end-to-end under the armed counter. Returns the number of
// pairs explored.
func NestedSweep(name string, o Options) (int, error) {
	o = o.withDefaults()
	stride1 := o.Stride
	if stride1 <= 0 {
		events, err := MeasureEvents(name, o.Ops)
		if err != nil {
			return 0, err
		}
		// A lean engine (ONLL persists one line per insert) may issue fewer
		// events than the target point count; grow the workload until every
		// instruction boundary still yields enough first points.
		for events < nestedFirstPoints && o.Ops < 1<<12 {
			o.Ops *= 2
			if events, err = MeasureEvents(name, o.Ops); err != nil {
				return 0, err
			}
		}
		stride1 = events / nestedFirstPoints
		if stride1 < 1 {
			stride1 = 1
		}
	}
	stride2 := o.Stride2
	if stride2 <= 0 {
		stride2 = 1
	}
	rng := rand.New(rand.NewSource(o.Seed))
	pairs := 0
	// One scratch group serves every (first, second) pair: the post-crash
	// image is copied into it in place of allocating a fresh clone per pair,
	// which bounds the sweep's memory at two group images regardless of how
	// many thousands of pairs it explores.
	var scratch *pmem.Group
	for first := int64(1); ; first += stride1 {
		g := GroupFor(name)
		r, err := NewRunner(name)
		if err != nil {
			return pairs, err
		}
		completed, crashed, err := workload(g, r, o.Ops, first)
		if err != nil {
			return pairs, pointErr(name, o, first, 0, err)
		}
		if !crashed {
			if completed != o.Ops {
				return pairs, fmt.Errorf("no crash but only %d/%d completed", completed, o.Ops)
			}
			return pairs, nil
		}
		crash(g, o.Adversarial, rng)
		for second := int64(1); ; second += stride2 {
			if scratch == nil {
				scratch = g.Clone()
			} else {
				g.CloneInto(scratch)
			}
			pairs++
			done, err := nestedRecover(name, scratch, second, o.Adversarial, rng, completed, o.Ops)
			if err != nil {
				return pairs, pointErr(name, o, first, second, err)
			}
			if done {
				break
			}
		}
	}
}

// nestedRecover arms a second failure point and invokes recovery. If the
// point fires mid-recovery, the pool is crashed again and recovered to
// completion. Either way the final state is verified. done reports that
// recovery ran to completion without firing — the inner sweep is exhausted.
func nestedRecover(name string, g *pmem.Group, second int64, adversarial bool, rng *rand.Rand, completed, n int) (done bool, err error) {
	r, err := NewRunner(name)
	if err != nil {
		return false, err
	}
	crashed, cerr := run(func() {
		g.InjectFailure(second)
		r.Fresh(g)
	})
	g.InjectFailure(-1)
	if cerr != nil {
		return false, fmt.Errorf("first recovery reported corruption: %w", cerr)
	}
	if crashed {
		crash(g, adversarial, rng)
		if r, err = NewRunner(name); err != nil {
			return false, err
		}
		if _, cerr := run(func() { r.Fresh(g) }); cerr != nil {
			return false, fmt.Errorf("second recovery reported corruption: %w", cerr)
		}
	}
	if err := r.Verify(completed, n); err != nil {
		return false, err
	}
	return !crashed, nil
}

// CheckPair exercises exactly one (first, second) nested crash pair. It is
// the fuzz entry point: FuzzNestedCrashPoint feeds arbitrary pairs here.
// Pairs whose first point the workload outruns are vacuously fine.
func CheckPair(name string, o Options, first, second int64) error {
	if first <= 0 || second <= 0 {
		return nil
	}
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	g := GroupFor(name)
	r, err := NewRunner(name)
	if err != nil {
		return err
	}
	completed, crashed, err := workload(g, r, o.Ops, first)
	if err != nil {
		return err
	}
	if !crashed {
		return nil
	}
	crash(g, o.Adversarial, rng)
	_, err = nestedRecover(name, g, second, o.Adversarial, rng, completed, o.Ops)
	return err
}

// CorruptionSweep flips bits in the spans the engine declares unreachable
// from committed state — stale replicas, log tails, scratch areas — after a
// crash, and asserts that recovery either succeeds with a correct state or
// halts with a typed *pmem.CorruptionError. A panic of any other kind, or a
// successful recovery with a wrong answer, fails the sweep. Returns the
// number of bit flips exercised.
func CorruptionSweep(name string, o Options) (int, error) {
	o = o.withDefaults()
	stride := o.Stride
	if stride <= 0 {
		stride = 7
	}
	ranges, err := StaleRangesFor(name)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(o.Seed))
	flips := 0
	// As in NestedSweep, one scratch group is reused across every flip
	// experiment instead of cloning per flip.
	var scratch *pmem.Group
	for fail := int64(1); ; fail += stride {
		g := GroupFor(name)
		r, err := NewRunner(name)
		if err != nil {
			return flips, err
		}
		completed, crashed, err := workload(g, r, o.Ops, fail)
		if err != nil {
			return flips, pointErr(name, o, fail, 0, err)
		}
		if !crashed {
			return flips, nil
		}
		crash(g, o.Adversarial, rng)
		g.InjectFailure(-1)
		stale := ranges(g)
		var total uint64
		for _, rg := range stale {
			total += rg.Words
		}
		if total == 0 {
			continue // everything durable is reachable; nothing to corrupt
		}
		for k := 0; k < o.Flips; k++ {
			if scratch == nil {
				scratch = g.Clone()
			} else {
				g.CloneInto(scratch)
			}
			pi, region, addr := pickWord(stale, uint64(rng.Int63n(int64(total))))
			scratch.Pool(pi).FlipBit(region, addr, uint(rng.Intn(64)))
			flips++
			r2, err := NewRunner(name)
			if err != nil {
				return flips, err
			}
			crashed2, cerr := run(func() { r2.Fresh(scratch) })
			if crashed2 {
				return flips, pointErr(name, o, fail, 0, fmt.Errorf("flip %d: spurious power failure", k))
			}
			if cerr != nil {
				continue // detected: an acceptable outcome
			}
			if err := r2.Verify(completed, o.Ops); err != nil {
				return flips, pointErr(name, o, fail, 0, fmt.Errorf("flip %d: silent wrong answer: %w", k, err))
			}
		}
	}
}

// pickWord maps a flat index over the concatenated ranges to (pool, region,
// addr).
func pickWord(ranges []pmem.GroupRange, i uint64) (int, int, pmem.Addr) {
	for _, rg := range ranges {
		if i < rg.Words {
			return rg.Pool, rg.Region, rg.Start + i
		}
		i -= rg.Words
	}
	last := ranges[len(ranges)-1]
	return last.Pool, last.Region, last.Start + last.Words - 1
}
