package chaos

import (
	"fmt"
	"math/rand"

	"repro/internal/pmem"
	"repro/internal/redodb"
	"repro/internal/shardeddb"
)

// PointError is a sweep failure pinned to its reproduction coordinates: the
// engine, the RNG seed, and the crash point (or pair) that exposed it. The
// sweeps are deterministic in (engine, seed, ops, stride), so the triple is
// everything a re-run needs; cmd/crashcheck formats it into a command line.
type PointError struct {
	Engine      string
	Adversarial bool
	Seed        int64
	First       int64 // workload crash point (PM instruction count)
	Second      int64 // recovery crash point (nested sweeps only; 0 otherwise)
	Err         error
}

func (e *PointError) Error() string {
	model := "conservative"
	if e.Adversarial {
		model = "adversarial"
	}
	if e.Second != 0 {
		return fmt.Sprintf("engine %s seed %d %s crash pair (%d,%d): %v",
			e.Engine, e.Seed, model, e.First, e.Second, e.Err)
	}
	return fmt.Sprintf("engine %s seed %d %s crash point %d: %v",
		e.Engine, e.Seed, model, e.First, e.Err)
}

func (e *PointError) Unwrap() error { return e.Err }

// pointErr wraps err with its reproduction coordinates.
func pointErr(name string, o Options, first, second int64, err error) error {
	return &PointError{
		Engine: name, Adversarial: o.Adversarial, Seed: o.Seed,
		First: first, Second: second, Err: err,
	}
}

// StormEngines lists the retry-storm sweep targets: the detectable session
// API on RedoDB and on the sharded front-end at the acceptance shard counts.
func StormEngines() []string {
	return []string{"detect-redodb", "detect-shardeddb-1", "detect-shardeddb-8"}
}

// stormAckEvery is the acking cadence of the storm workload: every fifth
// request the client advances its watermark, so every sweep also crosses
// receipt truncation at many crash points.
const stormAckEvery = 5

// stormClient is the persistent client id the storm workload runs under.
const stormClient = 42

// StormRunner drives one detectable engine through the retry-storm protocol:
// issue requests tagged with strictly increasing seqs, crash anywhere, then
// probe WasApplied and retry. All callbacks speak in request seqs (1-based).
type StormRunner struct {
	Fresh      func(g *pmem.Group)                  // open or recover the engine
	Apply      func(seq uint64) bool                // issue request seq; reports applied (false: dedup)
	Ack        func(upto uint64)                    // advance the acked watermark
	WasApplied func(seq uint64) bool                // durable receipt probe
	Verify     func(seq uint64, applied bool) error // effect present iff applied, never torn
	Stats      func() (receipts, maxSeq, acked uint64)
}

// stormShardsOf reports the shard count of a "detect-shardeddb-K" engine
// name, or 0.
func stormShardsOf(name string) int {
	var k int
	if _, err := fmt.Sscanf(name, "detect-shardeddb-%d", &k); err == nil && k > 0 {
		return k
	}
	return 0
}

// stormGroup allocates the strict-mode pool group for one storm engine.
func stormGroup(name string) *pmem.Group {
	if shards := stormShardsOf(name); shards > 0 {
		return shardeddb.NewGroup(shardeddb.GroupConfig{
			Shards: shards, Threads: 1, Mode: pmem.Strict,
		})
	}
	pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 2})
	return pmem.NewGroup(pool)
}

// NewStormRunner builds the deterministic retry-storm workload for one
// engine. Requests are single-key detectable puts on redodb; on shardeddb
// each request is a detectable two-key batch whose prefixes scatter across
// shards, so every crash point inside the coordinator's intent protocol is
// exercised with a receipt in flight.
func NewStormRunner(name string) (*StormRunner, error) {
	if shards := stormShardsOf(name); shards > 0 {
		var s *shardeddb.Session
		key := func(prefix byte, seq uint64) []byte {
			return []byte(fmt.Sprintf("%c-storm%03d", prefix, seq))
		}
		return &StormRunner{
			Fresh: func(g *pmem.Group) {
				s = shardeddb.Open(g, shardeddb.Options{Threads: 1}).Session(0)
			},
			Apply: func(seq uint64) bool {
				b := &shardeddb.WriteBatch{}
				b.Put(key('a', seq), []byte{byte(seq)})
				b.Put(key('b', seq), []byte{byte(seq) ^ 0xff})
				return s.WriteDetectable(b, stormClient, seq)
			},
			Ack:        func(upto uint64) { s.AckApplied(stormClient, upto) },
			WasApplied: func(seq uint64) bool { return s.WasApplied(stormClient, seq) },
			Verify: func(seq uint64, applied bool) error {
				va, oka := s.Get(key('a', seq))
				vb, okb := s.Get(key('b', seq))
				if oka != okb {
					return fmt.Errorf("request %d recovered torn (a=%v b=%v)", seq, oka, okb)
				}
				if oka != applied {
					return fmt.Errorf("request %d: receipt says applied=%v but present=%v",
						seq, applied, oka)
				}
				if applied && (va[0] != byte(seq) || vb[0] != byte(seq)^0xff) {
					return fmt.Errorf("request %d recovered with wrong values %x/%x", seq, va, vb)
				}
				return nil
			},
			Stats: func() (uint64, uint64, uint64) { return s.DetectStats(stormClient) },
		}, nil
	}
	switch name {
	case "detect-redodb":
		var s *redodb.Session
		key := func(seq uint64) []byte { return []byte(fmt.Sprintf("storm%03d", seq)) }
		return &StormRunner{
			Fresh: func(g *pmem.Group) {
				s = redodb.Open(g.Pool(0), redodb.Options{Threads: 1}).Session(0)
			},
			Apply: func(seq uint64) bool {
				return s.PutDetectable(stormClient, seq, key(seq), []byte{byte(seq)})
			},
			Ack:        func(upto uint64) { s.AckApplied(stormClient, upto) },
			WasApplied: func(seq uint64) bool { return s.WasApplied(stormClient, seq) },
			Verify: func(seq uint64, applied bool) error {
				v, ok := s.Get(key(seq))
				if ok != applied {
					return fmt.Errorf("request %d: receipt says applied=%v but present=%v",
						seq, applied, ok)
				}
				if applied && v[0] != byte(seq) {
					return fmt.Errorf("request %d recovered with wrong value %x", seq, v)
				}
				return nil
			},
			Stats: func() (uint64, uint64, uint64) { return s.DetectStats(stormClient) },
		}, nil
	}
	return nil, fmt.Errorf("chaos: unknown retry-storm engine %q", name)
}

// RetryStorm is the exactly-once crash sweep: run the detectable workload
// with a power failure injected at successive instruction boundaries, crash,
// recover, and run the client's recovery protocol — probe WasApplied for
// every issued request, verify the probe against the actual state (an acked
// or completed request must survive; an unacked one must be fully absent or
// detectably applied, never torn and never duplicated), then retry every
// request and assert the dedup table skips exactly the receipted ones. The
// final receipt count is the exactly-once witness: one receipt per request,
// no matter where the crash landed. Returns the number of crash points
// explored.
func RetryStorm(name string, o Options) (int, error) {
	o = o.withDefaults()
	stride := o.Stride
	if stride <= 0 {
		stride = 7
	}
	rng := rand.New(rand.NewSource(o.Seed))
	crashes := 0
	for fail := int64(1); ; fail += stride {
		crashed, err := stormPoint(name, o, rng, fail)
		if err != nil {
			return crashes, pointErr(name, o, fail, 0, err)
		}
		if !crashed {
			return crashes, nil
		}
		crashes++
	}
}

// CheckStormPoint exercises exactly one retry-storm crash point — the
// reproduction entry for a failing (seed, engine, point) triple.
func CheckStormPoint(name string, o Options, fail int64) error {
	if fail <= 0 {
		return nil
	}
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	if _, err := stormPoint(name, o, rng, fail); err != nil {
		return pointErr(name, o, fail, 0, err)
	}
	return nil
}

// stormPoint runs the storm workload with a failure armed fail instructions
// in, and — if it fired — recovers and runs the full retry protocol.
func stormPoint(name string, o Options, rng *rand.Rand, fail int64) (crashed bool, err error) {
	g := stormGroup(name)
	r, err := NewStormRunner(name)
	if err != nil {
		return false, err
	}
	completed := 0
	crashed, cerr := run(func() {
		r.Fresh(g)
		g.InjectFailure(fail)
		for seq := uint64(1); seq <= uint64(o.Ops); seq++ {
			r.Apply(seq)
			completed++
			if seq%stormAckEvery == 0 {
				r.Ack(seq)
			}
		}
	})
	g.InjectFailure(-1)
	if cerr != nil {
		return crashed, fmt.Errorf("unexpected corruption report: %w", cerr)
	}
	if !crashed {
		if completed != o.Ops {
			return false, fmt.Errorf("no crash but only %d/%d requests completed", completed, o.Ops)
		}
		return false, nil
	}
	crash(g, o.Adversarial, rng)

	r2, err := NewStormRunner(name)
	if err != nil {
		return true, err
	}
	if _, cerr := run(func() { r2.Fresh(g) }); cerr != nil {
		return true, fmt.Errorf("recovery reported corruption: %w", cerr)
	}

	// Probe phase: the receipt table must agree with the recovered state for
	// every request — completed requests are receipted, the in-flight one is
	// either fully in (receipted) or fully out, later seqs were never issued.
	for seq := uint64(1); seq <= uint64(o.Ops); seq++ {
		probe := r2.WasApplied(seq)
		if int(seq) <= completed && !probe {
			return true, fmt.Errorf("completed request %d lost its receipt", seq)
		}
		if int(seq) > completed+1 && probe {
			return true, fmt.Errorf("unissued request %d reports applied", seq)
		}
		if err := r2.Verify(seq, probe); err != nil {
			return true, err
		}
	}

	// Retry storm: re-issue every request. Exactly the unreceipted ones may
	// apply; a receipted one applying again is the duplicate this subsystem
	// exists to rule out.
	for seq := uint64(1); seq <= uint64(o.Ops); seq++ {
		pre := r2.WasApplied(seq)
		appliedNow := r2.Apply(seq)
		if appliedNow == pre {
			return true, fmt.Errorf("retry of request %d applied=%v with prior receipt=%v",
				seq, appliedNow, pre)
		}
	}
	for seq := uint64(1); seq <= uint64(o.Ops); seq++ {
		if err := r2.Verify(seq, true); err != nil {
			return true, fmt.Errorf("after retries: %w", err)
		}
	}
	receipts, maxSeq, _ := r2.Stats()
	if receipts != uint64(o.Ops) || maxSeq != uint64(o.Ops) {
		return true, fmt.Errorf("exactly-once witness broken: %d receipts, max seq %d, want %d each",
			receipts, maxSeq, o.Ops)
	}
	return true, nil
}
