package chaos

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/pmem"
)

// physOf converts a stats snapshot to the trace-side counter type.
func physOf(s pmem.StatsSnapshot) obs.PhysCounts {
	return obs.PhysCounts{
		PWBs:        s.PWBs,
		PFences:     s.PFences,
		PSyncs:      s.PSyncs,
		NTStores:    s.NTStores,
		WordsCopied: s.WordsCopied,
	}
}

// traceOps is the short deterministic workload the parity smokes run.
const traceOps = 24

// TestTraceStatsParity is the per-engine observability smoke: every engine
// in the crashcheck registry runs the standard workload with tracing on, the
// captured trace must reconstruct the pool group's stats counters EXACTLY
// (pwbs, pfences, psyncs, ntstores, copied words), and the dynamic ordering
// checker must accept the trace. ci.sh runs one engine of this test under
// -race as the bounded trace-parity step.
func TestTraceStatsParity(t *testing.T) {
	for _, name := range Engines() {
		name := name
		t.Run(name, func(t *testing.T) {
			g := GroupFor(name)
			tr := obs.NewTracer(1 << 19)
			g.SetTracer(tr)
			r, err := NewRunner(name)
			if err != nil {
				t.Fatal(err)
			}
			r.Fresh(g)
			for i := 0; i < traceOps; i++ {
				r.Insert(i)
			}
			if err := r.Verify(traceOps, traceOps); err != nil {
				t.Fatal(err)
			}

			snap := tr.Snapshot()
			if snap.Dropped != 0 {
				t.Fatalf("ring wrapped (dropped %d) — grow the tracer", snap.Dropped)
			}
			if got, want := snap.Counts(), physOf(g.Stats()); got != want {
				t.Fatalf("trace/stats parity broken:\n  trace %+v\n  stats %+v", got, want)
			}

			vs, err := obs.CheckOrdering(snap, obs.CheckOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range vs {
				t.Errorf("ordering violation: %v", v)
			}

			kinds := snap.KindCounts()
			if kinds[obs.KindPublish]+kinds[obs.KindHeaderPublish]+kinds[obs.KindIntentPublish] == 0 {
				t.Errorf("engine declared no publish points — the checker verified nothing")
			}
			if kinds[obs.KindRecoveryBegin] == 0 || kinds[obs.KindRecoveryEnd] == 0 {
				t.Errorf("recovery phase markers missing: %v", kinds)
			}
			// The RedoDB family stores byte payloads through the bulk path
			// by default (even 1-byte values: a 2-word StoreWords), so its
			// traces must contain aggregated bulk-store events.
			switch name {
			case "redodb", "redodb-bulkval", "shardeddb-1", "shardeddb-2", "shardeddb-8":
				if kinds[obs.KindBulkStore] == 0 {
					t.Errorf("no bulk-store events — the aggregated path is not live on %s", name)
				}
			}
			// Buffered engines must narrate their group-commit cycle: epoch
			// seals and watermark advances (whose monotonicity the ordering
			// checker above just verified), and still use the bulk path.
			if bufferedDepthOf(name) > 0 || bufferedShardsOf(name) > 0 {
				if kinds[obs.KindBulkStore] == 0 {
					t.Errorf("no bulk-store events — the aggregated path is not live on %s", name)
				}
				if kinds[obs.KindEpochSeal] == 0 || kinds[obs.KindWatermark] == 0 {
					t.Errorf("buffered engine emitted no epoch-seal/watermark events: %v", kinds)
				}
			}
		})
	}
}

// TestTraceParityUnderCrashInjection pins the parity guarantee at its
// hardest point: a simulated power failure fires mid-workload (the injector
// panics BEFORE the stats bump, and events are emitted after it), the group
// crashes and recovers with the same tracer attached, and afterwards the
// cumulative trace still matches the cumulative stats exactly and the whole
// crash-spanning trace passes the ordering checker.
func TestTraceParityUnderCrashInjection(t *testing.T) {
	const name = "redodb"
	events, err := MeasureEvents(name, traceOps)
	if err != nil {
		t.Fatal(err)
	}

	g := GroupFor(name)
	tr := obs.NewTracer(1 << 19)
	g.SetTracer(tr)
	r, err := NewRunner(name)
	if err != nil {
		t.Fatal(err)
	}
	completed, crashed, err := workload(g, r, traceOps, events/2)
	if err != nil {
		t.Fatal(err)
	}
	if !crashed {
		t.Fatalf("failure point %d never fired over %d events", events/2, events)
	}
	g.Crash(pmem.CrashConservative, nil)
	g.InjectFailure(-1)

	r2, err := NewRunner(name)
	if err != nil {
		t.Fatal(err)
	}
	r2.Fresh(g)
	if err := r2.Verify(completed, traceOps); err != nil {
		t.Fatal(err)
	}

	snap := tr.Snapshot()
	if snap.Dropped != 0 {
		t.Fatalf("ring wrapped (dropped %d)", snap.Dropped)
	}
	if got, want := snap.Counts(), physOf(g.Stats()); got != want {
		t.Fatalf("post-crash parity broken:\n  trace %+v\n  stats %+v", got, want)
	}
	kinds := snap.KindCounts()
	if kinds[obs.KindCrash] == 0 {
		t.Fatalf("no crash event captured: %v", kinds)
	}
	vs, err := obs.CheckOrdering(snap, obs.CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		t.Errorf("ordering violation across crash: %v", v)
	}
}
