package chaos

import (
	"errors"
	"strings"
	"testing"
)

func TestRetryStormSmoke(t *testing.T) {
	for _, name := range StormEngines() {
		for _, adv := range []bool{false, true} {
			name, adv := name, adv
			sub := name
			if adv {
				sub += "/adversarial"
			}
			t.Run(sub, func(t *testing.T) {
				crashes, err := RetryStorm(name, Options{Ops: 6, Stride: 29, Adversarial: adv})
				if err != nil {
					t.Errorf("%s adversarial=%v: %v", name, adv, err)
				}
				if crashes == 0 {
					t.Errorf("%s adversarial=%v: no crash points explored", name, adv)
				}
			})
		}
	}
}

func TestCheckStormPoint(t *testing.T) {
	// A real point and a point past the workload's end (vacuously fine).
	if err := CheckStormPoint("detect-redodb", Options{Ops: 4}, 33); err != nil {
		t.Fatalf("point 33: %v", err)
	}
	if err := CheckStormPoint("detect-redodb", Options{Ops: 4}, 1<<40); err != nil {
		t.Fatalf("huge point: %v", err)
	}
	if err := CheckStormPoint("nope", Options{Ops: 4}, 1); err == nil {
		t.Fatal("unknown engine did not fail")
	}
}

func TestPointErrorCoordinates(t *testing.T) {
	err := pointErr("detect-redodb", Options{Seed: 7}, 120, 0, errors.New("boom"))
	var pe *PointError
	if !errors.As(err, &pe) {
		t.Fatal("pointErr did not produce a *PointError")
	}
	if pe.Engine != "detect-redodb" || pe.Seed != 7 || pe.First != 120 || pe.Second != 0 {
		t.Fatalf("coordinates = %+v", pe)
	}
	if s := err.Error(); !strings.Contains(s, "seed 7") || !strings.Contains(s, "crash point 120") {
		t.Fatalf("Error() = %q", s)
	}
	pair := pointErr("x", Options{Adversarial: true, Seed: 2}, 3, 4, errors.New("boom"))
	if s := pair.Error(); !strings.Contains(s, "crash pair (3,4)") || !strings.Contains(s, "adversarial") {
		t.Fatalf("pair Error() = %q", s)
	}
}
