// Package chaos is the crash-consistency checking engine behind cmd/crashcheck:
// systematic single-crash sweeps, nested-crash (crash-during-recovery) sweeps
// in the model of Ben-David et al., and a corruption sweep that flips bits in
// the spans each engine declares unreachable from committed state.
//
// Every engine is driven through the same deterministic workload — insert
// keys 0..n-1, one durable transaction each — so a checker can count the
// completed transactions at the moment of a simulated power failure and then
// assert, after recovery, that the surviving state is exactly a prefix of
// the workload containing at least every completed insert.
package chaos

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core/cx"
	"repro/internal/core/redo"
	"repro/internal/onefile"
	"repro/internal/onll"
	"repro/internal/pmdk"
	"repro/internal/pmem"
	"repro/internal/psim"
	"repro/internal/ptm"
	"repro/internal/redodb"
	"repro/internal/rockssim"
	"repro/internal/romulus"
	"repro/internal/seqds"
)

// Engines lists every sweep target: the nine PTM/PUC constructions plus the
// ONLL one-line-log and the two key-value stores.
func Engines() []string {
	return []string{
		"RedoOpt-PTM", "RedoTimed-PTM", "Redo-PTM",
		"CX-PTM", "CX-PUC", "OneFile", "RomulusLR", "PSim-CoW", "PMDK",
		"ONLL", "redodb", "rockssim",
	}
}

// Runner abstracts "insert key i, then verify after recovery" over the PTMs
// (via a list set) and the two KV stores. Fresh constructs or recovers the
// engine over a pool; a new Runner must be used for every recovery so no
// volatile state leaks across a simulated crash.
type Runner struct {
	Fresh  func(pool *pmem.Pool) // construct engine over pool
	Insert func(i int)           // one durable insert transaction
	Verify func(completed, n int) error
}

// NewRunner builds the deterministic workload driver for one engine.
func NewRunner(name string) (*Runner, error) {
	switch name {
	case "redodb":
		var s *redodb.Session
		return &Runner{
			Fresh: func(p *pmem.Pool) {
				s = redodb.Open(p, redodb.Options{Threads: 1}).Session(0)
			},
			Insert: func(i int) {
				s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte{byte(i)})
			},
			Verify: func(completed, n int) error {
				for i := 0; i < completed; i++ {
					v, ok := s.Get([]byte(fmt.Sprintf("k%03d", i)))
					if !ok || v[0] != byte(i) {
						return fmt.Errorf("completed put %d lost", i)
					}
				}
				return nil
			},
		}, nil
	case "ONLL":
		var o *onll.ONLL
		set := seqds.ListSet{RootSlot: 0}
		ops := map[uint16]onll.OpFunc{
			1: func(m ptm.Mem, args []uint64) uint64 {
				if set.Add(m, args[0]) {
					return 1
				}
				return 0
			},
		}
		return &Runner{
			Fresh: func(p *pmem.Pool) {
				o = onll.New(p, onll.Config{
					Threads: 1,
					Ops:     ops,
					Init: func(m ptm.Mem, args []uint64) uint64 {
						set.Init(m)
						return 0
					},
				})
			},
			Insert: func(i int) { o.Update(0, 1, uint64(i)+1) },
			Verify: func(completed, n int) error {
				keys := seqds.ReadSlice(o, 0, set.Keys)
				return verifyPrefix(keys, completed, n)
			},
		}, nil
	case "rockssim":
		var db *rockssim.DB
		return &Runner{
			Fresh: func(p *pmem.Pool) { db = rockssim.Open(p, rockssim.Options{}) },
			Insert: func(i int) {
				db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte{byte(i)})
			},
			Verify: func(completed, n int) error {
				for i := 0; i < completed; i++ {
					v, ok := db.Get([]byte(fmt.Sprintf("k%03d", i)))
					if !ok || v[0] != byte(i) {
						return fmt.Errorf("completed put %d lost", i)
					}
				}
				return nil
			},
		}, nil
	default:
		eng, err := bench.EngineByName(name)
		if err != nil {
			return nil, err
		}
		var p ptm.PTM
		set := seqds.ListSet{RootSlot: 0}
		return &Runner{
			Fresh: func(pool *pmem.Pool) {
				p = eng.NewOnPool(1, pool)
				p.Update(0, func(m ptm.Mem) uint64 {
					if m.Load(ptm.RootAddr(0)) == 0 {
						set.Init(m)
					}
					return 0
				})
			},
			Insert: func(i int) {
				p.Update(0, func(m ptm.Mem) uint64 {
					set.Add(m, uint64(i)+1)
					return 0
				})
			},
			Verify: func(completed, n int) error {
				keys := seqds.ReadSlice(p, 0, set.Keys)
				return verifyPrefix(keys, completed, n)
			},
		}, nil
	}
}

// verifyPrefix asserts keys is 1..k for some completed <= k <= n.
func verifyPrefix(keys []uint64, completed, n int) error {
	if len(keys) < completed || len(keys) > n {
		return fmt.Errorf("recovered %d keys, completed %d of %d", len(keys), completed, n)
	}
	for i, k := range keys {
		if k != uint64(i)+1 {
			return fmt.Errorf("recovered state not a prefix at %d", i)
		}
	}
	return nil
}

// PoolFor allocates a strict-mode pool sized for one engine, mirroring the
// factories' replica counts for a single-thread instance.
func PoolFor(name string) *pmem.Pool {
	regions := 2
	switch name {
	case "rockssim":
		regions = 3
	case "ONLL":
		regions = 1
	}
	return pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: regions})
}

// StaleRangesFor resolves the engine's declaration of which spans committed
// state does not reach — the corruption sweep's bit-flip targets.
func StaleRangesFor(name string) (func(*pmem.Pool) []pmem.Range, error) {
	switch name {
	case "RedoOpt-PTM", "RedoTimed-PTM", "Redo-PTM":
		return redo.StaleRanges, nil
	case "CX-PTM", "CX-PUC":
		return cx.StaleRanges, nil
	case "OneFile":
		return onefile.StaleRanges, nil
	case "RomulusLR":
		return romulus.StaleRanges, nil
	case "PSim-CoW":
		return psim.StaleRanges, nil
	case "PMDK":
		return pmdk.StaleRanges, nil
	case "ONLL":
		return onll.StaleRanges, nil
	case "redodb":
		return redodb.StaleRanges, nil
	case "rockssim":
		return rockssim.StaleRanges, nil
	}
	return nil, fmt.Errorf("chaos: no stale-range map for engine %q", name)
}
