// Package chaos is the crash-consistency checking engine behind cmd/crashcheck:
// systematic single-crash sweeps, nested-crash (crash-during-recovery) sweeps
// in the model of Ben-David et al., and a corruption sweep that flips bits in
// the spans each engine declares unreachable from committed state.
//
// Every engine is driven through the same deterministic workload — insert
// keys 0..n-1, one durable transaction each — so a checker can count the
// completed transactions at the moment of a simulated power failure and then
// assert, after recovery, that the surviving state is exactly a prefix of
// the workload containing at least every completed insert.
package chaos

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core/cx"
	"repro/internal/core/redo"
	"repro/internal/onefile"
	"repro/internal/onll"
	"repro/internal/pmdk"
	"repro/internal/pmem"
	"repro/internal/psim"
	"repro/internal/ptm"
	"repro/internal/redodb"
	"repro/internal/rockssim"
	"repro/internal/romulus"
	"repro/internal/seqds"
	"repro/internal/shardeddb"
)

// Engines lists every sweep target: the nine PTM/PUC constructions, the
// ONLL one-line-log, the two key-value stores, and the sharded RedoDB
// front-end at each acceptance shard count (its only multi-pool engine —
// the shardeddb runners sweep the cross-shard batch coordinator's crash
// points).
func Engines() []string {
	return []string{
		"RedoOpt-PTM", "RedoTimed-PTM", "Redo-PTM",
		"CX-PTM", "CX-PUC", "OneFile", "RomulusLR", "PSim-CoW", "PMDK",
		"ONLL", "redodb", "redodb-bulkval", "redodb-legacyalloc", "rockssim",
		"shardeddb-1", "shardeddb-2", "shardeddb-8",
		"redodb-buffered-d2", "redodb-buffered-d8",
		"shardeddb-buffered-1", "shardeddb-buffered-8",
	}
}

// bulkVal renders the redodb-bulkval workload's value for key i: a
// deterministic pattern whose length varies from 1 byte to a few cache
// lines, so the sweep hits aligned and unaligned bulk records, partial
// head/tail lines and whole non-temporal lines.
func bulkVal(i int) []byte {
	n := 1 + (i*37)%240
	v := make([]byte, n)
	for j := range v {
		v[j] = byte(i + j*13)
	}
	return v
}

// shardsOf reports the shard count of a "shardeddb-K" engine name, or 0.
func shardsOf(name string) int {
	var k int
	if _, err := fmt.Sscanf(name, "shardeddb-%d", &k); err == nil && k > 0 {
		return k
	}
	return 0
}

// bufferedDepthOf reports the group-commit batch depth of a
// "redodb-buffered-dN" engine name, or 0.
func bufferedDepthOf(name string) int {
	var d int
	if _, err := fmt.Sscanf(name, "redodb-buffered-d%d", &d); err == nil && d > 0 {
		return d
	}
	return 0
}

// bufferedShardsOf reports the shard count of a "shardeddb-buffered-K"
// engine name, or 0.
func bufferedShardsOf(name string) int {
	var k int
	if _, err := fmt.Sscanf(name, "shardeddb-buffered-%d", &k); err == nil && k > 0 {
		return k
	}
	return 0
}

// bufferedSyncDepth is the Sync cadence of the buffered sharded workload.
const bufferedSyncDepth = 4

// Runner abstracts "insert key i, then verify after recovery" over the PTMs
// (via a list set) and the KV stores. Fresh constructs or recovers the
// engine over a pool group (single-pool engines use pool 0); a new Runner
// must be used for every recovery so no volatile state leaks across a
// simulated crash.
type Runner struct {
	Fresh  func(g *pmem.Group) // construct engine over the group
	Insert func(i int)         // one durable insert transaction
	Verify func(completed, n int) error
}

// NewRunner builds the deterministic workload driver for one engine.
func NewRunner(name string) (*Runner, error) {
	if depth := bufferedDepthOf(name); depth > 0 {
		// Buffered RedoDB under group commit: inserts commit into the
		// in-flight epoch and the runner seals (Persist) every depth-th
		// insert, so the sweep's crash points land before, inside and after
		// every epoch boundary. The durability contract is weaker than the
		// synchronous engines' — a crash may lose the un-synced commit-order
		// SUFFIX — so Verify asserts the buffered form: the surviving keys
		// are a contiguous prefix (never a gap), at least every key covered
		// by a completed Persist survived, and nothing from the future
		// appeared.
		var db *redodb.DB
		var s *redodb.Session
		key := func(i int) []byte { return []byte(fmt.Sprintf("k%03d", i)) }
		return &Runner{
			Fresh: func(g *pmem.Group) {
				db = redodb.Open(g.Pool(0), redodb.Options{Threads: 1, Buffered: true, PersistEvery: -1})
				s = db.Session(0)
			},
			Insert: func(i int) {
				s.Put(key(i), []byte{byte(i)})
				if (i+1)%depth == 0 {
					db.Persist()
				}
			},
			Verify: func(completed, n int) error {
				m := 0
				for i := 0; i < n; i++ {
					v, ok := s.Get(key(i))
					if !ok {
						// Suffix loss only: once one key is absent, every
						// later one must be too.
						for j := i + 1; j < n; j++ {
							if s.Has(key(j)) {
								return fmt.Errorf("gap loss: key %d survived but %d did not", j, i)
							}
						}
						break
					}
					if v[0] != byte(i) {
						return fmt.Errorf("key %d recovered with wrong value %x", i, v)
					}
					m++
				}
				synced := depth * (completed / depth)
				if m < synced {
					return fmt.Errorf("sealed epoch lost: %d keys survived < %d covered by a completed Persist", m, synced)
				}
				if m > completed+1 {
					return fmt.Errorf("%d keys survived but only %d inserts ran", m, completed+1)
				}
				return db.AllocReconcile()
			},
		}, nil
	}
	if shards := bufferedShardsOf(name); shards > 0 {
		// Buffered sharded front-end: the same cross-shard batch workload as
		// "shardeddb-K", with a Sync barrier every bufferedSyncDepth batches.
		// Batches above the last completed Sync may individually survive or
		// vanish (a-keys and b-keys scatter independently, so the GLOBAL
		// insert order is not a single shard's epoch order), but every batch
		// must recover all-or-nothing and everything below the barrier must
		// survive.
		var sdb *shardeddb.DB
		var s *shardeddb.Session
		key := func(prefix byte, i int) []byte {
			return []byte(fmt.Sprintf("%c%03d", prefix, i))
		}
		return &Runner{
			Fresh: func(g *pmem.Group) {
				sdb = shardeddb.Open(g, shardeddb.Options{Threads: 1, Buffered: true, PersistEvery: -1})
				s = sdb.Session(0)
			},
			Insert: func(i int) {
				b := &shardeddb.WriteBatch{}
				b.Put(key('a', i), []byte{byte(i)})
				b.Put(key('b', i), []byte{byte(i) ^ 0xff})
				s.Write(b)
				if (i+1)%bufferedSyncDepth == 0 {
					s.Sync()
				}
			},
			Verify: func(completed, n int) error {
				synced := bufferedSyncDepth * (completed / bufferedSyncDepth)
				applied := 0
				for i := 0; i < n; i++ {
					va, oka := s.Get(key('a', i))
					vb, okb := s.Get(key('b', i))
					if oka != okb {
						return fmt.Errorf("batch %d recovered torn (a=%v b=%v)", i, oka, okb)
					}
					if !oka {
						if i < synced {
							return fmt.Errorf("batch %d lost below the Sync barrier at %d", i, synced)
						}
						continue
					}
					if va[0] != byte(i) || vb[0] != byte(i)^0xff {
						return fmt.Errorf("batch %d recovered with wrong values %x/%x", i, va, vb)
					}
					applied++
				}
				if applied > completed+1 {
					return fmt.Errorf("%d batches survived but only %d writes ran", applied, completed+1)
				}
				return sdb.AllocReconcile()
			},
		}, nil
	}
	if shards := shardsOf(name); shards > 0 {
		// The shardeddb workload inserts CROSS-SHARD batches: every insert
		// writes two keys whose prefixes scatter to different shards, so a
		// crash point inside the coordinator protocol (publish intent,
		// per-shard applies, complete) is exercised at every sweep step.
		// Verify asserts the batches survived all-or-nothing in order.
		var sdb *shardeddb.DB
		var s *shardeddb.Session
		key := func(prefix byte, i int) []byte {
			return []byte(fmt.Sprintf("%c%03d", prefix, i))
		}
		return &Runner{
			Fresh: func(g *pmem.Group) {
				sdb = shardeddb.Open(g, shardeddb.Options{Threads: 1})
				s = sdb.Session(0)
			},
			Insert: func(i int) {
				b := &shardeddb.WriteBatch{}
				b.Put(key('a', i), []byte{byte(i)})
				b.Put(key('b', i), []byte{byte(i) ^ 0xff})
				s.Write(b)
			},
			Verify: func(completed, n int) error {
				applied := 0
				for i := 0; i < n; i++ {
					va, oka := s.Get(key('a', i))
					vb, okb := s.Get(key('b', i))
					if oka != okb {
						return fmt.Errorf("batch %d recovered torn (a=%v b=%v)", i, oka, okb)
					}
					if !oka {
						// Inserts are sequential: once one batch is
						// absent, every later one must be too.
						for j := i + 1; j < n; j++ {
							if _, ok := s.Get(key('a', j)); ok {
								return fmt.Errorf("batch %d survived but %d did not", j, i)
							}
							if _, ok := s.Get(key('b', j)); ok {
								return fmt.Errorf("batch %d survived torn after gap at %d", j, i)
							}
						}
						break
					}
					if va[0] != byte(i) || vb[0] != byte(i)^0xff {
						return fmt.Errorf("batch %d recovered with wrong values %x/%x", i, va, vb)
					}
					applied++
				}
				if applied < completed {
					return fmt.Errorf("completed batch lost: %d applied < %d completed", applied, completed)
				}
				return sdb.AllocReconcile()
			},
		}, nil
	}
	switch name {
	case "redodb-bulkval":
		// Same store as "redodb" but with multi-line variable-length
		// values: every insert is an aggregated bulk log record, so the
		// sweeps exercise bulk replay, range undo and the non-temporal
		// full-line path at every crash point.
		var db *redodb.DB
		var s *redodb.Session
		return &Runner{
			Fresh: func(g *pmem.Group) {
				db = redodb.Open(g.Pool(0), redodb.Options{Threads: 1})
				s = db.Session(0)
			},
			Insert: func(i int) {
				s.Put([]byte(fmt.Sprintf("k%03d", i)), bulkVal(i))
			},
			Verify: func(completed, n int) error {
				for i := 0; i < completed; i++ {
					v, ok := s.Get([]byte(fmt.Sprintf("k%03d", i)))
					if !ok {
						return fmt.Errorf("completed put %d lost", i)
					}
					want := bulkVal(i)
					if len(v) != len(want) {
						return fmt.Errorf("put %d recovered %d bytes, want %d", i, len(v), len(want))
					}
					for j := range v {
						if v[j] != want[j] {
							return fmt.Errorf("put %d corrupt at byte %d", i, j)
						}
					}
				}
				return db.AllocReconcile()
			},
		}, nil
	case "redodb", "redodb-legacyalloc":
		// The workload churns a scratch key alongside each insert so the
		// sweep crashes inside Alloc AND Free paths; Verify then audits the
		// allocator against the reachable blocks (AllocReconcile) — on the
		// arena allocator the post-crash reachability pass must have left
		// zero leaks at every injection point. The -legacyalloc variant
		// runs the identical workload on the power-of-two baseline, whose
		// reconcile is vacuous (leak-on-crash is its documented behavior).
		var db *redodb.DB
		var s *redodb.Session
		legacy := name == "redodb-legacyalloc"
		return &Runner{
			Fresh: func(g *pmem.Group) {
				db = redodb.Open(g.Pool(0), redodb.Options{Threads: 1, LegacyAlloc: legacy})
				s = db.Session(0)
			},
			Insert: func(i int) {
				s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte{byte(i)})
				s.Put([]byte("scratch"), bulkVal(i))
				s.Delete([]byte("scratch"))
			},
			Verify: func(completed, n int) error {
				for i := 0; i < completed; i++ {
					v, ok := s.Get([]byte(fmt.Sprintf("k%03d", i)))
					if !ok || v[0] != byte(i) {
						return fmt.Errorf("completed put %d lost", i)
					}
				}
				return db.AllocReconcile()
			},
		}, nil
	case "ONLL":
		var o *onll.ONLL
		set := seqds.ListSet{RootSlot: 0}
		ops := map[uint16]onll.OpFunc{
			1: func(m ptm.Mem, args []uint64) uint64 {
				if set.Add(m, args[0]) {
					return 1
				}
				return 0
			},
		}
		return &Runner{
			Fresh: func(g *pmem.Group) {
				o = onll.New(g.Pool(0), onll.Config{
					Threads: 1,
					Ops:     ops,
					Init: func(m ptm.Mem, args []uint64) uint64 {
						set.Init(m)
						return 0
					},
				})
			},
			Insert: func(i int) { o.Update(0, 1, uint64(i)+1) },
			Verify: func(completed, n int) error {
				keys := seqds.ReadSlice(o, 0, set.Keys)
				return verifyPrefix(keys, completed, n)
			},
		}, nil
	case "rockssim":
		var db *rockssim.DB
		return &Runner{
			Fresh: func(g *pmem.Group) { db = rockssim.Open(g.Pool(0), rockssim.Options{}) },
			Insert: func(i int) {
				db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte{byte(i)})
			},
			Verify: func(completed, n int) error {
				for i := 0; i < completed; i++ {
					v, ok := db.Get([]byte(fmt.Sprintf("k%03d", i)))
					if !ok || v[0] != byte(i) {
						return fmt.Errorf("completed put %d lost", i)
					}
				}
				return nil
			},
		}, nil
	default:
		eng, err := bench.EngineByName(name)
		if err != nil {
			return nil, err
		}
		var p ptm.PTM
		set := seqds.ListSet{RootSlot: 0}
		return &Runner{
			Fresh: func(g *pmem.Group) {
				p = eng.NewOnPool(1, g.Pool(0))
				p.Update(0, func(m ptm.Mem) uint64 {
					if m.Load(ptm.RootAddr(0)) == 0 {
						set.Init(m)
					}
					return 0
				})
			},
			Insert: func(i int) {
				p.Update(0, func(m ptm.Mem) uint64 {
					set.Add(m, uint64(i)+1)
					return 0
				})
			},
			Verify: func(completed, n int) error {
				keys := seqds.ReadSlice(p, 0, set.Keys)
				return verifyPrefix(keys, completed, n)
			},
		}, nil
	}
}

// verifyPrefix asserts keys is 1..k for some completed <= k <= n.
func verifyPrefix(keys []uint64, completed, n int) error {
	if len(keys) < completed || len(keys) > n {
		return fmt.Errorf("recovered %d keys, completed %d of %d", len(keys), completed, n)
	}
	for i, k := range keys {
		if k != uint64(i)+1 {
			return fmt.Errorf("recovered state not a prefix at %d", i)
		}
	}
	return nil
}

// GroupFor allocates the strict-mode pool group for one engine: a single
// pool wrapped in a group for the single-pool engines (mirroring the
// factories' replica counts for a single-thread instance), and the
// coordinator-plus-shards layout for shardeddb.
func GroupFor(name string) *pmem.Group {
	if shards := bufferedShardsOf(name); shards > 0 {
		return shardeddb.NewGroup(shardeddb.GroupConfig{
			Shards: shards, Threads: 1, Mode: pmem.Strict, Buffered: true,
		})
	}
	if shards := shardsOf(name); shards > 0 {
		return shardeddb.NewGroup(shardeddb.GroupConfig{
			Shards: shards, Threads: 1, Mode: pmem.Strict,
		})
	}
	regions := 2
	switch name {
	case "rockssim":
		regions = 3
	case "ONLL":
		regions = 1
	}
	if bufferedDepthOf(name) > 0 {
		// Buffered mode needs a third replica: one pinned by the persister,
		// one carrying curComb, one free for writers.
		regions = 3
	}
	pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: regions})
	return pmem.NewGroup(pool)
}

// onPool lifts a single-pool stale-range declaration to the group form.
func onPool(f func(*pmem.Pool) []pmem.Range) func(*pmem.Group) []pmem.GroupRange {
	return func(g *pmem.Group) []pmem.GroupRange {
		var out []pmem.GroupRange
		for _, r := range f(g.Pool(0)) {
			out = append(out, pmem.GroupRange{Pool: 0, Range: r})
		}
		return out
	}
}

// StaleRangesFor resolves the engine's declaration of which spans committed
// state does not reach — the corruption sweep's bit-flip targets.
func StaleRangesFor(name string) (func(*pmem.Group) []pmem.GroupRange, error) {
	if shardsOf(name) > 0 || bufferedShardsOf(name) > 0 {
		return shardeddb.StaleRanges, nil
	}
	if bufferedDepthOf(name) > 0 {
		return onPool(redodb.StaleRanges), nil
	}
	switch name {
	case "RedoOpt-PTM", "RedoTimed-PTM", "Redo-PTM":
		return onPool(redo.StaleRanges), nil
	case "CX-PTM", "CX-PUC":
		return onPool(cx.StaleRanges), nil
	case "OneFile":
		return onPool(onefile.StaleRanges), nil
	case "RomulusLR":
		return onPool(romulus.StaleRanges), nil
	case "PSim-CoW":
		return onPool(psim.StaleRanges), nil
	case "PMDK":
		return onPool(pmdk.StaleRanges), nil
	case "ONLL":
		return onPool(onll.StaleRanges), nil
	case "redodb", "redodb-bulkval", "redodb-legacyalloc":
		return onPool(redodb.StaleRanges), nil
	case "rockssim":
		return onPool(rockssim.StaleRanges), nil
	}
	return nil, fmt.Errorf("chaos: no stale-range map for engine %q", name)
}
