package chaos

import "testing"

// fastEngines is a cheap representative subset for smoke tests: one
// replica-based PTM, the one-line log, a KV store, and the multi-pool
// sharded front-end (whose runner crosses the batch coordinator).
var fastEngines = []string{"RedoOpt-PTM", "ONLL", "rockssim", "shardeddb-2"}

func TestSweepSmoke(t *testing.T) {
	for _, name := range fastEngines {
		for _, adv := range []bool{false, true} {
			crashes, err := Sweep(name, Options{Ops: 6, Stride: 23, Adversarial: adv})
			if err != nil {
				t.Errorf("%s adversarial=%v: %v", name, adv, err)
			}
			if crashes == 0 {
				t.Errorf("%s adversarial=%v: no crash points explored", name, adv)
			}
		}
	}
}

func TestNestedSweepSmoke(t *testing.T) {
	for _, name := range fastEngines {
		for _, adv := range []bool{false, true} {
			pairs, err := NestedSweep(name, Options{Ops: 6, Stride: 43, Stride2: 3, Adversarial: adv})
			if err != nil {
				t.Errorf("%s adversarial=%v: %v", name, adv, err)
			}
			if pairs == 0 {
				t.Errorf("%s adversarial=%v: no crash pairs explored", name, adv)
			}
		}
	}
}

func TestCorruptionSweepSmoke(t *testing.T) {
	for _, name := range fastEngines {
		flips, err := CorruptionSweep(name, Options{Ops: 6, Stride: 23, Flips: 2})
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if flips == 0 {
			t.Errorf("%s: no bit flips exercised", name)
		}
	}
}

// bufferedEngines are the relaxed-durability sweep targets: RedoDB group
// commit at two batch depths and the buffered sharded front-end at the two
// acceptance shard counts.
var bufferedEngines = []string{
	"redodb-buffered-d2", "redodb-buffered-d8",
	"shardeddb-buffered-1", "shardeddb-buffered-8",
}

// TestBufferedEpochBoundarySweep crashes the buffered engines at EVERY
// persistent-memory instruction boundary (stride 1) under both crash models.
// The workload seals an epoch every few inserts, so the sweep hits every
// point before, inside and after each epoch seal and watermark advance; the
// buffered Verify asserts recovery never panics, never loses a sealed
// epoch, and never recovers a gapped suffix.
func TestBufferedEpochBoundarySweep(t *testing.T) {
	for _, name := range bufferedEngines {
		for _, adv := range []bool{false, true} {
			crashes, err := Sweep(name, Options{Ops: 8, Stride: 1, Adversarial: adv})
			if err != nil {
				t.Errorf("%s adversarial=%v: %v", name, adv, err)
			}
			if crashes == 0 {
				t.Errorf("%s adversarial=%v: no crash points explored", name, adv)
			}
		}
	}
}

// TestBufferedNestedSweepSmoke re-crashes buffered recovery itself: the
// second crash lands while recovery re-adopts the watermark replica, the
// fixed-point companion to redodb's TestBufferedWatermarkAdvanceRecrash at
// the sweep level.
func TestBufferedNestedSweepSmoke(t *testing.T) {
	for _, name := range []string{"redodb-buffered-d2", "shardeddb-buffered-8"} {
		for _, adv := range []bool{false, true} {
			pairs, err := NestedSweep(name, Options{Ops: 6, Stride: 43, Stride2: 3, Adversarial: adv})
			if err != nil {
				t.Errorf("%s adversarial=%v: %v", name, adv, err)
			}
			if pairs == 0 {
				t.Errorf("%s adversarial=%v: no crash pairs explored", name, adv)
			}
		}
	}
}

// TestBufferedCorruptionSweepSmoke flips bits in the spans buffered recovery
// must not trust — the unsealed replicas beyond the watermark included.
func TestBufferedCorruptionSweepSmoke(t *testing.T) {
	for _, name := range []string{"redodb-buffered-d2", "shardeddb-buffered-1"} {
		flips, err := CorruptionSweep(name, Options{Ops: 6, Stride: 23, Flips: 2})
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if flips == 0 {
			t.Errorf("%s: no bit flips exercised", name)
		}
	}
}

func TestStaleRangesForEveryEngine(t *testing.T) {
	for _, name := range Engines() {
		if _, err := StaleRangesFor(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := StaleRangesFor("nope"); err == nil {
		t.Error("StaleRangesFor(nope) did not fail")
	}
}

// FuzzNestedCrashPoint feeds arbitrary (first, second) crash-point pairs to
// the nested checker: crash the workload after `first` persistent-memory
// events, crash recovery after `second` more, recover fully, verify. Any
// pair must recover consistently under both crash models.
func FuzzNestedCrashPoint(f *testing.F) {
	f.Add(int64(1), int64(1))
	f.Add(int64(7), int64(2))
	f.Add(int64(23), int64(5))
	f.Add(int64(57), int64(1))
	f.Add(int64(113), int64(9))
	f.Fuzz(func(t *testing.T, first, second int64) {
		// Bound the points so a wild input cannot make the workload
		// run for minutes; the workload outruns large values anyway.
		first %= 4096
		second %= 4096
		for _, name := range []string{"RedoOpt-PTM", "ONLL", "shardeddb-2", "redodb-buffered-d2", "shardeddb-buffered-1"} {
			for _, adv := range []bool{false, true} {
				opts := Options{Ops: 6, Adversarial: adv, Seed: first ^ second<<13 | 1}
				if err := CheckPair(name, opts, first, second); err != nil {
					t.Errorf("%s adversarial=%v pair (%d,%d): %v", name, adv, first, second, err)
				}
			}
		}
	})
}
