package load

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// RunConfig parameterizes one load cell: a workload mix driven over Conns
// pipelined connections against a running server, either open-loop at an
// offered arrival rate or closed-loop (each connection keeps its pipeline
// window full).
type RunConfig struct {
	Addr     string
	Mix      Mix
	Conns    int
	Duration time.Duration
	// Rate is the total offered load in ops/s across all connections,
	// generated open-loop: arrivals are scheduled by a Poisson process that
	// does not wait for completions, so queueing delay shows up in the
	// client-observed latency instead of silently throttling the load.
	// Zero selects closed-loop mode.
	Rate float64
	// Keys is the preloaded key-space size; ValueSize the written payload.
	Keys      int
	ValueSize int
	// Theta is the zipfian skew (default 0.99).
	Theta float64
	// Window caps in-flight logical operations per connection (default 64).
	// An open-loop cell whose server falls behind degrades to window-bound
	// once the cap is hit — visible as achieved < offered.
	Window int
	// ClientBase numbers the per-connection HELLO client ids
	// (ClientBase+1 ... ClientBase+Conns); they must be distinct across
	// concurrent kvload runs against one server.
	ClientBase uint64
	Seed       int64
}

// Result is one cell's measurement.
type Result struct {
	Workload string
	Offered  float64 // requested arrival rate (0 in closed-loop mode)
	Achieved float64 // completed ops/s
	Ops      uint64
	Errors   uint64
	// Client-observed latency: for open-loop cells, measured from the
	// scheduled arrival time (queueing included); closed-loop from send.
	ClientP50, ClientP99 time.Duration
	// Server-side service time over the cell, from the server's STATS
	// histograms (reset at cell start).
	ServerP50, ServerP99 time.Duration
	ServerOps            uint64
}

// Preload fills the key space with ValueSize-byte values through WRITEBATCH
// frames on one connection.
func Preload(addr string, keys, valueSize int) error {
	cl, err := Dial(addr, 0)
	if err != nil {
		return err
	}
	defer cl.Close()
	rng := rand.New(rand.NewSource(1))
	val := make([]byte, valueSize)
	const per = 128
	for base := 0; base < keys; base += per {
		var ops []BatchOp
		for k := base; k < keys && k < base+per; k++ {
			rng.Read(val)
			ops = append(ops, BatchOp{
				Key: KeyBytes(nil, uint64(k)),
				Val: append([]byte(nil), val...),
			})
		}
		if _, err := cl.Write(ops); err != nil {
			return fmt.Errorf("preload batch at %d: %w", base, err)
		}
	}
	return nil
}

// inflight describes one issued logical operation awaiting its responses.
type inflight struct {
	arrival time.Time // latency zero point (scheduled arrival or send time)
	frames  int       // responses to consume (2 for RMW, else 1)
	rmw     bool
}

// connWorker drives one pipelined connection: the issuing half paces
// arrivals and writes request frames, the reading half (a second goroutine)
// consumes in-order responses and records latency. The bounded channel
// between them is the pipeline window.
type connWorker struct {
	cfg    *RunConfig
	client uint64
	zipf   *Zipf
	rng    *rand.Rand

	c   net.Conn
	bw  *wireWriter
	dec *wire.Decoder

	inflight chan inflight
	lat      *obs.Histogram
	ops      atomic.Uint64
	errs     atomic.Uint64
	seq      uint64 // detectable sequence (RMW mixes)
	applied  uint64 // detectable puts acknowledged as applied (reader side)
	lastKey  []byte // last detectable request's exact bytes, for the
	lastVal  []byte // dedup retry probe (receipts digest-check reuses)
}

// wireWriter is the minimal buffered frame writer the issuing half owns
// (bufio.Writer would share no state with the reading half either, but an
// explicit byte slice makes the flush points visible).
type wireWriter struct {
	c   net.Conn
	buf []byte
}

func (w *wireWriter) append(f *wire.Frame) { w.buf = wire.AppendFrame(w.buf, f) }

func (w *wireWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.c.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

// Run executes one load cell. The server's stats are reset at cell start so
// the reported server-side percentiles cover exactly this cell.
func Run(cfg RunConfig) (Result, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.99
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 1000
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 100
	}
	res := Result{Workload: cfg.Mix.Name, Offered: cfg.Rate}

	// Control connection: reset server stats at cell start, snapshot at end.
	ctl, err := Dial(cfg.Addr, 0)
	if err != nil {
		return res, err
	}
	defer ctl.Close()
	if _, err := ctl.StatsReset(); err != nil {
		return res, fmt.Errorf("stats reset: %w", err)
	}

	zetan := Zetan(uint64(cfg.Keys), cfg.Theta)
	workers := make([]*connWorker, cfg.Conns)
	for i := range workers {
		c, err := net.Dial("tcp", cfg.Addr)
		if err != nil {
			return res, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		workers[i] = &connWorker{
			cfg:      &cfg,
			client:   cfg.ClientBase + uint64(i) + 1,
			zipf:     NewZipf(rng, uint64(cfg.Keys), cfg.Theta, zetan),
			rng:      rng,
			c:        c,
			bw:       &wireWriter{c: c},
			dec:      wire.NewDecoder(c, wire.Limits{}),
			inflight: make(chan inflight, cfg.Window),
			lat:      &obs.Histogram{},
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, cfg.Conns)
	for _, w := range workers {
		wg.Add(1)
		go func(w *connWorker) {
			defer wg.Done()
			if err := w.run(); err != nil {
				errc <- err
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for _, w := range workers {
		w.c.Close()
	}
	if err := <-errc; err != nil {
		return res, err
	}

	// Merge client-side results.
	all := &obs.Histogram{}
	for _, w := range workers {
		res.Ops += w.ops.Load()
		res.Errors += w.errs.Load()
		w.lat.MergeInto(all)
	}
	res.Achieved = float64(res.Ops) / cfg.Duration.Seconds()
	res.ClientP50 = all.Quantile(0.50)
	res.ClientP99 = all.Quantile(0.99)

	// Server-side percentiles for the cell.
	raw, err := ctl.Stats()
	if err != nil {
		return res, fmt.Errorf("stats: %w", err)
	}
	var snap struct {
		Ops uint64 `json:"ops"`
		All struct {
			P50Ns int64 `json:"p50_ns"`
			P99Ns int64 `json:"p99_ns"`
		} `json:"all"`
		Errors uint64 `json:"errors"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		return res, fmt.Errorf("stats json: %w", err)
	}
	res.ServerOps = snap.Ops
	res.ServerP50 = time.Duration(snap.All.P50Ns)
	res.ServerP99 = time.Duration(snap.All.P99Ns)
	res.Errors += snap.Errors
	return res, nil
}

// run is the issuing half of one connection; it spawns the reading half.
func (w *connWorker) run() error {
	cfg := w.cfg
	// HELLO before traffic so detectable writes carry a client id.
	hello := wire.Frame{Op: wire.OpHello, ReqID: 1, Aux: w.client}
	w.bw.append(&hello)
	if err := w.bw.flush(); err != nil {
		return err
	}
	var resp wire.Frame
	if err := w.dec.ReadFrame(&resp); err != nil {
		return fmt.Errorf("hello: %w", err)
	}

	readErr := make(chan error, 1)
	go func() { readErr <- w.readLoop() }()

	var (
		start    = time.Now()
		deadline = start.Add(cfg.Duration)
		// Per-connection Poisson arrivals at rate/conns.
		openLoop = cfg.Rate > 0
		perConn  = cfg.Rate / float64(cfg.Conns)
		next     = start
		key      = make([]byte, 0, 24)
		val      = make([]byte, cfg.ValueSize)
		sendErr  error
	)
	for sendErr == nil {
		now := time.Now()
		if now.After(deadline) {
			break
		}
		arrival := now
		if openLoop {
			if next.After(now) {
				// Nothing due: flush so the server answers what we owe, then
				// sleep to the next arrival.
				if sendErr = w.bw.flush(); sendErr != nil {
					break
				}
				time.Sleep(next.Sub(now))
			}
			arrival = next
			next = next.Add(time.Duration(w.rng.ExpFloat64() / perConn * float64(time.Second)))
			if arrival.After(deadline) {
				break
			}
		}
		op := w.buildOp(key, val)
		op.arrival = arrival
		select {
		case w.inflight <- op:
		default:
			// Window full: flush what we owe the server, then block until
			// the reader drains a slot.
			if sendErr = w.bw.flush(); sendErr != nil {
				break
			}
			w.inflight <- op
		}
		if !openLoop || len(w.bw.buf) >= 1<<14 {
			sendErr = w.bw.flush()
		}
	}
	if sendErr == nil {
		sendErr = w.bw.flush()
	}
	close(w.inflight)
	if err := <-readErr; err != nil {
		return err
	}
	if sendErr != nil {
		return sendErr
	}
	return w.verifyExactlyOnce()
}

// buildOp appends one logical operation's request frames and returns its
// in-flight record. keyBuf/valBuf are reused scratch — AppendFrame copies.
func (w *connWorker) buildOp(keyBuf, valBuf []byte) inflight {
	k := w.zipf.Next()
	keyBuf = KeyBytes(keyBuf[:0], k)
	read := w.rng.Intn(100) < w.cfg.Mix.ReadPct
	switch {
	case read:
		w.bw.append(&wire.Frame{Op: wire.OpGet, ReqID: 2, Key: keyBuf})
		return inflight{frames: 1}
	case w.cfg.Mix.RMW:
		// Read-modify-write: GET then detectable PUT pipelined behind it.
		w.rng.Read(valBuf)
		w.seq++
		w.bw.append(&wire.Frame{Op: wire.OpGet, ReqID: 2, Key: keyBuf})
		w.bw.append(&wire.Frame{
			Op: wire.OpPut, Flags: wire.FlagDetectable,
			ReqID: w.seq, Key: keyBuf, Val: valBuf,
		})
		// The dedup retry probe must re-send these exact bytes: the receipt
		// table digest-checks a reused sequence number.
		w.lastKey = append(w.lastKey[:0], keyBuf...)
		w.lastVal = append(w.lastVal[:0], valBuf...)
		return inflight{frames: 2, rmw: true}
	default:
		w.rng.Read(valBuf)
		w.bw.append(&wire.Frame{Op: wire.OpPut, ReqID: 2, Key: keyBuf, Val: valBuf})
		return inflight{frames: 1}
	}
}

// readLoop is the reading half: consume each in-flight record's responses
// in order, record its latency at the last one, and classify statuses. On a
// read failure it keeps draining the window so the issuing half never
// blocks against a dead reader.
func (w *connWorker) readLoop() error {
	var resp wire.Frame
	var failed error
	for op := range w.inflight {
		if failed != nil {
			continue
		}
		for i := 0; i < op.frames; i++ {
			if err := w.dec.ReadFrame(&resp); err != nil {
				failed = fmt.Errorf("read response: %w", err)
				break
			}
			switch resp.Status() {
			case wire.StatusOK:
				if op.rmw && resp.Op == wire.OpPut|wire.RespBit {
					w.applied++
				}
			case wire.StatusNotFound:
				// A GET miss is legal; NotFound on anything else is not.
				if resp.Op != wire.OpGet|wire.RespBit {
					w.errs.Add(1)
				}
			default:
				// StatusDup on a first send, or a server-side error.
				w.errs.Add(1)
			}
		}
		if failed == nil {
			w.lat.Observe(time.Since(op.arrival))
			w.ops.Add(1)
		}
	}
	return failed
}

// verifyExactlyOnce closes the loop on the detectable traffic this
// connection issued: the server's receipt table must have seen exactly our
// seq range with every request applied once, and re-sending the last
// request must dedup, not re-apply. Violations count as cell errors — the
// "zero errors" acceptance covers exactly-once.
func (w *connWorker) verifyExactlyOnce() error {
	if w.seq == 0 {
		return nil
	}
	// The connection is already HELLOed and quiescent; drive it
	// synchronously from here, reusing the pipeline's decoder so no
	// buffered byte is stranded.
	cl := &Client{c: w.c, bw: bufio.NewWriterSize(w.c, 1<<12), dec: w.dec, client: w.client}
	receipts, maxSeq, _, err := cl.DetectStats()
	if err != nil {
		return fmt.Errorf("detect stats: %w", err)
	}
	if maxSeq != w.seq || receipts != w.applied {
		w.errs.Add(1)
	}
	applied, _, err := cl.PutDetectable(w.seq, w.lastKey, w.lastVal)
	if err != nil {
		return fmt.Errorf("retry probe: %w", err)
	}
	if applied {
		// The retry re-applied: a duplicated effect, the exactly-once bug.
		w.errs.Add(1)
	}
	return nil
}
