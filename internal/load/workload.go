package load

import (
	"fmt"
	"math"
	"math/rand"
)

// YCSB-style workload mixes. Proportions are per mille of the issued
// operations; the remainder after reads is writes of the mix's write shape.
//
//	A  update-heavy   50% read / 50% update
//	B  read-heavy     95% read /  5% update
//	C  read-only     100% read
//	F  read-modify-write  50% read / 50% RMW
//
// RMW is modeled as a GET immediately followed by a detectable PUT pipelined
// behind it on the same connection (the response pair is one logical
// operation; its latency is recorded at the PUT response). Routing F's
// writes through the detectable path exercises remote exactly-once under
// load — each connection declares a client id at HELLO and numbers its RMW
// sequence monotonically, so the cell can verify receipts afterwards.
type Mix struct {
	Name string
	// ReadPct is the read share in percent; the rest are writes.
	ReadPct int
	// RMW routes writes through GET + detectable PUT instead of plain PUT.
	RMW bool
}

// Mixes is the workload table behind cmd/kvload's -workloads flag.
var Mixes = map[string]Mix{
	"ycsb-a": {Name: "ycsb-a", ReadPct: 50},
	"ycsb-b": {Name: "ycsb-b", ReadPct: 95},
	"ycsb-c": {Name: "ycsb-c", ReadPct: 100},
	"ycsb-f": {Name: "ycsb-f", ReadPct: 50, RMW: true},
}

// MixByName resolves a workload name.
func MixByName(name string) (Mix, error) {
	m, ok := Mixes[name]
	if !ok {
		return Mix{}, fmt.Errorf("load: unknown workload %q (have ycsb-a, ycsb-b, ycsb-c, ycsb-f)", name)
	}
	return m, nil
}

// Zipf draws ranks with the YCSB zipfian distribution (Gray et al.'s
// rejection-free inversion) and scrambles them with an FNV-1a hash so the
// hot ranks scatter across the key space instead of clustering at its
// front — the standard "scrambled zipfian" hot-key model. The zeta
// normalization constant is O(items) to compute, so the harness computes it
// once (Zetan) and shares it across every connection's generator.
type Zipf struct {
	items             uint64
	theta             float64
	alpha, zetan, eta float64
	halfPowTheta      float64
	rng               *rand.Rand
}

// Zetan computes the zipfian normalization constant sum_{i=1..n} 1/i^theta.
func Zetan(n uint64, theta float64) float64 {
	var z float64
	for i := uint64(1); i <= n; i++ {
		z += 1 / math.Pow(float64(i), theta)
	}
	return z
}

// NewZipf builds a generator over [0, items) with skew theta (YCSB default
// 0.99) and a precomputed Zetan(items, theta).
func NewZipf(rng *rand.Rand, items uint64, theta, zetan float64) *Zipf {
	zeta2 := 1 + 1/math.Pow(2, theta)
	return &Zipf{
		items:        items,
		theta:        theta,
		alpha:        1 / (1 - theta),
		zetan:        zetan,
		eta:          (1 - math.Pow(2/float64(items), 1-theta)) / (1 - zeta2/zetan),
		halfPowTheta: 1 + math.Pow(0.5, theta),
		rng:          rng,
	}
}

// Next draws a scrambled rank in [0, items).
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < z.halfPowTheta:
		rank = 1
	default:
		rank = uint64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
		if rank >= z.items {
			rank = z.items - 1
		}
	}
	return fnv64(rank) % z.items
}

// fnv64 is FNV-1a over the rank's little-endian bytes.
func fnv64(x uint64) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= 1099511628211
		x >>= 8
	}
	return h
}

// KeyBytes renders key index k in the fixed "user%012d" form the preload
// phase stores, appended to dst.
func KeyBytes(dst []byte, k uint64) []byte {
	return fmt.Appendf(dst, "user%012d", k)
}
