// Package load is the client side of the wire protocol: a synchronous
// Client for tests and tooling, a windowed pipelined connection for load
// generation, and the YCSB-style workload harness behind cmd/kvload.
package load

import (
	"bufio"
	"errors"
	"fmt"
	"net"

	"repro/internal/wire"
)

// Client is a synchronous wire-protocol client: one outstanding request per
// call, responses matched by request id. Not safe for concurrent use. All
// returned byte slices are copies — safe to retain.
type Client struct {
	c      net.Conn
	bw     *bufio.Writer
	dec    *wire.Decoder
	client uint64
	nextID uint64
	// Mode is the server's HELLO mode bits (set by Hello).
	Mode uint64
}

// Dial connects to addr and performs the HELLO handshake declaring clientID
// (zero for an anonymous connection that never uses detectable operations).
func Dial(addr string, clientID uint64) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	cl := NewClient(c, clientID)
	if err := cl.Hello(); err != nil {
		c.Close()
		return nil, err
	}
	return cl, nil
}

// NewClient wraps an established connection without handshaking; call Hello
// before any detectable operation.
func NewClient(c net.Conn, clientID uint64) *Client {
	return &Client{
		c:      c,
		bw:     bufio.NewWriterSize(c, 1<<16),
		dec:    wire.NewDecoder(c, wire.Limits{}),
		client: clientID,
	}
}

// Close closes the connection.
func (cl *Client) Close() error { return cl.c.Close() }

// ClientID returns the identity declared at dial time.
func (cl *Client) ClientID() uint64 { return cl.client }

// roundTrip sends req and reads its response, enforcing opcode and request
// id matching (a synchronous client never has responses in flight).
func (cl *Client) roundTrip(req *wire.Frame) (wire.Frame, error) {
	if req.ReqID == 0 {
		cl.nextID++
		req.ReqID = cl.nextID
	}
	if err := wire.WriteFrame(cl.bw, req); err != nil {
		return wire.Frame{}, err
	}
	if err := cl.bw.Flush(); err != nil {
		return wire.Frame{}, err
	}
	var resp wire.Frame
	if err := cl.dec.ReadFrame(&resp); err != nil {
		return wire.Frame{}, err
	}
	if resp.Op != req.Op|wire.RespBit || resp.ReqID != req.ReqID {
		return wire.Frame{}, fmt.Errorf("load: response mismatch: got %v req %d, want %v req %d",
			resp.Op, resp.ReqID, req.Op|wire.RespBit, req.ReqID)
	}
	if resp.Status() == wire.StatusErr {
		return wire.Frame{}, fmt.Errorf("load: server error: %s", resp.Val)
	}
	// Detach payloads from the decoder scratch.
	resp.Key = append([]byte(nil), resp.Key...)
	resp.Val = append([]byte(nil), resp.Val...)
	return resp, nil
}

// Hello declares the client identity and records the server mode bits.
func (cl *Client) Hello() error {
	resp, err := cl.roundTrip(&wire.Frame{Op: wire.OpHello, Aux: cl.client})
	if err != nil {
		return err
	}
	cl.Mode = resp.Aux
	return nil
}

// Buffered reports whether the server declared relaxed durability.
func (cl *Client) Buffered() bool { return cl.Mode&wire.ModeBuffered != 0 }

// Get fetches key, reporting presence.
func (cl *Client) Get(key []byte) ([]byte, bool, error) {
	resp, err := cl.roundTrip(&wire.Frame{Op: wire.OpGet, Key: key})
	if err != nil {
		return nil, false, err
	}
	if resp.Status() == wire.StatusNotFound {
		return nil, false, nil
	}
	return resp.Val, true, nil
}

// Put stores (key, value), returning the commit epoch from the response.
func (cl *Client) Put(key, val []byte) (uint64, error) {
	resp, err := cl.roundTrip(&wire.Frame{Op: wire.OpPut, Key: key, Val: val})
	if err != nil {
		return 0, err
	}
	return resp.Aux, nil
}

// PutDurable stores (key, value) and waits for durability on a buffered
// server.
func (cl *Client) PutDurable(key, val []byte) (uint64, error) {
	resp, err := cl.roundTrip(&wire.Frame{Op: wire.OpPut, Flags: wire.FlagDurable, Key: key, Val: val})
	if err != nil {
		return 0, err
	}
	return resp.Aux, nil
}

// PutDetectable stores (key, value) exactly once for seq, reporting whether
// this call applied it (false: deduplicated by the server-side receipt).
func (cl *Client) PutDetectable(seq uint64, key, val []byte) (applied bool, epoch uint64, err error) {
	resp, err := cl.roundTrip(&wire.Frame{
		Op: wire.OpPut, Flags: wire.FlagDetectable, ReqID: seq, Key: key, Val: val,
	})
	if err != nil {
		return false, 0, err
	}
	return resp.Status() != wire.StatusDup, resp.Aux, nil
}

// Delete removes key, reporting whether it was present.
func (cl *Client) Delete(key []byte) (bool, error) {
	resp, err := cl.roundTrip(&wire.Frame{Op: wire.OpDelete, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Status() != wire.StatusNotFound, nil
}

// BatchOp is one operation of a remote WRITEBATCH.
type BatchOp struct {
	Key, Val []byte
	Delete   bool
}

// appendBatch encodes ops as a WRITEBATCH payload.
func appendBatch(dst []byte, ops []BatchOp) []byte {
	for _, op := range ops {
		if op.Delete {
			dst = wire.AppendBatchDelete(dst, op.Key)
		} else {
			dst = wire.AppendBatchPut(dst, op.Key, op.Val)
		}
	}
	return dst
}

// Write applies ops atomically, returning the covering commit epoch.
func (cl *Client) Write(ops []BatchOp) (uint64, error) {
	resp, err := cl.roundTrip(&wire.Frame{Op: wire.OpWrite, Val: appendBatch(nil, ops)})
	if err != nil {
		return 0, err
	}
	return resp.Aux, nil
}

// WriteDetectable applies ops atomically exactly once for seq.
func (cl *Client) WriteDetectable(seq uint64, ops []BatchOp) (applied bool, epoch uint64, err error) {
	resp, err := cl.roundTrip(&wire.Frame{
		Op: wire.OpWrite, Flags: wire.FlagDetectable, ReqID: seq, Val: appendBatch(nil, ops),
	})
	if err != nil {
		return false, 0, err
	}
	return resp.Status() != wire.StatusDup, resp.Aux, nil
}

// Pair is one SCAN result.
type Pair struct{ Key, Val []byte }

// Scan returns up to max pairs with key >= start from a batch-consistent
// snapshot (max <= 0: all).
func (cl *Client) Scan(start []byte, max int) ([]Pair, error) {
	var aux uint64
	if max > 0 {
		aux = uint64(max)
	}
	resp, err := cl.roundTrip(&wire.Frame{Op: wire.OpScan, Key: start, Aux: aux})
	if err != nil {
		return nil, err
	}
	var pairs []Pair
	err = wire.DecodeScan(resp.Val, wire.DefaultLimits, func(key, val []byte) {
		pairs = append(pairs, Pair{Key: append([]byte(nil), key...), Val: append([]byte(nil), val...)})
	})
	if err != nil {
		return nil, err
	}
	if uint64(len(pairs)) != resp.Aux {
		return nil, errors.New("load: scan pair count disagrees with response aux")
	}
	return pairs, nil
}

// Sync is the remote durability barrier: it returns once the server's
// durable watermark covers every write this connection has completed, and
// reports that watermark.
func (cl *Client) Sync() (uint64, error) {
	resp, err := cl.roundTrip(&wire.Frame{Op: wire.OpSync})
	if err != nil {
		return 0, err
	}
	return resp.Aux, nil
}

// WasApplied probes whether (clientID, seq) committed — the recovery probe
// before a retry.
func (cl *Client) WasApplied(seq uint64) (bool, error) {
	resp, err := cl.roundTrip(&wire.Frame{Op: wire.OpWasApplied, ReqID: seq})
	if err != nil {
		return false, err
	}
	return resp.Status() != wire.StatusNotFound, nil
}

// Ack advances the client's acked watermark, letting the server prune dedup
// receipts up to and including seq upto.
func (cl *Client) Ack(upto uint64) error {
	_, err := cl.roundTrip(&wire.Frame{Op: wire.OpAck, Aux: upto})
	return err
}

// DetectStats fetches the server-side exactly-once witness for this client.
func (cl *Client) DetectStats() (receipts, maxSeq, acked uint64, err error) {
	resp, err := cl.roundTrip(&wire.Frame{Op: wire.OpDetectStats})
	if err != nil {
		return 0, 0, 0, err
	}
	return wire.DecodeDetectStats(resp.Val)
}

// Stats fetches the server's stats JSON.
func (cl *Client) Stats() ([]byte, error) {
	resp, err := cl.roundTrip(&wire.Frame{Op: wire.OpStats})
	if err != nil {
		return nil, err
	}
	return resp.Val, nil
}

// StatsReset fetches the server's stats JSON and resets the counters and
// histograms behind it — the load harness's cell boundary, so each cell's
// server-side percentiles cover exactly that cell.
func (cl *Client) StatsReset() ([]byte, error) {
	resp, err := cl.roundTrip(&wire.Frame{Op: wire.OpStats, Aux: wire.StatsReset})
	if err != nil {
		return nil, err
	}
	return resp.Val, nil
}
