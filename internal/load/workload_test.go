package load

import (
	"math/rand"
	"testing"
)

// TestZipfShape pins the scrambled-zipfian generator: every draw is in
// range, the distribution is actually skewed (the hottest key carries far
// more than uniform mass), and the scramble spreads the hot ranks across
// the key space instead of clustering them at its front.
func TestZipfShape(t *testing.T) {
	const items = 10_000
	const draws = 200_000
	z := NewZipf(rand.New(rand.NewSource(1)), items, 0.99, Zetan(items, 0.99))
	counts := make(map[uint64]int)
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k >= items {
			t.Fatalf("draw %d out of range", k)
		}
		counts[k]++
	}
	var hotKey uint64
	hot := 0
	for k, c := range counts {
		if c > hot {
			hotKey, hot = k, c
		}
	}
	// YCSB zipfian theta=0.99 over 10k items gives the hottest key ~9-10% of
	// the mass; uniform would be 0.01%. Anything above 2% proves the skew.
	if float64(hot)/draws < 0.02 {
		t.Fatalf("hottest key holds %.2f%% of draws — not zipfian", 100*float64(hot)/draws)
	}
	// The FNV scramble must decorrelate hotness from rank order: with the
	// identity mapping the hottest key is 0.
	if hotKey == 0 {
		t.Fatal("hottest key is rank 0 — the scramble is not applied")
	}
	// The tail must still be broad: a zipfian with theta < 1 touches a large
	// fraction of the key space at this draw count.
	if len(counts) < items/4 {
		t.Fatalf("only %d/%d keys touched — distribution collapsed", len(counts), items)
	}
}

// TestZipfDeterminism pins that two generators with one seed agree — the
// harness relies on per-connection seeding for reproducible cells.
func TestZipfDeterminism(t *testing.T) {
	zetan := Zetan(1000, 0.99)
	a := NewZipf(rand.New(rand.NewSource(7)), 1000, 0.99, zetan)
	b := NewZipf(rand.New(rand.NewSource(7)), 1000, 0.99, zetan)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

func TestKeyBytes(t *testing.T) {
	if got := string(KeyBytes(nil, 42)); got != "user000000000042" {
		t.Fatalf("KeyBytes(42) = %q", got)
	}
	if got := string(KeyBytes([]byte("p:"), 7)); got != "p:user000000000007" {
		t.Fatalf("KeyBytes with prefix = %q", got)
	}
}

func TestMixTable(t *testing.T) {
	for name, want := range map[string]struct {
		readPct int
		rmw     bool
	}{"ycsb-a": {50, false}, "ycsb-b": {95, false}, "ycsb-c": {100, false}, "ycsb-f": {50, true}} {
		m, err := MixByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.ReadPct != want.readPct || m.RMW != want.rmw {
			t.Fatalf("%s = %+v", name, m)
		}
	}
	if _, err := MixByName("ycsb-d"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}
