package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// CommitPoint checks the record-publication idiom every log-structured
// engine in this repository uses (redodb's aggregated bulk records,
// shardeddb's batch intents, the WAL/header publications): a multi-word
// payload is written, flushed and fenced, and only then is a single commit
// word (a status / commit flag, or a header slot) stored to make the record
// valid. Under the adversarial eviction model any store may become durable
// the moment it is issued, so the commit word is only safe to write once
// the payload is both flushed *and* fenced — and nothing may be stored into
// the record after the commit word until a fence orders the publication.
//
// Concretely, for every path through a function:
//
//   - a store whose address names a status/commit word must be a
//     single-word Store — StoreWords spanning the commit word can tear,
//     leaving a half-durable commit marker;
//   - at the commit store, the region must have no unflushed payload store
//     and no unfenced flush: otherwise a crash can persist the commit word
//     while the payload it validates is still in the cache (torn publish).
//     A store of constant 0 is a *retirement* (clearing the valid bit, as
//     shardeddb's completeIntent does after copying the last-applied
//     sequence); retiring a record makes it invisible to recovery, so it
//     only requires the payload-flush check, not the fence;
//   - after the commit store and before the next fence on that region, no
//     further store into the region is allowed: the commit word must be the
//     last store of the record on every path;
//   - a header publication (HeaderStore / HeaderCAS) with unflushed or
//     unfenced region payload outstanding is the same torn publish one
//     level up: the header may become durable before the data it points to.
//
// AtomicStore / CAS are exempt (the lock-free engines use their own
// recovery-time validation discipline), as are the pmem package itself and
// _test.go files. Like fenceorder, the analysis is path-sensitive within a
// function and consumes the Program's persistence-effect summaries at call
// sites, so a helper in another package that flushes, fences or dirties the
// region updates the record state here too.
var CommitPoint = &Analyzer{
	Name: "commitpoint",
	Doc:  "commit words must be single-word stores, last into the record, after payload flush+fence",
	Run:  runCommitPoint,
}

func runCommitPoint(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Path, "/internal/pmem") {
		return
	}
	if pass.Pkg.Unit != "base" {
		return
	}
	cp := &commitPoint{pass: pass}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cp.checkFunc(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					cp.checkFunc(lit.Body)
				}
				return true
			})
		}
	}
}

// cpState tracks, along one path, the publication state of each region:
// which payload stores are still unflushed, which flushes are still
// unfenced, and whether a commit word has been stored without a fence yet.
type cpState struct {
	// dirty[receiver][addrExpr] = position of an unflushed payload store.
	dirty map[string]map[string]token.Pos
	// pending[receiver] = position of the first flush not yet fenced.
	pending map[string]token.Pos
	// committed[receiver] = position of a commit store not yet fenced.
	committed map[string]token.Pos
}

func newCPState() *cpState {
	return &cpState{
		dirty:     make(map[string]map[string]token.Pos),
		pending:   make(map[string]token.Pos),
		committed: make(map[string]token.Pos),
	}
}

func (s *cpState) Clone() pathState {
	c := newCPState()
	for r, m := range s.dirty {
		cm := make(map[string]token.Pos, len(m))
		for a, p := range m {
			cm[a] = p
		}
		c.dirty[r] = cm
	}
	for r, p := range s.pending {
		c.pending[r] = p
	}
	for r, p := range s.committed {
		c.committed[r] = p
	}
	return c
}

func (s *cpState) Merge(other pathState) {
	o := other.(*cpState)
	for r, m := range o.dirty {
		if s.dirty[r] == nil {
			s.dirty[r] = make(map[string]token.Pos, len(m))
		}
		for a, p := range m {
			if _, ok := s.dirty[r][a]; !ok {
				s.dirty[r][a] = p
			}
		}
	}
	for r, p := range o.pending {
		if _, ok := s.pending[r]; !ok {
			s.pending[r] = p
		}
	}
	for r, p := range o.committed {
		if _, ok := s.committed[r]; !ok {
			s.committed[r] = p
		}
	}
}

type commitPoint struct {
	pass *Pass
}

func (cp *commitPoint) checkFunc(body *ast.BlockStmt) {
	w := &pathWalker{
		OnCall: func(call *ast.CallExpr, st pathState) { cp.call(call, st.(*cpState)) },
		OnEnd:  func(pathState, token.Pos) {},
	}
	w.Walk(body, newCPState())
}

// isCommitAddr reports whether an address expression names a commit word: it
// mentions an identifier (or field) whose name contains "status" or
// "commit". This is a naming convention, but it is the convention the
// engines follow (coordStatus, slotCommit, statusWord); a commit word
// protected by a CRC instead (pmdk's logSize) deliberately falls outside it.
func isCommitAddr(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			low := strings.ToLower(id.Name)
			if strings.Contains(low, "status") || strings.Contains(low, "commit") {
				found = true
			}
		}
		return !found
	})
	return found
}

func (cp *commitPoint) call(call *ast.CallExpr, st *cpState) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		cp.helperCall(call, st)
		return
	}
	kind := pmemRecvKind(cp.pass.Pkg.Info, sel.X)
	if kind == "" {
		cp.helperCall(call, st)
		return
	}
	recv := exprString(sel.X)
	switch kind + "." + sel.Sel.Name {
	case "Region.Store":
		if len(call.Args) >= 2 && isCommitAddr(call.Args[0]) {
			cp.commitStore(call, st, recv)
			return
		}
		cp.payloadStore(call, st, recv, exprString(call.Args[0]))
	case "Region.StoreWords":
		if len(call.Args) >= 1 && isCommitAddr(call.Args[0]) {
			cp.pass.Report(call.Pos(), "commit word %s published with a multi-word StoreWords: a multi-word commit can tear, leaving a half-durable commit marker; publish the commit word with a single-word Store", exprString(call.Args[0]))
			return
		}
		cp.payloadStore(call, st, recv, exprString(call.Args[0]))
	case "Region.CopyFrom":
		cp.payloadStore(call, st, recv, bulkAddr)
	case "Region.NTStoreLine", "Region.NTCopyFrom":
		// Durable on fence; counts as a flushed payload write.
		cp.checkAfterCommit(call, st, recv)
		if _, ok := st.pending[recv]; !ok {
			st.pending[recv] = call.Pos()
		}
	case "Region.PWB":
		cp.flushAddr(st, recv, exprString(call.Args[0]))
		if _, ok := st.pending[recv]; !ok {
			st.pending[recv] = call.Pos()
		}
	case "Region.FlushRange":
		delete(st.dirty, recv)
		if _, ok := st.pending[recv]; !ok {
			st.pending[recv] = call.Pos()
		}
	case "Region.PFence":
		delete(st.pending, recv)
		delete(st.committed, recv)
	case "Pool.HeaderStore", "Pool.HeaderCAS":
		for r, m := range st.dirty {
			for a, p := range m {
				cp.pass.Report(call.Pos(), "header publish with unflushed payload Store(%s) on %s (stored at line %d): the header may become durable before the data it publishes", a, r, cp.pass.Fset.Position(p).Line)
			}
		}
		clear(st.dirty)
		for r, p := range st.pending {
			cp.pass.Report(call.Pos(), "header publish before the payload flush on %s is fenced (flush at line %d): the header may become durable before the data it publishes", r, cp.pass.Fset.Position(p).Line)
		}
		clear(st.pending)
	case "Pool.PSync", "Pool.PFenceGlobal":
		clear(st.pending)
		clear(st.committed)
	}
}

// payloadStore records a non-commit store and enforces commit-last.
func (cp *commitPoint) payloadStore(call *ast.CallExpr, st *cpState, recv, addr string) {
	cp.checkAfterCommit(call, st, recv)
	if st.dirty[recv] == nil {
		st.dirty[recv] = make(map[string]token.Pos)
	}
	if _, ok := st.dirty[recv][addr]; !ok {
		st.dirty[recv][addr] = call.Pos()
	}
}

func (cp *commitPoint) checkAfterCommit(call *ast.CallExpr, st *cpState, recv string) {
	if p, ok := st.committed[recv]; ok {
		cp.pass.Report(call.Pos(), "store into %s after the commit store at line %d and before its fence: the commit word must be the last store into the record on every path", recv, cp.pass.Fset.Position(p).Line)
		delete(st.committed, recv) // one report per commit point
	}
}

// commitStore enforces the payload-durable-first rule at a commit store.
func (cp *commitPoint) commitStore(call *ast.CallExpr, st *cpState, recv string) {
	cp.checkAfterCommit(call, st, recv)
	addr := exprString(call.Args[0])
	for a, p := range st.dirty[recv] {
		if a == addr {
			continue // re-store of the commit word itself is not payload
		}
		what := "Store(" + a + ")"
		if a == bulkAddr {
			what = "CopyFrom"
		}
		cp.pass.Report(call.Pos(), "commit store to %s while %s on %s is unflushed (stored at line %d): a crash can persist the commit word before its payload (torn publish)", addr, what, recv, cp.pass.Fset.Position(p).Line)
	}
	delete(st.dirty, recv)
	// A constant-zero commit store retires the record (clears the valid
	// bit): recovery then ignores the payload, so only the flush check
	// applies — completeIntent legitimately has an unfenced PWB of the
	// last-applied word outstanding when it clears the status.
	if !cp.isZeroValue(call.Args[1]) {
		if p, ok := st.pending[recv]; ok {
			cp.pass.Report(call.Pos(), "commit store to %s before the payload flush on %s is fenced (flush at line %d): the commit word may become durable before its payload (torn publish)", addr, recv, cp.pass.Fset.Position(p).Line)
			delete(st.pending, recv)
		}
	}
	// The commit word itself is now dirty in the fenceorder sense (needs
	// its own PWB+fence — fenceorder checks that); here we only track that
	// the record is committed and further stores must wait for the fence.
	st.committed[recv] = call.Pos()
}

func (cp *commitPoint) isZeroValue(e ast.Expr) bool {
	tv, ok := cp.pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// flushAddr mirrors fenceorder's line-coverage heuristics: a PWB clears
// dirty entries sharing its base term; an unmatched PWB is assumed to cover
// the receiver's outstanding single-word stores.
func (cp *commitPoint) flushAddr(st *cpState, recv, addr string) {
	m := st.dirty[recv]
	if len(m) == 0 {
		return
	}
	base := baseTerm(addr)
	matched := false
	for a := range m {
		if a != bulkAddr && baseTerm(a) == base {
			delete(m, a)
			matched = true
		}
	}
	if !matched {
		for a := range m {
			if a != bulkAddr {
				delete(m, a)
			}
		}
	}
	if len(m) == 0 {
		delete(st.dirty, recv)
	}
}

// helperCall applies a callee's persistence-effect summary to the record
// state, so cross-package flush/fence helpers keep the commit tracking
// accurate.
func (cp *commitPoint) helperCall(call *ast.CallExpr, st *cpState) {
	callee := cp.pass.Prog.resolve(cp.pass.Pkg.Info, call)
	if callee == nil {
		return
	}
	eff := cp.pass.Prog.Effect(callee)
	if eff.empty() {
		return
	}
	rootOf := func(j int) (string, bool) {
		if j == -1 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return exprString(sel.X), true
			}
			return "", false
		}
		if j < len(call.Args) {
			return exprString(call.Args[j]), true
		}
		return "", false
	}
	rooted := func(recv, root string) bool {
		return recv == root || strings.HasPrefix(recv, root+".")
	}
	for j := range eff.Flushes {
		root, ok := rootOf(j)
		if !ok {
			continue
		}
		for recv := range st.dirty {
			if rooted(recv, root) {
				delete(st.dirty, recv)
				if _, ok := st.pending[recv]; !ok {
					st.pending[recv] = call.Pos()
				}
			}
		}
	}
	for j := range eff.Fences {
		root, ok := rootOf(j)
		if !ok {
			continue
		}
		for recv := range st.pending {
			if rooted(recv, root) {
				delete(st.pending, recv)
			}
		}
		for recv := range st.committed {
			if rooted(recv, root) {
				delete(st.committed, recv)
			}
		}
	}
	if eff.FenceGlobal {
		clear(st.pending)
		clear(st.committed)
	}
	for j := range eff.StoresUnflushed {
		if root, ok := rootOf(j); ok {
			cp.checkAfterCommit(call, st, root)
			if st.dirty[root] == nil {
				st.dirty[root] = make(map[string]token.Pos)
			}
			if _, ok := st.dirty[root]["<stores in "+callee.Name()+">"]; !ok {
				st.dirty[root]["<stores in "+callee.Name()+">"] = call.Pos()
			}
		}
	}
}
