package analysis

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

// TestStaticRuntimeAgreement is the differential gate between the two
// durability checkers: for every engine whose traced workload (a bounded
// list-set run plus a recovery pass) comes back clean from the runtime
// ordering checker (obs.CheckOrdering), the static fenceorder/commitpoint
// pass over that engine's source must come back clean too. A static
// diagnostic on an engine whose executed paths the runtime checker just
// certified would mean one of the two models is wrong about the
// persistence discipline — the static pass contradicting observed-correct
// behaviour (a false positive), or the runtime checker missing a real
// ordering bug the static pass sees.
//
// The converse direction does not hold, and cannot: there are violation
// classes the runtime checker rejects (seeded as the runtimeOnly cases of
// obs's TestCheckOrdering) that a sound-for-idioms static pass provably
// cannot flag. Five classes, with the reason static analysis is blind to
// each:
//
//  1. Data-dependent flush coverage (RuleUnflushed on computed addresses):
//     whether pwb(f(x)) covers store(g(y)) depends on runtime values of x
//     and y; statically both reduce to opaque terms, and flagging opaque
//     flushes would drown the engines in false positives, so pmemvet
//     deliberately assumes unmatched flushes cover outstanding stores.
//  2. Cross-goroutine fence interleavings (RuleUnfenced between threads):
//     helping constructions rely on another thread's fence ordering their
//     flush; which thread's fence lands between two events is a scheduling
//     fact, invisible to a per-function (even whole-program) summary.
//  3. Quantitative eviction races (RuleHeaderUnsynced under relaxed mode):
//     whether a header store became durable before its psync depends on
//     the simulated eviction schedule — the same code is correct under one
//     schedule and torn under another; static analysis sees only the code.
//  4. Content mismatches behind a correct protocol (RuleCRCOrder): a CRC
//     computed over the wrong byte range follows the exact store → flush →
//     fence → publish shape pmemvet checks; only replaying the trace (or
//     recovery itself) notices the checksum does not match the payload.
//  5. Sequence regressions across recoveries (RuleSeqOrder): monotonicity
//     of applied sequence numbers spans multiple executions and the
//     recovered image; a static pass sees each function once, with no
//     notion of the value a previous crash left behind.
//
// Those five are the reason ci.sh runs both gates: pmemvet for the paths
// the workload never executed, CheckOrdering for the facts only execution
// decides.
func TestStaticRuntimeAgreement(t *testing.T) {
	engineDirs := map[string]string{
		"RedoOpt-PTM": "internal/core/redo",
		"OneFile":     "internal/onefile",
		"RomulusLR":   "internal/romulus",
		"PSim-CoW":    "internal/psim",
		"PMDK":        "internal/pmdk",
	}

	// Runtime half: the traced workload and recovery must satisfy the
	// dynamic ordering checker.
	runtimeClean := make(map[string]bool)
	for name := range engineDirs {
		res, err := bench.TraceRun(name, 48)
		if err != nil {
			t.Fatalf("TraceRun(%s): %v", name, err)
		}
		if len(res.Violations) > 0 {
			t.Errorf("runtime checker rejects %s: %v", name, res.Violations[0])
			continue
		}
		runtimeClean[name] = true
	}

	// Static half: fenceorder and commitpoint over the whole program (the
	// same load pmemvet uses, so interprocedural summaries are complete).
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	diags := Run(pkgs, loader.Fset, []*Analyzer{FenceOrder, CommitPoint})

	for name, dir := range engineDirs {
		if !runtimeClean[name] {
			continue
		}
		prefix := filepath.Join(loader.Root(), filepath.FromSlash(dir)) + string(filepath.Separator)
		for _, d := range diags {
			if strings.HasPrefix(d.Pos.Filename, prefix) {
				t.Errorf("static pass contradicts the runtime checker on %s (traced run was clean): %s", name, d)
			}
		}
	}
}
