package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Program is the whole set of loaded units plus function-level summaries
// computed by a fixed point over the static call graph. Summaries let the
// closure checkers see through helpers: a Read closure calling
// seqds.Queue.Enqueue is flagged even though the Store happens two calls
// down.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Pkg

	// decls maps every function/method object to its syntax.
	decls map[*types.Func]*ast.FuncDecl
	// declInfo maps the object to the types.Info of the unit that owns
	// its body (needed to resolve calls inside that body).
	declInfo map[*types.Func]*types.Info

	// mutates: the function may call Store/Alloc/Free on a ptm.Mem that
	// is passed to it. reason is the chain root, e.g. "calls
	// (ptm.Mem).Store".
	mutates map[*types.Func]string
	// nondet: the function may observe nondeterminism (clock, rand,
	// runtime, channels, goroutines). reason names the root cause.
	nondet map[*types.Func]string
	// peffects: per-function persistence effects (flushes/fences/stores on
	// param-rooted regions, global fences, header publishes), closed over
	// the call graph. See peffects.go.
	peffects map[*types.Func]*PersistEffect
	// taint: per-function transient-value flow summaries (which params and
	// DRAM-address sources reach return values and persistent stores). See
	// transientref.go.
	taint map[*types.Func]*taintSummary
}

// NewProgram indexes the units and computes both summaries.
func NewProgram(fset *token.FileSet, pkgs []*Pkg) *Program {
	p := &Program{
		Fset:     fset,
		Pkgs:     pkgs,
		decls:    make(map[*types.Func]*ast.FuncDecl),
		declInfo: make(map[*types.Func]*types.Info),
		mutates:  make(map[*types.Func]string),
		nondet:   make(map[*types.Func]string),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				p.decls[obj] = fd
				p.declInfo[obj] = pkg.Info
			}
		}
	}
	p.computeSummaries()
	p.computePersistEffects()
	p.computeTaintSummaries()
	return p
}

// Mutates reports whether fn may mutate a ptm.Mem handed to it, with the
// root cause.
func (p *Program) Mutates(fn *types.Func) (string, bool) {
	r, ok := p.mutates[fn]
	return r, ok
}

// Nondet reports whether fn may behave nondeterministically, with the root
// cause.
func (p *Program) Nondet(fn *types.Func) (string, bool) {
	r, ok := p.nondet[fn]
	return r, ok
}

// memMutatorName returns the method name if call is x.Store / x.Alloc /
// x.Free on a value whose static type is the ptm.Mem interface.
func memMutatorName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Store", "Alloc", "Free":
	default:
		return ""
	}
	tv, ok := info.Types[sel.X]
	if !ok || !isPtmMem(tv.Type) {
		return ""
	}
	return sel.Sel.Name
}

// passesMemArg reports whether any argument of call has static type ptm.Mem.
func passesMemArg(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && isPtmMem(tv.Type) {
			return true
		}
	}
	return false
}

// directNondet returns a description of the first direct nondeterminism
// source in n (nil body parts are fine to pass), or "".
//
// Sources: clock reads and timers (time.Now & friends), math/rand,
// runtime.*, channel operations, select, and go statements. These are
// exactly the things a re-executed transaction closure must not do: a
// helper thread replaying the closure would observe different values and
// diverge from the consensus execution.
func directNondet(info *types.Info, n ast.Node) (reason string, pos token.Pos) {
	ast.Inspect(n, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			reason, pos = "starts a goroutine", n.Pos()
		case *ast.SendStmt:
			reason, pos = "sends on a channel", n.Pos()
		case *ast.SelectStmt:
			reason, pos = "uses select", n.Pos()
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reason, pos = "receives from a channel", n.Pos()
			}
		case *ast.CallExpr:
			if name := nondetCallName(info, n); name != "" {
				reason, pos = "calls "+name, n.Pos()
			}
		}
		return reason == ""
	})
	return reason, pos
}

// nondetCallName returns a printable name if call targets a known
// nondeterminism source package (time's clock readers, math/rand, runtime).
func nondetCallName(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	switch f.Pkg().Path() {
	case "time":
		switch f.Name() {
		case "Now", "Since", "Until", "Sleep", "After", "Tick", "NewTimer", "NewTicker":
			return "time." + f.Name()
		}
	case "math/rand", "math/rand/v2":
		return f.Pkg().Name() + "." + f.Name()
	case "runtime":
		return "runtime." + f.Name()
	}
	return ""
}

// computeSummaries seeds both summaries from function bodies, then closes
// them over static calls until nothing changes. Interface-dispatched calls
// (other than on ptm.Mem itself) are not resolved; that keeps the checker
// free of false positives at the cost of missing dynamic dispatch, which
// the fixture tests document.
func (p *Program) computeSummaries() {
	// Seed.
	for fn, decl := range p.decls {
		info := p.declInfo[fn]
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := memMutatorName(info, call); name != "" {
				if _, done := p.mutates[fn]; !done {
					p.mutates[fn] = "calls (ptm.Mem)." + name
				}
			}
			return true
		})
		if reason, _ := directNondet(info, decl.Body); reason != "" {
			p.nondet[fn] = reason
		}
	}
	// Propagate.
	for changed := true; changed; {
		changed = false
		for fn, decl := range p.decls {
			info := p.declInfo[fn]
			_, hasMut := p.mutates[fn]
			_, hasND := p.nondet[fn]
			if hasMut && hasND {
				continue
			}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := p.resolve(info, call)
				if callee == nil {
					return true
				}
				if !hasMut {
					if _, ok := p.mutates[callee]; ok && passesMemArg(info, call) {
						p.mutates[fn] = "calls " + callee.Name() + ", which " + p.mutates[callee]
						hasMut, changed = true, true
					}
				}
				if !hasND {
					if _, ok := p.nondet[callee]; ok {
						p.nondet[fn] = "calls " + callee.Name() + ", which " + p.nondet[callee]
						hasND, changed = true, true
					}
				}
				return true
			})
		}
	}
}

// resolve maps a call to the *types.Func whose body we have, looking the
// object up across units by position (base and test units type-check the
// same files into distinct objects).
func (p *Program) resolve(info *types.Info, call *ast.CallExpr) *types.Func {
	f := calleeFunc(info, call)
	if f == nil {
		return nil
	}
	if _, ok := p.decls[f]; ok {
		return f
	}
	// Cross-unit: find a declared function with the same position.
	for cand := range p.decls {
		if cand.Pos() == f.Pos() && cand.Name() == f.Name() {
			return cand
		}
	}
	return nil
}
