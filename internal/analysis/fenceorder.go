package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FenceOrder checks the persistence-ordering discipline over direct
// pmem.Pool / pmem.Region call sites, the recipe every construction in this
// repository follows (Izraelevitz et al.'s pwb-per-mutated-line, ordered by
// fences — the discipline whose violations Ben-David et al. and Marathe et
// al. identify as the dominant source of durability bugs):
//
//   - A plain Store to a region must be covered by a PWB of that line (or a
//     FlushRange / a helper that flushes the region) before any PFence /
//     PFenceGlobal on that region along the same path. An unflushed store at
//     a fence means the fence does not make it durable: in Direct-mode tests
//     nothing fails, and the bug surfaces only as a flaky crash test.
//   - A bulk CopyFrom must be covered by a FlushRange before a fence
//     (NTCopyFrom / NTStoreLine bypass the cache and need no pwb).
//   - A header publish (HeaderStore / HeaderCAS) must be flushed with
//     PWBHeader before the PSync / PFenceGlobal that is supposed to make it
//     durable, and a function that publishes a header must issue a trailing
//     PSync / PFenceGlobal before returning.
//   - A function whose name starts with Recover/recover is a publish path
//     for the whole recovered image: beyond the rules above, it must leave
//     no region store unflushed and no flushed line unfenced when it
//     returns. Recovery runs exactly once before mutators resume — there is
//     no later transaction whose commit fence would sweep up the leftovers,
//     and the nested-failure model crashes recovery itself, so anything it
//     repaired but did not fence is silently lost on the next failure.
//
// The analysis is intra-procedural over each function body (branches fork
// the tracking state and merge by union; loop bodies are evaluated once),
// with one inter-procedural assist: same-package helpers that flush a
// region parameter (e.g. romulus.flushLines) count as covering flushes at
// their call sites. Stores made by callees are not propagated — each
// function is responsible for the fences it issues itself.
//
// AtomicStore and CAS are deliberately exempt: the hand-made lock-free
// queues flush CAS'd locations selectively (FHMP elides tail flushes by
// design, rebuilding the tail by traversal on recovery), so the plain-store
// discipline does not apply to them. The pmem package itself (which
// implements the primitives) and _test.go files (crash tests intentionally
// construct partially-flushed states) are skipped.
var FenceOrder = &Analyzer{
	Name: "fenceorder",
	Doc:  "stores must be flushed before fences; header publishes need a trailing fence",
	Run:  runFenceOrder,
}

const bulkAddr = "<copied range>"

func runFenceOrder(pass *Pass) {
	if pass.Pkg.Path == "repro/internal/pmem" || strings.HasSuffix(pass.Pkg.Path, "/internal/pmem") {
		return
	}
	if pass.Pkg.Unit != "base" {
		return
	}
	fo := &fenceOrder{pass: pass, info: pass.Pkg.Info}
	fo.flushHelpers = collectFlushHelpers(pass.Pkg)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fo.checkFunc(fd.Body, isRecoverName(fd.Name.Name))
			// Function literals are separate execution contexts (they
			// may run at another time or on another goroutine), so each
			// is checked as its own function.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					fo.checkFunc(lit.Body, false)
				}
				return true
			})
		}
	}
}

// fenceState tracks, along one path, which stored addresses still await a
// flush and which header publishes still await a fence.
type fenceState struct {
	// dirty[receiver][addrExpr] = position of the uncovered Store.
	dirty map[string]map[string]token.Pos
	// hdrDirty[slotExpr] = position of the unflushed HeaderStore/CAS.
	hdrDirty map[string]token.Pos
	// hdrPending is the position of the latest header publish not yet
	// followed by a PSync/PFenceGlobal (NoPos if none).
	hdrPending token.Pos
	// pwbPending[receiver] = position of the first flush (PWB / FlushRange
	// / non-temporal store) on that region not yet ordered by a PFence /
	// PFenceGlobal. Only recover* publish paths insist this drains.
	pwbPending map[string]token.Pos
}

func newFenceState() *fenceState {
	return &fenceState{
		dirty:      make(map[string]map[string]token.Pos),
		hdrDirty:   make(map[string]token.Pos),
		pwbPending: make(map[string]token.Pos),
	}
}

func (s *fenceState) clone() *fenceState {
	c := newFenceState()
	for r, m := range s.dirty {
		cm := make(map[string]token.Pos, len(m))
		for a, p := range m {
			cm[a] = p
		}
		c.dirty[r] = cm
	}
	for a, p := range s.hdrDirty {
		c.hdrDirty[a] = p
	}
	c.hdrPending = s.hdrPending
	for r, p := range s.pwbPending {
		c.pwbPending[r] = p
	}
	return c
}

// merge unions other into s (the conservative join: dirty in any branch is
// dirty after the merge).
func (s *fenceState) merge(other *fenceState) {
	for r, m := range other.dirty {
		if s.dirty[r] == nil {
			s.dirty[r] = make(map[string]token.Pos, len(m))
		}
		for a, p := range m {
			if _, ok := s.dirty[r][a]; !ok {
				s.dirty[r][a] = p
			}
		}
	}
	for a, p := range other.hdrDirty {
		if _, ok := s.hdrDirty[a]; !ok {
			s.hdrDirty[a] = p
		}
	}
	if !s.hdrPending.IsValid() {
		s.hdrPending = other.hdrPending
	}
	for r, p := range other.pwbPending {
		if _, ok := s.pwbPending[r]; !ok {
			s.pwbPending[r] = p
		}
	}
}

type fenceOrder struct {
	pass         *Pass
	info         *types.Info
	flushHelpers map[*types.Func][]int // callee -> indices of flushed params (-1 = receiver)
	inRecover    bool                  // current function is a recover* publish path
}

// isRecoverName reports whether a function participates in recovery by
// naming convention (Recover, recover, recoverLog, RecoverAll, ...).
func isRecoverName(name string) bool {
	return strings.HasPrefix(name, "Recover") || strings.HasPrefix(name, "recover")
}

func (fo *fenceOrder) checkFunc(body *ast.BlockStmt, isRecover bool) {
	saved := fo.inRecover
	fo.inRecover = isRecover
	st := newFenceState()
	terminated := fo.stmt(body, st)
	if !terminated {
		fo.endChecks(st, body.End())
	}
	fo.inRecover = saved
}

// endChecks runs at every return and at fall-off: a header published on
// this path must have been flushed and fenced by now. A recover* function
// is additionally a publish path for every region it touched: recovery runs
// once, before any mutator, so a store it leaves unflushed — or a flush it
// leaves unfenced — is repaired state that the next crash silently discards.
func (fo *fenceOrder) endChecks(st *fenceState, end token.Pos) {
	for slot, pos := range st.hdrDirty {
		fo.pass.Report(pos, "header slot %s stored but neither flushed (PWBHeader) nor fenced by function end: the publish may never become durable", slot)
		delete(st.hdrDirty, slot)
	}
	if st.hdrPending.IsValid() {
		fo.pass.Report(st.hdrPending, "header publish without a trailing PSync/PFenceGlobal on this path: the new header value is flushed but not durably ordered")
		st.hdrPending = token.NoPos
	}
	if fo.inRecover {
		for recv, m := range st.dirty {
			for a, pos := range m {
				what := fmt.Sprintf("Store(%s)", a)
				if a == bulkAddr {
					what = "CopyFrom"
				}
				fo.pass.Report(pos, "recovery path leaves %s on %s unflushed at function end: the repaired state is lost on the next crash", what, recv)
			}
			delete(st.dirty, recv)
		}
		for recv, pos := range st.pwbPending {
			fo.pass.Report(pos, "recovery path flushes %s but never fences it before returning: the repaired state is not durably ordered", recv)
			delete(st.pwbPending, recv)
		}
	}
}

// stmt evaluates one statement, mutating st; it returns true if the path
// terminates (return / panic-free analysis treats branch statements as
// terminating their path contribution).
func (fo *fenceOrder) stmt(s ast.Stmt, st *fenceState) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range s.List {
			if fo.stmt(sub, st) {
				return true
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			fo.stmt(s.Init, st)
		}
		fo.calls(s.Cond, st)
		thenSt := st.clone()
		thenTerm := fo.stmt(s.Body, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = fo.stmt(s.Else, elseSt)
		}
		*st = *newFenceState()
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			st.merge(elseSt)
		case elseTerm:
			st.merge(thenSt)
		default:
			st.merge(thenSt)
			st.merge(elseSt)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			fo.stmt(s.Init, st)
		}
		if s.Cond != nil {
			fo.calls(s.Cond, st)
		}
		bodySt := st.clone()
		term := fo.stmt(s.Body, bodySt)
		if s.Post != nil && !term {
			fo.stmt(s.Post, bodySt)
		}
		if !term {
			// Loops are assumed to run at least once: the body state
			// replaces the entry state, so flush helper loops
			// (for s := f; s < end; s++ { region.PWB(...) }) count as
			// covering flushes. The zero-iteration path is deliberately
			// dropped — a conditionally-skipped flush loop is the rare
			// case, an always-entered one the common case.
			*st = *bodySt
		}
	case *ast.RangeStmt:
		fo.calls(s.X, st)
		bodySt := st.clone()
		if !fo.stmt(s.Body, bodySt) {
			*st = *bodySt // assume at least one iteration, as for ForStmt
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			fo.stmt(s.Init, st)
		}
		if s.Tag != nil {
			fo.calls(s.Tag, st)
		}
		fo.caseBodies(s.Body, st)
	case *ast.TypeSwitchStmt:
		fo.caseBodies(s.Body, st)
	case *ast.SelectStmt:
		fo.caseBodies(s.Body, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			fo.calls(r, st)
		}
		fo.endChecks(st, s.Pos())
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto: stop tracking this path
	case *ast.LabeledStmt:
		return fo.stmt(s.Stmt, st)
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred/spawned work runs in another context; skip.
	case nil:
	default:
		fo.calls(s, st)
	}
	return false
}

// caseBodies merges every case clause of a switch/select, plus the
// fall-through (no matching case) state.
func (fo *fenceOrder) caseBodies(body *ast.BlockStmt, st *fenceState) {
	orig := st.clone()
	merged := newFenceState()
	merged.merge(orig)
	for _, cc := range body.List {
		var stmts []ast.Stmt
		switch cc := cc.(type) {
		case *ast.CaseClause:
			stmts = cc.Body
		case *ast.CommClause:
			stmts = cc.Body
		}
		caseSt := orig.clone()
		term := false
		for _, sub := range stmts {
			if fo.stmt(sub, caseSt) {
				term = true
				break
			}
		}
		if !term {
			merged.merge(caseSt)
		}
	}
	*st = *merged
}

// calls processes every pmem call under n in source order, without
// descending into nested function literals.
func (fo *fenceOrder) calls(n ast.Node, st *fenceState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			fo.call(call, st)
		}
		return true
	})
}

// call interprets a single call expression against the tracking state.
func (fo *fenceOrder) call(call *ast.CallExpr, st *fenceState) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		fo.helperCall(call, st)
		return
	}
	recvKind := fo.pmemRecv(sel.X)
	if recvKind == "" {
		fo.helperCall(call, st)
		return
	}
	recv := exprString(sel.X)
	name := sel.Sel.Name
	arg := func(i int) string {
		if i < len(call.Args) {
			return exprString(call.Args[i])
		}
		return ""
	}
	switch recvKind + "." + name {
	case "Region.Store":
		fo.markDirty(st, recv, arg(0), call.Pos())
	case "Region.StoreWords":
		// An aggregated store dirties the whole line range rooted at its
		// base address; it owes the same write-back before the next fence
		// as a store loop over the range would.
		fo.markDirty(st, recv, arg(0), call.Pos())
	case "Region.CopyFrom":
		fo.markDirty(st, recv, bulkAddr, call.Pos())
	case "Region.NTStoreLine", "Region.NTCopyFrom":
		// Non-temporal: bypasses the cache, needs only a fence.
		fo.markPending(st, recv, call.Pos())
	case "Region.PWB":
		fo.flushAddr(st, recv, arg(0))
		fo.markPending(st, recv, call.Pos())
	case "Region.FlushRange":
		delete(st.dirty, recv)
		fo.markPending(st, recv, call.Pos())
	case "Region.PFence":
		for a, pos := range st.dirty[recv] {
			fo.reportUnflushed(call, recv, a, pos)
		}
		delete(st.dirty, recv)
		delete(st.pwbPending, recv)
	case "Pool.HeaderStore", "Pool.HeaderCAS":
		st.hdrDirty[arg(0)] = call.Pos()
		st.hdrPending = call.Pos()
	case "Pool.PWBHeader":
		if _, ok := st.hdrDirty[arg(0)]; ok {
			delete(st.hdrDirty, arg(0))
		} else {
			// Unresolvable slot expression: assume it covers everything.
			clear(st.hdrDirty)
		}
	case "Pool.PSync":
		for slot, pos := range st.hdrDirty {
			fo.pass.Report(call.Pos(), "PSync with unflushed header store of slot %s (stored at line %d, no PWBHeader in between): the fence does not make it durable", slot, fo.pass.Fset.Position(pos).Line)
		}
		clear(st.hdrDirty)
		st.hdrPending = token.NoPos
	case "Pool.PFenceGlobal":
		for recv, m := range st.dirty {
			for a, pos := range m {
				fo.reportUnflushed(call, recv, a, pos)
			}
		}
		clear(st.dirty)
		clear(st.pwbPending)
		for slot, pos := range st.hdrDirty {
			fo.pass.Report(call.Pos(), "PFenceGlobal with unflushed header store of slot %s (stored at line %d, no PWBHeader in between): the fence does not make it durable", slot, fo.pass.Fset.Position(pos).Line)
		}
		clear(st.hdrDirty)
		st.hdrPending = token.NoPos
	}
}

func (fo *fenceOrder) reportUnflushed(fence *ast.CallExpr, recv, addr string, storePos token.Pos) {
	what := fmt.Sprintf("Store(%s)", addr)
	missing := "PWB"
	if addr == bulkAddr {
		what = "CopyFrom"
		missing = "FlushRange"
	}
	fo.pass.Report(fence.Pos(), "fence on %s with unflushed %s (stored at line %d, no %s in between): the fence does not make it durable", recv, what, fo.pass.Fset.Position(storePos).Line, missing)
}

// markDirty records an uncovered store.
func (fo *fenceOrder) markDirty(st *fenceState, recv, addr string, pos token.Pos) {
	if st.dirty[recv] == nil {
		st.dirty[recv] = make(map[string]token.Pos)
	}
	if _, ok := st.dirty[recv][addr]; !ok {
		st.dirty[recv][addr] = pos
	}
}

// markPending records a flush awaiting its ordering fence.
func (fo *fenceOrder) markPending(st *fenceState, recv string, pos token.Pos) {
	if _, ok := st.pwbPending[recv]; !ok {
		st.pwbPending[recv] = pos
	}
}

// flushAddr clears the dirty entries a PWB covers. A pwb flushes the whole
// cache line, so entries sharing the flushed address's base term (Store(n),
// Store(n+1), PWB(n) — nodes are line-aligned) are cleared together. A pwb
// whose address matches nothing we track (e.g. computed line addresses like
// PWB(line*WordsPerLine)) is assumed to cover the receiver's outstanding
// stores — the analyzer only insists that *some* flush separates a plain
// store from the fence.
func (fo *fenceOrder) flushAddr(st *fenceState, recv, addr string) {
	m := st.dirty[recv]
	if len(m) == 0 {
		return
	}
	base := baseTerm(addr)
	matched := false
	for a := range m {
		if a != bulkAddr && baseTerm(a) == base {
			delete(m, a)
			matched = true
		}
	}
	if !matched {
		// Keep bulk dirtiness: a single-line pwb cannot cover a copy.
		for a := range m {
			if a != bulkAddr {
				delete(m, a)
			}
		}
	}
	if len(m) == 0 {
		delete(st.dirty, recv)
	}
}

// helperCall applies flush summaries: calling a same-package helper that
// flushes one of its region parameters counts as flushing the argument.
func (fo *fenceOrder) helperCall(call *ast.CallExpr, st *fenceState) {
	if len(fo.flushHelpers) == 0 || len(st.dirty) == 0 {
		return
	}
	callee := calleeFunc(fo.info, call)
	if callee == nil {
		return
	}
	params, ok := fo.flushHelpers[callee]
	if !ok {
		return
	}
	clearRooted := func(root string) {
		for recv := range st.dirty {
			if recv == root || strings.HasPrefix(recv, root+".") {
				delete(st.dirty, recv)
			}
		}
	}
	for _, pi := range params {
		if pi == -1 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				clearRooted(exprString(sel.X))
			}
		} else if pi < len(call.Args) {
			clearRooted(exprString(call.Args[pi]))
		}
	}
}

// pmemRecv classifies a method receiver expression as a pmem Region or Pool
// (directly or through a pointer), returning "" otherwise.
func (fo *fenceOrder) pmemRecv(x ast.Expr) string {
	tv, ok := fo.info.Types[x]
	if !ok {
		return ""
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "pmem" {
		return ""
	}
	switch obj.Name() {
	case "Region", "Pool":
		return obj.Name()
	}
	return ""
}

// collectFlushHelpers finds functions that issue PWB/FlushRange on a value
// rooted at one of their parameters (or their receiver), e.g.
// flushLines(region *pmem.Region, lines []uint64).
func collectFlushHelpers(pkg *Pkg) map[*types.Func][]int {
	out := make(map[*types.Func][]int)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			// Parameter (and receiver) names eligible for rooting.
			idx := make(map[string]int)
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				idx[fd.Recv.List[0].Names[0].Name] = -1
			}
			pi := 0
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					idx[name.Name] = pi
					pi++
				}
				if len(field.Names) == 0 {
					pi++
				}
			}
			seen := make(map[int]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "PWB", "FlushRange":
				default:
					return true
				}
				if root := rootIdent(sel.X); root != nil {
					if i, ok := idx[root.Name]; ok && !seen[i] {
						seen[i] = true
						out[obj] = append(out[obj], i)
					}
				}
				return true
			})
		}
	}
	return out
}

// exprString renders an expression canonically (space-free), so that
// syntactically equal addresses compare equal regardless of source spacing.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.BasicLit:
		return e.Value
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.BinaryExpr:
		return exprString(e.X) + e.Op.String() + exprString(e.Y)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.CallExpr:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = exprString(a)
		}
		return exprString(e.Fun) + "(" + strings.Join(parts, ",") + ")"
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.CompositeLit:
		return "{…}"
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// baseTerm reduces an address expression to the term that determines its
// cache line for nearby offsets: conversions are stripped and the left
// operand of +/- chains is taken (base+1, base+2 → base). Multiplications
// and other shapes stay opaque.
func baseTerm(s string) string {
	for {
		switch {
		case strings.HasPrefix(s, "uint64(") && strings.HasSuffix(s, ")"):
			s = s[len("uint64(") : len(s)-1]
		default:
			// Cut at the first top-level + or -.
			depth := 0
			for i, r := range s {
				switch r {
				case '(', '[':
					depth++
				case ')', ']':
					depth--
				case '+', '-':
					if depth == 0 && i > 0 {
						return s[:i]
					}
				}
			}
			return s
		}
	}
}
