package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FenceOrder checks the persistence-ordering discipline over direct
// pmem.Pool / pmem.Region call sites, the recipe every construction in this
// repository follows (Izraelevitz et al.'s pwb-per-mutated-line, ordered by
// fences — the discipline whose violations Ben-David et al. and Marathe et
// al. identify as the dominant source of durability bugs):
//
//   - A plain Store to a region must be covered by a PWB of that line (or a
//     FlushRange / a helper that flushes the region) before any PFence /
//     PFenceGlobal on that region along the same path. An unflushed store at
//     a fence means the fence does not make it durable: in Direct-mode tests
//     nothing fails, and the bug surfaces only as a flaky crash test.
//   - A bulk CopyFrom must be covered by a FlushRange before a fence
//     (NTCopyFrom / NTStoreLine bypass the cache and need no pwb).
//   - A header publish (HeaderStore / HeaderCAS) must be flushed with
//     PWBHeader before the PSync / PFenceGlobal that is supposed to make it
//     durable, and a function that publishes a header must issue a trailing
//     PSync / PFenceGlobal before returning.
//   - A function whose name starts with Recover/recover is a publish path
//     for the whole recovered image: beyond the rules above, it must leave
//     no region store unflushed and no flushed line unfenced when it
//     returns. Recovery runs exactly once before mutators resume — there is
//     no later transaction whose commit fence would sweep up the leftovers,
//     and the nested-failure model crashes recovery itself, so anything it
//     repaired but did not fence is silently lost on the next failure.
//
// The analysis is path-sensitive over each function body (branches fork the
// tracking state and merge by union; loop bodies are evaluated once) and
// interprocedural through the Program's persistence-effect summaries
// (peffects.go): a call to a helper — in any package — that flushes,
// fences, stores into, or publishes through one of its region/pool
// parameters is interpreted against the caller's state at the call site.
// A helper that stores into a region argument and leaves it unflushed makes
// the caller's copy dirty; a helper that fences a region argument is a
// fence point at which the caller's unflushed stores are reported; a helper
// that publishes a header without a trailing global fence hands the caller
// the trailing-fence obligation.
//
// AtomicStore and CAS are deliberately exempt: the hand-made lock-free
// queues flush CAS'd locations selectively (FHMP elides tail flushes by
// design, rebuilding the tail by traversal on recovery), so the plain-store
// discipline does not apply to them. The pmem package itself (which
// implements the primitives) and _test.go files (crash tests intentionally
// construct partially-flushed states) are skipped.
var FenceOrder = &Analyzer{
	Name: "fenceorder",
	Doc:  "stores must be flushed before fences; header publishes need a trailing fence",
	Run:  runFenceOrder,
}

const bulkAddr = "<copied range>"

func runFenceOrder(pass *Pass) {
	if pass.Pkg.Path == "repro/internal/pmem" || strings.HasSuffix(pass.Pkg.Path, "/internal/pmem") {
		return
	}
	if pass.Pkg.Unit != "base" {
		return
	}
	fo := &fenceOrder{pass: pass, info: pass.Pkg.Info}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fo.checkFunc(fd.Body, isRecoverName(fd.Name.Name))
			// Function literals are separate execution contexts (they
			// may run at another time or on another goroutine), so each
			// is checked as its own function.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					fo.checkFunc(lit.Body, false)
				}
				return true
			})
		}
	}
}

// fenceState tracks, along one path, which stored addresses still await a
// flush and which header publishes still await a fence.
type fenceState struct {
	// dirty[receiver][addrExpr] = position of the uncovered Store.
	dirty map[string]map[string]token.Pos
	// hdrDirty[slotExpr] = position of the unflushed HeaderStore/CAS.
	hdrDirty map[string]token.Pos
	// hdrPending is the position of the latest header publish not yet
	// followed by a PSync/PFenceGlobal (NoPos if none).
	hdrPending token.Pos
	// pwbPending[receiver] = position of the first flush (PWB / FlushRange
	// / non-temporal store) on that region not yet ordered by a PFence /
	// PFenceGlobal. Only recover* publish paths insist this drains.
	pwbPending map[string]token.Pos
}

func newFenceState() *fenceState {
	return &fenceState{
		dirty:      make(map[string]map[string]token.Pos),
		hdrDirty:   make(map[string]token.Pos),
		pwbPending: make(map[string]token.Pos),
	}
}

// Clone implements pathState.
func (s *fenceState) Clone() pathState {
	c := newFenceState()
	for r, m := range s.dirty {
		cm := make(map[string]token.Pos, len(m))
		for a, p := range m {
			cm[a] = p
		}
		c.dirty[r] = cm
	}
	for a, p := range s.hdrDirty {
		c.hdrDirty[a] = p
	}
	c.hdrPending = s.hdrPending
	for r, p := range s.pwbPending {
		c.pwbPending[r] = p
	}
	return c
}

// Merge unions other into s (the conservative join: dirty in any branch is
// dirty after the merge).
func (s *fenceState) Merge(other pathState) {
	o := other.(*fenceState)
	for r, m := range o.dirty {
		if s.dirty[r] == nil {
			s.dirty[r] = make(map[string]token.Pos, len(m))
		}
		for a, p := range m {
			if _, ok := s.dirty[r][a]; !ok {
				s.dirty[r][a] = p
			}
		}
	}
	for a, p := range o.hdrDirty {
		if _, ok := s.hdrDirty[a]; !ok {
			s.hdrDirty[a] = p
		}
	}
	if !s.hdrPending.IsValid() {
		s.hdrPending = o.hdrPending
	}
	for r, p := range o.pwbPending {
		if _, ok := s.pwbPending[r]; !ok {
			s.pwbPending[r] = p
		}
	}
}

type fenceOrder struct {
	pass      *Pass
	info      *types.Info
	inRecover bool // current function is a recover* publish path
}

// isRecoverName reports whether a function participates in recovery by
// naming convention (Recover, recover, recoverLog, RecoverAll, ...).
func isRecoverName(name string) bool {
	return strings.HasPrefix(name, "Recover") || strings.HasPrefix(name, "recover")
}

func (fo *fenceOrder) checkFunc(body *ast.BlockStmt, isRecover bool) {
	saved := fo.inRecover
	fo.inRecover = isRecover
	w := &pathWalker{
		OnCall: func(call *ast.CallExpr, st pathState) { fo.call(call, st.(*fenceState)) },
		OnEnd:  func(st pathState, pos token.Pos) { fo.endChecks(st.(*fenceState), pos) },
	}
	w.Walk(body, newFenceState())
	fo.inRecover = saved
}

// endChecks runs at every return and at fall-off: a header published on
// this path must have been flushed and fenced by now. A recover* function
// is additionally a publish path for every region it touched: recovery runs
// once, before any mutator, so a store it leaves unflushed — or a flush it
// leaves unfenced — is repaired state that the next crash silently discards.
func (fo *fenceOrder) endChecks(st *fenceState, end token.Pos) {
	for slot, pos := range st.hdrDirty {
		fo.pass.Report(pos, "header slot %s stored but neither flushed (PWBHeader) nor fenced by function end: the publish may never become durable", slot)
		delete(st.hdrDirty, slot)
	}
	if st.hdrPending.IsValid() {
		fo.pass.Report(st.hdrPending, "header publish without a trailing PSync/PFenceGlobal on this path: the new header value is flushed but not durably ordered")
		st.hdrPending = token.NoPos
	}
	if fo.inRecover {
		for recv, m := range st.dirty {
			for a, pos := range m {
				what := fmt.Sprintf("Store(%s)", a)
				if a == bulkAddr {
					what = "CopyFrom"
				}
				fo.pass.Report(pos, "recovery path leaves %s on %s unflushed at function end: the repaired state is lost on the next crash", what, recv)
			}
			delete(st.dirty, recv)
		}
		for recv, pos := range st.pwbPending {
			fo.pass.Report(pos, "recovery path flushes %s but never fences it before returning: the repaired state is not durably ordered", recv)
			delete(st.pwbPending, recv)
		}
	}
}

// call interprets a single call expression against the tracking state.
func (fo *fenceOrder) call(call *ast.CallExpr, st *fenceState) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		fo.helperCall(call, st)
		return
	}
	recvKind := pmemRecvKind(fo.info, sel.X)
	if recvKind == "" {
		fo.helperCall(call, st)
		return
	}
	recv := exprString(sel.X)
	name := sel.Sel.Name
	arg := func(i int) string {
		if i < len(call.Args) {
			return exprString(call.Args[i])
		}
		return ""
	}
	switch recvKind + "." + name {
	case "Region.Store":
		fo.markDirty(st, recv, arg(0), call.Pos())
	case "Region.StoreWords":
		// An aggregated store dirties the whole line range rooted at its
		// base address; it owes the same write-back before the next fence
		// as a store loop over the range would.
		fo.markDirty(st, recv, arg(0), call.Pos())
	case "Region.CopyFrom":
		fo.markDirty(st, recv, bulkAddr, call.Pos())
	case "Region.NTStoreLine", "Region.NTCopyFrom":
		// Non-temporal: bypasses the cache, needs only a fence.
		fo.markPending(st, recv, call.Pos())
	case "Region.PWB":
		fo.flushAddr(st, recv, arg(0))
		fo.markPending(st, recv, call.Pos())
	case "Region.FlushRange":
		delete(st.dirty, recv)
		fo.markPending(st, recv, call.Pos())
	case "Region.PFence":
		for a, pos := range st.dirty[recv] {
			fo.reportUnflushed(call, recv, a, pos)
		}
		delete(st.dirty, recv)
		delete(st.pwbPending, recv)
	case "Pool.HeaderStore", "Pool.HeaderCAS":
		st.hdrDirty[arg(0)] = call.Pos()
		st.hdrPending = call.Pos()
	case "Pool.PWBHeader":
		if _, ok := st.hdrDirty[arg(0)]; ok {
			delete(st.hdrDirty, arg(0))
		} else {
			// Unresolvable slot expression: assume it covers everything.
			clear(st.hdrDirty)
		}
	case "Pool.PSync":
		for slot, pos := range st.hdrDirty {
			fo.pass.Report(call.Pos(), "PSync with unflushed header store of slot %s (stored at line %d, no PWBHeader in between): the fence does not make it durable", slot, fo.pass.Fset.Position(pos).Line)
		}
		clear(st.hdrDirty)
		st.hdrPending = token.NoPos
	case "Pool.PFenceGlobal":
		for recv, m := range st.dirty {
			for a, pos := range m {
				fo.reportUnflushed(call, recv, a, pos)
			}
		}
		clear(st.dirty)
		clear(st.pwbPending)
		for slot, pos := range st.hdrDirty {
			fo.pass.Report(call.Pos(), "PFenceGlobal with unflushed header store of slot %s (stored at line %d, no PWBHeader in between): the fence does not make it durable", slot, fo.pass.Fset.Position(pos).Line)
		}
		clear(st.hdrDirty)
		st.hdrPending = token.NoPos
	}
}

func (fo *fenceOrder) reportUnflushed(fence *ast.CallExpr, recv, addr string, storePos token.Pos) {
	what := fmt.Sprintf("Store(%s)", addr)
	missing := "PWB"
	if addr == bulkAddr {
		what = "CopyFrom"
		missing = "FlushRange"
	}
	fo.pass.Report(fence.Pos(), "fence on %s with unflushed %s (stored at line %d, no %s in between): the fence does not make it durable", recv, what, fo.pass.Fset.Position(storePos).Line, missing)
}

// markDirty records an uncovered store.
func (fo *fenceOrder) markDirty(st *fenceState, recv, addr string, pos token.Pos) {
	if st.dirty[recv] == nil {
		st.dirty[recv] = make(map[string]token.Pos)
	}
	if _, ok := st.dirty[recv][addr]; !ok {
		st.dirty[recv][addr] = pos
	}
}

// markPending records a flush awaiting its ordering fence.
func (fo *fenceOrder) markPending(st *fenceState, recv string, pos token.Pos) {
	if _, ok := st.pwbPending[recv]; !ok {
		st.pwbPending[recv] = pos
	}
}

// flushAddr clears the dirty entries a PWB covers. A pwb flushes the whole
// cache line, so entries sharing the flushed address's base term (Store(n),
// Store(n+1), PWB(n) — nodes are line-aligned) are cleared together. A pwb
// whose address matches nothing we track (e.g. computed line addresses like
// PWB(line*WordsPerLine)) is assumed to cover the receiver's outstanding
// stores — the analyzer only insists that *some* flush separates a plain
// store from the fence.
func (fo *fenceOrder) flushAddr(st *fenceState, recv, addr string) {
	m := st.dirty[recv]
	if len(m) == 0 {
		return
	}
	base := baseTerm(addr)
	matched := false
	for a := range m {
		if a != bulkAddr && baseTerm(a) == base {
			delete(m, a)
			matched = true
		}
	}
	if !matched {
		// Keep bulk dirtiness: a single-line pwb cannot cover a copy.
		for a := range m {
			if a != bulkAddr {
				delete(m, a)
			}
		}
	}
	if len(m) == 0 {
		delete(st.dirty, recv)
	}
}

// helperCall interprets a non-pmem call through the callee's
// persistence-effect summary (peffects.go), so obligations flow across
// package boundaries. Effects are applied in the generous order — flushes
// first, then fences, then inherited stores and publish obligations — so a
// helper that flushes and fences the same region never reports its own
// covered stores against the caller.
func (fo *fenceOrder) helperCall(call *ast.CallExpr, st *fenceState) {
	callee := fo.pass.Prog.resolve(fo.info, call)
	if callee == nil {
		return
	}
	eff := fo.pass.Prog.Effect(callee)
	if eff.empty() {
		return
	}
	// Map callee effect indices to caller root expressions: -1 is the
	// method receiver, i the i'th argument.
	rootOf := func(j int) (string, bool) {
		if j == -1 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return exprString(sel.X), true
			}
			return "", false
		}
		if j < len(call.Args) {
			return exprString(call.Args[j]), true
		}
		return "", false
	}
	rooted := func(recv, root string) bool {
		return recv == root || strings.HasPrefix(recv, root+".")
	}
	// 1. Covering flushes: the callee writes back the region the caller
	// passed it, so the caller's outstanding stores rooted there are
	// covered (and now await a fence).
	for j := range eff.Flushes {
		root, ok := rootOf(j)
		if !ok {
			continue
		}
		cleared := false
		for recv := range st.dirty {
			if rooted(recv, root) {
				delete(st.dirty, recv)
				cleared = true
			}
		}
		if cleared {
			fo.markPending(st, root, call.Pos())
		}
	}
	// 2. Fences inside the callee are fence points for the caller's state
	// on that region: anything still unflushed here was not made durable.
	for j := range eff.Fences {
		root, ok := rootOf(j)
		if !ok {
			continue
		}
		for recv, m := range st.dirty {
			if !rooted(recv, root) {
				continue
			}
			for a, pos := range m {
				fo.reportUnflushedVia(call, callee, recv, a, pos)
			}
			delete(st.dirty, recv)
		}
		for recv := range st.pwbPending {
			if rooted(recv, root) {
				delete(st.pwbPending, recv)
			}
		}
	}
	// 3. A global fence (PSync/PFenceGlobal) anywhere under the callee is
	// a fence point for everything.
	if eff.FenceGlobal {
		for recv, m := range st.dirty {
			for a, pos := range m {
				fo.reportUnflushedVia(call, callee, recv, a, pos)
			}
		}
		clear(st.dirty)
		clear(st.pwbPending)
		for slot, pos := range st.hdrDirty {
			fo.pass.Report(call.Pos(), "call to %s fences with unflushed header store of slot %s (stored at line %d, no PWBHeader in between): the fence does not make it durable", callee.Name(), slot, fo.pass.Fset.Position(pos).Line)
		}
		clear(st.hdrDirty)
		st.hdrPending = token.NoPos
	}
	// 4. Stores the callee leaves unflushed dirty the caller's copy of the
	// region; the caller (or a later helper) owes the write-back.
	for j := range eff.StoresUnflushed {
		if root, ok := rootOf(j); ok {
			fo.markDirty(st, root, "<stores in "+callee.Name()+">", call.Pos())
		}
	}
	// 5. A header publish without a trailing global fence hands the caller
	// the trailing-fence obligation.
	if eff.PublishesUnfenced {
		st.hdrPending = call.Pos()
	}
}

func (fo *fenceOrder) reportUnflushedVia(call *ast.CallExpr, callee *types.Func, recv, addr string, storePos token.Pos) {
	what := fmt.Sprintf("Store(%s)", addr)
	missing := "PWB"
	if addr == bulkAddr {
		what = "CopyFrom"
		missing = "FlushRange"
	}
	fo.pass.Report(call.Pos(), "call to %s fences %s with unflushed %s (stored at line %d, no %s in between): the fence does not make it durable", callee.Name(), recv, what, fo.pass.Fset.Position(storePos).Line, missing)
}

// exprString renders an expression canonically (space-free), so that
// syntactically equal addresses compare equal regardless of source spacing.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.BasicLit:
		return e.Value
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.BinaryExpr:
		return exprString(e.X) + e.Op.String() + exprString(e.Y)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.CallExpr:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = exprString(a)
		}
		return exprString(e.Fun) + "(" + strings.Join(parts, ",") + ")"
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.CompositeLit:
		return "{…}"
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// baseTerm reduces an address expression to the term that determines its
// cache line for nearby offsets: conversions are stripped and the left
// operand of +/- chains is taken (base+1, base+2 → base). Multiplications
// and other shapes stay opaque.
func baseTerm(s string) string {
	for {
		switch {
		case strings.HasPrefix(s, "uint64(") && strings.HasSuffix(s, ")"):
			s = s[len("uint64(") : len(s)-1]
		default:
			// Cut at the first top-level + or -.
			depth := 0
			for i, r := range s {
				switch r {
				case '(', '[':
					depth++
				case ')', ']':
					depth--
				case '+', '-':
					if depth == 0 && i > 0 {
						return s[:i]
					}
				}
			}
			return s
		}
	}
}
