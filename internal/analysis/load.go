package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Pkg is one type-checked unit of the module: either a package's non-test
// files (Unit == "base"), the package augmented with its in-package _test.go
// files (Unit == "test"), or the external foo_test package (Unit == "xtest").
// Only base units serve as import targets; test units exist solely so the
// analyzers can see test code.
type Pkg struct {
	Path  string // import path, e.g. "repro/internal/ptm"
	Dir   string
	Unit  string // "base", "test" or "xtest"
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks every package of a module using only the
// standard library: module-internal imports are resolved by walking the
// module tree, everything else is handed to the go/importer source importer
// (which compiles the standard library from $GOROOT/src). This sidesteps the
// golang.org/x/tools dependency that go/packages would bring in, matching
// the repository's empty go.mod.
type Loader struct {
	Fset    *token.FileSet
	root    string // module root directory (holds go.mod)
	modPath string // module path from go.mod

	std  types.ImporterFrom
	base map[string]*Pkg // import path -> base unit (import target)
	errs []error
}

// NewLoader creates a loader for the module rooted at or above dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		Fset:    fset,
		root:    root,
		modPath: modPath,
		std:     std,
		base:    make(map[string]*Pkg),
	}, nil
}

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

// ModPath returns the module path declared in go.mod.
func (l *Loader) ModPath() string { return l.modPath }

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadAll loads every package under the module root, skipping testdata,
// hidden and underscore-prefixed directories. It returns all units (base,
// test and xtest) in deterministic order.
func (l *Loader) LoadAll() ([]*Pkg, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Pkg
	for _, dir := range dirs {
		units, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, units...)
	}
	if len(l.errs) > 0 {
		return out, fmt.Errorf("analysis: %d type error(s), first: %v", len(l.errs), l.errs[0])
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// LoadDir loads the package in a single directory (which must be inside the
// module), returning its base unit plus, when test files exist, the test and
// xtest units.
func (l *Loader) LoadDir(dir string) ([]*Pkg, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.root)
	}
	path := l.modPath
	if rel != "." {
		path = l.modPath + "/" + filepath.ToSlash(rel)
	}

	// The base unit may already be cached from an on-demand import; it must
	// be reused, not re-checked, or the module would contain two distinct
	// *types.Package instances for one import path and every cross-package
	// assignment between them would fail to type-check.
	bp := l.base[path]
	base, inTest, xTest, err := l.parseDir(dir, bp != nil)
	if err != nil {
		return nil, err
	}
	var out []*Pkg
	if bp == nil {
		bp, err = l.check(path, dir, "base", base)
		if err != nil {
			return nil, err
		}
		if bp != nil {
			l.base[path] = bp
		}
	}
	if bp != nil {
		out = append(out, bp)
	}
	var baseFiles []*ast.File
	if bp != nil {
		baseFiles = bp.Files
	}
	if len(inTest) > 0 {
		tp, err := l.check(path, dir, "test", append(append([]*ast.File{}, baseFiles...), inTest...))
		if err != nil {
			return nil, err
		}
		if tp != nil {
			out = append(out, tp)
		}
	}
	if len(xTest) > 0 {
		xp, err := l.check(path+"_test", dir, "xtest", xTest)
		if err != nil {
			return nil, err
		}
		if xp != nil {
			out = append(out, xp)
		}
	}
	return out, nil
}

// parseDir splits a directory's files into non-test, in-package test and
// external test files. With skipBase set, non-test files are not parsed
// (the caller already holds their syntax from the base-unit cache; parsing
// them again would give the same functions different positions and break
// cross-unit object matching).
func (l *Loader) parseDir(dir string, skipBase bool) (base, inTest, xTest []*ast.File, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		// Honor build constraints (//go:build lines and GOOS/GOARCH file
		// suffixes) under the default build context, exactly like the go
		// tool: a `//go:build race` file and its `!race` twin must not be
		// type-checked into the same unit.
		if ok, err := build.Default.MatchFile(dir, e.Name()); err != nil || !ok {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		if skipBase && !strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			base = append(base, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			xTest = append(xTest, f)
		default:
			inTest = append(inTest, f)
		}
	}
	return base, inTest, xTest, nil
}

// check type-checks one unit. Type errors are collected rather than fatal so
// a single bad file does not hide every other diagnostic.
func (l *Loader) check(path, dir, unit string, files []*ast.File) (*Pkg, error) {
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := &types.Config{
		Importer: (*modImporter)(l),
		Error:    func(err error) { l.errs = append(l.errs, err) },
	}
	tpkg, _ := cfg.Check(path, l.Fset, files, info)
	return &Pkg{Path: path, Dir: dir, Unit: unit, Files: files, Types: tpkg, Info: info}, nil
}

// Errors returns the type errors accumulated so far.
func (l *Loader) Errors() []error { return l.errs }

// modImporter resolves module-internal imports through the loader and
// everything else through the standard-library source importer.
type modImporter Loader

func (m *modImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *modImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(m)
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		if p, ok := l.base[path]; ok {
			return p.Types, nil
		}
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		dir := filepath.Join(l.root, filepath.FromSlash(rel))
		base, _, _, err := l.parseDir(dir, false)
		if err != nil {
			return nil, err
		}
		p, err := l.check(path, dir, "base", base)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("analysis: no Go files in %s", dir)
		}
		l.base[path] = p
		return p.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
