// Package fenceorder is a pmemvet fixture: positive and negative cases for
// the flush-before-fence dataflow checker.
package fenceorder

import "repro/internal/pmem"

// --- positive cases ---------------------------------------------------------

func storeWithoutPWB(r *pmem.Region) {
	r.Store(8, 1)
	r.PFence() // want "unflushed Store"
}

func publishWithoutPWBHeader(p *pmem.Pool) {
	p.HeaderStore(0, 1)
	p.PSync() // want "unflushed header store"
}

func publishWithoutTrailingFence(p *pmem.Pool) {
	p.HeaderStore(0, 1) // want "header publish without a trailing PSync/PFenceGlobal"
	p.PWBHeader(0)
}

func copyWithoutFlushRange(dst, src *pmem.Region) {
	dst.CopyFrom(src, 64)
	dst.PFence() // want "unflushed CopyFrom"
}

func conditionallyUnflushed(r *pmem.Region, dirty bool) {
	if dirty {
		r.Store(8, 1)
	}
	r.PFence() // want "unflushed Store"
}

func globalFenceSeesAllRegions(a, b *pmem.Region, p *pmem.Pool) {
	a.Store(8, 1)
	a.PWB(8)
	b.Store(16, 2)
	p.PFenceGlobal() // want `unflushed Store\(16\)`
}

// bulkStoreWithoutPWB: an aggregated StoreWords dirties the line range at
// its base address exactly like a store loop would — fencing without a
// write-back loses the whole payload.
func bulkStoreWithoutPWB(r *pmem.Region, words []uint64) {
	r.StoreWords(8, words)
	r.PFence() // want `unflushed Store\(8\)`
}

// --- negative cases ---------------------------------------------------------

func storeFlushedThenFenced(r *pmem.Region) {
	r.Store(8, 1)
	r.PWB(8)
	r.PFence()
}

// adjacentWordsShareALine: PWB flushes a whole cache line, so nearby
// offsets off the same base are covered by one pwb.
func adjacentWordsShareALine(r *pmem.Region, base uint64) {
	r.Store(base, 1)
	r.Store(base+1, 2)
	r.PWB(base)
	r.PFence()
}

func flushRangeCoversCopy(dst, src *pmem.Region) {
	dst.CopyFrom(src, 64)
	dst.FlushRange(0, 64)
	dst.PFence()
}

func nonTemporalNeedsNoFlush(r *pmem.Region, words []uint64) {
	r.NTStoreLine(0, words)
	r.PFence()
}

// bulkStoreFlushed: a pwb rooted at the same base term covers the bulk
// store's line range (the partial-line path of the redo bulk apply).
func bulkStoreFlushed(r *pmem.Region, words []uint64, base uint64) {
	r.StoreWords(base, words)
	r.PWB(base)
	r.PFence()
}

// bulkStoreFlushRangeCovers: FlushRange covers an aggregated store the same
// way it covers a CopyFrom.
func bulkStoreFlushRangeCovers(r *pmem.Region, words []uint64) {
	r.StoreWords(64, words)
	r.FlushRange(64, uint64(len(words)))
	r.PFence()
}

// bulkStoreThenNTLines mirrors redo's applyBulk: partial head stored and
// flushed, full lines non-temporal, one trailing fence orders both.
func bulkStoreThenNTLines(r *pmem.Region, head, line []uint64, base uint64) {
	r.StoreWords(base, head)
	r.PWB(base)
	r.NTStoreLine(8, line)
	r.PFence()
}

func fullPublishSequence(p *pmem.Pool) {
	p.HeaderStore(0, 1)
	p.PWBHeader(0)
	p.PSync()
}

func bothBranchesFlushed(r *pmem.Region, dirty bool) {
	if dirty {
		r.Store(8, 1)
		r.PWB(8)
	} else {
		r.Store(16, 2)
		r.PWB(16)
	}
	r.PFence()
}

// flushLoop mirrors onll's helping loop: the pwb addresses are computed, so
// they match no tracked store expression, and the loop body is assumed to
// run at least once — the fence is considered covered.
func flushLoop(r *pmem.Region, from, to uint64) {
	r.Store(from*8, 1)
	for s := from; s < to; s++ {
		r.PWB(s * 8)
	}
	r.PFence()
}

// flushAll is a flush helper: calling it counts as flushing its region
// argument (the romulus flushLines pattern).
func flushAll(r *pmem.Region, n uint64) {
	r.FlushRange(0, n)
}

func helperFlush(r *pmem.Region) {
	r.Store(8, 1)
	flushAll(r, 64)
	r.PFence()
}

// storeWithoutFenceInFunction never fences, so this function owes nothing:
// the caller issuing the fence is responsible (the redo replay pattern).
func storeWithoutFenceInFunction(r *pmem.Region) {
	r.Store(8, 1)
	r.PWB(8)
}

// --- intent publish ---------------------------------------------------------
// The sharded coordinator's batch-intent publish: a payload span plus header
// slots at distinct named constants, all flushed and fenced before the status
// flag is stored. Distinct named constants live on unrelated cache lines, so
// each needs its own pwb — one pwb on the first slot covers none of the rest.

const (
	fixSeq    uint64 = 17
	fixLen    uint64 = 18
	fixCRC    uint64 = 19
	fixStatus uint64 = 16
)

func intentPublishSharedPWB(r *pmem.Region) {
	r.Store(fixSeq, 7)
	r.Store(fixLen, 3)
	r.Store(fixCRC, 0xbeef)
	r.PWB(fixSeq)
	r.PFence() // want `unflushed Store\(fixLen\)` `unflushed Store\(fixCRC\)`
}

func intentPublishFull(r *pmem.Region, words []uint64) {
	for i, w := range words {
		r.Store(24+uint64(i), w)
	}
	r.FlushRange(24, uint64(len(words)))
	r.Store(fixSeq, 7)
	r.Store(fixLen, uint64(len(words)))
	r.Store(fixCRC, 0xbeef)
	r.PWB(fixSeq)
	r.PWB(fixLen)
	r.PWB(fixCRC)
	r.PFence()
	r.Store(fixStatus, 1)
	r.PWB(fixStatus)
	r.PFence()
}

// --- recovery paths ----------------------------------------------------------
// Functions named Recover*/recover* are publish paths: any repair they make
// must be flushed AND fenced before they return, because the caller assumes
// the recovered image survives an immediate second crash.

func recoverLeavesUnflushed(r *pmem.Region) {
	r.Store(8, 1) // want "recovery path leaves"
}

func recoverFlushWithoutFence(r *pmem.Region) {
	r.Store(8, 1)
	r.PWB(8) // want "recovery path flushes"
}

// recoverPSyncIsNotEnough: PSync orders header slots only; region lines
// flushed during repair still need a PFence.
func recoverPSyncIsNotEnough(r *pmem.Region, p *pmem.Pool) {
	r.Store(8, 1)
	r.PWB(8) // want "recovery path flushes"
	p.HeaderStore(0, 1)
	p.PWBHeader(0)
	p.PSync()
}

func recoverRepairAndFence(r *pmem.Region) {
	r.Store(8, 1)
	r.PWB(8)
	r.PFence()
}

func RecoverThenPublish(r *pmem.Region, p *pmem.Pool) {
	r.Store(8, 1)
	r.PWB(8)
	r.PFence()
	p.HeaderStore(0, 1)
	p.PWBHeader(0)
	p.PSync()
}

func recoverGlobalFenceCoversAll(a, b *pmem.Region, p *pmem.Pool) {
	a.Store(8, 1)
	a.PWB(8)
	b.CopyFrom(a, 64)
	b.FlushRange(0, 64)
	p.PFenceGlobal()
}
