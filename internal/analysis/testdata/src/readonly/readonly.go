// Package readonly is a pmemvet fixture: positive and negative cases for
// the Read-closure mutation checker.
package readonly

import "repro/internal/ptm"

type engine struct{}

func (engine) Update(tid int, fn func(ptm.Mem) uint64) uint64 { return fn(nil) }
func (engine) Read(tid int, fn func(ptm.Mem) uint64) uint64   { return fn(nil) }

// --- positive cases ---------------------------------------------------------

func storeInRead(e engine) uint64 {
	return e.Read(0, func(m ptm.Mem) uint64 {
		m.Store(8, 1) // want `calls \(ptm\.Mem\)\.Store`
		return m.Load(8)
	})
}

func allocInRead(e engine) uint64 {
	return e.Read(0, func(m ptm.Mem) uint64 {
		return m.Alloc(4) // want `calls \(ptm\.Mem\)\.Alloc`
	})
}

func freeInRead(e engine) {
	e.Read(0, func(m ptm.Mem) uint64 {
		m.Free(m.Load(0)) // want `calls \(ptm\.Mem\)\.Free`
		return 0
	})
}

// push hides the Store one call away; the mutation summary must carry it
// back to the Read closure.
func push(m ptm.Mem, v uint64) {
	top := m.Load(0)
	m.Store(top+1, v)
	m.Store(0, top+1)
}

func transitiveStoreInRead(e engine) {
	e.Read(0, func(m ptm.Mem) uint64 {
		push(m, 7) // want "calls push, which calls"
		return 0
	})
}

// The one-hop variable flow must be tracked too: the closure is assigned to
// a local before reaching Read.
func storeViaVariable(e engine) {
	fn := func(m ptm.Mem) uint64 {
		m.Store(8, 1) // want `calls \(ptm\.Mem\)\.Store`
		return 0
	}
	e.Read(0, fn)
}

// --- negative cases ---------------------------------------------------------

// loadsOnly is the intended shape of a read transaction.
func loadsOnly(e engine) uint64 {
	return e.Read(0, func(m ptm.Mem) uint64 {
		sum := uint64(0)
		for i := uint64(0); i < 8; i++ {
			sum += m.Load(i)
		}
		return sum
	})
}

// storeInUpdate is not readonly's business — update closures may mutate.
func storeInUpdate(e engine) uint64 {
	return e.Update(0, func(m ptm.Mem) uint64 {
		m.Store(8, 1)
		return 0
	})
}

// pureHelperInRead calls a helper that only loads; no diagnostic.
func sum(m ptm.Mem, n uint64) uint64 {
	s := uint64(0)
	for i := uint64(0); i < n; i++ {
		s += m.Load(i)
	}
	return s
}

func pureHelperInRead(e engine) uint64 {
	return e.Read(0, func(m ptm.Mem) uint64 {
		return sum(m, 8)
	})
}
