// Package tidrange is a pmemvet fixture: positive and negative cases for
// the literal-thread-id range checker.
package tidrange

import "repro/internal/ptm"

// Engine mimics a construction sized by Config.Threads.
type Config struct {
	Threads int
	Verbose bool
}

type Engine struct{ n int }

func New(cfg Config) *Engine { return &Engine{cfg.Threads} }

func (e *Engine) Update(tid int, fn func(ptm.Mem) uint64) uint64 { return 0 }
func (e *Engine) Read(tid int, fn func(ptm.Mem) uint64) uint64   { return 0 }

// Queue mimes the handmade constructors, which take a bare threads param.
type Queue struct{ n int }

func NewQueue(threads int) *Queue { return &Queue{threads} }

func (q *Queue) Enqueue(tid int, v uint64) {}

// --- positive cases ---------------------------------------------------------

func tidEqualToCount() {
	e := New(Config{Threads: 2})
	e.Update(2, nil) // want "thread id 2 out of range"
}

func tidAboveCount() {
	e := New(Config{Threads: 2})
	e.Read(7, nil) // want "thread id 7 out of range"
}

func negativeTid() {
	e := New(Config{Threads: 4})
	e.Update(-1, nil) // want "thread id -1 out of range"
}

const workers = 3

func namedConstantTid() {
	e := New(Config{Threads: workers})
	e.Update(workers, nil) // want "thread id 3 out of range"
}

func bareThreadsParam() {
	q := NewQueue(2)
	q.Enqueue(2, 9) // want "thread id 2 out of range"
}

// --- negative cases ---------------------------------------------------------

func tidsInRange() {
	e := New(Config{Threads: 2})
	e.Update(0, nil)
	e.Update(1, nil)
	e.Read(1, nil)
	q := NewQueue(4)
	q.Enqueue(3, 9)
}

func variableTidIsNotChecked(tid int) {
	e := New(Config{Threads: 2})
	e.Update(tid, nil) // dynamic: nothing to prove statically
}

func variableThreadCountIsNotTracked(n int) {
	e := New(Config{Threads: n})
	e.Update(9, nil) // count unknown at compile time
}

func reassignedEngineIsDropped(n int) {
	e := New(Config{Threads: 1})
	e = New(Config{Threads: n})
	e.Update(5, nil) // count no longer known
}
