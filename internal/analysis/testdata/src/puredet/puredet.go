// Package puredet is a pmemvet fixture: positive and negative cases for the
// determinism checker. Lines carrying a golden-expectation comment must
// produce a matching diagnostic; all other lines must stay silent.
package puredet

import (
	"math/rand"
	"time"

	"repro/internal/ptm"
)

// engine mimics a construction entry point: any method with a
// func(ptm.Mem) uint64 parameter is a transaction boundary.
type engine struct{}

func (engine) Update(tid int, fn func(ptm.Mem) uint64) uint64 { return fn(nil) }
func (engine) Read(tid int, fn func(ptm.Mem) uint64) uint64   { return fn(nil) }

// --- positive cases ---------------------------------------------------------

func clockInsideClosure(e engine) uint64 {
	return e.Update(0, func(m ptm.Mem) uint64 {
		return uint64(time.Now().UnixNano()) // want "calls time.Now"
	})
}

func randInsideClosure(e engine) uint64 {
	return e.Update(0, func(m ptm.Mem) uint64 {
		return uint64(rand.Int63()) // want "calls rand.Int63"
	})
}

func capturedWrite(e engine) uint64 {
	var count uint64
	e.Update(0, func(m ptm.Mem) uint64 {
		count++ // want "writes captured variable"
		return 0
	})
	return count
}

func channelReceive(e engine, ch chan uint64) uint64 {
	return e.Update(0, func(m ptm.Mem) uint64 {
		return <-ch // want "receives from a channel"
	})
}

func mapRangeFeedingStore(e engine, vals map[uint64]uint64) {
	e.Update(0, func(m ptm.Mem) uint64 {
		for k, v := range vals { // want "map iteration feeding persistent stores"
			m.Store(k, v)
		}
		return 0
	})
}

// nowHelper hides the clock read one call away; the fixed-point summary
// must still see it.
func nowHelper() uint64 { return uint64(time.Now().UnixNano()) }

func transitiveClock(e engine) uint64 {
	return e.Update(0, func(m ptm.Mem) uint64 {
		return nowHelper() // want "calls nowHelper, which calls time.Now"
	})
}

// --- negative cases ---------------------------------------------------------

// pureClosure only loads, stores and computes: deterministic, nothing
// escapes except the return value.
func pureClosure(e engine) uint64 {
	return e.Update(0, func(m ptm.Mem) uint64 {
		v := m.Load(8) + 1
		m.Store(8, v)
		return v
	})
}

// capturedRead reads (but never writes) enclosing state; re-execution sees
// the same value, so this is allowed.
func capturedRead(e engine, delta uint64) uint64 {
	return e.Update(0, func(m ptm.Mem) uint64 {
		v := m.Load(8) + delta
		m.Store(8, v)
		return v
	})
}

// localWrites mutate variables declared inside the closure; each execution
// gets a fresh copy.
func localWrites(e engine) uint64 {
	return e.Update(0, func(m ptm.Mem) uint64 {
		sum := uint64(0)
		for i := uint64(0); i < 4; i++ {
			sum += m.Load(i)
		}
		return sum
	})
}

// sliceRangeWithStore is fine: slice iteration order is deterministic, only
// map iteration is randomized.
func sliceRangeWithStore(e engine, vals []uint64) {
	e.Update(0, func(m ptm.Mem) uint64 {
		for i, v := range vals {
			m.Store(uint64(i), v)
		}
		return 0
	})
}

// rngOutsideClosure draws randomness before entering the transaction — the
// closure itself is a pure function of the drawn value. This is the
// workload-generator pattern used by internal/bench.
func rngOutsideClosure(e engine, rng *rand.Rand) {
	k := uint64(rng.Int63())
	e.Update(0, func(m ptm.Mem) uint64 {
		m.Store(8, k)
		return 0
	})
}
