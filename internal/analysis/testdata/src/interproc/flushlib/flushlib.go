// Package flushlib is the helper side of the interproc pmemvet fixture: it
// performs flushes, fences, stores and header publishes on behalf of its
// callers, so the obligations must flow across the package boundary through
// the Program's persistence-effect summaries.
package flushlib

import "repro/internal/pmem"

// FlushAndFence writes back and orders n lines starting at base: a covering
// flush helper, discharging the caller's dirty stores.
func FlushAndFence(r *pmem.Region, base, n uint64) {
	for i := uint64(0); i < n; i++ {
		r.PWB(base + i)
	}
	r.PFence()
}

// FenceOnly orders previously-flushed lines. A caller with unflushed stores
// reaching this fence has a durability bug.
func FenceOnly(r *pmem.Region) {
	r.PFence()
}

// StoreNoFlush writes a word and deliberately leaves the write-back and the
// fence to the caller: the caller inherits the dirty line.
func StoreNoFlush(r *pmem.Region, addr, v uint64) {
	r.Store(addr, v)
}

// Publish stores and flushes a header slot; the trailing global fence is
// deliberately the caller's job, so the obligation crosses the package
// boundary.
//
//pmemvet:allow:fenceorder -- fixture helper: hands the trailing-fence obligation to its caller on purpose
func Publish(p *pmem.Pool, slot int, v uint64) {
	p.HeaderStore(slot, v)
	p.PWBHeader(slot)
}
