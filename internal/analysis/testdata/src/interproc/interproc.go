// Package interproc is a pmemvet fixture for the interprocedural fenceorder
// pass: flush, fence, store and publish obligations crossing a package
// boundary through persistence-effect summaries. Every positive case here
// was invisible to the old intra-procedural pass, which only saw
// same-package flush helpers (regression fixture for the whole-program
// upgrade).
package interproc

import (
	"repro/internal/analysis/testdata/src/interproc/flushlib"
	"repro/internal/pmem"
)

// --- negative cases: obligations discharged through the helper package ----

// storeThenHelperFlush: the callee both flushes and fences the region the
// caller dirtied, so no obligation remains.
func storeThenHelperFlush(r *pmem.Region) {
	r.Store(8, 1)
	r.Store(9, 2)
	flushlib.FlushAndFence(r, 8, 2)
}

// publishDischargedByCaller: the helper publishes the header; this caller
// supplies the trailing fence the helper omitted.
func publishDischargedByCaller(p *pmem.Pool) {
	flushlib.Publish(p, 0, 1)
	p.PSync()
}

// recoverRepairsViaHelpers: a recovery path may delegate both the store and
// the write-back, as long as everything is fenced by return.
func recoverRepairsViaHelpers(r *pmem.Region) {
	flushlib.StoreNoFlush(r, 8, 1)
	flushlib.FlushAndFence(r, 8, 1)
}

// --- positive cases: the old intra-procedural pass missed all of these ----

// helperFencesUnflushedStore: the fence happens inside the other package;
// the store was never flushed, so that fence does not make it durable.
func helperFencesUnflushedStore(r *pmem.Region) {
	r.Store(8, 1)
	flushlib.FenceOnly(r) // want `call to FenceOnly fences r with unflushed Store\(8\)`
}

// helperStoreLeftUnflushed: the callee dirties the region; this caller
// fences without a write-back.
func helperStoreLeftUnflushed(r *pmem.Region) {
	flushlib.StoreNoFlush(r, 8, 1)
	r.PFence() // want `unflushed Store\(<stores in StoreNoFlush>\)`
}

// publishObligationCrossesPackages: Publish stores the header slot in
// flushlib; this caller never issues the trailing global fence.
func publishObligationCrossesPackages(p *pmem.Pool) {
	flushlib.Publish(p, 0, 1) // want "header publish without a trailing PSync/PFenceGlobal"
}

// recoverLeavesHelperStoreUnflushed: a recovery path inheriting a dirty
// line from another package must still drain it before returning.
func recoverLeavesHelperStoreUnflushed(r *pmem.Region) {
	flushlib.StoreNoFlush(r, 8, 1) // want `recovery path leaves Store\(<stores in StoreNoFlush>\) on r unflushed`
}

// --- receiver-rooted effects ----------------------------------------------

type writer struct {
	r *pmem.Region
}

// flushAll discharges the receiver's region through a method: effect
// summaries track the receiver as parameter -1.
func (w *writer) flushAll() {
	w.r.FlushRange(0, 64)
	w.r.PFence()
}

// methodFlushCoversStore: negative — the method flushes and fences the
// region reached through the receiver.
func (w *writer) methodFlushCoversStore() {
	w.r.Store(8, 1)
	w.flushAll()
}
