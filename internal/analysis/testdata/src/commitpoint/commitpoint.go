// Package commitpoint is a pmemvet fixture for the record-publication
// (torn-publish) checker: a multi-word payload must be flushed and fenced
// before its single-word commit/status store, the commit store must be the
// last store into the record on every path, and header publications must
// not race their payload to durability.
package commitpoint

import "repro/internal/pmem"

const (
	payload = 8
	status  = 16
)

// --- negative cases: the idiom done right ---------------------------------

// publishRecord: payload stores, covering flush, fence, then the
// single-word commit store, its own flush and fence.
func publishRecord(r *pmem.Region) {
	r.Store(payload, 1)
	r.Store(payload+1, 2)
	r.PWB(payload)
	r.PFence()
	r.Store(status, 1)
	r.PWB(status)
	r.PFence()
}

// publishBulk: a bulk copy covered by FlushRange before the commit.
func publishBulk(dst, src *pmem.Region) {
	dst.CopyFrom(src, 64)
	dst.FlushRange(0, 64)
	dst.PFence()
	dst.Store(status, 1)
	dst.PWB(status)
	dst.PFence()
}

// retireRecord: a constant-zero commit store clears the valid bit, making
// the record invisible to recovery — only the flush check applies, so an
// unfenced flush outstanding at the retirement is fine (shardeddb's
// completeIntent pattern).
func retireRecord(r *pmem.Region) {
	r.Store(payload, 7)
	r.PWB(payload)
	r.Store(status, 0)
	r.PWB(status)
	r.PFence()
}

// flushFence is a same-package helper; its effect summary discharges the
// caller's payload obligations.
func flushFence(r *pmem.Region) {
	r.FlushRange(0, 64)
	r.PFence()
}

// publishViaHelper: payload made durable through the helper, then commit.
func publishViaHelper(r *pmem.Region) {
	r.Store(payload, 1)
	flushFence(r)
	r.Store(status, 1)
	r.PWB(status)
	r.PFence()
}

// headerAfterDurablePayload: the header publish happens only after the
// region payload is flushed and fenced.
func headerAfterDurablePayload(r *pmem.Region, p *pmem.Pool) {
	r.Store(payload, 1)
	r.PWB(payload)
	r.PFence()
	p.HeaderStore(0, 1)
	p.PWBHeader(0)
	p.PSync()
}

// --- dedup-receipt cases --------------------------------------------------
//
// The detectable-operation receipt is a two-word record [digest, seq]: the
// seq word is the commit word — recovery treats a receipt as present exactly
// when its seq matches the request — so the digest must be durable first.

const (
	rcptDigest    = 24
	rcptSeqCommit = 25
)

// publishReceipt: the idiom done right — digest flushed and fenced, then the
// single-word seq commit store.
func publishReceipt(r *pmem.Region) {
	r.Store(rcptDigest, 0xd1)
	r.PWB(rcptDigest)
	r.PFence()
	r.Store(rcptSeqCommit, 7)
	r.PWB(rcptSeqCommit)
	r.PFence()
}

// --- durable-epoch watermark cases ----------------------------------------
//
// Buffered durability publishes the watermark through the pool header: the
// sealed epoch's replica is group-flushed and fenced, and only then does the
// single-word header slot advance to name it. The watermark IS the commit
// word one level up — recovery adopts whatever replica the header names, so
// it must never race the epoch payload to durability, and it must never be
// published as a multi-word store.

const wmCommit = 32

// advanceWatermark: redo.Persist's idiom done right — the epoch's dirty
// lines group-flushed, one fence for the whole group, then the header
// publish of the watermark (its own write-back and psync).
func advanceWatermark(r *pmem.Region, p *pmem.Pool) {
	r.Store(payload, 1)
	r.Store(payload+1, 2)
	r.FlushRange(0, 64)
	r.PFence()
	p.HeaderStore(0, 1)
	p.PWBHeader(0)
	p.PSync()
}

// --- allocator bitmap-word cases ------------------------------------------
//
// The arena allocator publishes an allocation as a single bitmap-word
// store: setting a block's bit makes it allocated, so recovery's
// reachability pass treats its words as live. The block's contents must be
// durable before the bit lands, or a crash exposes a live block of garbage.

const (
	blockBody    = 40
	bitmapCommit = 48
)

// publishBitmapBit: the allocator's idiom done right — block contents
// flushed and fenced, then the single bitmap-word store, its own
// write-back and fence.
func publishBitmapBit(r *pmem.Region) {
	r.Store(blockBody, 0xb10c)
	r.Store(blockBody+1, 0xb10c)
	r.PWB(blockBody)
	r.PFence()
	r.Store(bitmapCommit, 1<<3)
	r.PWB(bitmapCommit)
	r.PFence()
}

// --- positive cases -------------------------------------------------------

// commitWhileUnflushed: the commit word can become durable before the
// payload it validates.
func commitWhileUnflushed(r *pmem.Region) {
	r.Store(payload, 1)
	r.Store(status, 1) // want `commit store to status while Store\(payload\) on r is unflushed`
	r.PWB(status)
	r.PFence()
}

// commitBeforeFence: flushed but not yet fenced — under adversarial
// eviction the commit word may still overtake the payload.
func commitBeforeFence(r *pmem.Region) {
	r.Store(payload, 1)
	r.PWB(payload)
	r.Store(status, 1) // want `commit store to status before the payload flush on r is fenced`
	r.PWB(status)
	r.PFence()
}

// retireUnflushedPayload: retirement skips the fence check but still
// requires the payload write-back.
func retireUnflushedPayload(r *pmem.Region) {
	r.Store(payload, 3)
	r.Store(status, 0) // want `commit store to status while Store\(payload\) on r is unflushed`
	r.PWB(status)
	r.PFence()
}

// multiWordCommit: a commit word inside a multi-word store can tear.
func multiWordCommit(r *pmem.Region, words []uint64) {
	r.StoreWords(status, words) // want `commit word status published with a multi-word StoreWords`
}

// storeAfterCommit: the commit store must be the last store of the record
// on every path.
func storeAfterCommit(r *pmem.Region) {
	r.Store(payload, 1)
	r.PWB(payload)
	r.PFence()
	r.Store(status, 1)
	r.Store(payload+2, 9) // want `store into r after the commit store`
	r.PWB(status)
	r.PFence()
}

// commitOnBranch: one path fences the payload, the other does not; the
// merge keeps the dirty state.
func commitOnBranch(r *pmem.Region, fast bool) {
	r.Store(payload, 1)
	if fast {
		r.PWB(payload)
		r.PFence()
	}
	r.Store(status, 1) // want `commit store to status while Store\(payload\) on r is unflushed`
	r.PWB(status)
	r.PFence()
}

// headerWhileDirty: the header may become durable before the data it
// publishes.
func headerWhileDirty(r *pmem.Region, p *pmem.Pool) {
	r.Store(payload, 1)
	p.HeaderStore(0, 1) // want `header publish with unflushed payload Store\(payload\) on r`
	p.PWBHeader(0)
	p.PSync()
}

// receiptSeqWhileDigestDirty: the seq word published while the digest may
// still be volatile — a crash could expose a receipt whose digest is garbage,
// and a retry would then be misjudged as a mismatch.
func receiptSeqWhileDigestDirty(r *pmem.Region) {
	r.Store(rcptDigest, 0xd1)
	r.Store(rcptSeqCommit, 7) // want `commit store to rcptSeqCommit while Store\(rcptDigest\) on r is unflushed`
	r.PWB(rcptSeqCommit)
	r.PFence()
}

// receiptSeqBeforeDigestFence: flushed digest still needs its fence before
// the seq can safely publish the receipt.
func receiptSeqBeforeDigestFence(r *pmem.Region) {
	r.Store(rcptDigest, 0xd1)
	r.PWB(rcptDigest)
	r.Store(rcptSeqCommit, 7) // want `commit store to rcptSeqCommit before the payload flush on r is fenced`
	r.PWB(rcptSeqCommit)
	r.PFence()
}

// headerBeforePayloadFence: flushed payload still needs its fence before
// the header can safely publish it.
func headerBeforePayloadFence(r *pmem.Region, p *pmem.Pool) {
	r.Store(payload, 1)
	r.PWB(payload)
	p.HeaderStore(0, 1) // want `header publish before the payload flush on r is fenced`
	p.PWBHeader(0)
	p.PSync()
}

// bitmapBitWhileBlockDirty: the bitmap word published while the block
// contents may still be volatile — recovery would mark a garbage block live.
func bitmapBitWhileBlockDirty(r *pmem.Region) {
	r.Store(blockBody, 0xb10c)
	r.Store(bitmapCommit, 1<<3) // want `commit store to bitmapCommit while Store\(blockBody\) on r is unflushed`
	r.PWB(bitmapCommit)
	r.PFence()
}

// bitmapBitBeforeBlockFence: flushed block contents still need their fence
// before the bit can safely publish the allocation.
func bitmapBitBeforeBlockFence(r *pmem.Region) {
	r.Store(blockBody, 0xb10c)
	r.PWB(blockBody)
	r.Store(bitmapCommit, 1<<3) // want `commit store to bitmapCommit before the payload flush on r is fenced`
	r.PWB(bitmapCommit)
	r.PFence()
}

// tornWatermark: a watermark kept as an in-region two-word record [idx, seq]
// and published with one StoreWords — the two words can tear independently,
// leaving a durable watermark naming a replica it never covered. The
// engines avoid this by packing idx+seq into the single header word.
func tornWatermark(r *pmem.Region, pair []uint64) {
	r.StoreWords(wmCommit, pair) // want `commit word wmCommit published with a multi-word StoreWords`
}

// watermarkBeforeSealFence: the epoch's dirty lines are flushed but the seal
// fence has not landed; the watermark may overtake the epoch it covers.
func watermarkBeforeSealFence(r *pmem.Region, p *pmem.Pool) {
	r.Store(payload, 1)
	r.FlushRange(0, 64)
	p.HeaderStore(0, 1) // want `header publish before the payload flush on r is fenced`
	p.PWBHeader(0)
	p.PSync()
}
