// Package transientref is a pmemvet fixture for the transient-value taint
// checker: values derived from DRAM machine addresses (uintptr /
// unsafe.Pointer, directly or laundered through conversions, arithmetic,
// variables and helper functions) must never reach a persistent store —
// they are meaningless after restart.
package transientref

import (
	"repro/internal/pmem"
	"unsafe"
)

// --- positive cases -------------------------------------------------------

// storeAddress: the classic bug — persisting a heap address.
func storeAddress(r *pmem.Region, x *uint64) {
	a := uint64(uintptr(unsafe.Pointer(x)))
	r.Store(8, a) // want "transient value"
}

// storeUintptrParam: a uintptr-typed parameter is an address by type.
func storeUintptrParam(r *pmem.Region, p uintptr) {
	r.Store(8, uint64(p)) // want "transient value"
}

// storeLaundered: taint survives variables and arithmetic.
func storeLaundered(r *pmem.Region, x *uint64) {
	tmp := uintptr(unsafe.Pointer(x))
	v := uint64(tmp) + 64
	r.Store(8, v) // want "transient value"
}

// disguise hides the address behind a call boundary; the taint summary
// carries it back to the caller.
func disguise(x *uint64) uint64 {
	return uint64(uintptr(unsafe.Pointer(x)))
}

// storeDisguised: a helper's return value stays tainted.
func storeDisguised(r *pmem.Region, x *uint64) {
	r.Store(8, disguise(x)) // want "transient value"
}

// persist forwards its argument into a persistent store, making its
// parameter a sink at every call site.
func persist(r *pmem.Region, v uint64) {
	r.Store(8, v)
}

// storeViaHelper: the sink is inside the helper; the address flows in here.
func storeViaHelper(r *pmem.Region, x *uint64) {
	persist(r, uint64(uintptr(unsafe.Pointer(x)))) // want "passed to persist"
}

// publishAddress: header slots are publish words; an address there is a
// wild pointer for recovery.
func publishAddress(p *pmem.Pool, x *uint64) {
	p.HeaderStore(0, uint64(uintptr(unsafe.Pointer(x)))) // want "transient value"
}

// storeWordsAddress: taint through a composite-literal payload.
func storeWordsAddress(r *pmem.Region, x *uint64) {
	words := []uint64{uint64(uintptr(unsafe.Pointer(x)))}
	r.StoreWords(8, words) // want "transient value"
}

// --- negative cases -------------------------------------------------------

// storeOffsets: plain word offsets and values are the intended currency of
// the persistent image.
func storeOffsets(r *pmem.Region, addr, v uint64) {
	r.Store(addr, v)
}

// storeSizeofConstant: unsafe.Sizeof is a compile-time constant, not an
// address.
func storeSizeofConstant(r *pmem.Region) {
	r.Store(8, uint64(unsafe.Sizeof(uint64(0))))
}

// lenOfSliceIsClean: len/cap of a DRAM container are values, not addresses.
func lenOfSliceIsClean(r *pmem.Region, xs []uint64) {
	r.Store(8, uint64(len(xs)))
}

// overwrittenClean: a clean reassignment kills the taint.
func overwrittenClean(r *pmem.Region, x *uint64) {
	v := uint64(uintptr(unsafe.Pointer(x)))
	v = 42
	r.Store(8, v)
}

// cleanHelperIsClean: calling a sink helper with untainted values is fine.
func cleanHelperIsClean(r *pmem.Region, v uint64) {
	persist(r, v+1)
}
