package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the quoted regexes of a `// want "..." "..."` golden
// expectation comment. Both double-quoted and backquoted strings are
// accepted (backquotes keep regex metacharacters readable).
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

var wantArgRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// runFixture loads one fixture package under testdata/src and checks the
// analyzer's diagnostics against the `// want` comments: every want must be
// matched by a diagnostic on its line, and every diagnostic must be matched
// by a want.
func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	// Fixtures may carry helper subpackages (the cross-package obligation
	// cases); load them too so the Program indexes their bodies and Run
	// sees their allow directives. LoadDir reuses the unit already cached
	// by the import resolver, so the types stay identical.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir(%s): %v", dir, err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub, err := loader.LoadDir(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("LoadDir(%s/%s): %v", dir, e.Name(), err)
		}
		pkgs = append(pkgs, sub...)
	}
	if errs := loader.Errors(); len(errs) > 0 {
		t.Fatalf("fixture %s has type errors: %v", fixture, errs[0])
	}

	type wantKey struct {
		file string
		line int
	}
	wants := make(map[wantKey][]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := loader.Fset.Position(c.Pos())
					key := wantKey{pos.Filename, pos.Line}
					for _, q := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
						if q[1] != "" {
							wants[key] = append(wants[key], q[1])
						} else {
							wants[key] = append(wants[key], q[2])
						}
					}
				}
			}
		}
	}

	diags := Run(pkgs, loader.Fset, []*Analyzer{a})
	matched := make(map[string]bool) // "file:line:i" -> want consumed
	for _, d := range diags {
		key := wantKey{d.Pos.Filename, d.Pos.Line}
		ok := false
		for i, w := range wants[key] {
			id := fmt.Sprintf("%s:%d:%d", key.file, key.line, i)
			if matched[id] {
				continue
			}
			re, err := regexp.Compile(w)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", key.file, key.line, w, err)
			}
			if re.MatchString(d.Message) {
				matched[id] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for key, ws := range wants {
		for i, w := range ws {
			id := fmt.Sprintf("%s:%d:%d", key.file, key.line, i)
			if !matched[id] {
				t.Errorf("%s:%d: no %s diagnostic matched want %q", key.file, key.line, a.Name, w)
			}
		}
	}
}

func TestPureDetFixtures(t *testing.T)    { runFixture(t, PureDet, "puredet") }
func TestReadOnlyFixtures(t *testing.T)   { runFixture(t, ReadOnly, "readonly") }
func TestFenceOrderFixtures(t *testing.T) { runFixture(t, FenceOrder, "fenceorder") }
func TestTidRangeFixtures(t *testing.T)   { runFixture(t, TidRange, "tidrange") }

// TestFenceOrderInterprocFixtures is the regression fixture for the
// whole-program upgrade: every positive case routes an obligation through
// a helper package, which the old intra-procedural pass could not see.
func TestFenceOrderInterprocFixtures(t *testing.T) { runFixture(t, FenceOrder, "interproc") }

func TestCommitPointFixtures(t *testing.T)  { runFixture(t, CommitPoint, "commitpoint") }
func TestTransientRefFixtures(t *testing.T) { runFixture(t, TransientRef, "transientref") }

// TestPmemvetClean runs the whole suite over the repository itself, so a
// plain `go test ./...` fails the moment a new violation is introduced,
// even where CI is not wired up. This is the same check `ci.sh` runs via
// cmd/pmemvet.
func TestPmemvetClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	var diags []Diagnostic
	for _, d := range Run(pkgs, loader.Fset, All()) {
		diags = append(diags, d)
	}
	if len(diags) > 0 {
		var b strings.Builder
		for _, d := range diags {
			fmt.Fprintf(&b, "  %s\n", d)
		}
		t.Errorf("pmemvet found %d violation(s) in the repository:\n%s", len(diags), b.String())
	}
}

// TestAllowDirectiveRequiresReason pins the suppression grammar: a bare
// directive without the `-- reason` tail must not silence anything.
func TestAllowDirectiveRequiresReason(t *testing.T) {
	for text, want := range map[string]bool{
		"//pmemvet:allow readonly -- asserts the runtime panic": true,
		"//pmemvet:allow readonly":                              false,
		"//pmemvet:allow readonly --":                           false,
		"//pmemvet:allow readonly -- ":                          false,
		"// pmemvet:allow readonly -- spaced out":               false,
	} {
		if got := allowRe.MatchString(text); got != want {
			t.Errorf("allowRe.MatchString(%q) = %v, want %v", text, got, want)
		}
	}
}

// TestScopedAllowDirectiveGrammar pins the function-scoped suppression
// grammar: the analyzer name is attached with a colon and the `-- reason`
// tail stays mandatory.
func TestScopedAllowDirectiveGrammar(t *testing.T) {
	for text, want := range map[string]bool{
		"//pmemvet:allow:fenceorder -- deliberate fence elision": true,
		"//pmemvet:allow:commitpoint -- torn on purpose":         true,
		"//pmemvet:allow:fenceorder":                             false,
		"//pmemvet:allow:fenceorder --":                          false,
		"//pmemvet:allow:fenceorder -- ":                         false,
		"//pmemvet:allow fenceorder -- not the scoped form":      false,
		"// pmemvet:allow:fenceorder -- spaced out":              false,
	} {
		if got := scopedAllowRe.MatchString(text); got != want {
			t.Errorf("scopedAllowRe.MatchString(%q) = %v, want %v", text, got, want)
		}
	}
}
