package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TransientRef flags transient values — values derived from DRAM addresses —
// flowing into persistent stores. A uintptr produced from a pointer, an
// unsafe.Pointer, a reflect address (Value.Pointer / UnsafeAddr), or anything
// computed from one is only meaningful within the current process: the heap
// is rebuilt at a different address after restart, so a persisted DRAM
// address is at best garbage and at worst a wild pointer that recovery
// dereferences. The persistent image must be self-contained — offsets into
// the pool, not machine addresses (the same rule PMDK enforces with its
// PMEMoid fat pointers, and the reason every engine here stores pmem.Addr
// word offsets).
//
// The taint rule is type-directed at the leaves: any non-constant expression
// of type uintptr or unsafe.Pointer is a source (this subsumes the explicit
// conversion forms — uintptr(unsafe.Pointer(&x)), reflect.Value.Pointer(),
// slice-header peeking — without enumerating them). Taint propagates through
// assignments, arithmetic, conversions, composite literals, indexing, and —
// via the Program's taint summaries — across function calls in any package:
// a helper that returns a disguised address taints its callers' values, and
// a helper that persists its parameter turns that parameter into a sink at
// every call site.
var TransientRef = &Analyzer{
	Name: "transientref",
	Doc:  "values derived from DRAM addresses must not be stored to persistent memory",
	Run:  runTransientRef,
}

func runTransientRef(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Path, "/internal/pmem") {
		return
	}
	if pass.Pkg.Unit != "base" {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			tw := newTaintWalker(pass.Prog, pass.Pkg.Info, obj, fd)
			tw.report = func(pos token.Pos, lab taintLabels, sink string) {
				pass.Report(pos, "transient value (%s) %s: DRAM addresses are meaningless after restart", lab.src, sink)
			}
			tw.walk(fd.Body)
		}
	}
}

// taintLabels is the abstract value of an expression: src is a description
// of the DRAM-address source it derives from ("" if none), params a bitmask
// of the enclosing function's parameters whose values reach it.
type taintLabels struct {
	src    string
	params uint64
}

func (l taintLabels) union(o taintLabels) taintLabels {
	if l.src == "" {
		l.src = o.src
	}
	l.params |= o.params
	return l
}

func (l taintLabels) empty() bool { return l.src == "" && l.params == 0 }

// taintSummary is a function's transient-value flow summary: ret carries
// the labels reaching its return values (params interpreted as "returns its
// i'th parameter's taint"), sink the parameter bits that reach a persistent
// store-value position inside it or any callee.
type taintSummary struct {
	ret  taintLabels
	sink uint64
}

// computeTaintSummaries runs the taint walker over every declared function
// body until the summaries reach a fixed point. Walks during the fixed
// point do not report; the analyzer pass re-walks the functions of its own
// package with reporting enabled once the summaries are final.
func (p *Program) computeTaintSummaries() {
	p.taint = make(map[*types.Func]*taintSummary, len(p.decls))
	for fn := range p.decls {
		p.taint[fn] = &taintSummary{}
	}
	for changed := true; changed; {
		changed = false
		for fn, decl := range p.decls {
			tw := newTaintWalker(p, p.declInfo[fn], fn, decl)
			tw.walk(decl.Body)
			old := p.taint[fn]
			if tw.sum.ret != old.ret || tw.sum.sink != old.sink {
				p.taint[fn] = tw.sum
				changed = true
			}
		}
	}
}

// taintWalker evaluates one function body in source order, tracking labels
// of local variables in env. Control flow is handled conservatively by
// sharing one environment across branches (a value tainted anywhere in the
// body stays tainted for the rest of the walk unless overwritten by a clean
// assignment).
type taintWalker struct {
	prog    *Program
	info    *types.Info
	params  map[types.Object]int
	results []types.Object
	env     map[types.Object]taintLabels
	sum     *taintSummary
	report  func(pos token.Pos, lab taintLabels, sink string)
}

func newTaintWalker(prog *Program, info *types.Info, fn *types.Func, fd *ast.FuncDecl) *taintWalker {
	tw := &taintWalker{
		prog:   prog,
		info:   info,
		params: paramIndexes(info, fd),
		env:    make(map[types.Object]taintLabels),
		sum:    &taintSummary{},
	}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					tw.results = append(tw.results, obj)
				}
			}
		}
	}
	return tw
}

func (tw *taintWalker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			tw.assign(n)
		case *ast.ValueSpec:
			tw.valueSpec(n)
		case *ast.RangeStmt:
			lab := tw.labelOf(n.X)
			tw.bind(n.Key, lab)
			tw.bind(n.Value, lab)
		case *ast.ReturnStmt:
			tw.ret(n)
		case *ast.CallExpr:
			tw.visitCall(n)
		}
		return true
	})
}

func (tw *taintWalker) assign(a *ast.AssignStmt) {
	switch {
	case len(a.Lhs) == len(a.Rhs):
		for i := range a.Lhs {
			tw.bind(a.Lhs[i], tw.labelOf(a.Rhs[i]))
		}
	case len(a.Rhs) == 1:
		// Multi-value: every LHS gets the RHS's combined label.
		lab := tw.labelOf(a.Rhs[0])
		for _, l := range a.Lhs {
			tw.bind(l, lab)
		}
	}
}

func (tw *taintWalker) valueSpec(vs *ast.ValueSpec) {
	switch {
	case len(vs.Values) == len(vs.Names):
		for i, name := range vs.Names {
			tw.bindIdent(name, tw.labelOf(vs.Values[i]))
		}
	case len(vs.Values) == 1:
		lab := tw.labelOf(vs.Values[0])
		for _, name := range vs.Names {
			tw.bindIdent(name, lab)
		}
	}
}

func (tw *taintWalker) ret(r *ast.ReturnStmt) {
	if len(r.Results) == 0 {
		// Naked return: named results carry whatever was assigned to them.
		for _, obj := range tw.results {
			if lab, ok := tw.env[obj]; ok {
				tw.sum.ret = tw.sum.ret.union(lab)
			}
		}
		return
	}
	for _, res := range r.Results {
		tw.sum.ret = tw.sum.ret.union(tw.labelOf(res))
	}
}

// bind records lab for the variable behind lhs. Writing through a selector
// or index (x.f = v, x[i] = v) coarsely taints the root variable — the
// container now holds a transient value somewhere.
func (tw *taintWalker) bind(lhs ast.Expr, lab taintLabels) {
	if lhs == nil {
		return
	}
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	if _, isIdent := ast.Unparen(lhs).(*ast.Ident); !isIdent {
		// Partial write: union into the container rather than overwrite.
		if lab.empty() {
			return
		}
		if old, ok := tw.objLabel(root); ok {
			lab = lab.union(old)
		}
	}
	tw.bindIdent(root, lab)
}

func (tw *taintWalker) bindIdent(id *ast.Ident, lab taintLabels) {
	if id == nil || id.Name == "_" {
		return
	}
	obj := tw.info.Defs[id]
	if obj == nil {
		obj = tw.info.Uses[id]
	}
	if obj == nil {
		return
	}
	if lab.empty() {
		delete(tw.env, obj)
	} else {
		tw.env[obj] = lab
	}
}

func (tw *taintWalker) objLabel(id *ast.Ident) (taintLabels, bool) {
	obj := tw.info.Uses[id]
	if obj == nil {
		obj = tw.info.Defs[id]
	}
	if obj == nil {
		return taintLabels{}, false
	}
	lab, ok := tw.env[obj]
	return lab, ok
}

// labelOf computes an expression's taint. Structure first, then the
// type-directed leaf rule: any non-constant uintptr / unsafe.Pointer typed
// expression is itself a source.
func (tw *taintWalker) labelOf(e ast.Expr) taintLabels {
	if e == nil {
		return taintLabels{}
	}
	lab := tw.structLabel(e)
	if lab.src == "" {
		if src := tw.transientType(e); src != "" {
			lab.src = src
		}
	}
	return lab
}

func (tw *taintWalker) transientType(e ast.Expr) string {
	tv, ok := tw.info.Types[e]
	if !ok || tv.Value != nil || tv.Type == nil {
		return ""
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Uintptr:
			return "uintptr — a DRAM machine address"
		case types.UnsafePointer:
			return "unsafe.Pointer — a DRAM machine address"
		}
	}
	return ""
}

func (tw *taintWalker) structLabel(e ast.Expr) taintLabels {
	switch e := e.(type) {
	case *ast.Ident:
		var lab taintLabels
		obj := tw.info.Uses[e]
		if obj == nil {
			return lab
		}
		if l, ok := tw.env[obj]; ok {
			lab = lab.union(l)
		}
		if i, ok := tw.params[obj]; ok && i >= 0 && i < 64 {
			lab.params |= 1 << uint(i)
		}
		return lab
	case *ast.ParenExpr:
		return tw.labelOf(e.X)
	case *ast.UnaryExpr:
		return tw.labelOf(e.X)
	case *ast.StarExpr:
		return tw.labelOf(e.X)
	case *ast.BinaryExpr:
		return tw.labelOf(e.X).union(tw.labelOf(e.Y))
	case *ast.IndexExpr:
		return tw.labelOf(e.X)
	case *ast.SliceExpr:
		return tw.labelOf(e.X)
	case *ast.TypeAssertExpr:
		return tw.labelOf(e.X)
	case *ast.SelectorExpr:
		// x.f carries x's taint (field-insensitive).
		if root := rootIdent(e); root != nil {
			if lab, ok := tw.objLabel(root); ok {
				return lab
			}
		}
		return taintLabels{}
	case *ast.CompositeLit:
		var lab taintLabels
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				lab = lab.union(tw.labelOf(kv.Value))
			} else {
				lab = lab.union(tw.labelOf(el))
			}
		}
		return lab
	case *ast.CallExpr:
		return tw.callLabel(e)
	}
	return taintLabels{}
}

// callLabel evaluates a call in value position: conversions pass their
// operand's taint through (the type rule on the conversion itself catches
// pointer→uintptr), builtins are handled by shape, and resolved calls are
// interpreted through the callee's taint summary — src in the callee's
// returns surfaces here, and param bits in its returns translate to the
// labels of the corresponding arguments.
func (tw *taintWalker) callLabel(call *ast.CallExpr) taintLabels {
	if tv, ok := tw.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return tw.labelOf(call.Args[0])
		}
		return taintLabels{}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := tw.info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append", "min", "max":
				var lab taintLabels
				for _, a := range call.Args {
					lab = lab.union(tw.labelOf(a))
				}
				return lab
			default:
				// len, cap, make, new, copy, ... do not yield addresses.
				return taintLabels{}
			}
		}
	}
	callee := tw.prog.resolve(tw.info, call)
	if callee == nil {
		return taintLabels{}
	}
	s := tw.prog.taint[callee]
	if s == nil {
		return taintLabels{}
	}
	lab := taintLabels{src: s.ret.src}
	for j := 0; j < 64 && j < len(call.Args); j++ {
		if s.ret.params&(1<<uint(j)) != 0 {
			lab = lab.union(tw.labelOf(call.Args[j]))
		}
	}
	return lab
}

// visitCall checks a call's arguments against persistent-store sinks: the
// direct pmem/ptm store-value positions, and — through the summaries — any
// resolved callee that forwards a parameter into such a position.
func (tw *taintWalker) visitCall(call *ast.CallExpr) {
	for _, s := range persistSinks(tw.info, call) {
		if s.idx < len(call.Args) {
			tw.hitSink(call.Args[s.idx], s.desc)
		}
	}
	callee := tw.prog.resolve(tw.info, call)
	if callee == nil {
		return
	}
	sum := tw.prog.taint[callee]
	if sum == nil || sum.sink == 0 {
		return
	}
	for j := 0; j < 64 && j < len(call.Args); j++ {
		if sum.sink&(1<<uint(j)) != 0 {
			tw.hitSink(call.Args[j], "passed to "+callee.Name()+", which stores it to persistent memory")
		}
	}
}

func (tw *taintWalker) hitSink(arg ast.Expr, desc string) {
	lab := tw.labelOf(arg)
	if lab.src != "" && tw.report != nil {
		tw.report(arg.Pos(), lab, desc)
	}
	tw.sum.sink |= lab.params
}

// sinkArg names one store-value argument position of a persistence call.
type sinkArg struct {
	idx  int
	desc string
}

// persistSinks returns the store-value argument positions of call, if it is
// one of the direct persistence primitives.
func persistSinks(info *types.Info, call *ast.CallExpr) []sinkArg {
	if memMutatorName(info, call) == "Store" {
		return []sinkArg{{1, "stored via (ptm.Mem).Store"}}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch pmemRecvKind(info, sel.X) + "." + sel.Sel.Name {
	case "Region.Store":
		return []sinkArg{{1, "stored to a pmem region"}}
	case "Region.StoreWords":
		return []sinkArg{{1, "stored to a pmem region (StoreWords payload)"}}
	case "Pool.HeaderStore", "Pool.HeaderStoreCRC":
		return []sinkArg{{1, "published to a pool header slot"}}
	case "Pool.HeaderCAS":
		return []sinkArg{{2, "published to a pool header slot (CAS new value)"}}
	}
	return nil
}
