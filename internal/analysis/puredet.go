package analysis

import (
	"go/ast"
	"go/types"
)

// PureDet enforces the determinism contract on transaction closures: any
// closure flowing into a func(ptm.Mem) uint64 parameter (ptm.PTM.Update and
// Read, and the same-shaped entry points of psim, onefile, romulus, pmdk)
// may be executed more than once and by other threads — the paper's helping
// mechanism (§3) — so given the same persistent state it must perform the
// same loads, stores and allocations and return the same value.
//
// Flagged inside a transaction closure:
//   - clock reads, timers, math/rand, runtime calls (directly or through
//     statically resolvable helpers);
//   - channel operations, select, and go statements;
//   - map iteration whose body issues persistent stores (Go randomizes
//     iteration order, so the store sequence differs between executions);
//   - writes to variables captured from the enclosing function: when a
//     helper re-executes the closure, those writes race with the owner and
//     duplicate on retry. Results must flow out through the return value
//     (or ptm.EmitBytes, which is executor-indexed).
var PureDet = &Analyzer{
	Name: "puredet",
	Doc:  "transaction closures must be deterministic and free of captured-state writes",
	Run:  runPureDet,
}

func runPureDet(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, cl := range txnClosures(pass.Pkg, file) {
			checkClosurePurity(pass, info, cl)
		}
	}
}

func checkClosurePurity(pass *Pass, info *types.Info, cl txnClosure) {
	fn := cl.fn
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Report(n.Pos(), "transaction closure starts a goroutine; closures may be re-executed by helpers and must be deterministic")
		case *ast.SendStmt:
			pass.Report(n.Pos(), "transaction closure sends on a channel; closures may be re-executed by helpers and must be deterministic")
		case *ast.SelectStmt:
			pass.Report(n.Pos(), "transaction closure uses select; closures may be re-executed by helpers and must be deterministic")
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Report(n.Pos(), "transaction closure receives from a channel; closures may be re-executed by helpers and must be deterministic")
			}
		case *ast.CallExpr:
			if name := nondetCallName(info, n); name != "" {
				pass.Report(n.Pos(), "transaction closure calls %s; closures may be re-executed by helpers and must be deterministic", name)
				return true
			}
			if callee := pass.Prog.resolve(info, n); callee != nil {
				if reason, ok := pass.Prog.Nondet(callee); ok {
					pass.Report(n.Pos(), "transaction closure calls %s, which %s; closures may be re-executed by helpers and must be deterministic", callee.Name(), reason)
				}
			}
		case *ast.RangeStmt:
			checkMapRange(pass, info, n)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkCapturedWrite(pass, info, fn, lhs, n.Tok.String())
			}
		case *ast.IncDecStmt:
			checkCapturedWrite(pass, info, fn, n.X, n.Tok.String())
		}
		return true
	})
}

// checkMapRange flags `for k := range m { ... Store ... }`: map iteration
// order is randomized per execution, so a re-executed closure would issue
// its stores in a different order (and, with Alloc in the body, produce a
// different heap layout) than the consensus execution.
func checkMapRange(pass *Pass, info *types.Info, rs *ast.RangeStmt) {
	tv, ok := info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	feeds := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if memMutatorName(info, call) != "" {
			feeds = true
		} else if callee := pass.Prog.resolve(info, call); callee != nil && passesMemArg(info, call) {
			if _, ok := pass.Prog.Mutates(callee); ok {
				feeds = true
			}
		}
		return !feeds
	})
	if feeds {
		pass.Report(rs.Pos(), "map iteration feeding persistent stores inside a transaction closure: iteration order is nondeterministic, so re-execution diverges")
	}
}

// checkCapturedWrite flags assignments whose target is rooted at a variable
// declared outside the closure.
func checkCapturedWrite(pass *Pass, info *types.Info, fn *ast.FuncLit, lhs ast.Expr, tok string) {
	root := rootIdent(lhs)
	if root == nil || root.Name == "_" {
		return
	}
	obj, ok := info.Uses[root].(*types.Var)
	if !ok {
		// Defs means `:=` declared it here, inside the closure.
		return
	}
	if obj.IsField() {
		return
	}
	if obj.Pos() >= fn.Pos() && obj.Pos() <= fn.End() {
		return // declared inside the closure (or one of its params)
	}
	pass.Report(lhs.Pos(), "transaction closure writes captured variable %q (%s): re-executions by helper threads race and duplicate the write; return results instead", root.Name, tok)
}

// rootIdent unwraps selector/index/star/paren chains to the base identifier
// of an assignable expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
