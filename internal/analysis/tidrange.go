package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// TidRange checks literal thread ids against the construction's configured
// thread count. Every construction sizes its per-thread state (announce
// arrays, combiner slots, sequence logs) from Config.Threads / a `threads`
// constructor parameter, and indexes it with the caller-supplied tid without
// bounds checks — the paper's model gives each thread a fixed id in
// [0, maxThreads). An out-of-range literal tid panics at runtime on the
// first call, or worse, silently aliases another thread's slot where the
// state is stored in a shared flat region.
//
// The analysis is intra-functional: it tracks variables initialized from a
// constructor call whose configuration carries a constant thread count
// (a composite literal with a Threads field, or a constant argument to a
// parameter named threads/maxThreads), then checks constant arguments
// passed to parameters named "tid" on method calls through those variables.
var TidRange = &Analyzer{
	Name: "tidrange",
	Doc:  "literal thread ids must be < the construction's configured thread count",
	Run:  runTidRange,
}

func runTidRange(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkTidRange(pass, info, fd.Body)
		}
	}
}

func checkTidRange(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	// engines maps a local variable to the constant thread count its
	// constructor was configured with. Reassignment drops the binding.
	engines := make(map[*types.Var]int64)

	// First pass: collect constructor bindings, in source order; second
	// pass inline — since bindings only flow forward through method calls
	// and Go evaluates in order within the body walk, a single Inspect
	// handling both is sufficient (the constructor assignment always
	// precedes the use in these idioms; out-of-order uses just go
	// unchecked, which is conservative).
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj, _ := objOf(info, id).(*types.Var)
				if obj == nil {
					continue
				}
				if count, ok := threadCountOf(info, n.Rhs[i]); ok {
					engines[obj] = count
				} else {
					delete(engines, obj)
				}
			}
		case *ast.CallExpr:
			checkTidArgs(pass, info, engines, n)
		}
		return true
	})
}

// objOf resolves an identifier's object through either Defs (`:=`) or Uses
// (`=`).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// threadCountOf inspects an expression and, if it is a call carrying a
// constant thread-count configuration, returns that count. Two idioms are
// recognized:
//
//	eng := redo.New(pool, redo.Config{Threads: 2, ...})   // Threads field
//	q := handmade.NewFHMP(region, 4)                      // threads param
//
// Calls that derive the count from a variable return !ok — nothing to
// check statically.
func threadCountOf(info *types.Info, rhs ast.Expr) (int64, bool) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return 0, false
	}
	// Idiom 1: any composite-literal argument with a constant field named
	// Threads (redo.Config, cx.Config, redodb.Options, ...).
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.CompositeLit)
		if !ok {
			continue
		}
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "Threads" {
				continue
			}
			if v, ok := constIntValue(info, kv.Value); ok {
				return v, true
			}
			return 0, false
		}
	}
	// Idiom 2: a constant argument whose parameter is named threads or
	// maxThreads.
	sig := calleeSig(info, call)
	if sig == nil {
		return 0, false
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break
		}
		switch sig.Params().At(i).Name() {
		case "threads", "maxThreads", "nThreads":
			if v, ok := constIntValue(info, arg); ok {
				return v, true
			}
			return 0, false
		}
	}
	return 0, false
}

// checkTidArgs flags out-of-range constant tids on method calls through a
// tracked engine variable.
func checkTidArgs(pass *Pass, info *types.Info, engines map[*types.Var]int64, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := ast.Unparen(sel.X)
	id, ok := recv.(*ast.Ident)
	if !ok {
		return
	}
	obj, _ := info.Uses[id].(*types.Var)
	if obj == nil {
		return
	}
	count, tracked := engines[obj]
	if !tracked {
		return
	}
	sig := calleeSig(info, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break
		}
		if sig.Params().At(i).Name() != "tid" {
			continue
		}
		v, ok := constIntValue(info, arg)
		if !ok {
			continue
		}
		if v < 0 || v >= count {
			pass.Report(arg.Pos(), "thread id %d out of range for %s, which was configured with %d thread(s): tids must be in [0, %d)", v, id.Name, count, count)
		}
	}
}

// constIntValue evaluates e as a compile-time integer constant (literals and
// named constants both work, via types.Info).
func constIntValue(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact {
		return 0, false
	}
	return v, true
}
