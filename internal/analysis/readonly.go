package analysis

import (
	"go/ast"
)

// ReadOnly enforces ptm.PTM.Read's contract: a closure passed to a method
// named Read (or ReadWithBytes, or any Read*-shaped entry point with a
// func(ptm.Mem) uint64 parameter) must not call Store, Alloc or Free on the
// Mem it receives — directly or through helpers like seqds.Queue.Enqueue.
//
// At runtime a violation panics on the constructions whose read view rejects
// mutation (redo, psim, romulus) — but only on the execution path actually
// taken, only in the variants exercised, and in CX-PTM it silently corrupts
// the replica instead, because CX hands read closures the same interposed
// view as updates. The static check covers all paths on every construction.
var ReadOnly = &Analyzer{
	Name: "readonly",
	Doc:  "read-only transaction closures must not call Store, Alloc or Free",
	Run:  runReadOnly,
}

func runReadOnly(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, cl := range txnClosures(pass.Pkg, file) {
			if !cl.readOnly {
				continue
			}
			ast.Inspect(cl.fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name := memMutatorName(info, call); name != "" {
					pass.Report(call.Pos(), "read-only transaction closure calls (ptm.Mem).%s; Read closures must not mutate (move this into an Update)", name)
					return true
				}
				if callee := pass.Prog.resolve(info, call); callee != nil && passesMemArg(info, call) {
					if reason, ok := pass.Prog.Mutates(callee); ok {
						pass.Report(call.Pos(), "read-only transaction closure calls %s, which %s; Read closures must not mutate (move this into an Update)", callee.Name(), reason)
					}
				}
				return true
			})
		}
	}
}
