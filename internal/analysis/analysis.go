// Package analysis is pmemvet: a static-analysis suite for the persistence
// and transaction disciplines that this repository's constructions rely on
// but the Go compiler cannot check. Every PTM/PUC executes transaction
// closures through helping and re-execution, so closures must be
// deterministic and side-effect free (puredet); read-only closures must not
// mutate (readonly); code driving pmem.Pool directly must flush every
// mutated line before fencing and must fence every header publish
// (fenceorder, interprocedural through per-function persistence-effect
// summaries); record publications must store their commit word last, as a
// single word, after the payload is flushed and fenced (commitpoint);
// values derived from DRAM addresses must never reach persistent stores
// (transientref); and literal thread ids must fit the construction's
// configured thread count (tidrange).
//
// The suite is built on go/parser, go/ast and go/types only — no
// golang.org/x/tools — so the module keeps its empty dependency list. See
// DESIGN.md, "Static checks".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// An Analyzer checks one invariant over a loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Pass is one analyzer applied to one package unit.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Pkg
	Fset     *token.FileSet
	Prog     *Program
	diags    *[]Diagnostic
}

// Report records a diagnostic at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every analyzer in the suite.
func All() []*Analyzer {
	return []*Analyzer{PureDet, ReadOnly, FenceOrder, CommitPoint, TransientRef, TidRange}
}

// allowRe matches per-line suppression directives: a comment of the form
//
//	//pmemvet:allow <analyzer> -- <reason>
//
// on the flagged line or the line directly above it silences that analyzer
// there. The reason is mandatory; undocumented suppressions defeat the point
// of the checker.
var allowRe = regexp.MustCompile(`^//pmemvet:allow\s+([a-z]+)\s+--\s+\S`)

// scopedAllowRe matches function-scoped suppression directives: a comment of
// the form
//
//	//pmemvet:allow:<analyzer> -- <reason>
//
// in a function's doc comment silences that analyzer for the whole function
// body, so a deliberately-unorthodox function (romulus's fence elision, say)
// carries one documented directive instead of one per statement. The reason
// is mandatory here too.
var scopedAllowRe = regexp.MustCompile(`^//pmemvet:allow:([a-z]+)\s+--\s+\S`)

// Run applies the given analyzers to the given packages and returns the
// surviving diagnostics, deduplicated and deterministically sorted by
// position, analyzer and message (so CI output diffs are reproducible).
// Diagnostics on a test ("test") unit that fall in non-test files are
// dropped, since the base unit already reported them.
func Run(pkgs []*Pkg, fset *token.FileSet, analyzers []*Analyzer) []Diagnostic {
	allowed := collectAllows(pkgs, fset)
	prog := NewProgram(fset, pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		testOnly := pkg.Unit == "test"
		var testFiles map[string]bool
		if testOnly {
			testFiles = make(map[string]bool)
			for _, f := range pkg.Files {
				name := fset.Position(f.Pos()).Filename
				if strings.HasSuffix(name, "_test.go") {
					testFiles[name] = true
				}
			}
		}
		for _, a := range analyzers {
			var local []Diagnostic
			pass := &Pass{Analyzer: a, Pkg: pkg, Fset: fset, Prog: prog, diags: &local}
			a.Run(pass)
			for _, d := range local {
				if testOnly && !testFiles[d.Pos.Filename] {
					continue
				}
				if allowed.allows(d.Pos.Filename, d.Pos.Line, a.Name) {
					continue
				}
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// Dedup: base and test units re-analyze the same files, and path-merge
	// joins can report one underlying violation twice.
	out := diags[:0]
	for _, d := range diags {
		if len(out) > 0 {
			p := out[len(out)-1]
			if p.Pos.Filename == d.Pos.Filename && p.Pos.Line == d.Pos.Line &&
				p.Analyzer == d.Analyzer && p.Message == d.Message {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowRange is a function-scoped suppression: analyzer silenced for
// [from, to] lines of file.
type allowRange struct {
	file     string
	analyzer string
	from, to int
}

// allowSet holds every suppression directive found in the loaded sources.
type allowSet struct {
	lines  map[allowKey]bool
	ranges []allowRange
}

// allows reports whether a diagnostic by analyzer at file:line is silenced,
// either by a per-line directive (on the line or the one above) or by a
// scoped directive on the enclosing function.
func (s *allowSet) allows(file string, line int, analyzer string) bool {
	if s.lines[allowKey{file, line, analyzer}] ||
		s.lines[allowKey{file, line - 1, analyzer}] {
		return true
	}
	for _, r := range s.ranges {
		if r.analyzer == analyzer && r.file == file && line >= r.from && line <= r.to {
			return true
		}
	}
	return false
}

func collectAllows(pkgs []*Pkg, fset *token.FileSet) *allowSet {
	out := &allowSet{lines: make(map[allowKey]bool)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := allowRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					out.lines[allowKey{pos.Filename, pos.Line, m[1]}] = true
				}
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					m := scopedAllowRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					out.ranges = append(out.ranges, allowRange{
						file:     fset.Position(fd.Pos()).Filename,
						analyzer: m[1],
						from:     fset.Position(fd.Pos()).Line,
						to:       fset.Position(fd.End()).Line,
					})
				}
			}
		}
	}
	return out
}

// ---- shared type helpers -------------------------------------------------

// isPtmMem reports whether t is the ptm.Mem transactional-memory interface
// (any interface named Mem declared in a package named ptm, so fixture
// copies of the interface are recognized too).
func isPtmMem(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, ok := n.Underlying().(*types.Interface); !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Mem" && obj.Pkg() != nil && obj.Pkg().Name() == "ptm"
}

// isTxnFuncType reports whether t is the transaction-closure type
// func(ptm.Mem) uint64 shared by every construction's Update/Read (and by
// psim, onefile, romulus and friends, which reuse it).
func isTxnFuncType(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	if !isPtmMem(sig.Params().At(0).Type()) {
		return false
	}
	basic, ok := sig.Results().At(0).Type().(*types.Basic)
	return ok && basic.Kind() == types.Uint64
}

// calleeFunc resolves the static callee of a call, or nil for indirect and
// built-in calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// calleeSig returns the signature of a call's callee, or nil.
func calleeSig(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// txnClosure describes a transaction closure found flowing into a
// construction entry point.
type txnClosure struct {
	fn       *ast.FuncLit
	call     *ast.CallExpr // the Update/Read/... call it flows into
	method   string        // callee method/function name ("Update", "Read", ...)
	readOnly bool          // flowed into a parameter of a method named Read*
}

// txnClosures finds every function literal whose type flows into a
// parameter of type func(ptm.Mem) uint64, either directly as a call argument
// or through a single local variable assignment (fn := func(...){...};
// eng.Update(0, fn)).
func txnClosures(pkg *Pkg, root ast.Node) []txnClosure {
	info := pkg.Info
	// Map local variables assigned exactly one FuncLit, for the one-hop
	// flow. Reassigned variables are dropped (conservative).
	litOf := make(map[types.Object]*ast.FuncLit)
	dropped := make(map[types.Object]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if lit, ok := rhs.(*ast.FuncLit); ok && litOf[obj] == nil && !dropped[obj] {
			litOf[obj] = lit
		} else {
			dropped[obj] = true
			delete(litOf, obj)
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i := range as.Lhs {
				if _, ok := as.Rhs[i].(*ast.FuncLit); ok {
					record(as.Lhs[i], as.Rhs[i])
				}
			}
		}
		return true
	})

	var out []txnClosure
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sig := calleeSig(info, call)
		if sig == nil {
			return true
		}
		name := ""
		if f := calleeFunc(info, call); f != nil {
			name = f.Name()
		}
		for i, arg := range call.Args {
			pi := i
			if sig.Variadic() && pi >= sig.Params().Len() {
				pi = sig.Params().Len() - 1
			}
			if pi >= sig.Params().Len() {
				continue
			}
			if !isTxnFuncType(sig.Params().At(pi).Type()) {
				continue
			}
			ro := strings.HasPrefix(name, "Read")
			switch a := ast.Unparen(arg).(type) {
			case *ast.FuncLit:
				out = append(out, txnClosure{fn: a, call: call, method: name, readOnly: ro})
			case *ast.Ident:
				obj := info.Uses[a]
				if lit := litOf[obj]; lit != nil {
					out = append(out, txnClosure{fn: lit, call: call, method: name, readOnly: ro})
				}
			}
		}
		return true
	})
	return out
}
