package analysis

import (
	"go/ast"
	"go/token"
)

// pathState is the abstract state a path-sensitive analyzer threads through
// a function body: branches fork it (Clone), joins union it (Merge). The
// walker treats the state as opaque; fenceorder and commitpoint each supply
// their own.
type pathState interface {
	Clone() pathState
	Merge(other pathState)
}

// pathWalker evaluates a function body statement by statement, forking the
// state at branches and merging at joins, calling OnCall for every call
// expression in source order (without descending into nested function
// literals — those run in another context and are walked as their own
// functions) and OnEnd at every return statement and at fall-off. Loop
// bodies are evaluated once and assumed to run at least once: the body
// state replaces the entry state, so flush-helper loops count as covering
// flushes; the zero-iteration path is deliberately dropped (a
// conditionally-skipped flush loop is the rare case, an always-entered one
// the common case). Deferred and go'd statements are skipped — they run in
// another context.
type pathWalker struct {
	OnCall func(call *ast.CallExpr, st pathState)
	OnEnd  func(st pathState, pos token.Pos)
}

// Walk evaluates body starting from st. If no path terminated with an
// explicit return, OnEnd fires once more for the fall-off point.
func (w *pathWalker) Walk(body *ast.BlockStmt, st pathState) {
	out, terminated := w.stmt(body, st)
	if !terminated {
		w.OnEnd(out, body.End())
	}
}

// stmt evaluates one statement, returning the outgoing state and whether
// the path terminates (return, or break/continue/goto which stop this
// path's contribution to the join).
func (w *pathWalker) stmt(s ast.Stmt, st pathState) (pathState, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range s.List {
			var term bool
			st, term = w.stmt(sub, st)
			if term {
				return st, true
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		w.exprCalls(s.Cond, st)
		thenSt, thenTerm := w.stmt(s.Body, st.Clone())
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = w.stmt(s.Else, st)
		}
		switch {
		case thenTerm && elseTerm:
			return thenSt, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			thenSt.Merge(elseSt)
			return thenSt, false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.exprCalls(s.Cond, st)
		}
		bodySt, term := w.stmt(s.Body, st.Clone())
		if term {
			return st, false
		}
		if s.Post != nil {
			bodySt, _ = w.stmt(s.Post, bodySt)
		}
		return bodySt, false
	case *ast.RangeStmt:
		w.exprCalls(s.X, st)
		bodySt, term := w.stmt(s.Body, st.Clone())
		if term {
			return st, false
		}
		return bodySt, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.exprCalls(s.Tag, st)
		}
		return w.caseBodies(s.Body, st), false
	case *ast.TypeSwitchStmt:
		return w.caseBodies(s.Body, st), false
	case *ast.SelectStmt:
		return w.caseBodies(s.Body, st), false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.exprCalls(r, st)
		}
		w.OnEnd(st, s.Pos())
		return st, true
	case *ast.BranchStmt:
		return st, true
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred/spawned work runs in another context; skip.
	case nil:
	default:
		w.exprCalls(s, st)
	}
	return st, false
}

// caseBodies merges every case clause of a switch/select, plus the
// fall-through (no matching case) state.
func (w *pathWalker) caseBodies(body *ast.BlockStmt, st pathState) pathState {
	merged := st.Clone() // the no-matching-case path
	for _, cc := range body.List {
		var stmts []ast.Stmt
		switch cc := cc.(type) {
		case *ast.CaseClause:
			stmts = cc.Body
		case *ast.CommClause:
			stmts = cc.Body
		}
		caseSt := st.Clone()
		term := false
		for _, sub := range stmts {
			if caseSt, term = w.stmt(sub, caseSt); term {
				break
			}
		}
		if !term {
			merged.Merge(caseSt)
		}
	}
	return merged
}

// exprCalls processes every call under n in source order, without
// descending into nested function literals.
func (w *pathWalker) exprCalls(n ast.Node, st pathState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			w.OnCall(call, st)
		}
		return true
	})
}
