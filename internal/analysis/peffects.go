package analysis

import (
	"go/ast"
	"go/types"
)

// PersistEffect summarizes what a function does to pmem state reachable
// from its parameters (index -1 is the method receiver), computed
// order-insensitively over the body and closed over the static call graph.
// fenceorder consumes these at call sites, so publish/flush/fence
// obligations flow across package boundaries: a helper in another package
// that performs the store, the flush or the fence is no longer a blind
// spot.
//
// The summary is deliberately generous in the directions that avoid false
// positives, matching the intra-procedural conventions:
//
//   - a function that both stores into and flushes a region rooted at the
//     same parameter is assumed to flush its own stores (the intra pass
//     checks the ordering inside that function);
//   - flush and fence effects found inside nested function literals count
//     (a flush loop wrapped in a closure still flushes), but store and
//     header-publish obligations inside literals do not propagate — the
//     literal runs in another context and is checked as its own function;
//   - PSync / PFenceGlobal anywhere in the function (or a callee) marks
//     FenceGlobal, and a header publish in the same function is then
//     assumed to be fenced by it.
type PersistEffect struct {
	// Flushes: param indices whose rooted region gets a covering write-back
	// (PWB / FlushRange / non-temporal store), directly or transitively.
	Flushes map[int]bool
	// Fences: param indices whose rooted region gets a PFence.
	Fences map[int]bool
	// StoresUnflushed: param indices whose rooted region receives plain
	// stores that no flush (or fence) in this function covers — the caller
	// inherits the dirty state.
	StoresUnflushed map[int]bool
	// FenceGlobal: the function issues PSync or PFenceGlobal (directly or
	// transitively), draining every region's flush obligations.
	FenceGlobal bool
	// PublishesUnfenced: the function performs a HeaderStore/HeaderCAS and
	// never issues a PSync/PFenceGlobal — the trailing-fence obligation
	// lands on the caller.
	PublishesUnfenced bool
}

func (e *PersistEffect) empty() bool {
	return e == nil || (len(e.Flushes) == 0 && len(e.Fences) == 0 &&
		len(e.StoresUnflushed) == 0 && !e.FenceGlobal && !e.PublishesUnfenced)
}

// Effect returns fn's persistence-effect summary, or nil when fn's body is
// not part of the loaded program.
func (p *Program) Effect(fn *types.Func) *PersistEffect {
	return p.peffects[fn]
}

// rawEffect is the pre-derivation working set during the fixed point.
type rawEffect struct {
	stores      map[int]bool // plain Store/StoreWords/CopyFrom rooted at param
	flushes     map[int]bool
	fences      map[int]bool
	fenceGlobal bool
	publishes   bool
}

func newRawEffect() *rawEffect {
	return &rawEffect{
		stores:  make(map[int]bool),
		flushes: make(map[int]bool),
		fences:  make(map[int]bool),
	}
}

// paramIndexes maps each parameter object (and the receiver, as -1) of fd
// to its index.
func paramIndexes(info *types.Info, fd *ast.FuncDecl) map[types.Object]int {
	idx := make(map[types.Object]int)
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		if obj := info.Defs[fd.Recv.List[0].Names[0]]; obj != nil {
			idx[obj] = -1
		}
	}
	pi := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				idx[obj] = pi
			}
			pi++
		}
		if len(field.Names) == 0 {
			pi++
		}
	}
	return idx
}

// pmemRecvKind classifies a method receiver expression as a pmem Region or
// Pool (directly or through a pointer), returning "" otherwise.
func pmemRecvKind(info *types.Info, x ast.Expr) string {
	tv, ok := info.Types[x]
	if !ok {
		return ""
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "pmem" {
		return ""
	}
	switch obj.Name() {
	case "Region", "Pool":
		return obj.Name()
	}
	return ""
}

// rootParam resolves an expression's base identifier to a parameter index
// of the current function, if it is one.
func rootParam(info *types.Info, params map[types.Object]int, x ast.Expr) (int, bool) {
	root := rootIdent(x)
	if root == nil {
		return 0, false
	}
	obj := info.Uses[root]
	if obj == nil {
		return 0, false
	}
	i, ok := params[obj]
	return i, ok
}

// computePersistEffects seeds per-function raw effects from bodies, closes
// flush/fence effects over the call graph, then derives the exported
// summaries (stores suppressed by covering flushes, publishes suppressed by
// global fences).
func (p *Program) computePersistEffects() {
	raw := make(map[*types.Func]*rawEffect, len(p.decls))
	params := make(map[*types.Func]map[types.Object]int, len(p.decls))

	// Seed.
	for fn, decl := range p.decls {
		info := p.declInfo[fn]
		re := newRawEffect()
		pidx := paramIndexes(info, decl)
		params[fn] = pidx
		inLitDepth := 0
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				// Flush/fence effects inside literals still count (the
				// helper's flush loop may be wrapped in a closure it calls
				// synchronously); store/publish obligations do not — the
				// literal is checked as its own function.
				inLitDepth++
				ast.Inspect(lit.Body, visit)
				inLitDepth--
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind := pmemRecvKind(info, sel.X)
			if kind == "" {
				return true
			}
			pi, isParam := rootParam(info, pidx, sel.X)
			switch kind + "." + sel.Sel.Name {
			case "Region.Store", "Region.StoreWords", "Region.CopyFrom":
				if isParam && inLitDepth == 0 {
					re.stores[pi] = true
				}
			case "Region.PWB", "Region.FlushRange", "Region.NTStoreLine", "Region.NTCopyFrom":
				if isParam {
					re.flushes[pi] = true
				}
			case "Region.PFence":
				if isParam {
					re.fences[pi] = true
				}
			case "Pool.PSync", "Pool.PFenceGlobal":
				re.fenceGlobal = true
			case "Pool.HeaderStore", "Pool.HeaderCAS":
				if inLitDepth == 0 {
					re.publishes = true
				}
			}
			return true
		}
		ast.Inspect(decl.Body, visit)
		raw[fn] = re
	}

	// calleeRoots maps a call's callee-effect indices to caller argument
	// expressions: -1 -> the method receiver, i -> the i'th argument.
	calleeRoots := func(call *ast.CallExpr) map[int]ast.Expr {
		roots := make(map[int]ast.Expr, len(call.Args)+1)
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			roots[-1] = sel.X
		}
		for i, arg := range call.Args {
			roots[i] = arg
		}
		return roots
	}

	// Phase A: close flushes/fences/fenceGlobal (monotone union) over
	// static calls. An effect of the callee on its parameter j propagates
	// to the caller's parameter i when the j'th argument is rooted at i.
	for changed := true; changed; {
		changed = false
		for fn, decl := range p.decls {
			info := p.declInfo[fn]
			re := raw[fn]
			pidx := params[fn]
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := p.resolve(info, call)
				if callee == nil || callee == fn {
					return true
				}
				ce := raw[callee]
				if ce == nil {
					return true
				}
				if ce.fenceGlobal && !re.fenceGlobal {
					re.fenceGlobal, changed = true, true
				}
				roots := calleeRoots(call)
				propagate := func(from, to map[int]bool) {
					for j := range from {
						arg, ok := roots[j]
						if !ok {
							continue
						}
						if i, ok := rootParam(info, pidx, arg); ok && !to[i] {
							to[i], changed = true, true
						}
					}
				}
				propagate(ce.flushes, re.flushes)
				propagate(ce.fences, re.fences)
				return true
			})
		}
	}

	// Phase B: storesUnflushed and publishesUnfenced, with coverage by the
	// (now final) flush/fence sets. Monotone given phase A fixed.
	su := make(map[*types.Func]map[int]bool, len(raw))
	pu := make(map[*types.Func]bool, len(raw))
	covered := func(fn *types.Func, i int) bool {
		re := raw[fn]
		return re.flushes[i] || re.fences[i] || re.fenceGlobal
	}
	for fn, re := range raw {
		m := make(map[int]bool)
		for i := range re.stores {
			if !covered(fn, i) {
				m[i] = true
			}
		}
		su[fn] = m
		pu[fn] = re.publishes && !re.fenceGlobal
	}
	for changed := true; changed; {
		changed = false
		for fn, decl := range p.decls {
			info := p.declInfo[fn]
			pidx := params[fn]
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := p.resolve(info, call)
				if callee == nil || callee == fn {
					return true
				}
				if pu[callee] && !raw[fn].fenceGlobal && !pu[fn] {
					pu[fn], changed = true, true
				}
				roots := calleeRoots(call)
				for j := range su[callee] {
					arg, ok := roots[j]
					if !ok {
						continue
					}
					if i, ok := rootParam(info, pidx, arg); ok && !covered(fn, i) && !su[fn][i] {
						su[fn][i], changed = true, true
					}
				}
				return true
			})
		}
	}

	// Derive the exported summaries.
	p.peffects = make(map[*types.Func]*PersistEffect, len(raw))
	for fn, re := range raw {
		eff := &PersistEffect{
			Flushes:           re.flushes,
			Fences:            re.fences,
			StoresUnflushed:   su[fn],
			FenceGlobal:       re.fenceGlobal,
			PublishesUnfenced: pu[fn],
		}
		p.peffects[fn] = eff
	}
}
