package pmem

import (
	"encoding/binary"
	"errors"
	"hash/crc64"
)

// CRC-protected header slots. A construction that keeps a write-once root in
// a header slot (a format magic, fixed geometry) can pair it with a checksum
// in the adjacent slot. On restart the pair distinguishes three states that a
// bare slot cannot: never written (both zero), intact (tag matches) and
// corrupted (anything else). Without the tag, a bit-rotted magic is
// indistinguishable from "never formatted" and recovery would silently
// reformat — destroying the pool's contents.
//
// The pairing is only crash-atomic for write-once slots: an in-place update
// of value and tag is two separate header stores, and an adversarial crash
// between them leaves a torn pair. Frequently republished roots must stay
// single-word (see rockssim's packed commit word).

var crcTable = crc64.MakeTable(crc64.ECMA)

// ErrCorruptHeader is returned by HeaderLoadCRC/PersistedHeaderCRC when a
// slot's checksum tag does not match its value.
var ErrCorruptHeader = errors.New("pmem: header slot fails CRC check")

// ChecksumWords returns the CRC-64/ECMA of the given words in order.
// Engines use it to guard persistent records (log entries, WAL records)
// whose lines can tear at word granularity under an adversarial crash.
func ChecksumWords(words ...uint64) uint64 {
	var buf [8]byte
	crc := crc64.New(crcTable)
	for _, w := range words {
		binary.LittleEndian.PutUint64(buf[:], w)
		crc.Write(buf[:])
	}
	return crc.Sum64()
}

// headerTag computes the checksum stored alongside slot i holding v. The
// slot index is mixed in so a value copied to the wrong slot is rejected.
func headerTag(i int, v uint64) uint64 {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(i))
	binary.LittleEndian.PutUint64(buf[8:], v)
	return crc64.Checksum(buf[:], crcTable)
}

// HeaderStoreCRC writes v to header slot i and its checksum tag to slot i+1.
// Both slots still need PWBHeader and a PSync to become durable.
func (p *Pool) HeaderStoreCRC(i int, v uint64) {
	p.HeaderStore(i, v)
	p.HeaderStore(i+1, headerTag(i, v))
}

// HeaderLoadCRC reads the CRC-protected slot i from the cache image. A pair
// that was never written (value and tag both zero) reads as 0 without error.
func (p *Pool) HeaderLoadCRC(i int) (uint64, error) {
	return checkPair(i, p.headers[i].Load(), p.headers[i+1].Load())
}

// PersistedHeaderCRC reads the CRC-protected slot i from the persisted
// image; it is the recovery-time counterpart of HeaderLoadCRC.
func (p *Pool) PersistedHeaderCRC(i int) (uint64, error) {
	if p.mode != Strict {
		return p.HeaderLoadCRC(i)
	}
	return checkPair(i, p.shadowHdr[i].Load(), p.shadowHdr[i+1].Load())
}

func checkPair(i int, v, tag uint64) (uint64, error) {
	if v == 0 && tag == 0 {
		return 0, nil // never written
	}
	if tag != headerTag(i, v) {
		return 0, ErrCorruptHeader
	}
	return v, nil
}
