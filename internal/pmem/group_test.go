package pmem

import (
	"math/rand"
	"testing"
)

func groupOf(t *testing.T, n int) *Group {
	t.Helper()
	pools := make([]*Pool, n)
	for i := range pools {
		pools[i] = New(Config{Mode: Strict, RegionWords: 256, Regions: 1})
	}
	return NewGroup(pools...)
}

// A group-wide failure budget is drawn down by events on any member pool.
func TestGroupSharedBudget(t *testing.T) {
	g := groupOf(t, 2)
	g.InjectFailure(3)
	r0, r1 := g.Pool(0).Region(0), g.Pool(1).Region(0)
	r0.Store(1, 10) // event 1 on pool 0
	r1.Store(1, 20) // event 2 on pool 1
	func() {
		defer func() {
			if recover() != ErrSimulatedPowerFailure {
				t.Fatalf("expected simulated power failure on 4th event")
			}
		}()
		r0.Store(2, 30) // event 3
		r1.Store(2, 40) // event 4: budget exhausted, must panic
		t.Fatalf("stores past the budget did not panic")
	}()
}

// After the failure fires, every member pool keeps panicking on its next
// event (all threads observe the power loss), until InjectFailure resets it.
func TestGroupFiredLatchesAcrossPools(t *testing.T) {
	g := groupOf(t, 2)
	g.InjectFailure(0)
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() != ErrSimulatedPowerFailure {
				t.Fatalf("expected simulated power failure")
			}
		}()
		f()
	}
	mustPanic(func() { g.Pool(0).Region(0).Store(1, 1) })
	// A different pool of the same group is dead too.
	mustPanic(func() { g.Pool(1).Region(0).Store(1, 1) })
	mustPanic(func() { g.Pool(1).Region(0).PWB(1) })

	g.InjectFailure(-1) // disarm clears the latch
	g.Pool(0).Region(0).Store(1, 1)
	g.Pool(1).Region(0).Store(1, 1)
}

// Crash hits every member pool: unfenced stores are lost everywhere, fenced
// ones survive everywhere, and the armed counter is left in place.
func TestGroupCrashCoversAllPools(t *testing.T) {
	g := groupOf(t, 3)
	for i := 0; i < g.Len(); i++ {
		r := g.Pool(i).Region(0)
		r.Store(8, uint64(100+i))
		r.PWB(8)
		r.PFence()
		r.Store(16, uint64(200+i)) // never fenced
	}
	g.InjectFailure(7)
	g.Crash(CrashConservative, nil)
	if got := g.InjectRemaining(); got != 7 {
		t.Fatalf("armed counter did not survive Crash: %d", got)
	}
	g.InjectFailure(-1)
	for i := 0; i < g.Len(); i++ {
		r := g.Pool(i).Region(0)
		if got := r.Load(8); got != uint64(100+i) {
			t.Fatalf("pool %d: fenced store lost: %d", i, got)
		}
		if got := r.Load(16); got != 0 {
			t.Fatalf("pool %d: unfenced store survived conservative crash: %d", i, got)
		}
	}
}

// Clone forks the whole group: same contents, fresh disarmed injector,
// zeroed stats; mutations do not leak between original and clone.
func TestGroupClone(t *testing.T) {
	g := groupOf(t, 2)
	g.Pool(0).Region(0).Store(8, 42)
	g.Pool(0).Region(0).PWB(8)
	g.Pool(0).Region(0).PFence()
	g.InjectFailure(5)

	c := g.Clone()
	if got := c.InjectRemaining(); got >= 0 {
		t.Fatalf("clone inherited an armed failure point: %d", got)
	}
	if got := c.Stats().PWBs; got != 0 {
		t.Fatalf("clone inherited stats: %d pwbs", got)
	}
	if got := c.Pool(0).Region(0).Load(8); got != 42 {
		t.Fatalf("clone missing data: %d", got)
	}
	g.InjectFailure(-1)
	c.Pool(0).Region(0).Store(8, 7)
	if got := g.Pool(0).Region(0).Load(8); got != 42 {
		t.Fatalf("clone mutation leaked into original: %d", got)
	}
	// Clone's injector is independent of the original's.
	c.InjectFailure(0)
	g.Pool(0).Region(0).Store(9, 1) // original stays disarmed
}

// Stats aggregates over member pools; ResetStats clears all of them.
func TestGroupStatsAggregate(t *testing.T) {
	g := groupOf(t, 2)
	g.Pool(0).Region(0).PWB(0)
	g.Pool(1).Region(0).PWB(0)
	g.Pool(1).Region(0).PFence()
	s := g.Stats()
	if s.PWBs != 2 || s.PFences != 1 {
		t.Fatalf("bad aggregate: %v", s)
	}
	g.ResetStats()
	if s := g.Stats(); s.PWBs != 0 || s.PFences != 0 {
		t.Fatalf("reset did not clear: %v", s)
	}
	if g.NVMBytes() != 2*g.Pool(0).NVMBytes() {
		t.Fatalf("NVMBytes not summed")
	}
}

// Adversarial group crash with a shared rng stays deterministic per seed.
func TestGroupCrashAdversarialDeterministic(t *testing.T) {
	build := func() *Group {
		g := groupOf(t, 2)
		for i := 0; i < g.Len(); i++ {
			r := g.Pool(i).Region(0)
			for a := Addr(8); a < 64; a++ {
				r.Store(a, a*uint64(i+1))
			}
		}
		return g
	}
	snap := func(g *Group) []uint64 {
		var out []uint64
		for i := 0; i < g.Len(); i++ {
			r := g.Pool(i).Region(0)
			for a := Addr(0); a < 64; a++ {
				out = append(out, r.PersistedLoad(a))
			}
		}
		return out
	}
	g1, g2 := build(), build()
	g1.Crash(CrashAdversarial, rand.New(rand.NewSource(7)))
	g2.Crash(CrashAdversarial, rand.New(rand.NewSource(7)))
	a, b := snap(g1), snap(g2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("adversarial crash not deterministic at word %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Group.CloneInto reuses a scratch group's memory across sweep experiments.
func TestGroupCloneInto(t *testing.T) {
	g := groupOf(t, 2)
	g.Pool(0).Region(0).Store(3, 33)
	g.Pool(1).Region(0).Store(4, 44)

	scratch := g.Clone()
	scratch.Pool(0).Region(0).Store(3, 999)
	scratch.InjectFailure(1)
	func() {
		defer func() {
			if recover() != ErrSimulatedPowerFailure {
				t.Fatal("scratch setup failure point did not fire")
			}
		}()
		scratch.Pool(1).Region(0).Store(0, 1)
		scratch.Pool(1).Region(0).PWB(0)
	}()

	g.CloneInto(scratch)
	if got := scratch.InjectRemaining(); got >= 0 {
		t.Fatalf("CloneInto left the group failure point armed: %d", got)
	}
	if got := scratch.Pool(0).Region(0).Load(3); got != 33 {
		t.Fatalf("scratch pool 0 word 3 = %d, want 33", got)
	}
	if got := scratch.Pool(1).Region(0).Load(4); got != 44 {
		t.Fatalf("scratch pool 1 word 4 = %d, want 44", got)
	}
	if s := scratch.Stats(); s.PWBs != 0 || s.PFences != 0 {
		t.Fatalf("CloneInto did not reset group stats: %+v", s)
	}
	// Latch cleared: the scratch accepts new events again.
	scratch.Pool(0).Region(0).Store(7, 7)

	mismatched := groupOf(t, 3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Group.CloneInto accepted a different shape")
			}
		}()
		g.CloneInto(mismatched)
	}()
}
