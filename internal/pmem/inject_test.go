package pmem

import "testing"

func TestInjectFailurePanicsAtNthEvent(t *testing.T) {
	p := New(Config{Mode: Strict, RegionWords: 64, Regions: 1})
	r := p.Region(0)
	p.InjectFailure(3)
	r.Store(0, 1) // event 1
	r.Store(1, 2) // event 2
	r.PWB(0)      // event 3
	func() {
		defer func() {
			if recover() != ErrSimulatedPowerFailure {
				t.Error("4th event did not raise power failure")
			}
		}()
		r.PFence() // event 4 → boom
	}()
	// After the crash, the pool is reusable.
	p.InjectFailure(-1)
	p.Crash(CrashConservative, nil)
	if got := r.Load(0); got != 0 {
		t.Fatalf("unfenced store survived: %d", got)
	}
}

func TestInjectFailureIgnoredInDirectMode(t *testing.T) {
	p := New(Config{Mode: Direct, RegionWords: 64, Regions: 1})
	p.InjectFailure(0)
	p.Region(0).Store(0, 1) // must not panic
	p.Region(0).PWB(0)
	p.Region(0).PFence()
}

func TestInjectFailureDisarmed(t *testing.T) {
	p := New(Config{Mode: Strict, RegionWords: 64, Regions: 1})
	p.InjectFailure(1)
	p.Region(0).Store(0, 1)
	p.InjectFailure(-1)
	for i := 0; i < 10; i++ {
		p.Region(0).Store(0, uint64(i)) // must not panic
	}
}
