package pmem

import (
	"math/rand"

	"repro/internal/obs"
)

// Group ties several pools to one failure domain. A sharded construction
// places each shard on its own Pool plus a coordinator Pool; physically those
// are DIMMs behind the same power supply, so a power failure hits all of them
// at the same instant. NewGroup models that by rewiring every member pool to
// a single shared injector: persistent-memory events anywhere in the group
// draw down one budget, and once the failure fires every thread of every
// member pool dies at its next event.
//
// Group also aggregates the per-pool statistics, so pwbs/tx and pfences/tx
// stay reportable for multi-pool engines exactly as for single-pool ones.
type Group struct {
	pools []*Pool
	inj   *injector
}

// NewGroup builds a Group over the given pools and rewires them to a shared
// injector. The pools must be quiescent and must all share the same Mode.
// The previous per-pool injectors are discarded, so any individually armed
// failure point is dropped; arm failures through the Group from then on.
func NewGroup(pools ...*Pool) *Group {
	if len(pools) == 0 {
		panic("pmem: NewGroup needs at least one pool")
	}
	for _, p := range pools[1:] {
		if p.mode != pools[0].mode {
			panic("pmem: NewGroup pools must share a Mode")
		}
	}
	g := &Group{pools: pools, inj: newInjector()}
	for _, p := range pools {
		p.inj = g.inj
	}
	return g
}

// Len reports the number of member pools.
func (g *Group) Len() int { return len(g.pools) }

// Pool returns the i-th member pool.
func (g *Group) Pool(i int) *Pool { return g.pools[i] }

// InjectFailure arms a group-wide failure point: after n further
// persistent-memory events across ALL member pools the next event panics with
// ErrSimulatedPowerFailure. Semantics otherwise match Pool.InjectFailure,
// including surviving Crash for the nested-failure model.
func (g *Group) InjectFailure(n int64) { g.inj.arm(n) }

// InjectRemaining reports the armed group-wide failure counter (see
// Pool.InjectRemaining).
func (g *Group) InjectRemaining() int64 { return g.inj.failAfter.Load() }

// Crash simulates power loss over the whole group: every member pool's cache
// image is discarded at once (see Pool.Crash). The armed failure counter is
// left as-is so a second failure can interrupt the recovery that follows.
func (g *Group) Crash(policy CrashPolicy, rng *rand.Rand) {
	for _, p := range g.pools {
		p.Crash(policy, rng)
	}
}

// Clone deep-copies every member pool into a new Group with a fresh, disarmed
// injector and zeroed statistics (see Pool.Clone). The group must be
// quiescent.
func (g *Group) Clone() *Group {
	clones := make([]*Pool, len(g.pools))
	for i, p := range g.pools {
		clones[i] = p.Clone()
	}
	return NewGroup(clones...)
}

// CloneInto copies every member pool's state into the corresponding pool of
// dst, a group of identical shape, reusing its memory (see Pool.CloneInto).
// dst's shared injector is disarmed and its statistics zeroed. Both groups
// must be quiescent.
func (g *Group) CloneInto(dst *Group) {
	if len(dst.pools) != len(g.pools) {
		panic("pmem: CloneInto requires groups of the same shape")
	}
	for i, p := range g.pools {
		p.CloneInto(dst.pools[i])
	}
}

// SetTracer attaches tr to every member pool, assigning pool ids in member
// order so a group trace distinguishes the coordinator (pool 0) from the
// shards. Pass nil to detach. The group must be quiescent. Clones made by
// Group.Clone do not inherit the tracer.
func (g *Group) SetTracer(tr *obs.Tracer) {
	for i, p := range g.pools {
		p.setTracerID(tr, int16(i))
	}
}

// Tracer reports the tracer attached to the group (nil when tracing is
// off); all member pools share it.
func (g *Group) Tracer() *obs.Tracer { return g.pools[0].tr }

// Stats sums the persistence-instruction counters over all member pools.
func (g *Group) Stats() StatsSnapshot {
	var sum StatsSnapshot
	for _, p := range g.pools {
		sum = sum.add(p.Stats())
	}
	return sum
}

// ResetStats zeroes the counters of every member pool.
func (g *Group) ResetStats() {
	for _, p := range g.pools {
		p.ResetStats()
	}
}

// NVMBytes reports the total simulated NVMM footprint across the group.
func (g *Group) NVMBytes() uint64 {
	var sum uint64
	for _, p := range g.pools {
		sum += p.NVMBytes()
	}
	return sum
}

// GroupRange names a span of words inside one region of one member pool —
// the multi-pool analogue of Range, used by sharded engines to declare their
// stale (corruptible) spans to the corruption sweep.
type GroupRange struct {
	Pool int
	Range
}
