package pmem

import (
	"fmt"
	"sync/atomic"
)

// Stats holds the persistence-instruction counters of a Pool. All fields are
// updated atomically and may be read concurrently through snapshot.
type Stats struct {
	pwbs        atomic.Uint64
	pfences     atomic.Uint64
	psyncs      atomic.Uint64
	ntstores    atomic.Uint64
	wordsCopied atomic.Uint64
}

// StatsSnapshot is an immutable copy of a Pool's counters.
type StatsSnapshot struct {
	PWBs        uint64 // persistence write-backs (CLWB)
	PFences     uint64 // persistence fences (SFENCE)
	PSyncs      uint64 // persistence synchronizations (SFENCE at commit)
	NTStores    uint64 // non-temporal line stores (MOVNTQ)
	WordsCopied uint64 // words moved by replica copies
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		PWBs:        s.pwbs.Load(),
		PFences:     s.pfences.Load(),
		PSyncs:      s.psyncs.Load(),
		NTStores:    s.ntstores.Load(),
		WordsCopied: s.wordsCopied.Load(),
	}
}

// reset zeroes every counter. Each field is stored atomically, so reset is
// data-race-free against concurrent snapshot readers and counter updates
// (TestStatsConcurrentReaders pins this under -race) — but the fields are
// zeroed one at a time, so a snapshot racing a reset can observe a torn
// view (some fields zeroed, others not), and an increment racing a reset
// can survive it or be lost depending on interleaving. Callers that need a
// consistent cut (bench harnesses, trace/stats parity checks) must reset
// only while the pool is quiescent; Group.ResetStats inherits the same
// contract pool by pool.
func (s *Stats) reset() {
	s.pwbs.Store(0)
	s.pfences.Store(0)
	s.psyncs.Store(0)
	s.ntstores.Store(0)
	s.wordsCopied.Store(0)
}

// Fences reports the total number of ordering instructions issued.
func (s StatsSnapshot) Fences() uint64 { return s.PFences + s.PSyncs }

// add returns the element-wise sum s + o, for aggregating a Group. The
// addends are independent per-pool snapshots, so a group sum taken while
// pools are being written is a field-wise-atomic but not point-in-time
// view — same contract as snapshot itself.
func (s StatsSnapshot) add(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		PWBs:        s.PWBs + o.PWBs,
		PFences:     s.PFences + o.PFences,
		PSyncs:      s.PSyncs + o.PSyncs,
		NTStores:    s.NTStores + o.NTStores,
		WordsCopied: s.WordsCopied + o.WordsCopied,
	}
}

// Sub returns the element-wise difference s - o, for measuring an interval.
func (s StatsSnapshot) Sub(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		PWBs:        s.PWBs - o.PWBs,
		PFences:     s.PFences - o.PFences,
		PSyncs:      s.PSyncs - o.PSyncs,
		NTStores:    s.NTStores - o.NTStores,
		WordsCopied: s.WordsCopied - o.WordsCopied,
	}
}

// String renders the snapshot as a compact single line.
func (s StatsSnapshot) String() string {
	return fmt.Sprintf("pwbs=%d pfences=%d psyncs=%d ntstores=%d copied=%dw",
		s.PWBs, s.PFences, s.PSyncs, s.NTStores, s.WordsCopied)
}
