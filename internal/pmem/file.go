package pmem

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// File persistence: a Pool's *persisted image* can be written to and
// reloaded from a file, which is how the examples survive process restarts —
// the moral equivalent of the real system's DAX-mapped device file. Only
// durable state travels: in Strict mode the shadow image (what a power
// failure would leave), in Direct mode the live image (everything).

// fileMagic identifies the snapshot format.
const fileMagic = 0x706d656d2d763031 // "pmem-v01"

// WriteFile atomically serializes the pool's persisted image to path. The
// pool must be quiescent (no in-flight transactions).
func (p *Pool) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("pmem: snapshot: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	words := p.data
	if p.mode == Strict {
		words = p.shadow
	}
	hdr := []uint64{
		fileMagic,
		uint64(p.mode),
		p.regionWords,
		uint64(len(p.regions)),
		uint64(len(p.headers)),
	}
	var buf [8]byte
	for _, v := range hdr {
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := w.Write(buf[:]); err != nil {
			return fail(f, tmp, err)
		}
	}
	for i := range p.headers {
		v := p.headers[i].Load()
		if p.mode == Strict {
			v = p.shadowHdr[i].Load()
		}
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := w.Write(buf[:]); err != nil {
			return fail(f, tmp, err)
		}
	}
	for _, v := range words {
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := w.Write(buf[:]); err != nil {
			return fail(f, tmp, err)
		}
	}
	if err := w.Flush(); err != nil {
		return fail(f, tmp, err)
	}
	if err := f.Sync(); err != nil {
		return fail(f, tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("pmem: snapshot: %w", err)
	}
	return os.Rename(tmp, path)
}

func fail(f *os.File, tmp string, err error) error {
	f.Close()
	os.Remove(tmp)
	return fmt.Errorf("pmem: snapshot: %w", err)
}

// ReadFile reconstructs a Pool from a snapshot written by WriteFile. The
// returned pool behaves as if freshly re-mapped after a restart: the loaded
// image is both the live and (in Strict mode) the persisted content.
func ReadFile(path string) (*Pool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pmem: load snapshot: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	readWord := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	magic, err := readWord()
	if err != nil || magic != fileMagic {
		return nil, fmt.Errorf("pmem: load snapshot: bad magic")
	}
	modeW, err := readWord()
	if err != nil {
		return nil, fmt.Errorf("pmem: load snapshot: %w", err)
	}
	regionWords, err := readWord()
	if err != nil {
		return nil, fmt.Errorf("pmem: load snapshot: %w", err)
	}
	nRegions, err := readWord()
	if err != nil {
		return nil, fmt.Errorf("pmem: load snapshot: %w", err)
	}
	nHeaders, err := readWord()
	if err != nil {
		return nil, fmt.Errorf("pmem: load snapshot: %w", err)
	}
	if nRegions == 0 || nRegions > 1<<16 || regionWords == 0 || nHeaders > 1<<16 {
		return nil, fmt.Errorf("pmem: load snapshot: implausible geometry")
	}
	p := New(Config{
		Mode:        Mode(modeW),
		RegionWords: regionWords,
		Regions:     int(nRegions),
		HeaderSlots: int(nHeaders),
	})
	for i := 0; i < int(nHeaders); i++ {
		v, err := readWord()
		if err != nil {
			return nil, fmt.Errorf("pmem: load snapshot: %w", err)
		}
		p.headers[i].Store(v)
		if p.mode == Strict {
			p.shadowHdr[i].Store(v)
		}
	}
	for w := range p.data {
		v, err := readWord()
		if err != nil {
			return nil, fmt.Errorf("pmem: load snapshot: %w", err)
		}
		p.data[w] = v
		if p.mode == Strict {
			p.shadow[w] = v
		}
	}
	return p, nil
}
