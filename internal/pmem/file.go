package pmem

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
)

// File persistence: a Pool's *persisted image* can be written to and
// reloaded from a file, which is how the examples survive process restarts —
// the moral equivalent of the real system's DAX-mapped device file. Only
// durable state travels: in Strict mode the shadow image (what a power
// failure would leave), in Direct mode the live image (everything).
//
// Snapshot format v2 (little-endian 64-bit words):
//
//	word 0      magic "pmem-v02"
//	word 1      format version (snapshotVersion)
//	word 2..5   mode, regionWords, nRegions, nHeaders
//	...         nHeaders header slots
//	...         nRegions × regionWords data words
//	last word   CRC-64/ECMA over every preceding byte
//
// The trailing checksum covers the geometry, the header slots and the data,
// so a bit-rotted or hand-edited snapshot is rejected with
// ErrCorruptSnapshot instead of being loaded as a silently wrong pool.

// fileMagic identifies the snapshot format.
const fileMagic = 0x706d656d2d763032 // "pmem-v02"

// snapshotVersion is bumped whenever the layout after the magic changes.
const snapshotVersion = 2

// ErrCorruptSnapshot reports a snapshot whose content fails validation: bad
// magic, unsupported version, implausible geometry or checksum mismatch.
var ErrCorruptSnapshot = errors.New("pmem: corrupt snapshot")

// ErrTruncatedSnapshot reports a snapshot file shorter than its geometry
// promises (an interrupted write or a truncated copy).
var ErrTruncatedSnapshot = errors.New("pmem: truncated snapshot")

// WriteFile atomically serializes the pool's persisted image to path. The
// pool must be quiescent (no in-flight transactions).
func (p *Pool) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("pmem: snapshot: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	sum := crc64.New(crcTable)
	out := io.MultiWriter(w, sum)
	words := p.data
	if p.mode == Strict {
		words = p.shadow
	}
	hdr := []uint64{
		fileMagic,
		snapshotVersion,
		uint64(p.mode),
		p.regionWords,
		uint64(len(p.regions)),
		uint64(len(p.headers)),
	}
	var buf [8]byte
	for _, v := range hdr {
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := out.Write(buf[:]); err != nil {
			return fail(f, tmp, err)
		}
	}
	for i := range p.headers {
		v := p.headers[i].Load()
		if p.mode == Strict {
			v = p.shadowHdr[i].Load()
		}
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := out.Write(buf[:]); err != nil {
			return fail(f, tmp, err)
		}
	}
	for _, v := range words {
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := out.Write(buf[:]); err != nil {
			return fail(f, tmp, err)
		}
	}
	binary.LittleEndian.PutUint64(buf[:], sum.Sum64())
	if _, err := w.Write(buf[:]); err != nil {
		return fail(f, tmp, err)
	}
	if err := w.Flush(); err != nil {
		return fail(f, tmp, err)
	}
	if err := f.Sync(); err != nil {
		return fail(f, tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("pmem: snapshot: %w", err)
	}
	return os.Rename(tmp, path)
}

func fail(f *os.File, tmp string, err error) error {
	f.Close()
	os.Remove(tmp)
	return fmt.Errorf("pmem: snapshot: %w", err)
}

// ReadFile reconstructs a Pool from a snapshot written by WriteFile. The
// returned pool behaves as if freshly re-mapped after a restart: the loaded
// image is both the live and (in Strict mode) the persisted content.
//
// A short file fails with an error wrapping ErrTruncatedSnapshot; wrong
// magic, an unknown version, implausible geometry or a checksum mismatch
// fail with an error wrapping ErrCorruptSnapshot. ReadFile never panics and
// never returns a partially populated pool.
func ReadFile(path string) (*Pool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pmem: load snapshot: %w", err)
	}
	defer f.Close()
	sum := crc64.New(crcTable)
	r := io.TeeReader(bufio.NewReaderSize(f, 1<<20), sum)
	readWord := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return 0, ErrTruncatedSnapshot
			}
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	magic, err := readWord()
	if err != nil {
		return nil, fmt.Errorf("pmem: load snapshot: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("pmem: load snapshot: bad magic %#x: %w", magic, ErrCorruptSnapshot)
	}
	version, err := readWord()
	if err != nil {
		return nil, fmt.Errorf("pmem: load snapshot: %w", err)
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("pmem: load snapshot: unsupported version %d: %w", version, ErrCorruptSnapshot)
	}
	var geom [4]uint64 // mode, regionWords, nRegions, nHeaders
	for i := range geom {
		if geom[i], err = readWord(); err != nil {
			return nil, fmt.Errorf("pmem: load snapshot: %w", err)
		}
	}
	modeW, regionWords, nRegions, nHeaders := geom[0], geom[1], geom[2], geom[3]
	if modeW > uint64(Strict) || nRegions == 0 || nRegions > 1<<16 ||
		regionWords == 0 || regionWords > 1<<32 || nHeaders > 1<<16 ||
		regionWords%WordsPerLine != 0 {
		return nil, fmt.Errorf("pmem: load snapshot: implausible geometry: %w", ErrCorruptSnapshot)
	}
	// Before allocating anything, the file must be exactly as long as the
	// geometry promises: 6 header words, the slots, the data, the checksum.
	// This turns a crafted or corrupted geometry into a typed error instead
	// of a doomed multi-gigabyte allocation.
	if fi, err := f.Stat(); err != nil {
		return nil, fmt.Errorf("pmem: load snapshot: %w", err)
	} else if want := int64(6+nHeaders+nRegions*regionWords+1) * 8; fi.Size() < want {
		return nil, fmt.Errorf("pmem: load snapshot: %d bytes, need %d: %w", fi.Size(), want, ErrTruncatedSnapshot)
	} else if fi.Size() > want {
		return nil, fmt.Errorf("pmem: load snapshot: %d trailing bytes: %w", fi.Size()-want, ErrCorruptSnapshot)
	}
	p := New(Config{
		Mode:        Mode(modeW),
		RegionWords: regionWords,
		Regions:     int(nRegions),
		HeaderSlots: int(nHeaders),
	})
	for i := 0; i < int(nHeaders); i++ {
		v, err := readWord()
		if err != nil {
			return nil, fmt.Errorf("pmem: load snapshot: %w", err)
		}
		p.headers[i].Store(v)
		if p.mode == Strict {
			p.shadowHdr[i].Store(v)
		}
	}
	for w := range p.data {
		v, err := readWord()
		if err != nil {
			return nil, fmt.Errorf("pmem: load snapshot: %w", err)
		}
		p.data[w] = v
		if p.mode == Strict {
			p.shadow[w] = v
		}
	}
	want := sum.Sum64() // checksum of everything read so far
	got, err := readWord()
	if err != nil {
		return nil, fmt.Errorf("pmem: load snapshot: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("pmem: load snapshot: checksum mismatch: %w", ErrCorruptSnapshot)
	}
	return p, nil
}
