package pmem

import (
	"sync"
	"sync/atomic"
	"time"
)

// LatencyModel injects per-instruction delays so that the relative cost of
// persistence instructions versus computation resembles real persistent
// memory. The defaults used by the benchmark harness are calibrated to the
// published Optane DC PMM measurements (Izraelevitz et al., 2019): a CLWB of
// a cached line costs on the order of tens of nanoseconds and an SFENCE that
// must drain pending write-backs costs roughly a hundred.
//
// The zero value disables latency injection entirely (counts only), which is
// what unit tests use.
type LatencyModel struct {
	PWB     time.Duration // per cache-line write-back
	Fence   time.Duration // per pfence/psync
	NTStore time.Duration // per non-temporal line store
}

// DefaultOptane is a latency model approximating Optane DC PMM behaviour.
var DefaultOptane = LatencyModel{
	PWB:     60 * time.Nanosecond,
	Fence:   120 * time.Nanosecond,
	NTStore: 40 * time.Nanosecond,
}

func (l LatencyModel) spinPWB()   { spin(l.PWB) }
func (l LatencyModel) spinFence() { spin(l.Fence) }
func (l LatencyModel) spinNT()    { spin(l.NTStore) }

func (l LatencyModel) spinNTLines(n uint64) {
	if l.NTStore <= 0 || n == 0 {
		return
	}
	spin(time.Duration(n) * l.NTStore)
}

var (
	calibrateOnce sync.Once
	loopsPerNano  float64
)

// calibrate measures how many iterations of the spin loop body run per
// nanosecond, so short delays can be injected without calling into the
// runtime on every iteration.
func calibrate() {
	const probe = 1 << 20
	start := time.Now()
	spinLoop(probe)
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	loopsPerNano = float64(probe) / float64(elapsed)
	if loopsPerNano <= 0 {
		loopsPerNano = 1
	}
}

var spinSink atomic.Uint64

// spinLoop burns CPU for n iterations without being optimized away.
func spinLoop(n uint64) {
	acc := n
	for i := uint64(0); i < n; i++ {
		acc = acc*2862933555777941757 + 3037000493
	}
	spinSink.Store(acc)
}

// spin busy-waits for approximately d without yielding the processor, the
// same way a stalled CLWB/SFENCE occupies the core.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	calibrateOnce.Do(calibrate)
	spinLoop(uint64(float64(d) * loopsPerNano))
}
