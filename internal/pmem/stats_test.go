package pmem

import (
	"sync"
	"testing"
)

// TestStatsConcurrentReaders pins the contract documented on Stats.reset:
// snapshot, reset and counter updates are data-race-free against each other
// (every field is atomic), even though a racing snapshot may see a torn
// (partially reset) view. Run under -race this test fails if any accessor
// regresses to a plain load or store.
func TestStatsConcurrentReaders(t *testing.T) {
	pool := New(Config{RegionWords: 256, Regions: 2})
	r := pool.Region(0)

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		// A realistic persistence loop bumping every counter.
		defer writer.Done()
		buf := make([]uint64, WordsPerLine)
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			addr := (i * WordsPerLine) % 128
			r.Store(addr, i)
			r.PWB(addr)
			r.PFence()
			r.NTStoreLine(128+addr%64, buf)
			pool.Region(1).CopyFrom(r, 64)
			pool.HeaderStore(0, i)
			pool.PWBHeader(0)
			pool.PSync()
		}
	}()

	var bounded sync.WaitGroup
	for w := 0; w < 4; w++ {
		bounded.Add(1)
		go func() {
			defer bounded.Done()
			for i := 0; i < 2000; i++ {
				s := pool.Stats()
				_ = s.Fences()
				_ = s.String()
			}
		}()
	}
	// A concurrent resetter is legal under the documented contract: readers
	// may observe a torn (partially zeroed) view, but never a data race.
	bounded.Add(1)
	go func() {
		defer bounded.Done()
		for i := 0; i < 500; i++ {
			pool.ResetStats()
		}
	}()

	bounded.Wait()
	close(stop)
	writer.Wait()
}

// TestStatsResetQuiescent pins the quiescent-reset semantics the bench
// harnesses rely on: after a quiescent reset every counter reads zero and
// subsequent work counts from zero.
func TestStatsResetQuiescent(t *testing.T) {
	pool := New(Config{RegionWords: 64, Regions: 1})
	r := pool.Region(0)
	r.Store(0, 1)
	r.PWB(0)
	r.PFence()
	if s := pool.Stats(); s.PWBs != 1 || s.PFences != 1 {
		t.Fatalf("pre-reset stats %v", s)
	}
	pool.ResetStats()
	if s := pool.Stats(); s != (StatsSnapshot{}) {
		t.Fatalf("post-reset stats %v, want zero", s)
	}
	r.Store(8, 2)
	r.PWB(8)
	if s := pool.Stats(); s.PWBs != 1 {
		t.Fatalf("counting did not resume from zero: %v", s)
	}
}

// TestGroupStatsSum pins that a group sum is the field-wise total of its
// pools (the field-wise-atomic contract documented on StatsSnapshot.add).
func TestGroupStatsSum(t *testing.T) {
	g := NewGroup(
		New(Config{RegionWords: 64, Regions: 1}),
		New(Config{RegionWords: 64, Regions: 1}),
	)
	for i := 0; i < g.Len(); i++ {
		r := g.Pool(i).Region(0)
		for k := 0; k <= i; k++ {
			r.Store(uint64(k*8), 1)
			r.PWB(uint64(k * 8))
		}
		r.PFence()
	}
	s := g.Stats()
	if s.PWBs != 3 || s.PFences != 2 {
		t.Fatalf("group sum %v, want pwbs=3 pfences=2", s)
	}
	g.ResetStats()
	if s := g.Stats(); s != (StatsSnapshot{}) {
		t.Fatalf("group reset left %v", s)
	}
}
