package pmem

import (
	"math/rand"
	"testing"

	"repro/internal/obs"
)

// TestWordsPerLinePinned pins the duplicated constant: obs cannot import
// pmem (pmem emits into obs), so obs.WordsPerLine mirrors pmem.WordsPerLine
// and this test is the compile-firewall between them.
func TestWordsPerLinePinned(t *testing.T) {
	if obs.WordsPerLine != WordsPerLine {
		t.Fatalf("obs.WordsPerLine = %d, pmem.WordsPerLine = %d — update the mirror",
			obs.WordsPerLine, WordsPerLine)
	}
}

// TestPoolTraceParity drives every traced persistence instruction once and
// asserts the trace reconstructs the stats counters exactly — the unit-level
// version of the per-engine parity smoke in internal/chaos.
func TestPoolTraceParity(t *testing.T) {
	pool := New(Config{Mode: Strict, RegionWords: 256, Regions: 2})
	tr := obs.NewTracer(4096)
	pool.SetTracer(tr)
	r0, r1 := pool.Region(0), pool.Region(1)

	r0.Store(3, 7)
	r0.AtomicStore(8, 9)
	r0.CAS(8, 9, 10)
	r0.CAS(8, 99, 100) // failed CAS: no store event
	r0.PWB(3)
	r0.PWB(8)
	r0.PFence()
	r0.NTStoreLine(16, make([]uint64, WordsPerLine))
	r1.CopyFrom(r0, 24)
	r1.NTCopyFrom(r0, 20)
	r1.FlushRange(0, 24)
	r1.PFence()
	pool.HeaderStore(0, 5)
	pool.HeaderCAS(1, 0, 6)
	pool.HeaderCAS(1, 0, 7) // failed CAS: no event
	pool.PWBHeader(0)
	pool.PWBHeader(1)
	pool.PSync()
	pool.PFenceGlobal()

	snap := tr.Snapshot()
	if snap.Dropped != 0 {
		t.Fatalf("ring dropped %d events", snap.Dropped)
	}
	got := snap.Counts()
	s := pool.Stats()
	want := obs.PhysCounts{
		PWBs:        s.PWBs,
		PFences:     s.PFences,
		PSyncs:      s.PSyncs,
		NTStores:    s.NTStores,
		WordsCopied: s.WordsCopied,
	}
	if got != want {
		t.Fatalf("trace counts %+v != stats %+v", got, want)
	}

	kinds := snap.KindCounts()
	if kinds[obs.KindStore] != 3 { // Store + AtomicStore + successful CAS
		t.Errorf("store events = %d, want 3", kinds[obs.KindStore])
	}
	if kinds[obs.KindHeaderStore] != 2 { // HeaderStore + successful HeaderCAS
		t.Errorf("header-store events = %d, want 2", kinds[obs.KindHeaderStore])
	}
	if kinds[obs.KindCopy] != 1 || kinds[obs.KindNTCopy] != 1 {
		t.Errorf("copy events = %d/%d, want 1/1", kinds[obs.KindCopy], kinds[obs.KindNTCopy])
	}
}

// TestCrashEventTraced pins that Pool.Crash emits KindCrash, so the dynamic
// checker can clear pending obligations at the same point the simulator
// drops its cache image.
func TestCrashEventTraced(t *testing.T) {
	pool := New(Config{Mode: Strict, RegionWords: 64, Regions: 1})
	tr := obs.NewTracer(0)
	pool.SetTracer(tr)
	r := pool.Region(0)
	r.Store(0, 1) // dirty, never flushed
	pool.Crash(CrashConservative, rand.New(rand.NewSource(1)))
	snap := tr.Snapshot()
	if n := snap.KindCounts()[obs.KindCrash]; n != 1 {
		t.Fatalf("crash events = %d, want 1", n)
	}
	// The trace stays checkable across the crash: the unflushed store owes
	// nothing after the cache image is gone.
	tail := append(snap.Events,
		obs.Event{Seq: snap.Events[len(snap.Events)-1].Seq + 1, TID: -1,
			Kind: obs.KindPublish, Region: 0, Addr: 0, Len: 8, Arg: obs.PubHeap})
	vs, err := obs.CheckOrdering(obs.Trace{Events: tail}, obs.CheckOptions{})
	if err != nil || len(vs) != 0 {
		t.Fatalf("post-crash publish should be clean: vs=%v err=%v", vs, err)
	}
}

// TestGroupTracerPoolIDs pins Group.SetTracer's pool numbering (pool i gets
// id i) and that clones do not inherit the tracer.
func TestGroupTracerPoolIDs(t *testing.T) {
	g := NewGroup(
		New(Config{RegionWords: 64, Regions: 1}),
		New(Config{RegionWords: 64, Regions: 1}),
	)
	tr := obs.NewTracer(0)
	g.SetTracer(tr)
	if g.Tracer() != tr {
		t.Fatalf("Group.Tracer() did not return the attached tracer")
	}
	g.Pool(0).Region(0).Store(0, 1)
	g.Pool(1).Region(0).Store(0, 2)
	snap := tr.Snapshot()
	if len(snap.Events) != 2 || snap.Events[0].Pool != 0 || snap.Events[1].Pool != 1 {
		t.Fatalf("pool ids wrong: %+v", snap.Events)
	}
	if g.Clone().Pool(0).Traced() {
		t.Fatalf("clone inherited the tracer; crash replicas must not trace")
	}
}

// TestUntracedNoAlloc asserts the disabled-tracing fast path: with no tracer
// attached, the persistence hot path performs zero allocations (the nil
// check is all a disabled pool pays).
func TestUntracedNoAlloc(t *testing.T) {
	pool := New(Config{RegionWords: 256, Regions: 1})
	r := pool.Region(0)
	n := testing.AllocsPerRun(200, func() {
		r.Store(8, 1)
		r.PWB(8)
		r.PFence()
		pool.HeaderStore(0, 1)
		pool.PWBHeader(0)
		pool.PSync()
	})
	if n != 0 {
		t.Fatalf("untraced persistence path allocates %v times per run, want 0", n)
	}
}

// TestTracedNoAlloc asserts the enabled path is allocation-free too — Emit
// writes into the preallocated ring.
func TestTracedNoAlloc(t *testing.T) {
	pool := New(Config{RegionWords: 256, Regions: 1})
	pool.SetTracer(obs.NewTracer(1 << 16))
	r := pool.Region(0)
	n := testing.AllocsPerRun(200, func() {
		r.Store(8, 1)
		r.PWB(8)
		r.PFence()
	})
	if n != 0 {
		t.Fatalf("traced persistence path allocates %v times per run, want 0", n)
	}
}

// storeFlushFence is one hot-path iteration shared by the overhead pair.
func storeFlushFence(r *Region, i uint64) {
	addr := (i % 16) * WordsPerLine
	r.Store(addr, i)
	r.PWB(addr)
	r.PFence()
}

// BenchmarkPersistUntraced / BenchmarkPersistTraced measure the cost of the
// tracing hook on the store+PWB+PFence hot path. Compare:
//
//	go test -run xx -bench 'BenchmarkPersist' ./internal/pmem
//
// The untraced variant's delta vs the pre-obs baseline is the nil-check
// cost; the ISSUE bound (<2% disabled overhead) is asserted on the psim
// workload benchmark in internal/psim.
func BenchmarkPersistUntraced(b *testing.B) {
	pool := New(Config{RegionWords: 256, Regions: 1})
	r := pool.Region(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		storeFlushFence(r, uint64(i))
	}
}

func BenchmarkPersistTraced(b *testing.B) {
	pool := New(Config{RegionWords: 256, Regions: 1})
	pool.SetTracer(obs.NewTracer(1 << 16))
	r := pool.Region(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		storeFlushFence(r, uint64(i))
	}
}
