package pmem

import (
	"errors"
	"math/rand"
	"testing"
)

func TestInjectFailureSurvivesCrash(t *testing.T) {
	// The nested-failure model: a counter armed before (or across) Crash
	// stays armed, so recovery code itself can be interrupted.
	p := New(Config{Mode: Strict, RegionWords: 64, Regions: 1})
	r := p.Region(0)
	r.Store(0, 1)
	r.PWB(0)
	r.PFence()
	p.Crash(CrashConservative, nil)
	p.InjectFailure(2)
	if got := p.InjectRemaining(); got != 2 {
		t.Fatalf("InjectRemaining = %d after arming, want 2", got)
	}
	r.Store(1, 2) // event 1 — "recovery" begins
	p.Crash(CrashConservative, nil)
	if got := p.InjectRemaining(); got != 1 {
		t.Fatalf("Crash disturbed the armed counter: remaining = %d, want 1", got)
	}
	r.Store(1, 2) // event 2: the counter reaches zero
	func() {
		defer func() {
			if recover() != ErrSimulatedPowerFailure {
				t.Error("armed counter did not survive Crash")
			}
		}()
		r.PWB(1) // event 3 → boom: recovery crashed mid-flight
	}()
	p.InjectFailure(-1)
}

func TestCorruptLineTearsPersistedImage(t *testing.T) {
	p := New(Config{Mode: Strict, RegionWords: 64, Regions: 1})
	r := p.Region(0)
	for i := uint64(0); i < WordsPerLine; i++ {
		r.Store(i, 100+i)
		r.PWB(i)
	}
	r.PFence()
	p.CorruptLine(0, 0, rand.New(rand.NewSource(1)))
	p.Crash(CrashConservative, nil) // expose the persisted image
	damaged := 0
	for i := uint64(0); i < WordsPerLine; i++ {
		if r.Load(i) != 100+i {
			damaged++
		}
	}
	if damaged == 0 {
		t.Fatal("CorruptLine damaged no words")
	}
}

func TestFlipBit(t *testing.T) {
	p := New(Config{Mode: Strict, RegionWords: 64, Regions: 1})
	r := p.Region(0)
	r.Store(3, 0b1000)
	r.PWB(3)
	r.PFence()
	p.FlipBit(0, 3, 3)
	if got := r.Load(3); got != 0 {
		t.Fatalf("cache image after flip = %b, want 0", got)
	}
	p.Crash(CrashConservative, nil)
	if got := r.Load(3); got != 0 {
		t.Fatalf("persisted image after flip = %b, want 0", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := New(Config{Mode: Strict, RegionWords: 64, Regions: 2, HeaderSlots: 4})
	r := p.Region(0)
	r.Store(5, 55)
	r.PWB(5)
	r.PFence()
	r.Store(6, 66) // volatile: in cache, not yet persisted
	p.HeaderStore(1, 11)
	p.PWBHeader(1)
	p.PSync()
	p.InjectFailure(100)

	q := p.Clone()
	p.InjectFailure(-1)
	if got := q.InjectRemaining(); got >= 0 {
		t.Fatalf("clone inherited the armed failure point: %d", got)
	}
	if got := q.Region(0).Load(5); got != 55 {
		t.Fatalf("clone word 5 = %d, want 55", got)
	}
	if got := q.Region(0).Load(6); got != 66 {
		t.Fatalf("clone cache word 6 = %d, want 66", got)
	}
	if got := q.HeaderLoad(1); got != 11 {
		t.Fatalf("clone header 1 = %d, want 11", got)
	}
	// Pending (unfenced) state was cloned too: a crash must drop word 6 in
	// both pools, independently.
	q.Region(0).Store(7, 77)
	q.Crash(CrashConservative, nil)
	if got := q.Region(0).Load(6); got != 0 {
		t.Fatalf("clone kept unfenced word across crash: %d", got)
	}
	if got := p.Region(0).Load(6); got != 66 {
		t.Fatalf("crashing the clone disturbed the original: %d", got)
	}
	p.Crash(CrashConservative, nil)
	if got := p.Region(0).Load(6); got != 0 {
		t.Fatalf("original kept unfenced word across crash: %d", got)
	}
}

func TestCloneIntoReplacesScratchState(t *testing.T) {
	p := New(Config{Mode: Strict, RegionWords: 64, Regions: 2, HeaderSlots: 4})
	r := p.Region(0)
	r.Store(5, 55)
	r.PWB(5)
	r.PFence()
	r.Store(6, 66) // volatile: pending-list state must be copied too
	p.HeaderStore(1, 11)
	p.PWBHeader(1)
	p.PSync()

	// Scratch carries stale state from a "previous experiment", including a
	// fired injector latch: a crashed scratch must come back reusable.
	scratch := New(Config{Mode: Strict, RegionWords: 64, Regions: 2, HeaderSlots: 4})
	scratch.Region(0).Store(5, 999)
	scratch.Region(1).Store(0, 888)
	scratch.HeaderStore(1, 777)
	scratch.InjectFailure(1)
	func() {
		defer func() {
			if recover() != ErrSimulatedPowerFailure {
				t.Fatal("scratch setup failure point did not fire")
			}
		}()
		scratch.Region(0).Store(9, 1)
		scratch.Region(0).PWB(9)
	}()

	p.CloneInto(scratch)
	if got := scratch.InjectRemaining(); got >= 0 {
		t.Fatalf("CloneInto left the failure point armed: %d", got)
	}
	if got := scratch.Region(0).Load(5); got != 55 {
		t.Fatalf("scratch word 5 = %d, want 55", got)
	}
	if got := scratch.Region(1).Load(0); got != 0 {
		t.Fatalf("scratch region 1 word 0 = %d, want 0", got)
	}
	if got := scratch.HeaderLoad(1); got != 11 {
		t.Fatalf("scratch header 1 = %d, want 11", got)
	}
	if s := scratch.Stats(); s.PWBs != 0 || s.PFences != 0 {
		t.Fatalf("CloneInto did not reset stats: %+v", s)
	}
	// The fired latch was cleared: new events on the scratch must not panic,
	// and the pending list came over so a crash drops word 6 exactly as it
	// would on the original.
	scratch.Region(1).Store(1, 2)
	scratch.Crash(CrashConservative, nil)
	if got := scratch.Region(0).Load(6); got != 0 {
		t.Fatalf("scratch kept unfenced word across crash: %d", got)
	}
	if got := p.Region(0).Load(6); got != 66 {
		t.Fatalf("crashing the scratch disturbed the original: %d", got)
	}
}

func TestCloneIntoGeometryMismatchPanics(t *testing.T) {
	src := New(Config{Mode: Strict, RegionWords: 64, Regions: 2})
	for _, dst := range []*Pool{
		New(Config{Mode: Strict, RegionWords: 128, Regions: 2}),
		New(Config{Mode: Strict, RegionWords: 64, Regions: 1}),
		New(Config{Mode: Strict, RegionWords: 64, Regions: 2, HeaderSlots: 8}),
		New(Config{Mode: Direct, RegionWords: 64, Regions: 2}),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("CloneInto accepted mismatched geometry")
				}
			}()
			src.CloneInto(dst)
		}()
	}
}

func TestHeaderCRCPair(t *testing.T) {
	p := New(Config{Mode: Strict, RegionWords: 64, Regions: 1, HeaderSlots: 4})
	// Never written: zero value, no error.
	if v, err := p.HeaderLoadCRC(0); v != 0 || err != nil {
		t.Fatalf("unwritten pair = (%d, %v), want (0, nil)", v, err)
	}
	p.HeaderStoreCRC(0, 0xfeedface)
	if v, err := p.HeaderLoadCRC(0); v != 0xfeedface || err != nil {
		t.Fatalf("pair = (%#x, %v), want (0xfeedface, nil)", v, err)
	}
	p.PWBHeader(0)
	p.PWBHeader(1)
	p.PSync()
	if v, err := p.PersistedHeaderCRC(0); v != 0xfeedface || err != nil {
		t.Fatalf("persisted pair = (%#x, %v)", v, err)
	}
	// Tamper with the value: the tag no longer matches.
	p.HeaderStore(0, 0xfeedfacf)
	if _, err := p.HeaderLoadCRC(0); !errors.Is(err, ErrCorruptHeader) {
		t.Fatalf("tampered pair: err = %v, want ErrCorruptHeader", err)
	}
	// Tamper with the tag instead.
	p.HeaderStore(0, 0xfeedface)
	p.HeaderStore(1, p.HeaderLoad(1)^1)
	if _, err := p.HeaderLoadCRC(0); !errors.Is(err, ErrCorruptHeader) {
		t.Fatalf("tampered tag: err = %v, want ErrCorruptHeader", err)
	}
}

func TestChecksumWords(t *testing.T) {
	a := ChecksumWords(1, 2, 3)
	if a != ChecksumWords(1, 2, 3) {
		t.Fatal("ChecksumWords not deterministic")
	}
	if a == ChecksumWords(1, 2, 4) || a == ChecksumWords(3, 2, 1) || a == ChecksumWords(1, 2) {
		t.Fatal("ChecksumWords collides on trivial variations")
	}
}

func TestCorruptionError(t *testing.T) {
	err := Corruptf("widget", "slot %d bad", 7)
	if err.Error() != "pmem: corrupt state (widget): slot 7 bad" {
		t.Fatalf("Error() = %q", err.Error())
	}
	if ce, ok := AsCorruption(any(err)); !ok || ce.Component != "widget" {
		t.Fatalf("AsCorruption = (%v, %v)", ce, ok)
	}
	if _, ok := AsCorruption("just a string"); ok {
		t.Fatal("AsCorruption accepted a plain string")
	}
}
