package pmem

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotRoundTripDirect(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pool.pmem")
	p := New(Config{Mode: Direct, RegionWords: 128, Regions: 2, HeaderSlots: 4})
	p.Region(0).Store(5, 42)
	p.Region(1).Store(7, 99)
	p.HeaderStore(1, 1234)
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	q, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if q.Regions() != 2 || q.RegionWords() != 128 {
		t.Fatalf("geometry lost: %d regions × %d words", q.Regions(), q.RegionWords())
	}
	if got := q.Region(0).Load(5); got != 42 {
		t.Fatalf("region 0 word 5 = %d", got)
	}
	if got := q.Region(1).Load(7); got != 99 {
		t.Fatalf("region 1 word 7 = %d", got)
	}
	if got := q.HeaderLoad(1); got != 1234 {
		t.Fatalf("header 1 = %d", got)
	}
}

func TestSnapshotStrictPersistsOnlyDurableState(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pool.pmem")
	p := New(Config{Mode: Strict, RegionWords: 64, Regions: 1})
	r := p.Region(0)
	r.Store(1, 11)
	r.PWB(1)
	r.PFence()     // durable
	r.Store(2, 22) // volatile only
	p.HeaderStore(0, 7)
	p.PWBHeader(0)
	p.PSync()
	p.HeaderStore(0, 8) // volatile only
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	q, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Region(0).Load(1); got != 11 {
		t.Fatalf("durable word lost: %d", got)
	}
	if got := q.Region(0).Load(2); got != 0 {
		t.Fatalf("volatile word survived the snapshot: %d", got)
	}
	if got := q.HeaderLoad(0); got != 7 {
		t.Fatalf("header = %d, want the durable 7", got)
	}
	// The loaded pool keeps Strict semantics.
	q.Region(0).Store(3, 33)
	q.Crash(CrashConservative, nil)
	if got := q.Region(0).Load(3); got != 0 {
		t.Fatal("loaded pool lost Strict semantics")
	}
	if got := q.Region(0).Load(1); got != 11 {
		t.Fatal("loaded pool lost the snapshot content on crash")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk")
	if err := os.WriteFile(path, []byte("not a pool"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSnapshotTruncatedFails(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pool.pmem")
	p := New(Config{Mode: Direct, RegionWords: 256, Regions: 2})
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}
