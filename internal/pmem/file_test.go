package pmem

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotRoundTripDirect(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pool.pmem")
	p := New(Config{Mode: Direct, RegionWords: 128, Regions: 2, HeaderSlots: 4})
	p.Region(0).Store(5, 42)
	p.Region(1).Store(7, 99)
	p.HeaderStore(1, 1234)
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	q, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if q.Regions() != 2 || q.RegionWords() != 128 {
		t.Fatalf("geometry lost: %d regions × %d words", q.Regions(), q.RegionWords())
	}
	if got := q.Region(0).Load(5); got != 42 {
		t.Fatalf("region 0 word 5 = %d", got)
	}
	if got := q.Region(1).Load(7); got != 99 {
		t.Fatalf("region 1 word 7 = %d", got)
	}
	if got := q.HeaderLoad(1); got != 1234 {
		t.Fatalf("header 1 = %d", got)
	}
}

func TestSnapshotStrictPersistsOnlyDurableState(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pool.pmem")
	p := New(Config{Mode: Strict, RegionWords: 64, Regions: 1})
	r := p.Region(0)
	r.Store(1, 11)
	r.PWB(1)
	r.PFence()     // durable
	r.Store(2, 22) // volatile only
	p.HeaderStore(0, 7)
	p.PWBHeader(0)
	p.PSync()
	p.HeaderStore(0, 8) // volatile only
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	q, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Region(0).Load(1); got != 11 {
		t.Fatalf("durable word lost: %d", got)
	}
	if got := q.Region(0).Load(2); got != 0 {
		t.Fatalf("volatile word survived the snapshot: %d", got)
	}
	if got := q.HeaderLoad(0); got != 7 {
		t.Fatalf("header = %d, want the durable 7", got)
	}
	// The loaded pool keeps Strict semantics.
	q.Region(0).Store(3, 33)
	q.Crash(CrashConservative, nil)
	if got := q.Region(0).Load(3); got != 0 {
		t.Fatal("loaded pool lost Strict semantics")
	}
	if got := q.Region(0).Load(1); got != 11 {
		t.Fatal("loaded pool lost the snapshot content on crash")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk")
	if err := os.WriteFile(path, []byte("not a pool"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSnapshotTruncatedFails(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pool.pmem")
	p := New(Config{Mode: Direct, RegionWords: 256, Regions: 2})
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

// TestSnapshotTypedErrors damages a valid snapshot in each characteristic
// way and asserts ReadFile reports the matching sentinel, so callers can
// distinguish "partial write, retry the copy" from "the medium lied".
func TestSnapshotTypedErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pool.pmem")
	p := New(Config{Mode: Strict, RegionWords: 128, Regions: 2, HeaderSlots: 4})
	r := p.Region(0)
	r.Store(9, 1234)
	r.PWB(9)
	r.PFence()
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"truncated header", func(b []byte) []byte { return b[:16] }, ErrTruncatedSnapshot},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-24] }, ErrTruncatedSnapshot},
		{"missing checksum", func(b []byte) []byte { return b[:len(b)-8] }, ErrTruncatedSnapshot},
		{"empty file", func(b []byte) []byte { return nil }, ErrTruncatedSnapshot},
		{"bit flip in data", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x10
			return c
		}, ErrCorruptSnapshot},
		{"bit flip in checksum", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 1
			return c
		}, ErrCorruptSnapshot},
		{"wrong magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			binary.LittleEndian.PutUint64(c[0:8], 0x6465616462656566)
			return c
		}, ErrCorruptSnapshot},
		{"future version", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			binary.LittleEndian.PutUint64(c[8:16], 99)
			return c
		}, ErrCorruptSnapshot},
		{"trailing bytes", func(b []byte) []byte { return append(append([]byte(nil), b...), 0, 0, 0, 0, 0, 0, 0, 0) }, ErrCorruptSnapshot},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, tc.mutate(good), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := ReadFile(path)
			if !errors.Is(err, tc.want) {
				t.Fatalf("ReadFile error = %v, want %v", err, tc.want)
			}
		})
	}
	// The pristine bytes still load, and carry the durable word.
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	q, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Region(0).Load(9); got != 1234 {
		t.Fatalf("durable word = %d, want 1234", got)
	}
}
