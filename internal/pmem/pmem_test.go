package pmem

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func newStrict(t *testing.T, words uint64, regions int) *Pool {
	t.Helper()
	return New(Config{Mode: Strict, RegionWords: words, Regions: regions})
}

func TestNewGeometry(t *testing.T) {
	p := New(Config{Mode: Direct, RegionWords: 10, Regions: 3})
	if p.Regions() != 3 {
		t.Fatalf("Regions() = %d, want 3", p.Regions())
	}
	if p.RegionWords()%WordsPerLine != 0 {
		t.Fatalf("RegionWords() = %d, not line-aligned", p.RegionWords())
	}
	if p.RegionWords() < 10 {
		t.Fatalf("RegionWords() = %d, want >= 10", p.RegionWords())
	}
	if p.NVMBytes() == 0 {
		t.Fatal("NVMBytes() = 0")
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	for _, cfg := range []Config{
		{RegionWords: 0, Regions: 1},
		{RegionWords: 8, Regions: 0},
		{RegionWords: 8, Regions: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	p := New(Config{Mode: Direct, RegionWords: 64, Regions: 2})
	r0, r1 := p.Region(0), p.Region(1)
	r0.Store(5, 42)
	r1.Store(5, 99)
	if got := r0.Load(5); got != 42 {
		t.Errorf("region 0 word 5 = %d, want 42", got)
	}
	if got := r1.Load(5); got != 99 {
		t.Errorf("region 1 word 5 = %d, want 99 (regions must be disjoint)", got)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	p := New(Config{Mode: Direct, RegionWords: 8, Regions: 1})
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds Load did not panic")
		}
	}()
	p.Region(0).Load(8)
}

func TestAtomicOps(t *testing.T) {
	p := New(Config{Mode: Direct, RegionWords: 64, Regions: 1})
	r := p.Region(0)
	r.AtomicStore(3, 7)
	if got := r.AtomicLoad(3); got != 7 {
		t.Fatalf("AtomicLoad = %d, want 7", got)
	}
	if !r.CAS(3, 7, 8) {
		t.Fatal("CAS(7->8) failed")
	}
	if r.CAS(3, 7, 9) {
		t.Fatal("CAS with stale expected value succeeded")
	}
	if got := r.AtomicLoad(3); got != 8 {
		t.Fatalf("after CAS, word = %d, want 8", got)
	}
}

func TestStrictUnflushedStoreIsLostOnCrash(t *testing.T) {
	p := newStrict(t, 64, 1)
	r := p.Region(0)
	r.Store(1, 11)
	p.Crash(CrashConservative, nil)
	if got := r.Load(1); got != 0 {
		t.Fatalf("unflushed store survived crash: word = %d, want 0", got)
	}
}

func TestStrictFlushedButUnfencedStoreIsLost(t *testing.T) {
	p := newStrict(t, 64, 1)
	r := p.Region(0)
	r.Store(1, 11)
	r.PWB(1)
	// No fence: the write-back was initiated but not guaranteed ordered.
	p.Crash(CrashConservative, nil)
	if got := r.Load(1); got != 0 {
		t.Fatalf("flushed-but-unfenced store survived conservative crash: %d", got)
	}
}

func TestStrictFlushedAndFencedStoreSurvives(t *testing.T) {
	p := newStrict(t, 64, 1)
	r := p.Region(0)
	r.Store(1, 11)
	r.PWB(1)
	r.PFence()
	p.Crash(CrashConservative, nil)
	if got := r.Load(1); got != 11 {
		t.Fatalf("flushed+fenced store lost on crash: word = %d, want 11", got)
	}
}

func TestStrictFenceCoversWholeLine(t *testing.T) {
	p := newStrict(t, 64, 1)
	r := p.Region(0)
	// Words 0..7 share a cache line; flushing word 0 persists all of it.
	for w := uint64(0); w < WordsPerLine; w++ {
		r.Store(w, w+100)
	}
	r.PWB(0)
	r.PFence()
	// Word 8 is on the next line and was never flushed.
	r.Store(8, 200)
	p.Crash(CrashConservative, nil)
	for w := uint64(0); w < WordsPerLine; w++ {
		if got := r.Load(w); got != w+100 {
			t.Errorf("word %d = %d, want %d", w, got, w+100)
		}
	}
	if got := r.Load(8); got != 0 {
		t.Errorf("word 8 = %d, want 0 (different line, never flushed)", got)
	}
}

func TestStrictStoreAfterFenceIsLost(t *testing.T) {
	p := newStrict(t, 64, 1)
	r := p.Region(0)
	r.Store(1, 11)
	r.PWB(1)
	r.PFence()
	r.Store(1, 22) // dirty again, not flushed
	p.Crash(CrashConservative, nil)
	if got := r.Load(1); got != 11 {
		t.Fatalf("word = %d, want the fenced value 11", got)
	}
}

func TestHeaderPersistence(t *testing.T) {
	p := newStrict(t, 64, 1)
	p.HeaderStore(0, 77)
	p.PWBHeader(0)
	p.PSync()
	p.HeaderStore(0, 88) // not persisted
	p.Crash(CrashConservative, nil)
	if got := p.HeaderLoad(0); got != 77 {
		t.Fatalf("header = %d, want 77", got)
	}
}

func TestHeaderCAS(t *testing.T) {
	p := New(Config{Mode: Direct, RegionWords: 8, Regions: 1})
	p.HeaderStore(1, 5)
	if !p.HeaderCAS(1, 5, 6) {
		t.Fatal("HeaderCAS(5->6) failed")
	}
	if p.HeaderCAS(1, 5, 7) {
		t.Fatal("HeaderCAS with stale value succeeded")
	}
}

func TestAdversarialCrashMayPersistUnflushed(t *testing.T) {
	// With many dirty lines and a 50% eviction probability, at least one
	// line should survive and at least one should be lost.
	p := newStrict(t, 8*128, 1)
	r := p.Region(0)
	for line := uint64(0); line < 128; line++ {
		r.Store(line*WordsPerLine, line+1)
	}
	p.Crash(CrashAdversarial, rand.New(rand.NewSource(1)))
	survived, lost := 0, 0
	for line := uint64(0); line < 128; line++ {
		if r.Load(line*WordsPerLine) == line+1 {
			survived++
		} else {
			lost++
		}
	}
	if survived == 0 || lost == 0 {
		t.Fatalf("adversarial crash not adversarial: survived=%d lost=%d", survived, lost)
	}
}

func TestCrashRequiresStrict(t *testing.T) {
	p := New(Config{Mode: Direct, RegionWords: 8, Regions: 1})
	defer func() {
		if recover() == nil {
			t.Error("Crash on Direct pool did not panic")
		}
	}()
	p.Crash(CrashConservative, nil)
}

func TestStatsCounting(t *testing.T) {
	p := New(Config{Mode: Direct, RegionWords: 64, Regions: 1})
	r := p.Region(0)
	r.PWB(0)
	r.PWB(8)
	r.PFence()
	p.PWBHeader(0)
	p.PSync()
	s := p.Stats()
	if s.PWBs != 3 {
		t.Errorf("PWBs = %d, want 3", s.PWBs)
	}
	if s.PFences != 1 {
		t.Errorf("PFences = %d, want 1", s.PFences)
	}
	if s.PSyncs != 1 {
		t.Errorf("PSyncs = %d, want 1", s.PSyncs)
	}
	if s.Fences() != 2 {
		t.Errorf("Fences() = %d, want 2", s.Fences())
	}
	p.ResetStats()
	if s := p.Stats(); s.PWBs != 0 || s.Fences() != 0 {
		t.Errorf("after reset: %v", s)
	}
}

func TestStatsSub(t *testing.T) {
	a := StatsSnapshot{PWBs: 10, PFences: 4, PSyncs: 2, NTStores: 8, WordsCopied: 100}
	b := StatsSnapshot{PWBs: 3, PFences: 1, PSyncs: 1, NTStores: 3, WordsCopied: 40}
	d := a.Sub(b)
	want := StatsSnapshot{PWBs: 7, PFences: 3, PSyncs: 1, NTStores: 5, WordsCopied: 60}
	if d != want {
		t.Fatalf("Sub = %+v, want %+v", d, want)
	}
	if d.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestFlushRange(t *testing.T) {
	p := newStrict(t, 8*16, 1)
	r := p.Region(0)
	for w := uint64(0); w < 40; w++ {
		r.Store(w, w+1)
	}
	r.FlushRange(0, 40) // words 0..39 → lines 0..4 → 5 pwbs
	if s := p.Stats(); s.PWBs != 5 {
		t.Fatalf("FlushRange issued %d pwbs, want 5", s.PWBs)
	}
	r.PFence()
	p.Crash(CrashConservative, nil)
	for w := uint64(0); w < 40; w++ {
		if got := r.Load(w); got != w+1 {
			t.Fatalf("word %d = %d after crash, want %d", w, got, w+1)
		}
	}
	r.FlushRange(0, 0) // no-op
	if s := p.Stats(); s.PWBs != 5 {
		t.Fatalf("FlushRange(0,0) issued pwbs: %d", s.PWBs)
	}
}

func TestCopyFrom(t *testing.T) {
	p := New(Config{Mode: Direct, RegionWords: 64, Regions: 2})
	src, dst := p.Region(0), p.Region(1)
	for w := uint64(0); w < 64; w++ {
		src.Store(w, w*3)
	}
	n := dst.CopyFrom(src, 64)
	if n != 64 {
		t.Fatalf("CopyFrom copied %d words, want 64", n)
	}
	for w := uint64(0); w < 64; w++ {
		if dst.Load(w) != w*3 {
			t.Fatalf("dst word %d = %d, want %d", w, dst.Load(w), w*3)
		}
	}
	if s := p.Stats(); s.WordsCopied != 64 {
		t.Errorf("WordsCopied = %d, want 64", s.WordsCopied)
	}
}

func TestNTCopyFromPersistsWithSingleFence(t *testing.T) {
	p := newStrict(t, 8*8, 2)
	src, dst := p.Region(0), p.Region(1)
	for w := uint64(0); w < 64; w++ {
		src.Store(w, w+7)
	}
	dst.NTCopyFrom(src, 64)
	if s := p.Stats(); s.PWBs != 0 {
		t.Fatalf("NT copy issued %d pwbs, want 0", s.PWBs)
	}
	if s := p.Stats(); s.NTStores != 8 {
		t.Fatalf("NT copy issued %d ntstores, want 8 (one per line)", s.NTStores)
	}
	dst.PFence()
	p.Crash(CrashConservative, nil)
	for w := uint64(0); w < 64; w++ {
		if got := dst.Load(w); got != w+7 {
			t.Fatalf("dst word %d = %d after crash, want %d", w, got, w+7)
		}
	}
}

func TestNTStoreLine(t *testing.T) {
	p := newStrict(t, 64, 1)
	r := p.Region(0)
	r.NTStoreLine(8, []uint64{1, 2, 3, 4, 5, 6, 7, 8})
	r.PFence()
	p.Crash(CrashConservative, nil)
	for i := uint64(0); i < 8; i++ {
		if got := r.Load(8 + i); got != i+1 {
			t.Fatalf("word %d = %d, want %d", 8+i, got, i+1)
		}
	}
}

func TestNTStoreLineTooLargePanics(t *testing.T) {
	p := New(Config{Mode: Direct, RegionWords: 64, Regions: 1})
	defer func() {
		if recover() == nil {
			t.Error("oversized NTStoreLine did not panic")
		}
	}()
	p.Region(0).NTStoreLine(0, make([]uint64, WordsPerLine+1))
}

func TestConcurrentDisjointRegions(t *testing.T) {
	const threads = 8
	p := newStrict(t, 8*64, threads)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := p.Region(i)
			for w := uint64(0); w < r.Words(); w++ {
				r.Store(w, uint64(i)<<32|w)
				r.PWB(w)
			}
			r.PFence()
		}(i)
	}
	wg.Wait()
	p.Crash(CrashConservative, nil)
	for i := 0; i < threads; i++ {
		r := p.Region(i)
		for w := uint64(0); w < r.Words(); w++ {
			if got := r.Load(w); got != uint64(i)<<32|w {
				t.Fatalf("region %d word %d = %#x", i, w, got)
			}
		}
	}
}

func TestConcurrentHeaderCAS(t *testing.T) {
	p := New(Config{Mode: Direct, RegionWords: 8, Regions: 1})
	const threads, iters = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				for {
					v := p.HeaderLoad(0)
					if p.HeaderCAS(0, v, v+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := p.HeaderLoad(0); got != threads*iters {
		t.Fatalf("header = %d, want %d", got, threads*iters)
	}
}

// Property: in Strict mode, the persisted image of a word is always either
// its initial value or some value that was stored and then flushed+fenced —
// never an unflushed value.
func TestQuickPersistOrdering(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		p := newStrict(t, 8*8, 1)
		r := p.Region(0)
		fenced := make(map[uint64]uint64) // last fenced value per word
		pending := make(map[uint64]bool)  // lines flushed since last fence
		current := make(map[uint64]uint64)
		for _, op := range ops {
			addr := uint64(op) % 64
			switch op % 3 {
			case 0:
				v := uint64(op) + 1
				r.Store(addr, v)
				current[addr] = v
			case 1:
				r.PWB(addr)
				pending[addr/WordsPerLine] = true
			case 2:
				r.PFence()
				for line := range pending {
					for w := line * WordsPerLine; w < (line+1)*WordsPerLine; w++ {
						fenced[w] = current[w]
					}
				}
				pending = make(map[uint64]bool)
			}
		}
		p.Crash(CrashConservative, nil)
		for w := uint64(0); w < 64; w++ {
			if r.Load(w) != fenced[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPersistedLoadDirectModeFallsBack(t *testing.T) {
	p := New(Config{Mode: Direct, RegionWords: 8, Regions: 1})
	p.Region(0).Store(1, 42)
	if got := p.Region(0).PersistedLoad(1); got != 42 {
		t.Fatalf("PersistedLoad in Direct mode = %d, want 42", got)
	}
	p.HeaderStore(0, 9)
	if got := p.PersistedHeader(0); got != 9 {
		t.Fatalf("PersistedHeader in Direct mode = %d, want 9", got)
	}
}
