// Package pmem emulates byte-addressable non-volatile main memory (NVMM)
// for persistent transactional memories.
//
// Real NVMM (e.g. Intel Optane DC PMM) is driven with a persistence flush
// instruction per cache line (pwb, implemented with CLWB on x86) and
// persistence fences (pfence/psync, implemented with SFENCE). Go cannot issue
// those instructions with faithful ordering — the garbage collector and the
// runtime move and instrument memory — so this package substitutes a
// deterministic simulator:
//
//   - A Pool is a word-addressable arena split into fixed-size regions
//     (one region per data replica in the constructions built on top).
//   - Stores land in the "cache image" (the data array). PWB marks a cache
//     line for write-back; PFence/PSync make previously marked lines durable
//     by copying them to the "persisted image" (the shadow array).
//   - Crash discards the cache image. What survives is exactly the shadow:
//     lines that were flushed and fenced, plus (in adversarial mode) a random
//     subset of dirty lines, modelling spontaneous cache eviction on real
//     hardware, where a store may become durable even without a flush.
//   - Every PWB, PFence, PSync and non-temporal store is counted, and an
//     optional latency model injects per-instruction delays so that the
//     relative cost of flushes versus computation resembles real PM.
//
// Addresses are word offsets (8-byte words) within a region; a cache line is
// 8 words (64 bytes). Offset 0 is reserved as the nil address.
package pmem

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// WordsPerLine is the number of 64-bit words in a simulated cache line.
const WordsPerLine = 8

// LineBytes is the size of a simulated cache line in bytes.
const LineBytes = WordsPerLine * 8

// Addr is a word offset inside a region. Addr 0 is the nil address.
type Addr = uint64

// Mode selects how faithfully the pool models the volatility of CPU caches.
type Mode int

const (
	// Direct mode treats every store as immediately durable. Flush and
	// fence calls only update statistics and apply latency. This is the
	// mode used for throughput benchmarks.
	Direct Mode = iota
	// Strict mode maintains a separate persisted image: only cache lines
	// that were PWB'd and then fenced reach it. Crash and recovery are
	// available. This is the mode used by crash-consistency tests.
	Strict
)

// Config parameterizes a Pool.
type Config struct {
	Mode        Mode
	RegionWords uint64 // words per region (rounded up to a full line)
	Regions     int    // number of regions (replicas)
	HeaderSlots int    // number of 64-bit root/header slots (default 16)
	Latency     LatencyModel
}

// Pool is an emulated NVMM device: a header of atomically-accessed slots
// (where constructions keep their persistent curComb and similar roots)
// followed by a fixed number of equally sized regions.
type Pool struct {
	mode        Mode
	lat         LatencyModel
	regionWords uint64
	data        []uint64 // cache image, all regions back to back
	shadow      []uint64 // persisted image (Strict mode only)
	headers     []atomic.Uint64
	shadowHdr   []atomic.Uint64
	regions     []Region
	stats       Stats

	hdrMu      sync.Mutex // guards pendingHdr (Strict mode only)
	pendingHdr []int

	// tr is the attached event tracer (nil when tracing is off — the only
	// cost then is one nil check per persistence instruction). poolID
	// distinguishes pools sharing one tracer (Group.SetTracer assigns it).
	tr     *obs.Tracer
	poolID int16

	// inj is the armed-failure state. Every pool starts with its own
	// injector; NewGroup rewires the member pools to one shared injector so
	// a multi-pool subsystem observes a single global event budget.
	inj *injector
}

// ---- Event tracing -------------------------------------------------------

// SetTracer attaches (or, with nil, detaches) an event tracer: every
// persistence instruction on the pool emits a typed obs.Event into it.
// Attach/detach while the pool is quiescent. Clones made by Pool.Clone do
// not inherit the tracer.
func (p *Pool) SetTracer(tr *obs.Tracer) { p.tr, p.poolID = tr, 0 }

// setTracerID attaches tr with an explicit pool id (Group members).
func (p *Pool) setTracerID(tr *obs.Tracer, id int16) { p.tr, p.poolID = tr, id }

// Tracer reports the attached tracer (nil when tracing is off).
func (p *Pool) Tracer() *obs.Tracer { return p.tr }

// Traced reports whether a tracer is attached. Engine hook points use it
// to skip computing event arguments (used-heap sizes etc.) when off.
func (p *Pool) Traced() bool { return p.tr != nil }

// TraceEvent emits a logical engine event (publish, combine round, replay,
// recovery phase, ...) into the attached tracer; a no-op when tracing is
// off. region is -1 for header-domain or pool-scoped events; tid is the
// engine thread id (-1 when unknown).
func (p *Pool) TraceEvent(kind obs.Kind, tid, region int, addr, length, arg uint64) {
	if p.tr != nil {
		p.emitEvent(kind, int16(tid), int16(region), addr, length, arg)
	}
}

// emit records a physical persistence event. Call sites place it after the
// injector tick and the stats update, with nothing that can panic in
// between, so traces stay in exact correspondence with StatsSnapshot even
// when an injected power failure fires mid-operation.
//
// emit is a two-level wrapper so the compiler inlines the nil check into
// every persistence instruction: with no tracer attached the whole hook is
// one predictable compare-and-branch (the <2% disabled-overhead budget),
// and only traced pools pay the emitEvent call.
func (p *Pool) emit(kind obs.Kind, region int16, addr, length, arg uint64) {
	if p.tr != nil {
		p.emitEvent(kind, -1, region, addr, length, arg)
	}
}

// emitEvent builds and records the event; the caller has checked p.tr.
// Kept out of line so the emit/TraceEvent guards stay under the inlining
// budget — without the directive the compiler folds this body back into
// them and the untraced fast path regresses to a full call.
//
//go:noinline
func (p *Pool) emitEvent(kind obs.Kind, tid, region int16, addr, length, arg uint64) {
	p.tr.Emit(obs.Event{
		Kind: kind, TID: tid, Pool: p.poolID, Region: region,
		Addr: addr, Len: length, Arg: arg,
	})
}

// injector is the countdown behind InjectFailure. It is shared by every pool
// of a Group: persistent-memory events anywhere in the group draw from one
// budget, exactly as a single power supply feeds every DIMM of a machine.
type injector struct {
	// failAfter counts down persistent-memory events; when it crosses
	// zero the owning pool panics with ErrSimulatedPowerFailure. Negative
	// means disabled. Only honoured in Strict mode (crash testing).
	failAfter atomic.Int64
	// fired latches after the countdown crosses zero: every subsequent
	// event panics too, so concurrent threads all observe the power loss
	// instead of only the thread that happened to issue the n-th event.
	// InjectFailure (arming or disarming) resets the latch.
	fired atomic.Bool
}

func newInjector() *injector {
	inj := &injector{}
	inj.failAfter.Store(-1)
	return inj
}

func (inj *injector) arm(n int64) {
	inj.fired.Store(false)
	inj.failAfter.Store(n)
}

// ErrSimulatedPowerFailure is the panic value raised when an injected
// failure point is reached (see InjectFailure). Crash-test harnesses recover
// it, call Crash, and re-run recovery.
var ErrSimulatedPowerFailure = &powerFailure{}

type powerFailure struct{}

func (*powerFailure) Error() string { return "pmem: simulated power failure" }

// InjectFailure arms a failure point: after n further persistent-memory
// events (stores, flushes, fences) the pool panics with
// ErrSimulatedPowerFailure, simulating power loss at an arbitrary
// instruction boundary. Only honoured in Strict mode. Pass a negative n to
// disarm.
//
// An armed counter survives Crash: Crash itself issues no persistent-memory
// events and never disarms, so a harness can crash the pool, arm a second
// failure point, and invoke recovery — the nested-failure model of
// Ben-David et al., where recovery code is itself interrupted by power loss.
func (p *Pool) InjectFailure(n int64) { p.inj.arm(n) }

// InjectRemaining reports the armed failure counter: the number of
// persistent-memory events left before the simulated power failure fires,
// or a negative value when no failure point is armed (or one already
// fired). Harnesses measure a workload's event count by arming a counter
// too large to fire, running the workload, and subtracting.
func (p *Pool) InjectRemaining() int64 { return p.inj.failAfter.Load() }

// tick advances toward an armed failure point.
func (p *Pool) tick() {
	inj := p.inj
	if inj.fired.Load() {
		// The power failure already happened; any thread still issuing
		// persistent-memory events dies at its next event too.
		panic(ErrSimulatedPowerFailure)
	}
	if inj.failAfter.Load() < 0 {
		return
	}
	if inj.failAfter.Add(-1) < 0 {
		inj.fired.Store(true)
		panic(ErrSimulatedPowerFailure)
	}
}

// Region is a fixed-size window of a Pool holding one replica of the
// persistent data. The constructions guarantee a single writer per region
// (via an exclusive lock), so plain loads and stores are safe; atomic
// variants are provided for hand-made lock-free structures that CAS into
// shared persistent memory.
type Region struct {
	pool  *Pool
	index int
	base  uint64 // word offset of this region inside pool.data
	words uint64

	mu      sync.Mutex // guards pending (Strict mode only)
	pending []uint64   // line numbers (region-relative) awaiting a fence
}

// New creates a Pool. It panics on a non-positive geometry, mirroring the
// failure mode of mapping a zero-length device.
func New(cfg Config) *Pool {
	if cfg.Regions <= 0 || cfg.RegionWords == 0 {
		panic(fmt.Sprintf("pmem: invalid geometry (%d regions × %d words)", cfg.Regions, cfg.RegionWords))
	}
	if cfg.HeaderSlots == 0 {
		cfg.HeaderSlots = 16
	}
	rw := (cfg.RegionWords + WordsPerLine - 1) / WordsPerLine * WordsPerLine
	p := &Pool{
		mode:        cfg.Mode,
		lat:         cfg.Latency,
		regionWords: rw,
		data:        make([]uint64, rw*uint64(cfg.Regions)),
		headers:     make([]atomic.Uint64, cfg.HeaderSlots),
		regions:     make([]Region, cfg.Regions),
	}
	if cfg.Mode == Strict {
		p.shadow = make([]uint64, len(p.data))
		p.shadowHdr = make([]atomic.Uint64, cfg.HeaderSlots)
	}
	for i := range p.regions {
		p.regions[i] = Region{pool: p, index: i, base: uint64(i) * rw, words: rw}
	}
	p.inj = newInjector()
	return p
}

// Mode reports the volatility model of the pool.
func (p *Pool) Mode() Mode { return p.mode }

// Regions reports the number of regions in the pool.
func (p *Pool) Regions() int { return len(p.regions) }

// RegionWords reports the size of each region in 64-bit words.
func (p *Pool) RegionWords() uint64 { return p.regionWords }

// Region returns the i-th region.
func (p *Pool) Region(i int) *Region { return &p.regions[i] }

// Stats returns a snapshot of the persistence-instruction counters.
func (p *Pool) Stats() StatsSnapshot { return p.stats.snapshot() }

// ResetStats zeroes all counters.
func (p *Pool) ResetStats() { p.stats.reset() }

// NVMBytes reports the total simulated NVMM footprint in bytes.
func (p *Pool) NVMBytes() uint64 {
	return uint64(len(p.data))*8 + uint64(len(p.headers))*8
}

// ---- Header slots --------------------------------------------------------

// HeaderLoad atomically reads header slot i from the cache image.
func (p *Pool) HeaderLoad(i int) uint64 { return p.headers[i].Load() }

// HeaderStore atomically writes header slot i in the cache image.
func (p *Pool) HeaderStore(i int, v uint64) {
	if p.mode == Strict {
		p.tick()
	}
	p.headers[i].Store(v)
	p.emit(obs.KindHeaderStore, -1, uint64(i), 1, v)
}

// HeaderCAS atomically compare-and-swaps header slot i in the cache image.
func (p *Pool) HeaderCAS(i int, old, new uint64) bool {
	ok := p.headers[i].CompareAndSwap(old, new)
	if ok {
		p.emit(obs.KindHeaderStore, -1, uint64(i), 1, new)
	}
	return ok
}

// PWBHeader issues a persistence write-back for header slot i.
func (p *Pool) PWBHeader(i int) {
	if p.mode == Strict {
		p.tick()
	}
	p.stats.pwbs.Add(1)
	p.emit(obs.KindPWBHeader, -1, uint64(i), 1, 0)
	p.lat.spinPWB()
	if p.mode == Strict {
		p.hdrMu.Lock()
		p.pendingHdr = append(p.pendingHdr, i)
		p.hdrMu.Unlock()
	}
}

// PSync issues a persistence synchronization fence (SFENCE on x86): header
// slots flushed before this call become durable.
func (p *Pool) PSync() {
	if p.mode == Strict {
		p.tick()
	}
	p.stats.psyncs.Add(1)
	p.emit(obs.KindPSync, -1, 0, 0, 0)
	p.lat.spinFence()
	if p.mode == Strict {
		p.hdrMu.Lock()
		for _, i := range p.pendingHdr {
			p.shadowHdr[i].Store(p.headers[i].Load())
		}
		p.pendingHdr = p.pendingHdr[:0]
		p.hdrMu.Unlock()
	}
}

// PFenceGlobal issues a persistence fence covering the whole pool: every
// cache line PWB'd in any region (and any flushed header) before the call
// becomes durable. Real SFENCE has exactly this device-wide scope; the
// per-region PFence is a modelling convenience for single-writer regions.
func (p *Pool) PFenceGlobal() {
	if p.mode == Strict {
		p.tick()
	}
	p.stats.pfences.Add(1)
	p.emit(obs.KindPFenceGlobal, -1, 0, 0, 0)
	p.lat.spinFence()
	if p.mode == Strict {
		for i := range p.regions {
			r := &p.regions[i]
			r.mu.Lock()
			for _, line := range r.pending {
				r.persistLine(line)
			}
			r.pending = r.pending[:0]
			r.mu.Unlock()
		}
		p.hdrMu.Lock()
		for _, i := range p.pendingHdr {
			p.shadowHdr[i].Store(p.headers[i].Load())
		}
		p.pendingHdr = p.pendingHdr[:0]
		p.hdrMu.Unlock()
	}
}

// PersistedHeader reads header slot i from the persisted image. It is only
// meaningful in Strict mode and is intended for recovery and validation.
func (p *Pool) PersistedHeader(i int) uint64 {
	if p.mode != Strict {
		return p.headers[i].Load()
	}
	return p.shadowHdr[i].Load()
}

// ---- Region data ---------------------------------------------------------

func (r *Region) check(addr Addr) {
	if addr >= r.words {
		panic(fmt.Sprintf("pmem: address %d out of region bounds (%d words)", addr, r.words))
	}
}

// Index reports the position of the region within its pool.
func (r *Region) Index() int { return r.index }

// Words reports the region size in 64-bit words.
func (r *Region) Words() uint64 { return r.words }

// Load reads the word at addr. The caller must hold exclusive or shared
// access to the region per the construction's locking protocol.
func (r *Region) Load(addr Addr) uint64 {
	r.check(addr)
	return r.pool.data[r.base+addr]
}

// Store writes the word at addr. The caller must hold exclusive access.
func (r *Region) Store(addr Addr, v uint64) {
	r.check(addr)
	if r.pool.mode == Strict {
		r.pool.tick()
	}
	r.pool.data[r.base+addr] = v
	r.pool.emit(obs.KindStore, int16(r.index), addr, 1, v)
}

// StoreWords writes len(words) consecutive words starting at addr as one
// aggregated (memcpy-style) store. The caller must hold exclusive access.
// Like Store, the covered cache lines still need PWB + fence (or a
// non-temporal store) to become durable; the call counts as a single
// persistent-memory event for failure injection and emits one
// obs.KindBulkStore event covering the whole range, so traces of bulk
// payloads stay compact without losing line-granular dirtiness.
func (r *Region) StoreWords(addr Addr, words []uint64) {
	if len(words) == 0 {
		return
	}
	r.check(addr + uint64(len(words)) - 1)
	if r.pool.mode == Strict {
		r.pool.tick()
	}
	copy(r.pool.data[r.base+addr:], words)
	r.pool.emit(obs.KindBulkStore, int16(r.index), addr, uint64(len(words)), 0)
}

// LoadWords reads len(dst) consecutive words starting at addr into dst. The
// caller must hold exclusive or shared access per the construction's locking
// protocol.
func (r *Region) LoadWords(addr Addr, dst []uint64) {
	if len(dst) == 0 {
		return
	}
	r.check(addr + uint64(len(dst)) - 1)
	copy(dst, r.pool.data[r.base+addr:r.base+addr+uint64(len(dst))])
}

// AtomicLoad reads the word at addr with sequentially consistent ordering.
func (r *Region) AtomicLoad(addr Addr) uint64 {
	r.check(addr)
	return atomic.LoadUint64(&r.pool.data[r.base+addr])
}

// AtomicStore writes the word at addr with sequentially consistent ordering.
func (r *Region) AtomicStore(addr Addr, v uint64) {
	r.check(addr)
	atomic.StoreUint64(&r.pool.data[r.base+addr], v)
	r.pool.emit(obs.KindStore, int16(r.index), addr, 1, v)
}

// CAS atomically compare-and-swaps the word at addr.
func (r *Region) CAS(addr Addr, old, new uint64) bool {
	r.check(addr)
	ok := atomic.CompareAndSwapUint64(&r.pool.data[r.base+addr], old, new)
	if ok {
		r.pool.emit(obs.KindStore, int16(r.index), addr, 1, new)
	}
	return ok
}

// PWB issues a persistence write-back for the cache line containing addr.
func (r *Region) PWB(addr Addr) {
	r.check(addr)
	if r.pool.mode == Strict {
		r.pool.tick()
	}
	r.pool.stats.pwbs.Add(1)
	r.pool.emit(obs.KindPWB, int16(r.index), addr, 1, 0)
	r.pool.lat.spinPWB()
	if r.pool.mode == Strict {
		line := addr / WordsPerLine
		r.mu.Lock()
		r.pending = append(r.pending, line)
		r.mu.Unlock()
	}
}

// PFence issues a persistence fence: cache lines of this region that were
// PWB'd before the call become durable.
func (r *Region) PFence() {
	if r.pool.mode == Strict {
		r.pool.tick()
	}
	r.pool.stats.pfences.Add(1)
	r.pool.emit(obs.KindPFence, int16(r.index), 0, 0, 0)
	r.pool.lat.spinFence()
	if r.pool.mode == Strict {
		r.mu.Lock()
		for _, line := range r.pending {
			r.persistLine(line)
		}
		r.pending = r.pending[:0]
		r.mu.Unlock()
	}
}

// persistLine copies one region-relative cache line from the cache image to
// the persisted image. Caller holds r.mu in Strict mode.
func (r *Region) persistLine(line uint64) {
	lo := r.base + line*WordsPerLine
	for w := lo; w < lo+WordsPerLine; w++ {
		// Published words may be concurrently CAS'd (hand-made
		// lock-free structures), so read atomically.
		r.pool.shadow[w] = atomic.LoadUint64(&r.pool.data[w])
	}
}

// NTStoreLine performs a non-temporal store of up to WordsPerLine words
// starting at addr (which should be line-aligned for faithful accounting),
// bypassing the cache: the line does not need a PWB, only a later fence.
// It models MOVNTQ-based copies (the "copy using ntstore" optimization).
func (r *Region) NTStoreLine(addr Addr, words []uint64) {
	r.check(addr + uint64(len(words)) - 1)
	if len(words) > WordsPerLine {
		panic("pmem: NTStoreLine called with more than one line of data")
	}
	copy(r.pool.data[r.base+addr:], words)
	r.pool.stats.ntstores.Add(1)
	r.pool.emit(obs.KindNTStore, int16(r.index), addr, uint64(len(words)), 0)
	r.pool.lat.spinNT()
	if r.pool.mode == Strict {
		line := addr / WordsPerLine
		r.mu.Lock()
		r.pending = append(r.pending, line, (addr+uint64(len(words))-1)/WordsPerLine)
		r.mu.Unlock()
	}
}

// PersistedLoad reads the word at addr from the persisted image. It is only
// meaningful in Strict mode and is intended for recovery and validation.
func (r *Region) PersistedLoad(addr Addr) uint64 {
	r.check(addr)
	if r.pool.mode != Strict {
		return r.pool.data[r.base+addr]
	}
	return r.pool.shadow[r.base+addr]
}

// CopyFrom copies n words of src into this region using regular stores. The
// caller must hold exclusive access to the destination and at least shared
// access to the source. The copied words still require PWB+fence to become
// durable. Returns the number of words copied (for statistics).
func (r *Region) CopyFrom(src *Region, n uint64) uint64 {
	if n > r.words || n > src.words {
		panic("pmem: CopyFrom size exceeds region")
	}
	copy(r.pool.data[r.base:r.base+n], src.pool.data[src.base:src.base+n])
	r.pool.stats.wordsCopied.Add(n)
	r.pool.emit(obs.KindCopy, int16(r.index), 0, n, 0)
	return n
}

// NTCopyFrom copies n words of src into this region with non-temporal
// stores: one NT store per line and no PWBs. A fence is still required.
func (r *Region) NTCopyFrom(src *Region, n uint64) uint64 {
	if n > r.words || n > src.words {
		panic("pmem: NTCopyFrom size exceeds region")
	}
	copy(r.pool.data[r.base:r.base+n], src.pool.data[src.base:src.base+n])
	lines := (n + WordsPerLine - 1) / WordsPerLine
	r.pool.stats.ntstores.Add(lines)
	r.pool.stats.wordsCopied.Add(n)
	r.pool.emit(obs.KindNTCopy, int16(r.index), 0, n, 0)
	r.pool.lat.spinNTLines(lines)
	if r.pool.mode == Strict {
		r.mu.Lock()
		for l := uint64(0); l < lines; l++ {
			r.pending = append(r.pending, l)
		}
		r.mu.Unlock()
	}
	return n
}

// FlushRange issues one PWB per cache line in [addr, addr+n): the
// whole-object flush used by CX-PUC, which has no store interposition.
func (r *Region) FlushRange(addr Addr, n uint64) {
	if n == 0 {
		return
	}
	first := addr / WordsPerLine
	last := (addr + n - 1) / WordsPerLine
	for line := first; line <= last; line++ {
		r.PWB(line * WordsPerLine)
	}
}

// ---- Crash and recovery --------------------------------------------------

// CrashPolicy selects what happens to dirty-but-unflushed cache lines at the
// moment of a simulated power failure.
type CrashPolicy int

const (
	// CrashConservative drops every store that was not flushed and fenced.
	CrashConservative CrashPolicy = iota
	// CrashAdversarial lets a random subset of dirty unflushed lines reach
	// the persisted image, modelling spontaneous cache eviction — and tears
	// the evicted lines at word granularity: persistent memory guarantees
	// 8-byte write atomicity, not 64-byte, so a line in flight at power
	// loss may land with only some of its words updated.
	CrashAdversarial
)

// Crash simulates a non-corrupting power failure: the cache image is
// discarded and replaced with the persisted image. With CrashAdversarial a
// random subset of dirty lines (data differing from shadow) is partially
// persisted first, using rng. The pool must be in Strict mode.
//
// Crash issues no persistent-memory events and leaves any armed failure
// point (InjectFailure) armed, so a second failure can be injected into the
// recovery that follows.
//
// After Crash returns, the pool represents the freshly re-mapped NVMM: the
// construction's Recover entry point can rebuild its volatile state from it.
func (p *Pool) Crash(policy CrashPolicy, rng *rand.Rand) {
	if p.mode != Strict {
		panic("pmem: Crash requires Strict mode")
	}
	p.emit(obs.KindCrash, -1, 0, 0, uint64(policy))
	if policy == CrashAdversarial {
		if rng == nil {
			panic("pmem: CrashAdversarial requires a rand source")
		}
		nLines := uint64(len(p.data)) / WordsPerLine
		for line := uint64(0); line < nLines; line++ {
			lo := line * WordsPerLine
			dirty := false
			for w := lo; w < lo+WordsPerLine; w++ {
				if atomic.LoadUint64(&p.data[w]) != p.shadow[w] {
					dirty = true
					break
				}
			}
			if dirty && rng.Intn(2) == 0 {
				// Torn eviction: each word of the line persists
				// independently (8-byte atomicity).
				for w := lo; w < lo+WordsPerLine; w++ {
					if rng.Intn(2) == 0 {
						p.shadow[w] = atomic.LoadUint64(&p.data[w])
					}
				}
			}
		}
		for i := range p.headers {
			if v := p.headers[i].Load(); v != p.shadowHdr[i].Load() && rng.Intn(2) == 0 {
				p.shadowHdr[i].Store(v)
			}
		}
	}
	// Power is lost: the cache image is rebuilt from the persisted image.
	for w := range p.data {
		atomic.StoreUint64(&p.data[w], p.shadow[w])
	}
	for i := range p.headers {
		p.headers[i].Store(p.shadowHdr[i].Load())
	}
	p.hdrMu.Lock()
	p.pendingHdr = p.pendingHdr[:0]
	p.hdrMu.Unlock()
	for i := range p.regions {
		r := &p.regions[i]
		r.mu.Lock()
		r.pending = r.pending[:0]
		r.mu.Unlock()
	}
}
