package pmem

import (
	"testing"
	"time"
)

func TestSpinApproximatesDuration(t *testing.T) {
	// The spin calibration must be within a loose factor of the target —
	// enough for the latency model to bias relative costs correctly.
	const target = 200 * time.Microsecond
	start := time.Now()
	spin(target)
	got := time.Since(start)
	if got < target/4 {
		t.Fatalf("spin(%v) returned after %v (far too early)", target, got)
	}
	if got > target*50 {
		t.Fatalf("spin(%v) took %v (far too long)", target, got)
	}
}

func TestSpinZeroAndNegative(t *testing.T) {
	spin(0)
	spin(-time.Second) // must return immediately, not hang
}

func TestLatencyModelInjectsCost(t *testing.T) {
	fast := New(Config{RegionWords: 1 << 10, Regions: 1})
	slow := New(Config{
		RegionWords: 1 << 10,
		Regions:     1,
		Latency: LatencyModel{
			PWB:   2 * time.Microsecond,
			Fence: 4 * time.Microsecond,
		},
	})
	measure := func(p *Pool) time.Duration {
		r := p.Region(0)
		start := time.Now()
		for i := 0; i < 200; i++ {
			r.Store(0, uint64(i))
			r.PWB(0)
			r.PFence()
		}
		return time.Since(start)
	}
	// The calibration is approximate and CPU contention skews it, so only
	// the relative effect is asserted.
	tFast, tSlow := measure(fast), measure(slow)
	if tSlow < 2*tFast {
		t.Fatalf("latency model had no effect: fast=%v slow=%v", tFast, tSlow)
	}
}

func TestDefaultOptaneIsPlausible(t *testing.T) {
	if DefaultOptane.PWB <= 0 || DefaultOptane.Fence <= 0 || DefaultOptane.NTStore <= 0 {
		t.Fatal("DefaultOptane has zero components")
	}
	if DefaultOptane.Fence < DefaultOptane.PWB {
		t.Fatal("a fence should cost at least a write-back")
	}
}
