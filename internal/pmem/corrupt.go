package pmem

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// Corruption model. A simulated power failure (Crash) is *non-corrupting*:
// what survives is a prefix-consistent mixture of fenced lines and, in
// adversarial mode, torn remnants of dirty lines. Real media additionally
// suffer bit-rot and torn internal writes that no amount of fencing
// prevents. The helpers below inject exactly that class of damage into the
// persisted image, so recovery paths can be audited for the contract of the
// chaos sweep: recovery must either succeed or fail with a typed
// *CorruptionError — never panic with an untyped value and never return a
// silently wrong answer.

// CorruptionError is the typed failure recovery paths raise (via panic, since
// the constructors of the constructions have no error return) when persistent
// state fails an integrity check. Harnesses recover it and treat it as a
// detected — therefore acceptable — outcome, unlike an arbitrary panic.
type CorruptionError struct {
	Component string // which engine or structure detected the damage
	Detail    string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("pmem: corrupt state (%s): %s", e.Component, e.Detail)
}

// Corruptf builds a *CorruptionError; engines panic with it from recovery.
func Corruptf(component, format string, args ...any) *CorruptionError {
	return &CorruptionError{Component: component, Detail: fmt.Sprintf(format, args...)}
}

// AsCorruption reports whether a recovered panic value is a typed corruption
// report or a simulated power failure wrapped around one.
func AsCorruption(v any) (*CorruptionError, bool) {
	ce, ok := v.(*CorruptionError)
	return ce, ok
}

// Range names a span of words inside one region. Engines export the ranges
// that are *not* reachable from their committed state (stale replicas, log
// tails past the durable prefix, scratch areas) so the corruption sweep knows
// where bit flips must be harmless.
type Range struct {
	Region int
	Start  Addr   // first word of the span
	Words  uint64 // length in words
}

// WholeRegion is the Range covering all of region i of pool p.
func (p *Pool) WholeRegion(i int) Range {
	return Range{Region: i, Start: 0, Words: p.regionWords}
}

// CorruptLine tears one cache line of a region's persisted image: a random
// non-empty subset of its words is overwritten with random values. The cache
// image is damaged identically, modelling a re-map of the corrupted medium.
// Strict mode only.
func (p *Pool) CorruptLine(region int, line uint64, rng *rand.Rand) {
	if p.mode != Strict {
		panic("pmem: CorruptLine requires Strict mode")
	}
	r := &p.regions[region]
	lo := r.base + line*WordsPerLine
	if line*WordsPerLine >= r.words {
		panic(fmt.Sprintf("pmem: CorruptLine %d out of region bounds", line))
	}
	hit := false
	for w := lo; w < lo+WordsPerLine; w++ {
		if rng.Intn(2) == 0 {
			v := rng.Uint64()
			p.shadow[w] = v
			atomic.StoreUint64(&p.data[w], v)
			hit = true
		}
	}
	if !hit { // guarantee at least one damaged word
		w := lo + uint64(rng.Intn(WordsPerLine))
		v := rng.Uint64()
		p.shadow[w] = v
		atomic.StoreUint64(&p.data[w], v)
	}
}

// FlipBit flips a single bit of one word in both the persisted and cache
// images, modelling bit-rot discovered at re-map time. Strict mode only.
func (p *Pool) FlipBit(region int, addr Addr, bit uint) {
	if p.mode != Strict {
		panic("pmem: FlipBit requires Strict mode")
	}
	r := &p.regions[region]
	r.check(addr)
	w := r.base + addr
	v := p.shadow[w] ^ (1 << (bit % 64))
	p.shadow[w] = v
	atomic.StoreUint64(&p.data[w], v)
}

// Clone returns an independent deep copy of the pool: both images, all
// header slots and the pending flush lists. Statistics start at zero and any
// armed failure point is NOT carried over; an attached event tracer is not
// carried over either (attach one to the clone explicitly if its recovery
// run should be traced). Clone lets a chaos sweep fork one post-crash state
// into many recovery experiments without replaying the workload that
// produced it. The pool must be quiescent.
func (p *Pool) Clone() *Pool {
	q := New(Config{
		Mode:        p.mode,
		RegionWords: p.regionWords,
		Regions:     len(p.regions),
		HeaderSlots: len(p.headers),
		Latency:     p.lat,
	})
	copy(q.data, p.data)
	if p.mode == Strict {
		copy(q.shadow, p.shadow)
		for i := range p.shadowHdr {
			q.shadowHdr[i].Store(p.shadowHdr[i].Load())
		}
	}
	for i := range p.headers {
		q.headers[i].Store(p.headers[i].Load())
	}
	q.pendingHdr = append(q.pendingHdr, p.pendingHdr...)
	for i := range p.regions {
		q.regions[i].pending = append(q.regions[i].pending, p.regions[i].pending...)
	}
	return q
}

// CloneInto copies the pool's full state into dst, an existing pool of
// identical geometry, instead of allocating a fresh one: the scratch-pool
// form of Clone for sweeps that fork one post-crash state into many
// experiments and would otherwise allocate (and garbage) a full image per
// fork. dst's statistics are zeroed and its failure injector disarmed
// (including the fired latch, so a scratch that crashed in a previous
// experiment is reusable); a tracer attached to dst stays attached. Both
// pools must be quiescent.
func (p *Pool) CloneInto(dst *Pool) {
	if dst.mode != p.mode || dst.regionWords != p.regionWords ||
		len(dst.regions) != len(p.regions) || len(dst.headers) != len(p.headers) {
		panic("pmem: CloneInto requires identical pool geometry")
	}
	copy(dst.data, p.data)
	if p.mode == Strict {
		copy(dst.shadow, p.shadow)
		for i := range p.shadowHdr {
			dst.shadowHdr[i].Store(p.shadowHdr[i].Load())
		}
	}
	for i := range p.headers {
		dst.headers[i].Store(p.headers[i].Load())
	}
	dst.pendingHdr = append(dst.pendingHdr[:0], p.pendingHdr...)
	for i := range p.regions {
		dst.regions[i].pending = append(dst.regions[i].pending[:0], p.regions[i].pending...)
	}
	dst.ResetStats()
	dst.inj.arm(-1)
}
