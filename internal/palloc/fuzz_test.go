package palloc

import "testing"

// recMem records every store so a test can replay arbitrary prefixes onto a
// snapshot — the crash model for a raw (non-transactional) heap: any store
// prefix of an Alloc/Free may be the durable state.
type loggedStore struct{ addr, val uint64 }

type recMem struct {
	flatMem
	log []loggedStore
}

func (m *recMem) Store(addr, val uint64) {
	m.log = append(m.log, loggedStore{addr, val})
	m.flatMem.Store(addr, val)
}

// FuzzAllocFree drives arbitrary Alloc/Free/crash interleavings against a
// model and checks, at every operation and at every store-granular crash
// prefix inside an operation, that the heap stays consistent: blocks never
// overlap, InUseWords matches the model, a directory walk never mis-parses,
// and Recover from the published roots reconciles — reclaiming exactly the
// blocks a crash stranded between allocation and publication.
func FuzzAllocFree(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x01, 0x80, 0x02, 0x00, 0x03, 0x00})
	f.Add([]byte{0x04, 0xff, 0x24, 0x40, 0x02, 0x01, 0x46, 0x13, 0x03, 0x00, 0x00, 0x09})
	f.Add([]byte{0x10, 0x07, 0x50, 0x08, 0x90, 0x09, 0x02, 0x00, 0x02, 0x00, 0x03, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 80 {
			data = data[:80]
		}
		const heapWords = 1 << 12
		m := &recMem{flatMem: newMem(heapWords)}
		Format(m, heapWords)

		type blk struct {
			addr, size uint64
			published  bool
		}
		var live []blk
		roots := func(only func(blk) bool) RootEnumerator {
			return func(visit func(uint64)) {
				for _, b := range live {
					if only(b) {
						visit(b.addr)
					}
				}
			}
		}
		published := func(b blk) bool { return b.published }
		sumPublished := func() uint64 {
			var s uint64
			for _, b := range live {
				if b.published {
					s += b.size
				}
			}
			return s
		}
		sumAll := func() uint64 {
			var s uint64
			for _, b := range live {
				s += b.size
			}
			return s
		}

		// crashPrefixes replays every store prefix of the just-executed
		// operation onto the pre-operation snapshot and recovers each one
		// with the pre-operation published roots (a torn operation's
		// transaction rolls back, so the engine republishes its old set).
		crashPrefixes := func(snap flatMem, preRoots RootEnumerator, preSum uint64) {
			for k := 0; k <= len(m.log); k++ {
				img := make(flatMem, len(snap))
				copy(img, snap)
				for _, s := range m.log[:k] {
					img.Store(s.addr, s.val)
				}
				_ = InUseWords(img) // every prefix must parse
				Recover(img, preRoots)
				if err := Reconcile(img, preRoots); err != nil {
					t.Fatalf("prefix %d/%d does not reconcile after Recover: %v", k, len(m.log), err)
				}
				if got := InUseWords(img); got != preSum {
					t.Fatalf("prefix %d/%d: InUseWords %d, want %d", k, len(m.log), got, preSum)
				}
			}
		}
		snapshot := func() flatMem {
			s := make(flatMem, len(m.flatMem))
			copy(s, m.flatMem)
			return s
		}

		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			switch op % 4 {
			case 0, 1: // alloc; every third one stays unpublished
				snap, preSum := snapshot(), sumPublished()
				preRoots := rootsOf(func() (as []uint64) {
					for _, b := range live {
						if b.published {
							as = append(as, b.addr)
						}
					}
					return
				}()...)
				m.log = m.log[:0]
				want := uint64(arg)*7%700 + 1
				a := AllocArena(m, int(op>>5)%NumArenas, want)
				if a == 0 {
					continue
				}
				size := UsableWords(m, a)
				if size < want {
					t.Fatalf("Alloc(%d) returned %d usable words", want, size)
				}
				for _, b := range live {
					if a < b.addr+b.size && b.addr < a+size {
						t.Fatalf("double allocation: [%d,%d) overlaps [%d,%d)", a, a+size, b.addr, b.addr+b.size)
					}
				}
				live = append(live, blk{addr: a, size: size, published: op%8 != 1})
				crashPrefixes(snap, preRoots, preSum)
			case 2: // free
				if len(live) == 0 {
					continue
				}
				// The engine drops its reference before freeing, so the
				// published roots exclude the block for every crash prefix:
				// an un-cleared bitmap bit is then a leak Recover reclaims.
				j := int(arg) % len(live)
				addr := live[j].addr
				live = append(live[:j], live[j+1:]...)
				snap, preSum := snapshot(), sumPublished()
				preRoots := roots(published)
				m.log = m.log[:0]
				Free(m, addr)
				crashPrefixes(snap, preRoots, preSum)
			case 3: // crash + recover in place
				Recover(m, roots(published))
				var kept []blk
				for _, b := range live {
					if b.published {
						kept = append(kept, b)
					}
				}
				live = kept
			}
			if got, want := InUseWords(m), sumAll(); got != want {
				t.Fatalf("op %d: InUseWords %d, model %d", i/2, got, want)
			}
			if err := Reconcile(m, roots(func(blk) bool { return true })); err != nil {
				t.Fatalf("op %d: live heap does not reconcile: %v", i/2, err)
			}
		}
	})
}
