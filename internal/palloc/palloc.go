// Package palloc implements the sequential persistent memory allocator used
// by every construction in this repository. The paper's constructions
// acquire an exclusive lock on a replica region before running user code, so
// the allocator needs no internal synchronization — which is exactly how the
// paper obtains wait-free allocation and deallocation: the allocator inherits
// the progress of the construction that calls it.
//
// Design notes that the evaluation depends on:
//
//   - Blocks are rounded up to power-of-two sizes. The paper calls this out
//     as the reason RedoDB uses roughly 2× more NVMM than RocksDB (Fig. 8),
//     so the space overhead is preserved.
//   - All metadata (free-list heads, bump pointer, block headers) lives
//     inside the persistent region and is accessed through the same Mem
//     interface as user data, so a PTM's store interposition logs and
//     flushes allocator metadata exactly like user stores. The paper's
//     flush-aggregation optimization feeds on this: block headers share
//     cache lines with adjacent user data.
//   - The allocator state is part of the region, so replicating a region
//     byte-for-byte replicates the allocator — allocations made in one
//     replica are valid in every replica.
package palloc

import "fmt"

// Mem is the minimal word-memory interface the allocator needs. ptm.Mem
// satisfies it.
type Mem interface {
	Load(addr uint64) uint64
	Store(addr uint64, val uint64)
}

// Base is the word offset of the allocator metadata within a region,
// matching ptm.HeapBase.
const Base = 16

// numClasses covers block sizes 2^1..2^40 words.
const numClasses = 40

// Metadata word offsets relative to Base.
const (
	offMagic   = 0
	offHeapEnd = 1
	offBump    = 2
	offInUse   = 3
	offFree    = 8 // free-list heads, one word per class
	heapStart  = Base + offFree + numClasses
)

const magic = 0x70616c6c6f633031 // "palloc01"

// Format initializes allocator metadata in the region viewed through m. The
// heap occupies [heapStart, heapEnd) words. Formatting an already formatted
// heap resets it, dropping all allocations.
func Format(m Mem, heapEnd uint64) {
	if heapEnd <= heapStart+4 {
		panic(fmt.Sprintf("palloc: heap too small (%d words)", heapEnd))
	}
	m.Store(Base+offMagic, magic)
	m.Store(Base+offHeapEnd, heapEnd)
	m.Store(Base+offBump, heapStart)
	m.Store(Base+offInUse, 0)
	for c := 0; c < numClasses; c++ {
		m.Store(Base+offFree+uint64(c), 0)
	}
}

// IsFormatted reports whether the region viewed through m holds a formatted
// heap, as recovery uses it to decide between reuse and initialization.
func IsFormatted(m Mem) bool {
	return m.Load(Base+offMagic) == magic
}

// classFor returns the smallest size class whose block (including the
// one-word header) fits total words.
func classFor(total uint64) uint64 {
	c := uint64(1)
	for uint64(1)<<c < total {
		c++
	}
	return c
}

// Alloc allocates a block with room for at least words payload words and
// returns the payload address, or 0 if the heap is exhausted.
func Alloc(m Mem, words uint64) uint64 {
	if words == 0 {
		words = 1
	}
	c := classFor(words + 1)
	if c >= numClasses {
		return 0
	}
	size := uint64(1) << c
	head := m.Load(Base + offFree + c)
	var blk uint64
	if head != 0 {
		blk = head
		m.Store(Base+offFree+c, m.Load(blk+1)) // pop free list
	} else {
		bump := m.Load(Base + offBump)
		if bump+size > m.Load(Base+offHeapEnd) {
			return 0
		}
		blk = bump
		m.Store(Base+offBump, bump+size)
	}
	m.Store(blk, c) // block header: size class
	m.Store(Base+offInUse, m.Load(Base+offInUse)+size)
	return blk + 1
}

// Free returns the block whose payload starts at addr to its size-class free
// list. Freeing an invalid address panics: persistent heap corruption must
// not be silent.
func Free(m Mem, addr uint64) {
	if addr <= heapStart {
		panic(fmt.Sprintf("palloc: Free(%d): not an allocated address", addr))
	}
	blk := addr - 1
	c := m.Load(blk)
	if c == 0 || c >= numClasses {
		panic(fmt.Sprintf("palloc: Free(%d): corrupt block header (class %d)", addr, c))
	}
	m.Store(blk+1, m.Load(Base+offFree+c)) // push free list
	m.Store(Base+offFree+c, blk)
	m.Store(Base+offInUse, m.Load(Base+offInUse)-(uint64(1)<<c))
}

// UsableWords reports the payload capacity of the block at addr.
func UsableWords(m Mem, addr uint64) uint64 {
	c := m.Load(addr - 1)
	if c == 0 || c >= numClasses {
		panic(fmt.Sprintf("palloc: UsableWords(%d): corrupt block header", addr))
	}
	return (uint64(1) << c) - 1
}

// InUseWords reports the number of words currently allocated (including
// block headers and rounding waste): the NVMM usage the paper plots in
// Fig. 8.
func InUseWords(m Mem) uint64 { return m.Load(Base + offInUse) }

// UsedWords reports the high-water mark of the heap: every word the
// allocator has ever handed out lies below it. CX-PUC flushes [0, UsedWords)
// on every curComb transition, and replica copies cover the same range.
func UsedWords(m Mem) uint64 { return m.Load(Base + offBump) }

// HeapEndWords reports the configured heap end.
func HeapEndWords(m Mem) uint64 { return m.Load(Base + offHeapEnd) }

// HeapStart reports the first heap word, after the allocator metadata.
func HeapStart() uint64 { return heapStart }
