// Package palloc implements the sequential persistent memory allocator used
// by every construction in this repository. The paper's constructions
// acquire an exclusive lock on a replica region before running user code, so
// the allocator needs no internal synchronization — which is exactly how the
// paper obtains wait-free allocation and deallocation: the allocator inherits
// the progress of the construction that calls it.
//
// Two on-media formats coexist, distinguished by the magic word:
//
//   - The arena format (Format, "palloc02") carves the heap into 64-word
//     pages grouped into spans, each span owned by one of 31 fine-grained
//     size classes (1.25× spacing). Allocation state lives in per-span
//     occupancy bitmaps: the hot path for an Alloc or Free is a single
//     logged word store. Class free lists are kept per arena so shards and
//     threads hashed to different arenas reuse disjoint spans. Recovery can
//     rebuild the bitmaps from engine-registered roots (Recover), which
//     reclaims blocks leaked by a crash between allocation and publication.
//   - The legacy format (FormatLegacy, "palloc01") is the sequential
//     power-of-two free list the paper measures in Fig. 8: every metadata
//     touch (free-list head, bump pointer, in-use counter, block header) is
//     a logged store, and block sizes round up to powers of two. It is kept
//     as the space/instruction baseline for the Fig-8-style comparison.
//
// Design notes that the evaluation depends on:
//
//   - All metadata (directory entries, list heads, bump pointer) lives
//     inside the persistent region and is accessed through the same Mem
//     interface as user data, so a PTM's store interposition logs and
//     flushes allocator metadata exactly like user stores.
//   - The allocator state is part of the region, so replicating a region
//     byte-for-byte replicates the allocator — allocations made in one
//     replica are valid in every replica.
//   - Allocation is a pure function of persistent state: given the same
//     heap image and the same arena, Alloc returns the same address. The
//     PTM closure-determinism contract (ptm.Mem) depends on this; there is
//     no volatile cache or hint state.
package palloc

// Mem is the minimal word-memory interface the allocator needs. ptm.Mem
// satisfies it.
type Mem interface {
	Load(addr uint64) uint64
	Store(addr uint64, val uint64)
}

// Base is the word offset of the allocator metadata within a region,
// matching ptm.HeapBase.
const Base = 16

const (
	magicArena  = 0x70616c6c6f633032 // "palloc02"
	magicLegacy = 0x70616c6c6f633031 // "palloc01"
)

// IsFormatted reports whether the region viewed through m holds a formatted
// heap (either format), as recovery uses it to decide between reuse and
// initialization.
func IsFormatted(m Mem) bool {
	w := m.Load(Base + offMagic)
	return w == magicArena || w == magicLegacy
}

// IsLegacy reports whether the heap uses the legacy power-of-two format.
func IsLegacy(m Mem) bool { return m.Load(Base+offMagic) == magicLegacy }

// Alloc allocates a block with room for at least words payload words from
// arena 0 and returns the payload address, or 0 if the heap is exhausted.
func Alloc(m Mem, words uint64) uint64 { return AllocArena(m, 0, words) }

// AllocArena allocates from the given arena (0..NumArenas-1). Arenas
// partition the class free lists so callers hashed to different arenas
// (shards, threads) reuse disjoint spans; the legacy format has a single
// free list and ignores the arena. The arena must be a deterministic
// function of the operation being executed (e.g. the announcing thread id),
// never of the executing helper, or re-executed closures would diverge.
func AllocArena(m Mem, arena int, words uint64) uint64 {
	if IsLegacy(m) {
		return legacyAlloc(m, words)
	}
	return arenaAlloc(m, arena, words)
}

// Free returns the block whose payload starts at addr to its free
// structure. Freeing an invalid address panics: persistent heap corruption
// must not be silent.
func Free(m Mem, addr uint64) {
	if IsLegacy(m) {
		legacyFree(m, addr)
		return
	}
	arenaFree(m, addr)
}

// UsableWords reports the payload capacity of the block at addr.
func UsableWords(m Mem, addr uint64) uint64 {
	if IsLegacy(m) {
		return legacyUsableWords(m, addr)
	}
	return arenaUsableWords(m, addr)
}

// InUseWords reports the number of words currently allocated (including
// rounding waste): the NVMM usage the paper plots in Fig. 8. The arena
// format computes it from the page directory; the legacy format keeps a
// logged counter.
func InUseWords(m Mem) uint64 {
	if IsLegacy(m) {
		return m.Load(Base + offInUse)
	}
	return arenaInUseWords(m)
}

// UsedWords reports the high-water mark of the heap: every word the
// allocator has ever handed out lies below it. CX-PUC flushes [0, UsedWords)
// on every curComb transition, and replica copies cover the same range.
func UsedWords(m Mem) uint64 {
	if IsLegacy(m) {
		return m.Load(Base + offBump)
	}
	return m.Load(Base+off2PagesStart) + m.Load(Base+off2Bump)*pageWords
}

// HeapEndWords reports the configured heap end.
func HeapEndWords(m Mem) uint64 { return m.Load(Base + offHeapEnd) }

// MetaWords reports the number of words of allocator metadata at the start
// of the region viewed through m: the first payload word of any block lies
// at or beyond it. Engines flush [0, MetaWords) after formatting. The arena
// format's metadata includes the page directory, so the value depends on
// the heap size; the legacy format's is fixed.
func MetaWords(m Mem) uint64 {
	if IsLegacy(m) {
		return legacyHeapStart
	}
	return m.Load(Base + off2PagesStart)
}
