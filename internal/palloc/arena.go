package palloc

import (
	"fmt"
	"math/bits"
)

// Arena heap layout (all word offsets relative to Base):
//
//	+0  magic ("palloc02")
//	+1  heapEnd            configured region end, words
//	+2  pageBump           pages ever claimed from the virgin frontier
//	+3  freeRunHead        page index of the first free run (0 = none)
//	+4  numPages           total pages in the heap
//	+5  pagesStart         word address of page 1 (cache-line aligned)
//	+6  +7                 reserved
//	+8  class list heads   NumArenas × numClasses2 words (page index, 0 = none)
//	    page directory     2 words per page
//	    pages              numPages × 64 words
//
// Every page has a two-word directory entry. The first word of a segment
// head packs [kind | class | arena | linked | npages | next]; the second
// word is the span occupancy bitmap (span heads), the page count (large
// heads), or the run length (free-run heads). Continuation entries point
// back at their head so Free maps an address to its span in O(1). The page
// directory is walkable front to back: every head entry says how many pages
// its segment covers, so InUseWords and Recover scan it sequentially.
const (
	offMagic   = 0
	offHeapEnd = 1

	off2Bump       = 2
	off2FreeRun    = 3
	off2NumPages   = 4
	off2PagesStart = 5
	off2Lists      = 8
)

// NumArenas is the number of independent class free-list sets. Callers pick
// an arena deterministically (owner thread id, shard id); 0 always works.
const NumArenas = 4

// pageWords is the page size: one span bitmap word covers at most 64 blocks,
// and a 64-word page is exactly one replica cache-line group (512 B).
const pageWords = 64

// classSizes are the block sizes in words: {2..8} then four sizes per
// octave, a 1.25× spacing that caps rounding waste at 25% (the legacy
// power-of-two classes waste up to 100%). Every size is odd×2^j with
// odd ≤ 7, so a span of npages(c) pages divides into blocks with zero
// remainder — classes have no per-span waste and no per-block headers.
var classSizes = [...]uint64{
	2, 3, 4, 5, 6, 7, 8,
	10, 12, 14, 16,
	20, 24, 28, 32,
	40, 48, 56, 64,
	80, 96, 112, 128,
	160, 192, 224, 256,
	320, 384, 448, 512,
}

const (
	numClasses2 = len(classSizes)
	maxSmall    = 512 // largest class size; bigger requests get dedicated pages
	dirStart    = uint64(Base + off2Lists + NumArenas*numClasses2)
)

// classBlocks and classPages derive the span geometry: blocks per span
// (≤ 64, one bitmap word) and pages per span.
var (
	classBlocks [numClasses2]uint64
	classPages  [numClasses2]uint64
	classOf     [maxSmall + 1]uint8 // request words → smallest fitting class
)

func init() {
	for c, s := range classSizes {
		j := uint(bits.TrailingZeros64(s))
		if j > 6 {
			j = 6
		}
		b := uint64(64) >> j
		classBlocks[c] = b
		classPages[c] = s * b / pageWords
	}
	c := 0
	for w := 1; w <= maxSmall; w++ {
		if uint64(w) > classSizes[c] {
			c++
		}
		classOf[w] = uint8(c)
	}
}

// Directory entry packing (head word).
const (
	kindFree  = 0 // free-run head; word1 = run length in pages
	kindSpan  = 1 // class-span head; word1 = occupancy bitmap
	kindLarge = 2 // dedicated-pages head; word1 = page count
	kindCont  = 3 // continuation; next field = head page index

	kindMask   = 0x3
	classShift = 2
	classMask  = uint64(0x3f) << classShift
	arenaShift = 8
	arenaMask  = uint64(0x7) << arenaShift
	linkedBit  = uint64(1) << 11
	npShift    = 12
	npMask     = uint64(0xfff) << npShift
	nextShift  = 24
	nextMask   = uint64(0xffffff) << nextShift
)

func packSpan(class, arena, npages, next uint64, linked bool) uint64 {
	w := kindSpan | class<<classShift | arena<<arenaShift | npages<<npShift | next<<nextShift
	if linked {
		w |= linkedBit
	}
	return w
}

func nextOf(e uint64) uint64    { return e >> nextShift & 0xffffff }
func classOfE(e uint64) int     { return int(e & classMask >> classShift) }
func arenaOfE(e uint64) int     { return int(e & arenaMask >> arenaShift) }
func npagesOfE(e uint64) uint64 { return e & npMask >> npShift }

func dir0(p uint64) uint64 { return dirStart + 2*(p-1) }
func dir1(p uint64) uint64 { return dirStart + 2*(p-1) + 1 }

func pageAddr(m Mem, p uint64) uint64 {
	return m.Load(Base+off2PagesStart) + (p-1)*pageWords
}

func listAddr(arena, class int) uint64 {
	return Base + off2Lists + uint64(arena*numClasses2+class)
}

func fullMask(class int) uint64 {
	if classBlocks[class] == 64 {
		return ^uint64(0)
	}
	return 1<<classBlocks[class] - 1
}

// layout computes the page count and first-page address for a heap of
// heapEnd words: the directory (2 words/page) plus the pages themselves
// must fit between dirStart and heapEnd, with pages cache-line aligned.
func layout(heapEnd uint64) (numPages, pagesStart uint64) {
	if heapEnd <= dirStart+2 {
		return 0, 0
	}
	numPages = (heapEnd - dirStart) / (2 + pageWords)
	for numPages > 0 {
		pagesStart = (dirStart + 2*numPages + 7) &^ 7
		if pagesStart+numPages*pageWords <= heapEnd {
			return numPages, pagesStart
		}
		numPages--
	}
	return 0, 0
}

// Format initializes an arena heap in the region viewed through m. The heap
// occupies [MetaWords, heapEnd) words. Formatting an already formatted heap
// resets it, dropping all allocations. The magic is written last so a crash
// mid-format leaves an unformatted region, never a half-initialized heap.
func Format(m Mem, heapEnd uint64) {
	numPages, pagesStart := layout(heapEnd)
	if numPages < 1 {
		panic(fmt.Sprintf("palloc: heap too small (%d words)", heapEnd))
	}
	m.Store(Base+offHeapEnd, heapEnd)
	m.Store(Base+off2Bump, 0)
	m.Store(Base+off2FreeRun, 0)
	m.Store(Base+off2NumPages, numPages)
	m.Store(Base+off2PagesStart, pagesStart)
	m.Store(Base+6, 0)
	m.Store(Base+7, 0)
	for i := 0; i < NumArenas*numClasses2; i++ {
		m.Store(Base+off2Lists+uint64(i), 0)
	}
	m.Store(Base+offMagic, magicArena)
}

// classFor returns the smallest class whose blocks hold words payload words.
func classFor(words uint64) int { return int(classOf[words]) }

// findPages locates n contiguous free pages, first-fit over the free-run
// list and then the virgin frontier, without mutating anything. It returns
// the first page, the predecessor link to rewrite (0 = the freeRunHead
// word itself) and whether the pages come from a run.
func findPages(m Mem, n uint64) (p, prev uint64, fromRun bool) {
	prev = 0
	for q := m.Load(Base + off2FreeRun); q != 0; q = nextOf(m.Load(dir0(q))) {
		if m.Load(dir1(q)) >= n {
			return q, prev, true
		}
		prev = q
	}
	bump := m.Load(Base + off2Bump)
	if bump+n > m.Load(Base+off2NumPages) {
		return 0, 0, false
	}
	return bump + 1, 0, false
}

// claimPages takes n pages located by findPages out of the free structure.
// Ordering matters for crash prefixes: the remainder run head and the list
// unlink are written before the claimed pages' entries change meaning, so a
// sequential directory walk parses every prefix (see Recover).
func claimPages(m Mem, p, prev, n uint64, fromRun bool) {
	if !fromRun {
		return // pages beyond pageBump are invisible until the bump store
	}
	runLen := m.Load(dir1(p))
	next := nextOf(m.Load(dir0(p)))
	link := next
	if runLen > n {
		rem := p + n
		m.Store(dir0(rem), kindFree|next<<nextShift)
		m.Store(dir1(rem), runLen-n)
		link = rem
	}
	if prev == 0 {
		m.Store(Base+off2FreeRun, link)
	} else {
		m.Store(dir0(prev), m.Load(dir0(prev))&^nextMask|link<<nextShift)
	}
}

// arenaAlloc is the arena-format allocation path. Steady-state reuse is a
// single logged store: set one bit in the head span's occupancy bitmap.
// Claiming a fresh span costs npages+3 stores amortized over its blocks.
func arenaAlloc(m Mem, arena int, words uint64) uint64 {
	if words == 0 {
		words = 1
	}
	if arena < 0 || arena >= NumArenas {
		panic(fmt.Sprintf("palloc: arena %d out of range", arena))
	}
	if words > maxSmall {
		return arenaAllocLarge(m, words)
	}
	c := classFor(words)
	size := classSizes[c]
	full := fullMask(c)
	lh := listAddr(arena, c)
	for p := m.Load(lh); p != 0; {
		e0 := m.Load(dir0(p))
		bm := m.Load(dir1(p))
		if bm&full != full {
			i := uint64(bits.TrailingZeros64(^bm & full))
			nbm := bm | 1<<i
			m.Store(dir1(p), nbm)
			if nbm&full == full {
				// The span just filled: unlink it so the list only ever
				// holds spans with a free block.
				m.Store(lh, nextOf(e0))
				m.Store(dir0(p), e0&^(linkedBit|nextMask))
			}
			return pageAddr(m, p) + i*size
		}
		// A full span at the head is a crash remnant (the filling store
		// landed but the unlink did not): pop it and keep looking.
		m.Store(lh, nextOf(e0))
		m.Store(dir0(p), e0&^(linkedBit|nextMask))
		p = nextOf(e0)
	}
	// No span with room: claim one. Entries are written before the span
	// becomes reachable (bump advance / list head), so every store prefix
	// leaves a parseable directory.
	npages := classPages[c]
	p, prev, fromRun := findPages(m, npages)
	if p == 0 {
		return 0
	}
	claimPages(m, p, prev, npages, fromRun)
	for q := p + 1; q < p+npages; q++ {
		m.Store(dir0(q), kindCont|p<<nextShift)
	}
	link := classBlocks[c] > 1 // a one-block span is born full: keep it off the list
	m.Store(dir0(p), packSpan(uint64(c), uint64(arena), npages, 0, link))
	m.Store(dir1(p), 1)
	if !fromRun {
		m.Store(Base+off2Bump, m.Load(Base+off2Bump)+npages)
	}
	if link {
		m.Store(lh, p)
	}
	return pageAddr(m, p)
}

// arenaAllocLarge serves requests beyond the largest class with dedicated
// pages: 3 stores, ≤ pageWords-1 words of rounding waste.
func arenaAllocLarge(m Mem, words uint64) uint64 {
	if words > ^uint64(0)-pageWords {
		return 0 // reject before (words+63) can wrap
	}
	npages := (words + pageWords - 1) / pageWords
	if npages > m.Load(Base+off2NumPages) {
		return 0
	}
	p, prev, fromRun := findPages(m, npages)
	if p == 0 {
		return 0
	}
	claimPages(m, p, prev, npages, fromRun)
	m.Store(dir0(p), kindLarge)
	m.Store(dir1(p), npages)
	if !fromRun {
		m.Store(Base+off2Bump, m.Load(Base+off2Bump)+npages)
	}
	return pageAddr(m, p)
}

// pageOf maps a heap address to its page index, panicking on addresses
// outside the claimed heap.
func pageOf(m Mem, addr uint64) uint64 {
	ps := m.Load(Base + off2PagesStart)
	if addr < ps {
		panic(fmt.Sprintf("palloc: address %d inside metadata", addr))
	}
	p := (addr-ps)/pageWords + 1
	if p > m.Load(Base+off2Bump) {
		panic(fmt.Sprintf("palloc: address %d beyond claimed heap", addr))
	}
	return p
}

// spanHead resolves the page holding addr to its segment head page.
func spanHead(m Mem, p uint64) (head uint64, e0 uint64) {
	e0 = m.Load(dir0(p))
	if e0&kindMask == kindCont {
		head = nextOf(e0)
		return head, m.Load(dir0(head))
	}
	return p, e0
}

// arenaFree is the arena-format deallocation path: clear one bitmap bit
// (one store); a span returning from full to non-full relinks into its
// arena's class list, and a large block becomes a free run — its directory
// words already hold the run geometry, so the kind flip is a single store.
func arenaFree(m Mem, addr uint64) {
	p, e0 := spanHead(m, pageOf(m, addr))
	switch e0 & kindMask {
	case kindLarge:
		if addr != pageAddr(m, p) {
			panic(fmt.Sprintf("palloc: Free(%d): not a block start", addr))
		}
		m.Store(dir0(p), kindFree|m.Load(Base+off2FreeRun)<<nextShift)
		m.Store(Base+off2FreeRun, p)
	case kindSpan:
		c := classOfE(e0)
		size := classSizes[c]
		off := addr - pageAddr(m, p)
		i := off / size
		if off%size != 0 || i >= classBlocks[c] {
			panic(fmt.Sprintf("palloc: Free(%d): not a block start", addr))
		}
		bm := m.Load(dir1(p))
		if bm&(1<<i) == 0 {
			panic(fmt.Sprintf("palloc: Free(%d): block already free", addr))
		}
		m.Store(dir1(p), bm&^(1<<i))
		if full := fullMask(c); bm&full == full {
			lh := listAddr(arenaOfE(e0), c)
			m.Store(dir0(p), e0&^nextMask|linkedBit|m.Load(lh)<<nextShift)
			m.Store(lh, p)
		}
	default:
		panic(fmt.Sprintf("palloc: Free(%d): not an allocated address", addr))
	}
}

func arenaUsableWords(m Mem, addr uint64) uint64 {
	p, e0 := spanHead(m, pageOf(m, addr))
	switch e0 & kindMask {
	case kindLarge:
		return m.Load(dir1(p)) * pageWords
	case kindSpan:
		return classSizes[classOfE(e0)]
	}
	panic(fmt.Sprintf("palloc: UsableWords(%d): not an allocated address", addr))
}

// arenaInUseWords walks the page directory front to back, summing live
// block footprints (bitmap popcount × class size, large page counts).
func arenaInUseWords(m Mem) uint64 {
	var sum uint64
	bump := m.Load(Base + off2Bump)
	for p := uint64(1); p <= bump; {
		e0 := m.Load(dir0(p))
		switch e0 & kindMask {
		case kindSpan:
			c := classOfE(e0)
			sum += uint64(bits.OnesCount64(m.Load(dir1(p))&fullMask(c))) * classSizes[c]
			p += npagesOfE(e0)
		case kindLarge:
			n := m.Load(dir1(p))
			sum += n * pageWords
			p += n
		case kindFree:
			n := m.Load(dir1(p))
			if n == 0 {
				n = 1
			}
			p += n
		default:
			panic(fmt.Sprintf("palloc: corrupt directory at page %d", p))
		}
	}
	return sum
}
