package palloc

import "fmt"

// The legacy format is the sequential power-of-two free-list allocator the
// paper's Fig. 8 measures: blocks round up to powers of two (the ~2× NVMM
// overhead versus RocksDB), every metadata touch — free-list head, bump
// pointer, in-use counter, block header — is a logged word store (4–6 per
// Alloc), and a block leaked between Alloc and root publication stays
// leaked forever. It is kept as the baseline side of the Fig-8-style
// space/instruction comparison (dbbench -space) and selectable per engine
// (redodb Options.LegacyAlloc).

// numClassesLegacy covers block sizes 2^1..2^40 words.
const numClassesLegacy = 40

// Legacy metadata word offsets relative to Base.
const (
	offBump         = 2
	offInUse        = 3
	offFree         = 8 // free-list heads, one word per class
	legacyHeapStart = Base + offFree + numClassesLegacy
)

// FormatLegacy initializes a legacy power-of-two heap in the region viewed
// through m. The heap occupies [legacyHeapStart, heapEnd) words. Formatting
// an already formatted heap resets it, dropping all allocations.
func FormatLegacy(m Mem, heapEnd uint64) {
	if heapEnd <= legacyHeapStart+4 {
		panic(fmt.Sprintf("palloc: heap too small (%d words)", heapEnd))
	}
	m.Store(Base+offHeapEnd, heapEnd)
	m.Store(Base+offBump, legacyHeapStart)
	m.Store(Base+offInUse, 0)
	for c := 0; c < numClassesLegacy; c++ {
		m.Store(Base+offFree+uint64(c), 0)
	}
	m.Store(Base+offMagic, magicLegacy)
}

// legacyClassFor returns the smallest size class whose block (including the
// one-word header) fits total words.
func legacyClassFor(total uint64) uint64 {
	c := uint64(1)
	for uint64(1)<<c < total {
		c++
	}
	return c
}

func legacyAlloc(m Mem, words uint64) uint64 {
	if words == 0 {
		words = 1
	}
	if words+1 < words {
		// words+1 would wrap to 0 and legacyClassFor(0) would answer
		// class 1, handing out a 2-word block for a 2^64-word request.
		return 0
	}
	c := legacyClassFor(words + 1)
	if c >= numClassesLegacy {
		return 0
	}
	size := uint64(1) << c
	head := m.Load(Base + offFree + c)
	var blk uint64
	if head != 0 {
		blk = head
		m.Store(Base+offFree+c, m.Load(blk+1)) // pop free list
	} else {
		bump := m.Load(Base + offBump)
		if bump+size > m.Load(Base+offHeapEnd) {
			return 0
		}
		blk = bump
		m.Store(Base+offBump, bump+size)
	}
	m.Store(blk, c) // block header: size class
	m.Store(Base+offInUse, m.Load(Base+offInUse)+size)
	return blk + 1
}

func legacyFree(m Mem, addr uint64) {
	if addr <= legacyHeapStart {
		panic(fmt.Sprintf("palloc: Free(%d): not an allocated address", addr))
	}
	blk := addr - 1
	c := m.Load(blk)
	if c == 0 || c >= numClassesLegacy {
		panic(fmt.Sprintf("palloc: Free(%d): corrupt block header (class %d)", addr, c))
	}
	m.Store(blk+1, m.Load(Base+offFree+c)) // push free list
	m.Store(Base+offFree+c, blk)
	m.Store(Base+offInUse, m.Load(Base+offInUse)-(uint64(1)<<c))
}

func legacyUsableWords(m Mem, addr uint64) uint64 {
	c := m.Load(addr - 1)
	if c == 0 || c >= numClassesLegacy {
		panic(fmt.Sprintf("palloc: UsableWords(%d): corrupt block header", addr))
	}
	return (uint64(1) << c) - 1
}
