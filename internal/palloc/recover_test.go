package palloc

import "testing"

// rootsOf builds a RootEnumerator over a fixed address set.
func rootsOf(addrs ...uint64) RootEnumerator {
	return func(visit func(uint64)) {
		for _, a := range addrs {
			visit(a)
		}
	}
}

func TestRecoverReclaimsLeakedBlock(t *testing.T) {
	m, _ := format(1 << 14)
	kept := Alloc(m, 10)
	leaked := Alloc(m, 10) // allocated but never published: a mid-crash leak
	large := Alloc(m, 600)
	if err := Reconcile(m, rootsOf(kept, leaked, large)); err != nil {
		t.Fatalf("fully-reachable heap does not reconcile: %v", err)
	}
	if err := Reconcile(m, rootsOf(kept, large)); err == nil {
		t.Fatal("Reconcile missed the leaked block")
	}
	st := Recover(m, rootsOf(kept, large))
	if st.ReclaimedWords != 10 {
		t.Fatalf("ReclaimedWords = %d, want 10", st.ReclaimedWords)
	}
	if st.ReachableWords != 10+640 {
		t.Fatalf("ReachableWords = %d, want 650", st.ReachableWords)
	}
	if got := InUseWords(m); got != 650 {
		t.Fatalf("InUseWords after Recover = %d, want 650", got)
	}
	if err := Reconcile(m, rootsOf(kept, large)); err != nil {
		t.Fatalf("recovered heap does not reconcile: %v", err)
	}
	// The reclaimed slot is allocatable again.
	if a := Alloc(m, 10); a != leaked {
		t.Fatalf("reclaimed block not reused: got %d, want %d", a, leaked)
	}
}

func TestRecoverReclaimsLeakedLargeBlock(t *testing.T) {
	m, _ := format(1 << 14)
	kept := Alloc(m, 10)
	leakedLarge := Alloc(m, 600)
	st := Recover(m, rootsOf(kept))
	if st.ReclaimedWords != 640 {
		t.Fatalf("ReclaimedWords = %d, want 640", st.ReclaimedWords)
	}
	if got := InUseWords(m); got != 10 {
		t.Fatalf("InUseWords = %d, want 10", got)
	}
	if a := Alloc(m, 600); a != leakedLarge {
		t.Fatalf("reclaimed pages not reused: got %d, want %d", a, leakedLarge)
	}
}

// TestRecoverIsIdempotent: recovering a consistent heap changes nothing —
// zero stores — so engines can run it unconditionally on every open.
func TestRecoverIsIdempotent(t *testing.T) {
	m := &countMem{flatMem: newMem(1 << 14)}
	Format(m, 1<<14)
	a := Alloc(m, 10)
	b := Alloc(m, 100)
	c := Alloc(m, 600)
	Free(m, b)
	roots := rootsOf(a, c)
	Recover(m, roots)
	m.stores = 0
	Recover(m, roots)
	if m.stores != 0 {
		t.Fatalf("second Recover issued %d stores, want 0", m.stores)
	}
}

// TestRecoverCompactsEmptySpans: spans drained by Free stay class-owned
// (lazy) until a recovery converts them into coalesced free runs and
// shrinks the virgin frontier past a free tail.
func TestRecoverCompactsEmptySpans(t *testing.T) {
	m, _ := format(1 << 14)
	a := Alloc(m, 4)
	b := Alloc(m, 100) // separate class, separate span
	Free(m, b)
	hw := UsedWords(m)
	Recover(m, rootsOf(a))
	if got := UsedWords(m); got >= hw {
		t.Fatalf("frontier did not shrink past the drained span: %d >= %d", got, hw)
	}
	if err := Reconcile(m, rootsOf(a)); err != nil {
		t.Fatalf("compacted heap does not reconcile: %v", err)
	}
	// The reclaimed pages serve a different class now.
	if got := Alloc(m, 600); got == 0 {
		t.Fatal("large alloc failed after compaction")
	}
}

func TestRecoverRejectsBogusRoots(t *testing.T) {
	m, _ := format(1 << 14)
	a := Alloc(m, 10)
	for _, bad := range []uint64{1, a + 1, MetaWords(m) + (1 << 13)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Recover with bogus root %d did not panic", bad)
				}
			}()
			Recover(m, rootsOf(a, bad))
		}()
	}
}

func TestRecoverOnLegacyIsNoop(t *testing.T) {
	m := &countMem{flatMem: newMem(4096)}
	FormatLegacy(m, 4096)
	a := Alloc(m, 10)
	m.stores = 0
	st := Recover(m, rootsOf(a))
	if m.stores != 0 || st.ReclaimedWords != 0 {
		t.Fatalf("legacy Recover mutated the heap (%d stores)", m.stores)
	}
	if err := Reconcile(m, rootsOf()); err != nil {
		t.Fatalf("legacy Reconcile = %v, want nil (leaks are the baseline there)", err)
	}
}

func TestStatsBreakdown(t *testing.T) {
	m, _ := format(1 << 14)
	a := Alloc(m, 10)
	_ = Alloc(m, 10)
	lg := Alloc(m, 600)
	Free(m, a)
	st := Stats(m)
	if st.InUseWords != InUseWords(m) {
		t.Fatalf("Stats.InUseWords %d != InUseWords %d", st.InUseWords, InUseWords(m))
	}
	var cs *ClassStats
	for i := range st.Classes {
		if st.Classes[i].Size == 10 {
			cs = &st.Classes[i]
		}
	}
	if cs == nil || cs.Spans != 1 || cs.LiveBlocks != 1 {
		t.Fatalf("class-10 stats = %+v, want 1 span / 1 live block", cs)
	}
	if cs.CapBlocks <= cs.LiveBlocks {
		t.Fatal("class-10 span reports no free capacity")
	}
	if st.LargeBlocks != 1 || st.LargePages != 10 {
		t.Fatalf("large stats = %d blocks / %d pages, want 1 / 10", st.LargeBlocks, st.LargePages)
	}
	Free(m, lg)
	if st = Stats(m); st.FreePages != 10 {
		t.Fatalf("FreePages = %d, want 10 after large free", st.FreePages)
	}
}
