package palloc

import (
	"fmt"
	"math/bits"
)

// RootEnumerator walks every reachable allocated block of an engine's
// persistent state, calling visit with each block's payload address exactly
// once. Engines register one per heap (redodb's kv map plus its dedup
// table; see redodb.Open) and recovery rebuilds the allocator's occupancy
// state from it.
type RootEnumerator func(visit func(addr uint64))

// RecoverStats reports what a reachability pass changed.
type RecoverStats struct {
	ReachableWords uint64 // footprint of blocks the enumerator reached
	ReclaimedWords uint64 // previously-allocated words reclaimed as leaks
	ReclaimedPages uint64 // whole pages returned to the free structure
}

// segment is one parsed page-directory entry group.
type segment struct {
	page   uint64
	kind   int
	class  int
	arena  int
	npages uint64
	bm     uint64 // spans: occupancy bitmap at parse time
}

// heapImage is a DRAM parse of an arena heap's directory.
type heapImage struct {
	bump, numPages, pagesStart uint64
	segs                       []segment
	segAt                      []int32 // page-1 → index into segs
	reachBm                    []uint64
	reached                    []bool
}

func parseHeap(m Mem) *heapImage {
	h := &heapImage{
		bump:       m.Load(Base + off2Bump),
		numPages:   m.Load(Base + off2NumPages),
		pagesStart: m.Load(Base + off2PagesStart),
	}
	h.segAt = make([]int32, h.bump)
	for p := uint64(1); p <= h.bump; {
		e0 := m.Load(dir0(p))
		s := segment{page: p, kind: int(e0 & kindMask)}
		switch s.kind {
		case kindSpan:
			s.class = classOfE(e0)
			s.arena = arenaOfE(e0)
			s.npages = npagesOfE(e0)
			s.bm = m.Load(dir1(p)) & fullMask(s.class)
		case kindLarge:
			s.npages = m.Load(dir1(p))
		case kindFree:
			s.npages = m.Load(dir1(p))
			if s.npages == 0 {
				s.npages = 1
			}
		default:
			panic(fmt.Sprintf("palloc: corrupt directory at page %d", p))
		}
		idx := int32(len(h.segs))
		h.segs = append(h.segs, s)
		for q := p; q < p+s.npages && q <= h.bump; q++ {
			h.segAt[q-1] = idx
		}
		p += s.npages
	}
	h.reachBm = make([]uint64, len(h.segs))
	h.reached = make([]bool, len(h.segs))
	return h
}

// mark records one reachable payload address, validating that it names a
// block start inside an allocated segment.
func (h *heapImage) mark(addr uint64) error {
	if addr < h.pagesStart {
		return fmt.Errorf("palloc: reachable address %d inside metadata", addr)
	}
	p := (addr-h.pagesStart)/pageWords + 1
	if p > h.bump {
		return fmt.Errorf("palloc: reachable address %d beyond claimed heap", addr)
	}
	s := &h.segs[h.segAt[p-1]]
	start := h.pagesStart + (s.page-1)*pageWords
	switch s.kind {
	case kindSpan:
		size := classSizes[s.class]
		off := addr - start
		i := off / size
		if off%size != 0 || i >= classBlocks[s.class] {
			return fmt.Errorf("palloc: reachable address %d is not a block start", addr)
		}
		if h.reachBm[h.segAt[p-1]]&(1<<i) != 0 {
			return fmt.Errorf("palloc: address %d reached twice", addr)
		}
		h.reachBm[h.segAt[p-1]] |= 1 << i
	case kindLarge:
		if addr != start {
			return fmt.Errorf("palloc: reachable address %d is not a block start", addr)
		}
		if h.reached[h.segAt[p-1]] {
			return fmt.Errorf("palloc: address %d reached twice", addr)
		}
		h.reached[h.segAt[p-1]] = true
	default:
		return fmt.Errorf("palloc: reachable address %d in free pages", addr)
	}
	return nil
}

func (h *heapImage) enumerate(roots RootEnumerator) error {
	var err error
	roots(func(addr uint64) {
		if err == nil {
			err = h.mark(addr)
		}
	})
	return err
}

// Recover rebuilds the arena heap's occupancy state from the blocks roots
// reaches: leaked blocks (allocated but unreachable — a crash between Alloc
// and publication) are reclaimed, empty spans and unreachable large blocks
// return to a coalesced free-run list, the virgin frontier shrinks past a
// free tail, and the per-arena class lists are rebuilt to hold exactly the
// spans with free capacity. Only differing words are stored, so a clean
// heap recovers with zero stores and Recover is idempotent. The caller runs
// it inside a transaction (stores go through m and are logged like any
// other), after the engine's own recovery has restored a consistent image.
// Legacy heaps have no directory to rebuild and are left untouched.
func Recover(m Mem, roots RootEnumerator) RecoverStats {
	var st RecoverStats
	if IsLegacy(m) {
		return st
	}
	h := parseHeap(m)
	if err := h.enumerate(roots); err != nil {
		panic(err.Error())
	}
	diff := func(addr, val uint64) {
		if m.Load(addr) != val {
			m.Store(addr, val)
		}
	}
	// Pass 1: settle each segment — rewrite span bitmaps to the reachable
	// set, decide which pages fall free.
	free := make([]bool, h.bump)
	markFree := func(s *segment) {
		for q := s.page; q < s.page+s.npages && q <= h.bump; q++ {
			free[q-1] = true
		}
	}
	for i := range h.segs {
		s := &h.segs[i]
		switch s.kind {
		case kindSpan:
			reach := h.reachBm[i]
			size := classSizes[s.class]
			st.ReachableWords += uint64(bits.OnesCount64(reach)) * size
			if leaked := s.bm &^ reach; leaked != 0 {
				st.ReclaimedWords += uint64(bits.OnesCount64(leaked)) * size
			}
			if reach == 0 {
				markFree(s)
				st.ReclaimedPages += s.npages
				continue
			}
			diff(dir1(s.page), reach)
		case kindLarge:
			if h.reached[i] {
				st.ReachableWords += s.npages * pageWords
				continue
			}
			st.ReclaimedWords += s.npages * pageWords
			st.ReclaimedPages += s.npages
			markFree(s)
		case kindFree:
			markFree(s)
		}
	}
	// Pass 2: shrink the virgin frontier past a free tail, then write the
	// surviving free pages back as a coalesced ascending run list.
	newBump := h.bump
	for newBump > 0 && free[newBump-1] {
		newBump--
	}
	var runs [][2]uint64 // {head page, length}
	for p := uint64(1); p <= newBump; p++ {
		if !free[p-1] {
			continue
		}
		q := p
		for q+1 <= newBump && free[q] {
			q++
		}
		runs = append(runs, [2]uint64{p, q - p + 1})
		p = q
	}
	for i, r := range runs {
		var next uint64
		if i+1 < len(runs) {
			next = runs[i+1][0]
		}
		diff(dir0(r[0]), kindFree|next<<nextShift)
		diff(dir1(r[0]), r[1])
	}
	var runHead uint64
	if len(runs) > 0 {
		runHead = runs[0][0]
	}
	diff(Base+off2FreeRun, runHead)
	diff(Base+off2Bump, newBump)
	// Pass 3: rebuild the per-arena class lists to hold exactly the
	// surviving spans with free capacity, newest pages first.
	var heads [NumArenas][numClasses2]uint64
	for i := len(h.segs) - 1; i >= 0; i-- {
		s := &h.segs[i]
		if s.kind != kindSpan || s.page > newBump || free[s.page-1] {
			continue
		}
		reach := h.reachBm[i]
		full := fullMask(s.class)
		linked := reach&full != full
		var next uint64
		if linked {
			next = heads[s.arena][s.class]
			heads[s.arena][s.class] = s.page
		}
		diff(dir0(s.page), packSpan(uint64(s.class), uint64(s.arena), s.npages, next, linked))
	}
	for a := 0; a < NumArenas; a++ {
		for c := 0; c < numClasses2; c++ {
			diff(listAddr(a, c), heads[a][c])
		}
	}
	return st
}

// Reconcile checks an arena heap's allocation state against the blocks
// roots reaches, without mutating anything: it returns an error if any
// allocated block is unreachable (a leak) or any reachable address is not a
// live block (corruption). Chaos sweeps call it after every post-crash
// recovery; a heap that just ran Recover always reconciles. Legacy heaps
// (no directory) report nil — the leak-on-crash behavior is the documented
// baseline there.
func Reconcile(m Mem, roots RootEnumerator) error {
	if IsLegacy(m) {
		return nil
	}
	h := parseHeap(m)
	if err := h.enumerate(roots); err != nil {
		return err
	}
	var leakedBlocks, leakedWords uint64
	for i := range h.segs {
		s := &h.segs[i]
		switch s.kind {
		case kindSpan:
			if leaked := s.bm &^ h.reachBm[i]; leaked != 0 {
				leakedBlocks += uint64(bits.OnesCount64(leaked))
				leakedWords += uint64(bits.OnesCount64(leaked)) * classSizes[s.class]
			}
			if ghost := h.reachBm[i] &^ s.bm; ghost != 0 {
				return fmt.Errorf("palloc: span at page %d: %d reachable blocks not marked allocated",
					s.page, bits.OnesCount64(ghost))
			}
		case kindLarge:
			if !h.reached[i] {
				leakedBlocks++
				leakedWords += s.npages * pageWords
			}
		}
	}
	if leakedBlocks > 0 {
		return fmt.Errorf("palloc: %d leaked blocks (%d words allocated but unreachable)",
			leakedBlocks, leakedWords)
	}
	return nil
}

// ClassStats describes one size class's occupancy.
type ClassStats struct {
	Size       uint64 // block size, words
	Spans      uint64
	LiveBlocks uint64
	CapBlocks  uint64 // capacity of the claimed spans
}

// HeapStats is the allocator-level space breakdown behind the Fig-8-style
// bytes-per-key figure: per-class occupancy (external fragmentation is
// CapBlocks−LiveBlocks), large-block pages, free pages, and the heap
// frontier.
type HeapStats struct {
	Classes     []ClassStats // one entry per class with claimed spans
	LargeBlocks uint64
	LargePages  uint64
	FreePages   uint64 // pages in free runs (below the frontier)
	BumpPages   uint64 // pages ever claimed
	NumPages    uint64
	InUseWords  uint64
	MetaWords   uint64
}

// Stats summarizes an arena heap's space usage. Legacy heaps report only
// the counters they track (InUseWords, frontier) with no class breakdown.
func Stats(m Mem) HeapStats {
	if IsLegacy(m) {
		return HeapStats{
			InUseWords: m.Load(Base + offInUse),
			MetaWords:  legacyHeapStart,
		}
	}
	h := parseHeap(m)
	var st HeapStats
	st.BumpPages = h.bump
	st.NumPages = h.numPages
	st.MetaWords = h.pagesStart
	var perClass [numClasses2]ClassStats
	for i := range h.segs {
		s := &h.segs[i]
		switch s.kind {
		case kindSpan:
			cs := &perClass[s.class]
			cs.Spans++
			cs.LiveBlocks += uint64(bits.OnesCount64(s.bm))
			cs.CapBlocks += classBlocks[s.class]
			st.InUseWords += uint64(bits.OnesCount64(s.bm)) * classSizes[s.class]
		case kindLarge:
			st.LargeBlocks++
			st.LargePages += s.npages
			st.InUseWords += s.npages * pageWords
		case kindFree:
			st.FreePages += s.npages
		}
	}
	for c := range perClass {
		if perClass[c].Spans > 0 {
			perClass[c].Size = classSizes[c]
			st.Classes = append(st.Classes, perClass[c])
		}
	}
	return st
}
