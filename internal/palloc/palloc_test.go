package palloc

import (
	"testing"
	"testing/quick"
)

// flatMem is a trivial in-memory word array implementing Mem.
type flatMem []uint64

func (m flatMem) Load(addr uint64) uint64   { return m[addr] }
func (m flatMem) Store(addr, val uint64)    { m[addr] = val }
func newMem(words uint64) flatMem           { return make(flatMem, words) }
func format(words uint64) (flatMem, uint64) { m := newMem(words); Format(m, words); return m, words }

func TestFormatAndIsFormatted(t *testing.T) {
	m := newMem(1024)
	if IsFormatted(m) {
		t.Fatal("fresh memory reports formatted")
	}
	Format(m, 1024)
	if !IsFormatted(m) {
		t.Fatal("formatted heap not detected")
	}
	if got := HeapEndWords(m); got != 1024 {
		t.Fatalf("HeapEndWords = %d, want 1024", got)
	}
	if got := InUseWords(m); got != 0 {
		t.Fatalf("InUseWords on fresh heap = %d, want 0", got)
	}
}

func TestFormatPanicsOnTinyHeap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Format with tiny heap did not panic")
		}
	}()
	Format(newMem(64), HeapStart())
}

func TestAllocReturnsWritablePayload(t *testing.T) {
	m, _ := format(4096)
	a := Alloc(m, 10)
	if a == 0 {
		t.Fatal("Alloc failed on fresh heap")
	}
	if a <= HeapStart() {
		t.Fatalf("payload address %d inside metadata", a)
	}
	for i := uint64(0); i < 10; i++ {
		m.Store(a+i, i+1)
	}
	for i := uint64(0); i < 10; i++ {
		if m.Load(a+i) != i+1 {
			t.Fatalf("payload word %d corrupted", i)
		}
	}
	if got := UsableWords(m, a); got < 10 {
		t.Fatalf("UsableWords = %d, want >= 10", got)
	}
}

func TestPowerOfTwoRounding(t *testing.T) {
	m, _ := format(1 << 16)
	// 10 payload words + 1 header = 11 → class 4 → 16 words.
	Alloc(m, 10)
	if got := InUseWords(m); got != 16 {
		t.Fatalf("InUseWords = %d, want 16 (power-of-2 rounding)", got)
	}
	// 1 payload word + 1 header = 2 → class 1 → 2 words.
	Alloc(m, 1)
	if got := InUseWords(m); got != 18 {
		t.Fatalf("InUseWords = %d, want 18", got)
	}
}

func TestDisjointAllocations(t *testing.T) {
	m, _ := format(1 << 16)
	const n = 100
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = Alloc(m, 5)
		if addrs[i] == 0 {
			t.Fatalf("Alloc %d failed", i)
		}
		for w := uint64(0); w < 5; w++ {
			m.Store(addrs[i]+w, uint64(i)<<32|w)
		}
	}
	for i, a := range addrs {
		for w := uint64(0); w < 5; w++ {
			if got := m.Load(a + w); got != uint64(i)<<32|w {
				t.Fatalf("block %d word %d overwritten: %#x", i, w, got)
			}
		}
	}
}

func TestFreeAndReuse(t *testing.T) {
	m, _ := format(4096)
	a := Alloc(m, 10)
	before := InUseWords(m)
	Free(m, a)
	if got := InUseWords(m); got != before-16 {
		t.Fatalf("InUseWords after Free = %d, want %d", got, before-16)
	}
	b := Alloc(m, 10)
	if b != a {
		t.Fatalf("freed block not reused: got %d, want %d", b, a)
	}
}

func TestFreeListIsPerClass(t *testing.T) {
	m, _ := format(4096)
	small := Alloc(m, 1)  // class 1
	large := Alloc(m, 20) // class 5
	Free(m, small)
	Free(m, large)
	// A class-5 request must reuse the class-5 block, not the small one.
	if got := Alloc(m, 20); got != large {
		t.Fatalf("class-5 alloc returned %d, want %d", got, large)
	}
	if got := Alloc(m, 1); got != small {
		t.Fatalf("class-1 alloc returned %d, want %d", got, small)
	}
}

func TestAllocZeroWords(t *testing.T) {
	m, _ := format(4096)
	a := Alloc(m, 0)
	if a == 0 {
		t.Fatal("Alloc(0) failed")
	}
	if got := UsableWords(m, a); got < 1 {
		t.Fatalf("Alloc(0) usable words = %d, want >= 1", got)
	}
}

func TestOOMReturnsZero(t *testing.T) {
	m, end := format(HeapStart() + 16)
	_ = end
	if a := Alloc(m, 8); a == 0 {
		t.Fatal("first alloc should fit")
	}
	if a := Alloc(m, 8); a != 0 {
		t.Fatalf("alloc past heap end returned %d, want 0", a)
	}
}

func TestHugeAllocReturnsZero(t *testing.T) {
	m, _ := format(4096)
	if a := Alloc(m, 1<<50); a != 0 {
		t.Fatalf("huge alloc returned %d, want 0", a)
	}
}

func TestFreeInvalidPanics(t *testing.T) {
	m, _ := format(4096)
	for _, addr := range []uint64{0, 1, HeapStart()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Free(%d) did not panic", addr)
				}
			}()
			Free(m, addr)
		}()
	}
}

func TestFreeCorruptHeaderPanics(t *testing.T) {
	m, _ := format(4096)
	a := Alloc(m, 4)
	m.Store(a-1, 0) // smash the header
	defer func() {
		if recover() == nil {
			t.Error("Free with corrupt header did not panic")
		}
	}()
	Free(m, a)
}

// Property: after any sequence of allocs and frees, live blocks never
// overlap and InUseWords equals the sum of live block sizes.
func TestQuickAllocFreeInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		m, _ := format(1 << 16)
		type blk struct{ addr, payload, size uint64 }
		var live []blk
		for _, op := range ops {
			if op%3 != 0 && len(live) > 0 { // free
				i := int(op) % len(live)
				Free(m, live[i].addr)
				live = append(live[:i], live[i+1:]...)
				continue
			}
			want := uint64(op%60) + 1
			a := Alloc(m, want)
			if a == 0 {
				continue
			}
			c := m.Load(a - 1)
			live = append(live, blk{addr: a, payload: want, size: uint64(1) << c})
		}
		// InUse matches.
		var sum uint64
		for _, b := range live {
			sum += b.size
		}
		if InUseWords(m) != sum {
			return false
		}
		// No overlap: [addr-1, addr-1+size) ranges disjoint.
		for i := range live {
			for j := i + 1; j < len(live); j++ {
				a, b := live[i], live[j]
				if a.addr-1 < b.addr-1+b.size && b.addr-1 < a.addr-1+a.size {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	m, _ := format(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := Alloc(m, 8)
		Free(m, a)
	}
}
