package palloc

import (
	"testing"
	"testing/quick"
)

// flatMem is a trivial in-memory word array implementing Mem.
type flatMem []uint64

func (m flatMem) Load(addr uint64) uint64   { return m[addr] }
func (m flatMem) Store(addr, val uint64)    { m[addr] = val }
func newMem(words uint64) flatMem           { return make(flatMem, words) }
func format(words uint64) (flatMem, uint64) { m := newMem(words); Format(m, words); return m, words }

// countMem counts logged stores: the PTM interposition logs and flushes
// every one, so this is the allocator's persistence-instruction cost.
type countMem struct {
	flatMem
	stores int
}

func (m *countMem) Store(addr, val uint64) { m.stores++; m.flatMem.Store(addr, val) }

func TestFormatAndIsFormatted(t *testing.T) {
	m := newMem(4096)
	if IsFormatted(m) {
		t.Fatal("fresh memory reports formatted")
	}
	Format(m, 4096)
	if !IsFormatted(m) {
		t.Fatal("formatted heap not detected")
	}
	if IsLegacy(m) {
		t.Fatal("arena heap reports legacy")
	}
	if got := HeapEndWords(m); got != 4096 {
		t.Fatalf("HeapEndWords = %d, want 4096", got)
	}
	if got := InUseWords(m); got != 0 {
		t.Fatalf("InUseWords on fresh heap = %d, want 0", got)
	}
	if mw := MetaWords(m); mw <= dirStart || mw >= 4096 {
		t.Fatalf("MetaWords = %d, want within (%d, 4096)", mw, dirStart)
	}
	if got := UsedWords(m); got != MetaWords(m) {
		t.Fatalf("UsedWords on fresh heap = %d, want MetaWords %d", got, MetaWords(m))
	}
}

func TestFormatPanicsOnTinyHeap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Format with tiny heap did not panic")
		}
	}()
	Format(newMem(dirStart+8), dirStart+8)
}

func TestAllocReturnsWritablePayload(t *testing.T) {
	m, _ := format(4096)
	a := Alloc(m, 10)
	if a == 0 {
		t.Fatal("Alloc failed on fresh heap")
	}
	if a < MetaWords(m) {
		t.Fatalf("payload address %d inside metadata", a)
	}
	for i := uint64(0); i < 10; i++ {
		m.Store(a+i, i+1)
	}
	for i := uint64(0); i < 10; i++ {
		if m.Load(a+i) != i+1 {
			t.Fatalf("payload word %d corrupted", i)
		}
	}
	if got := UsableWords(m, a); got < 10 {
		t.Fatalf("UsableWords = %d, want >= 10", got)
	}
}

// TestFineGrainedClasses pins the headline space win over the legacy
// power-of-two rounding: requests land in 1.25×-spaced classes with no
// per-block header, so a 10-word request costs 10 words (legacy: 16) and a
// 1 KiB value's 129 words cost 160 (legacy: 256).
func TestFineGrainedClasses(t *testing.T) {
	cases := []struct{ want, footprint uint64 }{
		{1, 2}, {2, 2}, {3, 3}, {8, 8}, {9, 10}, {10, 10},
		{17, 20}, {65, 80}, {129, 160}, {257, 320}, {512, 512},
	}
	for _, c := range cases {
		m, _ := format(1 << 16)
		if a := Alloc(m, c.want); a == 0 {
			t.Fatalf("Alloc(%d) failed", c.want)
		}
		if got := InUseWords(m); got != c.footprint {
			t.Errorf("Alloc(%d): InUseWords = %d, want %d", c.want, got, c.footprint)
		}
	}
}

func TestClassSpacing(t *testing.T) {
	for c := 1; c < numClasses2; c++ {
		prev, cur := classSizes[c-1], classSizes[c]
		if cur > prev*5/4 && cur-prev > 2 {
			t.Errorf("class spacing %d → %d exceeds 1.25×", prev, cur)
		}
		if classBlocks[c] > 64 || classPages[c]*pageWords != classSizes[c]*classBlocks[c] {
			t.Errorf("class %d (%d words): bad span geometry (%d blocks, %d pages)",
				c, cur, classBlocks[c], classPages[c])
		}
	}
}

func TestDisjointAllocations(t *testing.T) {
	m, _ := format(1 << 16)
	const n = 100
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = Alloc(m, 5)
		if addrs[i] == 0 {
			t.Fatalf("Alloc %d failed", i)
		}
		for w := uint64(0); w < 5; w++ {
			m.Store(addrs[i]+w, uint64(i)<<32|w)
		}
	}
	for i, a := range addrs {
		for w := uint64(0); w < 5; w++ {
			if got := m.Load(a + w); got != uint64(i)<<32|w {
				t.Fatalf("block %d word %d overwritten: %#x", i, w, got)
			}
		}
	}
}

func TestFreeAndReuse(t *testing.T) {
	m, _ := format(4096)
	a := Alloc(m, 10)
	before := InUseWords(m)
	Free(m, a)
	if got := InUseWords(m); got != before-10 {
		t.Fatalf("InUseWords after Free = %d, want %d", got, before-10)
	}
	b := Alloc(m, 10)
	if b != a {
		t.Fatalf("freed block not reused: got %d, want %d", b, a)
	}
}

func TestClassReuseSeparation(t *testing.T) {
	m, _ := format(1 << 14)
	small := Alloc(m, 1)
	large := Alloc(m, 20)
	Free(m, small)
	Free(m, large)
	if got := Alloc(m, 20); got != large {
		t.Fatalf("20-word alloc returned %d, want reused %d", got, large)
	}
	if got := Alloc(m, 1); got != small {
		t.Fatalf("1-word alloc returned %d, want reused %d", got, small)
	}
}

// TestArenaSeparation pins the per-shard arena property: equal-sized
// requests from different arenas come from disjoint spans, and a block
// freed in one arena is reused by that arena, not its neighbor.
func TestArenaSeparation(t *testing.T) {
	m, _ := format(1 << 14)
	a0 := AllocArena(m, 0, 4)
	a1 := AllocArena(m, 1, 4)
	if a0 == 0 || a1 == 0 {
		t.Fatal("arena allocs failed")
	}
	if p0, p1 := (a0-MetaWords(m))/pageWords, (a1-MetaWords(m))/pageWords; p0 == p1 {
		t.Fatalf("arenas 0 and 1 share a span (page %d)", p0)
	}
	Free(m, a1)
	if got := AllocArena(m, 0, 4); got == a1 {
		t.Fatal("arena 0 reused arena 1's freed block")
	}
	if got := AllocArena(m, 1, 4); got != a1 {
		t.Fatalf("arena 1 did not reuse its freed block: got %d, want %d", got, a1)
	}
}

// TestLargeAlloc covers the dedicated-pages path past the largest class.
func TestLargeAlloc(t *testing.T) {
	m, _ := format(1 << 14)
	a := Alloc(m, 600) // 10 pages
	if a == 0 {
		t.Fatal("large alloc failed")
	}
	if got := InUseWords(m); got != 640 {
		t.Fatalf("InUseWords = %d, want 640 (10 pages)", got)
	}
	if got := UsableWords(m, a); got != 640 {
		t.Fatalf("UsableWords = %d, want 640", got)
	}
	for i := uint64(0); i < 600; i++ {
		m.Store(a+i, i)
	}
	Free(m, a)
	if got := InUseWords(m); got != 0 {
		t.Fatalf("InUseWords after large free = %d, want 0", got)
	}
	if b := Alloc(m, 600); b != a {
		t.Fatalf("freed pages not reused: got %d, want %d", b, a)
	}
}

func TestAllocZeroWords(t *testing.T) {
	m, _ := format(4096)
	a := Alloc(m, 0)
	if a == 0 {
		t.Fatal("Alloc(0) failed")
	}
	if got := UsableWords(m, a); got < 1 {
		t.Fatalf("Alloc(0) usable words = %d, want >= 1", got)
	}
}

func TestOOMReturnsZero(t *testing.T) {
	m, _ := format(dirStart + 80) // one page of heap
	a := Alloc(m, 30)
	if a == 0 {
		t.Fatal("first alloc should fit")
	}
	if b := Alloc(m, 40); b != 0 {
		t.Fatalf("alloc past heap end returned %d, want 0", b)
	}
	Free(m, a)
	if b := Alloc(m, 30); b != a {
		t.Fatalf("alloc after freeing the heap = %d, want reused %d", b, a)
	}
}

func TestHugeAllocReturnsZero(t *testing.T) {
	m, _ := format(4096)
	for _, words := range []uint64{1 << 50, ^uint64(0) - 3, ^uint64(0)} {
		if a := Alloc(m, words); a != 0 {
			t.Fatalf("huge alloc (%d words) returned %d, want 0", words, a)
		}
	}
	if got := InUseWords(m); got != 0 {
		t.Fatalf("failed huge allocs leaked %d words", got)
	}
}

func TestFreeInvalidPanics(t *testing.T) {
	m, _ := format(4096)
	a := Alloc(m, 10)
	for _, addr := range []uint64{0, 1, Base, MetaWords(m) - 1, a + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Free(%d) did not panic", addr)
				}
			}()
			Free(m, addr)
		}()
	}
}

func TestDoubleFreePanics(t *testing.T) {
	m, _ := format(4096)
	a := Alloc(m, 10)
	Free(m, a)
	defer func() {
		if recover() == nil {
			t.Error("double Free did not panic")
		}
	}()
	Free(m, a)
}

// TestAllocStoreBudget asserts the acceptance criterion on the allocation
// path's persistence cost: across fresh fills, full drains and steady-state
// churn, logged stores per Alloc stay ≤ 2 (the legacy path issues 4–6), and
// pure reuse is exactly one store per Alloc and one per Free.
func TestAllocStoreBudget(t *testing.T) {
	m := &countMem{flatMem: newMem(1 << 16)}
	Format(m, 1<<16)
	const n = 1000
	addrs := make([]uint64, n)
	m.stores = 0
	for i := range addrs {
		if addrs[i] = Alloc(m, 4); addrs[i] == 0 {
			t.Fatalf("alloc %d failed", i)
		}
	}
	if m.stores > 2*n {
		t.Errorf("fresh fill: %d stores for %d allocs, budget 2/alloc", m.stores, n)
	}
	m.stores = 0
	for _, a := range addrs {
		Free(m, a)
	}
	if m.stores > 2*n {
		t.Errorf("drain: %d stores for %d frees, budget 2/free", m.stores, n)
	}
	// Steady-state churn inside a warm span: exactly one store each way.
	if a := Alloc(m, 4); a != 0 {
		for i := 0; i < 10; i++ {
			m.stores = 0
			b := Alloc(m, 4)
			if m.stores != 1 {
				t.Fatalf("steady-state Alloc took %d stores, want 1", m.stores)
			}
			m.stores = 0
			Free(m, b)
			if m.stores != 1 {
				t.Fatalf("steady-state Free took %d stores, want 1", m.stores)
			}
		}
		Free(m, a)
	}
}

func TestUsedWordsHighWater(t *testing.T) {
	m, _ := format(1 << 14)
	start := UsedWords(m)
	a := Alloc(m, 100)
	if UsedWords(m) <= start {
		t.Fatal("UsedWords did not advance with the frontier")
	}
	hw := UsedWords(m)
	if a+100 > hw {
		t.Fatalf("allocated block [%d,%d) beyond UsedWords %d", a, a+100, hw)
	}
	Free(m, a)
	if UsedWords(m) != hw {
		t.Fatal("UsedWords is a high-water mark; Free must not lower it")
	}
}

// Legacy-format tests: the package functions dispatch on the magic word, so
// the power-of-two baseline keeps its exact historical behavior.

func TestLegacyFormatAndRounding(t *testing.T) {
	m := newMem(1 << 16)
	FormatLegacy(m, 1<<16)
	if !IsFormatted(m) || !IsLegacy(m) {
		t.Fatal("legacy heap not detected")
	}
	if got := MetaWords(m); got != legacyHeapStart {
		t.Fatalf("legacy MetaWords = %d, want %d", got, legacyHeapStart)
	}
	// 10 payload words + 1 header = 11 → 16 words.
	a := Alloc(m, 10)
	if got := InUseWords(m); got != 16 {
		t.Fatalf("InUseWords = %d, want 16 (power-of-2 rounding)", got)
	}
	if got := UsableWords(m, a); got != 15 {
		t.Fatalf("UsableWords = %d, want 15", got)
	}
	Free(m, a)
	if got := InUseWords(m); got != 0 {
		t.Fatalf("InUseWords after Free = %d, want 0", got)
	}
	if b := Alloc(m, 10); b != a {
		t.Fatalf("legacy free list did not reuse: got %d, want %d", b, a)
	}
}

// TestLegacyOverflowAlloc pins the integer-overflow fix: a 2^64−1-word
// request used to wrap words+1 to 0, land in class 1 and hand out a 2-word
// block that the caller would then overrun.
func TestLegacyOverflowAlloc(t *testing.T) {
	m := newMem(4096)
	FormatLegacy(m, 4096)
	if a := Alloc(m, ^uint64(0)); a != 0 {
		t.Fatalf("Alloc(2^64-1) returned %d, want 0", a)
	}
	if a := Alloc(m, 1<<50); a != 0 {
		t.Fatalf("Alloc(2^50) returned %d, want 0", a)
	}
	if got := InUseWords(m); got != 0 {
		t.Fatalf("failed overflow allocs leaked %d words", got)
	}
}

func TestLegacyFreeInvalidPanics(t *testing.T) {
	m := newMem(4096)
	FormatLegacy(m, 4096)
	for _, addr := range []uint64{0, 1, legacyHeapStart} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Free(%d) did not panic", addr)
				}
			}()
			Free(m, addr)
		}()
	}
}

// Property: after any sequence of allocs and frees, live blocks never
// overlap and InUseWords equals the sum of live block footprints — for both
// formats.
func TestQuickAllocFreeInvariants(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		f := func(ops []uint16) bool {
			m := newMem(1 << 16)
			if legacy {
				FormatLegacy(m, 1<<16)
			} else {
				Format(m, 1<<16)
			}
			type blk struct{ addr, size uint64 }
			var live []blk
			for _, op := range ops {
				if op%3 != 0 && len(live) > 0 { // free
					i := int(op) % len(live)
					Free(m, live[i].addr)
					live = append(live[:i], live[i+1:]...)
					continue
				}
				want := uint64(op%600) + 1
				arena := int(op>>8) % NumArenas
				a := AllocArena(m, arena, want)
				if a == 0 {
					continue
				}
				size := UsableWords(m, a)
				if size < want {
					return false
				}
				live = append(live, blk{addr: a, size: size})
			}
			var sum uint64
			for _, b := range live {
				sum += b.size
				if legacy {
					sum++ // header word
				}
			}
			if InUseWords(m) != sum {
				return false
			}
			for i := range live {
				for j := i + 1; j < len(live); j++ {
					a, b := live[i], live[j]
					if a.addr < b.addr+b.size && b.addr < a.addr+a.size {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("legacy=%v: %v", legacy, err)
		}
	}
}

func BenchmarkAllocFree(b *testing.B) {
	m, _ := format(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := Alloc(m, 8)
		Free(m, a)
	}
}

func BenchmarkAllocFreeLegacy(b *testing.B) {
	m := newMem(1 << 20)
	FormatLegacy(m, 1<<20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := Alloc(m, 8)
		Free(m, a)
	}
}
