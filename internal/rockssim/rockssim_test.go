package rockssim

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
)

func newDB(t testing.TB, mode pmem.Mode, words uint64) (*DB, *pmem.Pool) {
	t.Helper()
	pool := pmem.New(pmem.Config{Mode: mode, RegionWords: words, Regions: 3})
	return Open(pool, Options{Threads: 4}), pool
}

func TestPutGetDelete(t *testing.T) {
	db, _ := newDB(t, pmem.Direct, 1<<16)
	if _, ok := db.Get([]byte("x")); ok {
		t.Fatal("Get on empty DB found a key")
	}
	db.Put([]byte("x"), []byte("1"))
	db.Put([]byte("y"), []byte("2"))
	if v, ok := db.Get([]byte("x")); !ok || string(v) != "1" {
		t.Fatalf("Get(x) = %q,%v", v, ok)
	}
	db.Put([]byte("x"), []byte("11"))
	if v, _ := db.Get([]byte("x")); string(v) != "11" {
		t.Fatalf("overwrite failed: %q", v)
	}
	if !db.Delete([]byte("x")) || db.Delete([]byte("x")) {
		t.Fatal("Delete semantics broken")
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d, want 1", db.Len())
	}
}

func TestAgainstModel(t *testing.T) {
	db, _ := newDB(t, pmem.Direct, 1<<20)
	model := make(map[string]string)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("k%03d", rng.Intn(300))
		switch rng.Intn(3) {
		case 0:
			v := fmt.Sprintf("v%d", i)
			db.Put([]byte(k), []byte(v))
			model[k] = v
		case 1:
			got := db.Delete([]byte(k))
			_, want := model[k]
			if got != want {
				t.Fatalf("Delete(%s) = %v, want %v", k, got, want)
			}
			delete(model, k)
		case 2:
			got, ok := db.Get([]byte(k))
			want, wok := model[k]
			if ok != wok || (ok && string(got) != want) {
				t.Fatalf("Get(%s) = %q,%v want %q,%v", k, got, ok, want, wok)
			}
		}
	}
	if db.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", db.Len(), len(model))
	}
}

func TestWALSyncIssuesFlushes(t *testing.T) {
	db, pool := newDB(t, pmem.Direct, 1<<16)
	before := pool.Stats()
	db.Put([]byte("key-000000000000"), make([]byte, 100))
	d := pool.Stats().Sub(before)
	// Journal copy + WAL record, each flushed and fenced.
	if d.PFences < 2 {
		t.Fatalf("put issued %d fences, want >= 2 (journal + WAL)", d.PFences)
	}
	if d.PWBs < 4 {
		t.Fatalf("put issued %d pwbs, want >= 4 (record spans lines ×2 copies)", d.PWBs)
	}
}

func TestCheckpointAndRecovery(t *testing.T) {
	pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 10, Regions: 3})
	db := Open(pool, Options{})
	const n = 200 // small WAL forces a checkpoint partway through
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if db.Checkpoints() == 0 {
		t.Fatal("no checkpoint occurred with a small WAL")
	}
	pool.Crash(pmem.CrashConservative, nil)
	db2 := Open(pool, Options{})
	if db2.Len() != n {
		t.Fatalf("recovered %d keys, want %d", db2.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := db2.Get([]byte(fmt.Sprintf("k%04d", i)))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d lost: %q,%v", i, v, ok)
		}
	}
}

func TestSystematicCrashPoints(t *testing.T) {
	const n = 25
	for fail := int64(10); ; fail += 97 {
		pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 13, Regions: 3})
		completed, crashed := 0, false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != pmem.ErrSimulatedPowerFailure {
						panic(r)
					}
					crashed = true
				}
				pool.InjectFailure(-1)
			}()
			db := Open(pool, Options{})
			pool.InjectFailure(fail)
			for i := 0; i < n; i++ {
				db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte{byte(i)})
				completed++
			}
		}()
		if !crashed {
			break
		}
		pool.Crash(pmem.CrashConservative, nil)
		db := Open(pool, Options{})
		for i := 0; i < completed; i++ {
			v, ok := db.Get([]byte(fmt.Sprintf("k%02d", i)))
			if !ok || v[0] != byte(i) {
				t.Fatalf("fail=%d: completed Put %d lost", fail, i)
			}
		}
	}
}

func TestKeysSorted(t *testing.T) {
	db, _ := newDB(t, pmem.Direct, 1<<16)
	for _, k := range []string{"c", "a", "b"} {
		db.Put([]byte(k), []byte("x"))
	}
	keys := db.Keys()
	if len(keys) != 3 || string(keys[0]) != "a" || string(keys[2]) != "c" {
		t.Fatalf("Keys = %q", keys)
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	db, _ := newDB(t, pmem.Direct, 1<<20)
	db.Put([]byte("hot"), []byte("v0"))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				db.Put([]byte("hot"), []byte(fmt.Sprintf("v%d", i)))
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if v, ok := db.Get([]byte("hot")); !ok || v[0] != 'v' {
					t.Errorf("bad read %q,%v", v, ok)
					return
				}
			}
		}()
	}
	go func() { wg.Wait() }()
	// Let readers finish, then stop the writer.
	for i := 0; i < 4; i++ {
	}
	close(stop)
	wg.Wait()
	if db.VolatileBytes() == 0 {
		t.Fatal("VolatileBytes = 0")
	}
}
