package rockssim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/pmem"
)

// TestRecoverIsIdempotent recovers the same crashed pool repeatedly:
// recovery of an already-recovered image must reproduce the same logical
// state and issue exactly the same persistence work each time (only the era
// in the commit word advances), so a crashed recovery — including its
// WAL-replay checkpoint flush — can always be re-run from the top (the
// nested-failure model).
func TestRecoverIsIdempotent(t *testing.T) {
	pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 3})
	crashed := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if r != pmem.ErrSimulatedPowerFailure {
					panic(r)
				}
				crashed = true
			}
			pool.InjectFailure(-1)
		}()
		db := Open(pool, Options{})
		pool.InjectFailure(200)
		for i := 0; i < 25; i++ {
			db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte{byte(i)})
		}
	}()
	if !crashed {
		t.Fatal("failure point never fired")
	}
	pool.Crash(pmem.CrashConservative, nil)
	var stats [3]pmem.StatsSnapshot
	var states [3][]string
	for i := range stats {
		pool.ResetStats()
		db := Open(pool, Options{})
		stats[i] = pool.Stats()
		for _, k := range db.Keys() {
			v, _ := db.Get(k)
			states[i] = append(states[i], fmt.Sprintf("%s=%x", k, v))
		}
		pool.Crash(pmem.CrashConservative, nil)
	}
	if !reflect.DeepEqual(states[1], states[0]) || !reflect.DeepEqual(states[2], states[1]) {
		t.Fatalf("recovered state drifted across recoveries: %v / %v / %v",
			states[0], states[1], states[2])
	}
	if stats[1] != stats[2] {
		t.Fatalf("recovery work drifted: %+v vs %+v", stats[1], stats[2])
	}
}
