// Package rockssim is the RocksDB stand-in for the paper's Figures 7–9.
//
// The paper runs RocksDB 6.5 db_bench with -sync on Optane formatted as
// ext4 with journalling: every write is a WAL append followed by an fsync
// through a journalling filesystem. Since this repository cannot ship
// RocksDB, rockssim reproduces the parts of that stack the comparison
// actually measures:
//
//   - a volatile memtable (hash index) in front of persistent state — lost
//     on crash and rebuilt from the WAL + checkpoint (RocksDB's recovery);
//   - a write-ahead log in persistent memory, with every record flushed and
//     fenced before the write returns (-sync), plus a journal copy of each
//     record modelling ext4's data journalling write amplification;
//   - a checkpoint ("memtable flush"): when the WAL fills, the whole table
//     is serialized to the checkpoint area and the WAL truncated;
//   - a single writer lock with concurrent readers (RocksDB serializes WAL
//     writers; readers block only during memtable swaps — modelled with an
//     RWMutex, which also reproduces the read-while-writing interference
//     the paper exploits in Fig. 7).
//
// The shape this preserves: per write, rockssim issues strictly more pwbs
// and fences than RedoDB (journal amplification, no flush aggregation), and
// writes block readers — which is what Figs. 7 and 9 plot.
package rockssim

import (
	"bytes"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/pmem"
)

// Region indices within the pool.
const (
	regionCheckpoint = 0
	regionWAL        = 1
	regionJournal    = 2
)

// Header slots. The magic is CRC-protected (write-once pair in slots 0–1)
// so a bit-rotted magic is reported as corruption instead of silently
// reformatting the pool. The commit word packs the WAL era and the
// checkpoint length into a single slot: header slots persist with 8-byte
// atomicity, so a one-word commit can never be observed torn — the
// era-and-length pair advances atomically even under adversarial eviction.
const (
	slotMagic    = 0
	slotMagicCRC = 1 // checksum tag of slotMagic (HeaderStoreCRC pair)
	slotCommit   = 2 // era(40) | checkpoint length in words (24)
)

const magic = 0x726f636b7373696d // "rockssim"

// ckptLenBits is the width of the checkpoint-length field in the commit
// word; checkpoint regions must be smaller than 1<<ckptLenBits words.
const ckptLenBits = 24

func packCommit(era, ckptLen uint64) uint64 { return era<<ckptLenBits | ckptLen }

func unpackCommit(v uint64) (era, ckptLen uint64) {
	return v >> ckptLenBits, v & (1<<ckptLenBits - 1)
}

// DB is the simulated RocksDB instance.
type DB struct {
	opts  Options
	mu    sync.RWMutex
	pool  *pmem.Pool
	ckpt  *pmem.Region
	wal   *pmem.Region
	jrnl  *pmem.Region
	table map[string][]byte
	walAt uint64 // next free WAL word
	seq   uint64

	// Stats mirrored from RedoDB for Fig. 8.
	checkpoints uint64
}

// Options parameterizes Open.
type Options struct {
	// Threads is accepted for API symmetry with RedoDB; the engine is
	// internally a single-writer design.
	Threads int
	// SyncLatency models the device barrier of an fsync through a
	// journalling filesystem on persistent memory (~4µs on Optane ext4
	// per published measurements), paid once per -sync write on top of
	// the page flushes. Zero disables it; tests use zero.
	SyncLatency time.Duration
}

// Open creates or recovers a DB over pool (3 regions: checkpoint, WAL,
// journal). On a pool whose persistent state fails an integrity check it
// panics with a typed *pmem.CorruptionError; it never reformats a pool that
// carries evidence of committed data.
func Open(pool *pmem.Pool, opts Options) *DB {
	if pool.Regions() != 3 {
		panic("rockssim: pool must have 3 regions (checkpoint, WAL, journal)")
	}
	if pool.RegionWords() >= 1<<ckptLenBits {
		panic("rockssim: region larger than the commit word's length field")
	}
	db := &DB{
		opts:  opts,
		pool:  pool,
		ckpt:  pool.Region(regionCheckpoint),
		wal:   pool.Region(regionWAL),
		jrnl:  pool.Region(regionJournal),
		table: make(map[string][]byte),
	}
	pool.TraceEvent(obs.KindRecoveryBegin, -1, -1, 0, 0, 0)
	m, err := pool.PersistedHeaderCRC(slotMagic)
	if err != nil {
		// A torn magic pair can only arise while formatting (the pair is
		// written once, before the first commit): with committed data it
		// is medium corruption; without, an interrupted format.
		if c := pool.PersistedHeader(slotCommit); c != 0 {
			panic(pmem.Corruptf("rockssim", "magic header fails CRC with committed state %#x", c))
		}
		m = 0
	}
	if m == magic {
		db.recover()
	} else if m != 0 {
		panic(pmem.Corruptf("rockssim", "bad magic %#x", m))
	} else {
		// Format. The magic pair is made durable before the first commit
		// word so recovery can always tell "never formatted" from
		// "formatted, nothing committed yet".
		pool.HeaderStoreCRC(slotMagic, magic)
		pool.PWBHeader(slotMagic)
		pool.PWBHeader(slotMagicCRC)
		pool.PSync()
		// The magic pair must be durable — and must have been stored
		// value-before-tag — before the commit word can exist.
		pool.TraceEvent(obs.KindHeaderPublish, -1, -1, slotMagic, 2, 0)
		pool.HeaderStore(slotCommit, packCommit(1, 0))
		pool.PWBHeader(slotCommit)
		pool.PSync()
		pool.TraceEvent(obs.KindHeaderPublish, -1, -1, slotCommit, 1, 0)
		db.seq = 1
	}
	pool.TraceEvent(obs.KindRecoveryEnd, -1, -1, 0, 0, 0)
	return db
}

// WAL record: [seq, op, klen, vlen, crc, key..., val...], word-packed
// strings, op 1 = put, 2 = delete. A record is valid if its seq matches the
// current era (records of older eras are logically truncated leftovers) and
// its trailing fields match crc — the checksum is what lets recovery detect
// a record torn at word granularity by an adversarial crash and truncate
// the WAL there instead of replaying garbage.

func packWords(b []byte) []uint64 {
	out := make([]uint64, (len(b)+7)/8)
	for i, c := range b {
		out[i/8] |= uint64(c) << (8 * (i % 8))
	}
	return out
}

func unpackWords(ws []uint64, n uint64) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(ws[i/8] >> (8 * (i % 8)))
	}
	return b
}

// pageWords is the filesystem block size in words: a -sync write through a
// journalling filesystem commits whole 4 KiB pages (journal descriptor +
// data block), not individual cache lines. This write amplification is the
// dominant flush cost the paper measures against RedoDB in Fig. 9.
const pageWords = 4096 / 8

// appendWAL writes one record with -sync semantics: the journal page(s) are
// flushed and fenced, then the in-place WAL page(s) (ext4 data journalling).
func (db *DB) appendWAL(op uint64, key, val []byte) {
	kw, vw := packWords(key), packWords(val)
	need := 5 + uint64(len(kw)) + uint64(len(vw))
	if db.walAt+need > db.wal.Words() {
		db.checkpoint()
	}
	at := db.walAt
	firstPage := at / pageWords * pageWords
	lastEnd := at + need
	if lastEnd > db.wal.Words() {
		lastEnd = db.wal.Words()
	}
	pagesLen := (lastEnd - firstPage + pageWords - 1) / pageWords * pageWords
	if firstPage+pagesLen > db.wal.Words() {
		pagesLen = db.wal.Words() - firstPage
	}
	crc := recordCRC(db.seq, op, uint64(len(key)), uint64(len(val)), kw, vw)
	write := func(r *pmem.Region) {
		w := at
		r.Store(w, db.seq)
		r.Store(w+1, op)
		r.Store(w+2, uint64(len(key)))
		r.Store(w+3, uint64(len(val)))
		r.Store(w+4, crc)
		w += 5
		for _, x := range kw {
			r.Store(w, x)
			w++
		}
		for _, x := range vw {
			r.Store(w, x)
			w++
		}
		r.FlushRange(firstPage, pagesLen)
		r.PFence()
		// A -sync append promises the whole page span durable on return.
		db.pool.TraceEvent(obs.KindPublish, -1, r.Index(), firstPage, pagesLen, obs.PubWAL)
	}
	write(db.jrnl) // journal commit first…
	write(db.wal)  // …then the in-place WAL record
	db.walAt += need
	if db.opts.SyncLatency > 0 {
		for start := time.Now(); time.Since(start) < db.opts.SyncLatency; {
		}
	}
}

// recordCRC checksums every field of a WAL record except the crc word.
func recordCRC(seq, op, klen, vlen uint64, kw, vw []uint64) uint64 {
	fields := make([]uint64, 0, 4+len(kw)+len(vw))
	fields = append(fields, seq, op, klen, vlen)
	fields = append(fields, kw...)
	fields = append(fields, vw...)
	return pmem.ChecksumWords(fields...)
}

// checkpoint serializes the whole table into the checkpoint region and
// truncates the WAL (RocksDB memtable flush + WAL rotation). The commit is
// a single packed header word (era+1, length): until it is durable the old
// checkpoint and the old era's WAL remain the recovery source, so a crash
// anywhere inside checkpoint is invisible; once it is durable the new
// checkpoint alone reconstructs the table. Both orderings recover the same
// committed contents — there is no window where either image is trusted
// while incomplete.
func (db *DB) checkpoint() {
	keys := make([]string, 0, len(db.table))
	for k := range db.table {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w := uint64(1)
	db.ckpt.Store(0, uint64(len(keys)))
	for _, k := range keys {
		v := db.table[k]
		kw, vw := packWords([]byte(k)), packWords(v)
		if w+2+uint64(len(kw))+uint64(len(vw)) > db.ckpt.Words() {
			panic("rockssim: checkpoint region exhausted")
		}
		db.ckpt.Store(w, uint64(len(k)))
		db.ckpt.Store(w+1, uint64(len(v)))
		w += 2
		for _, x := range kw {
			db.ckpt.Store(w, x)
			w++
		}
		for _, x := range vw {
			db.ckpt.Store(w, x)
			w++
		}
	}
	db.ckpt.FlushRange(0, w)
	db.ckpt.PFence()
	// The checkpoint image [0, w) — w is data-dependent — must be durable
	// before the commit word names it.
	db.pool.TraceEvent(obs.KindPublish, -1, db.ckpt.Index(), 0, w, obs.PubHeap)
	// New WAL era: old records are invalidated by the era bump, committed
	// in the same 8-byte atomic word as the checkpoint length.
	db.seq++
	db.pool.HeaderStore(slotCommit, packCommit(db.seq, w))
	db.pool.PWBHeader(slotCommit)
	db.pool.PSync()
	db.pool.TraceEvent(obs.KindHeaderPublish, -1, -1, slotCommit, 1, 0)
	db.walAt = 0
	db.checkpoints++
}

// recover rebuilds the memtable from the checkpoint plus valid WAL records,
// then flushes the recovered table as a fresh checkpoint (RocksDB's flush-
// after-WAL-replay), which logically truncates any torn WAL tail: replay
// stops at the first record whose era or checksum fails, and the era bump
// of the recovery checkpoint invalidates everything after the durable
// prefix. A second crash anywhere inside recover re-enters it with the same
// committed state (the replay is read-only and the checkpoint publish is a
// single word), so recovery is idempotent and re-entrant.
func (db *DB) recover() {
	era, ckptLen := unpackCommit(db.pool.PersistedHeader(slotCommit))
	if era == 0 {
		// Formatting was interrupted after the magic pair became durable
		// but before the first commit word did; no write has ever
		// committed, so (re)publishing the empty era is safe.
		db.seq = 1
		db.pool.HeaderStore(slotCommit, packCommit(1, 0))
		db.pool.PWBHeader(slotCommit)
		db.pool.PSync()
		db.pool.TraceEvent(obs.KindHeaderPublish, -1, -1, slotCommit, 1, 0)
		return
	}
	db.seq = era
	db.loadCheckpoint(ckptLen)
	// Replay the WAL of the current era up to the first invalid record.
	db.pool.TraceEvent(obs.KindReplayBegin, -1, regionWAL, 0, 0, era)
	at := uint64(0)
	for at+5 <= db.wal.Words() {
		if db.wal.Load(at) != db.seq {
			break
		}
		op := db.wal.Load(at + 1)
		kl, vl := db.wal.Load(at+2), db.wal.Load(at+3)
		crc := db.wal.Load(at + 4)
		if op != 1 && op != 2 || kl > db.wal.Words()*8 || vl > db.wal.Words()*8 {
			break
		}
		need := 5 + (kl+7)/8 + (vl+7)/8
		if at+need > db.wal.Words() {
			break
		}
		w := at + 5
		kw := make([]uint64, (kl+7)/8)
		for j := range kw {
			kw[j] = db.wal.Load(w)
			w++
		}
		vw := make([]uint64, (vl+7)/8)
		for j := range vw {
			vw[j] = db.wal.Load(w)
			w++
		}
		if crc != recordCRC(db.seq, op, kl, vl, kw, vw) {
			break // torn record: truncate the WAL here
		}
		key := string(unpackWords(kw, kl))
		if op == 1 {
			db.table[key] = unpackWords(vw, vl)
		} else {
			delete(db.table, key)
		}
		at += need
	}
	db.pool.TraceEvent(obs.KindReplayEnd, -1, regionWAL, 0, at, era)
	db.checkpoint()
	db.checkpoints-- // recovery flushes don't count as workload checkpoints
}

// loadCheckpoint parses the committed checkpoint image. The commit word
// vouches only for [0, ckptLen); any internal inconsistency — counts or
// lengths pointing outside the committed span — means the medium corrupted
// committed state, which recovery must report, not replay.
func (db *DB) loadCheckpoint(ckptLen uint64) {
	if ckptLen == 0 {
		return
	}
	if ckptLen > db.ckpt.Words() {
		panic(pmem.Corruptf("rockssim", "checkpoint length %d exceeds region", ckptLen))
	}
	n := db.ckpt.Load(0)
	w := uint64(1)
	for i := uint64(0); i < n; i++ {
		if w+2 > ckptLen {
			panic(pmem.Corruptf("rockssim", "checkpoint entry %d/%d outside committed span", i, n))
		}
		kl, vl := db.ckpt.Load(w), db.ckpt.Load(w+1)
		w += 2
		kwn, vwn := (kl+7)/8, (vl+7)/8
		if kl > ckptLen*8 || vl > ckptLen*8 || w+kwn+vwn > ckptLen {
			panic(pmem.Corruptf("rockssim", "checkpoint entry %d/%d has implausible lengths (%d,%d)", i, n, kl, vl))
		}
		kw := make([]uint64, kwn)
		for j := range kw {
			kw[j] = db.ckpt.Load(w)
			w++
		}
		vw := make([]uint64, vwn)
		for j := range vw {
			vw[j] = db.ckpt.Load(w)
			w++
		}
		db.table[string(unpackWords(kw, kl))] = unpackWords(vw, vl)
	}
}

// Name labels the engine in benchmark output.
func (db *DB) Name() string { return "RocksDB-sim" }

// Put stores (key, value) durably (-sync semantics).
func (db *DB) Put(key, value []byte) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.appendWAL(1, key, value)
	db.table[string(key)] = append([]byte(nil), value...)
}

// Delete removes key durably.
func (db *DB) Delete(key []byte) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.table[string(key)]; !ok {
		return false
	}
	db.appendWAL(2, key, nil)
	delete(db.table, string(key))
	return true
}

// Get returns the value under key.
func (db *DB) Get(key []byte) ([]byte, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, ok := db.table[string(key)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Len reports the number of keys.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.table)
}

// Keys returns all keys in ascending order (iterator snapshot).
func (db *DB) Keys() [][]byte {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([][]byte, 0, len(db.table))
	for k := range db.table {
		out = append(out, []byte(k))
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i], out[j]) < 0 })
	return out
}

// Checkpoints reports how many memtable flushes occurred (for tests).
func (db *DB) Checkpoints() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.checkpoints
}

// UsedNVMBytes reports the persistent bytes actually holding data: the
// committed checkpoint, the live WAL and its journal copy (Fig. 8's NVMM
// usage for the RocksDB side).
func (db *DB) UsedNVMBytes() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ckptLen := unpackCommit(db.pool.HeaderLoad(slotCommit))
	return (ckptLen + 2*db.walAt) * 8
}

// walTail scans the WAL's persisted image and returns the word offset just
// past the last valid record of era (the same walk recovery performs).
func walTail(pool *pmem.Pool, era uint64) uint64 {
	wal := pool.Region(regionWAL)
	at := uint64(0)
	for at+5 <= wal.Words() {
		if wal.PersistedLoad(at) != era {
			break
		}
		op := wal.PersistedLoad(at + 1)
		kl, vl := wal.PersistedLoad(at+2), wal.PersistedLoad(at+3)
		if op != 1 && op != 2 || kl > wal.Words()*8 || vl > wal.Words()*8 {
			break
		}
		need := 5 + (kl+7)/8 + (vl+7)/8
		if at+need > wal.Words() {
			break
		}
		fields := make([]uint64, 0, need-1)
		fields = append(fields, era, op, kl, vl)
		for w := at + 5; w < at+need; w++ {
			fields = append(fields, wal.PersistedLoad(w))
		}
		if wal.PersistedLoad(at+4) != pmem.ChecksumWords(fields...) {
			break
		}
		at += need
	}
	return at
}

// StaleRanges reports the spans of the pool that committed state does not
// reach: the whole journal copy (never read at recovery), the checkpoint
// region past the committed length, and the WAL past the last valid record
// of the committed era. The corruption sweep flips bits there and recovery
// must stay correct.
func StaleRanges(pool *pmem.Pool) []pmem.Range {
	ranges := []pmem.Range{pool.WholeRegion(regionJournal)}
	era, ckptLen := unpackCommit(pool.PersistedHeader(slotCommit))
	if words := pool.RegionWords(); ckptLen < words {
		ranges = append(ranges, pmem.Range{Region: regionCheckpoint, Start: ckptLen, Words: words - ckptLen})
	}
	if tail, words := walTail(pool, era), pool.RegionWords(); tail < words {
		ranges = append(ranges, pmem.Range{Region: regionWAL, Start: tail, Words: words - tail})
	}
	return ranges
}

// VolatileBytes estimates the memtable's volatile footprint.
func (db *DB) VolatileBytes() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var n uint64
	for k, v := range db.table {
		n += uint64(len(k)) + uint64(len(v)) + 64 // map entry overhead
	}
	return n
}
