// Package rockssim is the RocksDB stand-in for the paper's Figures 7–9.
//
// The paper runs RocksDB 6.5 db_bench with -sync on Optane formatted as
// ext4 with journalling: every write is a WAL append followed by an fsync
// through a journalling filesystem. Since this repository cannot ship
// RocksDB, rockssim reproduces the parts of that stack the comparison
// actually measures:
//
//   - a volatile memtable (hash index) in front of persistent state — lost
//     on crash and rebuilt from the WAL + checkpoint (RocksDB's recovery);
//   - a write-ahead log in persistent memory, with every record flushed and
//     fenced before the write returns (-sync), plus a journal copy of each
//     record modelling ext4's data journalling write amplification;
//   - a checkpoint ("memtable flush"): when the WAL fills, the whole table
//     is serialized to the checkpoint area and the WAL truncated;
//   - a single writer lock with concurrent readers (RocksDB serializes WAL
//     writers; readers block only during memtable swaps — modelled with an
//     RWMutex, which also reproduces the read-while-writing interference
//     the paper exploits in Fig. 7).
//
// The shape this preserves: per write, rockssim issues strictly more pwbs
// and fences than RedoDB (journal amplification, no flush aggregation), and
// writes block readers — which is what Figs. 7 and 9 plot.
package rockssim

import (
	"bytes"
	"sort"
	"sync"
	"time"

	"repro/internal/pmem"
)

// Region indices within the pool.
const (
	regionCheckpoint = 0
	regionWAL        = 1
	regionJournal    = 2
)

// Header slots.
const (
	slotMagic      = 0
	slotCheckpoint = 1 // committed checkpoint length in words
	slotWALSeq     = 2 // era counter for WAL records
)

const magic = 0x726f636b7373696d // "rockssim"

// DB is the simulated RocksDB instance.
type DB struct {
	opts  Options
	mu    sync.RWMutex
	pool  *pmem.Pool
	ckpt  *pmem.Region
	wal   *pmem.Region
	jrnl  *pmem.Region
	table map[string][]byte
	walAt uint64 // next free WAL word
	seq   uint64

	// Stats mirrored from RedoDB for Fig. 8.
	checkpoints uint64
}

// Options parameterizes Open.
type Options struct {
	// Threads is accepted for API symmetry with RedoDB; the engine is
	// internally a single-writer design.
	Threads int
	// SyncLatency models the device barrier of an fsync through a
	// journalling filesystem on persistent memory (~4µs on Optane ext4
	// per published measurements), paid once per -sync write on top of
	// the page flushes. Zero disables it; tests use zero.
	SyncLatency time.Duration
}

// Open creates or recovers a DB over pool (3 regions: checkpoint, WAL,
// journal).
func Open(pool *pmem.Pool, opts Options) *DB {
	if pool.Regions() != 3 {
		panic("rockssim: pool must have 3 regions (checkpoint, WAL, journal)")
	}
	db := &DB{
		opts:  opts,
		pool:  pool,
		ckpt:  pool.Region(regionCheckpoint),
		wal:   pool.Region(regionWAL),
		jrnl:  pool.Region(regionJournal),
		table: make(map[string][]byte),
	}
	if pool.PersistedHeader(slotMagic) == magic {
		db.recover()
	} else {
		pool.HeaderStore(slotMagic, magic)
		pool.HeaderStore(slotCheckpoint, 0)
		pool.HeaderStore(slotWALSeq, 1)
		pool.PWBHeader(slotMagic)
		pool.PWBHeader(slotCheckpoint)
		pool.PWBHeader(slotWALSeq)
		pool.PSync()
		db.seq = 1
	}
	return db
}

// WAL record: [seq, op, klen, vlen, key..., val...], word-packed strings,
// op 1 = put, 2 = delete. A record is valid if its seq matches the current
// era (records of older eras are pre-truncation leftovers).

func packWords(b []byte) []uint64 {
	out := make([]uint64, (len(b)+7)/8)
	for i, c := range b {
		out[i/8] |= uint64(c) << (8 * (i % 8))
	}
	return out
}

func unpackWords(ws []uint64, n uint64) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(ws[i/8] >> (8 * (i % 8)))
	}
	return b
}

// pageWords is the filesystem block size in words: a -sync write through a
// journalling filesystem commits whole 4 KiB pages (journal descriptor +
// data block), not individual cache lines. This write amplification is the
// dominant flush cost the paper measures against RedoDB in Fig. 9.
const pageWords = 4096 / 8

// appendWAL writes one record with -sync semantics: the journal page(s) are
// flushed and fenced, then the in-place WAL page(s) (ext4 data journalling).
func (db *DB) appendWAL(op uint64, key, val []byte) {
	kw, vw := packWords(key), packWords(val)
	need := 4 + uint64(len(kw)) + uint64(len(vw))
	if db.walAt+need > db.wal.Words() {
		db.checkpoint()
	}
	at := db.walAt
	firstPage := at / pageWords * pageWords
	lastEnd := at + need
	if lastEnd > db.wal.Words() {
		lastEnd = db.wal.Words()
	}
	pagesLen := (lastEnd - firstPage + pageWords - 1) / pageWords * pageWords
	if firstPage+pagesLen > db.wal.Words() {
		pagesLen = db.wal.Words() - firstPage
	}
	write := func(r *pmem.Region) {
		w := at
		r.Store(w, db.seq)
		r.Store(w+1, op)
		r.Store(w+2, uint64(len(key)))
		r.Store(w+3, uint64(len(val)))
		w += 4
		for _, x := range kw {
			r.Store(w, x)
			w++
		}
		for _, x := range vw {
			r.Store(w, x)
			w++
		}
		r.FlushRange(firstPage, pagesLen)
		r.PFence()
	}
	write(db.jrnl) // journal commit first…
	write(db.wal)  // …then the in-place WAL record
	db.walAt += need
	if db.opts.SyncLatency > 0 {
		for start := time.Now(); time.Since(start) < db.opts.SyncLatency; {
		}
	}
}

// checkpoint serializes the whole table into the checkpoint region and
// truncates the WAL (RocksDB memtable flush + WAL rotation).
func (db *DB) checkpoint() {
	keys := make([]string, 0, len(db.table))
	for k := range db.table {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w := uint64(1)
	db.ckpt.Store(0, uint64(len(keys)))
	for _, k := range keys {
		v := db.table[k]
		kw, vw := packWords([]byte(k)), packWords(v)
		if w+2+uint64(len(kw))+uint64(len(vw)) > db.ckpt.Words() {
			panic("rockssim: checkpoint region exhausted")
		}
		db.ckpt.Store(w, uint64(len(k)))
		db.ckpt.Store(w+1, uint64(len(v)))
		w += 2
		for _, x := range kw {
			db.ckpt.Store(w, x)
			w++
		}
		for _, x := range vw {
			db.ckpt.Store(w, x)
			w++
		}
	}
	db.ckpt.FlushRange(0, w)
	db.ckpt.PFence()
	db.pool.HeaderStore(slotCheckpoint, w)
	db.pool.PWBHeader(slotCheckpoint)
	// New WAL era: old records are invalidated by the seq bump.
	db.seq++
	db.pool.HeaderStore(slotWALSeq, db.seq)
	db.pool.PWBHeader(slotWALSeq)
	db.pool.PSync()
	db.walAt = 0
	db.checkpoints++
}

// recover rebuilds the memtable from the checkpoint plus valid WAL records.
func (db *DB) recover() {
	db.seq = db.pool.HeaderLoad(slotWALSeq)
	ckptLen := db.pool.HeaderLoad(slotCheckpoint)
	if ckptLen > 0 {
		n := db.ckpt.Load(0)
		w := uint64(1)
		for i := uint64(0); i < n; i++ {
			kl, vl := db.ckpt.Load(w), db.ckpt.Load(w+1)
			w += 2
			kw := make([]uint64, (kl+7)/8)
			for j := range kw {
				kw[j] = db.ckpt.Load(w)
				w++
			}
			vw := make([]uint64, (vl+7)/8)
			for j := range vw {
				vw[j] = db.ckpt.Load(w)
				w++
			}
			db.table[string(unpackWords(kw, kl))] = unpackWords(vw, vl)
		}
	}
	// Replay the WAL of the current era.
	at := uint64(0)
	for at+4 <= db.wal.Words() {
		if db.wal.Load(at) != db.seq {
			break
		}
		op := db.wal.Load(at + 1)
		kl, vl := db.wal.Load(at+2), db.wal.Load(at+3)
		need := 4 + (kl+7)/8 + (vl+7)/8
		if op != 1 && op != 2 || at+need > db.wal.Words() {
			break
		}
		w := at + 4
		kw := make([]uint64, (kl+7)/8)
		for j := range kw {
			kw[j] = db.wal.Load(w)
			w++
		}
		vw := make([]uint64, (vl+7)/8)
		for j := range vw {
			vw[j] = db.wal.Load(w)
			w++
		}
		key := string(unpackWords(kw, kl))
		if op == 1 {
			db.table[key] = unpackWords(vw, vl)
		} else {
			delete(db.table, key)
		}
		at += need
	}
	db.walAt = at
}

// Name labels the engine in benchmark output.
func (db *DB) Name() string { return "RocksDB-sim" }

// Put stores (key, value) durably (-sync semantics).
func (db *DB) Put(key, value []byte) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.appendWAL(1, key, value)
	db.table[string(key)] = append([]byte(nil), value...)
}

// Delete removes key durably.
func (db *DB) Delete(key []byte) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.table[string(key)]; !ok {
		return false
	}
	db.appendWAL(2, key, nil)
	delete(db.table, string(key))
	return true
}

// Get returns the value under key.
func (db *DB) Get(key []byte) ([]byte, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, ok := db.table[string(key)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Len reports the number of keys.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.table)
}

// Keys returns all keys in ascending order (iterator snapshot).
func (db *DB) Keys() [][]byte {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([][]byte, 0, len(db.table))
	for k := range db.table {
		out = append(out, []byte(k))
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i], out[j]) < 0 })
	return out
}

// Checkpoints reports how many memtable flushes occurred (for tests).
func (db *DB) Checkpoints() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.checkpoints
}

// UsedNVMBytes reports the persistent bytes actually holding data: the
// committed checkpoint, the live WAL and its journal copy (Fig. 8's NVMM
// usage for the RocksDB side).
func (db *DB) UsedNVMBytes() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return (db.pool.HeaderLoad(slotCheckpoint) + 2*db.walAt) * 8
}

// VolatileBytes estimates the memtable's volatile footprint.
func (db *DB) VolatileBytes() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var n uint64
	for k, v := range db.table {
		n += uint64(len(k)) + uint64(len(v)) + 64 // map entry overhead
	}
	return n
}
