// Package detect implements per-operation detectable recoverability (in the
// sense of Memento, PLDI 2023): a persistent request-dedup table that lets a
// client that crashed — or timed out and is retrying — ask "did my operation
// N commit?" and get a correct answer after any number of power failures.
//
// The table is a sequential data structure over ptm.Mem, so it is updated
// INSIDE the same durable transaction as the operation it receipts: the
// engine's redo-log commit is the single atomic commit point, and a crash
// either persists both the operation and its receipt or neither. That
// one-commit-point coupling is the whole trick — a separate "receipt log"
// written before or after the operation would reintroduce the duplicated-
// write window this package exists to close.
//
// Layout (word offsets inside the transactional heap):
//
//	root slot -> bucket array of nBuckets chain heads
//	client record: [id, next, ack, ackCnt, cap, pad, ring...]
//	ring slot (2 words): [seq, digest]
//
// Each client is identified by a persistent nonzero client id and tags its
// operations with a strictly increasing request sequence number (seqs start
// at 1). Receipts live in a per-client ring indexed by seq mod cap, so the
// table is bounded by the client's unacked window: once the client
// acknowledges results up to a watermark (Ack), every slot below it is
// reusable and WasApplied answers for acked seqs from the watermark alone.
// The ring grows (power-of-two) when a client's unacked window outruns it,
// inside the recording transaction, so growth is as crash-atomic as the
// operation itself.
//
// A ring slot's seq word doubles as the receipt's commit word: a slot is
// valid iff its stored seq is nonzero and matches the probe. Within a
// transaction the store order is irrelevant (the redo log commits the whole
// record atomically); the field is still written last so the layout reads
// like the record-publication idiom the commitpoint analyzer enforces for
// raw-region records.
package detect

import "repro/internal/ptm"

const (
	// nBuckets is the client-index bucket count. Clients are sessions, not
	// keys: a handful per shard, so a small fixed table suffices.
	nBuckets = 16

	// Client record layout.
	crID     = 0 // persistent client id (nonzero)
	crNext   = 1 // next client record in the bucket chain
	crAck    = 2 // acked watermark: every seq <= this is acked (and applied)
	crAckCnt = 3 // receipts retired below the watermark (witness bookkeeping)
	crCap    = 4 // ring capacity, a power of two
	crPad    = 5 // reserved; keeps the 2-word ring slots line-aligned
	crRing   = 6 // first ring slot

	// minWindow is the initial ring capacity.
	minWindow = 8
)

// Table is a handle to the dedup table rooted at RootSlot. It holds no
// volatile state — every method re-reads the persistent structure — so the
// same Table value may be used from any transaction on the same heap.
type Table struct {
	// RootSlot is the persistent root slot (ptm.RootAddr) holding the
	// client index.
	RootSlot int
}

// Digest fingerprints a request: operation tag, key bytes, and the
// operation's sequential result. A retry that presents the same (client,
// seq) with a different digest is a client bug (a reused sequence number),
// which Table.Lookup lets callers detect. The result is forced nonzero.
func Digest(op uint64, key []byte, result uint64) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= 1099511628211
		}
	}
	mix(op)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	mix(result)
	if h == 0 {
		h = 1
	}
	return h
}

// ensure returns the bucket array, initializing the table on first use.
func (t Table) ensure(m ptm.Mem) uint64 {
	root := ptm.RootAddr(t.RootSlot)
	b := m.Load(root)
	if b != 0 {
		return b
	}
	b = m.Alloc(nBuckets)
	if b == 0 {
		panic("detect: persistent heap exhausted")
	}
	ptm.ZeroWords(m, b, nBuckets)
	m.Store(root, b)
	return b
}

// bucketOf maps a client id to its chain head slot. The multiplicative remix
// spreads sequential client ids over the buckets.
func bucketOf(buckets, client uint64) uint64 {
	return buckets + (client*0x9e3779b97f4a7c15>>52)%nBuckets
}

// find returns the client's record and its chain predecessor (0 for none).
func (t Table) find(m ptm.Mem, client uint64) (rec, prev uint64) {
	root := ptm.RootAddr(t.RootSlot)
	buckets := m.Load(root)
	if buckets == 0 {
		return 0, 0
	}
	n := m.Load(bucketOf(buckets, client))
	for n != 0 {
		if m.Load(n+crID) == client {
			return n, prev
		}
		prev = n
		n = m.Load(n + crNext)
	}
	return 0, 0
}

// newRecord allocates and zeroes a client record with the given capacity.
func newRecord(m ptm.Mem, client, cap uint64) uint64 {
	rec := m.Alloc(crRing + 2*cap)
	if rec == 0 {
		panic("detect: persistent heap exhausted")
	}
	ptm.ZeroWords(m, rec, crRing+2*cap)
	m.Store(rec+crID, client)
	m.Store(rec+crCap, cap)
	return rec
}

// ensureClient returns the client's record, creating it on first use.
func (t Table) ensureClient(m ptm.Mem, client uint64) uint64 {
	if client == 0 {
		panic("detect: client id must be nonzero")
	}
	rec, _ := t.find(m, client)
	if rec != 0 {
		return rec
	}
	buckets := t.ensure(m)
	rec = newRecord(m, client, minWindow)
	slot := bucketOf(buckets, client)
	m.Store(rec+crNext, m.Load(slot))
	m.Store(slot, rec)
	return rec
}

// slotAddr returns the ring slot for seq in rec.
func slotAddr(m ptm.Mem, rec, seq uint64) uint64 {
	cap := m.Load(rec + crCap)
	return rec + crRing + 2*(seq&(cap-1))
}

// Applied reports whether (client, seq) has a durable receipt: either the
// seq is at or below the client's acked watermark, or its ring slot holds a
// matching receipt. Read-only; safe in read transactions.
func (t Table) Applied(m ptm.Mem, client, seq uint64) bool {
	_, ok := t.Lookup(m, client, seq)
	return ok
}

// Lookup returns the recorded result digest for (client, seq) and whether
// the operation was applied. For seqs at or below the acked watermark the
// receipt itself has been retired and the digest is no longer available
// (digest 0, applied true): acked operations need no result replay.
func (t Table) Lookup(m ptm.Mem, client, seq uint64) (digest uint64, applied bool) {
	if seq == 0 {
		panic("detect: request seq must be nonzero")
	}
	rec, _ := t.find(m, client)
	if rec == 0 {
		return 0, false
	}
	if seq <= m.Load(rec+crAck) {
		return 0, true
	}
	s := slotAddr(m, rec, seq)
	if m.Load(s) == seq {
		return m.Load(s + 1), true
	}
	return 0, false
}

// Record writes the receipt for (client, seq) with the given result digest.
// It must run in the SAME update transaction as the operation it receipts,
// after the caller has checked Applied — recording a seq that already holds
// a receipt means an operation was applied twice, the exact bug detectable
// recoverability exists to rule out, so Record panics rather than mask it.
func (t Table) Record(m ptm.Mem, client, seq, digest uint64) {
	if seq == 0 {
		panic("detect: request seq must be nonzero")
	}
	rec := t.ensureClient(m, client)
	ack := m.Load(rec + crAck)
	if seq <= ack {
		// The receipt would be below the watermark: the client acked this
		// seq already, so a re-application slipped past the dedup check.
		panic("detect: operation recorded below its acked watermark (applied twice)")
	}
	if seq-ack > m.Load(rec+crCap) {
		rec = t.grow(m, rec, client, seq-ack)
	}
	s := slotAddr(m, rec, seq)
	if cur := m.Load(s); cur == seq {
		panic("detect: receipt already recorded for this seq (applied twice)")
	} else if cur > ack && cur != 0 {
		// The slot still holds a live (unacked) receipt for another seq:
		// the window invariant guarantees this cannot happen after grow.
		panic("detect: receipt ring collision inside the unacked window")
	}
	// Digest first, seq last: the seq word is the receipt's commit word.
	m.Store(s+1, digest)
	m.Store(s, seq)
}

// grow reallocates the client record with capacity >= span and relinks it,
// copying every live (unacked) receipt. Runs inside the caller's
// transaction, so the swap is crash-atomic with the operation.
func (t Table) grow(m ptm.Mem, rec, client, span uint64) uint64 {
	oldCap := m.Load(rec + crCap)
	newCap := oldCap
	for newCap < span {
		newCap *= 2
	}
	nr := newRecord(m, client, newCap)
	ack := m.Load(rec + crAck)
	m.Store(nr+crAck, ack)
	m.Store(nr+crAckCnt, m.Load(rec+crAckCnt))
	for i := uint64(0); i < oldCap; i++ {
		s := rec + crRing + 2*i
		if seq := m.Load(s); seq > ack {
			d := nr + crRing + 2*(seq&(newCap-1))
			m.Store(d+1, m.Load(s+1))
			m.Store(d, seq)
		}
	}
	// Relink: the record chain's predecessor (or bucket head) now names the
	// new record; the old one is freed in the same transaction.
	_, prev := t.find(m, client)
	m.Store(nr+crNext, m.Load(rec+crNext))
	if prev == 0 {
		m.Store(bucketOf(m.Load(ptm.RootAddr(t.RootSlot)), client), nr)
	} else {
		m.Store(prev+crNext, nr)
	}
	m.Free(rec)
	return nr
}

// Ack advances the client's acked watermark to upto: the client promises it
// has consumed the results of every seq <= upto, so their receipts may be
// reclaimed. Slots below the watermark are logically retired (counted into
// the witness tally) without being rewritten — a slot is live iff its seq is
// above the watermark, so truncation is one watermark store and crash-safe
// inside its transaction. Acking backwards is a no-op.
func (t Table) Ack(m ptm.Mem, client, upto uint64) {
	rec := t.ensureClient(m, client)
	ack := m.Load(rec + crAck)
	if upto <= ack {
		return
	}
	cap := m.Load(rec + crCap)
	retired := uint64(0)
	for i := uint64(0); i < cap; i++ {
		if seq := m.Load(rec + crRing + 2*i); seq > ack && seq <= upto {
			retired++
		}
	}
	m.Store(rec+crAckCnt, m.Load(rec+crAckCnt)+retired)
	m.Store(rec+crAck, upto)
}

// Stats reports the exactly-once witness for a client: receipts is the total
// number of operations ever applied for it (retired + live — if an engine
// ever applied an operation twice, Record's double-apply panic fires before
// this count could drift), maxSeq the highest receipted seq, and ack the
// acked watermark. Read-only.
func (t Table) Stats(m ptm.Mem, client uint64) (receipts, maxSeq, ack uint64) {
	rec, _ := t.find(m, client)
	if rec == 0 {
		return 0, 0, 0
	}
	ack = m.Load(rec + crAck)
	maxSeq = ack
	receipts = m.Load(rec + crAckCnt)
	cap := m.Load(rec + crCap)
	for i := uint64(0); i < cap; i++ {
		if seq := m.Load(rec + crRing + 2*i); seq > ack {
			receipts++
			if seq > maxSeq {
				maxSeq = seq
			}
		}
	}
	return receipts, maxSeq, ack
}

// Blocks visits every heap block the dedup table owns — the client-index
// bucket array and each client record. It is the table's contribution to
// the allocator's reachability recovery (palloc.Recover): a record the
// index does not reach is a leak. Read-only.
func (t Table) Blocks(m ptm.Mem, visit func(addr uint64)) {
	buckets := m.Load(ptm.RootAddr(t.RootSlot))
	if buckets == 0 {
		return
	}
	visit(buckets)
	for i := uint64(0); i < nBuckets; i++ {
		for rec := m.Load(buckets + i); rec != 0; rec = m.Load(rec + crNext) {
			visit(rec)
		}
	}
}
