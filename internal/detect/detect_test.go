package detect_test

import (
	"fmt"
	"testing"

	"repro/internal/core/redo"
	"repro/internal/detect"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// newEngine builds a small RedoOpt engine to host the table; the tests drive
// the table only through transactions, exactly as its contract demands.
func newEngine(t *testing.T) *redo.Redo {
	t.Helper()
	pool := pmem.New(pmem.Config{Mode: pmem.Direct, RegionWords: 1 << 16, Regions: 2})
	return redo.New(pool, redo.Config{Threads: 1, Variant: redo.Opt})
}

// The closures below return exactly one word and never write captured
// variables: a transaction body may be re-executed by helper threads, so
// multi-result reads are split into independent transactions.

func record(eng *redo.Redo, tbl detect.Table, client, seq, digest uint64) {
	eng.Update(0, func(m ptm.Mem) uint64 {
		tbl.Record(m, client, seq, digest)
		return 0
	})
}

func ack(eng *redo.Redo, tbl detect.Table, client, upto uint64) {
	eng.Update(0, func(m ptm.Mem) uint64 {
		tbl.Ack(m, client, upto)
		return 0
	})
}

func applied(eng *redo.Redo, tbl detect.Table, client, seq uint64) bool {
	return eng.Read(0, func(m ptm.Mem) uint64 {
		if tbl.Applied(m, client, seq) {
			return 1
		}
		return 0
	}) == 1
}

func lookupDigest(eng *redo.Redo, tbl detect.Table, client, seq uint64) uint64 {
	return eng.Read(0, func(m ptm.Mem) uint64 {
		d, _ := tbl.Lookup(m, client, seq)
		return d
	})
}

func stats(eng *redo.Redo, tbl detect.Table, client uint64) (receipts, maxSeq, ackW uint64) {
	read := func(pick int) uint64 {
		return eng.Read(0, func(m ptm.Mem) uint64 {
			r, mx, a := tbl.Stats(m, client)
			switch pick {
			case 0:
				return r
			case 1:
				return mx
			default:
				return a
			}
		})
	}
	return read(0), read(1), read(2)
}

func TestRecordLookupAck(t *testing.T) {
	eng := newEngine(t)
	tbl := detect.Table{RootSlot: 2}
	const client = 7

	if applied(eng, tbl, client, 1) {
		t.Fatal("empty table reports seq 1 applied")
	}
	for seq := uint64(1); seq <= 6; seq++ {
		record(eng, tbl, client, seq, detect.Digest(1, []byte{byte(seq)}, 0))
	}
	for seq := uint64(1); seq <= 6; seq++ {
		if !applied(eng, tbl, client, seq) {
			t.Fatalf("seq %d not applied after Record", seq)
		}
		if d := lookupDigest(eng, tbl, client, seq); d != detect.Digest(1, []byte{byte(seq)}, 0) {
			t.Fatalf("seq %d digest %#x, want the recorded one", seq, d)
		}
	}
	if applied(eng, tbl, client, 7) {
		t.Fatal("unrecorded seq 7 reports applied")
	}
	if r, mx, a := stats(eng, tbl, client); r != 6 || mx != 6 || a != 0 {
		t.Fatalf("stats = (%d, %d, %d), want (6, 6, 0)", r, mx, a)
	}

	// Acking retires receipts below the watermark: still applied, digest gone.
	ack(eng, tbl, client, 4)
	for seq := uint64(1); seq <= 4; seq++ {
		if !applied(eng, tbl, client, seq) {
			t.Fatalf("acked seq %d no longer applied", seq)
		}
		if d := lookupDigest(eng, tbl, client, seq); d != 0 {
			t.Fatalf("acked seq %d still exposes digest %#x", seq, d)
		}
	}
	if d := lookupDigest(eng, tbl, client, 5); d == 0 {
		t.Fatal("live seq 5 lost its digest across Ack")
	}
	if r, mx, a := stats(eng, tbl, client); r != 6 || mx != 6 || a != 4 {
		t.Fatalf("stats after ack = (%d, %d, %d), want (6, 6, 4)", r, mx, a)
	}
	// Acking backwards is a no-op.
	ack(eng, tbl, client, 2)
	if _, _, a := stats(eng, tbl, client); a != 4 {
		t.Fatalf("backward ack moved watermark to %d", a)
	}
}

func TestRingGrowsWithUnackedWindow(t *testing.T) {
	eng := newEngine(t)
	tbl := detect.Table{RootSlot: 2}
	const client = 3

	// Never ack: the window outruns the initial capacity and must grow,
	// keeping every live receipt findable.
	const n = 100
	for seq := uint64(1); seq <= n; seq++ {
		record(eng, tbl, client, seq, detect.Digest(2, nil, seq))
	}
	for seq := uint64(1); seq <= n; seq++ {
		if d := lookupDigest(eng, tbl, client, seq); d != detect.Digest(2, nil, seq) {
			t.Fatalf("seq %d lost its receipt across growth (digest %#x)", seq, d)
		}
	}
	if r, mx, a := stats(eng, tbl, client); r != n || mx != n || a != 0 {
		t.Fatalf("stats = (%d, %d, %d), want (%d, %d, 0)", r, mx, a, uint64(n), uint64(n))
	}

	// After acking, slots are reused without further growth.
	ack(eng, tbl, client, n)
	for seq := uint64(n + 1); seq <= n+8; seq++ {
		record(eng, tbl, client, seq, detect.Digest(2, nil, seq))
	}
	if r, mx, a := stats(eng, tbl, client); r != n+8 || mx != n+8 || a != n {
		t.Fatalf("stats after reuse = (%d, %d, %d)", r, mx, a)
	}
}

func TestManyClientsShareBuckets(t *testing.T) {
	eng := newEngine(t)
	tbl := detect.Table{RootSlot: 2}

	// 64 clients over 16 buckets forces chains; interleave records and acks,
	// including growth in mid-chain records, then verify isolation.
	const clients = 64
	for c := uint64(1); c <= clients; c++ {
		for seq := uint64(1); seq <= 5; seq++ {
			record(eng, tbl, c, seq, detect.Digest(c, nil, seq))
		}
	}
	for c := uint64(4); c <= clients; c += 8 {
		for seq := uint64(6); seq <= 20; seq++ { // outruns minWindow: grows
			record(eng, tbl, c, seq, detect.Digest(c, nil, seq))
		}
	}
	for c := uint64(1); c <= clients; c++ {
		want := uint64(5)
		if c >= 4 && (c-4)%8 == 0 {
			want = 20
		}
		r, mx, a := stats(eng, tbl, c)
		if r != want || mx != want || a != 0 {
			t.Fatalf("client %d stats = (%d, %d, %d), want (%d, %d, 0)", c, r, mx, a, want, want)
		}
		if applied(eng, tbl, c, want+1) {
			t.Fatalf("client %d reports unrecorded seq %d applied", c, want+1)
		}
	}
}

func TestRecordTwicePanics(t *testing.T) {
	tbl := detect.Table{RootSlot: 2}

	// A Record panic is a fatal invariant violation: the engine that raised
	// it is not reusable, so every case gets a fresh one.
	mustPanic := func(name string, f func(eng *redo.Redo)) {
		eng := newEngine(t)
		record(eng, tbl, 1, 1, 42)
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f(eng)
	}
	mustPanic("re-recording a live seq", func(eng *redo.Redo) {
		record(eng, tbl, 1, 1, 42)
	})
	mustPanic("recording below the watermark", func(eng *redo.Redo) {
		ack(eng, tbl, 1, 1)
		record(eng, tbl, 1, 1, 42)
	})
	mustPanic("zero client id", func(eng *redo.Redo) { record(eng, tbl, 0, 2, 42) })
	mustPanic("zero seq", func(eng *redo.Redo) { record(eng, tbl, 1, 0, 42) })
}

func TestDigestProperties(t *testing.T) {
	if detect.Digest(0, nil, 0) == 0 {
		t.Fatal("Digest returned zero")
	}
	seen := map[uint64]string{}
	for op := uint64(1); op <= 3; op++ {
		for _, key := range []string{"", "a", "b", "ab"} {
			d := detect.Digest(op, []byte(key), 0)
			id := fmt.Sprintf("op%d/%q", op, key)
			if prev, dup := seen[d]; dup {
				t.Fatalf("digest collision between %s and %s", id, prev)
			}
			seen[d] = id
		}
	}
	if detect.Digest(1, []byte("k"), 1) == detect.Digest(1, []byte("k"), 2) {
		t.Fatal("result not folded into digest")
	}
}
