package obs

import (
	"sync"
	"testing"
)

func TestTracerCapRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 1024}, {1, 1024}, {1024, 1024}, {1025, 2048}, {3000, 4096},
	} {
		if got := NewTracer(tc.ask).Cap(); got != tc.want {
			t.Errorf("NewTracer(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestTracerEmitSnapshot(t *testing.T) {
	tr := NewTracer(0)
	tr.Emit(Event{Kind: KindStore, TID: -1, Region: 2, Addr: 5, Len: 1, Arg: 9})
	tr.Emit(Event{Kind: KindPWB, TID: -1, Region: 2, Addr: 5, Len: 1})
	tr.Emit(Event{Kind: KindPFence, TID: -1, Region: 2})
	snap := tr.Snapshot()
	if snap.Dropped != 0 || len(snap.Events) != 3 {
		t.Fatalf("snapshot = %d events dropped=%d, want 3/0", len(snap.Events), snap.Dropped)
	}
	wantKinds := []Kind{KindStore, KindPWB, KindPFence}
	var lastTS int64 = -1
	for i, e := range snap.Events {
		if e.Seq != uint64(i) {
			t.Errorf("event %d Seq = %d, want %d", i, e.Seq, i)
		}
		if e.Kind != wantKinds[i] {
			t.Errorf("event %d Kind = %v, want %v", i, e.Kind, wantKinds[i])
		}
		if e.TS < lastTS {
			t.Errorf("event %d TS %d went backwards from %d", i, e.TS, lastTS)
		}
		lastTS = e.TS
	}
	if snap.Events[0].Arg != 9 || snap.Events[0].Addr != 5 {
		t.Errorf("payload fields not preserved: %+v", snap.Events[0])
	}
}

func TestTracerWrapKeepsLatest(t *testing.T) {
	tr := NewTracer(1024)
	n := uint64(tr.Cap()) + 100
	for i := uint64(0); i < n; i++ {
		tr.Emit(Event{Kind: KindStore, TID: -1, Addr: i})
	}
	snap := tr.Snapshot()
	if snap.Dropped != 100 {
		t.Fatalf("Dropped = %d, want 100", snap.Dropped)
	}
	if len(snap.Events) != tr.Cap() {
		t.Fatalf("kept %d events, want %d", len(snap.Events), tr.Cap())
	}
	if snap.Events[0].Addr != 100 || snap.Events[0].Seq != 100 {
		t.Errorf("oldest kept event = %+v, want Addr/Seq 100", snap.Events[0])
	}
	if last := snap.Events[len(snap.Events)-1]; last.Addr != n-1 {
		t.Errorf("newest kept event Addr = %d, want %d", last.Addr, n-1)
	}
	if tr.Len() != n {
		t.Errorf("Len() = %d, want %d", tr.Len(), n)
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(0)
	tr.Emit(Event{Kind: KindStore, TID: 3})
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tr.Len())
	}
	tr.Emit(Event{Kind: KindPWB, TID: 3})
	snap := tr.Snapshot()
	if len(snap.Events) != 1 || snap.Events[0].Seq != 0 {
		t.Fatalf("post-Reset snapshot = %+v", snap)
	}
	if snap.Events[0].LSeq != 1 {
		t.Errorf("LSeq counter not reset: %d", snap.Events[0].LSeq)
	}
}

func TestTracerLSeqPerTID(t *testing.T) {
	tr := NewTracer(0)
	tr.Emit(Event{Kind: KindCombineBegin, TID: 3})
	tr.Emit(Event{Kind: KindCombineBegin, TID: 5})
	tr.Emit(Event{Kind: KindCombineEnd, TID: 3})
	tr.Emit(Event{Kind: KindCombineEnd, TID: 5})
	tr.Emit(Event{Kind: KindPFence, TID: -1}) // unknown tid: no LSeq
	snap := tr.Snapshot()
	want := []uint64{1, 1, 2, 2, 0}
	for i, e := range snap.Events {
		if e.LSeq != want[i] {
			t.Errorf("event %d (tid %d) LSeq = %d, want %d", i, e.TID, e.LSeq, want[i])
		}
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(1 << 14)
	const workers, each = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int16) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Emit(Event{Kind: KindStore, TID: tid, Addr: uint64(i)})
			}
		}(int16(w))
	}
	wg.Wait()
	snap := tr.Snapshot()
	if snap.Dropped != 0 || len(snap.Events) != workers*each {
		t.Fatalf("got %d events dropped=%d, want %d/0", len(snap.Events), snap.Dropped, workers*each)
	}
	// Every global Seq appears exactly once, and each TID's LSeq values are
	// a permutation-free 1..each sequence in emission order.
	lastLSeq := make(map[int16]uint64)
	for i, e := range snap.Events {
		if e.Seq != uint64(i) {
			t.Fatalf("event %d Seq = %d", i, e.Seq)
		}
		if e.LSeq != lastLSeq[e.TID]+1 {
			t.Fatalf("tid %d LSeq %d after %d", e.TID, e.LSeq, lastLSeq[e.TID])
		}
		lastLSeq[e.TID] = e.LSeq
	}
	for w := 0; w < workers; w++ {
		if lastLSeq[int16(w)] != each {
			t.Errorf("tid %d final LSeq = %d, want %d", w, lastLSeq[int16(w)], each)
		}
	}
}

func TestTraceCountsMirrorStats(t *testing.T) {
	tr := NewTracer(0)
	tr.Emit(Event{Kind: KindPWB, TID: -1})
	tr.Emit(Event{Kind: KindPWBHeader, TID: -1})
	tr.Emit(Event{Kind: KindPFence, TID: -1})
	tr.Emit(Event{Kind: KindPFenceGlobal, TID: -1})
	tr.Emit(Event{Kind: KindPSync, TID: -1})
	tr.Emit(Event{Kind: KindNTStore, TID: -1, Len: 8})
	tr.Emit(Event{Kind: KindCopy, TID: -1, Len: 5})
	tr.Emit(Event{Kind: KindNTCopy, TID: -1, Len: 20}) // 3 lines
	tr.Emit(Event{Kind: KindStore, TID: -1, Len: 1})   // not an instruction
	c := tr.Snapshot().Counts()
	want := PhysCounts{PWBs: 2, PFences: 2, PSyncs: 1, NTStores: 1 + 3, WordsCopied: 5 + 20}
	if c != want {
		t.Fatalf("Counts = %+v, want %+v", c, want)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindInvalid; k < kindCount; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Errorf("out-of-range kind should stringify as unknown")
	}
}

func TestEmitNoAlloc(t *testing.T) {
	tr := NewTracer(0)
	e := Event{Kind: KindPWB, TID: 1, Addr: 8, Len: 1}
	if n := testing.AllocsPerRun(200, func() { tr.Emit(e) }); n != 0 {
		t.Fatalf("Emit allocates %v times per call, want 0", n)
	}
}

func BenchmarkTracerEmit(b *testing.B) {
	tr := NewTracer(1 << 16)
	e := Event{Kind: KindPWB, TID: 1, Addr: 8, Len: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(e)
	}
}
