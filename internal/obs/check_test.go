package obs

import (
	"strings"
	"testing"
)

// tb hand-builds traces for the accept/reject table, stamping capture
// sequence numbers the way a real tracer would.
type tb struct {
	seq uint64
	evs []Event
}

func (b *tb) add(k Kind, region int, addr, length, arg uint64) *tb {
	b.evs = append(b.evs, Event{
		Seq: b.seq, Kind: k, TID: -1, Pool: 0, Region: int16(region),
		Addr: addr, Len: length, Arg: arg,
	})
	b.seq++
	return b
}

func (b *tb) store(region int, addr, v uint64) *tb { return b.add(KindStore, region, addr, 1, v) }
func (b *tb) pwb(region int, addr uint64) *tb      { return b.add(KindPWB, region, addr, 1, 0) }
func (b *tb) pfence(region int) *tb                { return b.add(KindPFence, region, 0, 0, 0) }
func (b *tb) pfenceGlobal() *tb                    { return b.add(KindPFenceGlobal, -1, 0, 0, 0) }
func (b *tb) psync() *tb                           { return b.add(KindPSync, -1, 0, 0, 0) }
func (b *tb) ntstore(region int, addr, n uint64) *tb {
	return b.add(KindNTStore, region, addr, n, 0)
}
func (b *tb) ntcopy(region int, n uint64) *tb { return b.add(KindNTCopy, region, 0, n, 0) }
func (b *tb) hstore(slot, v uint64) *tb       { return b.add(KindHeaderStore, -1, slot, 1, v) }
func (b *tb) hpwb(slot uint64) *tb            { return b.add(KindPWBHeader, -1, slot, 1, 0) }
func (b *tb) crash() *tb                      { return b.add(KindCrash, -1, 0, 0, 0) }
func (b *tb) publish(region int, addr, n uint64) *tb {
	return b.add(KindPublish, region, addr, n, PubHeap)
}
func (b *tb) hpublish(slot, n uint64) *tb { return b.add(KindHeaderPublish, -1, slot, n, 0) }
func (b *tb) seal(region int, epoch uint64) *tb {
	return b.add(KindEpochSeal, region, 0, 0, epoch)
}
func (b *tb) wm(region int, epoch uint64) *tb { return b.add(KindWatermark, region, 0, 0, epoch) }
func (b *tb) trace() Trace                    { return Trace{Events: b.evs} }

// TestCheckOrdering is the table-driven accept/reject suite for the dynamic
// ordering checker, in the style of lincheck's CheckDurable table. Cases
// marked runtimeOnly are ordering violations that pmemvet's static
// fenceorder analyzer provably cannot flag, because the violated obligation
// only exists for values computed at runtime (allocator high-water marks,
// data-dependent ranges, cross-round or cross-thread interleavings) —
// statically, every path contains a flush and a fence in the right order.
func TestCheckOrdering(t *testing.T) {
	cases := []struct {
		name        string
		build       func() Trace
		opts        CheckOptions
		wantRules   []string // empty = accept
		wantErr     bool
		runtimeOnly bool
	}{
		{
			name: "accept/store-pwb-fence-publish",
			build: func() Trace {
				return new(tb).store(0, 3, 7).pwb(0, 3).pfence(0).publish(0, 0, 8).trace()
			},
		},
		{
			name: "accept/ntstore-needs-no-pwb",
			build: func() Trace {
				return new(tb).ntstore(0, 8, 8).pfence(0).publish(0, 8, 8).trace()
			},
		},
		{
			name: "accept/ntcopy-then-fence",
			build: func() Trace {
				return new(tb).ntcopy(0, 100).pfence(0).publish(0, 0, 100).trace()
			},
		},
		{
			name: "accept/header-store-pwb-psync",
			build: func() Trace {
				return new(tb).hstore(0, 5).hpwb(0).psync().hpublish(0, 1).trace()
			},
		},
		{
			name: "accept/global-fence-covers-regions-and-headers",
			build: func() Trace {
				return new(tb).store(0, 1, 1).pwb(0, 1).store(1, 2, 2).pwb(1, 2).
					hstore(0, 3).hpwb(0).pfenceGlobal().
					publish(0, 0, 8).publish(1, 0, 8).hpublish(0, 1).trace()
			},
		},
		{
			name: "accept/crc-pair-stored-in-order",
			build: func() Trace {
				return new(tb).hstore(2, 42).hstore(3, 99).hpwb(2).hpwb(3).psync().
					hpublish(2, 2).trace()
			},
		},
		{
			name: "accept/crash-clears-pending-obligations",
			build: func() Trace {
				// The unflushed store is lost with the cache; publishing
				// the (old, durable) range afterwards owes nothing.
				return new(tb).store(0, 3, 7).crash().publish(0, 0, 8).trace()
			},
		},
		{
			name: "accept/republish-stable-range",
			build: func() Trace {
				return new(tb).store(0, 3, 7).pwb(0, 3).pfence(0).publish(0, 0, 8).
					publish(0, 0, 8).trace()
			},
		},
		{
			name: "accept/intent-fenced-before-status",
			build: func() Trace {
				b := new(tb)
				b.store(0, 24, 1).store(0, 17, 9).store(0, 19, 0xc).
					pwb(0, 24).pwb(0, 17).pwb(0, 19).pfence(0)
				b.add(KindPublish, 0, 17, 15, PubIntent)
				b.store(0, 16, 1).pwb(0, 16).pfence(0)
				b.add(KindIntentPublish, 0, 16, 1, 9)
				return b.trace()
			},
		},
		{
			name: "accept/relaxed-headers-racing-store",
			build: func() Trace {
				// Thread B's store lands between A's psync and A's publish:
				// legal under concurrency, flagged only by strict mode.
				return new(tb).hstore(0, 1).hpwb(0).psync().hstore(0, 2).
					hpublish(0, 1).trace()
			},
			opts: CheckOptions{RelaxedHeaders: true},
		},
		{
			name: "reject/store-never-flushed",
			build: func() Trace {
				return new(tb).store(0, 3, 7).pfence(0).publish(0, 0, 8).trace()
			},
			wantRules: []string{RuleUnflushed},
		},
		{
			name: "reject/flush-never-fenced",
			build: func() Trace {
				return new(tb).store(0, 3, 7).pwb(0, 3).publish(0, 0, 8).trace()
			},
			wantRules: []string{RuleUnfenced},
		},
		{
			name: "reject/fence-on-wrong-region",
			build: func() Trace {
				// The fenced region index is computed at runtime (replica
				// selection): statically there IS a store→pwb→pfence chain.
				return new(tb).store(0, 3, 7).pwb(0, 3).pfence(1).publish(0, 0, 8).trace()
			},
			wantRules:   []string{RuleUnfenced},
			runtimeOnly: true,
		},
		{
			name: "reject/fence-issued-before-flush",
			build: func() Trace {
				return new(tb).store(0, 3, 7).pfence(0).pwb(0, 3).publish(0, 0, 8).trace()
			},
			wantRules: []string{RuleUnfenced},
		},
		{
			name: "reject/psync-does-not-cover-region-lines",
			build: func() Trace {
				// PSync orders header flushes only — using it as a data
				// fence is a real protocol bug the simulator also models.
				return new(tb).store(0, 3, 7).pwb(0, 3).psync().publish(0, 0, 8).trace()
			},
			wantRules: []string{RuleUnfenced},
		},
		{
			name: "reject/pfence-does-not-cover-headers",
			build: func() Trace {
				return new(tb).hstore(0, 5).hpwb(0).pfence(0).hpublish(0, 1).trace()
			},
			wantRules: []string{RuleHeaderUnsynced},
		},
		{
			name: "reject/header-stored-after-its-flush",
			build: func() Trace {
				// A second store slips in after PWBHeader but before PSync.
				// Real CLWB snapshots the line at flush time, so the second
				// store is NOT covered — yet the simulator's lenient PSync
				// (persist at-sync value) accepts it, and statically the
				// path still reads store→flush→sync. Only the dynamic
				// checker sees the interleaving.
				return new(tb).hstore(0, 1).hpwb(0).hstore(0, 2).psync().
					hpublish(0, 1).trace()
			},
			wantRules:   []string{RuleHeaderUnsynced},
			runtimeOnly: true,
		},
		{
			name: "reject/crc-pair-stored-out-of-order",
			build: func() Trace {
				// Tag (slot 3) stored before value (slot 2): a crash
				// between the stores persists a tag that validates stale
				// data. Which slot is stored first is a runtime property —
				// both orders contain the same store/flush/sync calls.
				return new(tb).hstore(3, 99).hstore(2, 42).hpwb(2).hpwb(3).psync().
					hpublish(2, 2).trace()
			},
			wantRules:   []string{RuleCRCOrder},
			runtimeOnly: true,
		},
		{
			name: "reject/publish-range-grew-past-flushed-prefix",
			build: func() Trace {
				// The flush loop covered [0,64) but the allocator grew the
				// heap to 80 words before publication. The published length
				// is the runtime high-water mark — no static analysis can
				// know the loop bound fell short of it.
				b := new(tb).store(0, 3, 7).store(0, 72, 8)
				for a := uint64(0); a < 64; a += 8 {
					b.pwb(0, a)
				}
				return b.pfence(0).publish(0, 0, 80).trace()
			},
			wantRules:   []string{RuleUnflushed},
			runtimeOnly: true,
		},
		{
			name: "reject/second-round-reuses-first-rounds-fence",
			build: func() Trace {
				// Round 1 is correct; round 2 stores the same line, flushes
				// it, but publishes without a new fence. Statically the
				// (single) loop body contains flush+fence+publish in order;
				// only the per-iteration replay sees the missing fence.
				return new(tb).store(0, 3, 7).pwb(0, 3).pfence(0).publish(0, 0, 8).
					store(0, 3, 9).pwb(0, 3).publish(0, 0, 8).trace()
			},
			wantRules:   []string{RuleUnfenced},
			runtimeOnly: true,
		},
		{
			name: "reject/intent-status-flipped-before-record-fence",
			build: func() Trace {
				b := new(tb)
				b.store(0, 24, 1).store(0, 17, 9).store(0, 19, 0xc).
					pwb(0, 24).pwb(0, 17).pwb(0, 19)
				// Missing fence: the status CAS publishes a record that
				// could still be in the cache at power loss.
				b.add(KindPublish, 0, 17, 15, PubIntent)
				b.store(0, 16, 1).pwb(0, 16).pfence(0)
				b.add(KindIntentPublish, 0, 16, 1, 9)
				return b.trace()
			},
			wantRules: []string{RuleUnfenced},
		},
		{
			name: "reject/relaxed-headers-never-durable-since-crash",
			build: func() Trace {
				return new(tb).hstore(0, 1).hpwb(0).psync().crash().
					hstore(0, 2).hpublish(0, 1).trace()
			},
			opts:      CheckOptions{RelaxedHeaders: true},
			wantRules: []string{RuleHeaderUnsynced},
		},
		{
			name: "reject/reordered-capture-sequence",
			build: func() Trace {
				tr := new(tb).store(0, 3, 7).pwb(0, 3).pfence(0).publish(0, 0, 8).trace()
				tr.Events[1], tr.Events[2] = tr.Events[2], tr.Events[1]
				return tr
			},
			wantRules: []string{RuleSeqOrder},
		},
		{
			// The buffered persister's epoch cycle: seal, flush, fence,
			// header publish, watermark — twice, monotone throughout.
			name: "accept/epoch-seal-watermark-cycle",
			build: func() Trace {
				b := new(tb)
				b.seal(1, 5).store(1, 3, 7).pwb(1, 3).pfence(1).
					hstore(0, 5).hpwb(0).psync().hpublish(0, 1).wm(1, 5)
				b.seal(1, 9).store(1, 4, 8).pwb(1, 4).pfence(1).
					hstore(0, 9).hpwb(0).psync().hpublish(0, 1).wm(1, 9)
				return b.trace()
			},
		},
		{
			// A re-seal of the same epoch (persister raced a no-op cadence
			// tick) is idempotent, not a regression.
			name: "accept/epoch-reseal-same-epoch",
			build: func() Trace {
				return new(tb).seal(1, 5).wm(1, 5).seal(1, 5).wm(1, 5).trace()
			},
		},
		{
			// Crash between seal and watermark: the sealed epoch died with
			// the cache, and after recovery the persister legally seals a
			// LOWER epoch (commits replayed from the old watermark).
			name: "accept/crash-rolls-seal-back-to-watermark",
			build: func() Trace {
				return new(tb).seal(1, 5).wm(1, 5).seal(1, 9).crash().
					seal(1, 7).wm(1, 7).trace()
			},
		},
		{
			name: "reject/epoch-seal-regresses",
			build: func() Trace {
				return new(tb).seal(1, 9).wm(1, 9).seal(1, 5).trace()
			},
			wantRules:   []string{RuleEpochSealOrder},
			runtimeOnly: true,
		},
		{
			name: "reject/watermark-regresses",
			build: func() Trace {
				return new(tb).seal(1, 9).wm(1, 9).seal(1, 9).wm(1, 5).trace()
			},
			wantRules:   []string{RuleWatermarkOrder},
			runtimeOnly: true,
		},
		{
			// Watermark published past the last seal: durability announced
			// for commits never flushed — the buffered analogue of
			// publishing an unfenced range.
			name: "reject/watermark-beyond-seal",
			build: func() Trace {
				return new(tb).seal(1, 5).wm(1, 9).trace()
			},
			wantRules:   []string{RuleWatermarkBeyondSeal},
			runtimeOnly: true,
		},
		{
			// After a crash the old seal no longer covers: re-announcing the
			// pre-crash watermark height without re-sealing is a violation.
			name: "reject/post-crash-watermark-without-reseal",
			build: func() Trace {
				return new(tb).seal(1, 5).wm(1, 5).seal(1, 9).crash().
					wm(1, 9).trace()
			},
			wantRules:   []string{RuleWatermarkBeyondSeal},
			runtimeOnly: true,
		},
		{
			name: "error/wrapped-ring",
			build: func() Trace {
				tr := new(tb).store(0, 3, 7).trace()
				tr.Dropped = 12
				return tr
			},
			wantErr: true,
		},
		{
			name: "error/implausible-range",
			build: func() Trace {
				return new(tb).add(KindPublish, 0, 0, 1<<40, PubHeap).trace()
			},
			wantErr: true,
		},
	}

	runtimeOnlyRejects := 0
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			vs, err := CheckOrdering(tc.build(), tc.opts)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want structural error, got err=nil violations=%v", vs)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if len(tc.wantRules) == 0 {
				if len(vs) != 0 {
					t.Fatalf("want clean trace, got violations: %v", vs)
				}
				return
			}
			if len(vs) == 0 {
				t.Fatalf("want violation rules %v, trace passed clean", tc.wantRules)
			}
			for _, want := range tc.wantRules {
				found := false
				for _, v := range vs {
					if v.Rule == want {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("want a %s violation, got %v", want, vs)
				}
			}
		})
		if tc.runtimeOnly && len(tc.wantRules) > 0 {
			runtimeOnlyRejects++
		}
	}
	if runtimeOnlyRejects < 4 {
		t.Errorf("table must seed >= 4 runtime-only ordering violations, has %d", runtimeOnlyRejects)
	}
}

// TestCheckOrderingStrictVsRelaxed pins that the same racing-store trace is
// rejected strictly and accepted relaxed — the knob concurrent -race smokes
// depend on.
func TestCheckOrderingStrictVsRelaxed(t *testing.T) {
	trace := func() Trace {
		return new(tb).hstore(0, 1).hpwb(0).psync().hstore(0, 2).hpublish(0, 1).trace()
	}
	if vs, err := CheckOrdering(trace(), CheckOptions{}); err != nil || len(vs) == 0 {
		t.Fatalf("strict mode should flag the racing store: vs=%v err=%v", vs, err)
	}
	if vs, err := CheckOrdering(trace(), CheckOptions{RelaxedHeaders: true}); err != nil || len(vs) != 0 {
		t.Fatalf("relaxed mode should accept the racing store: vs=%v err=%v", vs, err)
	}
}

// TestViolationMessages pins that violation strings carry enough context to
// debug from (rule id, range, missing step).
func TestViolationMessages(t *testing.T) {
	tr := new(tb).store(0, 3, 7).pwb(0, 3).publish(0, 0, 8).trace()
	vs, err := CheckOrdering(tr, CheckOptions{})
	if err != nil || len(vs) != 1 {
		t.Fatalf("want one violation, got %v err=%v", vs, err)
	}
	s := vs[0].String()
	for _, want := range []string{RuleUnfenced, "line 0", "not fenced"} {
		if !strings.Contains(s, want) {
			t.Errorf("violation %q missing %q", s, want)
		}
	}
}

// TestCheckOrderingViolationCap pins that a pathological trace truncates the
// report instead of growing without bound.
func TestCheckOrderingViolationCap(t *testing.T) {
	b := new(tb)
	for i := 0; i < 200; i++ {
		b.store(0, uint64(i*8), 1).publish(0, uint64(i*8), 1)
	}
	vs, err := CheckOrdering(b.trace(), CheckOptions{MaxViolations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 10 {
		t.Fatalf("want capped 10 violations, got %d", len(vs))
	}
}
