package obs

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is an HDR-style fixed-bucket latency histogram: log2 major
// buckets with 16 linear sub-buckets each, giving ~6% relative error across
// 1ns..~5h with no allocations on the record path. The zero value is ready
// to use; a nil *Histogram is a no-op sink, so call sites can keep an
// optional histogram field and Observe unconditionally.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

const (
	histSubBits = 4 // 16 sub-buckets per power of two
	// histBuckets covers every uint64: 2^histSubBits exact low buckets
	// plus (64-histSubBits) majors of 2^histSubBits sub-buckets each.
	histBuckets = (64-histSubBits)<<histSubBits + 1<<histSubBits
)

// bucketOf maps a non-negative nanosecond value to its bucket index.
// Values below 2^histSubBits get exact buckets; above that, the bucket is
// (msb-histSubBits) majors in, sub-indexed by the histSubBits bits below
// the most significant bit.
func bucketOf(ns uint64) int {
	if ns < 1<<histSubBits {
		return int(ns)
	}
	msb := 63 - bits.LeadingZeros64(ns)
	sub := (ns >> (msb - histSubBits)) & (1<<histSubBits - 1)
	idx := (msb-histSubBits)<<histSubBits + int(sub) + (1 << histSubBits)
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketLow returns the lowest nanosecond value mapping to bucket idx; it
// is the value quantiles report (a ≤6% underestimate, never an over-read).
func bucketLow(idx int) uint64 {
	if idx < 1<<histSubBits {
		return uint64(idx)
	}
	idx -= 1 << histSubBits
	major := idx >> histSubBits
	sub := uint64(idx & (1<<histSubBits - 1))
	return (1<<histSubBits + sub) << major
}

// Observe records one duration. Nil-safe and allocation-free.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil || d < 0 {
		return
	}
	ns := uint64(d)
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			return
		}
	}
}

// Reset zeroes the histogram. It is not atomic with respect to concurrent
// Observe calls: an observation racing the reset may land on either side of
// the boundary (or split its count and sum across it), which is benign for
// the interval measurements Reset exists for — the load harness resets
// server histograms between cells while only its own traffic is running.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// MergeInto folds h's observations into dst bucket-by-bucket, preserving
// quantiles exactly (both histograms share the fixed bucket layout). Like
// Reset it is only interval-consistent under concurrent writers.
func (h *Histogram) MergeInto(dst *Histogram) {
	if h == nil || dst == nil {
		return
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			dst.buckets[i].Add(n)
		}
	}
	dst.count.Add(h.count.Load())
	dst.sum.Add(h.sum.Load())
	for {
		m, hm := dst.max.Load(), h.max.Load()
		if hm <= m || dst.max.CompareAndSwap(m, hm) {
			break
		}
	}
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) as a duration, computed
// from bucket lower bounds; 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			return time.Duration(bucketLow(i))
		}
	}
	return time.Duration(h.max.Load())
}

// Mean returns the average observed duration; 0 when empty.
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observed duration.
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// HistSnapshot is a point-in-time summary of a histogram, the unit of the
// JSON and expvar exports.
type HistSnapshot struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P90Ns  int64   `json:"p90_ns"`
	P99Ns  int64   `json:"p99_ns"`
	P999Ns int64   `json:"p999_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// Snapshot summarizes the histogram. Safe under concurrent Observe (the
// quantiles are then approximate across the racing updates).
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Count:  h.count.Load(),
		P50Ns:  int64(h.Quantile(0.50)),
		P90Ns:  int64(h.Quantile(0.90)),
		P99Ns:  int64(h.Quantile(0.99)),
		P999Ns: int64(h.Quantile(0.999)),
		MaxNs:  int64(h.max.Load()),
	}
	if s.Count > 0 {
		s.MeanNs = float64(h.sum.Load()) / float64(s.Count)
	}
	return s
}

// String renders the snapshot as JSON, which makes *Histogram an
// expvar.Var so callers can expvar.Publish("op_latency", hist).
func (h *Histogram) String() string {
	b, err := json.Marshal(h.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// LatencySet groups the three phase histograms every engine run reports.
type LatencySet struct {
	Op       Histogram // whole user-visible operation
	Commit   Histogram // persistence tail: flush + fence + publish
	Recovery Histogram // constructor-time recovery / replay
}

// Snapshot summarizes all three phases.
func (l *LatencySet) Snapshot() map[string]HistSnapshot {
	if l == nil {
		return nil
	}
	return map[string]HistSnapshot{
		"op":       l.Op.Snapshot(),
		"commit":   l.Commit.Snapshot(),
		"recovery": l.Recovery.Snapshot(),
	}
}

// String renders the set as JSON (expvar.Var).
func (l *LatencySet) String() string {
	b, err := json.Marshal(l.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Fprint writes a human-readable latency table line for one phase.
func (s HistSnapshot) Fprint(name string) string {
	return fmt.Sprintf("%-10s n=%-8d mean=%-10v p50=%-10v p99=%-10v max=%v",
		name, s.Count, time.Duration(s.MeanNs), time.Duration(s.P50Ns),
		time.Duration(s.P99Ns), time.Duration(s.MaxNs))
}
