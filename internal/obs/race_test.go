package obs

import (
	"sync"
	"testing"
	"time"
)

// TestRaceSmoke is a short high-contention workload meant for `go test
// -race` (ci.sh runs it with the detector on): concurrent emitters share
// one tracer ring and one histogram, exercising the lock-free slot
// reservation, the per-TID local sequence counters and the atomic bucket
// updates. Coarse counts are the functional assertion; the race detector
// is the real one.
func TestRaceSmoke(t *testing.T) {
	const threads, perThread = 4, 200
	tr := NewTracer(1024)
	var h Histogram
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				tr.Emit(Event{Kind: KindStore, TID: int16(tid), Addr: uint64(i)})
				h.Observe(time.Duration(i+1) * time.Microsecond)
			}
		}(tid)
	}
	wg.Wait()
	if got := tr.Len(); got != threads*perThread {
		t.Fatalf("tracer Len = %d, want %d", got, threads*perThread)
	}
	snap := tr.Snapshot()
	if len(snap.Events)+int(snap.Dropped) != threads*perThread {
		t.Fatalf("snapshot events %d + dropped %d != %d", len(snap.Events), snap.Dropped, threads*perThread)
	}
	if h.Count() != threads*perThread {
		t.Fatalf("histogram count = %d, want %d", h.Count(), threads*perThread)
	}
}
