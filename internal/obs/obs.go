// Package obs is the runtime observability layer: a low-overhead, lock-free
// ring-buffer tracer for persistence events, latency histograms for the
// op/commit/recovery phases, and a dynamic ordering checker (CheckOrdering)
// that replays a captured trace and asserts the durable-linearizability
// ordering rules the paper's constructions rely on.
//
// The tracer records two families of events:
//
//   - Physical events emitted by internal/pmem at every persistence
//     instruction: stores, PWBs, fences, PSyncs, non-temporal stores, bulk
//     copies, header stores/flushes and crashes. Their counts are, by
//     construction, in one-to-one correspondence with pmem.StatsSnapshot
//     (see Trace.Counts), so the trace doubles as a cross-check on the
//     aggregate counters.
//   - Logical events emitted by engine hook points: combining round
//     open/close, log replay begin/end, curComb transitions, coordinator
//     intent publish and roll-forward, recovery phase boundaries, and —
//     most importantly — Publish/HeaderPublish events, through which an
//     engine *declares* which ranges must be durable at a given instant.
//     CheckOrdering verifies those declarations against the physical
//     events; the declared ranges are runtime values (allocator high-water
//     marks, payload lengths), which is exactly what pmemvet's static
//     fenceorder analyzer cannot see.
//
// Tracing is disabled by default: a pool with no attached tracer pays one
// nil-check per persistence instruction and nothing else (asserted by
// benchmarks in internal/pmem and internal/psim). The ring buffer keeps the
// most recent events and counts overwritten ones; CheckOrdering refuses a
// wrapped trace rather than report unsound verdicts on a partial history.
package obs

import (
	"sync/atomic"
	"time"
)

// WordsPerLine mirrors pmem.WordsPerLine (8 words = one 64-byte cache
// line). obs cannot import pmem (pmem emits into obs), so the constant is
// duplicated here and pinned by a test in internal/pmem.
const WordsPerLine = 8

// Kind classifies a trace event.
type Kind uint8

const (
	// KindInvalid is the zero Kind; it never appears in a valid trace.
	KindInvalid Kind = iota

	// Physical events (emitted by internal/pmem).

	// KindStore is a word store into a region (plain, atomic, or a
	// successful CAS). Addr is the word offset, Len the word count (1),
	// Arg the stored value.
	KindStore
	// KindBulkStore is one aggregated store of Len consecutive words at
	// Addr (Region.StoreWords): a whole byte payload landing in a single
	// memcpy-style write. Like KindStore it dirties the covered cache
	// lines — each still needs a write-back (or non-temporal store) and a
	// fence before the range is published — and like KindStore it has no
	// StatsSnapshot counterpart, so trace/stats parity is unaffected.
	KindBulkStore
	// KindPWB is a persistence write-back of the cache line containing
	// Addr.
	KindPWB
	// KindPFence is a per-region persistence fence: lines of Region
	// PWB'd before it become durable.
	KindPFence
	// KindPFenceGlobal is a pool-wide fence: every flushed line of every
	// region and every flushed header slot becomes durable.
	KindPFenceGlobal
	// KindPSync is the header fence: flushed header slots become durable.
	KindPSync
	// KindNTStore is a non-temporal line store of Len words at Addr: the
	// data bypasses the cache and needs only a later fence, no PWB.
	KindNTStore
	// KindCopy is a bulk replica copy of Len words into [0, Len) of
	// Region using regular stores (the copied lines still need PWBs).
	KindCopy
	// KindNTCopy is a bulk replica copy with non-temporal stores: the
	// copied lines need only a fence.
	KindNTCopy
	// KindHeaderStore is a store (or successful CAS) of header slot Addr;
	// Arg is the stored value.
	KindHeaderStore
	// KindPWBHeader is a persistence write-back of header slot Addr.
	KindPWBHeader
	// KindCrash is a simulated power failure (Pool.Crash): the cache
	// image is discarded and the checker forgets all pending state.
	KindCrash

	// Logical events (emitted by engine hook points).

	// KindPublish declares that words [Addr, Addr+Len) of Region must be
	// durable at this instant: every line of the range that was stored
	// must have been flushed (PWB/NT store) and fenced, in that order,
	// before this event. Arg is a Pub* label naming the publish site.
	KindPublish
	// KindHeaderPublish declares that header slots [Addr, Addr+Len) must
	// be durable at this instant, and — for Len >= 2 — that they were
	// stored in ascending slot order (the value-before-checksum rule of
	// CRC header pairs).
	KindHeaderPublish
	// KindCombineBegin / KindCombineEnd bracket one combining round of a
	// flat-combining engine (psim, cx, redo). Arg carries the round's
	// sequence/ticket; for KindCombineEnd, Arg is 1 when the round won
	// the consensus and 0 when it lost.
	KindCombineBegin
	KindCombineEnd
	// KindReplayBegin / KindReplayEnd bracket a log replay (redo's
	// physical-log catch-up, rockssim's WAL replay). Arg is the starting
	// (resp. reached) sequence number.
	KindReplayBegin
	KindReplayEnd
	// KindCurComb is a curComb transition: Arg is the packed new value.
	KindCurComb
	// KindIntentPublish is the coordinator's batch-intent status flip
	// becoming durable; Addr/Len cover the status word, Arg is the batch
	// sequence number. The checker treats the range like a KindPublish.
	KindIntentPublish
	// KindRollForward is a coordinator roll-forward of a surviving batch
	// intent during recovery; Arg is the batch sequence number.
	KindRollForward
	// KindRecoveryBegin / KindRecoveryEnd bracket an engine's recovery
	// (constructor-time adoption or replay of the persisted image).
	KindRecoveryBegin
	KindRecoveryEnd
	// KindReceipt is an annotation: a detectable operation committed with
	// its dedup receipt in the same transaction. Addr is the client id,
	// Arg the request sequence number.
	KindReceipt
	// KindDedupHit is an annotation: a detectable operation was skipped
	// because its receipt already existed (a retry of a committed request).
	// Addr is the client id, Arg the request sequence number.
	KindDedupHit
	// KindEpochSeal marks the buffered-durability persister sealing the
	// in-flight epoch: the commit-order prefix up to sequence Arg is about
	// to be coalesced, flushed and fenced as one group. Region is the
	// replica being sealed. Seals must carry non-decreasing Arg per pool.
	KindEpochSeal
	// KindWatermark marks the durable-epoch watermark advancing to
	// sequence Arg: the sealed prefix is now durable (header published).
	// A watermark must not exceed the last seal of its pool, and
	// watermarks must be non-decreasing per pool; both reset at a crash.
	KindWatermark
	// KindAlloc is an annotation from the allocator hot path: a block of
	// Length words was handed out at Addr (Arg is the arena). Emission is
	// a nil-check when tracing is off.
	KindAlloc
	// KindFree is the matching deallocation annotation: the block at Addr
	// returned to the allocator.
	KindFree

	kindCount // sentinel
)

var kindNames = [...]string{
	KindInvalid:       "invalid",
	KindStore:         "store",
	KindBulkStore:     "bulk-store",
	KindPWB:           "pwb",
	KindPFence:        "pfence",
	KindPFenceGlobal:  "pfence-global",
	KindPSync:         "psync",
	KindNTStore:       "ntstore",
	KindCopy:          "copy",
	KindNTCopy:        "ntcopy",
	KindHeaderStore:   "hdr-store",
	KindPWBHeader:     "hdr-pwb",
	KindCrash:         "crash",
	KindPublish:       "publish",
	KindHeaderPublish: "hdr-publish",
	KindCombineBegin:  "combine-begin",
	KindCombineEnd:    "combine-end",
	KindReplayBegin:   "replay-begin",
	KindReplayEnd:     "replay-end",
	KindCurComb:       "curcomb",
	KindIntentPublish: "intent-publish",
	KindRollForward:   "roll-forward",
	KindRecoveryBegin: "recovery-begin",
	KindRecoveryEnd:   "recovery-end",
	KindReceipt:       "receipt",
	KindDedupHit:      "dedup-hit",
	KindEpochSeal:     "epoch-seal",
	KindWatermark:     "watermark",
	KindAlloc:         "alloc",
	KindFree:          "free",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Publish labels (Event.Arg of KindPublish), naming the publish site so a
// violation message can say which protocol step lacked its flush or fence.
const (
	// PubHeap publishes a replica's used heap before its curComb/header
	// transition (psim, cx, redo).
	PubHeap uint64 = iota + 1
	// PubIntent publishes a coordinator batch-intent record (payload +
	// seq/len/CRC) before the status word flips to 1.
	PubIntent
	// PubStatus publishes a coordinator status/lastCommitted update.
	PubStatus
	// PubWAL publishes a WAL or journal record before its commit word.
	PubWAL
)

// PubLabel renders a publish label for messages.
func PubLabel(arg uint64) string {
	switch arg {
	case PubHeap:
		return "heap"
	case PubIntent:
		return "intent"
	case PubStatus:
		return "status"
	case PubWAL:
		return "wal"
	}
	return "range"
}

// Event is one trace record. Events are fixed-size values so the ring
// buffer never allocates on the hot path.
type Event struct {
	// Seq is the global capture sequence number (the ring slot claim):
	// the total order CheckOrdering replays.
	Seq uint64 `json:"seq"`
	// TS is the monotonic timestamp in nanoseconds since the tracer was
	// created (or last Reset).
	TS int64 `json:"ts"`
	// LSeq is the emitter-local sequence number: logical events carry a
	// per-thread-id counter (sessions are goroutine-pinned throughout
	// the repo, so this is a goroutine-local order); physical events
	// carry 0.
	LSeq uint64 `json:"lseq,omitempty"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// TID is the engine thread id for logical events, -1 when unknown.
	TID int16 `json:"tid"`
	// Pool identifies the pool within its failure domain (the index
	// assigned by Group.SetTracer; 0 for a lone pool).
	Pool int16 `json:"pool"`
	// Region is the region index, or -1 for header-domain and
	// pool-scoped events.
	Region int16 `json:"region"`
	// Addr is the word offset (region events) or slot index (header
	// events).
	Addr uint64 `json:"addr"`
	// Len is the word count of the range the event covers.
	Len uint64 `json:"len,omitempty"`
	// Arg is event-specific: stored value, publish label, sequence
	// number, or packed curComb.
	Arg uint64 `json:"arg,omitempty"`
}

// maxTIDs bounds the per-thread local sequence counters. Thread ids at or
// above the bound still trace correctly but share LSeq 0.
const maxTIDs = 256

type paddedCounter struct {
	c atomic.Uint64
	_ [7]uint64 // one counter per cache line
}

// Tracer is a lock-free fixed-size ring buffer of events. Writers claim a
// slot with one atomic add and write the event in place; the ring keeps the
// most recent events and counts the overwritten ones. Snapshot and Reset
// require quiescence (no concurrent Emit); Emit never blocks and never
// allocates.
type Tracer struct {
	ring  []Event
	mask  uint64
	next  atomic.Uint64
	start time.Time
	lseq  [maxTIDs]paddedCounter
}

// NewTracer creates a tracer whose ring holds at least size events
// (rounded up to a power of two, minimum 1024).
func NewTracer(size int) *Tracer {
	n := 1024
	for n < size {
		n *= 2
	}
	return &Tracer{ring: make([]Event, n), mask: uint64(n) - 1, start: time.Now()}
}

// Cap reports the ring capacity in events.
func (t *Tracer) Cap() int { return len(t.ring) }

// Emit appends e to the ring, stamping Seq, TS and (for events with a valid
// TID) LSeq. Safe for concurrent use.
func (t *Tracer) Emit(e Event) {
	i := t.next.Add(1) - 1
	e.Seq = i
	e.TS = int64(time.Since(t.start))
	if e.TID >= 0 && int(e.TID) < maxTIDs {
		e.LSeq = t.lseq[e.TID].c.Add(1)
	}
	t.ring[i&t.mask] = e
}

// Len reports the number of events emitted since creation or Reset
// (including any that have been overwritten).
func (t *Tracer) Len() uint64 { return t.next.Load() }

// Reset discards all captured events and restarts the clock and local
// sequence counters. The tracer must be quiescent.
func (t *Tracer) Reset() {
	t.next.Store(0)
	t.start = time.Now()
	for i := range t.lseq {
		t.lseq[i].c.Store(0)
	}
}

// Snapshot copies the captured events out in emission order. If the ring
// wrapped, only the most recent Cap() events are returned and Dropped
// counts the overwritten prefix. The tracer must be quiescent.
func (t *Tracer) Snapshot() Trace {
	n := t.next.Load()
	size := uint64(len(t.ring))
	var tr Trace
	lo := uint64(0)
	if n > size {
		tr.Dropped = n - size
		lo = n - size
	}
	tr.Events = make([]Event, 0, n-lo)
	for i := lo; i < n; i++ {
		tr.Events = append(tr.Events, t.ring[i&t.mask])
	}
	return tr
}

// Trace is an immutable capture of a tracer's history.
type Trace struct {
	// Dropped counts events overwritten by ring wrap-around before the
	// snapshot. CheckOrdering refuses a trace with Dropped > 0.
	Dropped uint64  `json:"dropped"`
	Events  []Event `json:"events"`
}

// PhysCounts are the persistence-instruction totals reconstructed from a
// trace, field-for-field comparable with pmem.StatsSnapshot — the
// trace/stats parity cross-check.
type PhysCounts struct {
	PWBs        uint64
	PFences     uint64
	PSyncs      uint64
	NTStores    uint64
	WordsCopied uint64
}

// Counts folds the physical events of the trace into instruction totals,
// mirroring how internal/pmem counts them: PWBs include header write-backs,
// fences include global fences, one NT store per NTStoreLine call and one
// per line of an NT copy, and copied words sum over both copy flavors.
func (tr Trace) Counts() PhysCounts {
	var c PhysCounts
	for _, e := range tr.Events {
		switch e.Kind {
		case KindPWB, KindPWBHeader:
			c.PWBs++
		case KindPFence, KindPFenceGlobal:
			c.PFences++
		case KindPSync:
			c.PSyncs++
		case KindNTStore:
			c.NTStores++
		case KindCopy:
			c.WordsCopied += e.Len
		case KindNTCopy:
			c.NTStores += (e.Len + WordsPerLine - 1) / WordsPerLine
			c.WordsCopied += e.Len
		}
	}
	return c
}

// KindCounts tallies events per kind (for summaries and obsdump).
func (tr Trace) KindCounts() map[Kind]uint64 {
	m := make(map[Kind]uint64)
	for _, e := range tr.Events {
		m[e.Kind]++
	}
	return m
}
