package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// String renders an event as one obsdump line.
func (e Event) String() string {
	loc := ""
	switch {
	case e.Region >= 0 && e.Len > 1:
		loc = fmt.Sprintf(" p%d/r%d [%d,%d)", e.Pool, e.Region, e.Addr, e.Addr+e.Len)
	case e.Region >= 0:
		loc = fmt.Sprintf(" p%d/r%d @%d", e.Pool, e.Region, e.Addr)
	case e.Kind == KindHeaderStore || e.Kind == KindPWBHeader || e.Kind == KindHeaderPublish:
		if e.Len > 1 {
			loc = fmt.Sprintf(" p%d hdr[%d,%d)", e.Pool, e.Addr, e.Addr+e.Len)
		} else {
			loc = fmt.Sprintf(" p%d hdr[%d]", e.Pool, e.Addr)
		}
	default:
		loc = fmt.Sprintf(" p%d", e.Pool)
	}
	tid := ""
	if e.TID >= 0 {
		tid = fmt.Sprintf(" tid=%d/%d", e.TID, e.LSeq)
	}
	arg := ""
	switch e.Kind {
	case KindPublish:
		arg = " " + PubLabel(e.Arg)
	case KindStore, KindHeaderStore, KindCurComb:
		arg = fmt.Sprintf(" =%#x", e.Arg)
	case KindCombineBegin, KindCombineEnd, KindReplayBegin, KindReplayEnd,
		KindIntentPublish, KindRollForward:
		arg = fmt.Sprintf(" #%d", e.Arg)
	}
	return fmt.Sprintf("%8d %12s %-14s%s%s%s",
		e.Seq, time.Duration(e.TS).Round(time.Nanosecond), e.Kind, loc, tid, arg)
}

// WriteJSON serializes the trace to w as one JSON object.
func (tr Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// WriteFile writes the trace to path as JSON.
func (tr Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTrace parses a trace previously written by WriteJSON.
func ReadTrace(r io.Reader) (Trace, error) {
	var tr Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tr); err != nil {
		return Trace{}, fmt.Errorf("obs: parsing trace: %w", err)
	}
	return tr, nil
}

// ReadTraceFile parses the trace file at path.
func ReadTraceFile(path string) (Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return Trace{}, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// Summary writes a per-kind event tally, the reconstructed instruction
// counts, and the drop count — the obsdump overview block.
func (tr Trace) Summary(w io.Writer) {
	fmt.Fprintf(w, "events: %d  dropped: %d\n", len(tr.Events), tr.Dropped)
	kinds := tr.KindCounts()
	order := make([]Kind, 0, len(kinds))
	for k := range kinds {
		order = append(order, k)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, k := range order {
		fmt.Fprintf(w, "  %-16s %d\n", k, kinds[k])
	}
	c := tr.Counts()
	fmt.Fprintf(w, "reconstructed counters: pwbs=%d pfences=%d psyncs=%d ntstores=%d wordsCopied=%d\n",
		c.PWBs, c.PFences, c.PSyncs, c.NTStores, c.WordsCopied)
}
