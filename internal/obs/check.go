package obs

import (
	"fmt"
	"sort"
)

// CheckOrdering rule identifiers (Violation.Rule).
const (
	// RuleUnflushed: a published range contains a line whose latest store
	// was never written back (no PWB / NT store) before the publish.
	RuleUnflushed = "publish-unflushed"
	// RuleUnfenced: a published range contains a line that was written
	// back but whose write-back was not covered by a fence before the
	// publish.
	RuleUnfenced = "publish-unfenced"
	// RuleHeaderUnsynced: a published header slot's latest store was not
	// made durable (missing PWBHeader, missing PSync, or stored again
	// after its last write-back) before the publish.
	RuleHeaderUnsynced = "header-unsynced"
	// RuleCRCOrder: the slots of a published header pair (value, tag)
	// were stored out of ascending slot order, so a crash between the
	// two stores could persist a tag that validates a stale value.
	RuleCRCOrder = "header-crc-order"
	// RuleSeqOrder: the trace's capture sequence numbers are not
	// strictly increasing — the trace was reordered or duplicated and
	// no ordering verdict on it is sound.
	RuleSeqOrder = "seq-order"
	// RuleEpochSealOrder: a buffered-durability epoch seal regressed — the
	// persister sealed an epoch below one it already sealed since the last
	// crash, so "sealed" no longer names a prefix of the commit order.
	RuleEpochSealOrder = "epoch-seal-order"
	// RuleWatermarkOrder: the durable-epoch watermark moved backwards. The
	// watermark is the recovery contract ("everything at or below me
	// survives"); a regression un-promises durability already granted.
	RuleWatermarkOrder = "watermark-order"
	// RuleWatermarkBeyondSeal: the watermark advanced past the last sealed
	// epoch — durability was announced for commits whose redo records were
	// never flushed and fenced.
	RuleWatermarkBeyondSeal = "watermark-beyond-seal"
)

// Violation is one ordering-rule failure found by CheckOrdering.
type Violation struct {
	// Event is the publish-site (or malformed) event that exposed the
	// violation.
	Event Event
	// Rule is one of the Rule* identifiers.
	Rule string
	// Msg is a human-readable account naming the offending range and
	// the missing step.
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("seq %d [%s] %s: %s", v.Event.Seq, v.Event.Kind, v.Rule, v.Msg)
}

// CheckOptions tunes CheckOrdering.
type CheckOptions struct {
	// RelaxedHeaders weakens the header-durability rule for concurrent
	// traces: with several threads racing through ensurePersisted, thread
	// B's header store can legally land between thread A's PSync and A's
	// publish event, so the strict "latest store covered" rule would
	// false-positive. Relaxed mode flags a published slot only when no
	// store to it has become durable since the last crash. Single-threaded
	// traces should use strict (zero value) checking.
	RelaxedHeaders bool
	// MaxViolations caps the report (0 = DefaultMaxViolations).
	MaxViolations int
}

// DefaultMaxViolations bounds a CheckOrdering report.
const DefaultMaxViolations = 64

// maxRangeWords rejects implausibly huge event ranges (corrupt or fuzzed
// traces) instead of spending unbounded work on them.
const maxRangeWords = 1 << 28

type lineKey struct {
	pool, region int16
	line         uint64
}

// lineState tracks one cache line through the store → write-back → fence
// pipeline, hardware-faithfully: a write-back snapshots the line's current
// store (dirty), and a fence makes snapshots durable. A store after the
// write-back but before the fence is NOT covered — the simulator is more
// lenient there (it persists the at-fence value), so the checker catches
// ordering bugs the simulator can't.
type lineState struct {
	dirty   uint64 // seq of latest store into the line (1-based; 0 = never)
	flushed uint64 // dirty as of the latest write-back
	durable uint64 // flushed as of the latest covering fence
}

type hdrKey struct {
	pool int16
	slot uint64
}

type hdrState struct {
	lastStore    uint64 // seq of latest store to the slot
	flushedStore uint64 // lastStore as of the latest PWBHeader
	covered      uint64 // flushedStore as of the latest PSync / global fence
	baseline     uint64 // covered as of the last crash (relaxed-mode floor)
}

// epochState tracks one pool's buffered-durability progress: the last sealed
// epoch and the durable watermark must each be non-decreasing, and the
// watermark can never pass the seal.
type epochState struct {
	lastSeal      uint64
	lastWatermark uint64
}

// checker replays a trace event-by-event.
type checker struct {
	lines      map[lineKey]*lineState
	hdrs       map[hdrKey]*hdrState
	epochs     map[int16]*epochState
	opts       CheckOptions
	violations []Violation
	truncated  bool
}

// CheckOrdering replays a captured trace and verifies the
// durable-linearizability ordering rules:
//
//   - Every line of a KindPublish / KindIntentPublish range whose latest
//     store precedes the publish was written back (PWB or NT store) and
//     then covered by a fence, in that order, before the publish.
//   - Every slot of a KindHeaderPublish range had its latest store written
//     back (PWBHeader) and synced (PSync or global fence) before the
//     publish — and a store issued after the write-back is not covered,
//     even if a later fence ran (the hardware-faithful rule).
//   - The slots of a multi-slot KindHeaderPublish (a value/CRC-tag pair)
//     were stored in ascending slot order.
//   - Buffered-durability progress is monotone per pool: KindEpochSeal
//     epochs never regress, KindWatermark never regresses and never passes
//     the last seal.
//
// A crash clears all pending obligations of its pool: stores that were
// lost with the cache owe nothing, and the epoch seal falls back to the
// durable watermark (a sealed-but-unpublished epoch died with the cache).
//
// The returned error reports structural problems that make any verdict
// unsound — a wrapped ring (Trace.Dropped > 0) or an implausibly huge
// event range; violations of the rules themselves come back in the slice.
// CheckOrdering never panics on malformed traces (fuzzed input included).
func CheckOrdering(tr Trace, opts CheckOptions) ([]Violation, error) {
	if tr.Dropped > 0 {
		return nil, fmt.Errorf("obs: trace dropped %d events to ring wrap-around; ordering verdicts on a partial history are unsound (enlarge the tracer ring)", tr.Dropped)
	}
	c := &checker{
		lines:  make(map[lineKey]*lineState),
		hdrs:   make(map[hdrKey]*hdrState),
		epochs: make(map[int16]*epochState),
		opts:   opts,
	}
	if c.opts.MaxViolations <= 0 {
		c.opts.MaxViolations = DefaultMaxViolations
	}
	var prevSeq uint64
	havePrev := false
	for _, e := range tr.Events {
		if e.Len > maxRangeWords {
			return c.violations, fmt.Errorf("obs: event seq %d (%s) covers %d words — implausible range, refusing trace", e.Seq, e.Kind, e.Len)
		}
		if havePrev && e.Seq <= prevSeq {
			c.report(e, RuleSeqOrder, fmt.Sprintf("capture seq %d does not follow %d; trace reordered or duplicated", e.Seq, prevSeq))
		}
		prevSeq, havePrev = e.Seq, true
		c.step(e)
		if c.truncated {
			break
		}
	}
	return c.violations, nil
}

func (c *checker) report(e Event, rule, msg string) {
	if len(c.violations) >= c.opts.MaxViolations {
		c.truncated = true
		return
	}
	c.violations = append(c.violations, Violation{Event: e, Rule: rule, Msg: msg})
}

func (c *checker) step(e Event) {
	s := e.Seq + 1 // 1-based so zero means "never"
	switch e.Kind {
	case KindStore, KindBulkStore:
		c.markDirty(e, s, false)
	case KindCopy:
		c.markDirty(e, s, false)
	case KindNTStore, KindNTCopy:
		c.markDirty(e, s, true)
	case KindPWB:
		ls := c.line(e.Pool, e.Region, e.Addr/WordsPerLine)
		ls.flushed = ls.dirty
	case KindPFence:
		for k, ls := range c.lines {
			if k.pool == e.Pool && k.region == e.Region {
				ls.durable = ls.flushed
			}
		}
	case KindPFenceGlobal:
		for k, ls := range c.lines {
			if k.pool == e.Pool {
				ls.durable = ls.flushed
			}
		}
		for k, hs := range c.hdrs {
			if k.pool == e.Pool {
				hs.covered = hs.flushedStore
			}
		}
	case KindPSync:
		for k, hs := range c.hdrs {
			if k.pool == e.Pool {
				hs.covered = hs.flushedStore
			}
		}
	case KindHeaderStore:
		c.hdr(e.Pool, e.Addr).lastStore = s
	case KindPWBHeader:
		hs := c.hdr(e.Pool, e.Addr)
		hs.flushedStore = hs.lastStore
	case KindEpochSeal:
		es := c.epoch(e.Pool)
		if e.Arg < es.lastSeal {
			c.report(e, RuleEpochSealOrder, fmt.Sprintf(
				"pool %d sealed epoch %d after already sealing %d — the sealed set is no longer a commit-order prefix",
				e.Pool, e.Arg, es.lastSeal))
		} else {
			es.lastSeal = e.Arg
		}
	case KindWatermark:
		es := c.epoch(e.Pool)
		if e.Arg < es.lastWatermark {
			c.report(e, RuleWatermarkOrder, fmt.Sprintf(
				"pool %d watermark regressed from %d to %d — durability already granted was revoked",
				e.Pool, es.lastWatermark, e.Arg))
		}
		if e.Arg > es.lastSeal {
			c.report(e, RuleWatermarkBeyondSeal, fmt.Sprintf(
				"pool %d watermark advanced to %d but the last sealed epoch is %d — unsealed commits announced durable",
				e.Pool, e.Arg, es.lastSeal))
		}
		if e.Arg > es.lastWatermark {
			es.lastWatermark = e.Arg
		}
	case KindCrash:
		// The cache image is gone: pending stores owe nothing anymore,
		// and relaxed header checking restarts from here.
		for k, ls := range c.lines {
			if k.pool == e.Pool {
				ls.dirty, ls.flushed = ls.durable, ls.durable
			}
		}
		for k, hs := range c.hdrs {
			if k.pool == e.Pool {
				hs.lastStore, hs.flushedStore = hs.covered, hs.covered
				hs.baseline = hs.covered
			}
		}
		// A sealed-but-unpublished epoch dies with the cache: after
		// recovery the persister restarts from the durable watermark, and
		// legally re-seals epochs below the pre-crash seal.
		if es := c.epochs[e.Pool]; es != nil {
			es.lastSeal = es.lastWatermark
		}
	case KindPublish, KindIntentPublish:
		c.checkPublish(e)
	case KindHeaderPublish:
		c.checkHeaderPublish(e)
	}
}

func (c *checker) line(pool, region int16, line uint64) *lineState {
	k := lineKey{pool, region, line}
	ls := c.lines[k]
	if ls == nil {
		ls = &lineState{}
		c.lines[k] = ls
	}
	return ls
}

func (c *checker) epoch(pool int16) *epochState {
	es := c.epochs[pool]
	if es == nil {
		es = &epochState{}
		c.epochs[pool] = es
	}
	return es
}

func (c *checker) hdr(pool int16, slot uint64) *hdrState {
	k := hdrKey{pool, slot}
	hs := c.hdrs[k]
	if hs == nil {
		hs = &hdrState{}
		c.hdrs[k] = hs
	}
	return hs
}

// markDirty records a store over [Addr, Addr+Len); non-temporal stores
// bypass the cache, so they count as already written back.
func (c *checker) markDirty(e Event, s uint64, nonTemporal bool) {
	if e.Len == 0 {
		return
	}
	first := e.Addr / WordsPerLine
	last := (e.Addr + e.Len - 1) / WordsPerLine
	for line := first; line <= last; line++ {
		ls := c.line(e.Pool, e.Region, line)
		ls.dirty = s
		if nonTemporal {
			ls.flushed = s
		}
	}
}

// checkPublish asserts every stored line of the published range is durable.
func (c *checker) checkPublish(e Event) {
	if e.Len == 0 {
		return
	}
	first := e.Addr / WordsPerLine
	last := (e.Addr + e.Len - 1) / WordsPerLine
	label := PubLabel(e.Arg)
	if e.Kind == KindIntentPublish {
		label = "intent-status"
	}
	// Iterate tracked lines rather than the range: the range can span the
	// whole used heap while only a few lines ever stored.
	type bad struct {
		line uint64
		ls   *lineState
	}
	var bads []bad
	for k, ls := range c.lines {
		if k.pool != e.Pool || k.region != e.Region || k.line < first || k.line > last {
			continue
		}
		if ls.dirty > ls.durable {
			bads = append(bads, bad{k.line, ls})
		}
	}
	sort.Slice(bads, func(i, j int) bool { return bads[i].line < bads[j].line })
	for _, b := range bads {
		if b.ls.dirty > b.ls.flushed {
			c.report(e, RuleUnflushed, fmt.Sprintf(
				"%s publish of pool %d region %d words [%d,%d) covers line %d whose store (seq %d) was never written back",
				label, e.Pool, e.Region, e.Addr, e.Addr+e.Len, b.line, b.ls.dirty-1))
		} else {
			c.report(e, RuleUnfenced, fmt.Sprintf(
				"%s publish of pool %d region %d words [%d,%d) covers line %d whose write-back (of store seq %d) was not fenced",
				label, e.Pool, e.Region, e.Addr, e.Addr+e.Len, b.line, b.ls.dirty-1))
		}
		if c.truncated {
			return
		}
	}
}

// checkHeaderPublish asserts every published slot's latest store is synced,
// and multi-slot publishes (value/CRC pairs) were stored in slot order.
func (c *checker) checkHeaderPublish(e Event) {
	if e.Len == 0 {
		return
	}
	var prev *hdrState
	var prevSlot uint64
	for slot := e.Addr; slot < e.Addr+e.Len; slot++ {
		hs := c.hdr(e.Pool, slot)
		if c.opts.RelaxedHeaders {
			if hs.lastStore > hs.covered && hs.covered <= hs.baseline {
				c.report(e, RuleHeaderUnsynced, fmt.Sprintf(
					"published header slot %d of pool %d stored (seq %d) but no store to it became durable since the last crash",
					slot, e.Pool, hs.lastStore-1))
			}
		} else if hs.lastStore > hs.covered {
			switch {
			case hs.lastStore > hs.flushedStore && hs.flushedStore == hs.covered:
				c.report(e, RuleHeaderUnsynced, fmt.Sprintf(
					"published header slot %d of pool %d: store (seq %d) never written back (missing PWBHeader)",
					slot, e.Pool, hs.lastStore-1))
			case hs.lastStore > hs.flushedStore:
				c.report(e, RuleHeaderUnsynced, fmt.Sprintf(
					"published header slot %d of pool %d: store (seq %d) issued after the slot's last write-back — a fence cannot cover it",
					slot, e.Pool, hs.lastStore-1))
			default:
				c.report(e, RuleHeaderUnsynced, fmt.Sprintf(
					"published header slot %d of pool %d: write-back (of store seq %d) never synced (missing PSync)",
					slot, e.Pool, hs.lastStore-1))
			}
		}
		if prev != nil && prev.lastStore > 0 && hs.lastStore > 0 && prev.lastStore > hs.lastStore {
			c.report(e, RuleCRCOrder, fmt.Sprintf(
				"header pair of pool %d stored out of order: slot %d (seq %d) after slot %d (seq %d) — a crash between the stores persists a tag validating a stale value",
				e.Pool, prevSlot, prev.lastStore-1, slot, hs.lastStore-1))
		}
		prev, prevSlot = hs, slot
		if c.truncated {
			return
		}
	}
}
