package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestBucketMonotonic(t *testing.T) {
	// bucketOf must be monotone and bucketLow must be its left inverse:
	// bucketLow(bucketOf(v)) <= v for all v, with <=6% relative error.
	prev := -1
	for _, v := range []uint64{0, 1, 2, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, 1 << 40, 1<<63 + 1, ^uint64(0)} {
		idx := bucketOf(v)
		if idx < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d", v, idx, prev)
		}
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range [0,%d)", v, idx, histBuckets)
		}
		low := bucketLow(idx)
		if low > v {
			t.Fatalf("bucketLow(bucketOf(%d)) = %d > %d", v, low, v)
		}
		if v >= 1<<histSubBits {
			if err := float64(v-low) / float64(v); err > 1.0/float64(int(1)<<histSubBits) {
				t.Errorf("value %d relative error %.3f too large", v, err)
			}
		}
		prev = idx
	}
}

func TestBucketLowRoundTripsExhaustive(t *testing.T) {
	for idx := 0; idx < histBuckets; idx++ {
		if got := bucketOf(bucketLow(idx)); got != idx {
			t.Fatalf("bucketOf(bucketLow(%d)) = %d", idx, got)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	// Bucket lower bounds underestimate by <=6%; allow 10% slack.
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.50, 500 * time.Microsecond}, {0.90, 900 * time.Microsecond}, {0.99, 990 * time.Microsecond}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got > c.want || float64(got) < 0.90*float64(c.want) {
			t.Errorf("Quantile(%v) = %v, want within [90%%, 100%%] of %v", c.q, got, c.want)
		}
	}
	if h.Max() != 1000*time.Microsecond {
		t.Errorf("Max = %v", h.Max())
	}
	mean := h.Mean()
	if mean < 480*time.Microsecond || mean > 520*time.Microsecond {
		t.Errorf("Mean = %v, want ~500.5us", mean)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatalf("nil histogram should read as empty")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil Snapshot = %+v", s)
	}
	var ls *LatencySet
	if ls.Snapshot() != nil {
		t.Fatalf("nil LatencySet.Snapshot should be nil")
	}
}

func TestHistogramNegativeIgnored(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Count() != 0 {
		t.Fatalf("negative duration recorded")
	}
}

func TestObserveNoAlloc(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(200, func() { h.Observe(123 * time.Nanosecond) }); n != 0 {
		t.Fatalf("Observe allocates %v times per call, want 0", n)
	}
}

func TestHistogramExpvarJSON(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Microsecond)
	var snap HistSnapshot
	if err := json.Unmarshal([]byte(h.String()), &snap); err != nil {
		t.Fatalf("String() is not valid JSON: %v", err)
	}
	if snap.Count != 1 || snap.MaxNs != int64(10*time.Microsecond) {
		t.Errorf("decoded snapshot = %+v", snap)
	}

	var ls LatencySet
	ls.Op.Observe(time.Millisecond)
	var m map[string]HistSnapshot
	if err := json.Unmarshal([]byte(ls.String()), &m); err != nil {
		t.Fatalf("LatencySet.String() invalid JSON: %v", err)
	}
	if m["op"].Count != 1 || m["commit"].Count != 0 {
		t.Errorf("decoded set = %+v", m)
	}
}

func TestHistSnapshotFprint(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	line := h.Snapshot().Fprint("op")
	for _, want := range []string{"op", "n=1", "p50=", "p99=", "max="} {
		if !strings.Contains(line, want) {
			t.Errorf("Fprint line %q missing %q", line, want)
		}
	}
}
