package obs

import "testing"

// fuzzBase builds a minimal correct trace in which every flush and fence is
// load-bearing: three published ranges (two region lines, one header slot),
// each durable through exactly one PWB/NT chain and one fence. Dropping any
// single flush or fence event therefore MUST produce a violation.
func fuzzBase() []Event {
	b := new(tb)
	b.store(0, 3, 7).pwb(0, 3).pfence(0).publish(0, 0, 8)
	b.store(1, 8, 5).pwb(1, 8).pfence(1).publish(1, 8, 8)
	b.hstore(0, 1).hpwb(0).psync().hpublish(0, 1)
	return b.evs
}

// flushFenceKinds are the events whose removal from fuzzBase must be caught.
var flushFenceKinds = map[Kind]bool{
	KindPWB: true, KindPWBHeader: true,
	KindPFence: true, KindPFenceGlobal: true, KindPSync: true,
}

// FuzzTraceOrdering mutates a known-good trace — dropping, duplicating and
// reordering events — and asserts three properties of CheckOrdering:
//
//  1. it never panics, whatever garbage the mutation produces;
//  2. it is deterministic (same trace, same verdict);
//  3. soundness on the seeded corpus: any mutation consisting purely of
//     drops of flush/fence events is detected, because every such event in
//     the base trace guards a later publish.
func FuzzTraceOrdering(f *testing.F) {
	base := fuzzBase()
	for i := range base {
		f.Add([]byte{0, byte(i)}) // pure single drops, one per event
	}
	f.Add([]byte{0, 1, 0, 1})       // drop two in a row (indices shift)
	f.Add([]byte{1, 2, 1, 5})       // duplicates
	f.Add([]byte{2, 0, 2, 9, 1, 4}) // swaps + duplicate
	f.Add([]byte{2, 1, 0, 2, 1, 0, 2, 7, 0, 10})

	f.Fuzz(func(t *testing.T, data []byte) {
		evs := append([]Event(nil), fuzzBase()...)
		onlyDrops := true
		droppedNeeded, droppedOther := false, false
		for i := 0; i+1 < len(data) && i < 64; i += 2 {
			if len(evs) == 0 {
				break
			}
			op, idx := data[i]%3, int(data[i+1])%len(evs)
			switch op {
			case 0: // drop
				if flushFenceKinds[evs[idx].Kind] {
					droppedNeeded = true
				} else {
					droppedOther = true
				}
				evs = append(evs[:idx], evs[idx+1:]...)
			case 1: // duplicate in place
				onlyDrops = false
				dup := evs[idx]
				evs = append(evs[:idx+1], append([]Event{dup}, evs[idx+1:]...)...)
			case 2: // swap adjacent
				onlyDrops = false
				if idx+1 < len(evs) {
					evs[idx], evs[idx+1] = evs[idx+1], evs[idx]
				}
			}
		}
		// Restamp capture order: the mutations model protocol bugs, not a
		// corrupted ring (seq-order damage is covered by the table test).
		for i := range evs {
			evs[i].Seq = uint64(i)
		}
		tr := Trace{Events: evs}
		vs1, err1 := CheckOrdering(tr, CheckOptions{})
		vs2, err2 := CheckOrdering(tr, CheckOptions{})
		if (err1 == nil) != (err2 == nil) || len(vs1) != len(vs2) {
			t.Fatalf("nondeterministic verdict: %v/%v vs %v/%v", vs1, err1, vs2, err2)
		}
		for i := range vs1 {
			if vs1[i].Rule != vs2[i].Rule || vs1[i].Event.Seq != vs2[i].Event.Seq {
				t.Fatalf("nondeterministic violation %d: %v vs %v", i, vs1[i], vs2[i])
			}
		}
		if onlyDrops && droppedNeeded && !droppedOther && err1 == nil && len(vs1) == 0 {
			t.Fatalf("dropping a flush/fence event went undetected: %v", evs)
		}
	})
}
