// Package onefile implements the OneFile baseline (Ramalhete, Correia,
// Felber, Cohen — DSN 2019): a wait-free persistent transactional memory
// with a single data replica, a persistent redo log, and two fences per
// update transaction. It is the main wait-free comparator in the paper's
// evaluation (Figs. 4–6 and Table 1).
//
// The structure of the original is preserved where it drives the evaluation:
//
//   - Update transactions are serialized. There are no per-thread replicas
//     and never a copy; instead the winner of the sequence CAS executes
//     every announced transaction (helping gives wait freedom), buffering
//     stores in a volatile write-set (loads are interposed through it).
//   - At commit, the write-set is persisted to a log slot, one fence orders it, the commit marker is persisted with a
//     second fence, and only then are the stores applied in place, one pwb
//     per modified cache line. The in-place writes of transaction K become
//     durable at transaction K+1's first fence; recovery replays the log of
//     the last committed transaction, which is always still intact.
//   - Read-only transactions are wait-free and run concurrently with
//     updates using sequence validation on every interposed load (the
//     original's word timestamps), falling back to announcement after
//     MaxReadTries.
//
// Deviation (documented in DESIGN.md): the original tags each word with its
// transaction sequence via double-word CAS; this model reaches the same
// recovery guarantee with two alternating persistent log slots, preserving the
// "roughly one flush per modified word plus log flushes, two fences" cost.
package onefile

import (
	"time"

	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/palloc"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// Header slots.
const (
	slotCommit = 0 // last committed sequence number
	slotMagic  = 1 // formatted marker
)

const magic = 0x6f6e6566696c6531 // "onefile1"

// desc is an announced transaction.
type desc struct {
	fn       func(ptm.Mem) uint64
	readOnly bool
	result   atomic.Uint64
	applied  atomic.Bool
}

// errRetryRead aborts an optimistic read whose snapshot was invalidated.
var errRetryRead = fmt.Errorf("onefile: read snapshot invalidated")

// OneFile is the PTM engine. The pool must have exactly 2 regions: region 0
// holds the data heap, region 1 the redo-log slots.
type OneFile struct {
	cfg  Config
	pool *pmem.Pool
	data *pmem.Region
	logs *pmem.Region
	seq  atomic.Uint64 // even = quiescent, odd = combining in progress
	reqs []atomic.Pointer[desc]

	// Winner-only transaction state.
	wsAddrs []uint64
	wsVals  map[uint64]uint64
	dirty   []uint64
}

// Config parameterizes OneFile.
type Config struct {
	Threads      int
	MaxReadTries int // default 4
	Profile      *ptm.Profile
}

// New creates (or recovers) a OneFile instance over pool.
func New(pool *pmem.Pool, cfg Config) *OneFile {
	if cfg.Threads <= 0 {
		panic("onefile: Threads must be positive")
	}
	if pool.Regions() != 2 {
		panic("onefile: pool must have exactly 2 regions (data + logs)")
	}
	if cfg.MaxReadTries == 0 {
		cfg.MaxReadTries = 4
	}
	o := &OneFile{
		cfg:    cfg,
		pool:   pool,
		data:   pool.Region(0),
		logs:   pool.Region(1),
		reqs:   make([]atomic.Pointer[desc], cfg.Threads),
		wsVals: make(map[uint64]uint64),
	}
	pool.TraceEvent(obs.KindRecoveryBegin, -1, -1, 0, 0, 0)
	if pool.PersistedHeader(slotMagic) == magic {
		o.recover()
	} else {
		palloc.Format(initMem{o.data}, pool.RegionWords())
		meta := palloc.MetaWords(initMem{o.data})
		o.data.FlushRange(0, meta)
		o.data.PFence()
		pool.TraceEvent(obs.KindPublish, -1, 0, 0, meta, obs.PubHeap)
		pool.HeaderStore(slotCommit, 0)
		pool.HeaderStore(slotMagic, magic)
		pool.PWBHeader(slotCommit)
		pool.PWBHeader(slotMagic)
		pool.PSync()
		pool.TraceEvent(obs.KindHeaderPublish, -1, -1, slotCommit, 2, 0)
	}
	pool.TraceEvent(obs.KindRecoveryEnd, -1, -1, 0, 0, 0)
	return o
}

// logCRC checksums a log slot's committed fields (seq, size, entries); the
// checksum word certifies that a slot claiming the committed sequence really
// is the committed log and not a stale slot whose header happened to decay
// (or be corrupted) into a matching value.
func logCRC(seq, size uint64, entries []uint64) uint64 {
	fields := make([]uint64, 0, 2+len(entries))
	fields = append(fields, seq, size)
	fields = append(fields, entries...)
	return pmem.ChecksumWords(fields...)
}

// recover replays the redo log of the last committed transaction, whose
// in-place writes may not have been durable at the crash.
//
// The three phases run in an order that keeps recovery re-entrant under a
// second crash at any PM instruction:
//
//  1. replay the committed log into the data region and fence — rerunnable,
//     the log is only read;
//  2. durably clear both log headers — once the replayed data is fenced the
//     logs are dead weight, and the new era reuses small sequence numbers,
//     so a leftover log claiming one of them would be replayed after a
//     later crash;
//  3. durably reset the commit marker, opening the new era.
//
// A crash between 2 and 3 leaves commit = K with no matching log; re-entry
// skips the replay (the data is already durable from phase 1's fence) and
// repeats phases 2–3.
func (o *OneFile) recover() {
	commit := o.pool.HeaderLoad(slotCommit)
	halfWords := o.logs.Words() / 2
	if commit != 0 {
		for half := uint64(0); half < 2; half++ {
			base := half * halfWords
			if o.logs.Load(base) != commit {
				continue
			}
			size := o.logs.Load(base + 1)
			if 3+2*size > halfWords {
				panic(pmem.Corruptf("onefile", "committed log claims %d entries, slot holds %d words", size, halfWords))
			}
			entries := make([]uint64, 2*size)
			for k := range entries {
				entries[k] = o.logs.Load(base + 3 + uint64(k))
			}
			if o.logs.Load(base+2) != logCRC(commit, size, entries) {
				panic(pmem.Corruptf("onefile", "committed log %d fails its checksum", commit))
			}
			o.pool.TraceEvent(obs.KindReplayBegin, -1, o.logs.Index(), base, 3+2*size, commit)
			for k := uint64(0); k < size; k++ {
				addr, val := entries[2*k], entries[2*k+1]
				if addr >= o.data.Words() {
					panic(pmem.Corruptf("onefile", "committed log writes address %d outside the data region", addr))
				}
				o.data.Store(addr, val)
				o.data.PWB(addr)
			}
			o.data.PFence()
			if o.pool.Traced() {
				// The replayed addresses came out of the log — pure runtime
				// data; publishing the whole region is sound because replay
				// is the only writer since the crash.
				o.pool.TraceEvent(obs.KindReplayEnd, -1, o.data.Index(), 0, 0, commit)
				o.pool.TraceEvent(obs.KindPublish, -1, o.data.Index(), 0, o.data.Words(), obs.PubHeap)
			}
			break
		}
	}
	for half := uint64(0); half < 2; half++ {
		base := half * halfWords
		o.logs.Store(base, 0)
		o.logs.PWB(base)
	}
	o.logs.PFence()
	o.pool.TraceEvent(obs.KindPublish, -1, o.logs.Index(), 0, o.logs.Words(), obs.PubWAL)
	// New era: restart sequence numbering so volatile seq matches.
	o.pool.HeaderStore(slotCommit, 0)
	o.pool.PWBHeader(slotCommit)
	o.pool.PSync()
	o.pool.TraceEvent(obs.KindHeaderPublish, -1, -1, slotCommit, 1, 0)
}

// StaleRanges reports the log halves that the committed state does not
// reach — every half whose persisted sequence word differs from the commit
// marker. The corruption sweep flips bits there; the checksum keeps a
// decayed stale slot from impersonating the committed log.
func StaleRanges(pool *pmem.Pool) []pmem.Range {
	logs := pool.Region(1)
	commit := pool.PersistedHeader(slotCommit)
	halfWords := logs.Words() / 2
	var ranges []pmem.Range
	for half := uint64(0); half < 2; half++ {
		base := half * halfWords
		if commit == 0 || logs.PersistedLoad(base) != commit {
			ranges = append(ranges, pmem.Range{Region: 1, Start: base, Words: halfWords})
		}
	}
	return ranges
}

// MaxThreads implements ptm.PTM.
func (o *OneFile) MaxThreads() int { return o.cfg.Threads }

// Name implements ptm.PTM.
func (o *OneFile) Name() string { return "OneFile" }

// Properties implements ptm.PTM.
func (o *OneFile) Properties() ptm.Properties {
	return ptm.Properties{
		Log:         ptm.PersistentPhysical,
		Progress:    ptm.WaitFree,
		FencesPerTx: "2",
		Replicas:    "1",
	}
}

// Update implements ptm.PTM.
func (o *OneFile) Update(tid int, fn func(ptm.Mem) uint64) uint64 {
	txStart := now(o.cfg.Profile)
	d := &desc{fn: fn}
	o.reqs[tid].Store(d)
	for {
		if d.applied.Load() {
			o.cfg.Profile.AddTx(since(o.cfg.Profile, txStart))
			return d.result.Load()
		}
		s := o.seq.Load()
		if s%2 == 1 {
			runtime.Gosched() // a combiner is running and will help us
			continue
		}
		if !o.seq.CompareAndSwap(s, s+1) {
			continue
		}
		// Combining round: execute every announced transaction.
		o.pool.TraceEvent(obs.KindCombineBegin, tid, -1, 0, 0, s/2)
		for t := 0; t < o.cfg.Threads; t++ {
			pend := o.reqs[t].Load()
			if pend == nil || pend.applied.Load() {
				continue
			}
			o.runOne(pend)
		}
		o.pool.TraceEvent(obs.KindCombineEnd, tid, -1, 0, 0, 1)
		o.seq.Store(s + 2)
		o.cfg.Profile.AddTx(since(o.cfg.Profile, txStart))
		return d.result.Load()
	}
}

// runOne executes a single announced transaction with full durability.
// Called only by the current combiner.
func (o *OneFile) runOne(d *desc) {
	if d.readOnly {
		lambdaStart := now(o.cfg.Profile)
		res := d.fn(plainMem{o})
		o.cfg.Profile.AddLambda(since(o.cfg.Profile, lambdaStart))
		d.result.Store(res)
		d.applied.Store(true)
		return
	}
	// 1. Execute with buffered stores.
	o.wsAddrs = o.wsAddrs[:0]
	clear(o.wsVals)
	lambdaStart := now(o.cfg.Profile)
	res := d.fn(txMem{o})
	o.cfg.Profile.AddLambda(since(o.cfg.Profile, lambdaStart))
	flushStart := now(o.cfg.Profile)
	txSeq := o.pool.HeaderLoad(slotCommit) + 1
	// 2. Persist the redo log. Updates are serialized by the combiner,
	// so two global alternating slots suffice: transaction K never
	// overwrites the log of K-1, and K-1's in-place data was fenced by
	// K's commit before K+1 reuses its slot — so the log named by the
	// commit marker is always intact, even when a crash lets partially
	// written newer log lines reach the medium.
	base := (txSeq % 2) * (o.logs.Words() / 2)
	if 3+2*uint64(len(o.wsAddrs)) > o.logs.Words()/2 {
		panic("onefile: transaction write-set exceeds log capacity")
	}
	entries := make([]uint64, 0, 2*len(o.wsAddrs))
	for k, addr := range o.wsAddrs {
		o.logs.Store(base+3+2*uint64(k), addr)
		o.logs.Store(base+4+2*uint64(k), o.wsVals[addr])
		entries = append(entries, addr, o.wsVals[addr])
	}
	o.logs.Store(base+1, uint64(len(o.wsAddrs)))
	o.logs.Store(base+2, logCRC(txSeq, uint64(len(o.wsAddrs)), entries))
	o.logs.Store(base, txSeq)
	o.logs.FlushRange(base, 3+2*uint64(len(o.wsAddrs)))
	// 3. One global fence: orders the log and the previous transaction's
	// in-place writes.
	o.pool.PFenceGlobal()
	if o.pool.Traced() {
		// The log slot — whose extent is this write-set's runtime size —
		// must be durable before the commit marker can name it.
		o.pool.TraceEvent(obs.KindPublish, -1, o.logs.Index(),
			base, 3+2*uint64(len(o.wsAddrs)), obs.PubWAL)
	}
	// 4. Commit point.
	o.pool.HeaderStore(slotCommit, txSeq)
	o.pool.PWBHeader(slotCommit)
	o.pool.PSync()
	o.pool.TraceEvent(obs.KindHeaderPublish, -1, -1, slotCommit, 1, txSeq)
	o.cfg.Profile.AddFlush(since(o.cfg.Profile, flushStart))
	// 5. Apply in place; pwbs are fenced by the next transaction (or
	// replayed from the log on recovery).
	applyStart := now(o.cfg.Profile)
	o.dirty = o.dirty[:0]
	for _, addr := range o.wsAddrs {
		o.data.AtomicStore(addr, o.wsVals[addr])
		o.dirty = append(o.dirty, addr/pmem.WordsPerLine)
	}
	sort.Slice(o.dirty, func(i, j int) bool { return o.dirty[i] < o.dirty[j] })
	last := ^uint64(0)
	for _, line := range o.dirty {
		if line != last {
			o.data.PWB(line * pmem.WordsPerLine)
			last = line
		}
	}
	o.cfg.Profile.AddApply(since(o.cfg.Profile, applyStart))
	d.result.Store(res)
	d.applied.Store(true)
}

// Read implements ptm.PTM: optimistic wait-free reads with per-load
// sequence validation, falling back to announcement.
func (o *OneFile) Read(tid int, fn func(ptm.Mem) uint64) uint64 {
	var d *desc
	for i := 0; ; i++ {
		if i == o.cfg.MaxReadTries && d == nil {
			d = &desc{fn: fn, readOnly: true}
			o.reqs[tid].Store(d)
		}
		if d != nil && d.applied.Load() {
			return d.result.Load()
		}
		s := o.seq.Load()
		if s%2 == 1 {
			runtime.Gosched()
			continue
		}
		res, ok := o.tryRead(fn, s)
		if ok {
			return res
		}
	}
}

// tryRead runs fn against the snapshot valid at sequence s; every load
// validates the sequence, so fn never observes a torn state.
func (o *OneFile) tryRead(fn func(ptm.Mem) uint64, s uint64) (res uint64, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if r != errRetryRead { //nolint:errorlint // sentinel identity
				panic(r)
			}
			ok = false
		}
	}()
	res = fn(snapshotMem{o: o, seq: s})
	return res, o.seq.Load() == s
}

// now/since avoid time.Now() when profiling is disabled.
func now(p *ptm.Profile) time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

func since(p *ptm.Profile, t time.Time) time.Duration {
	if p == nil {
		return 0
	}
	return time.Since(t)
}
