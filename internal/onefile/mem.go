package onefile

import (
	"repro/internal/palloc"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// txMem is the combiner's transactional view: stores are buffered in the
// volatile write-set, loads are interposed through it (redo-log semantics).
type txMem struct {
	o *OneFile
}

func (m txMem) Load(addr uint64) uint64 {
	if v, ok := m.o.wsVals[addr]; ok {
		return v
	}
	return m.o.data.AtomicLoad(addr)
}

func (m txMem) Store(addr, val uint64) {
	if _, ok := m.o.wsVals[addr]; !ok {
		m.o.wsAddrs = append(m.o.wsAddrs, addr)
	}
	m.o.wsVals[addr] = val
}

func (m txMem) Alloc(words uint64) uint64 { return palloc.Alloc(m, words) }
func (m txMem) Free(addr uint64)          { palloc.Free(m, addr) }

// plainMem is the combiner's read-only view for announced read
// transactions: no buffering, no validation (the combiner is quiescent).
type plainMem struct {
	o *OneFile
}

func (m plainMem) Load(addr uint64) uint64 { return m.o.data.AtomicLoad(addr) }
func (m plainMem) Store(addr, val uint64) {
	panic("onefile: Store inside a read-only transaction")
}
func (m plainMem) Alloc(words uint64) uint64 {
	panic("onefile: Alloc inside a read-only transaction")
}
func (m plainMem) Free(addr uint64) {
	panic("onefile: Free inside a read-only transaction")
}

// snapshotMem is the optimistic reader's view: every load validates that no
// update transaction committed since the snapshot sequence, so the closure
// never observes a torn state (the original's hidden word timestamps).
type snapshotMem struct {
	o   *OneFile
	seq uint64
}

func (m snapshotMem) Load(addr uint64) uint64 {
	if addr >= m.o.data.Words() {
		panic(errRetryRead)
	}
	v := m.o.data.AtomicLoad(addr)
	if m.o.seq.Load() != m.seq {
		panic(errRetryRead)
	}
	return v
}

func (m snapshotMem) Store(addr, val uint64) {
	panic("onefile: Store inside a read-only transaction")
}
func (m snapshotMem) Alloc(words uint64) uint64 {
	panic("onefile: Alloc inside a read-only transaction")
}
func (m snapshotMem) Free(addr uint64) {
	panic("onefile: Free inside a read-only transaction")
}

// initMem formats the heap at construction time.
type initMem struct {
	region *pmem.Region
}

func (m initMem) Load(addr uint64) uint64 { return m.region.Load(addr) }
func (m initMem) Store(addr, val uint64)  { m.region.Store(addr, val) }

var _ ptm.Mem = txMem{}
var _ ptm.Mem = plainMem{}
var _ ptm.Mem = snapshotMem{}
