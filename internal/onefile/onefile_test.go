package onefile

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

func newOF(t testing.TB, threads int, mode pmem.Mode) (*OneFile, *pmem.Pool) {
	t.Helper()
	pool := pmem.New(pmem.Config{Mode: mode, RegionWords: 1 << 16, Regions: 2})
	return New(pool, Config{Threads: threads}), pool
}

func TestNameAndProperties(t *testing.T) {
	o, _ := newOF(t, 2, pmem.Direct)
	if o.Name() != "OneFile" {
		t.Errorf("Name() = %q", o.Name())
	}
	p := o.Properties()
	if p.Progress != ptm.WaitFree || p.Replicas != "1" || p.FencesPerTx != "2" {
		t.Errorf("Properties() = %+v", p)
	}
	if o.MaxThreads() != 2 {
		t.Errorf("MaxThreads() = %d", o.MaxThreads())
	}
}

func TestNewValidation(t *testing.T) {
	pool3 := pmem.New(pmem.Config{RegionWords: 1 << 12, Regions: 3})
	defer func() {
		if recover() == nil {
			t.Error("New with 3 regions did not panic")
		}
	}()
	New(pool3, Config{Threads: 1})
}

func TestCounterSingleThread(t *testing.T) {
	o, _ := newOF(t, 1, pmem.Direct)
	addr := ptm.RootAddr(0)
	for i := 0; i < 100; i++ {
		o.Update(0, func(m ptm.Mem) uint64 {
			v := m.Load(addr) + 1
			m.Store(addr, v)
			return v
		})
	}
	if got := o.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) }); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
}

func TestWriteSetReadYourOwnWrites(t *testing.T) {
	o, _ := newOF(t, 1, pmem.Direct)
	a, b := ptm.RootAddr(0), ptm.RootAddr(1)
	got := o.Update(0, func(m ptm.Mem) uint64 {
		m.Store(a, 5)
		m.Store(b, m.Load(a)*2) // must see the buffered store
		return m.Load(b)
	})
	if got != 10 {
		t.Fatalf("read-your-writes inside tx = %d, want 10", got)
	}
	if got := o.Read(0, func(m ptm.Mem) uint64 { return m.Load(b) }); got != 10 {
		t.Fatalf("after commit b = %d, want 10", got)
	}
}

func TestSetAgainstModel(t *testing.T) {
	o, _ := newOF(t, 1, pmem.Direct)
	s := seqds.RBTree{RootSlot: 0}
	o.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
	model := make(map[uint64]bool)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 800; i++ {
		k := uint64(rng.Intn(150))
		if rng.Intn(2) == 0 {
			got := o.Update(0, func(m ptm.Mem) uint64 {
				if s.Add(m, k) {
					return 1
				}
				return 0
			})
			if (got == 1) == model[k] {
				t.Fatalf("Add(%d) = %d, model %v", k, got, model[k])
			}
			model[k] = true
		} else {
			got := o.Read(0, func(m ptm.Mem) uint64 {
				if s.Contains(m, k) {
					return 1
				}
				return 0
			})
			if (got == 1) != model[k] {
				t.Fatalf("Contains(%d) = %d, model %v", k, got, model[k])
			}
		}
	}
}

func TestConcurrentCounter(t *testing.T) {
	const threads, perThread = 6, 250
	o, _ := newOF(t, threads, pmem.Direct)
	addr := ptm.RootAddr(0)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				o.Update(tid, func(m ptm.Mem) uint64 {
					v := m.Load(addr) + 1
					m.Store(addr, v)
					return v
				})
			}
		}(tid)
	}
	wg.Wait()
	if got := o.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) }); got != threads*perThread {
		t.Fatalf("counter = %d, want %d", got, threads*perThread)
	}
}

func TestResultsExactlyOnce(t *testing.T) {
	const threads, perThread = 4, 200
	o, _ := newOF(t, threads, pmem.Direct)
	addr := ptm.RootAddr(0)
	results := make([][]uint64, threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				r := o.Update(tid, func(m ptm.Mem) uint64 {
					v := m.Load(addr) + 1
					m.Store(addr, v)
					return v
				})
				results[tid] = append(results[tid], r)
			}
		}(tid)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for _, rs := range results {
		for _, r := range rs {
			if seen[r] {
				t.Fatalf("result %d duplicated", r)
			}
			seen[r] = true
		}
	}
	if len(seen) != threads*perThread {
		t.Fatalf("%d distinct results, want %d", len(seen), threads*perThread)
	}
}

func TestConcurrentReadersNeverTorn(t *testing.T) {
	const writers, readers, per = 2, 4, 400
	o, _ := newOF(t, writers+readers, pmem.Direct)
	a, b := ptm.RootAddr(0), ptm.RootAddr(1)
	var wg sync.WaitGroup
	var tornCount sync.Map
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				o.Update(tid, func(m ptm.Mem) uint64 {
					v := m.Load(a) + 1
					m.Store(a, v)
					m.Store(b, v)
					return v
				})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if o.Read(tid, func(m ptm.Mem) uint64 {
					if m.Load(a) != m.Load(b) {
						return 1
					}
					return 0
				}) == 1 {
					tornCount.Store(tid, true)
					return
				}
			}
		}(writers + r)
	}
	wg.Wait()
	tornCount.Range(func(k, v any) bool {
		t.Fatalf("reader %v observed a torn transaction", k)
		return false
	})
}

func TestTwoFencesPerUpdate(t *testing.T) {
	o, pool := newOF(t, 1, pmem.Direct)
	addr := ptm.RootAddr(0)
	o.Update(0, func(m ptm.Mem) uint64 { m.Store(addr, 1); return 0 })
	before := pool.Stats()
	const n = 50
	for i := 0; i < n; i++ {
		o.Update(0, func(m ptm.Mem) uint64 {
			m.Store(addr, m.Load(addr)+1)
			return 0
		})
	}
	d := pool.Stats().Sub(before)
	if got := d.Fences(); got != 2*n {
		t.Fatalf("%d fences for %d txs, want %d", got, n, 2*n)
	}
}

func TestReadOnlyCannotStore(t *testing.T) {
	o, _ := newOF(t, 1, pmem.Direct)
	defer func() {
		if recover() == nil {
			t.Error("Store inside Read did not panic")
		}
	}()
	o.Read(0, func(m ptm.Mem) uint64 {
		//pmemvet:allow readonly -- this test asserts the runtime rejection of exactly this violation
		m.Store(ptm.RootAddr(0), 1)
		return 0
	})
}

func runAddsUntilCrash(t *testing.T, pool *pmem.Pool, n int, failPoint int64) (completed int, crashed bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			if r != pmem.ErrSimulatedPowerFailure {
				panic(r)
			}
			crashed = true
		}
		pool.InjectFailure(-1)
	}()
	o := New(pool, Config{Threads: 1})
	s := seqds.ListSet{RootSlot: 0}
	o.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
	pool.InjectFailure(failPoint)
	for k := 0; k < n; k++ {
		o.Update(0, func(m ptm.Mem) uint64 {
			s.Add(m, uint64(k)+1)
			return 0
		})
		completed++
	}
	return completed, false
}

func checkRecovered(t *testing.T, pool *pmem.Pool, completed, n int, failPoint int64) {
	t.Helper()
	o := New(pool, Config{Threads: 1})
	s := seqds.ListSet{RootSlot: 0}
	keys := seqds.ReadSlice(o, 0, s.Keys)
	if len(keys) < completed || len(keys) > n {
		t.Fatalf("fail=%d: recovered %d keys, completed %d", failPoint, len(keys), completed)
	}
	for i, k := range keys {
		if k != uint64(i)+1 {
			t.Fatalf("fail=%d: recovered state not a prefix at %d", failPoint, i)
		}
	}
	got := o.Update(0, func(m ptm.Mem) uint64 {
		s.Add(m, 1<<40)
		return s.Len(m)
	})
	if got != uint64(len(keys))+1 {
		t.Fatalf("fail=%d: post-recovery insert broken", failPoint)
	}
}

func TestSystematicCrashPoints(t *testing.T) {
	const n = 20
	for fail := int64(1); ; fail += 7 {
		pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 2})
		completed, crashed := runAddsUntilCrash(t, pool, n, fail)
		if !crashed {
			if completed != n {
				t.Fatalf("no crash but %d/%d completed", completed, n)
			}
			break
		}
		pool.Crash(pmem.CrashConservative, nil)
		checkRecovered(t, pool, completed, n, fail)
	}
}

func TestAdversarialCrashPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 15
	for fail := int64(1); ; fail += 11 {
		pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 2})
		completed, crashed := runAddsUntilCrash(t, pool, n, fail)
		if !crashed {
			break
		}
		pool.Crash(pmem.CrashAdversarial, rng)
		checkRecovered(t, pool, completed, n, fail)
	}
}
