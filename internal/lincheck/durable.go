package lincheck

import "math/bits"

// Durable linearizability (Izraelevitz, Mendes & Scott): a crash-prone
// history is durably linearizable iff the history obtained by treating each
// crash as an operation boundary is linearizable, where
//
//   - every operation that COMPLETED before a crash must be present — its
//     effect survives recovery and its recorded result must be legal; and
//   - every operation IN FLIGHT at a crash may have taken effect or not,
//     but the choice must be consistent with everything observed afterwards
//     (an in-flight put either landed — and then every later get agrees —
//     or vanished entirely; never half of each).
//
// The checker below searches over those choices: each pending operation is
// either dropped from the history or kept with a wildcard result, and the
// remaining history must linearize. Real-time precedence across the crash is
// expressed through timestamps: a harness records a pending operation's
// Return as the crash time, so it precedes every post-recovery operation,
// exactly as the durable order requires.

// DurableOp is one operation of a crash-prone history.
type DurableOp struct {
	Op
	// Pending marks an operation that was in flight when a crash killed
	// its thread: its Result was lost (ignored by the checker) and its
	// effect may or may not have reached persistence. The harness must set
	// its Return to the crash timestamp — after every operation that
	// completed before the crash, before every operation called after
	// recovery.
	Pending bool
	// DupID, when nonzero, names the REQUEST this operation is an attempt
	// of: a crashed caller that retries records the original (pending)
	// attempt and the retry under one DupID. The checker then demands
	// exactly-once semantics for the group — at most one attempt may take
	// effect. A completed attempt pins the choice (every other attempt must
	// have vanished; two completed attempts of one request are an immediate
	// duplicate); among pending attempts, at most one may be kept. This is
	// the detectable-recoverability contract: a deduplicated retry must be
	// recorded as not-applied (omitted, or marked Pending so the checker may
	// drop it), never as a second effective operation.
	DupID uint64
}

// maxPending bounds the 2^p search over in-flight subsets. Harnesses produce
// at most one pending operation per thread per crash, so real histories sit
// far below this.
const maxPending = 16

// CheckDurable reports whether the crash-prone history is durably
// linearizable with respect to model, under exactly-once semantics for every
// DupID-grouped retry: at most one attempt per request may take effect.
func CheckDurable(model Model, history []DurableOp) bool {
	var pending []int
	dupDone := make(map[uint64]int)
	for i, op := range history {
		if op.Pending {
			pending = append(pending, i)
		} else if op.DupID != 0 {
			dupDone[op.DupID]++
			if dupDone[op.DupID] > 1 {
				// Two completed attempts of one request: a duplicate, no
				// matter how the pending choices fall.
				return false
			}
		}
	}
	if len(pending) > maxPending {
		panic("lincheck: too many pending operations for the durable search")
	}
	// Try every took-effect/vanished assignment for the pending set. Start
	// from the all-effective mask purely as a heuristic: a correct engine
	// usually either finished the operation or tore nothing, so high masks
	// tend to succeed early.
	for mask := (1 << len(pending)) - 1; mask >= 0; mask-- {
		// Exactly-once filter: an assignment that keeps an attempt of a
		// request that already has a completed attempt — or keeps two
		// pending attempts of one request — would apply it twice.
		dupKept := make(map[uint64]bool)
		legal := true
		for bit, idx := range pending {
			if mask&(1<<bit) == 0 {
				continue
			}
			id := history[idx].DupID
			if id == 0 {
				continue
			}
			if dupDone[id] > 0 || dupKept[id] {
				legal = false
				break
			}
			dupKept[id] = true
		}
		if !legal {
			continue
		}
		ops := make([]Op, 0, len(history))
		wild := make([]bool, 0, len(history))
		drop := make(map[int]bool, bits.OnesCount(uint(mask)))
		for bit, idx := range pending {
			if mask&(1<<bit) == 0 {
				drop[idx] = true
			}
		}
		for i, op := range history {
			if drop[i] {
				continue
			}
			ops = append(ops, op.Op)
			wild = append(wild, op.Pending)
		}
		if checkWild(model, ops, wild) {
			return true
		}
	}
	return false
}
