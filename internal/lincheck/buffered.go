package lincheck

import "sort"

// Buffered durable linearizability (Izraelevitz, Mendes & Scott) is the
// correctness condition for group commit: at a crash the engine may lose a
// SUFFIX of the commit order — everything past its durable-epoch watermark —
// but never a gap. Completed operations are no longer sacred the way plain
// durable linearizability makes them: an operation can return to its caller
// with its effect still buffered in DRAM, and a crash may erase it. What the
// condition does demand is
//
//   - prefix-closure: the surviving state corresponds to the commit order cut
//     at one watermark W — every effect with epoch <= W survives, every
//     effect with epoch > W vanishes. Keeping epoch 7 while losing epoch 5 is
//     gap loss, the failure mode buffering must never introduce; and
//   - sync pinning: a Sync that returned before the crash guarantees its
//     epoch is at or below the watermark, so everything the caller synced
//     survives.
//
// The checker segments the history at the crash timestamps. Each segment must
// linearize on its own from the state the previous crash left behind — this
// validates pre-crash observations of effects that were later lost, which are
// perfectly legal (they were live when observed). Then, for each crash, the
// checker enumerates watermark candidates W (never below the largest synced
// epoch), replays exactly the epoch-prefix of survivors in commit order to
// produce the next segment's initial state, and recurses. Gap-loss histories
// die structurally: no single cut explains a post-crash state that kept a
// later epoch while dropping an earlier one.
//
// Exactly-once (DupID) composes with buffering the way persistent dedup
// receipts really behave: a receipt commits in the same epoch as its
// operation, so losing the epoch loses the receipt, and a retry after the
// crash legitimately applies the request a "second" time — the first effect
// is gone. The checker therefore allows a later attempt iff every earlier
// executing attempt was lost at an intervening crash, and still rejects two
// attempts executing in one segment (the receipt is visible in DRAM the
// moment the first commits, synced or not) or any attempt executing after one
// survived (the durable receipt deduplicates it).

// BufferedOp is one operation of a crash-prone history produced under
// relaxed durability.
type BufferedOp struct {
	DurableOp
	// Epoch is the commit epoch the engine assigned: the position of this
	// operation's effect in the global commit order that crashes truncate.
	// Reads carry the epoch they observed (the engine's LastSeq after the
	// read). Epoch 0 on a completed operation means "no durable effect /
	// before any commit"; on a pending operation it means the epoch is
	// unknown — the crash hit before the harness could learn it — and the
	// checker enumerates its fate (never ran / ran and was lost / ran and
	// reached durability).
	Epoch uint64
	// Synced marks an operation whose epoch was pinned durable before the
	// segment's crash — the caller completed a Sync (or the operation was a
	// PutDurable/WriteDurable) covering it. The watermark enumeration never
	// drops below a synced epoch: losing a synced effect is a violation no
	// matter what else survives.
	Synced bool
}

// CheckBufferedDurable reports whether the crash-prone history is buffered
// durably linearizable with respect to model. crashes lists the crash
// timestamps in ascending order; an operation belongs to the segment its
// Call falls in, and pending operations must record the segment's crash time
// as their Return (the CheckDurable convention). Epochs are compared within
// a segment only, so harnesses may number them globally or per incarnation.
func CheckBufferedDurable(model Model, history []BufferedOp, crashes []int64) bool {
	for i := 1; i < len(crashes); i++ {
		if crashes[i] <= crashes[i-1] {
			panic("lincheck: crash timestamps must be strictly ascending")
		}
	}
	segs := make([][]BufferedOp, len(crashes)+1)
	for _, op := range history {
		k := sort.Search(len(crashes), func(i int) bool { return crashes[i] > op.Call })
		segs[k] = append(segs[k], op)
	}
	c := &bufChecker{model: model}
	return c.segment(segs, model.Init(), nil)
}

// fromState re-roots a model at an arbitrary state, so each segment's
// linearizability check starts from what the previous crash left behind.
type fromState struct {
	Model
	state any
}

func (m fromState) Init() any { return m.state }

// pendChoice is one fate of a pending operation at its segment's crash.
type pendChoice int

const (
	neverRan   pendChoice = iota // the crash preempted it before any effect
	ranEpoch                     // executed at its annotated epoch; survival follows the watermark
	ranLost                      // epoch unknown: executed, lost at the crash
	ranSurvive                   // epoch unknown: executed and reached durability (replays last)
)

type bufChecker struct {
	model Model
}

// segment checks segs[0] from state and recurses across its crash.
// surviving carries the DupIDs whose effect (and dedup receipt) is durable.
func (c *bufChecker) segment(segs [][]BufferedOp, state any, surviving map[uint64]bool) bool {
	if len(segs) == 0 {
		return true
	}
	seg := segs[0]
	last := len(segs) == 1
	var pending []int
	for i, op := range seg {
		if op.Pending {
			pending = append(pending, i)
		}
	}
	if len(pending) > maxPending {
		panic("lincheck: too many pending operations for the buffered search")
	}
	choices := make([]pendChoice, len(pending))
	var try func(p int) bool
	try = func(p int) bool {
		if p == len(pending) {
			return c.resolve(seg, segs[1:], pending, choices, state, surviving)
		}
		opts := []pendChoice{ranEpoch, neverRan}
		if !last && seg[pending[p]].Epoch == 0 {
			opts = []pendChoice{ranSurvive, ranLost, neverRan}
		}
		for _, ch := range opts {
			choices[p] = ch
			if try(p + 1) {
				return true
			}
		}
		return false
	}
	return try(0)
}

// resolve checks one pending-fate assignment for the head segment: the
// executing set must linearize from state, and (unless this is the final
// segment) some watermark cut must explain everything that follows.
func (c *bufChecker) resolve(seg []BufferedOp, rest [][]BufferedOp, pending []int, choices []pendChoice, state any, surviving map[uint64]bool) bool {
	kept := make([]bool, len(seg))
	for i, op := range seg {
		kept[i] = !op.Pending
	}
	for p, idx := range pending {
		kept[idx] = choices[p] != neverRan
	}
	choiceOf := func(i int) pendChoice {
		for p, idx := range pending {
			if idx == i {
				return choices[p]
			}
		}
		return ranEpoch
	}
	// Exactly-once: an attempt whose request already has a durable effect is
	// deduplicated by the surviving receipt, and two attempts in one segment
	// see each other's DRAM-committed receipt — either way, executing is
	// illegal for this assignment.
	dupHere := make(map[uint64]int)
	for i, op := range seg {
		if !kept[i] || op.DupID == 0 {
			continue
		}
		if surviving[op.DupID] {
			return false
		}
		if _, dup := dupHere[op.DupID]; dup {
			return false
		}
		dupHere[op.DupID] = i
	}
	// Intra-segment linearizability from the recovered state. Later-lost
	// operations participate: they were live when their contemporaries
	// observed them.
	ops := make([]Op, 0, len(seg))
	wild := make([]bool, 0, len(seg))
	for i, op := range seg {
		if !kept[i] {
			continue
		}
		ops = append(ops, op.Op)
		wild = append(wild, op.Pending)
	}
	if !checkWild(fromState{c.model, state}, ops, wild) {
		return false
	}
	if len(rest) == 0 {
		return true
	}
	// Watermark candidates: every executing epoch plus 0 (lose everything)
	// plus the sync floor itself, filtered to respect the floor.
	var maxSync uint64
	for i, op := range seg {
		if kept[i] && op.Synced && op.Epoch > maxSync {
			maxSync = op.Epoch
		}
	}
	candSet := map[uint64]bool{0: true, maxSync: true}
	for i, op := range seg {
		if kept[i] && op.Epoch > 0 {
			candSet[op.Epoch] = true
		}
	}
	cands := make([]uint64, 0, len(candSet))
	for w := range candSet {
		if w >= maxSync {
			cands = append(cands, w)
		}
	}
	// High to low: a correct engine usually lost little or nothing, so large
	// watermarks tend to succeed early.
	sort.Slice(cands, func(i, j int) bool { return cands[i] > cands[j] })
	for _, w := range cands {
		if next, ok := c.replay(seg, kept, choiceOf, state, w); ok {
			surv2 := make(map[uint64]bool, len(surviving)+len(dupHere))
			for id := range surviving {
				surv2[id] = true
			}
			for id, i := range dupHere {
				if c.survives(seg[i], choiceOf(i), w) {
					surv2[id] = true
				}
			}
			if c.segment(rest, next, surv2) {
				return true
			}
		}
	}
	return false
}

// survives reports whether an executing operation's effect is durable at
// watermark w.
func (c *bufChecker) survives(op BufferedOp, ch pendChoice, w uint64) bool {
	if ch == ranSurvive {
		return true
	}
	if ch == ranLost {
		return false
	}
	return op.Epoch > 0 && op.Epoch <= w
}

// replay folds the epoch-prefix of survivors, in commit (epoch) order, into
// the post-crash state. Completed survivors must reproduce their recorded
// results — commit order is the engine's linearization order — while pending
// survivors replay as wildcards. Unknown-epoch survivors replay after every
// annotated epoch: they were in flight at the crash, so nothing committed
// after them.
func (c *bufChecker) replay(seg []BufferedOp, kept []bool, choiceOf func(int) pendChoice, state any, w uint64) (any, bool) {
	type rep struct {
		op    BufferedOp
		epoch uint64
		call  int64
	}
	var reps []rep
	for i, op := range seg {
		if !kept[i] || !c.survives(op, choiceOf(i), w) {
			continue
		}
		e := op.Epoch
		if choiceOf(i) == ranSurvive {
			e = ^uint64(0)
		}
		reps = append(reps, rep{op: op, epoch: e, call: op.Call})
	}
	sort.SliceStable(reps, func(i, j int) bool {
		if reps[i].epoch != reps[j].epoch {
			return reps[i].epoch < reps[j].epoch
		}
		return reps[i].call < reps[j].call
	})
	st := state
	for _, r := range reps {
		next, res := c.model.Step(st, r.op.Op)
		if !r.op.Pending && res != r.op.Result {
			return nil, false
		}
		st = next
	}
	return st, true
}
