package lincheck

import "testing"

// d builds a completed durable op.
func d(thread int, call, ret int64, kind string, arg, arg2, result uint64) DurableOp {
	return DurableOp{Op: Op{Thread: thread, Call: call, Return: ret, Kind: kind, Arg: arg, Arg2: arg2, Result: result}}
}

// p builds a pending (in-flight-at-crash) durable op; ret is the crash time.
func p(thread int, call, crash int64, kind string, arg, arg2 uint64) DurableOp {
	return DurableOp{Op: Op{Thread: thread, Call: call, Return: crash, Kind: kind, Arg: arg, Arg2: arg2}, Pending: true}
}

// TestCheckDurableTable is the accept/reject table for the durable checker:
// each case is a crash-prone history with a known verdict, covering the
// clauses of durable linearizability one at a time.
func TestCheckDurableTable(t *testing.T) {
	cases := []struct {
		name    string
		history []DurableOp
		want    bool
	}{
		{
			// No crash, no pending ops: plain linearizability.
			name: "accept/sequential-no-crash",
			history: []DurableOp{
				d(0, 1, 2, "put", 1, 10, 0),
				d(0, 3, 4, "get", 1, 0, 10),
			},
			want: true,
		},
		{
			// A put completed before the crash (at t=5) must survive it.
			name: "accept/completed-survives-crash",
			history: []DurableOp{
				d(0, 1, 2, "put", 1, 10, 0),
				// crash at 5; recovery reads it back
				d(0, 6, 7, "get", 1, 0, 10),
			},
			want: true,
		},
		{
			// A completed put whose effect vanished after the crash: the
			// defining violation of durable linearizability.
			name: "reject/completed-lost-at-crash",
			history: []DurableOp{
				d(0, 1, 2, "put", 1, 10, 0),
				// crash at 5; the value is gone
				d(0, 6, 7, "get", 1, 0, 0),
			},
			want: false,
		},
		{
			// In-flight put at the crash (t=5): landing is legal.
			name: "accept/pending-took-effect",
			history: []DurableOp{
				p(0, 1, 5, "put", 1, 10),
				d(0, 6, 7, "get", 1, 0, 10),
			},
			want: true,
		},
		{
			// In-flight put at the crash: vanishing is legal too.
			name: "accept/pending-vanished",
			history: []DurableOp{
				p(0, 1, 5, "put", 1, 10),
				d(0, 6, 7, "get", 1, 0, 0),
			},
			want: true,
		},
		{
			// But the choice must be consistent: one post-crash reader
			// sees the in-flight put, a later one does not.
			name: "reject/pending-inconsistent",
			history: []DurableOp{
				p(0, 1, 5, "put", 1, 10),
				d(0, 6, 7, "get", 1, 0, 10),
				d(0, 8, 9, "get", 1, 0, 0),
			},
			want: false,
		},
		{
			// Two in-flight puts to different keys may land independently:
			// here one landed and the other vanished.
			name: "accept/pending-land-independently",
			history: []DurableOp{
				p(0, 1, 5, "put", 1, 10),
				p(1, 1, 5, "put", 2, 20),
				d(0, 6, 7, "get", 1, 0, 10),
				d(0, 8, 9, "get", 2, 0, 0),
			},
			want: true,
		},
		{
			// A read that completed BEFORE the crash already constrains the
			// pending choice: get saw the in-flight put, so it must also be
			// visible after recovery.
			name: "reject/pre-crash-read-pins-pending",
			history: []DurableOp{
				p(0, 1, 5, "put", 1, 10),
				d(1, 2, 3, "get", 1, 0, 10), // observed it before the crash
				d(1, 6, 7, "get", 1, 0, 0),  // gone after recovery
			},
			want: false,
		},
		{
			// Real-time order across the crash: a put called only AFTER
			// recovery cannot explain a pre-crash read.
			name: "reject/effect-from-the-future",
			history: []DurableOp{
				d(0, 1, 2, "get", 1, 0, 99),
				d(0, 6, 7, "put", 1, 99, 0),
			},
			want: false,
		},
		{
			// Torn multi-op visibility: thread 0 completed put(1)=10 then
			// crashed while put(2)=20 was in flight. Legal: key 2 may be
			// absent. The completed key 1 must not be.
			name: "accept/half-finished-pair",
			history: []DurableOp{
				d(0, 1, 2, "put", 1, 10, 0),
				p(0, 3, 5, "put", 2, 20),
				d(0, 6, 7, "get", 1, 0, 10),
				d(0, 8, 9, "get", 2, 0, 0),
			},
			want: true,
		},
		{
			// Deletes across a crash: a completed del must stay deleted.
			name: "reject/completed-delete-resurrected",
			history: []DurableOp{
				d(0, 1, 2, "put", 1, 10, 0),
				d(0, 3, 4, "del", 1, 0, 1),
				d(0, 6, 7, "get", 1, 0, 10),
			},
			want: false,
		},
		{
			// Two crashes: survive the first, then an in-flight del at the
			// second (t=10) may or may not land — absent afterwards is fine.
			name: "accept/two-crashes",
			history: []DurableOp{
				d(0, 1, 2, "put", 1, 10, 0),
				// crash at 5
				d(0, 6, 7, "get", 1, 0, 10),
				p(0, 8, 10, "del", 1, 0),
				// crash at 10
				d(0, 11, 12, "get", 1, 0, 0),
			},
			want: true,
		},
		{
			// A pending op's unknown result is a wildcard, but its EFFECT
			// still has to replay legally: a pending overwrite that lands
			// must leave its own value, not an invented one.
			name: "reject/pending-effect-is-not-arbitrary",
			history: []DurableOp{
				d(0, 1, 2, "put", 1, 10, 0),
				p(0, 3, 5, "put", 1, 20),
				d(0, 6, 7, "get", 1, 0, 30),
			},
			want: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := CheckDurable(KVModel{}, tc.history); got != tc.want {
				t.Fatalf("CheckDurable = %v, want %v", got, tc.want)
			}
		})
	}
}

// dup marks op as attempt number of request id for the exactly-once mode.
func dup(op DurableOp, id uint64) DurableOp {
	op.DupID = id
	return op
}

// TestCheckDurableExactlyOnce is the accept/reject table for the DupID
// exactly-once mode: attempts of one request (the pending original and its
// retries) may take effect at most once.
func TestCheckDurableExactlyOnce(t *testing.T) {
	cases := []struct {
		name    string
		model   Model
		history []DurableOp
		want    bool
	}{
		{
			// Counter inc crashed in flight, retry completed with result 1:
			// plain durable linearizability would also accept a pre-crash
			// landing plus the retry (count 2); exactly-once requires the
			// single increment the receipt table guarantees.
			name:  "accept/retried-inc-applied-once",
			model: CounterModel{},
			history: []DurableOp{
				dup(p(0, 1, 5, "inc", 0, 0), 1),
				dup(d(0, 6, 7, "inc", 0, 0, 1), 1),
				d(0, 8, 9, "get", 0, 0, 1),
			},
			want: true,
		},
		{
			// The duplicate the mode exists to reject: both the crashed
			// attempt and the retry took effect. WITHOUT DupID this history
			// linearizes (keep the pending attempt, count reaches 2); the
			// exactly-once constraint must refuse it.
			name:  "reject/retried-inc-applied-twice",
			model: CounterModel{},
			history: []DurableOp{
				dup(p(0, 1, 5, "inc", 0, 0), 1),
				dup(d(0, 6, 7, "inc", 0, 0, 2), 1),
				d(0, 8, 9, "get", 0, 0, 2),
			},
			want: false,
		},
		{
			// Same duplicate without grouping: accepted, proving the DupID
			// is what tightens the check (an idempotence-blind baseline).
			name:  "accept/ungrouped-attempts-may-both-land",
			model: CounterModel{},
			history: []DurableOp{
				p(0, 1, 5, "inc", 0, 0),
				d(0, 6, 7, "inc", 0, 0, 2),
				d(0, 8, 9, "get", 0, 0, 2),
			},
			want: true,
		},
		{
			// Two completed attempts of one request are a duplicate even
			// when the model cannot see it (KV put is idempotent).
			name:  "reject/two-completed-attempts",
			model: KVModel{},
			history: []DurableOp{
				dup(d(0, 1, 2, "put", 1, 10, 0), 1),
				dup(d(0, 6, 7, "put", 1, 10, 0), 1),
			},
			want: false,
		},
		{
			// A pending attempt whose retry was deduplicated: the harness
			// records the dedup hit as pending too (not-applied), and the
			// checker keeps exactly one of the two.
			name:  "accept/dedup-hit-recorded-pending",
			model: KVModel{},
			history: []DurableOp{
				dup(p(0, 1, 5, "put", 1, 10), 1),
				dup(p(0, 6, 8, "put", 1, 10), 1),
				d(0, 9, 10, "get", 1, 0, 10),
			},
			want: true,
		},
		{
			// Distinct requests are independent: the same history as the
			// rejected duplicate above, but under two different DupIDs both
			// increments legally take effect.
			name:  "accept/distinct-requests-both-apply",
			model: CounterModel{},
			history: []DurableOp{
				dup(p(0, 1, 5, "inc", 0, 0), 1),
				dup(d(0, 6, 7, "inc", 0, 0, 2), 2),
				d(0, 8, 9, "get", 0, 0, 2),
			},
			want: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := CheckDurable(tc.model, tc.history); got != tc.want {
				t.Fatalf("CheckDurable = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestCheckDurableTwoPendingSameKey pins the wildcard enumeration with two
// operations on the SAME key in flight at one crash: the recovered value may
// be either pending value or neither, but never an invented one — and the
// verdicts must not depend on which attempt was called first.
func TestCheckDurableTwoPendingSameKey(t *testing.T) {
	cases := []struct {
		name string
		get  uint64
		want bool
	}{
		{"accept/first-pending-landed", 10, true},
		{"accept/second-pending-landed", 20, true},
		{"accept/both-vanished", 0, true},
		{"reject/invented-value", 30, false},
	}
	for _, order := range []string{"a-then-b", "b-then-a"} {
		callA, callB := int64(1), int64(2)
		if order == "b-then-a" {
			callA, callB = 2, 1
		}
		for _, tc := range cases {
			t.Run(order+"/"+tc.name, func(t *testing.T) {
				h := []DurableOp{
					p(0, callA, 5, "put", 1, 10),
					p(1, callB, 5, "put", 1, 20),
					d(0, 6, 7, "get", 1, 0, tc.get),
					d(0, 8, 9, "get", 1, 0, tc.get), // the choice must persist
				}
				if got := CheckDurable(KVModel{}, h); got != tc.want {
					t.Fatalf("CheckDurable = %v, want %v", got, tc.want)
				}
			})
		}
	}
}

// TestCheckWildcardStillChecked: a wild result never weakens the precedence
// rules — only the result comparison of that one op.
func TestCheckWildcardStillChecked(t *testing.T) {
	// get at t=1..2 sees 10, but the only put is pending from t=3: even as
	// a wildcard it cannot linearize before an op that returned before it
	// was called.
	h := []DurableOp{
		d(0, 1, 2, "get", 1, 0, 10),
		p(0, 3, 5, "put", 1, 10),
	}
	if CheckDurable(KVModel{}, h) {
		t.Fatal("pending op was allowed to take effect before its call")
	}
}

// TestKVModelTable exercises the KV model used by the durable suites.
func TestKVModelTable(t *testing.T) {
	ops := []Op{
		{Call: 1, Return: 2, Kind: "get", Arg: 7, Result: 0},
		{Call: 3, Return: 4, Kind: "put", Arg: 7, Arg2: 1, Result: 0},
		{Call: 5, Return: 6, Kind: "put", Arg: 7, Arg2: 2, Result: 0},
		{Call: 7, Return: 8, Kind: "get", Arg: 7, Result: 2},
		{Call: 9, Return: 10, Kind: "del", Arg: 7, Result: 1},
		{Call: 11, Return: 12, Kind: "del", Arg: 7, Result: 0},
	}
	if !Check(KVModel{}, ops) {
		t.Fatal("legal sequential KV history rejected")
	}
	bad := append([]Op(nil), ops...)
	bad[3].Result = 1 // stale read
	if Check(KVModel{}, bad) {
		t.Fatal("stale KV read accepted")
	}
}
