package lincheck

import "testing"

// be wraps a durable op with its commit epoch for the buffered checker.
func be(op DurableOp, epoch uint64) BufferedOp {
	return BufferedOp{DurableOp: op, Epoch: epoch}
}

// bs wraps a durable op with its commit epoch and marks it synced.
func bs(op DurableOp, epoch uint64) BufferedOp {
	return BufferedOp{DurableOp: op, Epoch: epoch, Synced: true}
}

// TestCheckBufferedDurableTable is the accept/reject table for the buffered
// checker: suffix loss is legal, gap loss never is, Sync pins the prefix,
// and pre-crash observers of later-lost effects are fine.
func TestCheckBufferedDurableTable(t *testing.T) {
	cases := []struct {
		name    string
		model   Model
		history []BufferedOp
		crashes []int64
		want    bool
	}{
		{
			// No crash: plain linearizability, epochs irrelevant.
			name:  "accept/no-crash",
			model: KVModel{},
			history: []BufferedOp{
				be(d(0, 1, 2, "put", 1, 10, 0), 1),
				be(d(0, 3, 4, "get", 1, 0, 10), 1),
			},
			want: true,
		},
		{
			// The headline relaxation: a COMPLETED but unsynced put may
			// vanish at the crash. Plain CheckDurable rejects this history.
			name:  "accept/completed-unsynced-suffix-lost",
			model: KVModel{},
			history: []BufferedOp{
				be(d(0, 1, 2, "put", 1, 10, 0), 1),
				be(d(0, 6, 7, "get", 1, 0, 0), 1),
			},
			crashes: []int64{5},
			want:    true,
		},
		{
			// ...and it may equally survive: the watermark is enumerated.
			name:  "accept/completed-unsynced-survived",
			model: KVModel{},
			history: []BufferedOp{
				be(d(0, 1, 2, "put", 1, 10, 0), 1),
				be(d(0, 6, 7, "get", 1, 0, 10), 1),
			},
			crashes: []int64{5},
			want:    true,
		},
		{
			// Gap loss, the defining violation: epoch 2 survived the crash
			// while epoch 1 vanished. No watermark cut explains it.
			name:  "reject/gap-loss",
			model: KVModel{},
			history: []BufferedOp{
				be(d(0, 1, 2, "put", 1, 10, 0), 1),
				be(d(0, 3, 4, "put", 2, 20, 0), 2),
				be(d(0, 6, 7, "get", 1, 0, 0), 2),  // epoch 1 gone
				be(d(0, 8, 9, "get", 2, 0, 20), 2), // epoch 2 kept
			},
			crashes: []int64{5},
			want:    false,
		},
		{
			// The same shape cut as a suffix is legal: epoch 2 lost, 1 kept.
			name:  "accept/suffix-loss-prefix-kept",
			model: KVModel{},
			history: []BufferedOp{
				be(d(0, 1, 2, "put", 1, 10, 0), 1),
				be(d(0, 3, 4, "put", 2, 20, 0), 2),
				be(d(0, 6, 7, "get", 1, 0, 10), 1),
				be(d(0, 8, 9, "get", 2, 0, 0), 1),
			},
			crashes: []int64{5},
			want:    true,
		},
		{
			// Sync pins the prefix: the caller synced epoch 2, so epochs 1
			// and 2 must both survive. Losing the synced epoch is rejected...
			name:  "reject/synced-epoch-lost",
			model: KVModel{},
			history: []BufferedOp{
				be(d(0, 1, 2, "put", 1, 10, 0), 1),
				bs(d(0, 3, 4, "put", 2, 20, 0), 2),
				be(d(0, 6, 7, "get", 2, 0, 0), 2),
			},
			crashes: []int64{5},
			want:    false,
		},
		{
			// ...as is losing anything BELOW the synced epoch: Sync makes the
			// whole prefix durable, not just its own operation.
			name:  "reject/sync-pins-earlier-epoch",
			model: KVModel{},
			history: []BufferedOp{
				be(d(0, 1, 2, "put", 1, 10, 0), 1),
				bs(d(0, 3, 4, "put", 2, 20, 0), 2),
				be(d(0, 6, 7, "get", 1, 0, 0), 2),
				be(d(0, 8, 9, "get", 2, 0, 20), 2),
			},
			crashes: []int64{5},
			want:    false,
		},
		{
			// A later unsynced epoch may still be lost above the sync floor.
			name:  "accept/loss-above-sync-floor",
			model: KVModel{},
			history: []BufferedOp{
				bs(d(0, 1, 2, "put", 1, 10, 0), 1),
				be(d(0, 3, 4, "put", 2, 20, 0), 2),
				be(d(0, 6, 7, "get", 1, 0, 10), 1),
				be(d(0, 8, 9, "get", 2, 0, 0), 1),
			},
			crashes: []int64{5},
			want:    true,
		},
		{
			// A pre-crash reader legally observed an effect the crash then
			// erased: the read happened while the epoch was live in DRAM.
			// Plain durable linearizability has no way to accept this.
			name:  "accept/lost-effect-observed-before-crash",
			model: KVModel{},
			history: []BufferedOp{
				be(d(0, 1, 2, "put", 1, 10, 0), 1),
				be(d(1, 3, 4, "get", 1, 0, 10), 1), // saw it pre-crash
				be(d(0, 6, 7, "get", 1, 0, 0), 1),  // gone after recovery
			},
			crashes: []int64{5},
			want:    true,
		},
		{
			// But pre-crash observations still have to linearize: a reader
			// cannot see an effect from the POST-crash future.
			name:  "reject/effect-from-the-future",
			model: KVModel{},
			history: []BufferedOp{
				be(d(0, 1, 2, "get", 1, 0, 99), 1),
				be(d(0, 6, 7, "put", 1, 99, 0), 2),
			},
			crashes: []int64{5},
			want:    false,
		},
		{
			// The post-crash state must also be CONSISTENT, not just any
			// subset: one recovered reader sees the lost value, a later one
			// does not.
			name:  "reject/post-crash-state-flickers",
			model: KVModel{},
			history: []BufferedOp{
				be(d(0, 1, 2, "put", 1, 10, 0), 1),
				be(d(0, 6, 7, "get", 1, 0, 10), 1),
				be(d(0, 8, 9, "get", 1, 0, 0), 1),
			},
			crashes: []int64{5},
			want:    false,
		},
		{
			// Overwrites within one lost suffix: recovery rolls BOTH back to
			// the synced base value — seeing the intermediate overwrite
			// survive alone would be gap loss between epochs 2 and 3.
			name:  "accept/overwrite-chain-rolls-back",
			model: KVModel{},
			history: []BufferedOp{
				bs(d(0, 1, 2, "put", 1, 10, 0), 1),
				be(d(0, 3, 4, "put", 1, 20, 0), 2),
				be(d(0, 5, 6, "put", 1, 30, 0), 3),
				be(d(0, 8, 9, "get", 1, 0, 10), 1),
			},
			crashes: []int64{7},
			want:    true,
		},
		{
			name:  "reject/overwrite-chain-gap",
			model: KVModel{},
			history: []BufferedOp{
				bs(d(0, 1, 2, "put", 1, 10, 0), 1),
				be(d(0, 3, 4, "put", 2, 20, 0), 2),
				be(d(0, 5, 6, "put", 1, 30, 0), 3),
				// epoch 3's overwrite survived but epoch 2's put is gone.
				be(d(0, 8, 9, "get", 1, 0, 30), 3),
				be(d(0, 10, 11, "get", 2, 0, 0), 3),
			},
			crashes: []int64{7},
			want:    false,
		},
		{
			// An op in flight at the crash may land in the durable prefix,
			// land in the lost suffix, or never have run at all. Absent
			// afterwards is legal...
			name:  "accept/pending-lost-or-never-ran",
			model: KVModel{},
			history: []BufferedOp{
				bs(d(0, 1, 2, "put", 1, 10, 0), 1),
				be(p(0, 3, 5, "put", 2, 20), 2),
				be(d(0, 6, 7, "get", 2, 0, 0), 1),
			},
			crashes: []int64{5},
			want:    true,
		},
		{
			// ...and so is present — but only together with every earlier
			// epoch. A surviving pending op drags the prefix with it.
			name:  "reject/pending-survives-without-its-prefix",
			model: KVModel{},
			history: []BufferedOp{
				be(d(0, 1, 2, "put", 1, 10, 0), 1),
				be(p(0, 3, 5, "put", 2, 20), 2),
				be(d(0, 6, 7, "get", 2, 0, 20), 2), // pending landed durably
				be(d(0, 8, 9, "get", 1, 0, 0), 2),  // but epoch 1 vanished
			},
			crashes: []int64{5},
			want:    false,
		},
		{
			// Two crashes: what survived the first is permanent — the second
			// crash cannot claw back an effect recovery already adopted.
			name:  "reject/survivor-lost-at-later-crash",
			model: KVModel{},
			history: []BufferedOp{
				be(d(0, 1, 2, "put", 1, 10, 0), 1),
				be(d(0, 6, 7, "get", 1, 0, 10), 1), // survived crash 1
				be(d(0, 11, 12, "get", 1, 0, 0), 1), // gone after crash 2
			},
			crashes: []int64{5, 10},
			want:    false,
		},
		{
			// Two crashes, each losing its own unsynced suffix: legal.
			name:  "accept/two-crashes-two-suffixes",
			model: KVModel{},
			history: []BufferedOp{
				bs(d(0, 1, 2, "put", 1, 10, 0), 1),
				be(d(0, 3, 4, "put", 2, 20, 0), 2),
				// crash 1 loses epoch 2
				be(d(0, 6, 7, "get", 2, 0, 0), 1),
				be(d(0, 8, 9, "put", 3, 30, 0), 4),
				// crash 2 loses epoch 4
				be(d(0, 11, 12, "get", 1, 0, 10), 1),
				be(d(0, 13, 14, "get", 3, 0, 0), 1),
			},
			crashes: []int64{5, 10},
			want:    true,
		},
		{
			// Group commit proper: several operations share one epoch and
			// live or die together. Losing half an epoch is gap loss too.
			name:  "reject/half-an-epoch-lost",
			model: KVModel{},
			history: []BufferedOp{
				be(d(0, 1, 2, "put", 1, 10, 0), 1),
				be(d(1, 1, 2, "put", 2, 20, 0), 1),
				be(d(0, 6, 7, "get", 1, 0, 10), 1),
				be(d(0, 8, 9, "get", 2, 0, 0), 1),
			},
			crashes: []int64{5},
			want:    false,
		},
		{
			name:  "accept/whole-epoch-lost",
			model: KVModel{},
			history: []BufferedOp{
				be(d(0, 1, 2, "put", 1, 10, 0), 1),
				be(d(1, 1, 2, "put", 2, 20, 0), 1),
				be(d(0, 6, 7, "get", 1, 0, 0), 0),
				be(d(0, 8, 9, "get", 2, 0, 0), 0),
			},
			crashes: []int64{5},
			want:    true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := CheckBufferedDurable(tc.model, tc.history, tc.crashes); got != tc.want {
				t.Fatalf("CheckBufferedDurable = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestCheckBufferedDurableExactlyOnce pins the DupID interaction: a dedup
// receipt commits in its operation's epoch, so a crash that loses the epoch
// loses the receipt and the retry legitimately re-applies — while a synced
// (surviving) receipt deduplicates every later attempt, and two attempts in
// one incarnation always see each other's DRAM receipt.
func TestCheckBufferedDurableExactlyOnce(t *testing.T) {
	cases := []struct {
		name    string
		model   Model
		history []BufferedOp
		crashes []int64
		want    bool
	}{
		{
			// COMPLETED attempt, epoch lost at the crash, retry applies the
			// request for real: counter ends at 1. CheckDurable rejects two
			// completed attempts of one request outright; buffered accepts
			// exactly this shape when the first attempt's epoch was lost.
			name:  "accept/receipt-lost-with-epoch-retry-applies",
			model: CounterModel{},
			history: []BufferedOp{
				be(dup(d(0, 1, 2, "inc", 0, 0, 1), 1), 1),
				be(dup(d(0, 6, 7, "inc", 0, 0, 1), 1), 1),
				be(d(0, 8, 9, "get", 0, 0, 1), 1),
			},
			crashes: []int64{5},
			want:    true,
		},
		{
			// The first attempt was SYNCED: its receipt survives, the retry
			// must be deduplicated — a second effective increment is the
			// duplicate the receipts exist to prevent.
			name:  "reject/synced-receipt-retry-applied-again",
			model: CounterModel{},
			history: []BufferedOp{
				bs(dup(d(0, 1, 2, "inc", 0, 0, 1), 1), 1),
				be(dup(d(0, 6, 7, "inc", 0, 0, 2), 1), 2),
				be(d(0, 8, 9, "get", 0, 0, 2), 2),
			},
			crashes: []int64{5},
			want:    false,
		},
		{
			// Surviving receipt + retry recorded as deduplicated (pending, so
			// the checker may treat it as never-applied): the legal outcome.
			name:  "accept/synced-receipt-retry-deduplicated",
			model: CounterModel{},
			history: []BufferedOp{
				bs(dup(d(0, 1, 2, "inc", 0, 0, 1), 1), 1),
				be(dup(p(0, 6, 10, "inc", 0, 0), 1), 0),
				be(d(0, 11, 12, "get", 0, 0, 1), 1),
			},
			crashes: []int64{5, 10},
			want:    true,
		},
		{
			// Two attempts inside ONE incarnation both taking effect: the
			// first receipt is visible in DRAM the moment it commits, synced
			// or not, so the second execution is always a duplicate.
			name:  "reject/same-incarnation-double-apply",
			model: CounterModel{},
			history: []BufferedOp{
				be(dup(d(0, 1, 2, "inc", 0, 0, 1), 1), 1),
				be(dup(d(0, 3, 4, "inc", 0, 0, 2), 1), 2),
				be(d(0, 5, 6, "get", 0, 0, 2), 2),
			},
			want: false,
		},
		{
			// Pending attempt whose epoch is unknown, then a completed retry:
			// the checker may resolve the original as lost (or never-run) and
			// the retry applies once.
			name:  "accept/pending-attempt-then-retry",
			model: CounterModel{},
			history: []BufferedOp{
				be(dup(p(0, 1, 5, "inc", 0, 0), 1), 0),
				be(dup(d(0, 6, 7, "inc", 0, 0, 1), 1), 1),
				be(d(0, 8, 9, "get", 0, 0, 1), 1),
			},
			crashes: []int64{5},
			want:    true,
		},
		{
			// Ungrouped control: without DupID the same double-apply history
			// is accepted, proving the DupID is what tightens the check.
			name:  "accept/ungrouped-attempts-may-both-land",
			model: CounterModel{},
			history: []BufferedOp{
				be(d(0, 1, 2, "inc", 0, 0, 1), 1),
				be(d(0, 6, 7, "inc", 0, 0, 2), 1),
				be(d(0, 8, 9, "get", 0, 0, 2), 1),
			},
			crashes: []int64{5},
			want:    true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := CheckBufferedDurable(tc.model, tc.history, tc.crashes); got != tc.want {
				t.Fatalf("CheckBufferedDurable = %v, want %v", got, tc.want)
			}
		})
	}
}

// FuzzBufferedEpochBoundaries mutates where the epoch boundaries fall in a
// generated put stream — how many commits share each group-commit epoch, how
// much of the commit order the crash truncates, and which prefix was synced —
// and checks both directions: the honest suffix-truncated history is always
// accepted, and the same history with one mid-prefix key knocked out (a gap)
// or the watermark forced below the sync floor is always rejected.
func FuzzBufferedEpochBoundaries(f *testing.F) {
	f.Add(uint8(4), uint8(0b0101), uint8(2), uint8(1))
	f.Add(uint8(6), uint8(0b110010), uint8(3), uint8(0))
	f.Add(uint8(1), uint8(0), uint8(0), uint8(0))
	f.Add(uint8(5), uint8(0xff), uint8(5), uint8(3))
	f.Fuzz(func(t *testing.T, nRaw, boundaries, cutRaw, syncRaw uint8) {
		n := int(nRaw%6) + 1 // 1..6 puts
		// Epoch assignment: put i starts a new epoch iff bit i of boundaries
		// is set — this is the "mutate the epoch boundaries" axis.
		epochs := make([]uint64, n)
		e := uint64(1)
		for i := 0; i < n; i++ {
			if i > 0 && boundaries&(1<<i) != 0 {
				e++
			}
			epochs[i] = e
		}
		// The crash keeps the commit-order prefix of puts 0..cut-1, which
		// must be epoch-aligned: extend the cut to the end of its epoch.
		cut := int(cutRaw) % (n + 1)
		for cut > 0 && cut < n && epochs[cut] == epochs[cut-1] {
			cut++
		}
		// A synced put pins everything up to it; pick one inside the kept
		// prefix (or none).
		sync := -1
		if cut > 0 {
			sync = int(syncRaw) % cut
		}
		var h []BufferedOp
		ts := int64(1)
		for i := 0; i < n; i++ {
			op := d(0, ts, ts+1, "put", uint64(i+1), uint64(100+i), 0)
			ts += 2
			if i == sync {
				h = append(h, bs(op, epochs[i]))
			} else {
				h = append(h, be(op, epochs[i]))
			}
		}
		crash := ts
		ts++
		// post builds the recovered-reader tail: get every key, expecting
		// exactly the keys the predicate says survived. (Epoch annotations
		// on final-segment reads are irrelevant — no crash follows them.)
		post := func(survived func(i int) bool) []BufferedOp {
			out := append([]BufferedOp(nil), h...)
			t2 := ts
			for i := 0; i < n; i++ {
				want := uint64(0)
				if survived(i) {
					want = uint64(100 + i)
				}
				out = append(out, be(d(0, t2, t2+1, "get", uint64(i+1), 0, want), 0))
				t2 += 2
			}
			return out
		}
		honest := post(func(i int) bool { return i < cut })
		if !CheckBufferedDurable(KVModel{}, honest, []int64{crash}) {
			t.Fatalf("honest suffix truncation rejected: n=%d epochs=%v cut=%d sync=%d", n, epochs, cut, sync)
		}
		// Gap mutation: knock the FIRST put out of the kept prefix while
		// keeping a later one — never a legal cut, whatever the boundaries.
		if cut >= 2 {
			gap := post(func(i int) bool { return i < cut && i != 0 })
			if CheckBufferedDurable(KVModel{}, gap, []int64{crash}) {
				t.Fatalf("gap loss accepted: n=%d epochs=%v cut=%d", n, epochs, cut)
			}
		}
		// Sync-floor mutation: lose everything, including the synced epoch.
		if sync >= 0 {
			floor := post(func(i int) bool { return false })
			if CheckBufferedDurable(KVModel{}, floor, []int64{crash}) {
				t.Fatalf("synced epoch lost but accepted: n=%d epochs=%v sync=%d", n, epochs, sync)
			}
		}
	})
}
