package lincheck

import "testing"

func TestSequentialCounterHistory(t *testing.T) {
	h := []Op{
		{Thread: 0, Call: 1, Return: 2, Kind: "inc", Result: 1},
		{Thread: 0, Call: 3, Return: 4, Kind: "inc", Result: 2},
		{Thread: 0, Call: 5, Return: 6, Kind: "get", Result: 2},
	}
	if !Check(CounterModel{}, h) {
		t.Fatal("legal sequential history rejected")
	}
}

func TestCounterReorderingAllowedByOverlap(t *testing.T) {
	// Two overlapping incs may linearize in either order; the get that
	// starts after both must see 2.
	h := []Op{
		{Thread: 0, Call: 1, Return: 10, Kind: "inc", Result: 2},
		{Thread: 1, Call: 2, Return: 9, Kind: "inc", Result: 1},
		{Thread: 2, Call: 11, Return: 12, Kind: "get", Result: 2},
	}
	if !Check(CounterModel{}, h) {
		t.Fatal("overlapping incs with swapped results rejected")
	}
}

func TestCounterNonLinearizable(t *testing.T) {
	// get returns 0 even though an inc completed strictly before it.
	h := []Op{
		{Thread: 0, Call: 1, Return: 2, Kind: "inc", Result: 1},
		{Thread: 1, Call: 3, Return: 4, Kind: "get", Result: 0},
	}
	if Check(CounterModel{}, h) {
		t.Fatal("stale read accepted")
	}
}

func TestCounterDuplicateResultRejected(t *testing.T) {
	h := []Op{
		{Thread: 0, Call: 1, Return: 4, Kind: "inc", Result: 1},
		{Thread: 1, Call: 2, Return: 5, Kind: "inc", Result: 1},
	}
	if Check(CounterModel{}, h) {
		t.Fatal("duplicate increment results accepted")
	}
}

func TestSetHistory(t *testing.T) {
	h := []Op{
		{Thread: 0, Call: 1, Return: 2, Kind: "add", Arg: 5, Result: 1},
		{Thread: 1, Call: 3, Return: 6, Kind: "remove", Arg: 5, Result: 1},
		{Thread: 2, Call: 4, Return: 5, Kind: "contains", Arg: 5, Result: 1},
		{Thread: 0, Call: 7, Return: 8, Kind: "contains", Arg: 5, Result: 0},
	}
	// contains(5)=1 overlaps the remove, so it can linearize before it.
	if !Check(SetModel{}, h) {
		t.Fatal("legal set history rejected")
	}
}

func TestSetNonLinearizable(t *testing.T) {
	// contains sees the element after a strictly-earlier successful remove
	// with no other adds.
	h := []Op{
		{Thread: 0, Call: 1, Return: 2, Kind: "add", Arg: 5, Result: 1},
		{Thread: 0, Call: 3, Return: 4, Kind: "remove", Arg: 5, Result: 1},
		{Thread: 1, Call: 5, Return: 6, Kind: "contains", Arg: 5, Result: 1},
	}
	if Check(SetModel{}, h) {
		t.Fatal("resurrected element accepted")
	}
}

func TestSetDoubleAddRejected(t *testing.T) {
	h := []Op{
		{Thread: 0, Call: 1, Return: 2, Kind: "add", Arg: 7, Result: 1},
		{Thread: 1, Call: 3, Return: 4, Kind: "add", Arg: 7, Result: 1},
	}
	if Check(SetModel{}, h) {
		t.Fatal("two successful adds of the same key accepted")
	}
}

func TestEmptyHistory(t *testing.T) {
	if !Check(CounterModel{}, nil) {
		t.Fatal("empty history rejected")
	}
}

func TestSetStateCodec(t *testing.T) {
	members := map[uint64]bool{1: true, 42: true, 7: true}
	st := encodeSet(members)
	back := decodeSet(st)
	if len(back) != 3 || !back[1] || !back[7] || !back[42] {
		t.Fatalf("codec round trip failed: %v", back)
	}
}
