// Package lincheck is a small linearizability checker (in the style of
// Wing & Gong) used to validate the constructions' central claim: that the
// concurrent histories they produce are linearizable with respect to the
// wrapped sequential object.
//
// A history is a set of completed operations with call/return timestamps
// drawn from a single atomic clock. The checker searches for a total order
// that (a) respects real-time precedence — if op A returned before op B was
// called, A must come first — and (b) replays legally on the sequential
// model, with every operation's recorded result matching the model's. The
// search memoizes (pending-set, model-state) pairs, which keeps small
// histories (tens of operations) tractable.
package lincheck

import (
	"fmt"
	"sort"
)

// Op is one completed operation.
type Op struct {
	Thread int
	Call   int64 // timestamp before invocation
	Return int64 // timestamp after completion
	Kind   string
	Arg    uint64
	Arg2   uint64 // second argument (e.g. the value of a KV put)
	Result uint64
}

// Model is a sequential specification. Implementations must be
// deterministic and State must be usable as a comparison key via Key.
type Model interface {
	// Init returns the initial state.
	Init() any
	// Step applies op's Kind/Arg to state, returning the successor state
	// and the result the operation should have produced. Step must not
	// mutate the given state.
	Step(state any, op Op) (any, uint64)
	// Key renders a state as a comparable memoization key.
	Key(state any) string
}

// Check reports whether history is linearizable with respect to model.
func Check(model Model, history []Op) bool {
	return checkWild(model, history, nil)
}

// checkWild is Check with an optional wildcard flag per history entry:
// a wild operation's recorded Result is ignored and any result the model
// produces is accepted. Durable-linearizability checking uses this for
// operations that were in flight at a crash, whose return value was lost
// with the power.
func checkWild(model Model, history []Op, wild []bool) bool {
	type entry struct {
		op   Op
		wild bool
	}
	entries := make([]entry, len(history))
	for i, op := range history {
		entries[i] = entry{op: op, wild: wild != nil && wild[i]}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].op.Call < entries[j].op.Call })
	c := &checker{
		model: model,
		ops:   make([]Op, len(entries)),
		wild:  make([]bool, len(entries)),
		done:  make([]bool, len(entries)),
		memo:  make(map[string]bool),
	}
	for i, e := range entries {
		c.ops[i] = e.op
		c.wild[i] = e.wild
	}
	return c.search(model.Init(), len(c.ops))
}

type checker struct {
	model Model
	ops   []Op
	wild  []bool
	done  []bool
	memo  map[string]bool
}

// search tries to linearize the remaining operations from state.
func (c *checker) search(state any, remaining int) bool {
	if remaining == 0 {
		return true
	}
	key := c.memoKey(state)
	if seen, ok := c.memo[key]; ok {
		return seen
	}
	// An operation is a candidate first linearization point iff no other
	// pending operation returned before it was called.
	minReturn := int64(1<<63 - 1)
	for i, op := range c.ops {
		if !c.done[i] && op.Return < minReturn {
			minReturn = op.Return
		}
	}
	ok := false
	for i, op := range c.ops {
		if c.done[i] || op.Call > minReturn {
			continue
		}
		next, res := c.model.Step(state, op)
		if !c.wild[i] && res != op.Result {
			continue
		}
		c.done[i] = true
		if c.search(next, remaining-1) {
			c.done[i] = false
			ok = true
			break
		}
		c.done[i] = false
	}
	c.memo[key] = ok
	return ok
}

func (c *checker) memoKey(state any) string {
	pend := make([]byte, len(c.ops))
	for i, d := range c.done {
		if d {
			pend[i] = '1'
		} else {
			pend[i] = '0'
		}
	}
	return string(pend) + "|" + c.model.Key(state)
}

// ---- Ready-made models -----------------------------------------------

// CounterModel specifies a fetch-and-increment counter: Kind "inc" returns
// the post-increment value; Kind "get" returns the current value.
type CounterModel struct{}

// Init implements Model.
func (CounterModel) Init() any { return uint64(0) }

// Step implements Model.
func (CounterModel) Step(state any, op Op) (any, uint64) {
	v := state.(uint64)
	switch op.Kind {
	case "inc":
		return v + 1, v + 1
	case "get":
		return v, v
	}
	panic("lincheck: unknown counter op " + op.Kind)
}

// Key implements Model.
func (CounterModel) Key(state any) string { return fmt.Sprint(state.(uint64)) }

// SetModel specifies an integer set: "add"/"remove" return 1 on success and
// 0 otherwise; "contains" returns membership.
type SetModel struct{}

// setState is an immutable small-set representation.
type setState struct {
	sorted string // canonical encoding of members
}

func encodeSet(members map[uint64]bool) setState {
	keys := make([]uint64, 0, len(members))
	for k := range members {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return setState{sorted: fmt.Sprint(keys)}
}

func decodeSet(s setState) map[uint64]bool {
	members := make(map[uint64]bool)
	var keys []uint64
	// Parse the canonical "[a b c]" encoding.
	var cur uint64
	in := false
	for _, ch := range s.sorted {
		switch {
		case ch >= '0' && ch <= '9':
			cur = cur*10 + uint64(ch-'0')
			in = true
		default:
			if in {
				keys = append(keys, cur)
				cur, in = 0, false
			}
		}
	}
	if in {
		keys = append(keys, cur)
	}
	for _, k := range keys {
		members[k] = true
	}
	return members
}

// Init implements Model.
func (SetModel) Init() any { return setState{sorted: "[]"} }

// Step implements Model.
func (SetModel) Step(state any, op Op) (any, uint64) {
	members := decodeSet(state.(setState))
	switch op.Kind {
	case "add":
		if members[op.Arg] {
			return state, 0
		}
		members[op.Arg] = true
		return encodeSet(members), 1
	case "remove":
		if !members[op.Arg] {
			return state, 0
		}
		delete(members, op.Arg)
		return encodeSet(members), 1
	case "contains":
		if members[op.Arg] {
			return state, 1
		}
		return state, 0
	}
	panic("lincheck: unknown set op " + op.Kind)
}

// Key implements Model.
func (SetModel) Key(state any) string { return state.(setState).sorted }

// KVModel specifies a key-value map over uint64 keys and values: "put"
// (Arg=key, Arg2=value) returns 0; "get" (Arg=key) returns the value or 0
// when absent — so histories must use nonzero values; "del" (Arg=key)
// returns 1 if the key was present.
type KVModel struct{}

// kvState is an immutable canonical map representation.
type kvState struct {
	sorted string // "[k=v k=v ...]" in ascending key order
}

func encodeKV(m map[uint64]uint64) kvState {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := "["
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%d=%d", k, m[k])
	}
	return kvState{sorted: out + "]"}
}

func decodeKV(s kvState) map[uint64]uint64 {
	m := make(map[uint64]uint64)
	var k, v uint64
	var in, after bool
	flush := func() {
		if in {
			m[k] = v
		}
		k, v, in, after = 0, 0, false, false
	}
	for _, ch := range s.sorted {
		switch {
		case ch >= '0' && ch <= '9':
			if after {
				v = v*10 + uint64(ch-'0')
			} else {
				k = k*10 + uint64(ch-'0')
			}
			in = true
		case ch == '=':
			after = true
		default:
			flush()
		}
	}
	flush()
	return m
}

// Init implements Model.
func (KVModel) Init() any { return kvState{sorted: "[]"} }

// Step implements Model.
func (KVModel) Step(state any, op Op) (any, uint64) {
	m := decodeKV(state.(kvState))
	switch op.Kind {
	case "put":
		if op.Arg2 == 0 {
			panic("lincheck: KVModel put with zero value (0 means absent)")
		}
		m[op.Arg] = op.Arg2
		return encodeKV(m), 0
	case "get":
		return state, m[op.Arg]
	case "del":
		if _, ok := m[op.Arg]; !ok {
			return state, 0
		}
		delete(m, op.Arg)
		return encodeKV(m), 1
	}
	panic("lincheck: unknown kv op " + op.Kind)
}

// Key implements Model.
func (KVModel) Key(state any) string { return state.(kvState).sorted }
