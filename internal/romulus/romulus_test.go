package romulus

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

func newR(t testing.TB, threads int, mode pmem.Mode) (*Romulus, *pmem.Pool) {
	t.Helper()
	pool := pmem.New(pmem.Config{Mode: mode, RegionWords: 1 << 16, Regions: 2})
	return New(pool, Config{Threads: threads}), pool
}

func TestNameAndProperties(t *testing.T) {
	r, _ := newR(t, 2, pmem.Direct)
	if r.Name() != "RomulusLR" {
		t.Errorf("Name() = %q", r.Name())
	}
	p := r.Properties()
	if p.Progress != ptm.Blocking || p.Replicas != "2" || p.FencesPerTx != "4" {
		t.Errorf("Properties() = %+v", p)
	}
}

func TestCounter(t *testing.T) {
	r, _ := newR(t, 1, pmem.Direct)
	addr := ptm.RootAddr(0)
	for i := 0; i < 200; i++ {
		r.Update(0, func(m ptm.Mem) uint64 {
			v := m.Load(addr) + 1
			m.Store(addr, v)
			return v
		})
	}
	if got := r.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) }); got != 200 {
		t.Fatalf("counter = %d, want 200", got)
	}
}

func TestBothReplicasStayConsistent(t *testing.T) {
	// After each update both replicas must contain the same heap, since
	// consecutive updates alternate write sides.
	r, _ := newR(t, 1, pmem.Direct)
	s := seqds.ListSet{RootSlot: 0}
	r.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
	for k := uint64(1); k <= 50; k++ {
		r.Update(0, func(m ptm.Mem) uint64 {
			s.Add(m, k)
			return 0
		})
	}
	// Two consecutive reads land on the same instance (no writer), so to
	// check both sides, inspect the regions directly.
	for side := 0; side < 2; side++ {
		keys := s.Keys(roMem{region: r.inst[side]})
		if len(keys) != 50 {
			t.Fatalf("side %d has %d keys, want 50", side, len(keys))
		}
	}
}

func TestFourFencesPerUpdate(t *testing.T) {
	r, pool := newR(t, 1, pmem.Direct)
	addr := ptm.RootAddr(0)
	r.Update(0, func(m ptm.Mem) uint64 { m.Store(addr, 1); return 0 })
	before := pool.Stats()
	const n = 50
	for i := 0; i < n; i++ {
		r.Update(0, func(m ptm.Mem) uint64 {
			m.Store(addr, m.Load(addr)+1)
			return 0
		})
	}
	d := pool.Stats().Sub(before)
	if got := d.Fences(); got != 4*n {
		t.Fatalf("%d fences for %d txs, want %d (4 per tx)", got, n, 4*n)
	}
}

func TestConcurrentCounter(t *testing.T) {
	const threads, per = 6, 200
	r, _ := newR(t, threads, pmem.Direct)
	addr := ptm.RootAddr(0)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Update(tid, func(m ptm.Mem) uint64 {
					v := m.Load(addr) + 1
					m.Store(addr, v)
					return v
				})
			}
		}(tid)
	}
	wg.Wait()
	if got := r.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) }); got != threads*per {
		t.Fatalf("counter = %d, want %d", got, threads*per)
	}
}

func TestReadersNeverTornWhileWriting(t *testing.T) {
	const readers, per = 4, 400
	r, _ := newR(t, readers+1, pmem.Direct)
	a, b := ptm.RootAddr(0), ptm.RootAddr(1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
				r.Update(readers, func(m ptm.Mem) uint64 {
					m.Store(a, i)
					m.Store(b, i)
					return 0
				})
			}
		}
	}()
	var torn sync.Map
	for tid := 0; tid < readers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if r.Read(tid, func(m ptm.Mem) uint64 {
					if m.Load(a) != m.Load(b) {
						return 1
					}
					return 0
				}) == 1 {
					torn.Store(tid, true)
					return
				}
			}
		}(tid)
	}
	go func() { wg.Wait() }()
	// Wait for readers, then stop the writer.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	close(stop)
	<-done
	torn.Range(func(k, v any) bool {
		t.Fatalf("reader %v observed a torn transaction", k)
		return false
	})
}

func TestSetAgainstModel(t *testing.T) {
	r, _ := newR(t, 1, pmem.Direct)
	s := seqds.HashSet{RootSlot: 0}
	r.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
	model := make(map[uint64]bool)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 800; i++ {
		k := uint64(rng.Intn(200))
		if rng.Intn(2) == 0 {
			r.Update(0, func(m ptm.Mem) uint64 {
				s.Add(m, k)
				return 0
			})
			model[k] = true
		} else {
			got := r.Read(0, func(m ptm.Mem) uint64 {
				if s.Contains(m, k) {
					return 1
				}
				return 0
			})
			if (got == 1) != model[k] {
				t.Fatalf("Contains(%d) = %d, model %v", k, got, model[k])
			}
		}
	}
}

func runAddsUntilCrash(t *testing.T, pool *pmem.Pool, n int, failPoint int64) (completed int, crashed bool) {
	t.Helper()
	defer func() {
		if rec := recover(); rec != nil {
			if rec != pmem.ErrSimulatedPowerFailure {
				panic(rec)
			}
			crashed = true
		}
		pool.InjectFailure(-1)
	}()
	r := New(pool, Config{Threads: 1})
	s := seqds.ListSet{RootSlot: 0}
	r.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
	pool.InjectFailure(failPoint)
	for k := 0; k < n; k++ {
		r.Update(0, func(m ptm.Mem) uint64 {
			s.Add(m, uint64(k)+1)
			return 0
		})
		completed++
	}
	return completed, false
}

func TestSystematicCrashPoints(t *testing.T) {
	const n = 20
	for fail := int64(1); ; fail += 7 {
		pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 2})
		completed, crashed := runAddsUntilCrash(t, pool, n, fail)
		if !crashed {
			if completed != n {
				t.Fatalf("no crash but %d/%d completed", completed, n)
			}
			break
		}
		pool.Crash(pmem.CrashConservative, nil)
		r := New(pool, Config{Threads: 1})
		s := seqds.ListSet{RootSlot: 0}
		keys := seqds.ReadSlice(r, 0, s.Keys)
		if len(keys) < completed || len(keys) > n {
			t.Fatalf("fail=%d: recovered %d keys, completed %d", fail, len(keys), completed)
		}
		for i, k := range keys {
			if k != uint64(i)+1 {
				t.Fatalf("fail=%d: not a prefix at %d", fail, i)
			}
		}
	}
}

func TestAdversarialCrashPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n = 15
	for fail := int64(1); ; fail += 11 {
		pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 2})
		completed, crashed := runAddsUntilCrash(t, pool, n, fail)
		if !crashed {
			break
		}
		pool.Crash(pmem.CrashAdversarial, rng)
		r := New(pool, Config{Threads: 1})
		s := seqds.ListSet{RootSlot: 0}
		keys := seqds.ReadSlice(r, 0, s.Keys)
		if len(keys) < completed {
			t.Fatalf("fail=%d: recovered %d keys, completed %d", fail, len(keys), completed)
		}
		for i, k := range keys {
			if k != uint64(i)+1 {
				t.Fatalf("fail=%d: not a prefix at %d", fail, i)
			}
		}
	}
}
