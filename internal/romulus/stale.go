package romulus

import "repro/internal/pmem"

// StaleRanges reports the replica that committed state does not reach.
// Romulus only has one: while a mutation is in flight (MUTATING/COPYING)
// the non-fresh side is about to be overwritten — by recovery's copy or by
// the patch step — so bit flips there must never surface. In the IDLE phase
// *both* sides are live (the next writer mutates the non-fresh side in
// place, trusting it equals the fresh one), so nothing is stale. With no
// valid header nothing is committed and both sides are fair game.
func StaleRanges(pool *pmem.Pool) []pmem.Range {
	hdr := pool.PersistedHeader(headerSlot)
	if hdr&1 == 0 {
		return []pmem.Range{pool.WholeRegion(0), pool.WholeRegion(1)}
	}
	phase, fresh := unpackHdr(hdr)
	if phase == phaseIdle {
		return nil
	}
	return []pmem.Range{pool.WholeRegion(1 - fresh)}
}
