package romulus

import (
	"reflect"
	"testing"

	"repro/internal/pmem"
	"repro/internal/seqds"
)

// TestRecoverIsIdempotent recovers the same crashed pool repeatedly:
// recovery of an already-recovered image must reproduce the same logical
// state and issue exactly the same persistence work each time — the
// fresh-side copy can always be re-run from the top after a mid-recovery
// crash (the nested-failure model).
func TestRecoverIsIdempotent(t *testing.T) {
	pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 2})
	_, crashed := runAddsUntilCrash(t, pool, 20, 57)
	if !crashed {
		t.Fatal("failure point never fired")
	}
	pool.Crash(pmem.CrashConservative, nil)
	var stats [3]pmem.StatsSnapshot
	var keys [3][]uint64
	for i := range stats {
		pool.ResetStats()
		r := New(pool, Config{Threads: 1})
		stats[i] = pool.Stats()
		s := seqds.ListSet{RootSlot: 0}
		keys[i] = seqds.ReadSlice(r, 0, s.Keys)
		pool.Crash(pmem.CrashConservative, nil)
	}
	if !reflect.DeepEqual(keys[1], keys[0]) || !reflect.DeepEqual(keys[2], keys[1]) {
		t.Fatalf("recovered state drifted across recoveries: %v / %v / %v",
			keys[0], keys[1], keys[2])
	}
	if stats[1] != stats[2] {
		t.Fatalf("recovery work drifted: %+v vs %+v", stats[1], stats[2])
	}
}
