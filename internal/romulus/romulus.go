// Package romulus implements RomulusLR (Correia, Felber, Ramalhete — SPAA
// 2018), the two-replica persistent transactional memory that the paper
// positions in its design space (Fig. 1) as efficient but blocking: update
// transactions are serialized and blocking (starvation-free), read-only
// transactions are wait-free through a left-right mechanism, and every
// update issues four persistence fences — the cost the CX and Redo
// constructions cut to two.
//
// The construction keeps two full replicas in NVMM and guarantees at least
// one is always consistent:
//
//  1. The header records {MUTATING, fresh=old side} and is synced (fence 1).
//  2. The transaction executes in place on the write side, with interposed
//     stores flushing their lines; a fence orders them (fence 2).
//  3. The header records {COPYING, fresh=write side} and is synced
//     (fence 3) — the commit point.
//  4. Readers are toggled over to the write side; once the old side drains,
//     the recorded modifications are patched onto it and fenced (fence 4).
//
// Recovery copies the side the header names fresh onto the other — whole
// ranges, no logs ("p - physical, 2+2R" in spirit, here per modified word).
package romulus

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/palloc"
	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/rwlock"
)

// Header slot: phase<<2 | freshIdx<<1 | valid.
const headerSlot = 0

const (
	phaseIdle = iota
	phaseMutating
	phaseCopying
)

func packHdr(phase, fresh int) uint64 { return uint64(phase)<<2 | uint64(fresh)<<1 | 1 }
func unpackHdr(v uint64) (phase, fresh int) {
	return int(v >> 2), int(v>>1) & 1
}

// Romulus is the RomulusLR engine. The pool must have exactly 2 regions.
type Romulus struct {
	cfg  Config
	pool *pmem.Pool
	inst [2]*pmem.Region
	ri   [2]*rwlock.StrongTryRWLock // read indicators (shared mode only)
	lr   atomic.Int32               // which instance readers use
	mu   sync.Mutex                 // serializes update transactions

	// Write-set of the running transaction (owner-only).
	wsAddrs []uint64
	dirty   []uint64
}

// Config parameterizes the engine.
type Config struct {
	Threads int
	Profile *ptm.Profile
}

// New creates (or recovers) a RomulusLR instance over pool.
func New(pool *pmem.Pool, cfg Config) *Romulus {
	if cfg.Threads <= 0 {
		panic("romulus: Threads must be positive")
	}
	if pool.Regions() != 2 {
		panic("romulus: pool must have exactly 2 regions")
	}
	r := &Romulus{cfg: cfg, pool: pool}
	r.inst[0], r.inst[1] = pool.Region(0), pool.Region(1)
	r.ri[0], r.ri[1] = rwlock.New(cfg.Threads), rwlock.New(cfg.Threads)
	pool.TraceEvent(obs.KindRecoveryBegin, -1, -1, 0, 0, 0)
	hdr := pool.PersistedHeader(headerSlot)
	if hdr&1 != 0 {
		r.recover(hdr)
	} else {
		palloc.Format(rawMem{r.inst[0]}, pool.RegionWords())
		meta := palloc.MetaWords(rawMem{r.inst[0]})
		r.inst[0].FlushRange(0, meta)
		r.inst[0].PFence()
		pool.TraceEvent(obs.KindPublish, -1, 0, 0, meta, obs.PubHeap)
		r.inst[1].CopyFrom(r.inst[0], meta)
		r.inst[1].FlushRange(0, meta)
		r.inst[1].PFence()
		pool.TraceEvent(obs.KindPublish, -1, 1, 0, meta, obs.PubHeap)
		pool.HeaderStore(headerSlot, packHdr(phaseIdle, 0))
		pool.PWBHeader(headerSlot)
		pool.PSync()
		pool.TraceEvent(obs.KindHeaderPublish, -1, -1, headerSlot, 1, 0)
	}
	pool.TraceEvent(obs.KindRecoveryEnd, -1, -1, 0, 0, 0)
	return r
}

// recover restores the invariant that both replicas are consistent by
// copying the fresh side over the other.
func (r *Romulus) recover(hdr uint64) {
	phase, fresh := unpackHdr(hdr)
	if phase != phaseIdle {
		src, dst := r.inst[fresh], r.inst[1-fresh]
		used := palloc.UsedWords(rawMem{src})
		dst.CopyFrom(src, used)
		dst.FlushRange(0, used)
		dst.PFence()
		// used is the fresh side's runtime high-water mark.
		r.pool.TraceEvent(obs.KindPublish, -1, dst.Index(), 0, used, obs.PubHeap)
	}
	r.lr.Store(int32(fresh))
	r.pool.HeaderStore(headerSlot, packHdr(phaseIdle, fresh))
	r.pool.PWBHeader(headerSlot)
	r.pool.PSync()
	r.pool.TraceEvent(obs.KindHeaderPublish, -1, -1, headerSlot, 1, 0)
}

// MaxThreads implements ptm.PTM.
func (r *Romulus) MaxThreads() int { return r.cfg.Threads }

// Name implements ptm.PTM.
func (r *Romulus) Name() string { return "RomulusLR" }

// Properties implements ptm.PTM: blocking (starvation-free) updates,
// wait-free reads, four fences per update, two replicas.
func (r *Romulus) Properties() ptm.Properties {
	return ptm.Properties{
		Log:         ptm.NoLog,
		Progress:    ptm.Blocking,
		FencesPerTx: "4",
		Replicas:    "2",
	}
}

// Update implements ptm.PTM.
//
//pmemvet:allow:fenceorder -- deliberate fence elision on the IDLE marker: recovery from COPYING replays the same copy, so the marker only needs to be durable by the next transaction's first PSync
func (r *Romulus) Update(tid int, fn func(ptm.Mem) uint64) uint64 {
	txStart := now(r.cfg.Profile)
	r.mu.Lock()
	defer r.mu.Unlock()
	readSide := int(r.lr.Load())
	writeSide := 1 - readSide
	w := r.inst[writeSide]
	r.wsAddrs = r.wsAddrs[:0]
	r.dirty = r.dirty[:0]
	// 1. Announce the mutation; the read side stays fresh.
	r.pool.HeaderStore(headerSlot, packHdr(phaseMutating, readSide))
	r.pool.PWBHeader(headerSlot)
	r.pool.PSync()
	r.pool.TraceEvent(obs.KindHeaderPublish, tid, -1, headerSlot, 1, 0)
	// 2. Run in place on the write side.
	lambdaStart := now(r.cfg.Profile)
	res := fn(txMem{r: r, region: w})
	r.cfg.Profile.AddLambda(since(r.cfg.Profile, lambdaStart))
	flushStart := now(r.cfg.Profile)
	flushLines(w, r.dirty)
	w.PFence()
	if r.pool.Traced() {
		// The write side's full used heap is durable here: this round's
		// stores were just flushed and fenced, and every earlier round's
		// patch onto this side was fenced when it was applied.
		r.pool.TraceEvent(obs.KindPublish, tid, w.Index(),
			0, palloc.UsedWords(rawMem{w}), obs.PubHeap)
	}
	// 3. Commit: the write side is now the fresh one.
	r.pool.HeaderStore(headerSlot, packHdr(phaseCopying, writeSide))
	r.pool.PWBHeader(headerSlot)
	r.pool.PSync()
	r.pool.TraceEvent(obs.KindHeaderPublish, tid, -1, headerSlot, 1, 0)
	r.cfg.Profile.AddFlush(since(r.cfg.Profile, flushStart))
	// 4. Move readers over and patch the old side.
	r.lr.Store(int32(writeSide))
	for r.ri[readSide].Readers() != 0 {
		// Blocking, but starvation-free: readers drain in finite
		// steps and new readers go to the write side.
		runtime.Gosched()
	}
	copyStart := now(r.cfg.Profile)
	old := r.inst[readSide]
	for _, addr := range r.wsAddrs {
		old.Store(addr, w.Load(addr))
	}
	flushLines(old, r.dirty)
	old.PFence()
	if r.pool.Traced() {
		r.pool.TraceEvent(obs.KindPublish, tid, old.Index(),
			0, palloc.UsedWords(rawMem{old}), obs.PubHeap)
	}
	r.cfg.Profile.AddCopy(since(r.cfg.Profile, copyStart))
	// Deferred durability of the IDLE marker: the next transaction's
	// first psync covers it, and recovery from COPYING is idempotent
	// (the scoped pmemvet:allow on Update documents this elision).
	r.pool.HeaderStore(headerSlot, packHdr(phaseIdle, writeSide))
	r.pool.PWBHeader(headerSlot)
	r.cfg.Profile.AddTx(since(r.cfg.Profile, txStart))
	return res
}

// Read implements ptm.PTM: wait-free left-right reads.
func (r *Romulus) Read(tid int, fn func(ptm.Mem) uint64) uint64 {
	for {
		side := int(r.lr.Load())
		if !r.ri[side].SharedTryLock(tid) {
			continue
		}
		if int(r.lr.Load()) != side {
			r.ri[side].SharedUnlock(tid)
			continue
		}
		res := fn(roMem{region: r.inst[side]})
		r.ri[side].SharedUnlock(tid)
		return res
	}
}

// txMem interposes stores for the dual-replica patch.
type txMem struct {
	r      *Romulus
	region *pmem.Region
}

func (m txMem) Load(addr uint64) uint64 { return m.region.Load(addr) }

func (m txMem) Store(addr, val uint64) {
	m.region.Store(addr, val)
	m.r.wsAddrs = append(m.r.wsAddrs, addr)
	m.r.dirty = append(m.r.dirty, addr/pmem.WordsPerLine)
}

func (m txMem) Alloc(words uint64) uint64 { return palloc.Alloc(m, words) }
func (m txMem) Free(addr uint64)          { palloc.Free(m, addr) }

// roMem is the wait-free read view.
type roMem struct {
	region *pmem.Region
}

func (m roMem) Load(addr uint64) uint64 { return m.region.Load(addr) }
func (m roMem) Store(addr, val uint64) {
	panic("romulus: Store inside a read-only transaction")
}
func (m roMem) Alloc(words uint64) uint64 {
	panic("romulus: Alloc inside a read-only transaction")
}
func (m roMem) Free(addr uint64) {
	panic("romulus: Free inside a read-only transaction")
}

// rawMem formats and inspects replicas directly.
type rawMem struct {
	region *pmem.Region
}

func (m rawMem) Load(addr uint64) uint64 { return m.region.Load(addr) }
func (m rawMem) Store(addr, val uint64)  { m.region.Store(addr, val) }

// flushLines dedupes and flushes the given lines.
func flushLines(region *pmem.Region, lines []uint64) {
	if len(lines) == 0 {
		return
	}
	sorted := append([]uint64(nil), lines...)
	sortLines(sorted)
	last := ^uint64(0)
	for _, line := range sorted {
		if line != last {
			region.PWB(line * pmem.WordsPerLine)
			last = line
		}
	}
}

// sortLines is a small shell sort, avoiding a sort import dependency churn.
func sortLines(a []uint64) {
	for gap := len(a) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(a); i++ {
			for j := i; j >= gap && a[j-gap] > a[j]; j -= gap {
				a[j-gap], a[j] = a[j], a[j-gap]
			}
		}
	}
}

func now(p *ptm.Profile) time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

func since(p *ptm.Profile, t time.Time) time.Duration {
	if p == nil {
		return 0
	}
	return time.Since(t)
}
