package shardeddb

import (
	"fmt"
	"sync"
	"testing"
)

// TestRaceSmoke is a short high-contention workload meant for `go test
// -race` (ci.sh runs it with the detector on): concurrent sessions mix
// single-key puts/gets with cross-shard batches, exercising the per-shard
// redo engines, the batch coordinator's intent record and the
// lastCommitted publication. It asserts only coarse correctness (every key
// readable afterwards); the race detector is the real assertion.
func TestRaceSmoke(t *testing.T) {
	const threads, perThread = 4, 12
	g := NewGroup(GroupConfig{Shards: 2, Threads: threads})
	db := Open(g, Options{Threads: threads})
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			s := db.Session(tid)
			for i := 0; i < perThread; i++ {
				key := []byte(fmt.Sprintf("k-%d-%d", tid, i))
				s.Put(key, key)
				if v, ok := s.Get(key); !ok || string(v) != string(key) {
					t.Errorf("Get(%s) = %q, %v", key, v, ok)
				}
				if i%4 == 0 {
					var b WriteBatch
					b.Put([]byte(fmt.Sprintf("ba-%d-%d", tid, i)), key)
					b.Put([]byte(fmt.Sprintf("bb-%d-%d", tid, i)), key)
					s.Write(&b)
				}
			}
		}(tid)
	}
	wg.Wait()
	s := db.Session(0)
	for tid := 0; tid < threads; tid++ {
		for i := 0; i < perThread; i++ {
			key := fmt.Sprintf("k-%d-%d", tid, i)
			if !s.Has([]byte(key)) {
				t.Fatalf("key %s lost after concurrent workload", key)
			}
			if i%4 == 0 {
				if !s.Has([]byte(fmt.Sprintf("ba-%d-%d", tid, i))) {
					t.Fatalf("batch key ba-%d-%d lost after concurrent workload", tid, i)
				}
			}
		}
	}
}
