package shardeddb

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// The WriteBatch arena-reuse suite (PR 9): a network server assembles one
// batch per connection from frame-decode scratch buffers and recycles it
// with Clear after every Write. These tests pin the two halves of that
// contract — Put snapshots its arguments (caller scratch may be overwritten
// immediately), and no Write path retains arena bytes past return (Clear
// may recycle them immediately), across the single-shard fast path, the
// cross-shard coordinator path, the detectable path, and buffered mode.

// TestWriteBatchArenaReuse hammers one reused batch through sync and
// buffered DBs, overwriting both the caller scratch and the arena between
// rounds, then verifies every round's writes landed with the bytes they had
// at Put time.
func TestWriteBatchArenaReuse(t *testing.T) {
	for _, buffered := range []bool{false, true} {
		t.Run(fmt.Sprintf("buffered=%v", buffered), func(t *testing.T) {
			g := NewGroup(GroupConfig{Shards: 4, Threads: 1, Buffered: buffered})
			db := Open(g, Options{Threads: 1, Buffered: buffered, PersistEvery: -1})
			s := db.Session(0)

			scratchKey := make([]byte, 16)
			scratchVal := make([]byte, 32)
			b := &WriteBatch{}
			const rounds, perBatch = 20, 8
			for r := 0; r < rounds; r++ {
				b.Clear()
				for i := 0; i < perBatch; i++ {
					// The scratch buffers are overwritten in place for every
					// op — exactly what a connection's frame decoder does.
					key := fmt.Appendf(scratchKey[:0], "reuse-%02d-%02d", r, i)
					val := fmt.Appendf(scratchVal[:0], "value-%02d-%02d-xxxx", r, i)
					if r > 0 && i == perBatch-1 {
						b.Delete(fmt.Appendf(scratchKey[:0], "reuse-%02d-%02d", r-1, 0))
					} else {
						b.Put(key, val)
					}
				}
				if r%3 == 2 {
					s.WriteDetectable(b, 77, uint64(r+1))
				} else {
					s.Write(b)
				}
				// Poison the arena after Write returns: if any path retained
				// a reference into it, the stored values would corrupt.
				for i := range b.buf {
					b.buf[i] = 0xee
				}
			}
			if buffered {
				s.Sync()
			}
			for r := 0; r < rounds; r++ {
				for i := 0; i < perBatch; i++ {
					key := []byte(fmt.Sprintf("reuse-%02d-%02d", r, i))
					want := []byte(fmt.Sprintf("value-%02d-%02d-xxxx", r, i))
					deleted := r < rounds-1 && i == 0
					skipped := r > 0 && i == perBatch-1
					got, ok := s.Get(key)
					switch {
					case skipped:
						if ok {
							t.Fatalf("round %d op %d: delete-slot key unexpectedly present", r, i)
						}
					case deleted:
						if ok {
							t.Fatalf("round %d op %d: deleted key still present (%q)", r, i, got)
						}
					case !ok:
						t.Fatalf("round %d op %d: key missing", r, i)
					case !bytes.Equal(got, want):
						t.Fatalf("round %d op %d: value corrupted by arena reuse: %q != %q", r, i, got, want)
					}
				}
			}
		})
	}
}

// TestWriteBatchPutSnapshots pins the Put-time snapshot alone: mutating the
// caller's slices after Put but before Write must not change what lands.
func TestWriteBatchPutSnapshots(t *testing.T) {
	g := NewGroup(GroupConfig{Shards: 2, Threads: 1})
	s := Open(g, Options{Threads: 1}).Session(0)
	key := []byte("snap-key")
	val := []byte("snap-val")
	b := &WriteBatch{}
	b.Put(key, val)
	copy(key, "CLOBBERED")
	copy(val, "CLOBBERED")
	s.Write(b)
	if got, ok := s.Get([]byte("snap-key")); !ok || !bytes.Equal(got, []byte("snap-val")) {
		t.Fatalf("post-Put caller mutation leaked into the store: %q %v", got, ok)
	}
}

// TestRaceSmokeConnBatches is the pipelined-connection shape under -race:
// N sessions (one per simulated connection) each recycle their own arena
// batch while hammering an overlapping key range, concurrently with
// cross-shard iterator snapshots. Run by ci.sh's -race smoke line.
func TestRaceSmokeConnBatches(t *testing.T) {
	const conns = 4
	g := NewGroup(GroupConfig{Shards: 4, Threads: conns + 1})
	db := Open(g, Options{Threads: conns + 1})
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			s := db.Session(tid)
			b := &WriteBatch{}
			scratch := make([]byte, 0, 32)
			for r := 0; r < 40; r++ {
				b.Clear()
				for i := 0; i < 6; i++ {
					// Overlapping keys across all connections.
					k := fmt.Appendf(scratch[:0], "hot-%02d", (r+i*7)%16)
					b.Put(k, fmt.Appendf(nil, "c%d-r%d", tid, r))
				}
				if r%2 == 0 {
					s.Write(b)
				} else {
					s.WriteDetectable(b, uint64(tid)+1, uint64(r/2)+1)
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := db.Session(conns)
		for i := 0; i < 10; i++ {
			it := s.NewIterator()
			for it.Next() {
				if len(it.Key()) == 0 {
					t.Error("empty key in snapshot")
				}
			}
		}
	}()
	wg.Wait()
}
