package shardeddb

import (
	"fmt"
	"testing"

	"repro/internal/pmem"
)

func TestShardedDetectableOps(t *testing.T) {
	g := NewGroup(GroupConfig{Shards: 4, Threads: 1})
	s := Open(g, Options{Threads: 1}).Session(0)
	const client = 11

	if !s.PutDetectable(client, 1, []byte("a-key"), []byte("v1")) {
		t.Fatal("first PutDetectable deduplicated")
	}
	if s.PutDetectable(client, 1, []byte("a-key"), []byte("v1")) {
		t.Fatal("retried PutDetectable applied twice")
	}
	if !s.WasApplied(client, 1) {
		t.Fatal("WasApplied false after commit")
	}
	if !s.DeleteDetectable(client, 2, []byte("a-key")) {
		t.Fatal("first DeleteDetectable deduplicated")
	}
	if s.DeleteDetectable(client, 2, []byte("a-key")) {
		t.Fatal("retried DeleteDetectable applied twice")
	}

	// Cross-shard detectable batch: scattered keys, then a retry.
	b := &WriteBatch{}
	for i := 0; i < 6; i++ {
		b.Put([]byte(fmt.Sprintf("%c-det", 'a'+i)), []byte("w"))
	}
	if !s.WriteDetectable(b, client, 3) {
		t.Fatal("first WriteDetectable deduplicated")
	}
	if s.WriteDetectable(b, client, 3) {
		t.Fatal("retried WriteDetectable applied twice")
	}
	for i := 0; i < 6; i++ {
		if !s.Has([]byte(fmt.Sprintf("%c-det", 'a'+i))) {
			t.Fatalf("batch key %d missing", i)
		}
	}
	// Single-shard detectable batch takes the fast path.
	sb := &WriteBatch{}
	sb.Put([]byte("solo"), []byte("x"))
	if !s.WriteDetectable(sb, client, 4) {
		t.Fatal("single-shard WriteDetectable deduplicated")
	}
	if s.WriteDetectable(sb, client, 4) {
		t.Fatal("retried single-shard WriteDetectable applied twice")
	}
	// Empty batch: still consumes the seq with a bare receipt.
	if !s.WriteDetectable(&WriteBatch{}, client, 5) {
		t.Fatal("empty WriteDetectable deduplicated")
	}
	if s.WriteDetectable(&WriteBatch{}, client, 5) {
		t.Fatal("retried empty WriteDetectable applied twice")
	}

	if r, mx, a := s.DetectStats(client); r != 5 || mx != 5 || a != 0 {
		t.Fatalf("DetectStats = (%d, %d, %d), want (5, 5, 0)", r, mx, a)
	}
	s.AckApplied(client, 5)
	if r, mx, a := s.DetectStats(client); r != 5 || mx != 5 || a != 5 {
		t.Fatalf("DetectStats after ack = (%d, %d, %d), want (5, 5, 5)", r, mx, a)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if !s.WasApplied(client, seq) {
			t.Fatalf("acked seq %d no longer applied", seq)
		}
	}
}

// TestShardedDetectableCrashExactlyOnce sweeps power failures across
// cross-shard detectable batches and runs the client recovery protocol after
// each: probe WasApplied, retry unapplied requests, and verify every batch is
// present exactly once and atomically — whether it was finished by the first
// attempt, by recovery's roll-forward of the intent (which re-records the
// receipt on the home shard), or by the retry.
func TestShardedDetectableCrashExactlyOnce(t *testing.T) {
	const batches = 6
	const perBatch = 5
	const client = 17
	key := func(b uint64, i int) []byte {
		return []byte(fmt.Sprintf("%c-det%02d", 'a'+i, b))
	}
	for _, shards := range []int{1, 8} {
		for fail := int64(20); ; fail += 101 {
			g := NewGroup(GroupConfig{Shards: shards, Threads: 1, Mode: pmem.Strict})
			crashed := false
			func() {
				defer func() {
					if r := recover(); r != nil {
						if r != pmem.ErrSimulatedPowerFailure {
							panic(r)
						}
						crashed = true
					}
					g.InjectFailure(-1)
				}()
				s := Open(g, Options{Threads: 1}).Session(0)
				g.InjectFailure(fail)
				for b := uint64(1); b <= batches; b++ {
					batch := &WriteBatch{}
					for i := 0; i < perBatch; i++ {
						batch.Put(key(b, i), []byte(fmt.Sprintf("v%d", b)))
					}
					s.WriteDetectable(batch, client, b)
				}
			}()
			if !crashed {
				break
			}
			g.Crash(pmem.CrashConservative, nil)
			s := Open(g, Options{Threads: 1}).Session(0)

			// Atomicity + probe soundness: a receipted batch is fully
			// present, an unreceipted one fully absent (recovery already
			// rolled forward or discarded any surviving intent).
			for b := uint64(1); b <= batches; b++ {
				present := 0
				for i := 0; i < perBatch; i++ {
					if s.Has(key(b, i)) {
						present++
					}
				}
				if s.WasApplied(client, b) && present != perBatch {
					t.Fatalf("shards=%d fail=%d: batch %d receipted but %d/%d keys present",
						shards, fail, b, present, perBatch)
				}
				if !s.WasApplied(client, b) && present != 0 {
					t.Fatalf("shards=%d fail=%d: batch %d unreceipted but %d keys present",
						shards, fail, b, present)
				}
			}

			// Retry storm: re-issue every batch; exactly the unreceipted
			// ones must apply.
			for b := uint64(1); b <= batches; b++ {
				pre := s.WasApplied(client, b)
				batch := &WriteBatch{}
				for i := 0; i < perBatch; i++ {
					batch.Put(key(b, i), []byte(fmt.Sprintf("v%d", b)))
				}
				if appliedNow := s.WriteDetectable(batch, client, b); appliedNow == pre {
					t.Fatalf("shards=%d fail=%d: retry of batch %d applied=%v with prior receipt=%v",
						shards, fail, b, appliedNow, pre)
				}
			}
			for b := uint64(1); b <= batches; b++ {
				for i := 0; i < perBatch; i++ {
					if v, ok := s.Get(key(b, i)); !ok || string(v) != fmt.Sprintf("v%d", b) {
						t.Fatalf("shards=%d fail=%d: after retries batch %d key %d = %q,%v",
							shards, fail, b, i, v, ok)
					}
				}
			}
			if r, mx, _ := s.DetectStats(client); r != batches || mx != batches {
				t.Fatalf("shards=%d fail=%d: receipts=%d maxSeq=%d, want %d each",
					shards, fail, r, mx, uint64(batches))
			}
		}
	}
}

// TestIntentReceiptRoundTrip exercises the flagged intent payload encoding,
// including the home shard carrying no operations of its own.
func TestIntentReceiptRoundTrip(t *testing.T) {
	ops := []batchOp{
		{key: []byte("k1"), val: []byte("v1")},
		{key: []byte("k2"), del: true},
	}
	plain := encodeIntent(ops, nil)
	gotOps, rcpt := decodeIntent(plain, 4)
	if rcpt != nil || len(gotOps) != 2 || string(gotOps[0].key) != "k1" || !gotOps[1].del {
		t.Fatalf("plain round trip = %+v, %+v", gotOps, rcpt)
	}
	want := &intentReceipt{client: 7, seq: 42, digest: 0xdead, home: 3}
	gotOps, rcpt = decodeIntent(encodeIntent(ops, want), 4)
	if rcpt == nil || *rcpt != *want || len(gotOps) != 2 {
		t.Fatalf("receipt round trip = %+v, %+v", gotOps, rcpt)
	}

	mustCorrupt := func(name string, f func()) {
		defer func() {
			if _, ok := recover().(*pmem.CorruptionError); !ok {
				t.Fatalf("%s did not raise a corruption error", name)
			}
		}()
		f()
	}
	mustCorrupt("home out of range", func() { decodeIntent(encodeIntent(ops, want), 2) })
	mustCorrupt("unknown flags", func() {
		buf := append([]byte(nil), plain...)
		buf[0] = 9
		decodeIntent(buf, 4)
	})
	mustCorrupt("truncated receipt", func() { decodeIntent(encodeIntent(ops, want)[:16], 4) })
	mustCorrupt("short header", func() { decodeIntent(nil, 4) })
}
