package shardeddb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/pmem"
)

// TestIteratorSnapshotConsistency is the cross-shard snapshot property test:
// concurrent writers apply batches that set EVERY probe key to the same
// generation, so any iterator that observes two different generations (or a
// strict subset of the keys) has caught a torn batch. Additionally, an
// iterator started after batch B committed must see B or newer — never an
// earlier prefix. Runs at every shard count in {1, 2, 8}.
func TestIteratorSnapshotConsistency(t *testing.T) {
	const probes = 16
	const gens = 60
	keys := make([][]byte, probes)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("probe%02d", i))
	}
	for _, shards := range []int{1, 2, 8} {
		g := NewGroup(GroupConfig{Shards: shards, Threads: 3, Mode: pmem.Direct})
		db := Open(g, Options{Threads: 3})

		var committed atomic.Int64 // highest generation durably committed
		committed.Store(-1)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.Session(0)
			for gen := 0; gen < gens; gen++ {
				b := &WriteBatch{}
				for _, k := range keys {
					b.Put(k, []byte{byte(gen)})
				}
				s.Write(b)
				committed.Store(int64(gen))
			}
		}()

		errs := make(chan error, 2)
		for r := 1; r <= 2; r++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				s := db.Session(tid)
				lastSeen := int64(-1)
				for {
					floor := committed.Load()
					it := s.NewIterator()
					n := 0
					gen := int64(-1)
					for it.Next() {
						n++
						g := int64(it.Value()[0])
						if gen == -1 {
							gen = g
						} else if g != gen {
							errs <- fmt.Errorf("shards=%d: torn snapshot: generations %d and %d in one iterator", shards, gen, g)
							return
						}
					}
					if n != 0 && n != probes {
						errs <- fmt.Errorf("shards=%d: snapshot holds %d of %d probe keys", shards, n, probes)
						return
					}
					if gen < floor {
						errs <- fmt.Errorf("shards=%d: iterator started after gen %d committed saw gen %d", shards, floor, gen)
						return
					}
					if gen < lastSeen {
						errs <- fmt.Errorf("shards=%d: snapshots went backwards: %d after %d", shards, gen, lastSeen)
						return
					}
					lastSeen = gen
					if floor >= gens-1 {
						return
					}
				}
			}(r)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}
