package shardeddb

import (
	"bytes"
	"sort"
)

// Iterator iterates a cross-shard snapshot in ascending key order. Each
// shard contributes one durable-linearizable snapshot (a single RedoDB read
// transaction); the merge is validated so that every cross-shard batch is
// observed all-or-nothing.
type Iterator struct {
	pairs []kv
	pos   int
}

type kv struct {
	key, val []byte
}

// snapAttempts is how many optimistic snapshot rounds NewIterator tries
// before serializing against cross-shard batches.
const snapAttempts = 3

// NewIterator takes a batch-consistent snapshot across every shard and
// positions the iterator before the first key.
//
// Validation: let L be the volatile lastCommitted sequence number read
// before snapshotting. Every batch with seq <= L was fully applied on all
// shards before L was published, so each per-shard snapshot (taken after)
// contains it entirely. Each snapshot also returns its shard's tag — the
// last batch sequence applied there. If every tag is <= L, no snapshot
// contains any piece of a batch newer than L either, so each batch is
// either in every relevant snapshot or in none. A tag above L means a
// concurrent batch landed mid-collection; retry, and after snapAttempts
// fall back to holding batchMu, under which tags cannot advance.
func (s *Session) NewIterator() *Iterator {
	for try := 0; try < snapAttempts; try++ {
		low := s.db.lastCommitted.Load()
		pairs, maxTag := s.collect()
		if maxTag <= low {
			return newIterator(pairs)
		}
	}
	s.db.batchMu.Lock()
	defer s.db.batchMu.Unlock()
	pairs, _ := s.collect()
	return newIterator(pairs)
}

// collect snapshots every shard, returning the merged pairs and the largest
// per-shard batch tag observed.
func (s *Session) collect() ([]kv, uint64) {
	var pairs []kv
	var maxTag uint64
	for _, sh := range s.sess {
		it, tag := sh.NewIteratorTagged(tagRoot)
		if tag > maxTag {
			maxTag = tag
		}
		for it.Next() {
			pairs = append(pairs, kv{key: it.Key(), val: it.Value()})
		}
	}
	return pairs, maxTag
}

func newIterator(pairs []kv) *Iterator {
	// Shards partition the key space, so a sort of the concatenation is a
	// merge of already-sorted runs with no duplicates.
	sort.Slice(pairs, func(i, j int) bool { return bytes.Compare(pairs[i].key, pairs[j].key) < 0 })
	return &Iterator{pairs: pairs, pos: -1}
}

// Next advances the iterator, reporting whether a pair is available.
func (it *Iterator) Next() bool {
	if it.pos+1 >= len(it.pairs) {
		it.pos = len(it.pairs)
		return false
	}
	it.pos++
	return true
}

// Seek positions the iterator at the first key >= target, reporting whether
// such a key exists.
func (it *Iterator) Seek(target []byte) bool {
	i := sort.Search(len(it.pairs), func(i int) bool {
		return bytes.Compare(it.pairs[i].key, target) >= 0
	})
	it.pos = i
	return i < len(it.pairs)
}

// Valid reports whether the iterator is positioned at a pair.
func (it *Iterator) Valid() bool { return it.pos >= 0 && it.pos < len(it.pairs) }

// Key returns the current key; only valid when Valid().
func (it *Iterator) Key() []byte { return it.pairs[it.pos].key }

// Value returns the current value; only valid when Valid().
func (it *Iterator) Value() []byte { return it.pairs[it.pos].val }

// Len reports the number of pairs in the snapshot.
func (it *Iterator) Len() int { return len(it.pairs) }
