package shardeddb

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/pmem"
)

// bufOpts is the caller-driven buffered configuration the crash tests use.
var bufOpts = Options{Threads: 1, Buffered: true, PersistEvery: -1}

func bufGroup(shards int) *pmem.Group {
	return NewGroup(GroupConfig{Shards: shards, Threads: 1, Mode: pmem.Strict, Buffered: true})
}

// TestBufferedShardedSemantics covers the sharded buffered API: per-shard
// watermarks trail until Persist, Sync is the cross-shard barrier, and
// PutDurable/WriteDurable are durable on return.
func TestBufferedShardedSemantics(t *testing.T) {
	g := bufGroup(4)
	db := Open(g, bufOpts)
	if !db.Buffered() {
		t.Fatal("DB not in buffered mode")
	}
	s := db.Session(0)
	for i := 0; i < 16; i++ {
		s.Put([]byte(fmt.Sprintf("key%02d", i)), []byte{byte(i)})
	}
	lag := 0
	for sh := 0; sh < db.Shards(); sh++ {
		if db.DurableEpoch(sh) < db.CommittedEpoch(sh) {
			lag++
		}
	}
	if lag == 0 {
		t.Fatal("no shard watermark lags its committed epoch — buffering is not live")
	}
	s.Sync()
	for sh := 0; sh < db.Shards(); sh++ {
		if db.DurableEpoch(sh) < db.CommittedEpoch(sh) {
			t.Fatalf("shard %d watermark %d still behind tail %d after Sync",
				sh, db.DurableEpoch(sh), db.CommittedEpoch(sh))
		}
	}
	s.PutDurable([]byte("durable-key"), []byte("v"))
	b := &WriteBatch{}
	b.Put([]byte("wd-a"), []byte("1"))
	b.Put([]byte("wd-b"), []byte("2"))
	s.WriteDurable(b)
	for sh := 0; sh < db.Shards(); sh++ {
		if db.DurableEpoch(sh) < db.CommittedEpoch(sh) {
			t.Fatalf("shard %d not durable after WriteDurable", sh)
		}
	}
}

// TestBufferedCrossShardBatchAtomic pins the cross-shard Sync barrier: at
// every injected crash point inside a buffered cross-shard Write (intent
// publish, volatile sub-batch commits, per-shard persists, intent retire),
// recovery must observe the batch all-or-nothing — buffering must never
// turn a completed batch into a torn one.
func TestBufferedCrossShardBatchAtomic(t *testing.T) {
	for _, policy := range []pmem.CrashPolicy{pmem.CrashConservative, pmem.CrashAdversarial} {
		policy := policy
		t.Run(fmt.Sprintf("policy-%d", policy), func(t *testing.T) {
			for fail := int64(1); fail < 500; fail += 3 {
				g := bufGroup(2)
				crashed := false
				func() {
					defer func() {
						if r := recover(); r != nil {
							if r != pmem.ErrSimulatedPowerFailure {
								panic(r)
							}
							crashed = true
						}
						g.InjectFailure(-1)
					}()
					s := Open(g, bufOpts).Session(0)
					batch := &WriteBatch{}
					for i := 0; i < 6; i++ {
						batch.Put([]byte(fmt.Sprintf("%c-torn", 'a'+i)), []byte("x"))
					}
					g.InjectFailure(fail)
					s.Write(batch)
				}()
				if !crashed {
					continue
				}
				g.Crash(policy, newTestRand(fail))
				db := Open(g, bufOpts)
				if got := db.Group().Pool(0).Region(0).PersistedLoad(coordStatus); got != 0 {
					t.Fatalf("fail=%d: intent still open after recovery (status %d)", fail, got)
				}
				s := db.Session(0)
				present := 0
				for i := 0; i < 6; i++ {
					if _, ok := s.Get([]byte(fmt.Sprintf("%c-torn", 'a'+i))); ok {
						present++
					}
				}
				if present != 0 && present != 6 {
					t.Fatalf("fail=%d: torn batch after buffered recovery (%d/6 keys)", fail, present)
				}
			}
		})
	}
}

// TestRecoverIsIdempotentBuffered is the buffered mirror of
// TestRecoverIsIdempotent: a crash inside the buffered cross-shard batch
// stream (volatile sub-batches, open intents, watermark advances), then
// repeated recoveries must converge to a fixed point — including the
// roll-forward path, whose replayed sub-batches are persisted before the
// intent retires.
func TestRecoverIsIdempotentBuffered(t *testing.T) {
	g := bufGroup(4)
	crashed := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if r != pmem.ErrSimulatedPowerFailure {
					panic(r)
				}
				crashed = true
			}
			g.InjectFailure(-1)
		}()
		s := Open(g, bufOpts).Session(0)
		for i := 0; i < 10; i++ {
			s.Put([]byte(fmt.Sprintf("seed%02d", i)), []byte{byte(i)})
		}
		s.Sync()
		g.InjectFailure(900)
		for b := 0; ; b++ {
			batch := &WriteBatch{}
			for i := 0; i < 6; i++ {
				batch.Put([]byte(fmt.Sprintf("%c-idem%02d", 'a'+i, b)), []byte{byte(b)})
			}
			s.Write(batch)
		}
	}()
	if !crashed {
		t.Fatal("failure point never fired")
	}
	g.Crash(pmem.CrashConservative, nil)

	dump := func(s *Session) []string {
		var out []string
		it := s.NewIterator()
		for it.Next() {
			out = append(out, fmt.Sprintf("%s=%x", it.Key(), it.Value()))
		}
		return out
	}
	var stats [3]pmem.StatsSnapshot
	var states [3][]string
	for i := range stats {
		g.ResetStats()
		db := Open(g, bufOpts)
		stats[i] = g.Stats()
		states[i] = dump(db.Session(0))
		g.Crash(pmem.CrashConservative, nil)
	}
	for i := 1; i < 3; i++ {
		if fmt.Sprint(states[i]) != fmt.Sprint(states[0]) {
			t.Fatalf("recovered state drifted across recoveries:\n%v\n%v", states[0], states[i])
		}
	}
	if stats[1] != stats[2] {
		t.Fatalf("recovery work drifted: %+v vs %+v", stats[1], stats[2])
	}
	// Seeded keys were synced before the failure window: they must survive.
	s := Open(g, bufOpts).Session(0)
	for i := 0; i < 10; i++ {
		if !s.Has([]byte(fmt.Sprintf("seed%02d", i))) {
			t.Fatalf("synced seed%02d lost", i)
		}
	}
}

// TestBufferedShardedPersisterGoroutine is the group-persister smoke: one
// background goroutine seals all shards; Sync and WriteDurable complete
// under it and Close drains cleanly. Run under -race by ci.sh.
func TestBufferedShardedPersisterGoroutine(t *testing.T) {
	g := NewGroup(GroupConfig{Shards: 2, Threads: 2, Buffered: true})
	db := Open(g, Options{Threads: 2, Buffered: true, PersistEvery: 50 * time.Microsecond})
	defer db.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s := db.Session(1)
		for i := 0; i < 100; i++ {
			s.Put([]byte(fmt.Sprintf("g%03d", i)), []byte{byte(i)})
			if i%10 == 0 {
				s.Sync()
			}
		}
		s.Sync()
	}()
	s := db.Session(0)
	for b := 0; b < 30; b++ {
		batch := &WriteBatch{}
		batch.Put([]byte(fmt.Sprintf("x%02d", b)), []byte{byte(b)})
		batch.Put([]byte(fmt.Sprintf("y%02d", b)), []byte{byte(b)})
		s.Write(batch)
	}
	s.Sync()
	<-done
	for sh := 0; sh < db.Shards(); sh++ {
		if db.DurableEpoch(sh) < db.CommittedEpoch(sh) {
			t.Fatalf("shard %d not durable after Sync", sh)
		}
	}
}
