package shardeddb

import "repro/internal/redodb"

// WriteBatch collects Put/Delete operations for atomic application across
// shards. Keys and values are snapshotted into a single grow-only arena the
// batch owns, so assembling a batch from a connection's frame-decode scratch
// buffers (which the next read overwrites) is safe, and a reused batch costs
// amortized zero allocations per op instead of two.
//
// Ownership contract (the per-connection reuse audit, PR 9): Write,
// WriteDurable, and WriteDetectable must not retain any reference into the
// batch — arena bytes included — past their return. They hold that contract
// by copying at every boundary that outlives the call: split() copies each
// op's bytes into fresh per-shard redodb batches (whose own Put snapshots
// them for helper re-execution), and the coordinator intent serializes the
// ops into its payload buffer. Clear may therefore recycle the arena
// immediately; the contract is pinned by TestWriteBatchArenaReuse and the
// pipelined-connection race smoke in internal/server. A batch still must
// not be MUTATED concurrently with a Write that was handed the same *batch*
// from another goroutine — same rule as redodb.WriteBatch.
type WriteBatch struct {
	ops []batchOp
	buf []byte // arena backing every queued key and value
}

type batchOp struct {
	key, val []byte
	del      bool
}

// own snapshots p into the batch arena. The full slice expression caps the
// returned subslice so a later arena append can never grow into it, and
// earlier subslices stay valid across arena growth because the old backing
// array is immutable once abandoned.
func (b *WriteBatch) own(p []byte) []byte {
	n := len(b.buf)
	b.buf = append(b.buf, p...)
	return b.buf[n:len(b.buf):len(b.buf)]
}

// Put queues an insertion/overwrite.
func (b *WriteBatch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{key: b.own(key), val: b.own(value)})
}

// Delete queues a deletion.
func (b *WriteBatch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{key: b.own(key), del: true})
}

// Len reports the number of queued operations.
func (b *WriteBatch) Len() int { return len(b.ops) }

// Clear empties the batch for reuse, recycling the arena. The op headers
// are zeroed before the truncation so the retained backing array does not
// keep dropped subslice headers alive; the arena bytes themselves may be
// overwritten by the next assembly because no Write path retains them (see
// the ownership contract above).
func (b *WriteBatch) Clear() {
	clear(b.ops)
	b.ops = b.ops[:0]
	b.buf = b.buf[:0]
}

// split partitions ops into per-shard redodb batches (nil for untouched
// shards). Later ops on the same key keep their order within the shard's
// sub-batch, preserving WriteBatch's last-writer-wins semantics.
func (s *Session) split(ops []batchOp) []*redodb.WriteBatch {
	subs := make([]*redodb.WriteBatch, len(s.sess))
	for _, op := range ops {
		i := s.shardOf(op.key)
		if subs[i] == nil {
			subs[i] = &redodb.WriteBatch{}
		}
		if op.del {
			subs[i].Delete(op.key)
		} else {
			subs[i].Put(op.key, op.val)
		}
	}
	return subs
}

// Write applies the batch atomically and durably.
//
// A batch whose keys all live on one shard is a single RedoDB transaction —
// wait-free, no coordinator involvement. A cross-shard batch takes the
// coordinator path: publish a durable intent, apply the per-shard
// sub-batches (each tagged with the batch sequence number), then durably
// complete. A crash anywhere in between leaves either a completed batch or
// an open intent that Open rolls forward, so no execution ever exposes some
// shards' sub-batches without the others.
func (s *Session) Write(b *WriteBatch) {
	ops := make([]batchOp, len(b.ops))
	copy(ops, b.ops)
	subs := s.split(ops)
	touched := 0
	only := -1
	for i, sub := range subs {
		if sub != nil {
			touched++
			only = i
		}
	}
	switch touched {
	case 0:
		return
	case 1:
		s.sess[only].Write(subs[only])
		return
	}

	db := s.db
	db.batchMu.Lock()
	defer db.batchMu.Unlock()
	seq := db.nextSeq
	db.nextSeq++
	db.publishIntent(seq, encodeIntent(ops, nil))
	for i, sub := range subs {
		if sub != nil {
			s.sess[i].WriteTagged(sub, tagRoot, seq)
		}
	}
	// Buffered shards: the cross-shard Sync barrier. Every touched shard
	// must persist its sub-batch (tag included) before the intent retires —
	// otherwise a crash after completeIntent could lose some shards'
	// volatile sub-batches with nothing left to roll forward, turning an
	// atomic batch into a torn one. With the barrier, a crash loses either
	// the whole batch (intent still open → roll-forward) or nothing.
	if db.buffered {
		for i, sub := range subs {
			if sub != nil {
				db.shards[i].Persist()
			}
		}
	}
	db.completeIntent(seq)
	db.lastCommitted.Store(seq)
}
