package shardeddb

import "repro/internal/redodb"

// WriteBatch collects Put/Delete operations for atomic application across
// shards.
type WriteBatch struct {
	ops []batchOp
}

type batchOp struct {
	key, val []byte
	del      bool
}

// Put queues an insertion/overwrite.
func (b *WriteBatch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{
		key: append([]byte(nil), key...),
		val: append([]byte(nil), value...),
	})
}

// Delete queues a deletion.
func (b *WriteBatch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{key: append([]byte(nil), key...), del: true})
}

// Len reports the number of queued operations.
func (b *WriteBatch) Len() int { return len(b.ops) }

// Clear empties the batch for reuse. The elements are zeroed before the
// truncation: a plain b.ops[:0] would keep every queued key and value alive
// through the retained backing array for as long as the batch is reused.
func (b *WriteBatch) Clear() {
	clear(b.ops)
	b.ops = b.ops[:0]
}

// split partitions ops into per-shard redodb batches (nil for untouched
// shards). Later ops on the same key keep their order within the shard's
// sub-batch, preserving WriteBatch's last-writer-wins semantics.
func (s *Session) split(ops []batchOp) []*redodb.WriteBatch {
	subs := make([]*redodb.WriteBatch, len(s.sess))
	for _, op := range ops {
		i := s.shardOf(op.key)
		if subs[i] == nil {
			subs[i] = &redodb.WriteBatch{}
		}
		if op.del {
			subs[i].Delete(op.key)
		} else {
			subs[i].Put(op.key, op.val)
		}
	}
	return subs
}

// Write applies the batch atomically and durably.
//
// A batch whose keys all live on one shard is a single RedoDB transaction —
// wait-free, no coordinator involvement. A cross-shard batch takes the
// coordinator path: publish a durable intent, apply the per-shard
// sub-batches (each tagged with the batch sequence number), then durably
// complete. A crash anywhere in between leaves either a completed batch or
// an open intent that Open rolls forward, so no execution ever exposes some
// shards' sub-batches without the others.
func (s *Session) Write(b *WriteBatch) {
	ops := make([]batchOp, len(b.ops))
	copy(ops, b.ops)
	subs := s.split(ops)
	touched := 0
	only := -1
	for i, sub := range subs {
		if sub != nil {
			touched++
			only = i
		}
	}
	switch touched {
	case 0:
		return
	case 1:
		s.sess[only].Write(subs[only])
		return
	}

	db := s.db
	db.batchMu.Lock()
	defer db.batchMu.Unlock()
	seq := db.nextSeq
	db.nextSeq++
	db.publishIntent(seq, encodeIntent(ops, nil))
	for i, sub := range subs {
		if sub != nil {
			s.sess[i].WriteTagged(sub, tagRoot, seq)
		}
	}
	// Buffered shards: the cross-shard Sync barrier. Every touched shard
	// must persist its sub-batch (tag included) before the intent retires —
	// otherwise a crash after completeIntent could lose some shards'
	// volatile sub-batches with nothing left to roll forward, turning an
	// atomic batch into a torn one. With the barrier, a crash loses either
	// the whole batch (intent still open → roll-forward) or nothing.
	if db.buffered {
		for i, sub := range subs {
			if sub != nil {
				db.shards[i].Persist()
			}
		}
	}
	db.completeIntent(seq)
	db.lastCommitted.Store(seq)
}
