package shardeddb

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/lincheck"
	"repro/internal/pmem"
)

// The durable-lincheck suite: concurrent sessions run single-key operations
// against a Strict-mode sharded DB while a group-wide power failure is
// armed; every thread dies at its next persistence event once the failure
// fires. The timestamped history — completed ops with their results,
// in-flight ops as pending, post-recovery observer reads — must be durably
// linearizable against the sequential KV model: completed effects survive
// the crash, in-flight ones land or vanish consistently.

const durableKeys = 5

func durableKey(k uint64) []byte { return []byte(fmt.Sprintf("dlin-key-%d", k)) }

func durableVal(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

func decodeVal(t *testing.T, b []byte, ok bool) uint64 {
	if !ok {
		return 0
	}
	if len(b) != 8 {
		t.Fatalf("torn value read back: %x", b)
	}
	return binary.LittleEndian.Uint64(b)
}

func TestDurableLinearizability(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		for fail := int64(40); fail <= 600; fail += 93 {
			runDurableRound(t, shards, fail)
		}
	}
}

func runDurableRound(t *testing.T, shards int, fail int64) {
	const workers = 2
	const opsPerWorker = 30
	g := NewGroup(GroupConfig{Shards: shards, Threads: workers, Mode: pmem.Strict})
	db := Open(g, Options{Threads: workers})

	var clock atomic.Int64
	histories := make([][]lincheck.DurableOp, workers)
	g.InjectFailure(fail)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tid)*7919 + fail))
			s := db.Session(tid)
			for i := 0; i < opsPerWorker; i++ {
				key := rng.Uint64()%durableKeys + 1
				val := uint64(tid*opsPerWorker+i) + 1 // nonzero, unique
				var kind string
				switch rng.Intn(4) {
				case 0, 1:
					kind = "put"
				case 2:
					kind = "get"
				case 3:
					kind = "del"
				}
				op := lincheck.Op{Thread: tid, Kind: kind, Arg: key}
				if kind == "put" {
					op.Arg2 = val
				}
				op.Call = clock.Add(1)
				crashed := !func() (completed bool) {
					defer func() {
						if r := recover(); r != nil {
							if r != pmem.ErrSimulatedPowerFailure {
								panic(r)
							}
							completed = false
						}
					}()
					switch kind {
					case "put":
						s.Put(durableKey(key), durableVal(val))
					case "get":
						v, ok := s.Get(durableKey(key))
						op.Result = decodeVal(t, v, ok)
					case "del":
						if s.Delete(durableKey(key)) {
							op.Result = 1
						}
					}
					return true
				}()
				if crashed {
					// Return is stamped with the shared crash time after
					// every thread has stopped.
					histories[tid] = append(histories[tid], lincheck.DurableOp{Op: op, Pending: true})
					return
				}
				op.Return = clock.Add(1)
				histories[tid] = append(histories[tid], lincheck.DurableOp{Op: op})
			}
		}(w)
	}
	wg.Wait()

	crashStamp := clock.Add(1)
	var history []lincheck.DurableOp
	anyPending := false
	for _, h := range histories {
		for _, op := range h {
			if op.Pending {
				op.Return = crashStamp
				anyPending = true
			}
			history = append(history, op)
		}
	}
	if !anyPending {
		// The budget outlived the workload; nothing crash-specific to
		// check beyond plain linearizability of what ran.
		g.InjectFailure(-1)
	} else {
		g.Crash(pmem.CrashConservative, nil)
		g.InjectFailure(-1)
		db = Open(g, Options{Threads: 1})
	}

	// Post-recovery observer: read every key back as part of the history.
	s := db.Session(0)
	for k := uint64(1); k <= durableKeys; k++ {
		op := lincheck.Op{Thread: workers, Kind: "get", Arg: k}
		op.Call = clock.Add(1)
		v, ok := s.Get(durableKey(k))
		op.Result = decodeVal(t, v, ok)
		op.Return = clock.Add(1)
		history = append(history, lincheck.DurableOp{Op: op})
	}

	if !lincheck.CheckDurable(lincheck.KVModel{}, history) {
		for _, op := range history {
			t.Logf("t%d [%d,%d] %s(%d,%d) = %d pending=%v",
				op.Thread, op.Call, op.Return, op.Kind, op.Arg, op.Arg2, op.Result, op.Pending)
		}
		t.Fatalf("shards=%d fail=%d: history is not durably linearizable", shards, fail)
	}
}

// TestDurableLinearizabilityDetectable is the exactly-once durable suite:
// concurrent clients issue detectable puts until a group-wide power failure
// kills them mid-request, then each RETRIES its in-flight request after
// recovery. Original attempt and retry share a DupID, so CheckDurable
// accepts the history only if each request took effect at most once; the
// observer reads between recovery and the retries pin the original attempt's
// landing, which is what convicts a dedup miss (retry applying on top of a
// landed original) as a duplicate.
func TestDurableLinearizabilityDetectable(t *testing.T) {
	for _, shards := range []int{1, 8} {
		for fail := int64(40); fail <= 600; fail += 93 {
			runDetectableDurableRound(t, shards, fail)
		}
	}
}

// pendingReq remembers an in-flight detectable request so it can be retried.
type pendingReq struct {
	client, seq uint64
	key, val    uint64
	dup         uint64
}

func runDetectableDurableRound(t *testing.T, shards int, fail int64) {
	const workers = 2
	const opsPerWorker = 30
	g := NewGroup(GroupConfig{Shards: shards, Threads: workers, Mode: pmem.Strict})
	db := Open(g, Options{Threads: workers})

	var clock atomic.Int64
	histories := make([][]lincheck.DurableOp, workers)
	retries := make([]*pendingReq, workers)
	g.InjectFailure(fail)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tid)*104729 + fail))
			s := db.Session(tid)
			client := uint64(tid + 1)
			seq := uint64(0)
			for i := 0; i < opsPerWorker; i++ {
				key := rng.Uint64()%durableKeys + 1
				val := uint64(tid*opsPerWorker+i) + 1
				isPut := rng.Intn(4) != 0
				op := lincheck.Op{Thread: tid, Kind: "get", Arg: key}
				var dupID uint64
				if isPut {
					seq++
					op.Kind, op.Arg2 = "put", val
					dupID = client<<32 | seq
				}
				op.Call = clock.Add(1)
				crashed := !func() (completed bool) {
					defer func() {
						if r := recover(); r != nil {
							if r != pmem.ErrSimulatedPowerFailure {
								panic(r)
							}
							completed = false
						}
					}()
					if isPut {
						s.PutDetectable(client, seq, durableKey(key), durableVal(val))
					} else {
						v, ok := s.Get(durableKey(key))
						op.Result = decodeVal(t, v, ok)
					}
					return true
				}()
				if crashed {
					histories[tid] = append(histories[tid],
						lincheck.DurableOp{Op: op, Pending: true, DupID: dupID})
					if isPut {
						retries[tid] = &pendingReq{
							client: client, seq: seq, key: key, val: val, dup: dupID,
						}
					}
					return
				}
				op.Return = clock.Add(1)
				histories[tid] = append(histories[tid], lincheck.DurableOp{Op: op, DupID: dupID})
			}
		}(w)
	}
	wg.Wait()

	crashStamp := clock.Add(1)
	var history []lincheck.DurableOp
	anyPending := false
	for _, h := range histories {
		for _, op := range h {
			if op.Pending {
				op.Return = crashStamp
				anyPending = true
			}
			history = append(history, op)
		}
	}
	if !anyPending {
		g.InjectFailure(-1)
	} else {
		g.Crash(pmem.CrashConservative, nil)
		g.InjectFailure(-1)
		db = Open(g, Options{Threads: 1})
	}

	observe := func(s *Session) {
		for k := uint64(1); k <= durableKeys; k++ {
			op := lincheck.Op{Thread: workers, Kind: "get", Arg: k}
			op.Call = clock.Add(1)
			v, ok := s.Get(durableKey(k))
			op.Result = decodeVal(t, v, ok)
			op.Return = clock.Add(1)
			history = append(history, lincheck.DurableOp{Op: op})
		}
	}

	// Observer reads BEFORE the retries pin each in-flight attempt's fate,
	// then every crashed client retries its request: a dedup hit adds
	// nothing to the history (the original attempt owns the effect), an
	// applied retry adds a completed attempt under the same DupID.
	s := db.Session(0)
	observe(s)
	for _, r := range retries {
		if r == nil {
			continue
		}
		probe := s.WasApplied(r.client, r.seq)
		op := lincheck.Op{Thread: workers, Kind: "put", Arg: r.key, Arg2: r.val}
		op.Call = clock.Add(1)
		applied := s.PutDetectable(r.client, r.seq, durableKey(r.key), durableVal(r.val))
		op.Return = clock.Add(1)
		if applied == probe {
			t.Fatalf("shards=%d fail=%d: retry of (%d,%d) applied=%v with prior receipt=%v",
				shards, fail, r.client, r.seq, applied, probe)
		}
		if applied {
			history = append(history, lincheck.DurableOp{Op: op, DupID: r.dup})
		}
	}
	observe(s)

	if !lincheck.CheckDurable(lincheck.KVModel{}, history) {
		for _, op := range history {
			t.Logf("t%d [%d,%d] %s(%d,%d) = %d pending=%v dup=%d",
				op.Thread, op.Call, op.Return, op.Kind, op.Arg, op.Arg2, op.Result, op.Pending, op.DupID)
		}
		t.Fatalf("shards=%d fail=%d: detectable history is not exactly-once durably linearizable",
			shards, fail)
	}
}
