package shardeddb

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/lincheck"
	"repro/internal/pmem"
)

// The durable-lincheck suite: concurrent sessions run single-key operations
// against a Strict-mode sharded DB while a group-wide power failure is
// armed; every thread dies at its next persistence event once the failure
// fires. The timestamped history — completed ops with their results,
// in-flight ops as pending, post-recovery observer reads — must be durably
// linearizable against the sequential KV model: completed effects survive
// the crash, in-flight ones land or vanish consistently.

const durableKeys = 5

func durableKey(k uint64) []byte { return []byte(fmt.Sprintf("dlin-key-%d", k)) }

func durableVal(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

func decodeVal(t *testing.T, b []byte, ok bool) uint64 {
	if !ok {
		return 0
	}
	if len(b) != 8 {
		t.Fatalf("torn value read back: %x", b)
	}
	return binary.LittleEndian.Uint64(b)
}

func TestDurableLinearizability(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		for fail := int64(40); fail <= 600; fail += 93 {
			runDurableRound(t, shards, fail)
		}
	}
}

func runDurableRound(t *testing.T, shards int, fail int64) {
	const workers = 2
	const opsPerWorker = 30
	g := NewGroup(GroupConfig{Shards: shards, Threads: workers, Mode: pmem.Strict})
	db := Open(g, Options{Threads: workers})

	var clock atomic.Int64
	histories := make([][]lincheck.DurableOp, workers)
	g.InjectFailure(fail)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tid)*7919 + fail))
			s := db.Session(tid)
			for i := 0; i < opsPerWorker; i++ {
				key := rng.Uint64()%durableKeys + 1
				val := uint64(tid*opsPerWorker+i) + 1 // nonzero, unique
				var kind string
				switch rng.Intn(4) {
				case 0, 1:
					kind = "put"
				case 2:
					kind = "get"
				case 3:
					kind = "del"
				}
				op := lincheck.Op{Thread: tid, Kind: kind, Arg: key}
				if kind == "put" {
					op.Arg2 = val
				}
				op.Call = clock.Add(1)
				crashed := !func() (completed bool) {
					defer func() {
						if r := recover(); r != nil {
							if r != pmem.ErrSimulatedPowerFailure {
								panic(r)
							}
							completed = false
						}
					}()
					switch kind {
					case "put":
						s.Put(durableKey(key), durableVal(val))
					case "get":
						v, ok := s.Get(durableKey(key))
						op.Result = decodeVal(t, v, ok)
					case "del":
						if s.Delete(durableKey(key)) {
							op.Result = 1
						}
					}
					return true
				}()
				if crashed {
					// Return is stamped with the shared crash time after
					// every thread has stopped.
					histories[tid] = append(histories[tid], lincheck.DurableOp{Op: op, Pending: true})
					return
				}
				op.Return = clock.Add(1)
				histories[tid] = append(histories[tid], lincheck.DurableOp{Op: op})
			}
		}(w)
	}
	wg.Wait()

	crashStamp := clock.Add(1)
	var history []lincheck.DurableOp
	anyPending := false
	for _, h := range histories {
		for _, op := range h {
			if op.Pending {
				op.Return = crashStamp
				anyPending = true
			}
			history = append(history, op)
		}
	}
	if !anyPending {
		// The budget outlived the workload; nothing crash-specific to
		// check beyond plain linearizability of what ran.
		g.InjectFailure(-1)
	} else {
		g.Crash(pmem.CrashConservative, nil)
		g.InjectFailure(-1)
		db = Open(g, Options{Threads: 1})
	}

	// Post-recovery observer: read every key back as part of the history.
	s := db.Session(0)
	for k := uint64(1); k <= durableKeys; k++ {
		op := lincheck.Op{Thread: workers, Kind: "get", Arg: k}
		op.Call = clock.Add(1)
		v, ok := s.Get(durableKey(k))
		op.Result = decodeVal(t, v, ok)
		op.Return = clock.Add(1)
		history = append(history, lincheck.DurableOp{Op: op})
	}

	if !lincheck.CheckDurable(lincheck.KVModel{}, history) {
		for _, op := range history {
			t.Logf("t%d [%d,%d] %s(%d,%d) = %d pending=%v",
				op.Thread, op.Call, op.Return, op.Kind, op.Arg, op.Arg2, op.Result, op.Pending)
		}
		t.Fatalf("shards=%d fail=%d: history is not durably linearizable", shards, fail)
	}
}
