package shardeddb

import (
	"repro/internal/redodb"

	"repro/internal/pmem"
)

// StaleRanges reports the spans of the group that committed state does not
// reach, for the corruption sweep. Each shard pool contributes RedoDB's
// stale set (the replicas the persisted curComb does not name). The
// coordinator contributes its intent fields — but only while the durable
// status is 0: with no intent open, seq/len/CRC and the payload are
// unreachable garbage, whereas with status 1 they are live recovery input.
// coordLast and the status word itself are always live.
func StaleRanges(g *pmem.Group) []pmem.GroupRange {
	var out []pmem.GroupRange
	coord := g.Pool(0).Region(0)
	if coord.PersistedLoad(coordStatus) == 0 {
		out = append(out,
			pmem.GroupRange{Pool: 0, Range: pmem.Range{Region: 0, Start: coordSeq, Words: 3}},
			pmem.GroupRange{Pool: 0, Range: pmem.Range{Region: 0, Start: coordPayload, Words: coord.Words() - coordPayload}},
		)
	}
	for i := 1; i < g.Len(); i++ {
		for _, r := range redodb.StaleRanges(g.Pool(i)) {
			out = append(out, pmem.GroupRange{Pool: i, Range: r})
		}
	}
	return out
}
