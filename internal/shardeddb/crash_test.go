package shardeddb

import (
	"fmt"
	"testing"

	"repro/internal/pmem"
)

// TestCrossShardBatchCrashAtomicity sweeps power failures across a stream of
// cross-shard batches: after recovery each batch must be fully applied or
// fully absent on EVERY shard — a crash between the per-shard commits must
// never expose a torn batch. This is exactly the hole the coordinator's
// intent record exists to close.
func TestCrossShardBatchCrashAtomicity(t *testing.T) {
	const batches = 8
	const perBatch = 6 // "a".."f" prefixes scatter over the shards
	key := func(b, i int) []byte {
		return []byte(fmt.Sprintf("%c-batch%02d", 'a'+i, b))
	}
	for _, shards := range []int{2, 8} {
		for fail := int64(20); ; fail += 97 {
			g := NewGroup(GroupConfig{Shards: shards, Threads: 1, Mode: pmem.Strict})
			completed := 0
			crashed := false
			func() {
				defer func() {
					if r := recover(); r != nil {
						if r != pmem.ErrSimulatedPowerFailure {
							panic(r)
						}
						crashed = true
					}
					g.InjectFailure(-1)
				}()
				s := Open(g, Options{Threads: 1}).Session(0)
				g.InjectFailure(fail)
				for b := 0; b < batches; b++ {
					batch := &WriteBatch{}
					for i := 0; i < perBatch; i++ {
						batch.Put(key(b, i), []byte(fmt.Sprintf("v%d", b)))
					}
					s.Write(batch)
					completed++
				}
			}()
			if !crashed {
				break
			}
			g.Crash(pmem.CrashConservative, nil)
			s := Open(g, Options{Threads: 1}).Session(0)
			for b := 0; b < batches; b++ {
				present := 0
				for i := 0; i < perBatch; i++ {
					if v, ok := s.Get(key(b, i)); ok {
						if string(v) != fmt.Sprintf("v%d", b) {
							t.Fatalf("shards=%d fail=%d: batch %d key %d has wrong value %q",
								shards, fail, b, i, v)
						}
						present++
					}
				}
				if present != 0 && present != perBatch {
					t.Fatalf("shards=%d fail=%d: batch %d recovered torn (%d/%d keys)",
						shards, fail, b, present, perBatch)
				}
				if b < completed && present != perBatch {
					t.Fatalf("shards=%d fail=%d: completed batch %d lost", shards, fail, b)
				}
			}
		}
	}
}

// TestCrossShardBatchCrashAtomicityAdversarial repeats the sweep under the
// adversarial crash model, where dirty lines may spontaneously persist and
// tear at word granularity — the model that catches missing orderings the
// conservative sweep forgives.
func TestCrossShardBatchCrashAtomicityAdversarial(t *testing.T) {
	const batches = 6
	const perBatch = 5
	key := func(b, i int) []byte {
		return []byte(fmt.Sprintf("%c-adv%02d", 'a'+i, b))
	}
	rng := newTestRand(2020)
	for fail := int64(25); ; fail += 113 {
		g := NewGroup(GroupConfig{Shards: 4, Threads: 1, Mode: pmem.Strict})
		completed := 0
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != pmem.ErrSimulatedPowerFailure {
						panic(r)
					}
					crashed = true
				}
				g.InjectFailure(-1)
			}()
			s := Open(g, Options{Threads: 1}).Session(0)
			g.InjectFailure(fail)
			for b := 0; b < batches; b++ {
				batch := &WriteBatch{}
				for i := 0; i < perBatch; i++ {
					batch.Put(key(b, i), []byte(fmt.Sprintf("w%d", b)))
				}
				s.Write(batch)
				completed++
			}
		}()
		if !crashed {
			break
		}
		g.Crash(pmem.CrashAdversarial, rng)
		s := Open(g, Options{Threads: 1}).Session(0)
		for b := 0; b < batches; b++ {
			present := 0
			for i := 0; i < perBatch; i++ {
				if _, ok := s.Get(key(b, i)); ok {
					present++
				}
			}
			if present != 0 && present != perBatch {
				t.Fatalf("fail=%d: batch %d recovered torn (%d/%d keys)", fail, b, present, perBatch)
			}
			if b < completed && present != perBatch {
				t.Fatalf("fail=%d: completed batch %d lost", fail, b)
			}
		}
	}
}
