package shardeddb

import (
	"encoding/binary"

	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/redodb"
)

// Batch-intent record layout (coordinator region, word addresses).
//
// The record is a single-slot persistent write-ahead intent: a cross-shard
// batch is first logged here in full, made durable, and only then applied
// shard by shard. Completion durably bumps lastCommitted and clears the
// status. Recovery therefore sees exactly one of three states: no intent
// (status 0), an intent for a batch that may be partially applied (status 1,
// seq > lastCommitted — roll forward, idempotent via per-shard tags), or a
// leftover of a completed batch (status 1, seq <= lastCommitted — discard).
//
// coordLast sits on its own cache line so completing a batch can never tear
// the intent fields; the intent header (status/seq/len/crc) shares a line,
// and the CRC is made durable strictly before the status flips to 1, so a
// durable status=1 implies a durable, checksummed payload — status=1 with a
// bad CRC is unreachable by power failure and is reported as corruption.
const (
	coordLast    = 8  // lastCommitted batch sequence number (own line)
	coordStatus  = 16 // 0 = no intent, 1 = intent published
	coordSeq     = 17 // sequence number of the published intent
	coordLen     = 18 // payload length in bytes
	coordCRC     = 19 // CRC64 over (seq, len, payload words)
	coordPayload = 24 // payload words (line-aligned)
)

// payloadWords converts a payload byte length to its word footprint.
func payloadWords(bytes uint64) uint64 { return (bytes + 7) / 8 }

// intentReceipt is the detectable-operation identity a cross-shard batch
// carries in its intent: roll-forward must re-record the request's receipt
// on its home shard atomically with that shard's sub-batch, or a crashed
// detectable batch could be replayed by recovery AND retried by the client.
type intentReceipt struct {
	client uint64 // persistent client id (nonzero)
	seq    uint64 // client request sequence number
	digest uint64 // full-batch result digest (redodb.BatchDigest)
	home   int    // shard whose dedup table holds the receipt
}

// Intent payload header flags (word 0 of the payload).
const (
	intentFlagPlain   = 0 // header is the flags word only; ops follow
	intentFlagReceipt = 1 // 4 receipt words (client, seq, digest, home) follow
)

// encodeIntent serializes the intent payload: a flags word, the optional
// receipt header, then the batch ops (encodeBatch format).
func encodeIntent(ops []batchOp, rcpt *intentReceipt) []byte {
	var hdr [5 * 8]byte
	n := 8
	if rcpt != nil {
		binary.LittleEndian.PutUint64(hdr[0:], intentFlagReceipt)
		binary.LittleEndian.PutUint64(hdr[8:], rcpt.client)
		binary.LittleEndian.PutUint64(hdr[16:], rcpt.seq)
		binary.LittleEndian.PutUint64(hdr[24:], rcpt.digest)
		binary.LittleEndian.PutUint64(hdr[32:], uint64(rcpt.home))
		n = 40
	}
	return append(hdr[:n:n], encodeBatch(ops)...)
}

// decodeIntent parses an intent payload (CRC already verified). Structural
// violations are corruption the checksum failed to catch.
func decodeIntent(buf []byte, shards int) ([]batchOp, *intentReceipt) {
	if len(buf) < 8 {
		panic(pmem.Corruptf("shardeddb", "intent payload shorter than its header"))
	}
	flags := binary.LittleEndian.Uint64(buf)
	buf = buf[8:]
	switch flags {
	case intentFlagPlain:
		return decodeBatch(buf), nil
	case intentFlagReceipt:
		if len(buf) < 32 {
			panic(pmem.Corruptf("shardeddb", "intent receipt header truncated"))
		}
		rcpt := &intentReceipt{
			client: binary.LittleEndian.Uint64(buf),
			seq:    binary.LittleEndian.Uint64(buf[8:]),
			digest: binary.LittleEndian.Uint64(buf[16:]),
			home:   int(binary.LittleEndian.Uint64(buf[24:])),
		}
		if rcpt.client == 0 || rcpt.seq == 0 || rcpt.home < 0 || rcpt.home >= shards {
			panic(pmem.Corruptf("shardeddb", "intent receipt (client %d, seq %d, home %d) out of range", rcpt.client, rcpt.seq, rcpt.home))
		}
		return decodeBatch(buf[32:]), rcpt
	}
	panic(pmem.Corruptf("shardeddb", "intent flags %d out of range", flags))
}

// maxPayloadBytes reports the largest batch payload the coordinator region
// can hold.
func (db *DB) maxPayloadBytes() uint64 {
	return (db.coord.Words() - coordPayload) * 8
}

// encodeBatch serializes a batch into the intent payload format: per op, a
// flags word (1 = delete), the key length and bytes, and for puts the value
// length and bytes.
func encodeBatch(ops []batchOp) []byte {
	var size int
	for _, op := range ops {
		size += 16 + len(op.key)
		if !op.del {
			size += 8 + len(op.val)
		}
	}
	buf := make([]byte, 0, size)
	var w [8]byte
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		buf = append(buf, w[:]...)
	}
	for _, op := range ops {
		if op.del {
			putU64(1)
		} else {
			putU64(0)
		}
		putU64(uint64(len(op.key)))
		buf = append(buf, op.key...)
		if !op.del {
			putU64(uint64(len(op.val)))
			buf = append(buf, op.val...)
		}
	}
	return buf
}

// decodeBatch parses an intent payload. The payload passed its CRC, so any
// structural violation means the record was damaged in a way the checksum
// did not catch — reported as corruption, never a panic or a wrong answer.
func decodeBatch(buf []byte) []batchOp {
	var ops []batchOp
	u64 := func() uint64 {
		if len(buf) < 8 {
			panic(pmem.Corruptf("shardeddb", "truncated intent payload"))
		}
		v := binary.LittleEndian.Uint64(buf)
		buf = buf[8:]
		return v
	}
	take := func(n uint64) []byte {
		if uint64(len(buf)) < n {
			panic(pmem.Corruptf("shardeddb", "intent payload overruns its length"))
		}
		b := buf[:n]
		buf = buf[n:]
		return b
	}
	for len(buf) > 0 {
		flags := u64()
		if flags > 1 {
			panic(pmem.Corruptf("shardeddb", "intent op flags %d out of range", flags))
		}
		op := batchOp{del: flags == 1}
		op.key = append([]byte(nil), take(u64())...)
		if !op.del {
			op.val = append([]byte(nil), take(u64())...)
		}
		ops = append(ops, op)
	}
	return ops
}

// intentCRC checksums an intent: sequence number, byte length, and the
// payload words (the tail word zero-padded, exactly as stored).
func intentCRC(seq, bytes uint64, words []uint64) uint64 {
	all := make([]uint64, 0, 2+len(words))
	all = append(all, seq, bytes)
	all = append(all, words...)
	return pmem.ChecksumWords(all...)
}

// packWords converts a payload to the zero-padded words stored in the record.
func packWords(buf []byte) []uint64 {
	words := make([]uint64, payloadWords(uint64(len(buf))))
	for i := range words {
		lo := i * 8
		hi := lo + 8
		if hi > len(buf) {
			var tail [8]byte
			copy(tail[:], buf[lo:])
			words[i] = binary.LittleEndian.Uint64(tail[:])
		} else {
			words[i] = binary.LittleEndian.Uint64(buf[lo:hi])
		}
	}
	return words
}

// publishIntent durably logs the batch before any shard applies it. Ordering
// is the whole protocol: payload, sequence number, length and CRC are
// flushed and fenced first, and only then does status flip to 1 — so a
// durable status=1 always names a durable, verifiable payload. Caller holds
// batchMu.
func (db *DB) publishIntent(seq uint64, payload []byte) {
	if uint64(len(payload)) > db.maxPayloadBytes() {
		panic("shardeddb: batch exceeds coordinator pool capacity")
	}
	words := packWords(payload)
	for i, w := range words {
		db.coord.Store(coordPayload+uint64(i), w)
	}
	db.coord.Store(coordSeq, seq)
	db.coord.Store(coordLen, uint64(len(payload)))
	db.coord.Store(coordCRC, intentCRC(seq, uint64(len(payload)), words))
	db.coord.FlushRange(coordPayload, uint64(len(words)))
	db.coord.PWB(coordSeq)
	db.coord.PWB(coordLen)
	db.coord.PWB(coordCRC)
	db.coord.PFence()
	// The intent record — header words plus a payload whose length only
	// this execution knows — must be durable before status can flip.
	db.group.Pool(0).TraceEvent(obs.KindPublish, -1, db.coord.Index(),
		coordSeq, coordPayload+uint64(len(words))-coordSeq, obs.PubIntent)
	db.coord.Store(coordStatus, 1)
	db.coord.PWB(coordStatus)
	db.coord.PFence()
	db.group.Pool(0).TraceEvent(obs.KindIntentPublish, -1, db.coord.Index(),
		coordStatus, 1, seq)
}

// completeIntent durably retires the intent after every shard has applied
// its sub-batch: lastCommitted advances to seq and the status clears. The
// two stores may tear independently across a crash — every resulting state
// is handled by recoverIntent (a surviving status=1 with seq <= the shard
// tags simply replays idempotent sub-batches or is discarded). Caller holds
// batchMu.
func (db *DB) completeIntent(seq uint64) {
	db.coord.Store(coordLast, seq)
	db.coord.PWB(coordLast)
	db.coord.Store(coordStatus, 0)
	db.coord.PWB(coordStatus)
	db.coord.PFence()
	db.group.Pool(0).TraceEvent(obs.KindPublish, -1, db.coord.Index(),
		coordLast, coordStatus-coordLast+1, obs.PubStatus)
}

// recoverIntent replays or discards a batch intent that survived a crash,
// then seeds the volatile sequence state. Called from Open after the shard
// DBs are recovered; runs single-threaded.
func (db *DB) recoverIntent() {
	status := db.coord.Load(coordStatus)
	if status > 1 {
		panic(pmem.Corruptf("shardeddb", "intent status %d out of range", status))
	}
	lastSeq := db.coord.Load(coordLast)
	maxSeq := lastSeq
	tags := make([]uint64, len(db.shards))
	for i, sh := range db.shards {
		tags[i] = sh.Session(0).TagAt(tagRoot)
		if tags[i] > maxSeq {
			maxSeq = tags[i]
		}
	}
	if status == 1 {
		seq := db.coord.Load(coordSeq)
		bytes := db.coord.Load(coordLen)
		if payloadWords(bytes) > db.coord.Words()-coordPayload {
			panic(pmem.Corruptf("shardeddb", "intent length %d overruns coordinator region", bytes))
		}
		words := make([]uint64, payloadWords(bytes))
		for i := range words {
			words[i] = db.coord.Load(coordPayload + uint64(i))
		}
		if crc := intentCRC(seq, bytes, words); crc != db.coord.Load(coordCRC) {
			// A legal power failure cannot produce status=1 with a bad
			// checksum: the checksum is fenced durable before status
			// flips. Only media damage can.
			panic(pmem.Corruptf("shardeddb", "intent checksum mismatch for seq %d", seq))
		}
		if seq > lastSeq {
			// The batch was durably logged but not durably completed:
			// roll it forward. Shards whose tag already equals seq
			// applied their sub-batch before the crash; replaying the
			// rest is exactly the crashed Write resuming.
			buf := make([]byte, bytes)
			for i := range buf {
				buf[i] = byte(words[i/8] >> (8 * (i % 8)))
			}
			for i, tag := range tags {
				if tag > seq {
					panic(pmem.Corruptf("shardeddb", "shard %d tag %d ahead of open intent %d", i, tag, seq))
				}
			}
			db.group.Pool(0).TraceEvent(obs.KindRollForward, -1, db.coord.Index(), 0, 0, seq)
			ops, rcpt := decodeIntent(buf, len(db.shards))
			db.applyBySub(ops, seq, tags, rcpt)
			// Buffered shards: the replayed sub-batches commit into fresh
			// in-flight epochs; they must persist before the intent is
			// retired below, or a crash-after-retire would lose them with
			// nothing left to roll forward (the Write-path barrier,
			// replayed). Re-crash anywhere before the retire just rolls
			// the same intent forward again — a fixed point.
			if db.buffered {
				db.Persist()
			}
			if seq > maxSeq {
				maxSeq = seq
			}
		}
		// Either way the intent is retired; for an already-completed
		// batch this just rewrites lastCommitted with its current value.
		if seq > lastSeq {
			db.completeIntent(seq)
		} else {
			db.completeIntent(lastSeq)
		}
	}
	db.lastCommitted.Store(maxSeq)
	db.nextSeq = maxSeq + 1
}

// applyBySub splits ops by shard and applies each sub-batch tagged with seq,
// skipping shards whose tag shows the sub-batch already applied. When the
// intent carries a detectable receipt, the home shard's sub-batch (possibly
// empty — the home shard is chosen by client id, not by the batch's keys) is
// applied with WriteTaggedDetectable so the receipt re-records atomically
// with it; a home shard that already holds the receipt stores only the tag.
func (db *DB) applyBySub(ops []batchOp, seq uint64, tags []uint64, rcpt *intentReceipt) {
	s := db.Session(0)
	subs := s.split(ops)
	for shard, sub := range subs {
		if tags[shard] == seq {
			continue
		}
		if rcpt != nil && shard == rcpt.home {
			hb := sub
			if hb == nil {
				hb = &redodb.WriteBatch{}
			}
			s.sess[shard].WriteTaggedDetectable(hb, tagRoot, seq, rcpt.client, rcpt.seq, rcpt.digest)
			continue
		}
		if sub == nil {
			continue
		}
		s.sess[shard].WriteTagged(sub, tagRoot, seq)
	}
}
