// Package shardeddb implements a sharded RedoDB: a LevelDB-style KV
// front-end that hash-partitions keys across K independent RedoDB instances,
// each backed by its own simulated pmem pool. The paper's RedoDB serializes
// every update through one flat-combining instance, capping update
// throughput near single-writer speed; sharding keeps each combining
// instance small and runs many of them in parallel, the scaling direction
// suggested by both flat-combining persistent structures (Rusanovsky et al.)
// and delay-free persistence (Ben-David et al.).
//
// Single-key operations (Put/Get/Has/Delete) route to one shard and inherit
// RedoDB's bounded wait-free progress unchanged — no cross-shard
// coordination is on their path. Cross-shard WriteBatch is made atomic with
// a persistent batch-intent record in a dedicated coordinator pool: the
// batch is logged durably before any shard applies its sub-batch, each
// sub-batch carries the batch sequence number as a per-shard tag, and Open
// replays or discards a surviving intent so a crash between per-shard
// commits never exposes a torn batch (see DESIGN.md "Sharding and
// cross-shard atomicity"). Iterators merge per-shard snapshots and validate
// them against the tags, so a batch is always observed all-or-nothing.
package shardeddb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core/redo"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/redodb"
)

const (
	// mapRoot is the redodb root slot holding each shard's hash map.
	mapRoot = 0
	// tagRoot is the root slot holding each shard's last applied batch
	// sequence number (the WriteTagged tag).
	tagRoot = 1
)

// Options parameterizes Open.
type Options struct {
	// Threads is the number of concurrent sessions (thread ids).
	Threads int
	// Variant selects the per-shard construction (default RedoOpt-PTM).
	Variant redo.Variant
	// RingSize forwards to the per-shard engines (default 128).
	RingSize int
	// Buffered selects relaxed durability on every shard (group commit
	// with per-shard durable-epoch watermarks — see buffered.go). The
	// shard pools need Threads+2 regions (GroupConfig.Buffered).
	Buffered bool
	// PersistEvery sets the group persister cadence in buffered mode:
	// 0 means a 200µs default, negative disables the goroutine
	// (caller-driven: Sync/Persist seal epochs on the calling thread).
	PersistEvery time.Duration
	// LegacyAlloc formats every shard's fresh heap with the legacy
	// power-of-two allocator (the Fig-8 space baseline) instead of the
	// per-arena allocator.
	LegacyAlloc bool
}

// GroupConfig describes the pool geometry NewGroup builds for a sharded DB:
// one coordinator pool followed by Shards shard pools.
type GroupConfig struct {
	Shards     int
	Threads    int
	ShardWords uint64 // words per shard region (default 1<<14)
	CoordWords uint64 // words in the coordinator region (default 1<<12)
	Mode       pmem.Mode
	Latency    pmem.LatencyModel
	// Buffered sizes the shard pools for relaxed durability: Threads+2
	// regions each (curComb + the pinned durable replica + writers)
	// instead of the synchronous Threads+1.
	Buffered bool
}

// NewGroup allocates the pmem group for a sharded DB: pool 0 is the
// coordinator (one region holding the batch-intent record), pools 1..Shards
// are the shard pools (Threads+1 regions each, the redo engine's replica
// bound). All pools share one failure domain.
func NewGroup(cfg GroupConfig) *pmem.Group {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.ShardWords == 0 {
		cfg.ShardWords = 1 << 14
	}
	if cfg.CoordWords == 0 {
		cfg.CoordWords = 1 << 12
	}
	pools := make([]*pmem.Pool, cfg.Shards+1)
	pools[0] = pmem.New(pmem.Config{
		Mode: cfg.Mode, RegionWords: cfg.CoordWords, Regions: 1, Latency: cfg.Latency,
	})
	regions := cfg.Threads + 1
	if cfg.Buffered {
		regions = cfg.Threads + 2
	}
	for i := 1; i <= cfg.Shards; i++ {
		pools[i] = pmem.New(pmem.Config{
			Mode: cfg.Mode, RegionWords: cfg.ShardWords, Regions: regions, Latency: cfg.Latency,
		})
	}
	return pmem.NewGroup(pools...)
}

// DB is a sharded RedoDB instance.
type DB struct {
	group    *pmem.Group
	coord    *pmem.Region // batch-intent record (region 0 of pool 0)
	shards   []*redodb.DB
	buffered bool
	buf      *bufferedState // non-nil only with a background persister

	// batchMu serializes cross-shard batches (and recovery against them).
	// Single-key operations never take it.
	batchMu sync.Mutex
	// nextSeq is the sequence number the next cross-shard batch will use;
	// guarded by batchMu.
	nextSeq uint64
	// lastCommitted mirrors the durable lastCommitted sequence number in
	// volatile memory, published only after a batch is fully applied on
	// every shard. Iterators read it to validate their snapshots.
	lastCommitted atomic.Uint64
}

// Open creates or recovers a sharded DB over a group laid out as NewGroup
// does: pool 0 the coordinator, pools 1..K the shards. Any batch intent that
// survived a crash is rolled forward (if not yet completed) or discarded (if
// already completed) before Open returns, so the visible state never holds a
// torn batch.
func Open(g *pmem.Group, opts Options) *DB {
	if g.Len() < 2 {
		panic("shardeddb: group needs a coordinator pool and at least one shard pool")
	}
	if opts.Threads <= 0 {
		opts.Threads = 1
	}
	db := &DB{group: g, coord: g.Pool(0).Region(0), buffered: opts.Buffered}
	g.Pool(0).TraceEvent(obs.KindRecoveryBegin, -1, -1, 0, 0, 0)
	db.shards = make([]*redodb.DB, g.Len()-1)
	for i := range db.shards {
		db.shards[i] = redodb.Open(g.Pool(i+1), redodb.Options{
			Threads:     opts.Threads,
			RootSlot:    mapRoot,
			Variant:     opts.Variant,
			RingSize:    opts.RingSize,
			Buffered:    opts.Buffered,
			LegacyAlloc: opts.LegacyAlloc,
			// The shards never run their own persisters: the group-level
			// loop (or the caller) seals every shard in turn.
			PersistEvery: -1,
		})
	}
	db.recoverIntent()
	g.Pool(0).TraceEvent(obs.KindRecoveryEnd, -1, -1, 0, 0, 0)
	if opts.Buffered && opts.PersistEvery >= 0 {
		every := opts.PersistEvery
		if every == 0 {
			every = 200 * time.Microsecond
		}
		db.buf = &bufferedState{
			kick: make(chan struct{}, 1),
			stop: make(chan struct{}),
			done: make(chan struct{}),
		}
		go db.persistLoop(every)
	}
	return db
}

// Group exposes the underlying pool group (for stats and crash harnesses).
func (db *DB) Group() *pmem.Group { return db.group }

// Shards reports the number of shards.
func (db *DB) Shards() int { return len(db.shards) }

// AllocReconcile audits every shard's allocator against its reachable
// blocks (redodb.DB.AllocReconcile), returning the first discrepancy.
func (db *DB) AllocReconcile() error {
	for i, s := range db.shards {
		if err := s.AllocReconcile(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Session returns a handle bound to thread id tid. Each session must be used
// by at most one goroutine at a time.
func (db *DB) Session(tid int) *Session {
	sess := make([]*redodb.Session, len(db.shards))
	for i, sh := range db.shards {
		sess[i] = sh.Session(tid)
	}
	return &Session{db: db, sess: sess}
}

// Session is a per-thread handle to the sharded database.
type Session struct {
	db   *DB
	sess []*redodb.Session // one per shard, same thread id
}

// shardOf maps a key to its shard. The multiplicative remix decorrelates the
// shard index from the FNV bits redodb's bucket chains use, so a shard's
// keys still spread over all of its buckets.
func (s *Session) shardOf(key []byte) int {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return int((h * 0x9e3779b97f4a7c15 >> 32) % uint64(len(s.sess)))
}

// ShardOf reports the shard that owns key. The serving layer uses it to
// attribute an operation's commit epoch to the right per-shard watermark.
func (s *Session) ShardOf(key []byte) int { return s.shardOf(key) }

// Put stores (key, value) in the owning shard — one wait-free RedoDB update.
func (s *Session) Put(key, value []byte) { s.sess[s.shardOf(key)].Put(key, value) }

// Get returns the value stored under key, or (nil, false) if absent.
func (s *Session) Get(key []byte) ([]byte, bool) { return s.sess[s.shardOf(key)].Get(key) }

// Has reports whether key is present.
func (s *Session) Has(key []byte) bool { return s.sess[s.shardOf(key)].Has(key) }

// Delete removes key, reporting whether it was present.
func (s *Session) Delete(key []byte) bool { return s.sess[s.shardOf(key)].Delete(key) }

// Len returns the total number of keys across all shards. Each per-shard
// count is a durable linearizable read; the sum is not a cross-shard
// snapshot (use an Iterator for one).
func (s *Session) Len() uint64 {
	var n uint64
	for _, sh := range s.sess {
		n += sh.Len()
	}
	return n
}
