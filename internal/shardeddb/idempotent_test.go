package shardeddb

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/pmem"
)

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestRecoverIsIdempotent recovers the same crashed group repeatedly
// (per-engine parity with the other stores' suites): reopening an
// already-recovered image must reproduce the same logical state and issue
// exactly the same persistence work each time, even when the crash left an
// open batch intent to roll forward.
func TestRecoverIsIdempotent(t *testing.T) {
	g := NewGroup(GroupConfig{Shards: 4, Threads: 1, Mode: pmem.Strict})
	crashed := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if r != pmem.ErrSimulatedPowerFailure {
					panic(r)
				}
				crashed = true
			}
			g.InjectFailure(-1)
		}()
		s := Open(g, Options{Threads: 1}).Session(0)
		for i := 0; i < 10; i++ {
			s.Put([]byte(fmt.Sprintf("seed%02d", i)), []byte{byte(i)})
		}
		// Arm so the failure lands inside the cross-shard batch stream,
		// often with a published-but-uncompleted intent.
		g.InjectFailure(900)
		for b := 0; ; b++ {
			batch := &WriteBatch{}
			for i := 0; i < 6; i++ {
				batch.Put([]byte(fmt.Sprintf("%c-idem%02d", 'a'+i, b)), []byte{byte(b)})
			}
			s.Write(batch)
		}
	}()
	if !crashed {
		t.Fatal("failure point never fired")
	}
	g.Crash(pmem.CrashConservative, nil)

	dump := func(s *Session) []string {
		var out []string
		it := s.NewIterator()
		for it.Next() {
			out = append(out, fmt.Sprintf("%s=%x", it.Key(), it.Value()))
		}
		return out
	}
	var stats [3]pmem.StatsSnapshot
	var states [3][]string
	for i := range stats {
		g.ResetStats()
		db := Open(g, Options{Threads: 1})
		stats[i] = g.Stats()
		states[i] = dump(db.Session(0))
		g.Crash(pmem.CrashConservative, nil)
	}
	if !reflect.DeepEqual(states[1], states[0]) || !reflect.DeepEqual(states[2], states[1]) {
		t.Fatalf("recovered state drifted across recoveries:\n%v\n%v\n%v",
			states[0], states[1], states[2])
	}
	// The first recovery may roll an intent forward; from then on the image
	// is settled and every further recovery must do identical work.
	if stats[1] != stats[2] {
		t.Fatalf("recovery work drifted: %+v vs %+v", stats[1], stats[2])
	}
}

// TestTornIntentRolledForwardOrDiscarded pins the two legal fates of a
// surviving intent directly: crash exactly between publishIntent and the
// shard applies (intent must roll forward on recovery), and crash after
// completeIntent's fence (intent must be discarded without reapplying).
func TestTornIntentRolledForwardOrDiscarded(t *testing.T) {
	// Sweep a fine stride over the window of a single cross-shard batch so
	// both the publish path and the complete path get hit.
	for fail := int64(1); fail < 400; fail += 3 {
		g := NewGroup(GroupConfig{Shards: 2, Threads: 1, Mode: pmem.Strict})
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != pmem.ErrSimulatedPowerFailure {
						panic(r)
					}
					crashed = true
				}
				g.InjectFailure(-1)
			}()
			s := Open(g, Options{Threads: 1}).Session(0)
			batch := &WriteBatch{}
			for i := 0; i < 6; i++ {
				batch.Put([]byte(fmt.Sprintf("%c-torn", 'a'+i)), []byte("x"))
			}
			g.InjectFailure(fail)
			s.Write(batch)
		}()
		if !crashed {
			// The whole batch fit under the budget; nothing to check.
			continue
		}
		g.Crash(pmem.CrashConservative, nil)
		db := Open(g, Options{Threads: 1})
		// Recovery must leave the intent retired...
		if got := db.Group().Pool(0).Region(0).PersistedLoad(coordStatus); got != 0 {
			t.Fatalf("fail=%d: intent still open after recovery (status %d)", fail, got)
		}
		// ...and the batch all-or-nothing.
		s := db.Session(0)
		present := 0
		for i := 0; i < 6; i++ {
			if _, ok := s.Get([]byte(fmt.Sprintf("%c-torn", 'a'+i))); ok {
				present++
			}
		}
		if present != 0 && present != 6 {
			t.Fatalf("fail=%d: torn batch after recovery (%d/6 keys)", fail, present)
		}
	}
}
