package shardeddb

import (
	"repro/internal/obs"
	"repro/internal/redodb"
)

// Detectable operations on the sharded front-end. Single-key operations
// inherit RedoDB's exactly-once path unchanged: the receipt lives on the
// key's shard, recorded inside the same wait-free transaction as the
// operation. Cross-shard batches anchor their receipt on the client's home
// shard (chosen by client id, so a retry probes the same place no matter
// which keys the batch touches) and carry the receipt identity in the
// coordinator intent, so a roll-forward after a crash re-records it
// atomically with the home shard's sub-batch — the batch commits exactly
// once whether it is finished by recovery, by the retry, or by both racing
// across crashes.
//
// Contract (as in redodb): client ids and seqs are nonzero, seqs strictly
// increase per client, and a retry re-issues the identical operation. A seq
// re-used for a different operation on the same shard panics via the digest
// check; re-use that changes which shard the operation routes to is
// undetectable by construction (the receipt is on the original shard) and
// remains a client bug.

// homeShard maps a client id to the shard whose dedup table anchors its
// cross-shard receipts. The remix decorrelates home shards from sequential
// client ids.
func (db *DB) homeShard(client uint64) int {
	return int((client * 0x9e3779b97f4a7c15 >> 33) % uint64(len(db.shards)))
}

// batchDigest fingerprints the full cross-shard batch. Every path that
// receipts a batch — first attempt, retry, roll-forward — derives the digest
// from the same op list, so they agree on the request's identity.
func batchDigest(ops []batchOp) uint64 {
	rb := &redodb.WriteBatch{}
	for _, op := range ops {
		if op.del {
			rb.Delete(op.key)
		} else {
			rb.Put(op.key, op.val)
		}
	}
	return redodb.BatchDigest(rb)
}

// PutDetectable stores (key, value) exactly once for request (client, seq),
// reporting whether this call applied it (false: deduplicated).
func (s *Session) PutDetectable(client, seq uint64, key, value []byte) bool {
	return s.sess[s.shardOf(key)].PutDetectable(client, seq, key, value)
}

// DeleteDetectable removes key exactly once for request (client, seq),
// reporting whether this call applied it.
func (s *Session) DeleteDetectable(client, seq uint64, key []byte) bool {
	return s.sess[s.shardOf(key)].DeleteDetectable(client, seq, key)
}

// WasApplied reports whether request (client, seq) committed on any shard —
// the recovery probe a crashed or timed-out caller issues before retrying.
func (s *Session) WasApplied(client, seq uint64) bool {
	for _, sh := range s.sess {
		if sh.WasApplied(client, seq) {
			return true
		}
	}
	return false
}

// AckApplied advances the client's acked watermark on every shard, bounding
// each shard's dedup table by the client's unacked window.
func (s *Session) AckApplied(client, upto uint64) {
	for _, sh := range s.sess {
		sh.AckApplied(client, upto)
	}
}

// DetectStats sums the client's exactly-once witness across shards: total
// receipts (operations applied), the highest receipted seq, and the acked
// watermark (the same on every shard, since AckApplied broadcasts).
func (s *Session) DetectStats(client uint64) (receipts, maxSeq, acked uint64) {
	for _, sh := range s.sess {
		r, mx, a := sh.DetectStats(client)
		receipts += r
		if mx > maxSeq {
			maxSeq = mx
		}
		if a > acked {
			acked = a
		}
	}
	return receipts, maxSeq, acked
}

// WriteDetectable applies the batch atomically, durably, and exactly once
// for request (client, seq), reporting whether this call applied it.
//
// A batch confined to one shard is a single RedoDB transaction carrying both
// the sub-batch and the receipt. A cross-shard batch takes the coordinator
// path with the receipt identity embedded in the durable intent: the home
// shard's sub-batch and the receipt commit in one per-shard transaction, and
// recovery's roll-forward replays that transaction idempotently (shards
// whose tag already names the batch are skipped; a home shard that holds the
// receipt but missed the tag stores just the tag).
func (s *Session) WriteDetectable(b *WriteBatch, client, seq uint64) bool {
	ops := make([]batchOp, len(b.ops))
	copy(ops, b.ops)
	digest := batchDigest(ops)
	subs := s.split(ops)
	touched := 0
	only := -1
	for i, sub := range subs {
		if sub != nil {
			touched++
			only = i
		}
	}
	db := s.db
	home := db.homeShard(client)
	switch touched {
	case 0:
		// An empty batch still consumes the seq: record a bare receipt on
		// the home shard so WasApplied answers for it.
		return s.sess[home].WriteTaggedDetectable(&redodb.WriteBatch{}, -1, 0, client, seq, digest)
	case 1:
		// Single-shard fast path: receipt on the touched shard, no
		// coordinator involvement. A retry splits identically, so it probes
		// the same shard.
		return s.sess[only].WriteTaggedDetectable(subs[only], -1, 0, client, seq, digest)
	}

	db.batchMu.Lock()
	defer db.batchMu.Unlock()
	if s.sess[home].WasApplied(client, seq) {
		// The receipt is durable, so the batch committed (first attempt, a
		// racing retry, or recovery's roll-forward): pure dedup hit.
		db.group.Pool(0).TraceEvent(obs.KindDedupHit, -1, -1, client, 0, seq)
		return false
	}
	bseq := db.nextSeq
	db.nextSeq++
	db.publishIntent(bseq, encodeIntent(ops, &intentReceipt{
		client: client, seq: seq, digest: digest, home: home,
	}))
	for i, sub := range subs {
		if i == home {
			hb := sub
			if hb == nil {
				hb = &redodb.WriteBatch{}
			}
			s.sess[i].WriteTaggedDetectable(hb, tagRoot, bseq, client, seq, digest)
			continue
		}
		if sub != nil {
			s.sess[i].WriteTagged(sub, tagRoot, bseq)
		}
	}
	// Buffered shards: persist every touched shard (the home shard always
	// participates — it carries the receipt) before the intent retires,
	// exactly as in Write. The receipt and its batch stay atomic across a
	// crash either way: both roll forward or both are lost with the intent.
	if db.buffered {
		for i, sub := range subs {
			if sub != nil || i == home {
				db.shards[i].Persist()
			}
		}
	}
	db.completeIntent(bseq)
	db.lastCommitted.Store(bseq)
	return true
}
