package shardeddb

import (
	"time"

	"repro/internal/pmem"
)

// Buffered durability for the sharded front-end. Each shard runs its RedoDB
// in caller-driven buffered mode and keeps its own durable-epoch watermark;
// the sharded DB adds the cross-shard pieces:
//
//   - One persister for the whole group (a background goroutine when
//     Options.PersistEvery >= 0, otherwise caller-driven) seals every
//     shard's in-flight epoch in turn — K fences per cadence instead of
//     2 fences per operation.
//   - Session.Sync is the cross-shard barrier: it waits until the
//     session's last operation on EVERY shard is durable, so a reader that
//     synced can never observe a post-crash state missing any of them.
//   - Cross-shard WriteBatch keeps its all-or-nothing guarantee: the
//     coordinator intent is always synchronous, and the touched shards are
//     persisted before the intent retires, so a crash either loses the
//     whole batch to roll-forward or none of it — buffering never turns a
//     torn batch into a "completed" one (see Write and recoverIntent).
type bufferedState struct {
	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// Buffered reports whether the DB runs in relaxed-durability mode.
func (db *DB) Buffered() bool { return db.buffered }

// DurableEpoch returns shard's durable-epoch watermark.
func (db *DB) DurableEpoch(shard int) uint64 { return db.shards[shard].DurableEpoch() }

// CommittedEpoch returns shard's in-flight epoch tail.
func (db *DB) CommittedEpoch(shard int) uint64 { return db.shards[shard].CommittedEpoch() }

// Persist seals the in-flight epoch of every shard on the calling thread
// and returns only when all of them are durable. Shards already at their
// watermark cost one atomic load each.
func (db *DB) Persist() {
	for _, sh := range db.shards {
		sh.Persist()
	}
}

// nudge wakes the background persister without blocking.
func (db *DB) nudge() {
	if db.buf != nil {
		select {
		case db.buf.kick <- struct{}{}:
		default:
		}
	}
}

// Close stops the background persister (after a final group seal). A DB
// without one needs no Close.
func (db *DB) Close() {
	if db.buf == nil {
		return
	}
	close(db.buf.stop)
	<-db.buf.done
	db.buf = nil
}

// persistLoop is the group persister: one goroutine seals every shard on a
// timer cadence and whenever a Sync nudges it. A simulated power failure
// parks it quietly — the harness is about to Crash the group and reopen.
func (db *DB) persistLoop(every time.Duration) {
	defer close(db.buf.done)
	defer func() {
		if r := recover(); r != nil && r != pmem.ErrSimulatedPowerFailure {
			panic(r)
		}
	}()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-db.buf.stop:
			db.Persist()
			return
		case <-db.buf.kick:
		case <-t.C:
		}
		db.Persist()
	}
}

// Sync is the cross-shard durability barrier: it blocks until the session's
// last completed operation on every shard is durable. A no-op in
// synchronous mode.
func (s *Session) Sync() {
	if !s.db.buffered {
		return
	}
	// Per-shard redodb sessions run caller-driven, so each Sync seals its
	// shard directly when the watermark lags (and is a load otherwise);
	// the shared persistMu serializes against the group persister.
	for _, sess := range s.sess {
		sess.Sync()
	}
}

// LastEpoch returns the commit epoch of this session's last operation on
// shard (redodb's per-thread LastSeq). The network front-end reports it in
// write responses so remote clients can correlate acknowledgements with the
// shard's durable-epoch watermark.
func (s *Session) LastEpoch(shard int) uint64 { return s.sess[shard].LastEpoch() }

// PutDurable stores (key, value) and returns only once it is durable: the
// synchronous escape hatch in buffered mode.
func (s *Session) PutDurable(key, value []byte) {
	sh := s.shardOf(key)
	s.sess[sh].Put(key, value)
	s.sess[sh].Sync()
}

// WriteDurable applies the batch atomically and returns only once every
// touched shard has persisted it. (Cross-shard batches are already durable
// when Write returns — the intent protocol requires it — so the extra wait
// only affects the single-shard fast path.)
func (s *Session) WriteDurable(b *WriteBatch) {
	s.Write(b)
	s.Sync()
}
