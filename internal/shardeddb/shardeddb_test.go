package shardeddb

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/pmem"
	"repro/internal/redodb"
)

func openTest(t *testing.T, shards int) (*DB, *pmem.Group) {
	t.Helper()
	g := NewGroup(GroupConfig{Shards: shards, Threads: 1, Mode: pmem.Strict})
	return Open(g, Options{Threads: 1}), g
}

func TestPutGetDeleteAcrossShards(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		db, _ := openTest(t, shards)
		s := db.Session(0)
		const n = 200
		for i := 0; i < n; i++ {
			s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("val%d", i)))
		}
		if got := s.Len(); got != n {
			t.Fatalf("shards=%d: Len=%d want %d", shards, got, n)
		}
		for i := 0; i < n; i++ {
			k := []byte(fmt.Sprintf("key%04d", i))
			v, ok := s.Get(k)
			if !ok || !bytes.Equal(v, []byte(fmt.Sprintf("val%d", i))) {
				t.Fatalf("shards=%d: Get(%s) = %q,%v", shards, k, v, ok)
			}
			if !s.Has(k) {
				t.Fatalf("shards=%d: Has(%s) false", shards, k)
			}
		}
		// Overwrite and delete a subset.
		for i := 0; i < n; i += 3 {
			s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("rewritten"))
		}
		for i := 1; i < n; i += 3 {
			if !s.Delete([]byte(fmt.Sprintf("key%04d", i))) {
				t.Fatalf("shards=%d: Delete(key%04d) reported absent", shards, i)
			}
		}
		for i := 0; i < n; i++ {
			k := []byte(fmt.Sprintf("key%04d", i))
			v, ok := s.Get(k)
			switch i % 3 {
			case 0:
				if !ok || string(v) != "rewritten" {
					t.Fatalf("shards=%d: overwrite lost at %s", shards, k)
				}
			case 1:
				if ok {
					t.Fatalf("shards=%d: deleted key %s still present", shards, k)
				}
			case 2:
				if !ok || !bytes.Equal(v, []byte(fmt.Sprintf("val%d", i))) {
					t.Fatalf("shards=%d: untouched key %s damaged: %q,%v", shards, k, v, ok)
				}
			}
		}
	}
}

func TestCrossShardBatchAndIterator(t *testing.T) {
	db, _ := openTest(t, 8)
	s := db.Session(0)
	b := &WriteBatch{}
	for i := 0; i < 40; i++ {
		b.Put([]byte(fmt.Sprintf("batch%03d", i)), []byte{byte(i)})
	}
	b.Delete([]byte("batch007"))
	s.Write(b)
	if got := s.Len(); got != 39 {
		t.Fatalf("Len=%d want 39", got)
	}
	it := s.NewIterator()
	if it.Len() != 39 {
		t.Fatalf("iterator sees %d pairs, want 39", it.Len())
	}
	var prev []byte
	for it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatalf("iterator keys out of order: %q then %q", prev, it.Key())
		}
		prev = append(prev[:0], it.Key()...)
	}
	if it.Seek([]byte("batch020")) {
		if string(it.Key()) != "batch020" {
			t.Fatalf("Seek landed on %q", it.Key())
		}
	} else {
		t.Fatal("Seek(batch020) found nothing")
	}
}

// A batch confined to one shard must bypass the coordinator entirely: no
// intent is published, so the coordinator pool sees zero persistence work.
func TestSingleShardBatchBypassesCoordinator(t *testing.T) {
	db, g := openTest(t, 4)
	s := db.Session(0)
	shard := s.shardOf([]byte("anchor"))
	b := &WriteBatch{}
	b.Put([]byte("anchor"), []byte("v"))
	before := g.Pool(0).Stats()
	s.Write(b)
	after := g.Pool(0).Stats()
	if d := after.Sub(before); d.PWBs != 0 || d.Fences() != 0 {
		t.Fatalf("single-shard batch touched the coordinator: %v", d)
	}
	if v, ok := s.Get([]byte("anchor")); !ok || string(v) != "v" {
		t.Fatalf("single-shard batch not applied (shard %d)", shard)
	}
	// A genuinely cross-shard batch does use the coordinator.
	wide := &WriteBatch{}
	for i := 0; wide.Len() < 8; i++ {
		wide.Put([]byte(fmt.Sprintf("wide%d", i)), []byte("w"))
	}
	s.Write(wide)
	if d := g.Pool(0).Stats().Sub(after); d.PWBs == 0 {
		t.Fatal("cross-shard batch never published an intent")
	}
}

// Acceptance criterion: sharding must not tax the single-key hot path.
// pwbs/tx for a single-key Put through the sharded front-end must stay
// within 10% of unsharded RedoDB (same overwrite workload, so no resize
// noise on either side).
func TestPutPWBParityWithUnsharded(t *testing.T) {
	const keys = 128
	const rounds = 8

	measure := func(put func(k, v []byte), stats func() pmem.StatsSnapshot) float64 {
		fill := func(val byte) {
			for i := 0; i < keys; i++ {
				put([]byte(fmt.Sprintf("parity%04d", i)), bytes.Repeat([]byte{val}, 24))
			}
		}
		fill(0) // populate
		fill(1) // warm the overwrite path
		before := stats()
		for r := 0; r < rounds; r++ {
			fill(byte(2 + r))
		}
		delta := stats().Sub(before)
		return float64(delta.PWBs) / float64(keys*rounds)
	}

	plainPool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 16, Regions: 2})
	plain := redodb.Open(plainPool, redodb.Options{Threads: 1}).Session(0)
	plainPWBs := measure(plain.Put, plainPool.Stats)

	g := NewGroup(GroupConfig{Shards: 8, Threads: 1, ShardWords: 1 << 16, Mode: pmem.Strict})
	sharded := Open(g, Options{Threads: 1}).Session(0)
	shardedPWBs := measure(sharded.Put, g.Stats)

	ratio := shardedPWBs / plainPWBs
	t.Logf("pwbs/tx: unsharded=%.2f sharded(8)=%.2f ratio=%.3f", plainPWBs, shardedPWBs, ratio)
	if ratio > 1.10 || ratio < 0.90 {
		t.Fatalf("sharded Put pwbs/tx %.2f not within 10%% of unsharded %.2f", shardedPWBs, plainPWBs)
	}
}
