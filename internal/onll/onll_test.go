package onll

import (
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

// Operation ids for the test object: a counter and a queue.
const (
	opInc uint16 = iota + 1
	opEnq
	opDeq
)

var (
	counterAddr = ptm.RootAddr(0)
	testQueue   = seqds.Queue{RootSlot: 1}
)

func testOps() map[uint16]OpFunc {
	return map[uint16]OpFunc{
		opInc: func(m ptm.Mem, args []uint64) uint64 {
			v := m.Load(counterAddr) + 1
			m.Store(counterAddr, v)
			return v
		},
		opEnq: func(m ptm.Mem, args []uint64) uint64 {
			testQueue.Enqueue(m, args[0])
			return 0
		},
		opDeq: func(m ptm.Mem, args []uint64) uint64 {
			v, ok := testQueue.Dequeue(m)
			if !ok {
				return ^uint64(0)
			}
			return v
		},
	}
}

func initObj(m ptm.Mem, args []uint64) uint64 {
	testQueue.Init(m)
	return 0
}

func newONLL(t testing.TB, threads int, mode pmem.Mode, words uint64) (*ONLL, *pmem.Pool) {
	t.Helper()
	pool := pmem.New(pmem.Config{Mode: mode, RegionWords: words, Regions: 1})
	return New(pool, Config{
		Threads: threads,
		Ops:     testOps(),
		Init:    initObj,
	}), pool
}

func TestNameAndProperties(t *testing.T) {
	o, _ := newONLL(t, 1, pmem.Direct, 1<<12)
	if o.Name() != "ONLL" {
		t.Errorf("Name() = %q", o.Name())
	}
	p := o.Properties()
	if p.Log != ptm.PersistentLogical || p.Progress != ptm.LockFree || p.FencesPerTx != "1" {
		t.Errorf("Properties() = %+v", p)
	}
}

func TestCounterSingleThread(t *testing.T) {
	o, _ := newONLL(t, 1, pmem.Direct, 1<<12)
	for i := uint64(1); i <= 100; i++ {
		if got := o.Update(0, opInc); got != i {
			t.Fatalf("inc #%d = %d", i, got)
		}
	}
	if got := o.Read(0, func(m ptm.Mem) uint64 { return m.Load(counterAddr) }); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
}

func TestQueueFIFO(t *testing.T) {
	o, _ := newONLL(t, 1, pmem.Direct, 1<<14)
	for i := uint64(1); i <= 50; i++ {
		o.Update(0, opEnq, i)
	}
	for i := uint64(1); i <= 50; i++ {
		if got := o.Update(0, opDeq); got != i {
			t.Fatalf("deq = %d, want %d", got, i)
		}
	}
	if got := o.Update(0, opDeq); got != ^uint64(0) {
		t.Fatal("deq on empty queue returned a value")
	}
}

func TestOneFencePerUpdate(t *testing.T) {
	o, pool := newONLL(t, 1, pmem.Direct, 1<<14)
	o.Update(0, opInc)
	before := pool.Stats()
	const n = 50
	for i := 0; i < n; i++ {
		o.Update(0, opInc)
	}
	if d := pool.Stats().Sub(before); d.Fences() != n {
		t.Fatalf("%d fences for %d updates, want %d (single fence)", d.Fences(), n, n)
	}
}

func TestReadsIssueNoFence(t *testing.T) {
	o, pool := newONLL(t, 1, pmem.Direct, 1<<12)
	o.Update(0, opInc)
	before := pool.Stats()
	for i := 0; i < 20; i++ {
		o.Read(0, func(m ptm.Mem) uint64 { return m.Load(counterAddr) })
	}
	if d := pool.Stats().Sub(before); d.Fences() != 0 || d.PWBs != 0 {
		t.Fatalf("reads issued %d fences / %d pwbs, want 0/0", d.Fences(), d.PWBs)
	}
}

func TestConcurrentCounter(t *testing.T) {
	const threads, per = 6, 200
	o, _ := newONLL(t, threads, pmem.Direct, 1<<16)
	var wg sync.WaitGroup
	results := make([]map[uint64]bool, threads)
	for tid := 0; tid < threads; tid++ {
		results[tid] = make(map[uint64]bool)
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				results[tid][o.Update(tid, opInc)] = true
			}
		}(tid)
	}
	wg.Wait()
	if got := o.Read(0, func(m ptm.Mem) uint64 { return m.Load(counterAddr) }); got != threads*per {
		t.Fatalf("counter = %d, want %d", got, threads*per)
	}
	seen := make(map[uint64]bool)
	for _, rs := range results {
		for r := range rs {
			if seen[r] {
				t.Fatalf("result %d duplicated (double execution)", r)
			}
			seen[r] = true
		}
	}
}

func TestReplicasConverge(t *testing.T) {
	const threads = 4
	o, _ := newONLL(t, threads, pmem.Direct, 1<<16)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				o.Update(tid, opEnq, uint64(tid)<<32|uint64(i))
			}
		}(tid)
	}
	wg.Wait()
	// Every replica, once caught up, must agree on the queue contents.
	var ref []uint64
	for tid := 0; tid < threads; tid++ {
		items := seqds.ReadSlice(o, tid, testQueue.Items)
		if tid == 0 {
			ref = items
			if len(ref) != threads*100 {
				t.Fatalf("replica 0 has %d items, want %d", len(ref), threads*100)
			}
			continue
		}
		if len(items) != len(ref) {
			t.Fatalf("replica %d has %d items, replica 0 has %d", tid, len(items), len(ref))
		}
		for i := range ref {
			if items[i] != ref[i] {
				t.Fatalf("replica %d diverges at %d", tid, i)
			}
		}
	}
}

func TestRecoveryReplaysLog(t *testing.T) {
	pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 1})
	o := New(pool, Config{Threads: 1, Ops: testOps(), Init: initObj})
	for i := uint64(1); i <= 30; i++ {
		o.Update(0, opEnq, i)
	}
	o.Update(0, opDeq)
	pool.Crash(pmem.CrashConservative, nil)
	o2 := New(pool, Config{Threads: 1, Ops: testOps(), Init: initObj})
	if got := o2.LogLen(); got != 32 { // init + 30 enq + 1 deq
		t.Fatalf("recovered log length %d, want 32", got)
	}
	items := seqds.ReadSlice(o2, 0, testQueue.Items)
	if len(items) != 29 || items[0] != 2 {
		t.Fatalf("recovered queue %v…, want 2..30", items[:min(3, len(items))])
	}
}

func TestSystematicCrashPoints(t *testing.T) {
	const n = 25
	for fail := int64(1); ; fail += 5 {
		pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 13, Regions: 1})
		completed, crashed := 0, false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != pmem.ErrSimulatedPowerFailure {
						panic(r)
					}
					crashed = true
				}
				pool.InjectFailure(-1)
			}()
			o := New(pool, Config{Threads: 1, Ops: testOps(), Init: initObj})
			pool.InjectFailure(fail)
			for i := 0; i < n; i++ {
				o.Update(0, opEnq, uint64(i)+1)
				completed++
			}
		}()
		if !crashed {
			break
		}
		pool.Crash(pmem.CrashConservative, nil)
		o := New(pool, Config{Threads: 1, Ops: testOps(), Init: initObj})
		items := seqds.ReadSlice(o, 0, testQueue.Items)
		if len(items) < completed || len(items) > n {
			t.Fatalf("fail=%d: recovered %d items, completed %d", fail, len(items), completed)
		}
		for i, v := range items {
			if v != uint64(i)+1 {
				t.Fatalf("fail=%d: recovered state not a prefix at %d", fail, i)
			}
		}
	}
}

func TestLogFullPanics(t *testing.T) {
	o, _ := newONLL(t, 1, pmem.Direct, 64) // 8 entries
	defer func() {
		if recover() == nil {
			t.Error("full log did not panic")
		}
	}()
	for i := 0; i < 100; i++ {
		o.Update(0, opInc)
	}
}

func BenchmarkONLLUpdate(b *testing.B) {
	// ONLL's log is append-only (no compaction), so a long benchmark run
	// must periodically start a fresh instance before the log fills.
	const capacity = (1 << 24) / entryWords
	mk := func() *ONLL {
		pool := pmem.New(pmem.Config{RegionWords: 1 << 24, Regions: 1})
		return New(pool, Config{Threads: 1, Ops: testOps(), Init: initObj})
	}
	o := mk()
	used := uint64(1) // the init op
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if used+2 >= capacity {
			b.StopTimer()
			o = mk()
			used = 1
			b.StartTimer()
		}
		o.Update(0, opInc)
		used++
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
