// Package onll implements the ONLL baseline (Cohen, Guerraoui, Zablotchi —
// "The Inherent Cost of Remembering Consistently", SPAA 2018), the generic
// NVMM technique the paper contrasts CX against in §2–§3: both read-only
// and update operations are lock-free and durable linearizable, updates
// execute a *single* persistence fence and reads execute none, and the
// construction keeps a *persistent logical log* — the operations themselves
// — while every thread owns a private volatile replica of the object.
//
// The consequences the paper calls out are all visible here:
//
//   - Because the log stores operations, each one "must have been
//     previously encoded to a unique number" (no dynamic transactions):
//     operations are registered up front in an OpSet and invoked by id.
//   - Because the replicas are volatile, recovery replays the whole log.
//   - Because the log must be durable in order, an update waits (lock-free,
//     not wait-free) until all earlier log slots are written and covered by
//     a fence before returning; entries are one cache line, so a recovered
//     log prefix can never contain a torn or out-of-order entry.
//
// CX's improvement over this design (§3) is precisely that its queue of
// operations is volatile — nothing about the operations is persisted, only
// curComb and the replica it names — which is what enables dynamic
// transactions (closures) there.
package onll

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// OpFunc is a registered operation: deterministic, and re-executed on every
// replica and at recovery.
type OpFunc func(m ptm.Mem, args []uint64) uint64

// entryWords is the fixed log-entry size: one cache line ([hdr, up to 7
// args]). A line is flushed as a unit, but persistent memory only guarantees
// 8-byte write atomicity, so an *unfenced* entry evicted at power loss can
// still tear at word granularity — the header therefore embeds a checksum
// over the payload, and recovery rejects any entry whose checksum does not
// match (see recoverLog).
const entryWords = pmem.WordsPerLine

const maxArgs = entryWords - 1

// entry header: seq(24) | chk(16) | opID(16) | nargs(8). chk certifies the
// payload (opID, nargs, args), so a torn entry — header word persisted
// without its argument words — is detected at recovery.
func packHdr(seq uint64, opID uint16, nargs int, args []uint64) uint64 {
	return seq<<40 | uint64(entryChk(opID, nargs, args))<<24 |
		uint64(opID)<<8 | uint64(nargs)
}

func unpackHdr(h uint64) (seq uint64, chk uint16, opID uint16, nargs int) {
	return h >> 40, uint16(h >> 24), uint16(h >> 8), int(h & 0xff)
}

// entryChk is the 16-bit payload checksum embedded in the entry header.
func entryChk(opID uint16, nargs int, args []uint64) uint16 {
	return uint16(pmem.ChecksumWords(append([]uint64{uint64(opID)<<8 | uint64(nargs)}, args...)...))
}

// Config parameterizes an ONLL instance.
type Config struct {
	// Threads is the number of thread ids (each gets a volatile replica).
	Threads int
	// Ops maps operation ids to their implementations. The same set must
	// be registered before recovery.
	Ops map[uint16]OpFunc
	// ReplicaWords sizes each thread's volatile replica heap.
	ReplicaWords uint64
	// Init runs once on a fresh (empty-log) instance to build the
	// initial object state; it is itself appended to the log as
	// operation id InitOp, so recovery replays it too.
	Init OpFunc
}

// InitOp is the reserved operation id for Config.Init.
const InitOp uint16 = 0xffff

// ONLL is the engine. The pool needs exactly 1 region (the log); the object
// replicas live in volatile memory.
type ONLL struct {
	cfg      Config
	pool     *pmem.Pool
	log      *pmem.Region
	capacity uint64 // entries

	tail     atomic.Uint64 // next free slot (volatile; rebuilt at recovery)
	written  []atomic.Bool // slot fully written (volatile)
	flushed  atomic.Uint64 // all slots < flushed are durable
	replicas []*ptm.FlatMem
	cursors  []uint64 // per-thread replay cursor (owner-only)
}

// New creates (or recovers) an ONLL instance over pool.
func New(pool *pmem.Pool, cfg Config) *ONLL {
	if cfg.Threads <= 0 {
		panic("onll: Threads must be positive")
	}
	if pool.Regions() != 1 {
		panic("onll: pool must have exactly 1 region (the log)")
	}
	if cfg.ReplicaWords == 0 {
		cfg.ReplicaWords = 1 << 16
	}
	o := &ONLL{
		cfg:      cfg,
		pool:     pool,
		log:      pool.Region(0),
		capacity: pool.RegionWords() / entryWords,
	}
	if o.capacity >= 1<<24 {
		// Sequence numbers are 24 bits wide; larger pools would wrap.
		o.capacity = 1<<24 - 1
	}
	o.written = make([]atomic.Bool, o.capacity)
	o.replicas = make([]*ptm.FlatMem, cfg.Threads)
	o.cursors = make([]uint64, cfg.Threads)
	for i := range o.replicas {
		o.replicas[i] = ptm.NewFlatMem(cfg.ReplicaWords)
	}
	pool.TraceEvent(obs.KindRecoveryBegin, -1, 0, 0, 0, 0)
	n := o.recoverLog()
	pool.TraceEvent(obs.KindRecoveryEnd, -1, 0, 0, 0, n)
	o.tail.Store(n)
	o.flushed.Store(n)
	if n == 0 && cfg.Init != nil {
		o.apply(0, InitOp, nil)
	}
	return o
}

// validEntry reports whether log slot holds a well-formed entry: the right
// sequence number, a plausible argument count and a payload that matches the
// checksum embedded in the header.
func validEntry(log *pmem.Region, slot uint64) bool {
	seq, chk, opID, nargs := unpackHdr(log.Load(slot * entryWords))
	if seq != slot+1 || nargs > maxArgs {
		return false
	}
	args := make([]uint64, nargs)
	for i := 0; i < nargs; i++ {
		args[i] = log.Load(slot*entryWords + 1 + uint64(i))
	}
	return chk == entryChk(opID, nargs, args)
}

// recoverLog is ONLL's recovery procedure: the log is self-certifying, so it
// scans the longest contiguous valid prefix and then durably truncates any
// torn tail entry — a header word that persisted (spontaneous eviction on an
// adversarial crash) without its payload or sequence predecessor. Zeroing
// the tail is idempotent: a crash inside recoverLog leaves either the old
// torn header or the zero, and both rescan to the same prefix.
func (o *ONLL) recoverLog() uint64 {
	n := uint64(0)
	for n < o.capacity {
		if !validEntry(o.log, n) {
			break
		}
		o.written[n].Store(true)
		n++
	}
	if n < o.capacity {
		at := n * entryWords
		if o.log.Load(at) != 0 {
			o.log.Store(at, 0)
			o.log.PWB(at)
			o.log.PFence()
		}
	}
	return n
}

// CommittedEntries scans pool's log (region 0) and reports the length of the
// longest valid prefix, without constructing an instance. Chaos harnesses
// use it to locate the durable/stale boundary.
func CommittedEntries(pool *pmem.Pool) uint64 {
	log := pool.Region(0)
	capacity := pool.RegionWords() / entryWords
	n := uint64(0)
	for n < capacity && validEntry(log, n) {
		n++
	}
	return n
}

// StaleRanges reports the spans of the pool that committed state does not
// reach: everything past the valid log prefix. Bit flips there must be
// detected or ignored by recovery, never replayed.
func StaleRanges(pool *pmem.Pool) []pmem.Range {
	from := CommittedEntries(pool) * entryWords
	if total := pool.RegionWords(); from < total {
		return []pmem.Range{{Region: 0, Start: from, Words: total - from}}
	}
	return nil
}

// resolve returns the registered implementation of opID.
func (o *ONLL) resolve(opID uint16) OpFunc {
	if opID == InitOp {
		if o.cfg.Init == nil {
			panic("onll: log contains InitOp but Config.Init is nil")
		}
		return o.cfg.Init
	}
	fn, ok := o.cfg.Ops[opID]
	if !ok {
		panic(fmt.Sprintf("onll: operation %d not registered", opID))
	}
	return fn
}

// catchUp replays committed log entries onto tid's replica up to limit.
func (o *ONLL) catchUp(tid int, limit uint64) {
	rep := o.replicas[tid]
	for o.cursors[tid] < limit {
		slot := o.cursors[tid]
		for !o.written[slot].Load() {
			runtime.Gosched()
		}
		hdr := o.log.Load(slot * entryWords)
		_, _, opID, nargs := unpackHdr(hdr)
		args := make([]uint64, nargs)
		for i := 0; i < nargs; i++ {
			args[i] = o.log.Load(slot*entryWords + 1 + uint64(i))
		}
		o.resolve(opID)(rep, args)
		o.cursors[tid] = slot + 1
	}
}

// Update appends the operation to the persistent log, waits (lock-free)
// until every earlier slot is durable, fences once, and executes the log
// prefix on the caller's replica.
func (o *ONLL) Update(tid int, opID uint16, args ...uint64) uint64 {
	return o.apply(tid, opID, args)
}

func (o *ONLL) apply(tid int, opID uint16, args []uint64) uint64 {
	if len(args) > maxArgs {
		panic("onll: too many operation arguments")
	}
	slot := o.tail.Add(1) - 1
	if slot >= o.capacity {
		panic("onll: persistent log full (ONLL has no compaction; size the pool for the workload)")
	}
	base := slot * entryWords
	for i, a := range args {
		o.log.Store(base+1+uint64(i), a)
	}
	// The header word makes the entry valid; it is written last and
	// carries a checksum over the payload, so recovery rejects an entry
	// whose header persisted (torn eviction) without its arguments.
	o.log.Store(base, packHdr(slot+1, opID, len(args), args))
	o.written[slot].Store(true)
	// Wait for predecessors, then flush the unflushed prefix with a
	// single fence. Lock-free: we may wait on a slower thread's write,
	// but some thread always completes.
	for {
		f := o.flushed.Load()
		if f > slot {
			break
		}
		if !o.written[f].Load() {
			runtime.Gosched()
			continue
		}
		// Help: flush the contiguous written range starting at f.
		end := f
		for end < o.tail.Load() && end < o.capacity && o.written[end].Load() {
			end++
		}
		for s := f; s < end; s++ {
			o.log.PWB(s * entryWords)
		}
		o.log.PFence() // the single fence
		if o.pool.Traced() {
			// The entries of [f, end) — a range only this execution knows —
			// are durable here; advancing flushed publishes them to readers.
			o.pool.TraceEvent(obs.KindPublish, tid, 0,
				f*entryWords, (end-f)*entryWords, obs.PubWAL)
		}
		for {
			cur := o.flushed.Load()
			if cur >= end || o.flushed.CompareAndSwap(cur, end) {
				break
			}
		}
	}
	// Execute on the caller's replica up to and including our slot.
	o.catchUp(tid, slot)
	res := o.execOne(tid, slot, opID, args)
	return res
}

// execOne applies the caller's own operation to its replica.
func (o *ONLL) execOne(tid int, slot uint64, opID uint16, args []uint64) uint64 {
	res := o.resolve(opID)(o.replicas[tid], args)
	o.cursors[tid] = slot + 1
	return res
}

// Read catches the caller's replica up to the durable prefix and runs fn on
// it. No persistence fence is executed — ONLL's signature property.
func (o *ONLL) Read(tid int, fn func(m ptm.Mem) uint64) uint64 {
	o.catchUp(tid, o.flushed.Load())
	return fn(o.replicas[tid])
}

// Name labels the construction.
func (o *ONLL) Name() string { return "ONLL" }

// Properties mirrors the §2 comparison table row.
func (o *ONLL) Properties() ptm.Properties {
	return ptm.Properties{
		Log:         ptm.PersistentLogical,
		Progress:    ptm.LockFree,
		FencesPerTx: "1",
		Replicas:    "N",
	}
}

// LogLen reports the number of committed log entries (for tests).
func (o *ONLL) LogLen() uint64 { return o.flushed.Load() }
