package onll

import (
	"reflect"
	"testing"

	"repro/internal/pmem"
	"repro/internal/seqds"
)

// TestRecoverIsIdempotent recovers the same crashed pool repeatedly:
// recovery of an already-recovered image must reproduce the same logical
// state and issue exactly the same persistence work each time — once a torn
// log tail has been truncated, re-running the prefix scan does no further
// writes, so a crashed recovery can always be re-run from the top (the
// nested-failure model).
func TestRecoverIsIdempotent(t *testing.T) {
	pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 13, Regions: 1})
	crashed := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if r != pmem.ErrSimulatedPowerFailure {
					panic(r)
				}
				crashed = true
			}
			pool.InjectFailure(-1)
		}()
		o := New(pool, Config{Threads: 1, Ops: testOps(), Init: initObj})
		pool.InjectFailure(37)
		for i := 0; i < 25; i++ {
			o.Update(0, opEnq, uint64(i)+1)
		}
	}()
	if !crashed {
		t.Fatal("failure point never fired")
	}
	pool.Crash(pmem.CrashConservative, nil)
	var stats [3]pmem.StatsSnapshot
	var items [3][]uint64
	for i := range stats {
		pool.ResetStats()
		o := New(pool, Config{Threads: 1, Ops: testOps(), Init: initObj})
		stats[i] = pool.Stats()
		items[i] = seqds.ReadSlice(o, 0, testQueue.Items)
		pool.Crash(pmem.CrashConservative, nil)
	}
	if !reflect.DeepEqual(items[1], items[0]) || !reflect.DeepEqual(items[2], items[1]) {
		t.Fatalf("recovered state drifted across recoveries: %v / %v / %v",
			items[0], items[1], items[2])
	}
	if stats[1] != stats[2] {
		t.Fatalf("recovery work drifted: %+v vs %+v", stats[1], stats[2])
	}
}
