package ptm

import (
	"encoding/binary"
	"sync"
)

// BulkMem is the optional bulk-words extension of Mem: a construction whose
// transactional view can log and apply a whole payload as one aggregated
// record implements it (redo's RedoOpt view does), and the byte-string
// helpers detect it to avoid a log record, a dirty-tracking entry and an
// interface call per word. Semantics are exactly those of the per-word
// loops: StoreWords(addr, w) ≡ Store(addr+i, w[i]) for each i in order, and
// LoadWords(addr, dst) ≡ dst[i] = Load(addr+i).
//
// Implementations must keep the Mem determinism contract: a transaction
// closure calling StoreWords must observe the same memory as one issuing
// the equivalent Store loop, on every execution (owner or helper).
type BulkMem interface {
	// StoreWords writes len(words) consecutive words starting at addr.
	StoreWords(addr uint64, words []uint64)
	// LoadWords reads len(dst) consecutive words starting at addr.
	LoadWords(addr uint64, dst []uint64)
}

// StoreWords writes words through m's bulk path when it has one, falling
// back to one Store per word so every construction keeps working unchanged.
func StoreWords(m Mem, addr uint64, words []uint64) {
	if bm, ok := m.(BulkMem); ok {
		bm.StoreWords(addr, words)
		return
	}
	for i, w := range words {
		m.Store(addr+uint64(i), w)
	}
}

// LoadWords reads len(dst) words through m's bulk path when it has one,
// falling back to one Load per word.
func LoadWords(m Mem, addr uint64, dst []uint64) {
	if bm, ok := m.(BulkMem); ok {
		bm.LoadWords(addr, dst)
		return
	}
	for i := range dst {
		dst[i] = m.Load(addr + uint64(i))
	}
}

// ZeroWords clears n words at addr — bucket arrays, fresh blocks — in
// aggregated chunks when m supports them, one store per word otherwise.
func ZeroWords(m Mem, addr, n uint64) {
	bm, ok := m.(BulkMem)
	if !ok {
		for i := uint64(0); i < n; i++ {
			m.Store(addr+i, 0)
		}
		return
	}
	var zeros [512]uint64
	for i := uint64(0); i < n; {
		k := n - i
		if k > uint64(len(zeros)) {
			k = uint64(len(zeros))
		}
		bm.StoreWords(addr+i, zeros[:k])
		i += k
	}
}

// wordScratch recycles the word buffers the byte-string helpers pack
// payloads into before a bulk store (and out of after a bulk load). The
// buffers are private to one helper call — obtained and returned inside it —
// so concurrent closure executions by helper threads never share one, and
// the steady-state hot path allocates nothing.
var wordScratch = sync.Pool{New: func() any { b := make([]uint64, 0, 64); return &b }}

// getWordScratch returns a length-n word buffer (contents unspecified).
func getWordScratch(n int) *[]uint64 {
	p := wordScratch.Get().(*[]uint64)
	if cap(*p) < n {
		*p = make([]uint64, n)
	}
	*p = (*p)[:n]
	return p
}

func putWordScratch(p *[]uint64) { wordScratch.Put(p) }

// packWords packs b little-endian into words[0:ceil(len(b)/8)], zero-padding
// the final partial word. len(words) must be at least ceil(len(b)/8).
func packWords(words []uint64, b []byte) {
	i, w := 0, 0
	for ; i+8 <= len(b); i, w = i+8, w+1 {
		words[w] = binary.LittleEndian.Uint64(b[i:])
	}
	if i < len(b) {
		var v uint64
		for j := 0; i+j < len(b); j++ {
			v |= uint64(b[i+j]) << (8 * j)
		}
		words[w] = v
	}
}

// appendWordBytes appends the first n bytes packed in words to dst.
func appendWordBytes(dst []byte, words []uint64, n int) []byte {
	i, w := 0, 0
	for ; i+8 <= n; i, w = i+8, w+1 {
		dst = binary.LittleEndian.AppendUint64(dst, words[w])
	}
	if i < n {
		v := words[w]
		for j := 0; i+j < n; j++ {
			dst = append(dst, byte(v>>(8*j)))
		}
	}
	return dst
}
