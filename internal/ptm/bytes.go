package ptm

import "encoding/binary"

// Byte-string helpers. Persistent memory is word-granular in this model, so
// variable-length byte strings (keys and values in RedoDB) are packed into
// words: word 0 holds the length in bytes, followed by ceil(len/8) words of
// payload, little-endian within each word.

// BytesWords returns the number of words needed to store a byte string of n
// bytes with StoreBytes, including the length word.
func BytesWords(n int) uint64 {
	return 1 + (uint64(n)+7)/8
}

// StoreBytes writes b at addr through m. The caller must have allocated at
// least BytesWords(len(b)) words at addr. When m implements BulkMem the
// whole payload — length word included — goes through one StoreWords call,
// so a construction with aggregated logging pays one log record instead of
// one per word.
func StoreBytes(m Mem, addr uint64, b []byte) {
	if bm, ok := m.(BulkMem); ok {
		nw := int(BytesWords(len(b)))
		p := getWordScratch(nw)
		buf := *p
		buf[0] = uint64(len(b))
		packWords(buf[1:], b)
		bm.StoreWords(addr, buf)
		putWordScratch(p)
		return
	}
	m.Store(addr, uint64(len(b)))
	w := addr + 1
	for i := 0; i < len(b); i += 8 {
		var v uint64
		for j := 0; j < 8 && i+j < len(b); j++ {
			v |= uint64(b[i+j]) << (8 * j)
		}
		m.Store(w, v)
		w++
	}
}

// LoadBytes reads a byte string previously written by StoreBytes at addr.
func LoadBytes(m Mem, addr uint64) []byte {
	n := m.Load(addr)
	return loadBytesInto(m, addr, make([]byte, 0, n), n)
}

// LoadBytesAppend reads the byte string at addr and appends it to dst,
// returning the extended slice. With a dst of sufficient capacity and a
// BulkMem, the read allocates nothing — the hot path behind RedoDB's
// GetAppend.
func LoadBytesAppend(m Mem, addr uint64, dst []byte) []byte {
	return loadBytesInto(m, addr, dst, m.Load(addr))
}

func loadBytesInto(m Mem, addr uint64, dst []byte, n uint64) []byte {
	if n == 0 {
		return dst
	}
	if uint64(cap(dst)-len(dst)) < n {
		// Grow once up front: letting the word-at-a-time appends below
		// regrow the slice costs a whole chain of allocations per read.
		grown := make([]byte, len(dst), uint64(len(dst))+n)
		copy(grown, dst)
		dst = grown
	}
	if bm, ok := m.(BulkMem); ok {
		nw := int((n + 7) / 8)
		p := getWordScratch(nw)
		buf := *p
		bm.LoadWords(addr+1, buf)
		dst = appendWordBytes(dst, buf, int(n))
		putWordScratch(p)
		return dst
	}
	w := addr + 1
	for i := uint64(0); i < n; i += 8 {
		v := m.Load(w)
		for j := uint64(0); j < 8 && i+j < n; j++ {
			dst = append(dst, byte(v>>(8*j)))
		}
		w++
	}
	return dst
}

// AllocBytes allocates space for b, writes it, and returns its address (or 0
// if the heap is exhausted).
func AllocBytes(m Mem, b []byte) uint64 {
	addr := m.Alloc(BytesWords(len(b)))
	if addr == 0 {
		return 0
	}
	StoreBytes(m, addr, b)
	return addr
}

// BytesEmitter is the optional byte-result channel a Mem may provide:
// transactions whose result is a byte string (e.g. a key-value Get) emit it
// through the Mem rather than writing a captured variable, because the
// closure may be executed by a helper thread under the combining consensus —
// a captured variable would race, the emitter routes the bytes through an
// executor-indexed outbox with proper happens-before edges.
type BytesEmitter interface {
	EmitBytes(b []byte)
}

// EmitBytes sends b through m's byte-result channel. It panics if m does not
// support one — emitting bytes from a PTM without helper-safe plumbing is a
// correctness bug, not a soft failure.
func EmitBytes(m Mem, b []byte) {
	e, ok := m.(BytesEmitter)
	if !ok {
		panic("ptm: Mem does not support EmitBytes")
	}
	e.EmitBytes(b)
}

// BytesEqual reports whether the byte string at addr equals b, without
// materializing it.
func BytesEqual(m Mem, addr uint64, b []byte) bool {
	if m.Load(addr) != uint64(len(b)) {
		return false
	}
	if len(b) == 0 {
		return true
	}
	if bm, ok := m.(BulkMem); ok {
		nw := (len(b) + 7) / 8
		p := getWordScratch(nw)
		buf := *p
		bm.LoadWords(addr+1, buf)
		eq := true
		i, w := 0, 0
		for ; i+8 <= len(b); i, w = i+8, w+1 {
			if buf[w] != binary.LittleEndian.Uint64(b[i:]) {
				eq = false
				break
			}
		}
		if eq && i < len(b) {
			var v uint64
			for j := 0; i+j < len(b); j++ {
				v |= uint64(b[i+j]) << (8 * j)
			}
			eq = buf[w] == v
		}
		putWordScratch(p)
		return eq
	}
	w := addr + 1
	for i := 0; i < len(b); i += 8 {
		var v uint64
		for j := 0; j < 8 && i+j < len(b); j++ {
			v |= uint64(b[i+j]) << (8 * j)
		}
		if m.Load(w) != v {
			return false
		}
		w++
	}
	return true
}
