package ptm

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Profile accumulates the per-phase time breakdown of update transactions
// that Table 1 of the paper reports: applying logs, flushing to PM, copying
// replicas, running the user's closure (lambda), and back-off sleeping.
// A nil *Profile disables instrumentation at negligible cost.
type Profile struct {
	apply  atomic.Int64
	flush  atomic.Int64
	copy   atomic.Int64
	lambda atomic.Int64
	sleep  atomic.Int64
	total  atomic.Int64
	txs    atomic.Int64

	// Lat optionally records the same phases into latency histograms:
	// AddTx observes into Lat.Op and AddFlush into Lat.Commit, so any
	// profiled run gets p50/p99 distributions alongside the aggregate
	// means. Nil (the default) skips the histograms entirely.
	Lat *obs.LatencySet
}

// AddApply records d spent applying a physical or logical log.
func (p *Profile) AddApply(d time.Duration) {
	if p != nil {
		p.apply.Add(int64(d))
	}
}

// AddFlush records d spent issuing pwbs and fences.
func (p *Profile) AddFlush(d time.Duration) {
	if p != nil {
		p.flush.Add(int64(d))
		if p.Lat != nil {
			p.Lat.Commit.Observe(d)
		}
	}
}

// AddCopy records d spent copying a replica.
func (p *Profile) AddCopy(d time.Duration) {
	if p != nil {
		p.copy.Add(int64(d))
	}
}

// AddLambda records d spent executing user closures.
func (p *Profile) AddLambda(d time.Duration) {
	if p != nil {
		p.lambda.Add(int64(d))
	}
}

// AddSleep records d spent backing off / waiting for helpers.
func (p *Profile) AddSleep(d time.Duration) {
	if p != nil {
		p.sleep.Add(int64(d))
	}
}

// AddTx records one completed update transaction of total duration d.
func (p *Profile) AddTx(d time.Duration) {
	if p != nil {
		p.total.Add(int64(d))
		p.txs.Add(1)
		if p.Lat != nil {
			p.Lat.Op.Observe(d)
		}
	}
}

// ProfileSnapshot is an immutable view of a Profile.
type ProfileSnapshot struct {
	Apply, Flush, Copy, Lambda, Sleep, Total time.Duration
	Txs                                      int64
}

// Snapshot returns the current totals.
func (p *Profile) Snapshot() ProfileSnapshot {
	if p == nil {
		return ProfileSnapshot{}
	}
	return ProfileSnapshot{
		Apply:  time.Duration(p.apply.Load()),
		Flush:  time.Duration(p.flush.Load()),
		Copy:   time.Duration(p.copy.Load()),
		Lambda: time.Duration(p.lambda.Load()),
		Sleep:  time.Duration(p.sleep.Load()),
		Total:  time.Duration(p.total.Load()),
		Txs:    p.txs.Load(),
	}
}

// MeanTx returns the mean update-transaction latency.
func (s ProfileSnapshot) MeanTx() time.Duration {
	if s.Txs == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Txs)
}

// Percent returns d as a percentage of the total transaction time.
func (s ProfileSnapshot) Percent(d time.Duration) float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(d) / float64(s.Total)
}
