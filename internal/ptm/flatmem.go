package ptm

import "repro/internal/palloc"

// FlatMem is a plain, non-transactional, non-persistent Mem over a word
// array. It is the "run the sequential implementation directly" baseline:
// tests validate data structures against it, and the constructions' results
// are cross-checked against it.
type FlatMem struct {
	words   []uint64
	emitted []byte
}

// NewFlatMem creates a FlatMem with the given capacity and a formatted heap.
func NewFlatMem(words uint64) *FlatMem {
	m := &FlatMem{words: make([]uint64, words)}
	palloc.Format(m, words)
	return m
}

// Load implements Mem.
func (m *FlatMem) Load(addr uint64) uint64 { return m.words[addr] }

// Store implements Mem.
func (m *FlatMem) Store(addr, val uint64) { m.words[addr] = val }

// Alloc implements Mem.
func (m *FlatMem) Alloc(words uint64) uint64 { return palloc.Alloc(m, words) }

// Free implements Mem.
func (m *FlatMem) Free(addr uint64) { palloc.Free(m, addr) }

// InUseWords reports the allocator's in-use word count.
func (m *FlatMem) InUseWords() uint64 { return palloc.InUseWords(m) }

// EmitBytes implements BytesEmitter trivially (no helpers exist).
func (m *FlatMem) EmitBytes(b []byte) { m.emitted = b }

// Emitted returns the byte string from the last EmitBytes call.
func (m *FlatMem) Emitted() []byte { return m.emitted }
