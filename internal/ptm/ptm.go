// Package ptm defines the common surface shared by every persistent
// transactional memory (PTM) and persistent universal construction (PUC) in
// this repository: the transactional memory interface that sequential data
// structures are written against, the PTM interface the benchmark harness
// drives, and the persistent region layout (root slots + allocator heap).
//
// A transaction body is an ordinary Go closure over a Mem. Exactly as in the
// paper, the closure may be executed more than once (by the owner after a
// consensus retry, or by a helper thread), so it must be deterministic: given
// the same persistent state it must perform the same loads, stores and
// allocations and return the same value. Closures must not touch volatile
// shared state.
package ptm

// Mem is the transactional view of persistent memory inside a transaction.
// Addresses are word offsets within the (logical) persistent region; address
// 0 is nil. All bookkeeping — store interposition for flushing or physical
// logging, pointer-offset adjustment across replicas — happens behind this
// interface, which is why the same sequential data structure code runs
// unchanged under every construction.
type Mem interface {
	// Load reads the 64-bit word at addr.
	Load(addr uint64) uint64
	// Store writes the 64-bit word at addr.
	Store(addr uint64, val uint64)
	// Alloc allocates a block of at least words 64-bit words from the
	// persistent heap and returns its address, or 0 if the heap is
	// exhausted.
	Alloc(words uint64) uint64
	// Free returns a block previously obtained from Alloc to the heap.
	Free(addr uint64)
}

// PTM is a persistent transactional memory: it executes closures over
// persistent memory with ACID semantics and durable linearizability.
// Implementations differ in progress guarantees, logging strategy and number
// of replicas — see Properties.
//
// Thread ids identify the calling goroutine and must be in
// [0, MaxThreads()); each id must be used by at most one goroutine at a
// time. The id doubles as the consensus slot, exactly as in the paper's
// algorithms.
type PTM interface {
	// Update runs fn as a durable linearizable update transaction and
	// returns its result. fn may be executed multiple times and by other
	// threads; it must be deterministic.
	Update(tid int, fn func(Mem) uint64) uint64
	// Read runs fn as a read-only transaction and returns its result.
	// fn must not call Store, Alloc or Free.
	Read(tid int, fn func(Mem) uint64) uint64
	// MaxThreads reports the number of usable thread ids.
	MaxThreads() int
	// Name returns the construction's short name (e.g. "RedoOpt-PTM").
	Name() string
	// Properties describes the construction, mirroring the comparison
	// table in §2 of the paper.
	Properties() Properties
}

// Progress is a progress guarantee.
type Progress string

// Progress guarantees, strongest first.
const (
	WaitFree Progress = "wait-free"
	LockFree Progress = "lock-free"
	Blocking Progress = "blocking"
)

// LogKind describes where and what a construction logs.
type LogKind string

// Log kinds: persistent vs volatile placement, logical (operations) vs
// physical (addresses and values) content.
const (
	PersistentPhysical LogKind = "p-physical"
	PersistentLogical  LogKind = "p-logical"
	VolatileLogical    LogKind = "v-logical"
	VolatilePhysical   LogKind = "v-physical"
	NoLog              LogKind = "none"
)

// Properties mirrors one row of the PTM comparison table in §2.
type Properties struct {
	Log         LogKind
	Progress    Progress
	FencesPerTx string // e.g. "2" or "2+2R"
	Replicas    string // e.g. "2N", "N+1", "1"
}

// Region layout. Every replica region has the same layout, and all
// "pointers" stored inside it are region-relative word offsets, so a replica
// is valid after a plain byte copy — the Go equivalent of the paper's
// "all pointers reference the MAIN region".
const (
	// NumRoots is the number of persistent root slots available to
	// applications (RootAddr(0..NumRoots-1)).
	NumRoots = 8
	// HeapBase is the word offset where the allocator's heap (including
	// its metadata) begins. It is line-aligned.
	HeapBase = 16
)

// RootAddr returns the word address of persistent root slot i. Roots live
// inside the region, so they are versioned and replicated with the data.
func RootAddr(i int) uint64 {
	if i < 0 || i >= NumRoots {
		panic("ptm: root index out of range")
	}
	return uint64(1 + i)
}
