package ptm

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestRootAddr(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < NumRoots; i++ {
		a := RootAddr(i)
		if a == 0 {
			t.Fatalf("RootAddr(%d) = 0 (nil address)", i)
		}
		if a >= HeapBase {
			t.Fatalf("RootAddr(%d) = %d overlaps the heap", i, a)
		}
		if seen[a] {
			t.Fatalf("RootAddr(%d) duplicates another slot", i)
		}
		seen[a] = true
	}
	for _, bad := range []int{-1, NumRoots} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RootAddr(%d) did not panic", bad)
				}
			}()
			RootAddr(bad)
		}()
	}
}

func TestBytesWords(t *testing.T) {
	cases := map[int]uint64{0: 1, 1: 2, 7: 2, 8: 2, 9: 3, 16: 3, 100: 14}
	for n, want := range cases {
		if got := BytesWords(n); got != want {
			t.Errorf("BytesWords(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestStoreLoadBytesRoundTrip(t *testing.T) {
	m := NewFlatMem(1 << 12)
	for _, b := range [][]byte{
		nil,
		{},
		{0},
		{1, 2, 3},
		[]byte("exactly8"),
		[]byte("nine byte"),
		bytes.Repeat([]byte{0xff}, 100),
	} {
		addr := m.Alloc(BytesWords(len(b)))
		StoreBytes(m, addr, b)
		got := LoadBytes(m, addr)
		if !bytes.Equal(got, b) {
			t.Errorf("round trip of %q gave %q", b, got)
		}
		if !BytesEqual(m, addr, b) {
			t.Errorf("BytesEqual(%q) = false", b)
		}
	}
}

func TestBytesEqualNegative(t *testing.T) {
	m := NewFlatMem(1 << 12)
	addr := AllocBytes(m, []byte("hello"))
	for _, other := range [][]byte{
		[]byte("hellp"),
		[]byte("hell"),
		[]byte("hello!"),
		{},
	} {
		if BytesEqual(m, addr, other) {
			t.Errorf("BytesEqual(%q vs hello) = true", other)
		}
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	m := NewFlatMem(1 << 16)
	f := func(b []byte) bool {
		if len(b) > 1000 {
			b = b[:1000]
		}
		addr := AllocBytes(m, b)
		if addr == 0 {
			return true // heap full; not what we're testing
		}
		ok := bytes.Equal(LoadBytes(m, addr), b) && BytesEqual(m, addr, b)
		m.Free(addr)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEmitBytes(t *testing.T) {
	m := NewFlatMem(1 << 10)
	EmitBytes(m, []byte("payload"))
	if string(m.Emitted()) != "payload" {
		t.Fatalf("Emitted = %q", m.Emitted())
	}
}

type noEmit struct{ Mem }

func TestEmitBytesUnsupportedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("EmitBytes on non-emitter did not panic")
		}
	}()
	EmitBytes(noEmit{NewFlatMem(64)}, nil)
}

func TestFlatMemAllocFree(t *testing.T) {
	m := NewFlatMem(1 << 12)
	a := m.Alloc(8)
	if a == 0 {
		t.Fatal("Alloc failed")
	}
	m.Store(a, 42)
	if m.Load(a) != 42 {
		t.Fatal("Load after Store failed")
	}
	before := m.InUseWords()
	m.Free(a)
	if m.InUseWords() >= before {
		t.Fatal("Free did not reduce InUseWords")
	}
}

func TestProfile(t *testing.T) {
	var p Profile
	p.AddApply(10 * time.Millisecond)
	p.AddFlush(20 * time.Millisecond)
	p.AddCopy(30 * time.Millisecond)
	p.AddLambda(15 * time.Millisecond)
	p.AddSleep(25 * time.Millisecond)
	p.AddTx(100 * time.Millisecond)
	p.AddTx(100 * time.Millisecond)
	s := p.Snapshot()
	if s.Txs != 2 {
		t.Fatalf("Txs = %d", s.Txs)
	}
	if s.MeanTx() != 100*time.Millisecond {
		t.Fatalf("MeanTx = %v", s.MeanTx())
	}
	if got := s.Percent(s.Flush); got != 10 {
		t.Fatalf("Percent(flush) = %v, want 10", got)
	}
}

func TestProfileNilIsNoOp(t *testing.T) {
	var p *Profile
	p.AddApply(time.Second) // must not panic
	p.AddFlush(time.Second)
	p.AddCopy(time.Second)
	p.AddLambda(time.Second)
	p.AddSleep(time.Second)
	p.AddTx(time.Second)
	s := p.Snapshot()
	if s.Txs != 0 || s.Total != 0 {
		t.Fatalf("nil profile snapshot = %+v", s)
	}
	if s.MeanTx() != 0 || s.Percent(time.Second) != 0 {
		t.Fatal("nil profile derived values nonzero")
	}
}
