package ptm

// Syncer is the optional buffered-durability interface: a PTM engine
// running in relaxed (group-commit) mode exposes its epoch machinery
// through it. Transactions commit into an in-flight epoch identified by
// the engine's consensus sequence number; Persist seals the epoch with one
// fence for the whole group and advances the durable watermark. Engines
// without the mode simply do not implement the interface (SyncerOf hides
// the assertion), and a Syncer whose Buffered() is false behaves
// synchronously: the watermark always equals the committed tail.
type Syncer interface {
	// Buffered reports whether relaxed durability is active.
	Buffered() bool
	// Persist seals the in-flight epoch, making every committed
	// transition durable, and returns the new watermark. Single caller
	// at a time.
	Persist() uint64
	// DurableSeq returns the durable-epoch watermark: transitions at or
	// below it survive any crash.
	DurableSeq() uint64
	// CommittedSeq returns the in-flight epoch's tail: the newest
	// committed (but possibly still volatile) transition.
	CommittedSeq() uint64
}

// SyncerOf reports whether the engine exposes buffered-durability hooks.
func SyncerOf(p PTM) (Syncer, bool) {
	s, ok := p.(Syncer)
	return s, ok
}
