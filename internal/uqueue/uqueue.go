// Package uqueue provides the wait-free queue of mutations that establishes
// the linearization order in the CX universal construction (the "turn
// queue" of Ramalhete & Correia). Only enqueue is needed: nodes are never
// dequeued — each Combined replica keeps its own cursor into the list and the
// construction advances a shared head (the "door") for logical reclamation.
//
// Enqueue is wait-free through operation announcement and helping, following
// the structure of the Kogan-Petrank wait-free queue: a thread announces its
// pending enqueue in a per-thread slot with a monotonically increasing phase
// number, then helps every announced operation with a phase at most its own
// until its own operation is complete. Every node is assigned a ticket — its
// 1-based position in the linearization — before the tail advances past it.
//
// Physical memory reclamation is delegated to the garbage collector; the CX
// paper's hazard-pointer scheme is only needed in non-GC languages. The
// externally visible effect of reclamation — replica invalidation when a
// node leaves the reclamation window — is reproduced by AdvanceHead.
package uqueue

import "sync/atomic"

// Node is one entry of the mutation queue. Nodes are single-use: enqueueing
// the same node twice corrupts the queue.
type Node[T any] struct {
	Val    T
	next   atomic.Pointer[Node[T]]
	ticket atomic.Uint64
	enqTid int32
}

// Next returns the successor of n, or nil if n is the last linked node.
func (n *Node[T]) Next() *Node[T] { return n.next.Load() }

// Ticket returns the node's 1-based position in the linearization order, or
// 0 if the node has been linked but its enqueue has not yet been finished by
// any helper. The sentinel has ticket 0.
func (n *Node[T]) Ticket() uint64 { return n.ticket.Load() }

// opDesc announces a pending enqueue. Descriptors are immutable; state
// transitions replace the whole descriptor.
type opDesc[T any] struct {
	phase   uint64
	pending bool
	node    *Node[T]
}

// Queue is a wait-free multi-producer queue of Nodes.
type Queue[T any] struct {
	head     atomic.Pointer[Node[T]] // reclamation door; moves forward only
	tail     atomic.Pointer[Node[T]]
	state    []atomic.Pointer[opDesc[T]]
	maxPhase atomic.Uint64
}

// New creates a queue usable by thread ids 0..maxThreads-1. The queue starts
// with a sentinel node carrying ticket 0.
func New[T any](maxThreads int) *Queue[T] {
	if maxThreads <= 0 {
		panic("uqueue: maxThreads must be positive")
	}
	q := &Queue[T]{state: make([]atomic.Pointer[opDesc[T]], maxThreads)}
	sentinel := &Node[T]{enqTid: -1}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	done := &opDesc[T]{}
	for i := range q.state {
		q.state[i].Store(done)
	}
	return q
}

// Head returns the current reclamation door. Nodes before the door are
// considered reclaimed: a replica whose cursor is older than the door must be
// rebuilt by copying from the most recent replica.
func (q *Queue[T]) Head() *Node[T] { return q.head.Load() }

// Tail returns the most recently finished node (the node the next enqueue
// will link after). Immediately after New it returns the sentinel.
func (q *Queue[T]) Tail() *Node[T] { return q.tail.Load() }

// Enqueue appends a new node holding val on behalf of thread tid and returns
// it. It is wait-free: it completes in a bounded number of steps regardless
// of the progress of other threads.
func (q *Queue[T]) Enqueue(tid int, val T) *Node[T] {
	node := &Node[T]{Val: val, enqTid: int32(tid)}
	phase := q.maxPhase.Add(1)
	q.state[tid].Store(&opDesc[T]{phase: phase, pending: true, node: node})
	q.help(phase)
	q.helpFinish()
	return node
}

// help completes every announced operation with phase at most the given one.
func (q *Queue[T]) help(phase uint64) {
	for tid := range q.state {
		d := q.state[tid].Load()
		if d.pending && d.phase <= phase {
			q.helpEnq(tid, d.phase)
		}
	}
}

// isStillPending reports whether thread tid has an unfinished operation with
// phase at most the given one.
func (q *Queue[T]) isStillPending(tid int, phase uint64) bool {
	d := q.state[tid].Load()
	return d.pending && d.phase <= phase
}

// helpEnq links thread tid's announced node at the tail. Multiple helpers
// may run concurrently for the same operation; exactly one link CAS wins.
func (q *Queue[T]) helpEnq(tid int, phase uint64) {
	for q.isStillPending(tid, phase) {
		last := q.tail.Load()
		next := last.next.Load()
		if last != q.tail.Load() {
			continue
		}
		if next != nil {
			// The queue is mid-enqueue: finish it and retry.
			q.helpFinish()
			continue
		}
		d := q.state[tid].Load()
		if !d.pending || d.phase > phase {
			return
		}
		if last.next.CompareAndSwap(nil, d.node) {
			q.helpFinish()
			return
		}
	}
}

// helpFinish completes a half-done enqueue: assigns the linked node its
// ticket, retires the owner's announcement, and swings the tail. The ticket
// is always assigned and the announcement always retired before the tail
// advances past the node, so a node reachable from Tail always has a ticket.
func (q *Queue[T]) helpFinish() {
	last := q.tail.Load()
	next := last.next.Load()
	if next == nil {
		return
	}
	tid := next.enqTid
	cur := q.state[tid].Load()
	if last != q.tail.Load() {
		return
	}
	next.ticket.CompareAndSwap(0, last.ticket.Load()+1)
	if cur.pending && cur.node == next {
		q.state[tid].CompareAndSwap(cur, &opDesc[T]{phase: cur.phase, pending: false, node: next})
	}
	q.tail.CompareAndSwap(last, next)
}

// AdvanceHead moves the reclamation door forward to n, which must be a node
// of this queue at or after the current door. Nodes before n become
// unreachable through the queue and are eventually collected once no replica
// cursor references them. AdvanceHead never moves the door backwards.
func (q *Queue[T]) AdvanceHead(n *Node[T]) {
	for {
		h := q.head.Load()
		if h.Ticket() >= n.Ticket() {
			return
		}
		if q.head.CompareAndSwap(h, n) {
			return
		}
	}
}
