package uqueue

import (
	"sync"
	"testing"
	"testing/quick"
)

func drain[T any](q *Queue[T]) []T {
	var out []T
	for n := q.Head().Next(); n != nil; n = n.Next() {
		out = append(out, n.Val)
	}
	return out
}

func TestNewPanicsOnBadMax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New[int](0)
}

func TestSequentialEnqueue(t *testing.T) {
	q := New[int](1)
	for i := 1; i <= 5; i++ {
		n := q.Enqueue(0, i*10)
		if got := n.Ticket(); got != uint64(i) {
			t.Fatalf("node %d ticket = %d, want %d", i, got, i)
		}
	}
	got := drain(q)
	want := []int{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("drained %d nodes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if q.Tail().Ticket() != 5 {
		t.Fatalf("Tail ticket = %d, want 5", q.Tail().Ticket())
	}
}

func TestSentinelProperties(t *testing.T) {
	q := New[int](2)
	if q.Head() != q.Tail() {
		t.Fatal("empty queue: head != tail")
	}
	if q.Head().Ticket() != 0 {
		t.Fatalf("sentinel ticket = %d, want 0", q.Head().Ticket())
	}
	if q.Head().Next() != nil {
		t.Fatal("sentinel has a successor in an empty queue")
	}
}

func TestConcurrentEnqueueNoLossNoDup(t *testing.T) {
	const threads = 8
	const perThread = 2000
	q := New[uint64](threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				q.Enqueue(tid, uint64(tid)<<32|uint64(i))
			}
		}(tid)
	}
	wg.Wait()
	vals := drain(q)
	if len(vals) != threads*perThread {
		t.Fatalf("queue holds %d nodes, want %d", len(vals), threads*perThread)
	}
	seen := make(map[uint64]bool, len(vals))
	for _, v := range vals {
		if seen[v] {
			t.Fatalf("duplicate value %#x", v)
		}
		seen[v] = true
	}
	// Per-thread FIFO: values of each thread appear in insertion order.
	lastIdx := make(map[uint64]int64, threads)
	for tid := range lastIdx {
		lastIdx[tid] = -1
	}
	for _, v := range vals {
		tid, i := v>>32, int64(v&0xffffffff)
		if prev, ok := lastIdx[tid]; ok && i <= prev {
			t.Fatalf("thread %d out of order: %d after %d", tid, i, prev)
		}
		lastIdx[tid] = i
	}
}

func TestTicketsAreDenseAndOrdered(t *testing.T) {
	const threads = 4
	const perThread = 1000
	q := New[int](threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				q.Enqueue(tid, 0)
			}
		}(tid)
	}
	wg.Wait()
	want := uint64(1)
	for n := q.Head().Next(); n != nil; n = n.Next() {
		if n.Ticket() != want {
			t.Fatalf("ticket = %d, want %d", n.Ticket(), want)
		}
		want++
	}
	if want != threads*perThread+1 {
		t.Fatalf("last ticket %d, want %d", want-1, threads*perThread)
	}
}

func TestEnqueueReturnsOwnNode(t *testing.T) {
	const threads = 6
	q := New[int](threads)
	var wg sync.WaitGroup
	nodes := make([]*Node[int], threads)
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			nodes[tid] = q.Enqueue(tid, tid)
		}(tid)
	}
	wg.Wait()
	for tid, n := range nodes {
		if n.Val != tid {
			t.Fatalf("node for thread %d carries %d", tid, n.Val)
		}
		if n.Ticket() == 0 {
			t.Fatalf("node for thread %d has no ticket", tid)
		}
		// The returned node must be reachable in the list.
		found := false
		for m := q.Head().Next(); m != nil; m = m.Next() {
			if m == n {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("node for thread %d not linked", tid)
		}
	}
}

func TestAdvanceHead(t *testing.T) {
	q := New[int](1)
	var third *Node[int]
	for i := 1; i <= 5; i++ {
		n := q.Enqueue(0, i)
		if i == 3 {
			third = n
		}
	}
	q.AdvanceHead(third)
	if q.Head() != third {
		t.Fatalf("head ticket = %d, want 3", q.Head().Ticket())
	}
	got := drain(q)
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("after advance, remaining = %v, want [4 5]", got)
	}
	// Never moves backwards.
	q.AdvanceHead(q.Head())
	first := q.Head()
	q.AdvanceHead(first)
	if q.Head().Ticket() != 3 {
		t.Fatalf("head moved: ticket %d", q.Head().Ticket())
	}
}

func TestConcurrentAdvanceHeadMonotonic(t *testing.T) {
	const threads = 4
	q := New[int](threads)
	nodes := make([]*Node[int], 0, 1000)
	for i := 0; i < 1000; i++ {
		nodes = append(nodes, q.Enqueue(0, i))
	}
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := tid; i < len(nodes); i += threads {
				q.AdvanceHead(nodes[i])
			}
		}(tid)
	}
	wg.Wait()
	if got := q.Head().Ticket(); got != 1000 {
		t.Fatalf("final head ticket = %d, want 1000", got)
	}
}

func BenchmarkEnqueueUncontended(b *testing.B) {
	q := New[int](1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(0, i)
	}
}

// TestQuickArbitraryInterleavings drives the queue with random per-thread
// enqueue counts and validates global ticket density and per-thread FIFO.
func TestQuickArbitraryInterleavings(t *testing.T) {
	f := func(counts []uint8) bool {
		if len(counts) == 0 {
			return true
		}
		if len(counts) > 8 {
			counts = counts[:8]
		}
		q := New[uint64](len(counts))
		var wg sync.WaitGroup
		total := 0
		for tid, c := range counts {
			n := int(c % 64)
			total += n
			wg.Add(1)
			go func(tid, n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					q.Enqueue(tid, uint64(tid)<<32|uint64(i))
				}
			}(tid, n)
		}
		wg.Wait()
		want := uint64(1)
		last := make(map[uint64]int64)
		for n := q.Head().Next(); n != nil; n = n.Next() {
			if n.Ticket() != want {
				return false
			}
			want++
			tid, i := n.Val>>32, int64(n.Val&0xffffffff)
			if prev, ok := last[tid]; ok && i <= prev {
				return false
			}
			last[tid] = i
		}
		return int(want)-1 == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
