// Package pmdk implements the PMDK/libpmemobj baseline: a blocking
// persistent transactional memory with a persistent undo log, mirroring the
// cost model of Intel's Persistent Memory Development Kit as evaluated in
// the paper (Figs. 4–6): concurrency through a global reader-writer lock
// (PMDK leaves concurrency to the user), one fence per snapshotted range
// plus two at commit, and in-place writes.
//
// Undo protocol, per transaction:
//
//  1. Before the first write to an address, its old value is appended to
//     the persistent undo log (entry + log size flushed, then one pfence:
//     the snapshot must be durable before the in-place write can possibly
//     reach the medium).
//  2. The write is applied in place and its line flushed.
//  3. At commit, a fence orders the data writes, then the log is
//     invalidated (size 0) and persisted with a psync.
//
// Recovery applies valid undo entries in reverse, rolling back the
// interrupted transaction. Log entries are tagged with an era-qualified
// transaction id so a partially persisted newer entry (spontaneous cache
// eviction) is never mistaken for a committed snapshot.
package pmdk

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/palloc"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// Header slots.
const (
	slotMagic = 0
	slotEra   = 1
)

const magic = 0x706d646b2d73696d // "pmdk-sim"

// Log region layout: word 0 = txID, word 1 = size, entries from word 8,
// four words each ([txID, addr, old, crc]) so an entry never straddles a
// cache line. The crc closes the torn-entry window of the adversarial
// model: a spuriously evicted entry line may persist its txID word while
// addr/old keep a previous transaction's durable values — era-qualified
// tags alone cannot catch that, a checksum over all three words does.
const (
	logTxID    = 0
	logSize    = 1
	logEntries = 8
	entryWords = 4
)

// PMDK is the engine. The pool must have exactly 2 regions: data + undo log.
type PMDK struct {
	cfg  Config
	pool *pmem.Pool
	data *pmem.Region
	log  *pmem.Region
	mu   sync.RWMutex

	era    uint64
	txSeq  uint64          // protected by mu
	logged map[uint64]bool // addresses snapshotted in the current tx
	nlog   uint64
	dirty  []uint64
}

// Config parameterizes the PMDK baseline.
type Config struct {
	Threads int
	Profile *ptm.Profile
}

// New creates (or recovers) a PMDK instance over pool.
func New(pool *pmem.Pool, cfg Config) *PMDK {
	if cfg.Threads <= 0 {
		panic("pmdk: Threads must be positive")
	}
	if pool.Regions() != 2 {
		panic("pmdk: pool must have exactly 2 regions (data + undo log)")
	}
	p := &PMDK{
		cfg:    cfg,
		pool:   pool,
		data:   pool.Region(0),
		log:    pool.Region(1),
		logged: make(map[uint64]bool),
	}
	pool.TraceEvent(obs.KindRecoveryBegin, -1, -1, 0, 0, 0)
	if pool.PersistedHeader(slotMagic) == magic {
		p.recover()
	} else {
		palloc.Format(rawMem{p.data}, pool.RegionWords())
		meta := palloc.MetaWords(rawMem{p.data})
		p.data.FlushRange(0, meta)
		p.data.PFence()
		pool.TraceEvent(obs.KindPublish, -1, 0, 0, meta, obs.PubHeap)
		pool.HeaderStore(slotMagic, magic)
		pool.HeaderStore(slotEra, 1)
		pool.PWBHeader(slotMagic)
		pool.PWBHeader(slotEra)
		pool.PSync()
		pool.TraceEvent(obs.KindHeaderPublish, -1, -1, slotMagic, 2, 0)
	}
	p.era = pool.HeaderLoad(slotEra)
	pool.TraceEvent(obs.KindRecoveryEnd, -1, -1, 0, 0, p.era)
	return p
}

// recover rolls back an interrupted transaction and starts a new era. Every
// phase is re-entrant under a second crash: the rollback only reads the log
// (re-running it re-applies the same old values), the log invalidation is a
// single durable word, and a repeated era bump merely skips an era number.
func (p *PMDK) recover() {
	txID := p.log.Load(logTxID)
	size := p.log.Load(logSize)
	if size > 0 && txID != 0 {
		if logEntries+size*entryWords > p.log.Words() {
			panic(pmem.Corruptf("pmdk", "undo log claims %d entries, region holds %d words", size, p.log.Words()))
		}
		p.pool.TraceEvent(obs.KindReplayBegin, -1, p.log.Index(), logEntries, size*entryWords, txID)
		for k := size; k > 0; k-- {
			base := logEntries + (k-1)*entryWords
			if p.log.Load(base) != txID {
				// Entry never fenced: its in-place write was
				// never issued either.
				continue
			}
			addr, old := p.log.Load(base+1), p.log.Load(base+2)
			if p.log.Load(base+3) != pmem.ChecksumWords(txID, addr, old) {
				// Torn entry: the line was spuriously evicted
				// mid-write, persisting the txID word around stale
				// neighbours. The snapshot was never fenced, so the
				// in-place write it guards was never issued — skip.
				continue
			}
			if addr >= p.data.Words() {
				panic(pmem.Corruptf("pmdk", "undo entry %d rolls back address %d outside the data region", k-1, addr))
			}
			p.data.Store(addr, old)
			p.data.PWB(addr)
		}
		p.data.PFence()
		if p.pool.Traced() {
			// The rolled-back addresses are log data — runtime values;
			// whole-region publication is sound because the rollback is
			// the only writer since the crash.
			p.pool.TraceEvent(obs.KindReplayEnd, -1, p.log.Index(), 0, 0, txID)
			p.pool.TraceEvent(obs.KindPublish, -1, p.data.Index(), 0, p.data.Words(), obs.PubHeap)
		}
	}
	p.log.Store(logSize, 0)
	p.log.PWB(logSize)
	p.log.PFence()
	p.pool.TraceEvent(obs.KindPublish, -1, p.log.Index(), logSize, 1, obs.PubWAL)
	era := p.pool.HeaderLoad(slotEra) + 1
	p.pool.HeaderStore(slotEra, era)
	p.pool.PWBHeader(slotEra)
	p.pool.PSync()
	p.pool.TraceEvent(obs.KindHeaderPublish, -1, -1, slotEra, 1, era)
}

// StaleRanges reports the undo-log span past the durably recorded size:
// those entries belong to no transaction the rollback will consult. Entries
// below the size watermark are live — their era-qualified tag is what the
// rollback trusts — so they are not offered to the corruption sweep.
func StaleRanges(pool *pmem.Pool) []pmem.Range {
	log := pool.Region(1)
	size := log.PersistedLoad(logSize)
	if log.PersistedLoad(logTxID) == 0 {
		size = 0 // rollback is disabled: every entry is dead
	}
	from := logEntries + size*entryWords
	if words := log.Words(); from < words {
		return []pmem.Range{{Region: 1, Start: from, Words: words - from}}
	}
	return nil
}

// MaxThreads implements ptm.PTM.
func (p *PMDK) MaxThreads() int { return p.cfg.Threads }

// Name implements ptm.PTM.
func (p *PMDK) Name() string { return "PMDK" }

// Properties implements ptm.PTM. The paper's table lists PMDK at 2+2R
// fences per transaction; this model issues 2+R (one per snapshotted range,
// two at commit).
func (p *PMDK) Properties() ptm.Properties {
	return ptm.Properties{
		Log:         ptm.PersistentPhysical,
		Progress:    ptm.Blocking,
		FencesPerTx: "2+R",
		Replicas:    "1",
	}
}

// Update implements ptm.PTM (blocking).
func (p *PMDK) Update(tid int, fn func(ptm.Mem) uint64) uint64 {
	txStart := now(p.cfg.Profile)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.txSeq++
	txID := p.era<<32 | p.txSeq
	clear(p.logged)
	p.nlog = 0
	p.dirty = p.dirty[:0]
	p.log.Store(logTxID, txID)
	p.log.PWB(logTxID)
	lambdaStart := now(p.cfg.Profile)
	res := fn(txMem{p: p, txID: txID})
	p.cfg.Profile.AddLambda(since(p.cfg.Profile, lambdaStart))
	// Commit: data durable, then log invalidated.
	flushStart := now(p.cfg.Profile)
	sort.Slice(p.dirty, func(i, j int) bool { return p.dirty[i] < p.dirty[j] })
	last := ^uint64(0)
	for _, line := range p.dirty {
		if line != last {
			p.data.PWB(line * pmem.WordsPerLine)
			last = line
		}
	}
	p.data.PFence()
	if p.pool.Traced() {
		// Every store to the data region is flushed by its transaction and
		// fenced at the latest here, so the whole used heap is durable.
		p.pool.TraceEvent(obs.KindPublish, tid, p.data.Index(),
			0, palloc.UsedWords(rawMem{p.data}), obs.PubHeap)
	}
	p.log.Store(logSize, 0)
	p.log.PWB(logSize)
	p.log.PFence() // commit point: the undo log is durably invalidated
	p.pool.TraceEvent(obs.KindPublish, tid, p.log.Index(), logSize, 1, obs.PubWAL)
	p.cfg.Profile.AddFlush(since(p.cfg.Profile, flushStart))
	p.cfg.Profile.AddTx(since(p.cfg.Profile, txStart))
	return res
}

// Read implements ptm.PTM (blocking, shared).
func (p *PMDK) Read(tid int, fn func(ptm.Mem) uint64) uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return fn(roMem{p.data})
}

// snapshot logs the old value of addr (once per transaction) and fences so
// the snapshot is durable before the in-place write can reach the medium.
func (p *PMDK) snapshot(addr, txID uint64) {
	if p.logged[addr] {
		return
	}
	p.logged[addr] = true
	base := logEntries + p.nlog*entryWords
	if base+entryWords > p.log.Words() {
		panic("pmdk: transaction exceeds undo log capacity")
	}
	old := p.data.Load(addr)
	p.log.Store(base+1, addr)
	p.log.Store(base+2, old)
	p.log.Store(base+3, pmem.ChecksumWords(txID, addr, old))
	p.log.Store(base, txID)
	p.nlog++
	p.log.Store(logSize, p.nlog)
	p.log.PWB(base)
	p.log.PWB(logSize)
	p.log.PFence()
	if p.pool.Traced() {
		// The undo snapshot must be durable before the in-place write it
		// guards can possibly reach the medium.
		p.pool.TraceEvent(obs.KindPublish, -1, p.log.Index(), base, entryWords, obs.PubWAL)
	}
}

// txMem is the transactional view: undo-logged in-place stores.
type txMem struct {
	p    *PMDK
	txID uint64
}

func (m txMem) Load(addr uint64) uint64 { return m.p.data.Load(addr) }

func (m txMem) Store(addr, val uint64) {
	m.p.snapshot(addr, m.txID)
	m.p.data.Store(addr, val)
	m.p.dirty = append(m.p.dirty, addr/pmem.WordsPerLine)
}

func (m txMem) Alloc(words uint64) uint64 { return palloc.Alloc(m, words) }
func (m txMem) Free(addr uint64)          { palloc.Free(m, addr) }

// roMem is the shared read view.
type roMem struct {
	region *pmem.Region
}

func (m roMem) Load(addr uint64) uint64 { return m.region.Load(addr) }
func (m roMem) Store(addr, val uint64) {
	panic("pmdk: Store inside a read-only transaction")
}
func (m roMem) Alloc(words uint64) uint64 {
	panic("pmdk: Alloc inside a read-only transaction")
}
func (m roMem) Free(addr uint64) {
	panic("pmdk: Free inside a read-only transaction")
}

// rawMem formats the heap at construction.
type rawMem struct {
	region *pmem.Region
}

func (m rawMem) Load(addr uint64) uint64 { return m.region.Load(addr) }
func (m rawMem) Store(addr, val uint64)  { m.region.Store(addr, val) }

func now(p *ptm.Profile) time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

func since(p *ptm.Profile, t time.Time) time.Duration {
	if p == nil {
		return 0
	}
	return time.Since(t)
}
