package pmdk

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

func newP(t testing.TB, threads int, mode pmem.Mode) (*PMDK, *pmem.Pool) {
	t.Helper()
	pool := pmem.New(pmem.Config{Mode: mode, RegionWords: 1 << 16, Regions: 2})
	return New(pool, Config{Threads: threads}), pool
}

func TestNameAndProperties(t *testing.T) {
	p, _ := newP(t, 2, pmem.Direct)
	if p.Name() != "PMDK" {
		t.Errorf("Name() = %q", p.Name())
	}
	props := p.Properties()
	if props.Progress != ptm.Blocking || props.Replicas != "1" {
		t.Errorf("Properties() = %+v", props)
	}
}

func TestCounter(t *testing.T) {
	p, _ := newP(t, 1, pmem.Direct)
	addr := ptm.RootAddr(0)
	for i := 0; i < 100; i++ {
		p.Update(0, func(m ptm.Mem) uint64 {
			v := m.Load(addr) + 1
			m.Store(addr, v)
			return v
		})
	}
	if got := p.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) }); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
}

func TestConcurrentCounter(t *testing.T) {
	const threads, per = 6, 300
	p, _ := newP(t, threads, pmem.Direct)
	addr := ptm.RootAddr(0)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p.Update(tid, func(m ptm.Mem) uint64 {
					v := m.Load(addr) + 1
					m.Store(addr, v)
					return v
				})
			}
		}(tid)
	}
	wg.Wait()
	if got := p.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) }); got != threads*per {
		t.Fatalf("counter = %d, want %d", got, threads*per)
	}
}

func TestSetAgainstModel(t *testing.T) {
	p, _ := newP(t, 1, pmem.Direct)
	s := seqds.HashSet{RootSlot: 0}
	p.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
	model := make(map[uint64]bool)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 800; i++ {
		k := uint64(rng.Intn(150))
		if rng.Intn(2) == 0 {
			p.Update(0, func(m ptm.Mem) uint64 {
				s.Add(m, k)
				return 0
			})
			model[k] = true
		} else {
			got := p.Read(0, func(m ptm.Mem) uint64 {
				if s.Contains(m, k) {
					return 1
				}
				return 0
			})
			if (got == 1) != model[k] {
				t.Fatalf("Contains(%d) = %d, model %v", k, got, model[k])
			}
		}
	}
}

func TestFencesPerTx(t *testing.T) {
	p, pool := newP(t, 1, pmem.Direct)
	addr := ptm.RootAddr(0)
	p.Update(0, func(m ptm.Mem) uint64 { m.Store(addr, 1); return 0 })
	before := pool.Stats()
	// One store to a fresh address: 1 snapshot fence + pfence + psync.
	p.Update(0, func(m ptm.Mem) uint64 { m.Store(addr, 2); return 0 })
	if d := pool.Stats().Sub(before); d.Fences() != 3 {
		t.Fatalf("fences = %d, want 3 (2+R with R=1)", d.Fences())
	}
	before = pool.Stats()
	// Two stores to the same address: snapshot once.
	p.Update(0, func(m ptm.Mem) uint64 {
		m.Store(addr, 3)
		m.Store(addr, 4)
		return 0
	})
	if d := pool.Stats().Sub(before); d.Fences() != 3 {
		t.Fatalf("fences = %d, want 3 (snapshot deduped)", d.Fences())
	}
}

func runAddsUntilCrash(t *testing.T, pool *pmem.Pool, n int, failPoint int64) (completed int, crashed bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			if r != pmem.ErrSimulatedPowerFailure {
				panic(r)
			}
			crashed = true
		}
		pool.InjectFailure(-1)
	}()
	p := New(pool, Config{Threads: 1})
	s := seqds.ListSet{RootSlot: 0}
	p.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
	pool.InjectFailure(failPoint)
	for k := 0; k < n; k++ {
		p.Update(0, func(m ptm.Mem) uint64 {
			s.Add(m, uint64(k)+1)
			return 0
		})
		completed++
	}
	return completed, false
}

func checkRecovered(t *testing.T, pool *pmem.Pool, completed, n int, failPoint int64) {
	t.Helper()
	p := New(pool, Config{Threads: 1})
	s := seqds.ListSet{RootSlot: 0}
	keys := seqds.ReadSlice(p, 0, s.Keys)
	if len(keys) < completed || len(keys) > n {
		t.Fatalf("fail=%d: recovered %d keys, completed %d", failPoint, len(keys), completed)
	}
	for i, k := range keys {
		if k != uint64(i)+1 {
			t.Fatalf("fail=%d: recovered state not a prefix at index %d", failPoint, i)
		}
	}
	got := p.Update(0, func(m ptm.Mem) uint64 {
		s.Add(m, 1<<40)
		return s.Len(m)
	})
	if got != uint64(len(keys))+1 {
		t.Fatalf("fail=%d: post-recovery insert broken", failPoint)
	}
}

func TestSystematicCrashPoints(t *testing.T) {
	const n = 20
	for fail := int64(1); ; fail += 7 {
		pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 2})
		completed, crashed := runAddsUntilCrash(t, pool, n, fail)
		if !crashed {
			if completed != n {
				t.Fatalf("no crash but %d/%d completed", completed, n)
			}
			break
		}
		pool.Crash(pmem.CrashConservative, nil)
		checkRecovered(t, pool, completed, n, fail)
	}
}

func TestAdversarialCrashPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n = 15
	for fail := int64(1); ; fail += 11 {
		pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 2})
		completed, crashed := runAddsUntilCrash(t, pool, n, fail)
		if !crashed {
			break
		}
		pool.Crash(pmem.CrashAdversarial, rng)
		checkRecovered(t, pool, completed, n, fail)
	}
}

func TestUndoRollsBackPartialTx(t *testing.T) {
	// Arm the failure so it fires mid-transaction (during the many
	// stores of a large update); after recovery the transaction must be
	// invisible.
	pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 2})
	p := New(pool, Config{Threads: 1})
	addr := ptm.RootAddr(0)
	p.Update(0, func(m ptm.Mem) uint64 {
		for i := uint64(0); i < 50; i++ {
			m.Store(addr+i, 1000+i)
		}
		return 0
	})
	pool.InjectFailure(120) // mid-way through the second tx
	func() {
		defer func() {
			if r := recover(); r != pmem.ErrSimulatedPowerFailure {
				t.Fatalf("expected power failure, got %v", r)
			}
			pool.InjectFailure(-1)
		}()
		p.Update(0, func(m ptm.Mem) uint64 {
			for i := uint64(0); i < 50; i++ {
				m.Store(addr+i, 2000+i)
			}
			return 0
		})
	}()
	pool.Crash(pmem.CrashConservative, nil)
	p = New(pool, Config{Threads: 1})
	for i := uint64(0); i < 50; i++ {
		got := p.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr + i) })
		if got != 1000+i {
			t.Fatalf("word %d = %d after rollback, want %d", i, got, 1000+i)
		}
	}
}
