package redo

import "repro/internal/pmem"

// StaleRanges reports the regions that committed state does not reach:
// every replica other than the one the persisted curComb names. Recovery
// adopts only the named replica; the others are rebuilt by copy before
// first use, so bit flips in them must never surface. With no valid header
// nothing is committed and every region is fair game.
func StaleRanges(pool *pmem.Pool) []pmem.Range {
	packed := pool.PersistedHeader(headerSlot)
	cur := -1
	if packed&headerValid != 0 {
		cur = idxOf(packed &^ headerValid)
	}
	var ranges []pmem.Range
	for i := 0; i < pool.Regions(); i++ {
		if i != cur {
			ranges = append(ranges, pool.WholeRegion(i))
		}
	}
	return ranges
}
