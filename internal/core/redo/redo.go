// Package redo implements Redo-PTM (§5 of the paper) and its two refined
// variants, RedoTimed-PTM and RedoOpt-PTM: wait-free persistent
// transactional memories built on Herlihy's combining consensus and N+1
// replicas, with a volatile *physical* log.
//
// Where the CX constructions store logical operations in a queue and every
// replica re-executes them, Redo-PTM records the physical effects (address,
// old value, new value) of the first execution; helper threads and stale
// replicas replay those effects instead of re-running the operation — the
// paper's motivating example being a linked-list insert whose traversal is
// executed once but whose two modified words are replayed everywhere.
//
// The implementation follows Algorithms 1–3: a req/announce descriptor per
// thread, an N×RSIZE matrix of pre-allocated States, a ring of SeqTidIdx
// tickets standing in for the memory-bounded wait-free queue, and a strong
// try reader-writer lock per Combined replica. Update transactions issue one
// pfence (replica lines) and one psync (curComb header).
package redo

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/palloc"
	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/rwlock"
)

// Variant selects the construction refinement.
type Variant int

const (
	// Base is plain Redo-PTM: physical logging, immediate pwbs, regular
	// replica copies.
	Base Variant = iota
	// Timed is RedoTimed-PTM: update transactions are funnelled through
	// the first two replicas for a bounded time (4× the last copy cost)
	// with exponential backoff, keeping those replicas fresh.
	Timed
	// Opt is RedoOpt-PTM: Timed plus store aggregation, flush
	// aggregation, deferred pwbs and non-temporal replica copies.
	Opt
)

func (v Variant) String() string {
	switch v {
	case Timed:
		return "RedoTimed-PTM"
	case Opt:
		return "RedoOpt-PTM"
	default:
		return "Redo-PTM"
	}
}

// invalidHead marks a replica whose content is stale beyond repair by log
// replay (fresh replicas at start-up, all non-adopted replicas after
// recovery).
const invalidHead = ^uint64(0)

// headerSlot is the pool header slot holding the persistent curComb.
const headerSlot = 0

const headerValid = uint64(1) << 63

// combined is one replica (Algorithm 1's Combined).
type combined struct {
	head   atomic.Uint64 // SeqTidIdx of the last state applied to the replica
	region *pmem.Region
	lk     *rwlock.StrongTryRWLock

	// Deferred-flush bookkeeping, touched only under exclusive hold.
	dirty    []uint64 // cache lines awaiting pwb (Opt)
	flushAll bool     // whole used heap must be flushed (after plain copy)
	scratch  []uint64 // reusable word buffer for bulk records
}

// track registers a deferred pwb for the line containing addr (Opt).
func (c *combined) track(addr uint64) {
	if !c.flushAll {
		c.dirty = append(c.dirty, addr/pmem.WordsPerLine)
	}
}

// trackRange registers deferred pwbs for every line overlapping [lo, hi) —
// line-granular tracking for a bulk store, one entry per line instead of one
// per word.
func (c *combined) trackRange(lo, hi uint64) {
	if c.flushAll || lo >= hi {
		return
	}
	for line := lo / pmem.WordsPerLine; line <= (hi-1)/pmem.WordsPerLine; line++ {
		c.dirty = append(c.dirty, line)
	}
}

// bulkBuf returns a reusable length-n word buffer. Only the exclusive holder
// of the replica (simulation, replay, undo) calls it, and never with two
// live buffers at once.
func (c *combined) bulkBuf(n uint64) []uint64 {
	if uint64(cap(c.scratch)) < n {
		c.scratch = make([]uint64, n)
	}
	return c.scratch[:n]
}

// applyBulk writes a bulk payload into the replica: full cache lines go
// through non-temporal line stores (durable after the commit fence, no pwb
// owed), partial head/tail lines through one aggregated store plus
// line-granular dirty tracking. Only reachable with feat.Bulk, which implies
// deferred flushing.
func (c *combined) applyBulk(addr uint64, words []uint64) {
	end := addr + uint64(len(words))
	firstFull := (addr + pmem.WordsPerLine - 1) / pmem.WordsPerLine * pmem.WordsPerLine
	lastFull := end / pmem.WordsPerLine * pmem.WordsPerLine
	if firstFull >= lastFull {
		// The payload never covers a whole line.
		c.region.StoreWords(addr, words)
		c.trackRange(addr, end)
		return
	}
	if addr < firstFull {
		c.region.StoreWords(addr, words[:firstFull-addr])
		c.trackRange(addr, firstFull)
	}
	for a := firstFull; a < lastFull; a += pmem.WordsPerLine {
		c.region.NTStoreLine(a, words[a-addr:a-addr+pmem.WordsPerLine])
	}
	if lastFull < end {
		c.region.StoreWords(lastFull, words[lastFull-addr:])
		c.trackRange(lastFull, end)
	}
}

// Features are the individual RedoOpt-PTM optimizations (§5, "Additional
// optimizations"), exposed separately so the ablation benchmarks can
// quantify each one. The Variant presets fill them in: Base enables none,
// Timed enables Funnel, Opt enables all.
type Features struct {
	// Funnel restricts update transactions to the first two replicas for
	// a bounded time with backoff (the RedoTimed mechanism).
	Funnel bool
	// StoreAgg merges repeated stores to one address into a single log
	// entry ("store aggregation"). Implies deferred flushing.
	StoreAgg bool
	// DeferFlush postpones pwbs to commit time and dedupes cache lines
	// ("flush aggregation" + "postpone issuing pwbs").
	DeferFlush bool
	// NTCopy rebuilds replicas with non-temporal stores ("copy using
	// ntstore"), avoiding the whole-heap flush after a copy.
	NTCopy bool
	// Bulk logs a whole byte payload as one aggregated record and applies
	// full cache lines with non-temporal stores, shrinking the commit
	// flush set to one pwb/ntstore per line instead of one pwb per word.
	// Implies deferred flushing.
	Bulk bool
}

// featuresFor returns the preset for a variant.
func featuresFor(v Variant) Features {
	switch v {
	case Timed:
		return Features{Funnel: true}
	case Opt:
		return Features{Funnel: true, StoreAgg: true, DeferFlush: true, NTCopy: true, Bulk: true}
	default:
		return Features{}
	}
}

// Config parameterizes a Redo engine.
type Config struct {
	// Threads is N; thread ids are 0..N-1 (max 256).
	Threads int
	// RingSize is RSIZE, the bounded queue length and per-thread State
	// pool size. Defaults to 128 (max 4096).
	RingSize int
	// MaxReadTries is the number of optimistic read attempts before a
	// reader announces its operation. Defaults to 4.
	MaxReadTries int
	// Variant selects Base, Timed or Opt.
	Variant Variant
	// Features, when non-nil, overrides the Variant's optimization
	// preset (ablation studies).
	Features *Features
	// Profile, when non-nil, accumulates the Table 1 phase breakdown.
	Profile *ptm.Profile
	// Buffered selects relaxed (buffered) durability: update transactions
	// commit into the in-flight epoch without flushing their replica or
	// publishing the curComb header; a persister (driven through Persist,
	// one caller at a time) seals the epoch, coalesces the deferred
	// flushes, issues one fence for the whole group, and advances the
	// durable watermark by publishing the header. A crash loses at most
	// the un-persisted suffix of epochs — never a gap — because recovery
	// adopts only the replica the watermark header names, which stays
	// frozen under the persister's shared pin until the next watermark.
	// Requires a pool with at least 3 regions (Threads+2 recommended:
	// one for curComb, one pinned durable, the rest for writers).
	// Implies DeferFlush.
	Buffered bool
	// LegacyAlloc formats fresh heaps with the legacy power-of-two
	// allocator instead of the arena allocator: the Fig-8 space baseline.
	// Recovery follows the on-media magic, so reopening an existing heap
	// ignores this.
	LegacyAlloc bool
}

// Redo is the engine behind Redo-PTM, RedoTimed-PTM and RedoOpt-PTM.
type Redo struct {
	cfg       Config
	feat      Features
	pool      *pmem.Pool
	combs     []*combined
	curComb   atomic.Uint64 // pack(seq, winnerTid, combIdx)
	ring      []atomic.Uint64
	stMatrix  [][]*State
	reqs      []atomic.Pointer[reqDesc]
	lastIdx   []int         // per-thread next State index (owner-only)
	lastFlag  []bool        // per-thread announcement parity (owner-only)
	persisted atomic.Uint64 // highest seq known durable in the header
	copies    atomic.Uint64
	lastCopy  atomic.Int64 // duration of the last replica copy (ns)

	// outbox[executor][owner] carries byte-string results from the
	// thread that executed an operation back to the thread that
	// announced it (see EmitBytes); each executor writes only its own
	// row, and owners read after the happens-before edge established by
	// the committed state's ticket.
	outbox   [][][]byte
	lastFrom []int // per-owner: executor of the last completed operation

	// Zero-allocation hot-path plumbing. ro caches one read-only view per
	// thread so the optimistic read path avoids boxing a fresh roMem into
	// ptm.Mem on every call; rw and rox are the executor-side equivalents
	// for the transactional and announced-read views (every field is
	// reassigned before each use, and only thread tid touches index tid).
	// descs/descIdx hold each thread's small pool of reusable announcement
	// descriptors (owner-only); hazard[tid] is the descriptor executor tid
	// is currently helping, which an owner must not recycle (see grabDesc).
	ro      []*roMem
	rw      []*redoMem
	rox     []*roMem
	hazard  []atomic.Pointer[reqDesc]
	descs   [][]*reqDesc
	descIdx []int

	// Buffered-durability state. persistTid is the persister's reserved
	// lock slot (cfg.Threads — the replica locks are sized one wider than
	// the thread count); pinnedIdx is the replica the durable header
	// names, held shared by the persister so no writer can reacquire and
	// mutate it before the watermark moves past it (written only by the
	// persister — one Persist caller at a time — but read racily by
	// writers steering their funnel scan around the pin, hence atomic; a
	// stale read is benign, the replica lock is the ground truth).
	// lastSeq[tid] is the commit sequence of thread tid's last completed
	// operation — the epoch Sync must wait for (owner-only).
	persistTid int
	pinnedIdx  atomic.Int32
	lastSeq    []uint64
}

// New creates a Redo engine over pool. The paper's bound needs N+1 regions;
// any count >= 2 works, trading progress for memory. If the pool header
// records a previous instantiation, the persisted replica is adopted (null
// recovery); otherwise region 0 is formatted and persisted as the initial
// heap.
func New(pool *pmem.Pool, cfg Config) *Redo {
	if cfg.Threads <= 0 || cfg.Threads > tidMask+1 {
		panic("redo: Threads must be in 1..256")
	}
	if pool.Regions() < 2 {
		panic("redo: pool needs at least 2 regions")
	}
	if cfg.RingSize == 0 {
		cfg.RingSize = 128
	}
	if cfg.RingSize < 4 || cfg.RingSize > idxMask+1 {
		panic("redo: RingSize must be in 4..4096")
	}
	if cfg.MaxReadTries == 0 {
		cfg.MaxReadTries = 4
	}
	feat := featuresFor(cfg.Variant)
	if cfg.Features != nil {
		feat = *cfg.Features
	}
	if feat.StoreAgg || feat.Bulk {
		feat.DeferFlush = true // aggregated/bulk stores must flush at commit
	}
	if cfg.Buffered {
		// The persister coalesces the per-replica dirty-line lists, so
		// commits must defer their flushes, and the pool needs a replica
		// beyond curComb and the pinned durable one for writers to make
		// progress between Persist calls.
		feat.DeferFlush = true
		if pool.Regions() < 3 {
			panic("redo: buffered mode needs at least 3 regions (Threads+2 recommended)")
		}
	}
	e := &Redo{
		cfg:      cfg,
		feat:     feat,
		pool:     pool,
		ring:     make([]atomic.Uint64, cfg.RingSize),
		reqs:     make([]atomic.Pointer[reqDesc], cfg.Threads),
		lastIdx:  make([]int, cfg.Threads),
		lastFlag: make([]bool, cfg.Threads),
		outbox:   make([][][]byte, cfg.Threads),
		lastFrom: make([]int, cfg.Threads),
	}
	for i := range e.outbox {
		e.outbox[i] = make([][]byte, cfg.Threads)
	}
	e.ro = make([]*roMem, cfg.Threads)
	e.rw = make([]*redoMem, cfg.Threads)
	e.rox = make([]*roMem, cfg.Threads)
	e.hazard = make([]atomic.Pointer[reqDesc], cfg.Threads)
	e.descs = make([][]*reqDesc, cfg.Threads)
	e.descIdx = make([]int, cfg.Threads)
	for i := 0; i < cfg.Threads; i++ {
		e.ro[i] = &roMem{e: e, exec: i, owner: i}
		e.rw[i] = &redoMem{}
		e.rox[i] = &roMem{}
		e.descs[i] = []*reqDesc{{}, {}, {}}
	}
	e.persistTid = cfg.Threads
	e.pinnedIdx.Store(-1)
	e.lastSeq = make([]uint64, cfg.Threads)
	lockThreads := cfg.Threads
	if cfg.Buffered {
		lockThreads++ // one reader slot for the persister's shared pin
	}
	e.combs = make([]*combined, pool.Regions())
	for i := range e.combs {
		e.combs[i] = &combined{region: pool.Region(i), lk: rwlock.New(lockThreads)}
		e.combs[i].head.Store(invalidHead)
	}
	e.stMatrix = make([][]*State, cfg.Threads)
	for t := range e.stMatrix {
		e.stMatrix[t] = make([]*State, cfg.RingSize)
		for i := range e.stMatrix[t] {
			e.stMatrix[t][i] = newState(cfg.Threads)
		}
	}
	// Genesis: stMatrix[0][0] with ticket pack(0,0,0)=0 is the seq-0
	// consensus state; ring[0] already holds 0.
	e.lastIdx[0] = 1
	cur := 0
	pool.TraceEvent(obs.KindRecoveryBegin, -1, -1, 0, 0, 0)
	if packed := pool.PersistedHeader(headerSlot); packed&headerValid != 0 {
		cur = idxOf(packed &^ headerValid)
		if cur >= len(e.combs) {
			panic(pmem.Corruptf("redo", "recovered curComb names region %d of %d", cur, len(e.combs)))
		}
		// New era: sequence numbering restarts with fresh states.
		pool.HeaderStore(headerSlot, headerValid|pack(0, 0, cur))
		pool.PWBHeader(headerSlot)
		pool.PSync()
		pool.TraceEvent(obs.KindHeaderPublish, -1, -1, headerSlot, 1, 0)
	} else {
		if cfg.LegacyAlloc {
			palloc.FormatLegacy(directMem{e.combs[0].region}, pool.RegionWords())
		} else {
			palloc.Format(directMem{e.combs[0].region}, pool.RegionWords())
		}
		meta := palloc.MetaWords(directMem{e.combs[0].region})
		e.combs[0].region.FlushRange(0, meta)
		e.combs[0].region.PFence()
		pool.TraceEvent(obs.KindPublish, -1, 0, 0, meta, obs.PubHeap)
		pool.HeaderStore(headerSlot, headerValid|pack(0, 0, 0))
		pool.PWBHeader(headerSlot)
		pool.PSync()
		pool.TraceEvent(obs.KindHeaderPublish, -1, -1, headerSlot, 1, 0)
	}
	pool.TraceEvent(obs.KindRecoveryEnd, -1, -1, 0, 0, 0)
	e.combs[cur].head.Store(pack(0, 0, 0))
	if !e.combs[cur].lk.ExclusiveTryLock(0) {
		panic("redo: initial lock acquisition failed")
	}
	e.combs[cur].lk.Downgrade()
	e.curComb.Store(pack(0, 0, cur))
	if cfg.Buffered {
		// Pin the recovered replica: it is what the durable header names,
		// and it must stay frozen until the first watermark advance.
		if !e.combs[cur].lk.SharedTryLock(e.persistTid) {
			panic("redo: initial persister pin failed")
		}
		e.pinnedIdx.Store(int32(cur))
	}
	return e
}

// MaxThreads implements ptm.PTM.
func (e *Redo) MaxThreads() int { return e.cfg.Threads }

// Name implements ptm.PTM.
func (e *Redo) Name() string { return e.cfg.Variant.String() }

// Properties implements ptm.PTM, mirroring the §2 comparison table.
func (e *Redo) Properties() ptm.Properties {
	return ptm.Properties{
		Log:         ptm.VolatilePhysical,
		Progress:    ptm.WaitFree,
		FencesPerTx: "2",
		Replicas:    "N+1",
	}
}

// Copies reports how many replica rebuild copies were performed.
func (e *Redo) Copies() uint64 { return e.copies.Load() }

// VolatileBytes estimates the engine's transient memory: the N×RSIZE State
// matrix with its physical log chunks. This is the driver of RedoDB's
// volatile-memory growth in Fig. 8 ("the number of States is proportional
// to the number of active threads").
func (e *Redo) VolatileBytes() uint64 {
	var n uint64
	for _, row := range e.stMatrix {
		for _, st := range row {
			n += uint64(e.cfg.Threads) * 24 // applied + results + from
			for c := st.logHead; c != nil; c = c.next.Load() {
				n += logChunk * 24 // addr, old, val per entry
			}
		}
	}
	return n
}

// resolve returns the State a SeqTidIdx names.
func (e *Redo) resolve(t SeqTidIdx) *State { return e.stMatrix[tidOf(t)][idxOf(t)] }

// tryResult checks whether the calling thread's announced operation (with
// parity flag) has been executed and its containing transition committed; if
// so it makes the transition durable and returns the result.
func (e *Redo) tryResult(tid int, flag bool) (uint64, bool) {
	curC := e.curComb.Load()
	comb := e.combs[idxOf(curC)]
	tail := comb.head.Load()
	if tail == invalidHead || e.curComb.Load() != curC {
		return 0, false
	}
	st := e.resolve(tail)
	if st.ticket.Load() != tail {
		return 0, false
	}
	if st.applied[tid].Load() != flag {
		return 0, false
	}
	res := st.results[tid].Load()
	from := st.from[tid].Load()
	if st.ticket.Load() != tail {
		return 0, false
	}
	e.lastFrom[tid] = int(from)
	e.lastSeq[tid] = seqOf(tail)
	e.ensurePersisted(tid, seqOf(tail))
	return res, true
}

// ensurePersisted makes the curComb header durable with at least the given
// sequence number: the paper's `pwb(curComb); psync()` at every return path,
// elided when a transition at least as recent is already durable. In
// buffered mode the callers' fences are elided entirely — only the
// persister (Persist) advances the durable header, and it does so for a
// whole epoch at a time.
func (e *Redo) ensurePersisted(tid int, seq uint64) {
	if e.cfg.Buffered {
		return
	}
	for e.persisted.Load() < seq {
		curC := e.curComb.Load()
		s := seqOf(curC)
		packed := headerValid | curC
		for {
			old := e.pool.HeaderLoad(headerSlot)
			if seqOf(old&^headerValid) >= s {
				break
			}
			if e.pool.HeaderCAS(headerSlot, old, packed) {
				break
			}
		}
		e.pool.PWBHeader(headerSlot)
		e.pool.PSync()
		e.pool.TraceEvent(obs.KindHeaderPublish, tid, -1, headerSlot, 1, 0)
		for {
			p := e.persisted.Load()
			if p >= s || e.persisted.CompareAndSwap(p, s) {
				break
			}
		}
	}
}

// grabDesc returns a descriptor tid may safely mutate for its next
// announcement: not the currently published one, and not hazard-pinned by
// any executor. Steady state rotates the thread's three pre-allocated
// descriptors without allocating; when a slow helper still pins a retired
// descriptor, a fresh one replaces it in the pool and the pinned one is
// abandoned to the GC once the helper drops it. Three suffice in the common
// case: one published, one being helped, one free.
func (e *Redo) grabDesc(tid int) *reqDesc {
	pool := e.descs[tid]
	cur := e.reqs[tid].Load()
	idx := e.descIdx[tid]
	for k := 0; k < len(pool); k++ {
		d := pool[(idx+k)%len(pool)]
		if d == cur || e.hazarded(d) {
			continue
		}
		e.descIdx[tid] = (idx + k + 1) % len(pool)
		return d
	}
	d := &reqDesc{}
	pool[idx] = d
	e.descIdx[tid] = (idx + 1) % len(pool)
	return d
}

// hazarded reports whether any executor has d hazard-pinned. An executor
// publishes its hazard pointer *before* re-validating the announcement (see
// the combining loop), so a pin that this scan misses belongs to a helper
// whose validation is bound to fail — the classic hazard-pointer protocol.
func (e *Redo) hazarded(d *reqDesc) bool {
	for i := range e.hazard {
		if e.hazard[i].Load() == d {
			return true
		}
	}
	return false
}

// announce publishes (fn, flag, readOnly) in a recycled descriptor.
func (e *Redo) announce(tid int, fn func(ptm.Mem) uint64, flag, readOnly bool) {
	d := e.grabDesc(tid)
	d.fn, d.flag, d.readOnly = fn, flag, readOnly
	e.reqs[tid].Store(d)
}

// helpRing publishes a committed transition ticket in the ring (the
// memory-bounded wait-free queue), helping laggards.
func (e *Redo) helpRing(t SeqTidIdx) {
	slot := seqOf(t) % uint64(e.cfg.RingSize)
	for {
		old := e.ring[slot].Load()
		// Committed transitions always have seq >= 1, so a zero entry
		// (empty slot or the genesis ticket) is always older.
		if seqOf(old) >= seqOf(t) && old != 0 {
			return
		}
		if old == t || e.ring[slot].CompareAndSwap(old, t) {
			return
		}
	}
}

// Update implements ptm.PTM: a durable linearizable wait-free update
// transaction (Algorithm 3).
func (e *Redo) Update(tid int, fn func(ptm.Mem) uint64) uint64 {
	txStart := now(e.cfg.Profile)
	flag := !e.lastFlag[tid]
	e.lastFlag[tid] = flag
	e.announce(tid, fn, flag, false) // {1}
	var c *combined
	cIdx := -1
	finish := func(res uint64) uint64 {
		if c != nil {
			c.lk.ExclusiveUnlock()
		}
		e.cfg.Profile.AddTx(since(e.cfg.Profile, txStart))
		return res
	}
	for {
		// Fallback (Algorithm 3 lines 43–51): a helper executed and
		// committed our operation.
		if res, ok := e.tryResult(tid, flag); ok {
			return finish(res)
		}
		curC := e.curComb.Load() // {2}
		comb := e.combs[idxOf(curC)]
		tail := comb.head.Load()
		if tail == invalidHead || e.curComb.Load() != curC {
			continue
		}
		// {3} populate our State from the consensus tail.
		myIdx := e.lastIdx[tid]
		newSt := e.stMatrix[tid][myIdx]
		tkt := pack(seqOf(tail)+1, tid, myIdx)
		if !newSt.copyMetaFrom(e.resolve(tail), tail, tkt, e.feat.StoreAgg) {
			continue
		}
		if e.curComb.Load() != curC {
			continue
		}
		e.helpRing(tail) // {4}
		if c == nil {    // {5}
			c, cIdx = e.acquire(tid, flag)
			if c == nil {
				// Helped while waiting for a replica.
				if res, ok := e.tryResult(tid, flag); ok {
					return finish(res)
				}
				continue
			}
		}
		if !e.catchUp(tid, c, tail) { // {6}
			continue
		}
		// {7} simulate all announced operations on the replica.
		e.pool.TraceEvent(obs.KindCombineBegin, tid, cIdx, 0, 0, seqOf(tkt))
		lambdaStart := now(e.cfg.Profile)
		for i := 0; i < e.cfg.Threads; i++ {
			d := e.reqs[i].Load()
			if d == nil {
				continue
			}
			// Hazard-pin the descriptor before touching its fields: owners
			// recycle retired descriptors, but only unpinned ones, and the
			// re-validation below rejects any descriptor retired before the
			// pin became visible to its owner's grabDesc scan.
			e.hazard[tid].Store(d)
			if e.reqs[i].Load() != d || newSt.applied[i].Load() == d.flag {
				e.hazard[tid].Store(nil)
				continue
			}
			rm := e.rw[tid]
			*rm = redoMem{e: e, comb: c, st: newSt, exec: tid, owner: i}
			newSt.results[i].Store(runDesc(d, rm))
			newSt.from[i].Store(uint32(tid))
			newSt.applied[i].Store(d.flag)
			e.hazard[tid].Store(nil)
		}
		e.cfg.Profile.AddLambda(since(e.cfg.Profile, lambdaStart))
		// Flush the replica and order it before publication. Buffered
		// mode defers both to the persister: the dirty-line list keeps
		// accumulating on the replica and is coalesced — one pwb per
		// line per epoch, one fence per epoch — when Persist seals the
		// epoch this commit belongs to. Until then the transition is
		// volatile, which is exactly the buffered-durability loss model
		// (an un-synced commit-order suffix may be lost, never a gap).
		if !e.cfg.Buffered {
			flushStart := now(e.cfg.Profile)
			e.flushReplica(c)
			c.region.PFence()
			if e.pool.Traced() {
				// The published span is the allocator high-water mark — a
				// runtime value no static fence analysis can know.
				e.pool.TraceEvent(obs.KindPublish, tid, cIdx, 0, usedWords(c.region), obs.PubHeap)
			}
			e.cfg.Profile.AddFlush(since(e.cfg.Profile, flushStart))
		}
		c.head.Store(tkt)
		c.lk.Downgrade()                                                 // {8}
		if e.curComb.CompareAndSwap(curC, pack(seqOf(tkt), tid, cIdx)) { // {9}
			e.pool.TraceEvent(obs.KindCurComb, tid, cIdx, 0, 0, pack(seqOf(tkt), tid, cIdx))
			comb.lk.DowngradeUnlock()
			e.helpRing(tkt)
			e.lastSeq[tid] = seqOf(tkt)
			e.ensurePersisted(tid, seqOf(tkt))
			e.pool.TraceEvent(obs.KindCombineEnd, tid, cIdx, 0, 0, 1)
			e.lastIdx[tid] = (myIdx + 1) % e.cfg.RingSize
			c = nil // ownership passed to the next winner
			res := newSt.results[tid].Load()
			e.cfg.Profile.AddTx(since(e.cfg.Profile, txStart))
			return res
		}
		// Lost the consensus: revert the simulation and retry.
		e.pool.TraceEvent(obs.KindCombineEnd, tid, cIdx, 0, 0, 0)
		for !c.lk.TryUpgrade(tid) {
			runtime.Gosched()
		}
		applyStart := now(e.cfg.Profile)
		e.applyUndo(newSt, c)
		c.head.Store(tail)
		e.cfg.Profile.AddApply(since(e.cfg.Profile, applyStart))
	}
}

// Read implements ptm.PTM: a wait-free read-only transaction (Algorithm 2).
func (e *Redo) Read(tid int, fn func(ptm.Mem) uint64) uint64 {
	published := false
	var flag bool
	for i := 0; ; i++ {
		if i >= e.cfg.MaxReadTries && !published { // {1}
			flag = !e.lastFlag[tid]
			e.lastFlag[tid] = flag
			e.announce(tid, fn, flag, true)
			published = true
		}
		if published { // {2}
			if res, ok := e.tryResult(tid, flag); ok {
				return res
			}
		}
		curC := e.curComb.Load() // {3}
		comb := e.combs[idxOf(curC)]
		if !comb.lk.SharedTryLock(tid) { // {4}
			continue
		}
		if e.curComb.Load() != curC {
			comb.lk.SharedUnlock(tid)
			continue
		}
		ro := e.ro[tid] // cached view: no interface boxing per read
		ro.region = comb.region
		res := fn(ro)
		comb.lk.SharedUnlock(tid)
		e.lastFrom[tid] = tid
		e.lastSeq[tid] = seqOf(curC)
		e.ensurePersisted(tid, seqOf(curC))
		return res
	}
}

// TryRead runs fn as an optimistic read-only transaction on the calling
// thread only: up to MaxReadTries shared-lock attempts, never announcing fn.
// Because fn cannot be executed by a helper, it is free to capture and
// mutate caller-local state (append into a reused buffer, say) — the one
// thing announced closures must never do — and the whole path allocates
// nothing. Returns ok=false when the shared lock could not be obtained, in
// which case the caller falls back to the announced Read path with a
// helper-safe closure.
func (e *Redo) TryRead(tid int, fn func(ptm.Mem) uint64) (uint64, bool) {
	for i := 0; i < e.cfg.MaxReadTries; i++ {
		curC := e.curComb.Load()
		comb := e.combs[idxOf(curC)]
		if !comb.lk.SharedTryLock(tid) {
			continue
		}
		if e.curComb.Load() != curC {
			comb.lk.SharedUnlock(tid)
			continue
		}
		ro := e.ro[tid]
		ro.region = comb.region
		res := fn(ro)
		comb.lk.SharedUnlock(tid)
		e.lastFrom[tid] = tid
		e.lastSeq[tid] = seqOf(curC)
		e.ensurePersisted(tid, seqOf(curC))
		return res, true
	}
	return 0, false
}

// ReadWithBytes runs fn as a read-only transaction and additionally returns
// the byte string fn emitted through ptm.EmitBytes (nil if none). This is
// how RedoDB's Get extracts values: a captured variable would race when the
// combining consensus executes the closure on a helper thread, whereas the
// outbox is indexed by executor and synchronized by the committed state.
func (e *Redo) ReadWithBytes(tid int, fn func(ptm.Mem) uint64) (uint64, []byte) {
	e.outbox[tid][tid] = nil
	res := e.Read(tid, fn)
	b := e.outbox[e.lastFrom[tid]][tid]
	return res, b
}

// acquire obtains an exclusive replica. Base scans all replicas; Timed and
// Opt funnel through the first two for a bounded period (4× the last copy
// cost) with exponential backoff, so those replicas stay fresh. Returns nil
// if the caller's operation completed while waiting.
func (e *Redo) acquire(tid int, flag bool) (*combined, int) {
	funnel := e.feat.Funnel
	var deadline time.Time
	if funnel {
		wait := time.Duration(e.lastCopy.Load()) * 4
		if wait < 10*time.Microsecond {
			wait = 10 * time.Microsecond
		}
		deadline = time.Now().Add(wait)
	}
	backoff := uint64(1 << 6)
	for {
		limit := len(e.combs)
		if funnel && time.Now().Before(deadline) {
			limit = 2
		}
		curIdx := idxOf(e.curComb.Load())
		// In buffered mode the persister's watermark pin freezes one
		// replica at an arbitrary index. It can never be acquired, so the
		// funnel must steer around it: counting it against the limit would
		// make every writer burn the whole funnel deadline spinning on a
		// lock that cannot be granted. A racy read is fine — the replica
		// lock below is the ground truth.
		pinned := -1
		if e.cfg.Buffered {
			pinned = int(e.pinnedIdx.Load())
		}
		for i, seen := 0, 0; i < len(e.combs) && seen < limit; i++ {
			if i == curIdx || i == pinned {
				continue
			}
			seen++
			if e.combs[i].lk.ExclusiveTryLock(tid) {
				return e.combs[i], i
			}
		}
		if e.opDone(tid, flag) {
			return nil, -1
		}
		if funnel {
			// Anderson-style exponential spin backoff: an OS sleep
			// would overshoot by orders of magnitude at this scale.
			sleepStart := now(e.cfg.Profile)
			spinBackoff(backoff)
			e.cfg.Profile.AddSleep(since(e.cfg.Profile, sleepStart))
			if backoff < 1<<13 {
				backoff *= 2
			}
		} else {
			runtime.Gosched()
		}
	}
}

var spinSink atomic.Uint64

// spinBackoff burns roughly n cycles without being optimized away, yielding
// the processor once so starved goroutines can run.
func spinBackoff(n uint64) {
	acc := n
	for i := uint64(0); i < n; i++ {
		acc = acc*2862933555777941757 + 3037000493
	}
	spinSink.Store(acc)
	runtime.Gosched()
}

// opDone reports whether the thread's announced operation has been executed
// and committed (without the durability side effects of tryResult).
func (e *Redo) opDone(tid int, flag bool) bool {
	curC := e.curComb.Load()
	tail := e.combs[idxOf(curC)].head.Load()
	if tail == invalidHead {
		return false
	}
	st := e.resolve(tail)
	if st.ticket.Load() != tail {
		return false
	}
	return st.applied[tid].Load() == flag
}

// catchUp brings replica c to the consensus tail: replaying the physical
// logs published in the ring when possible, rebuilding by copy from curComb
// otherwise. Returns false if the caller's snapshot went stale and the outer
// loop must re-read curComb.
func (e *Redo) catchUp(tid int, c *combined, tail SeqTidIdx) bool {
	applyStart := now(e.cfg.Profile)
	replayOK := e.replay(tid, c, tail)
	e.cfg.Profile.AddApply(since(e.cfg.Profile, applyStart))
	if replayOK {
		return true
	}
	if !e.copyFromCur(tid, c) {
		return false
	}
	// The copy may have adopted a state newer than the caller's
	// snapshot, in which case the snapshot must be refreshed.
	return c.head.Load() == tail
}

// replay applies committed physical logs to c until it reaches tail.
// Returns false if the replica cannot catch up via the ring (state reuse,
// stale snapshot, or invalid replica).
func (e *Redo) replay(tid int, c *combined, tail SeqTidIdx) bool {
	began := false
	defer func() {
		if began {
			e.pool.TraceEvent(obs.KindReplayEnd, tid, c.region.Index(), 0, 0, seqOf(c.head.Load()))
		}
	}()
	for {
		head := c.head.Load()
		if head == tail {
			return true
		}
		if head == invalidHead {
			return false
		}
		if seqOf(head) >= seqOf(tail) {
			return false // snapshot went stale
		}
		if !began {
			began = true
			e.pool.TraceEvent(obs.KindReplayBegin, tid, c.region.Index(), 0, 0, seqOf(head))
		}
		nextSeq := seqOf(head) + 1
		entry := e.ring[nextSeq%uint64(e.cfg.RingSize)].Load()
		if seqOf(entry) != nextSeq {
			return false // overwritten: replica fell out of the ring window
		}
		st := e.resolve(entry)
		if st.ticket.Load() != entry {
			return false // state reused
		}
		n := st.logSize.Load()
		ok := true
		for pos := uint64(0); pos < n; {
			we := st.entryAt(pos)
			if we == nil {
				ok = false
				break
			}
			addr, val := we.addr.Load(), we.val.Load()
			if addr&bulkTag != 0 {
				// Bulk record: header carries base and word count; the
				// payload replays as one aggregated write. Every bound is
				// re-checked because a reused log reads as garbage until
				// the ticket validation below rejects it.
				base, cnt := addr&^bulkTag, val
				if cnt == 0 || base >= c.region.Words() ||
					cnt > c.region.Words()-base || pos+1+cnt > n {
					ok = false
					break
				}
				buf := c.bulkBuf(cnt)
				if !st.readPayload(pos+1, buf, false) {
					ok = false
					break
				}
				c.applyBulk(base, buf)
				pos += 1 + cnt
				continue
			}
			if addr >= c.region.Words() {
				ok = false // torn read of a reused log
				break
			}
			c.region.Store(addr, val)
			if e.feat.DeferFlush {
				c.track(addr)
			} else {
				c.region.PWB(addr)
			}
			pos++
		}
		// Validate the log was not reused mid-replay; if it was, the
		// garbage written above is repaired by the copy path.
		if !ok || st.ticket.Load() != entry {
			return false
		}
		c.head.Store(entry)
	}
}

// copyFromCur rebuilds c from the replica curComb references, under a shared
// lock on the source. Opt copies with non-temporal stores (no pwbs needed);
// the other variants use regular stores and schedule a whole-heap flush.
// Returns false if curComb kept moving and the copy could not complete.
func (e *Redo) copyFromCur(tid int, c *combined) bool {
	copyStart := now(e.cfg.Profile)
	defer func() {
		d := since(e.cfg.Profile, copyStart)
		e.cfg.Profile.AddCopy(d)
	}()
	t0 := time.Now()
	for attempt := 0; attempt < 4; attempt++ {
		curC := e.curComb.Load()
		src := e.combs[idxOf(curC)]
		if src == c {
			return false
		}
		if !src.lk.SharedTryLock(tid) {
			continue
		}
		if e.curComb.Load() != curC {
			src.lk.SharedUnlock(tid)
			continue
		}
		used := usedWords(src.region)
		if e.feat.NTCopy {
			c.region.NTCopyFrom(src.region, used)
		} else {
			c.region.CopyFrom(src.region, used)
			c.flushAll = true
		}
		c.head.Store(src.head.Load())
		src.lk.SharedUnlock(tid)
		c.dirty = c.dirty[:0]
		e.copies.Add(1)
		e.lastCopy.Store(int64(time.Since(t0)))
		return true
	}
	return false
}

// flushReplica issues the pwbs owed before publication. Base/Timed already
// flushed per store; after a plain copy the whole used heap is flushed.
// Opt dedupes the deferred line list ("flush aggregation") and falls back to
// a whole-heap flush when the list exceeds a tenth of the object, as in the
// paper.
func (e *Redo) flushReplica(c *combined) {
	used := usedWords(c.region)
	if c.flushAll {
		c.region.FlushRange(0, used)
		c.flushAll = false
		c.dirty = c.dirty[:0]
		return
	}
	if !e.feat.DeferFlush || len(c.dirty) == 0 {
		return
	}
	// The paper switches to a whole-object flush when the deferred list
	// exceeds a tenth of the object; the extra floor avoids degenerate
	// whole-heap flushes on near-empty heaps.
	if len(c.dirty) > 64 && uint64(len(c.dirty)) > used/(10*pmem.WordsPerLine) {
		c.region.FlushRange(0, used)
		c.dirty = c.dirty[:0]
		return
	}
	flushLines(c)
}

// applyUndo reverts a failed simulation by replaying the undo log in
// reverse. Bulk records are variable-length and cannot be parsed backwards,
// so the record boundaries are collected in a forward scan first; only the
// owner calls this, on its own fully published log, so no torn-read checks
// are needed.
func (e *Redo) applyUndo(st *State, c *combined) {
	n := st.logSize.Load()
	var starts []uint64
	for pos := uint64(0); pos < n; {
		starts = append(starts, pos)
		we := st.entryAt(pos)
		if we.addr.Load()&bulkTag != 0 {
			pos += 1 + we.val.Load()
		} else {
			pos++
		}
	}
	for i := len(starts) - 1; i >= 0; i-- {
		we := st.entryAt(starts[i])
		addr := we.addr.Load()
		if addr&bulkTag != 0 {
			base, cnt := addr&^bulkTag, we.val.Load()
			buf := c.bulkBuf(cnt)
			st.readPayload(starts[i]+1, buf, true)
			c.applyBulk(base, buf)
			continue
		}
		c.region.Store(addr, we.old)
		if e.feat.DeferFlush {
			c.track(addr)
		} else {
			c.region.PWB(addr)
		}
	}
}

// now/since avoid time.Now() when profiling is disabled.
func now(p *ptm.Profile) time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

func since(p *ptm.Profile, t time.Time) time.Duration {
	if p == nil {
		return 0
	}
	return time.Since(t)
}
