package redo

import (
	"fmt"
	"sync/atomic"

	"repro/internal/ptm"
)

// SeqTidIdx is the paper's 64-bit identifier (Algorithm 1): a monotonically
// increasing sequence number, the id of the thread that produced the
// transition, and the index of one of that thread's pre-allocated State
// objects — or, inside curComb, the index of a Combined replica.
//
// Packing: seq(44) | tid(8) | idx(12).
type SeqTidIdx = uint64

const (
	idxBits = 12
	tidBits = 8
	idxMask = (1 << idxBits) - 1
	tidMask = (1 << tidBits) - 1
)

func pack(seq uint64, tid, idx int) SeqTidIdx {
	return seq<<(idxBits+tidBits) | uint64(tid&tidMask)<<idxBits | uint64(idx&idxMask)
}

func seqOf(v SeqTidIdx) uint64 { return v >> (idxBits + tidBits) }
func tidOf(v SeqTidIdx) int    { return int(v>>idxBits) & tidMask }
func idxOf(v SeqTidIdx) int    { return int(v) & idxMask }

// logChunk is the number of write-set entries per log node (the paper's
// MAXLOGSIZE), chained as in Algorithm 1's WriteSetNode.
const logChunk = 64

// bulkTag marks a log entry as the header of an aggregated bulk record (one
// whole byte payload logged as a unit): the entry's addr field carries
// bulkTag|base and its val field the payload word count, followed by that
// many payload entries whose val/old fields hold the redo/undo words.
// Region addresses are bounds-checked well below 2^63, so the tag bit can
// never collide with a real address.
const bulkTag = uint64(1) << 63

// wsEntry is one physical-log record: the modified address, the value before
// the transaction (undo) and the value written (redo). addr and val are read
// by concurrent replayers under seqlock-style ticket validation, so they are
// atomic; old is only ever touched by the State's owning thread.
type wsEntry struct {
	addr atomic.Uint64
	val  atomic.Uint64
	old  uint64
}

// wsNode is a chunk of the physical log. Chunks are allocated once and kept
// across State reuse ("efficient reset and re-usage of the State instance").
type wsNode struct {
	entries [logChunk]wsEntry
	next    atomic.Pointer[wsNode]
}

// reqDesc is a thread's announced operation: the paper's req[tid] and
// announce[tid] merged into one atomically published descriptor so an
// executor always pairs a closure with its announcement parity.
type reqDesc struct {
	fn       func(ptm.Mem) uint64
	flag     bool // alternates per announcement; applied[tid] mirrors it
	readOnly bool
}

// State is the consensus object (Algorithm 1): the applied/results arrays of
// the combining consensus plus the physical redo/undo log of the transition
// that produced it. All States are pre-allocated in an N×RSIZE matrix; a
// State is reused once its sequence number leaves the ring, and the ticket
// lets late readers detect reuse.
type State struct {
	ticket  atomic.Uint64 // SeqTidIdx; changes on reuse, validated by readers
	applied []atomicBool
	results []atomic.Uint64
	// from records which thread executed each operation, so the owner
	// can fetch byte-string results from that executor's outbox row.
	from    []atomic.Uint32
	logSize atomic.Uint64
	logHead *wsNode

	// Owner-only bookkeeping (reset per use).
	logTail   *wsNode
	tailCount int
	// aggr maps addr → log position for store aggregation (RedoOpt).
	aggr map[uint64]uint64
}

// atomicBool is an atomic.Bool; aliased for slice allocation readability.
type atomicBool = atomic.Bool

func newState(threads int) *State {
	head := &wsNode{}
	return &State{
		applied: make([]atomicBool, threads),
		results: make([]atomic.Uint64, threads),
		from:    make([]atomic.Uint32, threads),
		logHead: head,
		logTail: head,
	}
}

// resetLog prepares the State for a new transition: empty log, fresh
// aggregation set. The chunk chain is retained.
func (s *State) resetLog(aggregate bool) {
	s.logSize.Store(0)
	s.logTail = s.logHead
	s.tailCount = 0
	if aggregate {
		// clear() keeps a map's bucket array, so one huge transaction
		// (e.g. a hash-table rehash) would make every later reset pay
		// for its high-water capacity; reallocate past a threshold.
		switch {
		case s.aggr == nil || len(s.aggr) > 4096:
			s.aggr = make(map[uint64]uint64, 64)
		default:
			clear(s.aggr)
		}
	}
}

// entryAt returns the log entry at position pos, walking the chunk chain.
// Safe for concurrent replayers: chunks are append-only and linked with an
// atomic pointer.
func (s *State) entryAt(pos uint64) *wsEntry {
	n := s.logHead
	for pos >= logChunk {
		n = n.next.Load()
		if n == nil {
			return nil
		}
		pos -= logChunk
	}
	return &n.entries[pos]
}

// append adds a redo/undo record and returns its position. Owner-only.
func (s *State) append(addr, old, val uint64) uint64 {
	e := s.nextEntry()
	e.addr.Store(addr)
	e.old = old
	e.val.Store(val)
	pos := s.logSize.Load()
	// Publish the entry before bumping logSize so replayers never read
	// an unwritten entry.
	s.logSize.Store(pos + 1)
	return pos
}

// nextEntry returns the next unwritten tail entry, growing the chunk chain
// if needed. Owner-only; the caller publishes via logSize.
func (s *State) nextEntry() *wsEntry {
	if s.tailCount == logChunk {
		next := s.logTail.next.Load()
		if next == nil {
			next = &wsNode{}
			s.logTail.next.Store(next)
		}
		s.logTail = next
		s.tailCount = 0
	}
	e := &s.logTail.entries[s.tailCount]
	s.tailCount++
	return e
}

// appendBulk adds one aggregated bulk record: a bulkTag-marked header entry
// carrying the base address and word count, then len(redo) payload entries
// whose val/old fields hold the redo and undo words (their addr fields are
// dead — replayers derive addresses from the header). The whole record is
// published with a single logSize bump, so concurrent replayers either see
// it complete or not at all. Owner-only.
func (s *State) appendBulk(base uint64, redo, undo []uint64) {
	pos := s.logSize.Load()
	n := uint64(len(redo))
	h := s.nextEntry()
	h.addr.Store(bulkTag | base)
	h.old = n
	h.val.Store(n)
	for i := range redo {
		e := s.nextEntry()
		e.old = undo[i]
		e.val.Store(redo[i])
	}
	s.logSize.Store(pos + 1 + n)
}

// readPayload copies the val (redo) or old (undo) fields of the entries at
// positions [pos, pos+len(buf)) into buf, walking the chunk chain once.
// Returns false if the chain is shorter than expected — a torn read of a
// log being reset for reuse; the caller's ticket validation rejects it.
func (s *State) readPayload(pos uint64, buf []uint64, undo bool) bool {
	node := s.logHead
	for pos >= logChunk {
		node = node.next.Load()
		if node == nil {
			return false
		}
		pos -= logChunk
	}
	for i := range buf {
		if pos == logChunk {
			node = node.next.Load()
			if node == nil {
				return false
			}
			pos = 0
		}
		if undo {
			buf[i] = node.entries[pos].old
		} else {
			buf[i] = node.entries[pos].val.Load()
		}
		pos++
	}
	return true
}

// copyMetaFrom copies the consensus arrays (applied, results) from src and
// stamps this State with its new ticket, invalidating any late reader of the
// previous incarnation. Returns false if src was itself reused mid-copy
// (detected via its ticket).
func (s *State) copyMetaFrom(src *State, srcTicket, newTicket SeqTidIdx, aggregate bool) bool {
	if s == src {
		panic(fmt.Sprintf("redo: state reuse collision on ticket %#x", newTicket))
	}
	s.ticket.Store(newTicket)
	s.resetLog(aggregate)
	for i := range s.applied {
		s.applied[i].Store(src.applied[i].Load())
		s.results[i].Store(src.results[i].Load())
		s.from[i].Store(src.from[i].Load())
	}
	return src.ticket.Load() == srcTicket
}
