package redo

import (
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

// TestCopiedReplicaContentIsDurable forces a large-object replica rebuild
// (by locking out every valid replica) and crashes right after the copied
// replica publishes: its full content must be durable. Base/Timed achieve
// this with a whole-heap flush after the plain copy; Opt with non-temporal
// stores that need only the commit fence.
func TestCopiedReplicaContentIsDurable(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			const threads = 2
			pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 15, Regions: 4})
			e := New(pool, Config{Threads: threads, Variant: v})
			s := seqds.ListSet{RootSlot: 0}
			e.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
			const keys = 300
			for k := uint64(1); k <= keys; k++ {
				key := (k * 2654435761) % 1000000
				e.Update(0, func(m ptm.Mem) uint64 {
					s.Add(m, key)
					return 0
				})
			}
			// Lock out every replica that could avoid the copy path.
			curIdx := idxOf(e.curComb.Load())
			locked := 0
			for i, comb := range e.combs {
				if i == curIdx || comb.head.Load() == invalidHead {
					continue
				}
				if !comb.lk.ExclusiveTryLock(1) {
					t.Fatal("could not lock out a valid replica")
				}
				locked++
			}
			if locked == 0 {
				t.Fatal("setup failed: no valid replica to lock out")
			}
			before := e.Copies()
			e.Update(0, func(m ptm.Mem) uint64 {
				s.Add(m, 42)
				return 0
			})
			if e.Copies() == before {
				t.Fatal("setup failed: the update did not take the copy path")
			}
			pool.Crash(pmem.CrashConservative, nil)
			e2 := New(pool, Config{Threads: threads, Variant: v})
			missing := e2.Read(0, func(m ptm.Mem) uint64 {
				var missing uint64
				for k := uint64(1); k <= keys; k++ {
					if !s.Contains(m, (k*2654435761)%1000000) {
						missing++
					}
				}
				if !s.Contains(m, 42) {
					missing++
				}
				return missing
			})
			if missing != 0 {
				t.Fatalf("%s: %d completed inserts lost after copy+crash", v, missing)
			}
		})
	}
}
