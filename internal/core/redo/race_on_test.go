//go:build race

package redo

// raceEnabled reports whether the race detector is instrumenting this build;
// allocation-count pins skip under it (instrumentation allocates).
const raceEnabled = true
