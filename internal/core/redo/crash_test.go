package redo

import (
	"math/rand"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

func strictPool() *pmem.Pool {
	return pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 2})
}

func runAddsUntilCrash(t *testing.T, pool *pmem.Pool, v Variant, n int, failPoint int64) (completed int, crashed bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			if r != pmem.ErrSimulatedPowerFailure {
				panic(r)
			}
			crashed = true
		}
		pool.InjectFailure(-1)
	}()
	e := New(pool, Config{Threads: 1, Variant: v})
	s := seqds.ListSet{RootSlot: 0}
	e.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
	pool.InjectFailure(failPoint)
	for k := 0; k < n; k++ {
		e.Update(0, func(m ptm.Mem) uint64 {
			s.Add(m, uint64(k)+1)
			return 0
		})
		completed++
	}
	return completed, false
}

func checkRecovered(t *testing.T, pool *pmem.Pool, v Variant, completed, n int, failPoint int64) {
	t.Helper()
	e := New(pool, Config{Threads: 1, Variant: v})
	s := seqds.ListSet{RootSlot: 0}
	keys := seqds.ReadSlice(e, 0, s.Keys)
	if len(keys) < completed {
		t.Fatalf("fail=%d: recovered %d keys, %d completed", failPoint, len(keys), completed)
	}
	if len(keys) > n {
		t.Fatalf("fail=%d: recovered %d keys, only %d ever inserted", failPoint, len(keys), n)
	}
	for i, k := range keys {
		if k != uint64(i)+1 {
			t.Fatalf("fail=%d: recovered state not a prefix at %d: key %d", failPoint, i, k)
		}
	}
	// The recovered engine must be fully usable (null recovery).
	got := e.Update(0, func(m ptm.Mem) uint64 {
		s.Add(m, 1<<40)
		return s.Len(m)
	})
	if got != uint64(len(keys))+1 {
		t.Fatalf("fail=%d: post-recovery insert len = %d, want %d", failPoint, got, len(keys)+1)
	}
}

func TestCrashAfterQuiesce(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			pool := strictPool()
			const n = 30
			completed, crashed := runAddsUntilCrash(t, pool, v, n, -1)
			if crashed || completed != n {
				t.Fatalf("unexpected crash (completed %d)", completed)
			}
			pool.Crash(pmem.CrashConservative, nil)
			checkRecovered(t, pool, v, n, n, -1)
		})
	}
}

func TestSystematicCrashPoints(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			const n = 20
			for fail := int64(1); ; fail += 7 {
				pool := strictPool()
				completed, crashed := runAddsUntilCrash(t, pool, v, n, fail)
				if !crashed {
					if completed != n {
						t.Fatalf("no crash but %d/%d completed", completed, n)
					}
					break
				}
				pool.Crash(pmem.CrashConservative, nil)
				checkRecovered(t, pool, v, completed, n, fail)
			}
		})
	}
}

func TestAdversarialCrashPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 15
	for fail := int64(1); ; fail += 11 {
		pool := strictPool()
		completed, crashed := runAddsUntilCrash(t, pool, Opt, n, fail)
		if !crashed {
			break
		}
		pool.Crash(pmem.CrashAdversarial, rng)
		checkRecovered(t, pool, Opt, completed, n, fail)
	}
}

func TestDoubleCrashAcrossEras(t *testing.T) {
	pool := strictPool()
	const n = 8
	if _, crashed := runAddsUntilCrash(t, pool, Opt, n, -1); crashed {
		t.Fatal("unexpected crash")
	}
	pool.Crash(pmem.CrashConservative, nil)
	e := New(pool, Config{Threads: 1, Variant: Opt})
	s := seqds.ListSet{RootSlot: 0}
	for k := n; k < 2*n; k++ {
		e.Update(0, func(m ptm.Mem) uint64 {
			s.Add(m, uint64(k)+1)
			return 0
		})
	}
	pool.Crash(pmem.CrashConservative, nil)
	e = New(pool, Config{Threads: 1, Variant: Opt})
	keys := seqds.ReadSlice(e, 0, s.Keys)
	if len(keys) != 2*n {
		t.Fatalf("recovered %d keys after two eras, want %d", len(keys), 2*n)
	}
}

func TestConcurrentThenCrash(t *testing.T) {
	pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 5})
	e := New(pool, Config{Threads: 4, Variant: Opt})
	addr := ptm.RootAddr(0)
	done := make(chan struct{})
	for tid := 0; tid < 4; tid++ {
		go func(tid int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 80; i++ {
				e.Update(tid, func(m ptm.Mem) uint64 {
					val := m.Load(addr) + 1
					m.Store(addr, val)
					return val
				})
			}
		}(tid)
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	pool.Crash(pmem.CrashConservative, nil)
	e = New(pool, Config{Threads: 4, Variant: Opt})
	if got := e.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) }); got != 320 {
		t.Fatalf("recovered counter = %d, want 320", got)
	}
}
