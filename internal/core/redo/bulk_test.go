package redo

import (
	"math/rand"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
)

// TestBulkWordEquivalence is the property test behind the bulk fast path:
// the same sequence of word and bulk stores — fuzzed sizes and offsets, with
// aggregated word stores interleaved before and after each bulk record to
// exercise the aggregation-slot eviction — must leave the Bulk engine's heap
// word-for-word identical to the per-word ablation's.
func TestBulkWordEquivalence(t *testing.T) {
	mk := func(bulk bool) *Redo {
		feat := Features{Funnel: true, StoreAgg: true, DeferFlush: true, NTCopy: true, Bulk: bulk}
		pool := pmem.New(pmem.Config{Mode: pmem.Direct, RegionWords: 1 << 13, Regions: 2})
		return New(pool, Config{Threads: 1, Variant: Opt, Features: &feat})
	}
	eb, ew := mk(true), mk(false)
	const span = 2048
	var base uint64
	for _, e := range []*Redo{eb, ew} {
		b := e.Update(0, func(m ptm.Mem) uint64 { return m.Alloc(span) })
		if base == 0 {
			base = b
		} else if b != base {
			t.Fatalf("allocators diverged: %d vs %d", b, base)
		}
	}
	rng := rand.New(rand.NewSource(42))
	sizes := []int{0, 1, 7, 8, 9, 63, 64, 65, 100, 128, 511, 512, 1000}
	bufB, bufW := make([]uint64, span), make([]uint64, span)
	for step, n := range sizes {
		off := uint64(rng.Intn(span - n + 1))
		words := make([]uint64, n)
		for i := range words {
			words[i] = rng.Uint64()
		}
		addr := base + off
		extra := base + uint64(rng.Intn(span))
		for _, e := range []*Redo{eb, ew} {
			e.Update(0, func(m ptm.Mem) uint64 {
				// A word store inside the covered range first, so the bulk
				// record must evict its aggregation slot...
				m.Store(addr, ^uint64(step))
				ptm.StoreWords(m, addr, words)
				// ...and a store after it, which must win over the record.
				m.Store(extra, uint64(step)*0x9e3779b9)
				return 0
			})
		}
		for _, p := range []struct {
			e   *Redo
			buf []uint64
		}{{eb, bufB}, {ew, bufW}} {
			p.e.Read(0, func(m ptm.Mem) uint64 {
				ptm.LoadWords(m, base, p.buf)
				return 0
			})
		}
		for i := range bufB {
			if bufB[i] != bufW[i] {
				t.Fatalf("step %d (n=%d off=%d): heaps diverge at word %d: bulk %#x, word %#x",
					step, n, off, i, bufB[i], bufW[i])
			}
		}
	}
}

// TestBulkCrashSweep sweeps the power-failure instant across a workload of
// multi-line bulk stores under the strict-mode injector: every recovered
// payload must be entirely present or entirely absent (the bulk record's
// single-publication atomicity), and recovery itself must replay aggregated
// records and their range undo correctly at every crash point.
func TestBulkCrashSweep(t *testing.T) {
	const n = 10
	const slot = 128 // words reserved per payload
	payload := func(k int) []uint64 {
		w := make([]uint64, 1+(k*29)%90)
		for j := range w {
			w[j] = uint64(k)<<32 | uint64(j)
		}
		return w
	}
	for fail := int64(1); ; fail += 13 {
		pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 2})
		completed := 0
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != pmem.ErrSimulatedPowerFailure {
						panic(r)
					}
					crashed = true
				}
				pool.InjectFailure(-1)
			}()
			e := New(pool, Config{Threads: 1, Variant: Opt})
			e.Update(0, func(m ptm.Mem) uint64 {
				m.Store(ptm.RootAddr(0), m.Alloc(n*slot))
				m.Store(ptm.RootAddr(1), 0)
				return 0
			})
			pool.InjectFailure(fail)
			for k := 0; k < n; k++ {
				e.Update(0, func(m ptm.Mem) uint64 {
					base := m.Load(ptm.RootAddr(0))
					ptm.StoreWords(m, base+uint64(k*slot), payload(k))
					m.Store(ptm.RootAddr(1), uint64(k)+1)
					return 0
				})
				completed++
			}
		}()
		if !crashed {
			if completed != n {
				t.Fatalf("no crash but %d/%d completed", completed, n)
			}
			break
		}
		pool.Crash(pmem.CrashConservative, nil)
		e := New(pool, Config{Threads: 1, Variant: Opt})
		count := e.Read(0, func(m ptm.Mem) uint64 { return m.Load(ptm.RootAddr(1)) })
		if count < uint64(completed) || count > n {
			t.Fatalf("fail=%d: recovered count %d, completed %d", fail, count, completed)
		}
		for k := 0; k < int(count); k++ {
			want := payload(k)
			got := make([]uint64, len(want))
			e.Read(0, func(m ptm.Mem) uint64 {
				ptm.LoadWords(m, m.Load(ptm.RootAddr(0))+uint64(k*slot), got)
				return 0
			})
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("fail=%d: payload %d torn at word %d: %#x want %#x",
						fail, k, j, got[j], want[j])
				}
			}
		}
	}
}
