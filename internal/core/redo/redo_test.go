package redo

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

func newEngine(t testing.TB, threads int, v Variant, mode pmem.Mode) (*Redo, *pmem.Pool) {
	t.Helper()
	pool := pmem.New(pmem.Config{
		Mode:        mode,
		RegionWords: 1 << 16,
		Regions:     threads + 1,
	})
	if threads == 1 {
		pool = pmem.New(pmem.Config{Mode: mode, RegionWords: 1 << 16, Regions: 2})
	}
	return New(pool, Config{Threads: threads, Variant: v}), pool
}

func variants() []Variant { return []Variant{Base, Timed, Opt} }

func TestNameAndProperties(t *testing.T) {
	want := map[Variant]string{Base: "Redo-PTM", Timed: "RedoTimed-PTM", Opt: "RedoOpt-PTM"}
	for _, v := range variants() {
		e, _ := newEngine(t, 2, v, pmem.Direct)
		if e.Name() != want[v] {
			t.Errorf("Name() = %q, want %q", e.Name(), want[v])
		}
		p := e.Properties()
		if p.Progress != ptm.WaitFree || p.Log != ptm.VolatilePhysical || p.Replicas != "N+1" {
			t.Errorf("%s: Properties() = %+v", e.Name(), p)
		}
	}
}

func TestNewValidation(t *testing.T) {
	pool := pmem.New(pmem.Config{RegionWords: 1 << 12, Regions: 2})
	for _, cfg := range []Config{
		{Threads: 0},
		{Threads: 300},
		{Threads: 1, RingSize: 2},
		{Threads: 1, RingSize: 5000},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(pool, cfg)
		}()
	}
}

func TestCounterSingleThread(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			e, _ := newEngine(t, 1, v, pmem.Direct)
			addr := ptm.RootAddr(0)
			for i := 0; i < 200; i++ {
				e.Update(0, func(m ptm.Mem) uint64 {
					val := m.Load(addr) + 1
					m.Store(addr, val)
					return val
				})
			}
			if got := e.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) }); got != 200 {
				t.Fatalf("counter = %d, want 200", got)
			}
		})
	}
}

func TestRingWrapExercisesStateReuse(t *testing.T) {
	// More updates than RingSize forces every State to be reused many
	// times; correctness must be unaffected.
	pool := pmem.New(pmem.Config{RegionWords: 1 << 14, Regions: 2})
	e := New(pool, Config{Threads: 1, RingSize: 8, Variant: Base})
	addr := ptm.RootAddr(0)
	for i := 0; i < 500; i++ {
		e.Update(0, func(m ptm.Mem) uint64 {
			m.Store(addr, m.Load(addr)+1)
			return 0
		})
	}
	if got := e.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) }); got != 500 {
		t.Fatalf("counter = %d, want 500", got)
	}
}

func TestSetAgainstModel(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			e, _ := newEngine(t, 1, v, pmem.Direct)
			s := seqds.HashSet{RootSlot: 0}
			e.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
			model := make(map[uint64]bool)
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < 1000; i++ {
				k := uint64(rng.Intn(200))
				switch rng.Intn(3) {
				case 0:
					got := e.Update(0, func(m ptm.Mem) uint64 {
						if s.Add(m, k) {
							return 1
						}
						return 0
					})
					if (got == 1) == model[k] {
						t.Fatalf("Add(%d) = %d, model %v", k, got, model[k])
					}
					model[k] = true
				case 1:
					got := e.Update(0, func(m ptm.Mem) uint64 {
						if s.Remove(m, k) {
							return 1
						}
						return 0
					})
					if (got == 1) != model[k] {
						t.Fatalf("Remove(%d) = %d, model %v", k, got, model[k])
					}
					delete(model, k)
				default:
					got := e.Read(0, func(m ptm.Mem) uint64 {
						if s.Contains(m, k) {
							return 1
						}
						return 0
					})
					if (got == 1) != model[k] {
						t.Fatalf("Contains(%d) = %d, model %v", k, got, model[k])
					}
				}
			}
		})
	}
}

func TestConcurrentCounter(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			const threads, perThread = 6, 250
			e, _ := newEngine(t, threads, v, pmem.Direct)
			addr := ptm.RootAddr(0)
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for i := 0; i < perThread; i++ {
						e.Update(tid, func(m ptm.Mem) uint64 {
							val := m.Load(addr) + 1
							m.Store(addr, val)
							return val
						})
					}
				}(tid)
			}
			wg.Wait()
			got := e.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) })
			if got != threads*perThread {
				t.Fatalf("counter = %d, want %d (lost updates)", got, threads*perThread)
			}
		})
	}
}

func TestResultsAreExactlyOnce(t *testing.T) {
	// The combining consensus may execute a thread's operation on a
	// helper; the returned post-increment values must still be a
	// permutation of 1..total (each tx executed exactly once).
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			const threads, perThread = 4, 200
			e, _ := newEngine(t, threads, v, pmem.Direct)
			addr := ptm.RootAddr(0)
			results := make([][]uint64, threads)
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for i := 0; i < perThread; i++ {
						r := e.Update(tid, func(m ptm.Mem) uint64 {
							val := m.Load(addr) + 1
							m.Store(addr, val)
							return val
						})
						results[tid] = append(results[tid], r)
					}
				}(tid)
			}
			wg.Wait()
			seen := make(map[uint64]bool)
			for tid := range results {
				last := uint64(0)
				for _, r := range results[tid] {
					if seen[r] {
						t.Fatalf("result %d returned twice", r)
					}
					seen[r] = true
					if r <= last {
						t.Fatalf("thread %d results not monotonic", tid)
					}
					last = r
				}
			}
			if len(seen) != threads*perThread {
				t.Fatalf("%d distinct results, want %d", len(seen), threads*perThread)
			}
		})
	}
}

func TestReadersSeeConsistentState(t *testing.T) {
	const writers, readers, perWriter = 3, 3, 300
	e, _ := newEngine(t, writers+readers, Opt, pmem.Direct)
	a, b := ptm.RootAddr(0), ptm.RootAddr(1)
	var wg sync.WaitGroup
	var torn sync.Once
	tornMsg := ""
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				e.Update(tid, func(m ptm.Mem) uint64 {
					val := m.Load(a) + 1
					m.Store(a, val)
					m.Store(b, val)
					return val
				})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if e.Read(tid, func(m ptm.Mem) uint64 {
					if m.Load(a) != m.Load(b) {
						return 1
					}
					return 0
				}) == 1 {
					torn.Do(func() { tornMsg = "reader observed torn transaction" })
					return
				}
			}
		}(writers + r)
	}
	wg.Wait()
	if tornMsg != "" {
		t.Fatal(tornMsg)
	}
}

func TestTwoFencesPerUpdate(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			e, pool := newEngine(t, 1, v, pmem.Direct)
			addr := ptm.RootAddr(0)
			e.Update(0, func(m ptm.Mem) uint64 { m.Store(addr, 1); return 0 })
			before := pool.Stats()
			const n = 50
			for i := 0; i < n; i++ {
				e.Update(0, func(m ptm.Mem) uint64 {
					m.Store(addr, m.Load(addr)+1)
					return 0
				})
			}
			d := pool.Stats().Sub(before)
			if got := d.Fences(); got != 2*n {
				t.Fatalf("%d fences for %d txs, want %d (2 per tx)", got, n, 2*n)
			}
		})
	}
}

func TestStoreAggregationReducesLogAndPWBs(t *testing.T) {
	// 100 stores to the same word: Opt logs once and flushes one line;
	// Base logs and flushes 100 times.
	counts := make(map[Variant]uint64)
	for _, v := range []Variant{Base, Opt} {
		e, pool := newEngine(t, 1, v, pmem.Direct)
		addr := ptm.RootAddr(0)
		e.Update(0, func(m ptm.Mem) uint64 { m.Store(addr, 0); return 0 })
		before := pool.Stats()
		e.Update(0, func(m ptm.Mem) uint64 {
			for i := uint64(1); i <= 100; i++ {
				m.Store(addr, i)
			}
			return 0
		})
		counts[v] = pool.Stats().Sub(before).PWBs
		if got := e.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) }); got != 100 {
			t.Fatalf("%v: final value = %d, want 100", v, got)
		}
	}
	if counts[Opt] >= counts[Base] {
		t.Fatalf("store aggregation ineffective: Opt %d pwbs vs Base %d", counts[Opt], counts[Base])
	}
	if counts[Opt] != 2 { // one data line + one header
		t.Fatalf("Opt pwbs = %d, want 2", counts[Opt])
	}
}

func TestFlushAggregationSameLine(t *testing.T) {
	// Stores to 8 words of one cache line: Opt issues one pwb for all.
	e, pool := newEngine(t, 1, Opt, pmem.Direct)
	e.Update(0, func(m ptm.Mem) uint64 { return 0 })
	before := pool.Stats()
	e.Update(0, func(m ptm.Mem) uint64 {
		for i := uint64(0); i < 7; i++ {
			m.Store(ptm.RootAddr(0)+i, i) // words 1..7: all within line 0
		}
		return 0
	})
	d := pool.Stats().Sub(before)
	if d.PWBs != 2 { // aggregated data line + header
		t.Fatalf("pwbs = %d, want 2 (flush aggregation)", d.PWBs)
	}
}

func TestUndoPathOnConsensusLoss(t *testing.T) {
	// Heavy contention forces CAS failures and undo; the counter must
	// still be exact and results exactly-once (covered above); here we
	// additionally verify with a tiny ring to force copies too.
	const threads, perThread = 4, 300
	pool := pmem.New(pmem.Config{RegionWords: 1 << 14, Regions: threads + 1})
	e := New(pool, Config{Threads: threads, RingSize: 4, Variant: Base})
	addr := ptm.RootAddr(0)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				e.Update(tid, func(m ptm.Mem) uint64 {
					val := m.Load(addr) + 1
					m.Store(addr, val)
					return val
				})
			}
		}(tid)
	}
	wg.Wait()
	if got := e.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) }); got != threads*perThread {
		t.Fatalf("counter = %d, want %d", got, threads*perThread)
	}
	if e.Copies() == 0 {
		t.Fatal("tiny ring produced no replica copies")
	}
}

func TestReplayAvoidsReexecution(t *testing.T) {
	// The point of physical logging: after warm-up, sequential updates
	// catch replicas up via log replay, not full copies.
	e, _ := newEngine(t, 1, Base, pmem.Direct)
	addr := ptm.RootAddr(0)
	for i := 0; i < 20; i++ { // warm up both replicas
		e.Update(0, func(m ptm.Mem) uint64 { m.Store(addr, uint64(i)); return 0 })
	}
	before := e.Copies()
	for i := 0; i < 200; i++ {
		e.Update(0, func(m ptm.Mem) uint64 { m.Store(addr, uint64(i)); return 0 })
	}
	if d := e.Copies() - before; d > 0 {
		t.Fatalf("%d copies during steady-state replay, want 0", d)
	}
}

func TestReadOnlyTransactionCannotStore(t *testing.T) {
	e, _ := newEngine(t, 1, Opt, pmem.Direct)
	defer func() {
		if recover() == nil {
			t.Error("Store inside Read did not panic")
		}
	}()
	e.Read(0, func(m ptm.Mem) uint64 {
		//pmemvet:allow readonly -- this test asserts the runtime rejection of exactly this violation
		m.Store(ptm.RootAddr(0), 1)
		return 0
	})
}

func TestMultiObjectTransaction(t *testing.T) {
	const threads = 4
	e, _ := newEngine(t, threads, Opt, pmem.Direct)
	q1 := seqds.Queue{RootSlot: 0}
	q2 := seqds.Queue{RootSlot: 1}
	e.Update(0, func(m ptm.Mem) uint64 {
		q1.Init(m)
		q2.Init(m)
		for i := uint64(0); i < 50; i++ {
			q1.Enqueue(m, i)
		}
		return 0
	})
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				e.Update(tid, func(m ptm.Mem) uint64 {
					if v, ok := q1.Dequeue(m); ok {
						q2.Enqueue(m, v)
					} else if v, ok := q2.Dequeue(m); ok {
						q1.Enqueue(m, v)
					}
					return 0
				})
			}
		}(tid)
	}
	wg.Wait()
	total := e.Read(0, func(m ptm.Mem) uint64 { return q1.Len(m) + q2.Len(m) })
	if total != 50 {
		t.Fatalf("total = %d, want 50 (move not atomic)", total)
	}
}

func TestSPSSumPreserved(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			const threads = 4
			e, _ := newEngine(t, threads, v, pmem.Direct)
			sps := seqds.SPS{RootSlot: 0}
			const n = 128
			e.Update(0, func(m ptm.Mem) uint64 { sps.Init(m, n); return 0 })
			want := e.Read(0, func(m ptm.Mem) uint64 { return sps.Sum(m) })
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(tid)))
					for i := 0; i < 200; i++ {
						x, y := uint64(rng.Intn(n)), uint64(rng.Intn(n))
						e.Update(tid, func(m ptm.Mem) uint64 { sps.Swap(m, x, y); return 0 })
					}
				}(tid)
			}
			wg.Wait()
			if got := e.Read(0, func(m ptm.Mem) uint64 { return sps.Sum(m) }); got != want {
				t.Fatalf("Sum = %d, want %d", got, want)
			}
		})
	}
}

func TestProfileAccumulates(t *testing.T) {
	prof := &ptm.Profile{}
	pool := pmem.New(pmem.Config{RegionWords: 1 << 14, Regions: 2})
	e := New(pool, Config{Threads: 1, Variant: Base, Profile: prof})
	addr := ptm.RootAddr(0)
	for i := 0; i < 50; i++ {
		e.Update(0, func(m ptm.Mem) uint64 { m.Store(addr, uint64(i)); return 0 })
	}
	s := prof.Snapshot()
	if s.Txs != 50 {
		t.Fatalf("profiled %d txs, want 50", s.Txs)
	}
	if s.Total <= 0 || s.MeanTx() <= 0 {
		t.Fatalf("profile totals empty: %+v", s)
	}
	if s.Lambda <= 0 {
		t.Fatal("no lambda time recorded")
	}
}
