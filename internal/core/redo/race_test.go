package redo

import (
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
)

// TestRaceSmoke is a short high-contention workload meant for `go test
// -race`: concurrent updaters and readers share one engine per variant,
// exercising the announce ring, the flat-combining funnel and the replica
// hand-off. It asserts only coarse correctness (no lost updates); the race
// detector is the real assertion.
func TestRaceSmoke(t *testing.T) {
	const threads, perThread = 4, 60
	for _, v := range []Variant{Opt, Timed, Base} {
		t.Run(v.String(), func(t *testing.T) {
			pool := pmem.New(pmem.Config{Mode: pmem.Direct, RegionWords: 1 << 12, Regions: threads + 1})
			e := New(pool, Config{Threads: threads, Variant: v})
			addr := ptm.RootAddr(0)
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for i := 0; i < perThread; i++ {
						e.Update(tid, func(m ptm.Mem) uint64 {
							v := m.Load(addr) + 1
							m.Store(addr, v)
							return v
						})
						e.Read(tid, func(m ptm.Mem) uint64 { return m.Load(addr) })
					}
				}(tid)
			}
			wg.Wait()
			got := e.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) })
			if got != threads*perThread {
				t.Fatalf("counter = %d, want %d (lost updates)", got, threads*perThread)
			}
		})
	}
}
