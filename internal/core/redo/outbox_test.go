package redo

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

// TestReadWithBytesSingleThread checks the optimistic path of the byte
// outbox.
func TestReadWithBytesSingleThread(t *testing.T) {
	e, _ := newEngine(t, 1, Opt, pmem.Direct)
	addr := ptm.RootAddr(0)
	e.Update(0, func(m ptm.Mem) uint64 {
		a := ptm.AllocBytes(m, []byte("hello bytes"))
		m.Store(addr, a)
		return 0
	})
	res, b := e.ReadWithBytes(0, func(m ptm.Mem) uint64 {
		ptm.EmitBytes(m, ptm.LoadBytes(m, m.Load(addr)))
		return 7
	})
	if res != 7 || string(b) != "hello bytes" {
		t.Fatalf("ReadWithBytes = %d, %q", res, b)
	}
}

// TestReadWithBytesNilWhenNotEmitted checks the slot is cleared per call.
func TestReadWithBytesNilWhenNotEmitted(t *testing.T) {
	e, _ := newEngine(t, 1, Opt, pmem.Direct)
	e.ReadWithBytes(0, func(m ptm.Mem) uint64 {
		ptm.EmitBytes(m, []byte("stale"))
		return 0
	})
	_, b := e.ReadWithBytes(0, func(m ptm.Mem) uint64 { return 0 })
	if b != nil {
		t.Fatalf("non-emitting read returned stale bytes %q", b)
	}
}

// TestReadWithBytesUnderHelpers forces published reads (MaxReadTries=0 is
// not allowed, so use 1 with heavy update pressure) whose closures are
// executed by helper updaters; the owner must receive exactly the bytes
// matching the committed snapshot its read linearized against.
func TestReadWithBytesUnderHelpers(t *testing.T) {
	const writers, readers, per = 3, 3, 300
	pool := pmem.New(pmem.Config{RegionWords: 1 << 16, Regions: writers + readers + 1})
	e := New(pool, Config{Threads: writers + readers, Variant: Opt, MaxReadTries: 1})
	// Two parallel byte cells that are always updated together; a
	// consistent read must return identical payloads.
	a, b := ptm.RootAddr(0), ptm.RootAddr(1)
	e.Update(0, func(m ptm.Mem) uint64 {
		m.Store(a, ptm.AllocBytes(m, []byte("v0")))
		m.Store(b, ptm.AllocBytes(m, []byte("v0")))
		return 0
	})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				payload := []byte(fmt.Sprintf("w%d-%d", tid, i))
				e.Update(tid, func(m ptm.Mem) uint64 {
					m.Free(m.Load(a))
					m.Free(m.Load(b))
					m.Store(a, ptm.AllocBytes(m, payload))
					m.Store(b, ptm.AllocBytes(m, payload))
					return 0
				})
			}
		}(w)
	}
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_, got := e.ReadWithBytes(tid, func(m ptm.Mem) uint64 {
					va := ptm.LoadBytes(m, m.Load(a))
					vb := ptm.LoadBytes(m, m.Load(b))
					out := make([]byte, 0, len(va)+len(vb)+1)
					out = append(out, va...)
					out = append(out, '|')
					out = append(out, vb...)
					ptm.EmitBytes(m, out)
					return 0
				})
				half := len(got) / 2
				if len(got) < 3 || got[half] != '|' ||
					string(got[:half]) != string(got[half+1:]) {
					errs <- fmt.Sprintf("torn byte read: %q", got)
					return
				}
			}
		}(writers + r)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Readers finish first (bounded iterations), then stop writers.
	for i := 0; i < readers; i++ {
	}
	close(stop)
	<-done
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

// TestIteratorStyleSnapshotUnderChurn serializes a whole structure through
// the outbox while writers churn — the RedoDB iterator pattern.
func TestIteratorStyleSnapshotUnderChurn(t *testing.T) {
	const threads = 4
	pool := pmem.New(pmem.Config{RegionWords: 1 << 17, Regions: threads + 1})
	e := New(pool, Config{Threads: threads, Variant: Opt, MaxReadTries: 1})
	s := seqds.ListSet{RootSlot: 0}
	e.Update(0, func(m ptm.Mem) uint64 {
		s.Init(m)
		for k := uint64(1); k <= 100; k++ {
			s.Add(m, k)
		}
		return 0
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for k := uint64(101); ; k++ {
				select {
				case <-stop:
					return
				default:
					e.Update(tid, func(m ptm.Mem) uint64 {
						s.Add(m, k)
						return 0
					})
				}
			}
		}(w)
	}
	for i := 0; i < 100; i++ {
		_, blob := e.ReadWithBytes(2, func(m ptm.Mem) uint64 {
			keys := s.Keys(m)
			out := make([]byte, 0, len(keys)*8)
			for _, k := range keys {
				for sh := 0; sh < 64; sh += 8 {
					out = append(out, byte(k>>sh))
				}
			}
			ptm.EmitBytes(m, out)
			return uint64(len(keys))
		})
		if len(blob)%8 != 0 {
			t.Fatalf("iteration %d: ragged snapshot blob (%d bytes)", i, len(blob))
		}
		// The snapshot must be a sorted, duplicate-free prefix-closed
		// key sequence: 1..n for some n >= 100.
		n := len(blob) / 8
		if n < 100 {
			t.Fatalf("iteration %d: snapshot lost keys (%d)", i, n)
		}
		for j := 0; j < n; j++ {
			var k uint64
			for sh := 0; sh < 8; sh++ {
				k |= uint64(blob[j*8+sh]) << (8 * sh)
			}
			if k != uint64(j)+1 {
				t.Fatalf("iteration %d: snapshot[%d] = %d, want %d", i, j, k, j+1)
			}
		}
	}
	close(stop)
	wg.Wait()
}
