package redo

import (
	"slices"

	"repro/internal/obs"
	"repro/internal/palloc"
	"repro/internal/pmem"
)

// redoMem is the transactional view used while simulating announced
// operations on an exclusively held replica: every store is recorded in the
// State's physical log (old value for undo, new value for redo) and applied
// in place. Under the Opt variant, repeated stores to the same address are
// aggregated into a single log entry ("store aggregation") and pwbs are
// deferred to commit time ("postpone issuing pwbs"); the base variant
// issues a pwb per store immediately.
type redoMem struct {
	e     *Redo
	comb  *combined
	st    *State
	exec  int // executing thread
	owner int // thread that announced the operation being executed
}

// EmitBytes implements the optional byte-result channel (ptm.EmitBytes):
// the executor writes its own outbox row; the owner reads it after the
// committed state identifies this executor.
func (m *redoMem) EmitBytes(b []byte) { m.e.outbox[m.exec][m.owner] = b }

func (m *redoMem) Load(addr uint64) uint64 { return m.comb.region.Load(addr) }

func (m *redoMem) Store(addr, val uint64) {
	if m.e.feat.StoreAgg {
		if pos, ok := m.st.aggr[addr]; ok {
			// Store aggregation: overwrite the redo value in place;
			// the undo value keeps the pre-transaction content.
			m.st.entryAt(pos).val.Store(val)
			m.comb.region.Store(addr, val)
			return
		}
		pos := m.st.append(addr, m.comb.region.Load(addr), val)
		m.st.aggr[addr] = pos
		m.comb.region.Store(addr, val)
		m.comb.track(addr)
		return
	}
	m.st.append(addr, m.comb.region.Load(addr), val)
	m.comb.region.Store(addr, val)
	if m.e.feat.DeferFlush {
		m.comb.track(addr)
	} else {
		m.comb.region.PWB(addr)
	}
}

// Alloc serves the transaction from the arena keyed by the announcing
// thread (not the executing helper, so re-executed closures allocate
// identically — the ptm.Mem determinism contract) and annotates the trace;
// the annotation is a nil-check when tracing is off.
func (m *redoMem) Alloc(words uint64) uint64 {
	arena := m.owner % palloc.NumArenas
	addr := palloc.AllocArena(m, arena, words)
	if addr != 0 {
		m.e.pool.TraceEvent(obs.KindAlloc, m.exec, m.comb.region.Index(), addr, words, uint64(arena))
	}
	return addr
}

func (m *redoMem) Free(addr uint64) {
	palloc.Free(m, addr)
	m.e.pool.TraceEvent(obs.KindFree, m.exec, m.comb.region.Index(), addr, 0, 0)
}

// StoreWords implements ptm.BulkMem: a whole payload logged as one
// aggregated record and applied to the replica with full cache lines going
// through non-temporal stores. Without the Bulk feature it degrades to the
// exact per-word Store loop, so the word-path ablation measures the same
// construction minus this optimization.
func (m *redoMem) StoreWords(addr uint64, words []uint64) {
	n := len(words)
	if !m.e.feat.Bulk || n == 0 {
		for i, w := range words {
			m.Store(addr+uint64(i), w)
		}
		return
	}
	c := m.comb
	// Undo: one range snapshot of the pre-transaction content.
	old := c.bulkBuf(uint64(n))
	c.region.LoadWords(addr, old)
	if m.e.feat.StoreAgg && len(m.st.aggr) > 0 {
		// A bulk record replays after any earlier word entry, so an
		// aggregation slot inside the covered range would let a *later*
		// word store update the earlier entry and lose to this record.
		// Drop the covered slots; later stores append fresh entries.
		for i := 0; i < n; i++ {
			delete(m.st.aggr, addr+uint64(i))
		}
	}
	m.st.appendBulk(addr, words, old)
	c.applyBulk(addr, words)
}

// LoadWords implements ptm.BulkMem.
func (m *redoMem) LoadWords(addr uint64, dst []uint64) {
	m.comb.region.LoadWords(addr, dst)
}

// roMem is the read-only view handed to read transactions (both the
// optimistic shared-lock path and read closures executed by an updater on
// behalf of a reader). Mutation is a caller bug and fails loudly.
type roMem struct {
	region *pmem.Region
	e      *Redo
	exec   int
	owner  int
}

// EmitBytes implements the optional byte-result channel (ptm.EmitBytes).
func (m roMem) EmitBytes(b []byte) { m.e.outbox[m.exec][m.owner] = b }

func (m roMem) Load(addr uint64) uint64 { return m.region.Load(addr) }
func (m roMem) Store(addr, val uint64) {
	panic("redo: Store inside a read-only transaction")
}
func (m roMem) Alloc(words uint64) uint64 {
	panic("redo: Alloc inside a read-only transaction")
}
func (m roMem) Free(addr uint64) {
	panic("redo: Free inside a read-only transaction")
}

// StoreWords implements ptm.BulkMem (so byte-string reads take the bulk
// load path); storing is a caller bug like Store.
func (m roMem) StoreWords(addr uint64, words []uint64) {
	panic("redo: StoreWords inside a read-only transaction")
}

// LoadWords implements ptm.BulkMem.
func (m roMem) LoadWords(addr uint64, dst []uint64) {
	m.region.LoadWords(addr, dst)
}

// directMem gives raw access for allocator formatting and metadata reads.
type directMem struct {
	region *pmem.Region
}

func (m directMem) Load(addr uint64) uint64 { return m.region.Load(addr) }
func (m directMem) Store(addr, val uint64)  { m.region.Store(addr, val) }

// runDesc executes an announced operation with the appropriate view. Both
// views are cached per executing thread, so handing one to the closure boxes
// a pointer instead of allocating.
func runDesc(d *reqDesc, rm *redoMem) uint64 {
	if d.readOnly {
		ro := rm.e.rox[rm.exec]
		*ro = roMem{region: rm.comb.region, e: rm.e, exec: rm.exec, owner: rm.owner}
		return d.fn(ro)
	}
	return d.fn(rm)
}

// usedWords reports the allocator high-water mark of a replica.
func usedWords(region *pmem.Region) uint64 {
	return palloc.UsedWords(directMem{region})
}

// flushLines issues one pwb per distinct deferred dirty line and resets the
// list ("flush aggregation"). slices.Sort rather than sort.Slice: the
// reflection-based comparator costs two heap allocations per commit.
func flushLines(c *combined) {
	slices.Sort(c.dirty)
	var last uint64 = ^uint64(0)
	for _, line := range c.dirty {
		if line != last {
			c.region.PWB(line * pmem.WordsPerLine)
			last = line
		}
	}
	c.dirty = c.dirty[:0]
}
