package redo

import (
	"sort"

	"repro/internal/palloc"
	"repro/internal/pmem"
)

// redoMem is the transactional view used while simulating announced
// operations on an exclusively held replica: every store is recorded in the
// State's physical log (old value for undo, new value for redo) and applied
// in place. Under the Opt variant, repeated stores to the same address are
// aggregated into a single log entry ("store aggregation") and pwbs are
// deferred to commit time ("postpone issuing pwbs"); the base variant
// issues a pwb per store immediately.
type redoMem struct {
	e     *Redo
	comb  *combined
	st    *State
	exec  int // executing thread
	owner int // thread that announced the operation being executed
}

// EmitBytes implements the optional byte-result channel (ptm.EmitBytes):
// the executor writes its own outbox row; the owner reads it after the
// committed state identifies this executor.
func (m redoMem) EmitBytes(b []byte) { m.e.outbox[m.exec][m.owner] = b }

func (m redoMem) Load(addr uint64) uint64 { return m.comb.region.Load(addr) }

func (m redoMem) Store(addr, val uint64) {
	if m.e.feat.StoreAgg {
		if pos, ok := m.st.aggr[addr]; ok {
			// Store aggregation: overwrite the redo value in place;
			// the undo value keeps the pre-transaction content.
			m.st.entryAt(pos).val.Store(val)
			m.comb.region.Store(addr, val)
			return
		}
		pos := m.st.append(addr, m.comb.region.Load(addr), val)
		m.st.aggr[addr] = pos
		m.comb.region.Store(addr, val)
		m.comb.track(addr)
		return
	}
	m.st.append(addr, m.comb.region.Load(addr), val)
	m.comb.region.Store(addr, val)
	if m.e.feat.DeferFlush {
		m.comb.track(addr)
	} else {
		m.comb.region.PWB(addr)
	}
}

func (m redoMem) Alloc(words uint64) uint64 { return palloc.Alloc(m, words) }
func (m redoMem) Free(addr uint64)          { palloc.Free(m, addr) }

// roMem is the read-only view handed to read transactions (both the
// optimistic shared-lock path and read closures executed by an updater on
// behalf of a reader). Mutation is a caller bug and fails loudly.
type roMem struct {
	region *pmem.Region
	e      *Redo
	exec   int
	owner  int
}

// EmitBytes implements the optional byte-result channel (ptm.EmitBytes).
func (m roMem) EmitBytes(b []byte) { m.e.outbox[m.exec][m.owner] = b }

func (m roMem) Load(addr uint64) uint64 { return m.region.Load(addr) }
func (m roMem) Store(addr, val uint64) {
	panic("redo: Store inside a read-only transaction")
}
func (m roMem) Alloc(words uint64) uint64 {
	panic("redo: Alloc inside a read-only transaction")
}
func (m roMem) Free(addr uint64) {
	panic("redo: Free inside a read-only transaction")
}

// directMem gives raw access for allocator formatting and metadata reads.
type directMem struct {
	region *pmem.Region
}

func (m directMem) Load(addr uint64) uint64 { return m.region.Load(addr) }
func (m directMem) Store(addr, val uint64)  { m.region.Store(addr, val) }

// runDesc executes an announced operation with the appropriate view.
func runDesc(d *reqDesc, rm redoMem) uint64 {
	if d.readOnly {
		return d.fn(roMem{region: rm.comb.region, e: rm.e, exec: rm.exec, owner: rm.owner})
	}
	return d.fn(rm)
}

// usedWords reports the allocator high-water mark of a replica.
func usedWords(region *pmem.Region) uint64 {
	return palloc.UsedWords(directMem{region})
}

// flushLines issues one pwb per distinct deferred dirty line and resets the
// list ("flush aggregation").
func flushLines(c *combined) {
	sort.Slice(c.dirty, func(i, j int) bool { return c.dirty[i] < c.dirty[j] })
	var last uint64 = ^uint64(0)
	for _, line := range c.dirty {
		if line != last {
			c.region.PWB(line * pmem.WordsPerLine)
			last = line
		}
	}
	c.dirty = c.dirty[:0]
}
